file(REMOVE_RECURSE
  "CMakeFiles/stores_test.dir/stores_test.cc.o"
  "CMakeFiles/stores_test.dir/stores_test.cc.o.d"
  "stores_test"
  "stores_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stores_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
