file(REMOVE_RECURSE
  "CMakeFiles/gadget_test.dir/gadget_test.cc.o"
  "CMakeFiles/gadget_test.dir/gadget_test.cc.o.d"
  "gadget_test"
  "gadget_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadget_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
