# Empty dependencies file for gadget_test.
# This may be replaced when dependencies are built.
