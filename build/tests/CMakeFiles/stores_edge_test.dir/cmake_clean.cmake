file(REMOVE_RECURSE
  "CMakeFiles/stores_edge_test.dir/stores_edge_test.cc.o"
  "CMakeFiles/stores_edge_test.dir/stores_edge_test.cc.o.d"
  "stores_edge_test"
  "stores_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stores_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
