# Empty compiler generated dependencies file for stores_edge_test.
# This may be replaced when dependencies are built.
