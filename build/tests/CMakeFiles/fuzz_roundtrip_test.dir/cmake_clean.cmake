file(REMOVE_RECURSE
  "CMakeFiles/fuzz_roundtrip_test.dir/fuzz_roundtrip_test.cc.o"
  "CMakeFiles/fuzz_roundtrip_test.dir/fuzz_roundtrip_test.cc.o.d"
  "fuzz_roundtrip_test"
  "fuzz_roundtrip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
