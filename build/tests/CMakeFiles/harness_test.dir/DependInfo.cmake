
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/harness_test.cc" "tests/CMakeFiles/harness_test.dir/harness_test.cc.o" "gcc" "tests/CMakeFiles/harness_test.dir/harness_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gadget_common.dir/DependInfo.cmake"
  "/root/repo/build/src/distgen/CMakeFiles/gadget_distgen.dir/DependInfo.cmake"
  "/root/repo/build/src/streams/CMakeFiles/gadget_streams.dir/DependInfo.cmake"
  "/root/repo/build/src/stores/CMakeFiles/gadget_stores.dir/DependInfo.cmake"
  "/root/repo/build/src/flinklet/CMakeFiles/gadget_flinklet.dir/DependInfo.cmake"
  "/root/repo/build/src/gadget/CMakeFiles/gadget_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ycsb/CMakeFiles/gadget_ycsb.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gadget_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
