# Empty compiler generated dependencies file for ycsb_test.
# This may be replaced when dependencies are built.
