file(REMOVE_RECURSE
  "CMakeFiles/ycsb_test.dir/ycsb_test.cc.o"
  "CMakeFiles/ycsb_test.dir/ycsb_test.cc.o.d"
  "ycsb_test"
  "ycsb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ycsb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
