# Empty compiler generated dependencies file for lsm_stress_test.
# This may be replaced when dependencies are built.
