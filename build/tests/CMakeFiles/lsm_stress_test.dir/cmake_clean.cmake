file(REMOVE_RECURSE
  "CMakeFiles/lsm_stress_test.dir/lsm_stress_test.cc.o"
  "CMakeFiles/lsm_stress_test.dir/lsm_stress_test.cc.o.d"
  "lsm_stress_test"
  "lsm_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsm_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
