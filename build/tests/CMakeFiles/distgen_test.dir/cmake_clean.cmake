file(REMOVE_RECURSE
  "CMakeFiles/distgen_test.dir/distgen_test.cc.o"
  "CMakeFiles/distgen_test.dir/distgen_test.cc.o.d"
  "distgen_test"
  "distgen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
