# Empty dependencies file for distgen_test.
# This may be replaced when dependencies are built.
