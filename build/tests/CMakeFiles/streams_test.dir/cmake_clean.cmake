file(REMOVE_RECURSE
  "CMakeFiles/streams_test.dir/streams_test.cc.o"
  "CMakeFiles/streams_test.dir/streams_test.cc.o.d"
  "streams_test"
  "streams_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streams_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
