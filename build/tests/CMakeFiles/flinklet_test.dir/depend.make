# Empty dependencies file for flinklet_test.
# This may be replaced when dependencies are built.
