file(REMOVE_RECURSE
  "CMakeFiles/flinklet_test.dir/flinklet_test.cc.o"
  "CMakeFiles/flinklet_test.dir/flinklet_test.cc.o.d"
  "flinklet_test"
  "flinklet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flinklet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
