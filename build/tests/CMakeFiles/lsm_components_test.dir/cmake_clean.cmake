file(REMOVE_RECURSE
  "CMakeFiles/lsm_components_test.dir/lsm_components_test.cc.o"
  "CMakeFiles/lsm_components_test.dir/lsm_components_test.cc.o.d"
  "lsm_components_test"
  "lsm_components_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsm_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
