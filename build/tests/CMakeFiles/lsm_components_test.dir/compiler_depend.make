# Empty compiler generated dependencies file for lsm_components_test.
# This may be replaced when dependencies are built.
