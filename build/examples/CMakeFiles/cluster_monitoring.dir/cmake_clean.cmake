file(REMOVE_RECURSE
  "CMakeFiles/cluster_monitoring.dir/cluster_monitoring.cpp.o"
  "CMakeFiles/cluster_monitoring.dir/cluster_monitoring.cpp.o.d"
  "cluster_monitoring"
  "cluster_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
