# Empty compiler generated dependencies file for cluster_monitoring.
# This may be replaced when dependencies are built.
