file(REMOVE_RECURSE
  "CMakeFiles/offline_replay.dir/offline_replay.cpp.o"
  "CMakeFiles/offline_replay.dir/offline_replay.cpp.o.d"
  "offline_replay"
  "offline_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
