# Empty dependencies file for offline_replay.
# This may be replaced when dependencies are built.
