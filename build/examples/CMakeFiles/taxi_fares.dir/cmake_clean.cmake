file(REMOVE_RECURSE
  "CMakeFiles/taxi_fares.dir/taxi_fares.cpp.o"
  "CMakeFiles/taxi_fares.dir/taxi_fares.cpp.o.d"
  "taxi_fares"
  "taxi_fares.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxi_fares.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
