# Empty dependencies file for taxi_fares.
# This may be replaced when dependencies are built.
