
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stores/btree/btree_store.cc" "src/stores/CMakeFiles/gadget_stores.dir/btree/btree_store.cc.o" "gcc" "src/stores/CMakeFiles/gadget_stores.dir/btree/btree_store.cc.o.d"
  "/root/repo/src/stores/faster/faster_store.cc" "src/stores/CMakeFiles/gadget_stores.dir/faster/faster_store.cc.o" "gcc" "src/stores/CMakeFiles/gadget_stores.dir/faster/faster_store.cc.o.d"
  "/root/repo/src/stores/kvstore.cc" "src/stores/CMakeFiles/gadget_stores.dir/kvstore.cc.o" "gcc" "src/stores/CMakeFiles/gadget_stores.dir/kvstore.cc.o.d"
  "/root/repo/src/stores/lsm/block_cache.cc" "src/stores/CMakeFiles/gadget_stores.dir/lsm/block_cache.cc.o" "gcc" "src/stores/CMakeFiles/gadget_stores.dir/lsm/block_cache.cc.o.d"
  "/root/repo/src/stores/lsm/bloom.cc" "src/stores/CMakeFiles/gadget_stores.dir/lsm/bloom.cc.o" "gcc" "src/stores/CMakeFiles/gadget_stores.dir/lsm/bloom.cc.o.d"
  "/root/repo/src/stores/lsm/lsm_store.cc" "src/stores/CMakeFiles/gadget_stores.dir/lsm/lsm_store.cc.o" "gcc" "src/stores/CMakeFiles/gadget_stores.dir/lsm/lsm_store.cc.o.d"
  "/root/repo/src/stores/lsm/memtable.cc" "src/stores/CMakeFiles/gadget_stores.dir/lsm/memtable.cc.o" "gcc" "src/stores/CMakeFiles/gadget_stores.dir/lsm/memtable.cc.o.d"
  "/root/repo/src/stores/lsm/sstable.cc" "src/stores/CMakeFiles/gadget_stores.dir/lsm/sstable.cc.o" "gcc" "src/stores/CMakeFiles/gadget_stores.dir/lsm/sstable.cc.o.d"
  "/root/repo/src/stores/lsm/version.cc" "src/stores/CMakeFiles/gadget_stores.dir/lsm/version.cc.o" "gcc" "src/stores/CMakeFiles/gadget_stores.dir/lsm/version.cc.o.d"
  "/root/repo/src/stores/lsm/wal.cc" "src/stores/CMakeFiles/gadget_stores.dir/lsm/wal.cc.o" "gcc" "src/stores/CMakeFiles/gadget_stores.dir/lsm/wal.cc.o.d"
  "/root/repo/src/stores/memstore.cc" "src/stores/CMakeFiles/gadget_stores.dir/memstore.cc.o" "gcc" "src/stores/CMakeFiles/gadget_stores.dir/memstore.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gadget_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
