file(REMOVE_RECURSE
  "CMakeFiles/gadget_stores.dir/btree/btree_store.cc.o"
  "CMakeFiles/gadget_stores.dir/btree/btree_store.cc.o.d"
  "CMakeFiles/gadget_stores.dir/faster/faster_store.cc.o"
  "CMakeFiles/gadget_stores.dir/faster/faster_store.cc.o.d"
  "CMakeFiles/gadget_stores.dir/kvstore.cc.o"
  "CMakeFiles/gadget_stores.dir/kvstore.cc.o.d"
  "CMakeFiles/gadget_stores.dir/lsm/block_cache.cc.o"
  "CMakeFiles/gadget_stores.dir/lsm/block_cache.cc.o.d"
  "CMakeFiles/gadget_stores.dir/lsm/bloom.cc.o"
  "CMakeFiles/gadget_stores.dir/lsm/bloom.cc.o.d"
  "CMakeFiles/gadget_stores.dir/lsm/lsm_store.cc.o"
  "CMakeFiles/gadget_stores.dir/lsm/lsm_store.cc.o.d"
  "CMakeFiles/gadget_stores.dir/lsm/memtable.cc.o"
  "CMakeFiles/gadget_stores.dir/lsm/memtable.cc.o.d"
  "CMakeFiles/gadget_stores.dir/lsm/sstable.cc.o"
  "CMakeFiles/gadget_stores.dir/lsm/sstable.cc.o.d"
  "CMakeFiles/gadget_stores.dir/lsm/version.cc.o"
  "CMakeFiles/gadget_stores.dir/lsm/version.cc.o.d"
  "CMakeFiles/gadget_stores.dir/lsm/wal.cc.o"
  "CMakeFiles/gadget_stores.dir/lsm/wal.cc.o.d"
  "CMakeFiles/gadget_stores.dir/memstore.cc.o"
  "CMakeFiles/gadget_stores.dir/memstore.cc.o.d"
  "libgadget_stores.a"
  "libgadget_stores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadget_stores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
