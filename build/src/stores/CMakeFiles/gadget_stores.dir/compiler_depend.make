# Empty compiler generated dependencies file for gadget_stores.
# This may be replaced when dependencies are built.
