file(REMOVE_RECURSE
  "libgadget_stores.a"
)
