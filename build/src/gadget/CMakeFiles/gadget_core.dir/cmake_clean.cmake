file(REMOVE_RECURSE
  "CMakeFiles/gadget_core.dir/driver.cc.o"
  "CMakeFiles/gadget_core.dir/driver.cc.o.d"
  "CMakeFiles/gadget_core.dir/evaluator.cc.o"
  "CMakeFiles/gadget_core.dir/evaluator.cc.o.d"
  "CMakeFiles/gadget_core.dir/event_generator.cc.o"
  "CMakeFiles/gadget_core.dir/event_generator.cc.o.d"
  "CMakeFiles/gadget_core.dir/harness.cc.o"
  "CMakeFiles/gadget_core.dir/harness.cc.o.d"
  "CMakeFiles/gadget_core.dir/logics.cc.o"
  "CMakeFiles/gadget_core.dir/logics.cc.o.d"
  "CMakeFiles/gadget_core.dir/multi.cc.o"
  "CMakeFiles/gadget_core.dir/multi.cc.o.d"
  "CMakeFiles/gadget_core.dir/workload.cc.o"
  "CMakeFiles/gadget_core.dir/workload.cc.o.d"
  "libgadget_core.a"
  "libgadget_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadget_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
