
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gadget/driver.cc" "src/gadget/CMakeFiles/gadget_core.dir/driver.cc.o" "gcc" "src/gadget/CMakeFiles/gadget_core.dir/driver.cc.o.d"
  "/root/repo/src/gadget/evaluator.cc" "src/gadget/CMakeFiles/gadget_core.dir/evaluator.cc.o" "gcc" "src/gadget/CMakeFiles/gadget_core.dir/evaluator.cc.o.d"
  "/root/repo/src/gadget/event_generator.cc" "src/gadget/CMakeFiles/gadget_core.dir/event_generator.cc.o" "gcc" "src/gadget/CMakeFiles/gadget_core.dir/event_generator.cc.o.d"
  "/root/repo/src/gadget/harness.cc" "src/gadget/CMakeFiles/gadget_core.dir/harness.cc.o" "gcc" "src/gadget/CMakeFiles/gadget_core.dir/harness.cc.o.d"
  "/root/repo/src/gadget/logics.cc" "src/gadget/CMakeFiles/gadget_core.dir/logics.cc.o" "gcc" "src/gadget/CMakeFiles/gadget_core.dir/logics.cc.o.d"
  "/root/repo/src/gadget/multi.cc" "src/gadget/CMakeFiles/gadget_core.dir/multi.cc.o" "gcc" "src/gadget/CMakeFiles/gadget_core.dir/multi.cc.o.d"
  "/root/repo/src/gadget/workload.cc" "src/gadget/CMakeFiles/gadget_core.dir/workload.cc.o" "gcc" "src/gadget/CMakeFiles/gadget_core.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gadget_common.dir/DependInfo.cmake"
  "/root/repo/build/src/distgen/CMakeFiles/gadget_distgen.dir/DependInfo.cmake"
  "/root/repo/build/src/streams/CMakeFiles/gadget_streams.dir/DependInfo.cmake"
  "/root/repo/build/src/stores/CMakeFiles/gadget_stores.dir/DependInfo.cmake"
  "/root/repo/build/src/flinklet/CMakeFiles/gadget_flinklet.dir/DependInfo.cmake"
  "/root/repo/build/src/ycsb/CMakeFiles/gadget_ycsb.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gadget_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
