file(REMOVE_RECURSE
  "libgadget_core.a"
)
