# Empty dependencies file for gadget_core.
# This may be replaced when dependencies are built.
