file(REMOVE_RECURSE
  "CMakeFiles/gadget_streams.dir/dataset.cc.o"
  "CMakeFiles/gadget_streams.dir/dataset.cc.o.d"
  "CMakeFiles/gadget_streams.dir/trace_io.cc.o"
  "CMakeFiles/gadget_streams.dir/trace_io.cc.o.d"
  "libgadget_streams.a"
  "libgadget_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadget_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
