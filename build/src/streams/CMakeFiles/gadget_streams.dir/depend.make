# Empty dependencies file for gadget_streams.
# This may be replaced when dependencies are built.
