file(REMOVE_RECURSE
  "libgadget_streams.a"
)
