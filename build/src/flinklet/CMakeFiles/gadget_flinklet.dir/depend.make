# Empty dependencies file for gadget_flinklet.
# This may be replaced when dependencies are built.
