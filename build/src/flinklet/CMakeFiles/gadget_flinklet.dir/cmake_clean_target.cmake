file(REMOVE_RECURSE
  "libgadget_flinklet.a"
)
