file(REMOVE_RECURSE
  "CMakeFiles/gadget_flinklet.dir/join_ops.cc.o"
  "CMakeFiles/gadget_flinklet.dir/join_ops.cc.o.d"
  "CMakeFiles/gadget_flinklet.dir/operator.cc.o"
  "CMakeFiles/gadget_flinklet.dir/operator.cc.o.d"
  "CMakeFiles/gadget_flinklet.dir/runtime.cc.o"
  "CMakeFiles/gadget_flinklet.dir/runtime.cc.o.d"
  "CMakeFiles/gadget_flinklet.dir/state_backend.cc.o"
  "CMakeFiles/gadget_flinklet.dir/state_backend.cc.o.d"
  "CMakeFiles/gadget_flinklet.dir/window_ops.cc.o"
  "CMakeFiles/gadget_flinklet.dir/window_ops.cc.o.d"
  "libgadget_flinklet.a"
  "libgadget_flinklet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadget_flinklet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
