
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flinklet/join_ops.cc" "src/flinklet/CMakeFiles/gadget_flinklet.dir/join_ops.cc.o" "gcc" "src/flinklet/CMakeFiles/gadget_flinklet.dir/join_ops.cc.o.d"
  "/root/repo/src/flinklet/operator.cc" "src/flinklet/CMakeFiles/gadget_flinklet.dir/operator.cc.o" "gcc" "src/flinklet/CMakeFiles/gadget_flinklet.dir/operator.cc.o.d"
  "/root/repo/src/flinklet/runtime.cc" "src/flinklet/CMakeFiles/gadget_flinklet.dir/runtime.cc.o" "gcc" "src/flinklet/CMakeFiles/gadget_flinklet.dir/runtime.cc.o.d"
  "/root/repo/src/flinklet/state_backend.cc" "src/flinklet/CMakeFiles/gadget_flinklet.dir/state_backend.cc.o" "gcc" "src/flinklet/CMakeFiles/gadget_flinklet.dir/state_backend.cc.o.d"
  "/root/repo/src/flinklet/window_ops.cc" "src/flinklet/CMakeFiles/gadget_flinklet.dir/window_ops.cc.o" "gcc" "src/flinklet/CMakeFiles/gadget_flinklet.dir/window_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gadget_common.dir/DependInfo.cmake"
  "/root/repo/build/src/streams/CMakeFiles/gadget_streams.dir/DependInfo.cmake"
  "/root/repo/build/src/stores/CMakeFiles/gadget_stores.dir/DependInfo.cmake"
  "/root/repo/build/src/distgen/CMakeFiles/gadget_distgen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
