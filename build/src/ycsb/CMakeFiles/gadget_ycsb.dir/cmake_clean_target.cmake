file(REMOVE_RECURSE
  "libgadget_ycsb.a"
)
