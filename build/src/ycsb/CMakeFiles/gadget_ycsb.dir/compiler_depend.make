# Empty compiler generated dependencies file for gadget_ycsb.
# This may be replaced when dependencies are built.
