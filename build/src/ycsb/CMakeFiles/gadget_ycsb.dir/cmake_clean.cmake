file(REMOVE_RECURSE
  "CMakeFiles/gadget_ycsb.dir/ycsb.cc.o"
  "CMakeFiles/gadget_ycsb.dir/ycsb.cc.o.d"
  "libgadget_ycsb.a"
  "libgadget_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadget_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
