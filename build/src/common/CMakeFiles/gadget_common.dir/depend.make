# Empty dependencies file for gadget_common.
# This may be replaced when dependencies are built.
