file(REMOVE_RECURSE
  "libgadget_common.a"
)
