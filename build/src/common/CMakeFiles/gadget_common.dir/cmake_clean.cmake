file(REMOVE_RECURSE
  "CMakeFiles/gadget_common.dir/config.cc.o"
  "CMakeFiles/gadget_common.dir/config.cc.o.d"
  "CMakeFiles/gadget_common.dir/crc32c.cc.o"
  "CMakeFiles/gadget_common.dir/crc32c.cc.o.d"
  "CMakeFiles/gadget_common.dir/file_util.cc.o"
  "CMakeFiles/gadget_common.dir/file_util.cc.o.d"
  "CMakeFiles/gadget_common.dir/histogram.cc.o"
  "CMakeFiles/gadget_common.dir/histogram.cc.o.d"
  "CMakeFiles/gadget_common.dir/logging.cc.o"
  "CMakeFiles/gadget_common.dir/logging.cc.o.d"
  "CMakeFiles/gadget_common.dir/status.cc.o"
  "CMakeFiles/gadget_common.dir/status.cc.o.d"
  "libgadget_common.a"
  "libgadget_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadget_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
