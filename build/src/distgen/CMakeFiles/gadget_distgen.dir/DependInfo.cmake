
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/distgen/arrival.cc" "src/distgen/CMakeFiles/gadget_distgen.dir/arrival.cc.o" "gcc" "src/distgen/CMakeFiles/gadget_distgen.dir/arrival.cc.o.d"
  "/root/repo/src/distgen/distribution.cc" "src/distgen/CMakeFiles/gadget_distgen.dir/distribution.cc.o" "gcc" "src/distgen/CMakeFiles/gadget_distgen.dir/distribution.cc.o.d"
  "/root/repo/src/distgen/ecdf_file.cc" "src/distgen/CMakeFiles/gadget_distgen.dir/ecdf_file.cc.o" "gcc" "src/distgen/CMakeFiles/gadget_distgen.dir/ecdf_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gadget_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
