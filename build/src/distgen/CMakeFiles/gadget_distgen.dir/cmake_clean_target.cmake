file(REMOVE_RECURSE
  "libgadget_distgen.a"
)
