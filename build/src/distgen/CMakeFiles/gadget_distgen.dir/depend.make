# Empty dependencies file for gadget_distgen.
# This may be replaced when dependencies are built.
