file(REMOVE_RECURSE
  "CMakeFiles/gadget_distgen.dir/arrival.cc.o"
  "CMakeFiles/gadget_distgen.dir/arrival.cc.o.d"
  "CMakeFiles/gadget_distgen.dir/distribution.cc.o"
  "CMakeFiles/gadget_distgen.dir/distribution.cc.o.d"
  "CMakeFiles/gadget_distgen.dir/ecdf_file.cc.o"
  "CMakeFiles/gadget_distgen.dir/ecdf_file.cc.o.d"
  "libgadget_distgen.a"
  "libgadget_distgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadget_distgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
