file(REMOVE_RECURSE
  "libgadget_analysis.a"
)
