file(REMOVE_RECURSE
  "CMakeFiles/gadget_analysis.dir/cache_model.cc.o"
  "CMakeFiles/gadget_analysis.dir/cache_model.cc.o.d"
  "CMakeFiles/gadget_analysis.dir/metrics.cc.o"
  "CMakeFiles/gadget_analysis.dir/metrics.cc.o.d"
  "CMakeFiles/gadget_analysis.dir/stats_tests.cc.o"
  "CMakeFiles/gadget_analysis.dir/stats_tests.cc.o.d"
  "libgadget_analysis.a"
  "libgadget_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadget_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
