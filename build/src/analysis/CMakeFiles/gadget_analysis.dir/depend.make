# Empty dependencies file for gadget_analysis.
# This may be replaced when dependencies are built.
