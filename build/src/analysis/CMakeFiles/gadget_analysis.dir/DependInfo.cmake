
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/cache_model.cc" "src/analysis/CMakeFiles/gadget_analysis.dir/cache_model.cc.o" "gcc" "src/analysis/CMakeFiles/gadget_analysis.dir/cache_model.cc.o.d"
  "/root/repo/src/analysis/metrics.cc" "src/analysis/CMakeFiles/gadget_analysis.dir/metrics.cc.o" "gcc" "src/analysis/CMakeFiles/gadget_analysis.dir/metrics.cc.o.d"
  "/root/repo/src/analysis/stats_tests.cc" "src/analysis/CMakeFiles/gadget_analysis.dir/stats_tests.cc.o" "gcc" "src/analysis/CMakeFiles/gadget_analysis.dir/stats_tests.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gadget_common.dir/DependInfo.cmake"
  "/root/repo/build/src/streams/CMakeFiles/gadget_streams.dir/DependInfo.cmake"
  "/root/repo/build/src/distgen/CMakeFiles/gadget_distgen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
