# Empty dependencies file for bench_fig6_watermark.
# This may be replaced when dependencies are built.
