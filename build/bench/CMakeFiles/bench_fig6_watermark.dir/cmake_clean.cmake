file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_watermark.dir/bench_fig6_watermark.cc.o"
  "CMakeFiles/bench_fig6_watermark.dir/bench_fig6_watermark.cc.o.d"
  "bench_fig6_watermark"
  "bench_fig6_watermark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_watermark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
