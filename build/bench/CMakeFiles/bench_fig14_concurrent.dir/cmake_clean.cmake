file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_concurrent.dir/bench_fig14_concurrent.cc.o"
  "CMakeFiles/bench_fig14_concurrent.dir/bench_fig14_concurrent.cc.o.d"
  "bench_fig14_concurrent"
  "bench_fig14_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
