# Empty dependencies file for bench_fig14_concurrent.
# This may be replaced when dependencies are built.
