file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_ttl.dir/bench_table3_ttl.cc.o"
  "CMakeFiles/bench_table3_ttl.dir/bench_table3_ttl.cc.o.d"
  "bench_table3_ttl"
  "bench_table3_ttl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_ttl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
