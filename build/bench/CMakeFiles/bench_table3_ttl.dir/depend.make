# Empty dependencies file for bench_table3_ttl.
# This may be replaced when dependencies are built.
