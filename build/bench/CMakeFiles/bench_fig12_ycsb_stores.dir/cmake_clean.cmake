file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_ycsb_stores.dir/bench_fig12_ycsb_stores.cc.o"
  "CMakeFiles/bench_fig12_ycsb_stores.dir/bench_fig12_ycsb_stores.cc.o.d"
  "bench_fig12_ycsb_stores"
  "bench_fig12_ycsb_stores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_ycsb_stores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
