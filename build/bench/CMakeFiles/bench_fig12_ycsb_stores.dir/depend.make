# Empty dependencies file for bench_fig12_ycsb_stores.
# This may be replaced when dependencies are built.
