file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_ks.dir/bench_table2_ks.cc.o"
  "CMakeFiles/bench_table2_ks.dir/bench_table2_ks.cc.o.d"
  "bench_table2_ks"
  "bench_table2_ks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
