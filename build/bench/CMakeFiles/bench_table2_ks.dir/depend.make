# Empty dependencies file for bench_table2_ks.
# This may be replaced when dependencies are built.
