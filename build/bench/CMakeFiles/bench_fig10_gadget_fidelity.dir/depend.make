# Empty dependencies file for bench_fig10_gadget_fidelity.
# This may be replaced when dependencies are built.
