file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_gadget_fidelity.dir/bench_fig10_gadget_fidelity.cc.o"
  "CMakeFiles/bench_fig10_gadget_fidelity.dir/bench_fig10_gadget_fidelity.cc.o.d"
  "bench_fig10_gadget_fidelity"
  "bench_fig10_gadget_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_gadget_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
