file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_stores.dir/bench_micro_stores.cc.o"
  "CMakeFiles/bench_micro_stores.dir/bench_micro_stores.cc.o.d"
  "bench_micro_stores"
  "bench_micro_stores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_stores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
