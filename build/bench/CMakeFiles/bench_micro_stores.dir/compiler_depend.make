# Empty compiler generated dependencies file for bench_micro_stores.
# This may be replaced when dependencies are built.
