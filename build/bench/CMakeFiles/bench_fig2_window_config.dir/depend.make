# Empty dependencies file for bench_fig2_window_config.
# This may be replaced when dependencies are built.
