file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_window_config.dir/bench_fig2_window_config.cc.o"
  "CMakeFiles/bench_fig2_window_config.dir/bench_fig2_window_config.cc.o.d"
  "bench_fig2_window_config"
  "bench_fig2_window_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_window_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
