file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_gadget_stores.dir/bench_fig13_gadget_stores.cc.o"
  "CMakeFiles/bench_fig13_gadget_stores.dir/bench_fig13_gadget_stores.cc.o.d"
  "bench_fig13_gadget_stores"
  "bench_fig13_gadget_stores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_gadget_stores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
