# Empty compiler generated dependencies file for bench_fig13_gadget_stores.
# This may be replaced when dependencies are built.
