file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lethe.dir/bench_ablation_lethe.cc.o"
  "CMakeFiles/bench_ablation_lethe.dir/bench_ablation_lethe.cc.o.d"
  "bench_ablation_lethe"
  "bench_ablation_lethe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lethe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
