# Empty compiler generated dependencies file for bench_ablation_lethe.
# This may be replaced when dependencies are built.
