# Empty compiler generated dependencies file for bench_fig7_ycsb_locality.
# This may be replaced when dependencies are built.
