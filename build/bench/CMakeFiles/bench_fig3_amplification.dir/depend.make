# Empty dependencies file for bench_fig3_amplification.
# This may be replaced when dependencies are built.
