file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_amplification.dir/bench_fig3_amplification.cc.o"
  "CMakeFiles/bench_fig3_amplification.dir/bench_fig3_amplification.cc.o.d"
  "bench_fig3_amplification"
  "bench_fig3_amplification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_amplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
