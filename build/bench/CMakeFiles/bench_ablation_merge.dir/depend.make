# Empty dependencies file for bench_ablation_merge.
# This may be replaced when dependencies are built.
