file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_merge.dir/bench_ablation_merge.cc.o"
  "CMakeFiles/bench_ablation_merge.dir/bench_ablation_merge.cc.o.d"
  "bench_ablation_merge"
  "bench_ablation_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
