# Empty compiler generated dependencies file for bench_fig11_gadget_value.
# This may be replaced when dependencies are built.
