file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_gadget_value.dir/bench_fig11_gadget_value.cc.o"
  "CMakeFiles/bench_fig11_gadget_value.dir/bench_fig11_gadget_value.cc.o.d"
  "bench_fig11_gadget_value"
  "bench_fig11_gadget_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_gadget_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
