file(REMOVE_RECURSE
  "CMakeFiles/gadget_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/gadget_bench_util.dir/bench_util.cc.o.d"
  "libgadget_bench_util.a"
  "libgadget_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadget_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
