# Empty dependencies file for gadget_bench_util.
# This may be replaced when dependencies are built.
