file(REMOVE_RECURSE
  "libgadget_bench_util.a"
)
