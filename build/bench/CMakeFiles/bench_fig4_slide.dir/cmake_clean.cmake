file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_slide.dir/bench_fig4_slide.cc.o"
  "CMakeFiles/bench_fig4_slide.dir/bench_fig4_slide.cc.o.d"
  "bench_fig4_slide"
  "bench_fig4_slide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_slide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
