file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_locality.dir/bench_fig5_locality.cc.o"
  "CMakeFiles/bench_fig5_locality.dir/bench_fig5_locality.cc.o.d"
  "bench_fig5_locality"
  "bench_fig5_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
