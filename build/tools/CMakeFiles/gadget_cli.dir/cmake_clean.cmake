file(REMOVE_RECURSE
  "CMakeFiles/gadget_cli.dir/gadget.cc.o"
  "CMakeFiles/gadget_cli.dir/gadget.cc.o.d"
  "gadget"
  "gadget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadget_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
