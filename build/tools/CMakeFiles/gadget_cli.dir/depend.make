# Empty dependencies file for gadget_cli.
# This may be replaced when dependencies are built.
