// CLI driver for gadget_lint (see tools/gadget_lint.h for the rules).
//
// Usage: gadget_lint [--allowlist=FILE] <path>...
// Paths may be files or directories; directories are walked recursively for
// *.h and *.cc (hidden and build directories are skipped). Exits 1 when any
// finding survives the allowlist, 0 on a clean tree, 2 on usage errors.
#include <iostream>
#include <string>
#include <vector>

#include "tools/gadget_lint.h"

int main(int argc, char** argv) {
  std::string allowlist_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--allowlist=", 0) == 0) {
      allowlist_path = arg.substr(12);
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allowlist_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: gadget_lint [--allowlist=FILE] <path>...\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "gadget_lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: gadget_lint [--allowlist=FILE] <path>...\n";
    return 2;
  }
  return gadget::lint::RunLint(paths, allowlist_path, std::cout, std::cerr);
}
