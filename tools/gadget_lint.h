// gadget_lint: a standalone textual source scanner enforcing the project's
// coding contracts that the compiler cannot (or that only Clang can, and the
// default toolchain is GCC). It deliberately has no dependency on src/ — the
// linter must build even when the tree it is checking does not.
//
// Rules (DESIGN.md §5f):
//   locked-requires     *Locked method declarations in headers must carry a
//                       REQUIRES(...) / REQUIRES_SHARED(...) thread-safety
//                       annotation (or the documented escape hatch).
//   include-guard       header guards must spell GADGET_<PATH>_H_ (path
//                       relative to the repo root, sans the src/ prefix).
//   banned-call         rand, strcpy, sprintf, system and raw new[] are
//                       forbidden; each has a safer project idiom.
//   using-namespace-std headers must not `using namespace std`.
//   void-status         a `(void)call(...)` discard needs a justification
//                       comment containing "intentionally ignored" within
//                       the three preceding lines (pairs with [[nodiscard]]
//                       on Status/StatusOr).
//   rename-sync         a RenameFile call must be followed by a SyncDir
//                       within a few lines — a rename is not crash-durable
//                       until the parent directory entry is synced
//                       (DESIGN.md "Durability contract").
//   raw-socket          socket/send/recv-family syscalls are allowed only
//                       under src/server/net/; everything else goes through
//                       the net:: helpers or FramedConn (DESIGN.md §6).
//
// Cross-translation-unit rules (AnalyzeTree — these see every file at once):
//   lock-order          builds the global lock acquisition graph from Mutex /
//                       SharedMutex member declarations, MutexLock-style
//                       scoped guards, manual Lock()/Unlock() pairs and
//                       REQUIRES / ACQUIRE annotations, then fails on any
//                       cycle: two code paths that take the same pair of
//                       locks in opposite orders can deadlock.
//   reactor-blocking    a function marked with a standalone
//                       `// gadget:reactor-context` comment is a reactor
//                       entry point; any blocking call (fsync, sleep_for,
//                       CondVar Wait, SyncDir, raw pread, store mutations...)
//                       reachable from it through the static call graph is
//                       flagged unless a `// gadget:blocking-ok: <why>`
//                       comment sits within three lines above the call.
//   stale-allowlist     an allowlist entry that suppressed nothing in the
//                       whole run is dead weight that would silently mask a
//                       future regression; RunLint reports it for removal.
//
// Output format: one finding per line, `file:line: rule-id: message`, exit
// status 1 when anything fires. An allowlist file (`rule-id path-suffix` per
// line) suppresses known-good exceptions.
#ifndef GADGET_TOOLS_GADGET_LINT_H_
#define GADGET_TOOLS_GADGET_LINT_H_

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace gadget {
namespace lint {

struct Finding {
  std::string file;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;
};

// Renders a finding as `file:line: rule-id: message`.
std::string FormatFinding(const Finding& f);

// Suppression list. Each non-comment line is `rule-id path-suffix`; a finding
// is allowed when its rule matches and its file path ends with the suffix
// (suffix `*` matches every file).
class Allowlist {
 public:
  struct Entry {
    std::string rule;
    std::string path_suffix;
    int line = 0;             // 1-based line in the allowlist file
    mutable bool used = false;  // set by Allows; drives stale-allowlist
  };

  static Allowlist Parse(std::string_view text);

  // Marks the matching entry as used — stale-entry detection relies on every
  // finding in the run being filtered through the same Allowlist instance.
  bool Allows(std::string_view file, std::string_view rule) const;

  // Entries that never suppressed a finding. Meaningful only after the full
  // scan's findings have been run through Allows.
  std::vector<Entry> UnusedEntries() const;

 private:
  std::vector<Entry> entries_;
};

// Replaces comment bodies, string literals and char literals with spaces,
// preserving line structure, so the rule matchers never fire on prose.
// Handles //, /* */, "..." (with escapes), '...' and R"delim(...)delim".
std::string StripCommentsAndStrings(std::string_view src);

// The include guard `path` must use: GADGET_<PATH>_H_, where <PATH> is the
// path relative to the repo root without a leading src/, uppercased, with
// every non-alphanumeric character folded to '_'.
std::string ExpectedIncludeGuard(std::string_view path);

// Lints `content` as if it were the file at `path` (which selects the
// header-only rules and the expected include guard). Findings are ordered by
// line. Allowlist filtering is the caller's concern.
std::vector<Finding> LintContent(std::string_view path, std::string_view content);

// Reads and lints one file. An unreadable file yields a single `read-error`
// finding.
std::vector<Finding> LintFile(const std::string& path);

// One file of a whole-tree scan, already read into memory.
struct SourceFile {
  std::string path;
  std::string content;
};

// The cross-translation-unit pass (tools/gadget_lint_tree.cc): parses class /
// lock-member / function structure out of every file, builds the global lock
// acquisition graph and the call graph, and reports `lock-order` cycles and
// `reactor-blocking` reachability violations. Findings are best-effort and
// conservative: an acquisition whose lock cannot be attributed to a unique
// declaration is skipped rather than guessed at, so the rule never fires on
// code it does not understand.
std::vector<Finding> AnalyzeTree(const std::vector<SourceFile>& files);

// Full scan as the CLI runs it: walks `paths` (files, or directories searched
// recursively for *.h / *.cc, skipping hidden and build directories), filters
// through the allowlist at `allowlist_path` (empty = none), and prints
// surviving findings to `out` one per line. Returns the process exit code:
// 0 clean, 1 findings, 2 usage or I/O errors (reported on `err`).
int RunLint(const std::vector<std::string>& paths, const std::string& allowlist_path,
            std::ostream& out, std::ostream& err);

}  // namespace lint
}  // namespace gadget

#endif  // GADGET_TOOLS_GADGET_LINT_H_
