// CI gate for gadget run reports (src/gadget/report.h).
//
//   report_check <report.json>                         # validate only
//   report_check <report.json> --require_recovery      # + recovery gate
//   report_check <report.json> --require_server        # + wire-replay gate
//   report_check <baseline.json> <candidate.json> [--max_regression=0.15]
//
// With one file, exits 0 iff the document is a schema-valid gadget.report/1
// or gadget.bench/1; --require_recovery additionally demands the "recovery"
// object of a checkpointed run (see src/gadget/evaluator.h) with
// mismatched_keys == 0, so CI fails if the crash/restore scenario was
// skipped or the restored store diverged from the oracle. --require_server
// demands the "server" object a `gadget loadgen` run emits (see
// src/server/service.h) with zero lost operations (ops_acked == ops_sent),
// zero server errors, a non-empty per-shard breakdown, and a "net" object
// whose counters moved (bytes in/out, writev calls, per-IO-thread op gauges;
// io_uring_active implies uring_enters > 0) — the server-smoke CI gate. With
// two files,
// additionally compares candidate against baseline: throughput may drop,
// and overall-latency p50/p99/p999 may rise, by at most --max_regression
// (default 0.15). Exit codes: 0 pass, 1 regression or validation failure,
// 2 usage / unreadable / unparsable input.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/file_util.h"
#include "src/common/json.h"
#include "src/gadget/report.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <report.json> [--require_recovery] [--require_server]\n"
               "       %s <baseline.json> <candidate.json> [--max_regression=0.15]\n",
               argv0, argv0);
  return 2;
}

// Loads and parses one report file; exits through *error on failure.
bool Load(const std::string& path, gadget::JsonValue* out, std::string* error) {
  std::string text;
  gadget::Status s = gadget::ReadFileToString(path, &text);
  if (!s.ok()) {
    *error = path + ": " + s.ToString();
    return false;
  }
  auto parsed = gadget::ParseJson(text);
  if (!parsed.ok()) {
    *error = path + ": " + parsed.status().ToString();
    return false;
  }
  *out = std::move(*parsed);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double max_regression = 0.15;
  bool require_recovery = false;
  bool require_server = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--max_regression=", 0) == 0) {
      char* end = nullptr;
      max_regression = std::strtod(arg.c_str() + 17, &end);
      if (end == nullptr || *end != '\0' || max_regression < 0) {
        std::fprintf(stderr, "bad --max_regression value: %s\n", arg.c_str());
        return 2;
      }
    } else if (arg == "--require_recovery") {
      require_recovery = true;
    } else if (arg == "--require_server") {
      require_server = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      files.push_back(std::move(arg));
    }
  }
  if (files.empty() || files.size() > 2) {
    return Usage(argv[0]);
  }

  std::vector<gadget::JsonValue> docs(files.size());
  for (size_t i = 0; i < files.size(); ++i) {
    std::string error;
    if (!Load(files[i], &docs[i], &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    gadget::Status s = gadget::ValidateReportJson(docs[i]);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: invalid report: %s\n", files[i].c_str(), s.ToString().c_str());
      return 1;
    }
    std::printf("%s: valid %s\n", files[i].c_str(), docs[i].GetString("schema").c_str());
    if (require_recovery) {
      const gadget::JsonValue* recovery = docs[i].Get("recovery");
      if (recovery == nullptr) {
        std::fprintf(stderr, "%s: missing \"recovery\" (run with --checkpoint_every=N)\n",
                     files[i].c_str());
        return 1;
      }
      uint64_t mismatched = recovery->GetUint("mismatched_keys");
      uint64_t verified = recovery->GetUint("verified_keys");
      if (mismatched != 0 || verified == 0) {
        std::fprintf(stderr, "%s: recovery verification failed (%llu of %llu keys mismatched)\n",
                     files[i].c_str(), static_cast<unsigned long long>(mismatched),
                     static_cast<unsigned long long>(verified));
        return 1;
      }
      std::printf("%s: recovery verified (%llu keys, restore %.3f ms)\n", files[i].c_str(),
                  static_cast<unsigned long long>(verified),
                  recovery->GetDouble("restore_micros") / 1000.0);
    }
    if (require_server) {
      const gadget::JsonValue* server = docs[i].Get("server");
      if (server == nullptr) {
        std::fprintf(stderr, "%s: missing \"server\" (run via `gadget loadgen --report=...`)\n",
                     files[i].c_str());
        return 1;
      }
      const uint64_t shards = server->GetUint("shards");
      const uint64_t clients = server->GetUint("clients");
      const uint64_t sent = server->GetUint("ops_sent");
      const uint64_t acked = server->GetUint("ops_acked");
      const uint64_t errors = server->GetUint("errors");
      const gadget::JsonValue* shard_ops = server->Get("shard_ops");
      if (shards < 1 || clients < 1 || shard_ops == nullptr || !shard_ops->is_array() ||
          shard_ops->size() != shards) {
        std::fprintf(stderr, "%s: malformed \"server\" object (shards/clients/shard_ops)\n",
                     files[i].c_str());
        return 1;
      }
      if (sent == 0 || acked != sent || errors != 0) {
        std::fprintf(stderr,
                     "%s: wire replay lost operations (%llu sent, %llu acked, %llu errors)\n",
                     files[i].c_str(), static_cast<unsigned long long>(sent),
                     static_cast<unsigned long long>(acked),
                     static_cast<unsigned long long>(errors));
        return 1;
      }
      // The multi-reactor net layer must report its counters: io thread
      // count with one thread_ops gauge per reactor, traffic that actually
      // flowed, and writev accounting consistent with it.
      const gadget::JsonValue* net = server->Get("net");
      if (net == nullptr) {
        std::fprintf(stderr, "%s: missing \"server.net\" (net-layer counters)\n",
                     files[i].c_str());
        return 1;
      }
      const uint64_t io_threads = net->GetUint("io_threads");
      const gadget::JsonValue* thread_ops = net->Get("thread_ops");
      if (io_threads < 1 || thread_ops == nullptr || !thread_ops->is_array() ||
          thread_ops->size() != io_threads) {
        std::fprintf(stderr, "%s: malformed \"server.net\" (io_threads/thread_ops)\n",
                     files[i].c_str());
        return 1;
      }
      const uint64_t bytes_in = net->GetUint("bytes_in");
      const uint64_t bytes_out = net->GetUint("bytes_out");
      const uint64_t writev_calls = net->GetUint("writev_calls");
      const uint64_t frames_max = net->GetUint("frames_per_writev_max");
      if (bytes_in == 0 || bytes_out == 0 || writev_calls == 0 || frames_max == 0) {
        std::fprintf(stderr,
                     "%s: \"server.net\" counters did not move (bytes_in=%llu bytes_out=%llu "
                     "writev_calls=%llu frames_per_writev_max=%llu)\n",
                     files[i].c_str(), static_cast<unsigned long long>(bytes_in),
                     static_cast<unsigned long long>(bytes_out),
                     static_cast<unsigned long long>(writev_calls),
                     static_cast<unsigned long long>(frames_max));
        return 1;
      }
      const bool uring_requested = net->Get("io_uring_requested") != nullptr &&
                                   net->Get("io_uring_requested")->is_bool() &&
                                   net->Get("io_uring_requested")->AsBool();
      const bool uring_active = net->Get("io_uring_active") != nullptr &&
                                net->Get("io_uring_active")->is_bool() &&
                                net->Get("io_uring_active")->AsBool();
      if (uring_active && net->GetUint("uring_enters") == 0) {
        std::fprintf(stderr, "%s: io_uring reported active but uring_enters == 0\n",
                     files[i].c_str());
        return 1;
      }
      std::printf("%s: server replay clean (%llu ops over %llu shards, skew %.3f; "
                  "%llu IO thread(s), %s)\n",
                  files[i].c_str(), static_cast<unsigned long long>(acked),
                  static_cast<unsigned long long>(shards), server->GetDouble("shard_skew"),
                  static_cast<unsigned long long>(io_threads),
                  uring_active ? "io_uring"
                               : (uring_requested ? "epoll (io_uring unavailable)" : "epoll"));
    }
  }
  if (files.size() == 1) {
    return 0;
  }

  auto check = gadget::CompareReportJson(docs[0], docs[1], max_regression);
  if (!check.ok()) {
    std::fprintf(stderr, "compare: %s\n", check.status().ToString().c_str());
    return 2;
  }
  for (const std::string& failure : check->failures) {
    std::fprintf(stderr, "REGRESSION %s\n", failure.c_str());
  }
  std::printf("%zu metric(s) compared within %.0f%% budget: %s\n", check->compared,
              max_regression * 100.0, check->passed ? "PASS" : "FAIL");
  return check->passed ? 0 : 1;
}
