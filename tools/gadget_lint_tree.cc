// Cross-translation-unit analysis for gadget_lint (see gadget_lint.h):
//
//   lock-order        global lock acquisition graph + cycle detection
//   reactor-blocking  blocking calls reachable from `// gadget:reactor-context`
//                     entry points through the static call graph
//
// Like the per-file rules this is a textual analyzer, not a compiler: it
// parses just enough C++ structure (class nesting, Mutex/SharedMutex member
// declarations, function definitions and their bodies, scoped guards, manual
// Lock/Unlock, REQUIRES/ACQUIRE annotations, call sites) to build the two
// graphs. The guiding rule is asymmetric precision: a construct the parser
// cannot attribute with certainty is dropped (false negative), never guessed
// at (false positive) — e.g. an acquisition of a member named `mu` resolves
// only when the enclosing class declares `mu` or exactly one class in the
// whole tree does.
#include "tools/gadget_lint.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace gadget {
namespace lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

int LineAt(const std::string& text, size_t pos) {
  return 1 + static_cast<int>(
                 std::count(text.begin(), text.begin() + static_cast<long>(pos), '\n'));
}

std::vector<std::string> SplitRawLines(std::string_view text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

// Last identifier of a member expression: "shard->pool_.mu" -> "mu".
std::string LastIdent(std::string_view expr) {
  size_t end = expr.size();
  while (end > 0 && !IsIdentChar(expr[end - 1])) {
    --end;
  }
  size_t begin = end;
  while (begin > 0 && IsIdentChar(expr[begin - 1])) {
    --begin;
  }
  return std::string(expr.substr(begin, end - begin));
}

// ------------------------------------------------------------ parsed model

struct FuncDef {
  std::string file;
  int line = 0;            // definition line (1-based)
  std::string cls;         // enclosing or qualifying class; "" for free fns
  std::string name;
  std::string body;        // stripped body text, braces excluded
  size_t body_off = 0;     // offset of body within the stripped file text
  std::vector<std::string> requires_args;  // REQUIRES(...) lock expressions
  std::vector<std::string> acquire_args;   // ACQUIRE(...) lock expressions
};

struct ParsedFile {
  std::string path;
  std::string stripped;
  std::vector<std::string> raw_lines;
  std::vector<FuncDef> defs;
  // "Cls::Name" -> REQUIRES args seen on a declaration (headers annotate;
  // out-of-line definitions in .cc files do not repeat the annotation).
  std::map<std::string, std::vector<std::string>> decl_requires;
  std::vector<int> reactor_marker_lines;  // `// gadget:reactor-context`
};

// member name -> classes declaring a Mutex/SharedMutex of that name
// ("" = namespace scope).
using LockRegistry = std::map<std::string, std::set<std::string>>;

const char* const kSkipNames[] = {
    "if",     "for",    "while",   "switch", "return", "catch",  "sizeof",
    "new",    "case",   "throw",   "goto",   "assert", "static_assert",
    "decltype", "alignof", "operator", "defined", "noexcept",
};

bool IsSkipName(std::string_view name) {
  for (const char* s : kSkipNames) {
    if (name == s) {
      return true;
    }
  }
  return false;
}

// True when the token ending just before `pos` (skipping whitespace) puts the
// candidate in expression context — i.e. it is a call, not a definition.
bool PrecededByCallContext(const std::string& s, size_t pos) {
  size_t p = pos;
  while (p > 0 && std::isspace(static_cast<unsigned char>(s[p - 1]))) {
    --p;
  }
  if (p == 0) {
    return false;  // start of file: definition context
  }
  char prev = s[p - 1];
  if (IsIdentChar(prev)) {
    // Preceding identifier: a return type makes this a definition, but a few
    // keywords mean the candidate is a call or label.
    size_t e = p;
    size_t b = e;
    while (b > 0 && IsIdentChar(s[b - 1])) {
      --b;
    }
    return IsSkipName(std::string_view(s).substr(b, e - b));
  }
  switch (prev) {
    case ';':
    case '{':
    case '}':
    case ')':
    case '*':
      return false;  // statement start / return-type tail
    case '>':
      // `->member(` is a call; `StatusOr<T> F(` is a definition.
      return p >= 2 && s[p - 2] == '-';
    case '&':
      // `a && b(` is expression context; `T& F(` is a definition.
      return p >= 2 && s[p - 2] == '&';
    default:
      return true;  // = , . ! | + - / % < ( ? : [ ~ ^  — expression context
  }
}

size_t MatchParen(const std::string& s, size_t open) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    if (s[i] == '(') {
      ++depth;
    } else if (s[i] == ')' && --depth == 0) {
      return i;
    }
  }
  return std::string::npos;
}

size_t MatchBrace(const std::string& s, size_t open) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    if (s[i] == '{') {
      ++depth;
    } else if (s[i] == '}' && --depth == 0) {
      return i;
    }
  }
  return std::string::npos;
}

// Splits "a, b , c" into trimmed pieces (top-level commas only).
std::vector<std::string> SplitArgs(std::string_view args) {
  std::vector<std::string> out;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i <= args.size(); ++i) {
    if (i < args.size() && (args[i] == '(' || args[i] == '<')) {
      ++depth;
    } else if (i < args.size() && (args[i] == ')' || args[i] == '>')) {
      --depth;
    } else if (i == args.size() || (args[i] == ',' && depth == 0)) {
      std::string_view piece = args.substr(start, i - start);
      while (!piece.empty() && std::isspace(static_cast<unsigned char>(piece.front()))) {
        piece.remove_prefix(1);
      }
      while (!piece.empty() && std::isspace(static_cast<unsigned char>(piece.back()))) {
        piece.remove_suffix(1);
      }
      if (!piece.empty()) {
        out.emplace_back(piece);
      }
      start = i + 1;
    }
  }
  return out;
}

// Walks the tokens after a parameter list looking for the definition body.
// Consumes trailing qualifiers (const, noexcept, override...), thread-safety
// annotations (collecting REQUIRES/ACQUIRE args) and a constructor init list.
// Returns the position of the body '{', npos+sets *is_decl for `;`, or npos
// for anything the parser does not recognize (conservatively not a def).
size_t FindBodyStart(const std::string& s, size_t after_params, bool* is_decl,
                     std::vector<std::string>* requires_args,
                     std::vector<std::string>* acquire_args) {
  *is_decl = false;
  size_t i = after_params;
  while (i < s.size()) {
    char c = s[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '{') {
      return i;
    }
    if (c == ';') {
      *is_decl = true;
      return std::string::npos;
    }
    if (c == ':') {
      // Constructor init list: `ident (args)` or `ident {args}` entries
      // separated by commas, then the body brace.
      ++i;
      for (;;) {
        while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
          ++i;
        }
        // Initializer name, possibly qualified/templated (Base<T>::Base).
        size_t name_begin = i;
        while (i < s.size() && (IsIdentChar(s[i]) || s[i] == ':' || s[i] == '<' ||
                                s[i] == '>' || s[i] == ',' || s[i] == ' ')) {
          // `<...>` may contain commas; stop at '(' / '{' below.
          if (s[i] == ',' ) {
            // Comma outside template args separates entries; detect by
            // checking whether we consumed any '<' without '>' yet — keep it
            // simple: a comma directly after an identifier run means a
            // malformed parse; bail out.
            break;
          }
          ++i;
        }
        if (i >= s.size() || i == name_begin) {
          return std::string::npos;
        }
        if (s[i] == '(') {
          size_t close = MatchParen(s, i);
          if (close == std::string::npos) {
            return std::string::npos;
          }
          i = close + 1;
        } else if (s[i] == '{') {
          size_t close = MatchBrace(s, i);
          if (close == std::string::npos) {
            return std::string::npos;
          }
          i = close + 1;
        } else {
          return std::string::npos;
        }
        while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
          ++i;
        }
        if (i < s.size() && s[i] == ',') {
          ++i;
          continue;
        }
        break;
      }
      continue;  // expect the body '{' next
    }
    if (IsIdentStart(c)) {
      size_t b = i;
      while (i < s.size() && IsIdentChar(s[i])) {
        ++i;
      }
      std::string_view tok = std::string_view(s).substr(b, i - b);
      bool is_requires = tok == "REQUIRES" || tok == "REQUIRES_SHARED";
      bool is_acquire = tok == "ACQUIRE" || tok == "ACQUIRE_SHARED";
      bool is_other_annotation = tok == "RELEASE" || tok == "RELEASE_SHARED" ||
                                 tok == "EXCLUDES" || tok == "RETURN_CAPABILITY" ||
                                 tok == "TRY_ACQUIRE" || tok == "TRY_ACQUIRE_SHARED";
      if (is_requires || is_acquire || is_other_annotation) {
        while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
          ++i;
        }
        if (i < s.size() && s[i] == '(') {
          size_t close = MatchParen(s, i);
          if (close == std::string::npos) {
            return std::string::npos;
          }
          std::vector<std::string> args = SplitArgs(
              std::string_view(s).substr(i + 1, close - i - 1));
          if (is_requires) {
            requires_args->insert(requires_args->end(), args.begin(), args.end());
          } else if (is_acquire) {
            acquire_args->insert(acquire_args->end(), args.begin(), args.end());
          }
          i = close + 1;
        }
        continue;
      }
      if (tok == "const" || tok == "noexcept" || tok == "override" || tok == "final" ||
          tok == "mutable" || tok == "try" || tok == "NO_THREAD_SAFETY_ANALYSIS") {
        continue;
      }
      return std::string::npos;  // unknown token: not a recognizable definition
    }
    return std::string::npos;  // any other character: expression context
  }
  return std::string::npos;
}

// ------------------------------------------------------------- file parser

void ParseStructure(ParsedFile* pf, LockRegistry* locks) {
  const std::string& s = pf->stripped;

  // Markers live in comments, which stripping blanks out — scan raw lines.
  // The marker must be a standalone comment line so that lint-test snippets
  // (string literals mentioning the marker) never register entry points.
  static const std::regex kReactorMark(R"(^\s*//\s*gadget:reactor-context\b)");
  for (size_t i = 0; i < pf->raw_lines.size(); ++i) {
    if (std::regex_search(pf->raw_lines[i], kReactorMark)) {
      pf->reactor_marker_lines.push_back(static_cast<int>(i + 1));
    }
  }

  struct ClassCtx {
    std::string name;
    int depth;
  };
  std::vector<ClassCtx> class_stack;
  std::string pending_class;
  bool expect_class_name = false;
  std::string prev_token;
  int depth = 0;

  static const std::regex kLockDecl(
      R"(^\s*(?:mutable\s+)?(?:Mutex|SharedMutex)\s+([A-Za-z_]\w*)\s*;)");

  size_t i = 0;
  size_t line_start = 0;
  while (i < s.size()) {
    char c = s[i];
    if (c == '\n') {
      // Lock member declarations are line-shaped; match the finished line.
      std::string line = s.substr(line_start, i - line_start);
      std::smatch m;
      if (std::regex_search(line, m, kLockDecl)) {
        const std::string cls = class_stack.empty() ? "" : class_stack.back().name;
        (*locks)[m[1].str()].insert(cls);
      }
      line_start = i + 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t b = i;
      while (i < s.size() && IsIdentChar(s[i])) {
        ++i;
      }
      std::string tok = s.substr(b, i - b);
      if (expect_class_name) {
        pending_class = tok;
        expect_class_name = false;
      } else if ((tok == "class" || tok == "struct") && prev_token != "enum") {
        expect_class_name = true;
      }
      // Candidate function: identifier (possibly `Cls::Name` qualified)
      // directly followed by '('.
      size_t j = i;
      std::string qual;
      size_t full_begin = b;
      while (j + 1 < s.size() && s[j] == ':' && s[j + 1] == ':' && j + 2 < s.size() &&
             IsIdentStart(s[j + 2])) {
        qual = tok;  // innermost qualifier wins (Server::Impl::F -> Impl)
        size_t nb = j + 2;
        size_t ne = nb;
        while (ne < s.size() && IsIdentChar(s[ne])) {
          ++ne;
        }
        tok = s.substr(nb, ne - nb);
        j = ne;
      }
      size_t k = j;
      while (k < s.size() && (s[k] == ' ' || s[k] == '\t')) {
        ++k;
      }
      if (k < s.size() && s[k] == '(' && !IsSkipName(tok) &&
          !PrecededByCallContext(s, full_begin)) {
        size_t close = MatchParen(s, k);
        if (close != std::string::npos) {
          bool is_decl = false;
          std::vector<std::string> req;
          std::vector<std::string> acq;
          size_t body = FindBodyStart(s, close + 1, &is_decl, &req, &acq);
          const std::string cls =
              !qual.empty() ? qual
                            : (class_stack.empty() ? "" : class_stack.back().name);
          if (body != std::string::npos) {
            size_t body_close = MatchBrace(s, body);
            if (body_close != std::string::npos) {
              FuncDef d;
              d.file = pf->path;
              d.line = LineAt(s, full_begin);
              d.cls = cls;
              d.name = tok;
              d.body = s.substr(body + 1, body_close - body - 1);
              d.body_off = body + 1;
              d.requires_args = std::move(req);
              d.acquire_args = std::move(acq);
              pf->defs.push_back(std::move(d));
            }
          } else if (is_decl && (!req.empty() || !acq.empty())) {
            auto& slot = pf->decl_requires[cls + "::" + tok];
            slot.insert(slot.end(), req.begin(), req.end());
            slot.insert(slot.end(), acq.begin(), acq.end());
          }
        }
      }
      prev_token = std::move(tok);
      continue;
    }
    if (c == '{') {
      ++depth;
      if (!pending_class.empty()) {
        class_stack.push_back({pending_class, depth});
        pending_class.clear();
      }
      ++i;
      continue;
    }
    if (c == '}') {
      if (!class_stack.empty() && class_stack.back().depth == depth) {
        class_stack.pop_back();
      }
      --depth;
      ++i;
      continue;
    }
    if (c == ';') {
      pending_class.clear();
      expect_class_name = false;
    }
    ++i;
  }
}

// --------------------------------------------------------- body event scan

struct BodyEvent {
  enum Kind { kOpenBrace, kCloseBrace, kAcquire, kAcquireManual, kRelease, kCall };
  Kind kind;
  size_t pos = 0;           // offset within the body string
  std::string lock_expr;    // kAcquire*/kRelease: the lock expression
  std::string callee;       // kCall
  std::string callee_qual;  // kCall: `Cls::F(` qualifier, if any
  bool has_receiver = false;  // kCall: `x.F(` / `x->F(`
};

// Receiver / qualifier detection for a call at `name_begin`.
void ClassifyCallSite(const std::string& body, size_t name_begin, BodyEvent* ev) {
  size_t p = name_begin;
  if (p >= 2 && body[p - 1] == ':' && body[p - 2] == ':') {
    size_t e = p - 2;
    size_t b = e;
    while (b > 0 && IsIdentChar(body[b - 1])) {
      --b;
    }
    if (b < e) {
      ev->callee_qual = body.substr(b, e - b);
    }
    return;
  }
  if (p >= 1 && body[p - 1] == '.') {
    ev->has_receiver = true;
  } else if (p >= 2 && body[p - 1] == '>' && body[p - 2] == '-') {
    ev->has_receiver = true;
  }
}

std::vector<BodyEvent> ScanBody(const std::string& body) {
  std::vector<BodyEvent> events;
  for (size_t i = 0; i < body.size(); ++i) {
    char c = body[i];
    if (c == '{') {
      events.push_back({BodyEvent::kOpenBrace, i, "", "", "", false});
    } else if (c == '}') {
      events.push_back({BodyEvent::kCloseBrace, i, "", "", "", false});
    } else if (IsIdentStart(c) && (i == 0 || !IsIdentChar(body[i - 1]))) {
      size_t b = i;
      while (i < body.size() && IsIdentChar(body[i])) {
        ++i;
      }
      std::string tok = body.substr(b, i - b);
      size_t k = i;
      while (k < body.size() && (body[k] == ' ' || body[k] == '\t' || body[k] == '\n')) {
        ++k;
      }
      if (tok == "MutexLock" || tok == "WriterMutexLock" || tok == "ReaderMutexLock") {
        // Scoped guard: `MutexLock name(&expr);`
        size_t vb = k;
        while (vb < body.size() && IsIdentChar(body[vb])) {
          ++vb;
        }
        size_t open = body.find_first_not_of(" \t\n", vb);
        if (open != std::string::npos && body[open] == '(') {
          size_t close = MatchParen(body, open);
          if (close != std::string::npos) {
            std::string arg = body.substr(open + 1, close - open - 1);
            size_t amp = arg.find('&');
            if (amp != std::string::npos) {
              events.push_back(
                  {BodyEvent::kAcquire, b, arg.substr(amp + 1), "", "", false});
            }
          }
        }
        --i;
        continue;
      }
      if (k < body.size() && body[k] == '(') {
        // Manual Lock/Unlock on a receiver, or a plain call.
        bool receiver = (b >= 1 && body[b - 1] == '.') ||
                        (b >= 2 && body[b - 1] == '>' && body[b - 2] == '-');
        if (receiver && (tok == "Lock" || tok == "LockShared")) {
          size_t e = b - (body[b - 1] == '.' ? 1 : 2);
          size_t rb = e;
          while (rb > 0 && (IsIdentChar(body[rb - 1]) || body[rb - 1] == '.' ||
                            body[rb - 1] == '_')) {
            --rb;
          }
          events.push_back(
              {BodyEvent::kAcquireManual, b, body.substr(rb, e - rb), "", "", false});
        } else if (receiver && (tok == "Unlock" || tok == "UnlockShared")) {
          size_t e = b - (body[b - 1] == '.' ? 1 : 2);
          size_t rb = e;
          while (rb > 0 && (IsIdentChar(body[rb - 1]) || body[rb - 1] == '.' ||
                            body[rb - 1] == '_')) {
            --rb;
          }
          events.push_back(
              {BodyEvent::kRelease, b, body.substr(rb, e - rb), "", "", false});
        } else if (!IsSkipName(tok)) {
          BodyEvent ev{BodyEvent::kCall, b, "", tok, "", false};
          ClassifyCallSite(body, b, &ev);
          events.push_back(std::move(ev));
        }
      }
      --i;
      continue;
    }
  }
  return events;
}

// ------------------------------------------------------------- lock graph

struct Edge {
  std::string from;
  std::string to;
  std::string file;
  int line = 0;
  std::string note;
};

struct CallSite {
  std::string callee;
  std::string callee_qual;
  bool has_receiver = false;
  int line = 0;
  std::vector<std::string> held;  // resolved lock ids held at the call
};

struct FuncInfo {
  const FuncDef* def = nullptr;
  std::vector<std::string> direct_acquires;  // resolved locks taken in the body
  std::vector<CallSite> calls;
};

std::optional<std::string> ResolveLock(const std::string& expr, const std::string& cls,
                                       const LockRegistry& locks) {
  const std::string member = LastIdent(expr);
  if (member.empty()) {
    return std::nullopt;
  }
  auto it = locks.find(member);
  if (it == locks.end()) {
    return std::nullopt;
  }
  // A bare member (`mu_`, `this->mu_`) belongs to the enclosing class; an
  // expression with a receiver (`other->mu_`) must not — it names some other
  // object, so only a tree-wide unique declaration attributes it.
  std::string trimmed = expr;
  while (!trimmed.empty() && !IsIdentChar(trimmed.back())) {
    trimmed.pop_back();  // drop trailing spaces/parens so `member` is a suffix
  }
  std::string prefix = trimmed.substr(0, trimmed.size() - member.size());
  while (!prefix.empty() && std::isspace(static_cast<unsigned char>(prefix.back()))) {
    prefix.pop_back();
  }
  const bool bare = prefix.empty() || prefix == "this->" || prefix == "this.";
  if (bare && !cls.empty() && it->second.count(cls) != 0) {
    return cls + "::" + member;
  }
  if (it->second.size() == 1) {
    return *it->second.begin() + "::" + member;
  }
  return std::nullopt;  // ambiguous across classes: skip, never guess
}

void AnalyzeFunctionBody(const ParsedFile& pf, const FuncDef& def,
                         const LockRegistry& locks, FuncInfo* info,
                         std::vector<Edge>* edges) {
  std::vector<BodyEvent> events = ScanBody(def.body);

  // REQUIRES args (from the definition, or inherited from the declaration)
  // are held for the whole function.
  std::vector<std::string> req = def.requires_args;
  if (req.empty()) {
    auto it = pf.decl_requires.find(def.cls + "::" + def.name);
    if (it != pf.decl_requires.end()) {
      req = it->second;
    }
  }
  std::vector<std::string> held;
  for (const std::string& r : req) {
    if (auto id = ResolveLock(r, def.cls, locks)) {
      held.push_back(*id);
    }
  }
  for (const std::string& a : def.acquire_args) {
    if (auto id = ResolveLock(a, def.cls, locks)) {
      info->direct_acquires.push_back(*id);
    }
  }

  auto line_of = [&](size_t body_pos) {
    return LineAt(pf.stripped, def.body_off + body_pos);
  };

  // scopes[d] = locks acquired at brace depth d (released when it closes);
  // manual Lock() calls pin to depth 0 (released only by Unlock()).
  std::vector<std::vector<std::string>> scopes(1);
  for (const BodyEvent& ev : events) {
    switch (ev.kind) {
      case BodyEvent::kOpenBrace:
        scopes.emplace_back();
        break;
      case BodyEvent::kCloseBrace:
        if (scopes.size() > 1) {
          for (const std::string& id : scopes.back()) {
            auto it = std::find(held.begin(), held.end(), id);
            if (it != held.end()) {
              held.erase(it);
            }
          }
          scopes.pop_back();
        }
        break;
      case BodyEvent::kAcquire:
      case BodyEvent::kAcquireManual: {
        auto id = ResolveLock(ev.lock_expr, def.cls, locks);
        if (!id) {
          break;
        }
        for (const std::string& h : held) {
          if (h != *id) {
            edges->push_back({h, *id, pf.path, line_of(ev.pos),
                              def.cls.empty() ? def.name : def.cls + "::" + def.name});
          }
        }
        held.push_back(*id);
        info->direct_acquires.push_back(*id);
        (ev.kind == BodyEvent::kAcquire ? scopes.back() : scopes.front())
            .push_back(*id);
        break;
      }
      case BodyEvent::kRelease: {
        auto id = ResolveLock(ev.lock_expr, def.cls, locks);
        if (!id) {
          break;
        }
        auto it = std::find(held.begin(), held.end(), *id);
        if (it != held.end()) {
          held.erase(it);
        }
        for (auto& scope : scopes) {
          auto sit = std::find(scope.begin(), scope.end(), *id);
          if (sit != scope.end()) {
            scope.erase(sit);
            break;
          }
        }
        break;
      }
      case BodyEvent::kCall:
        info->calls.push_back({ev.callee, ev.callee_qual, ev.has_receiver,
                               line_of(ev.pos), held});
        break;
    }
  }
}

// ------------------------------------------------------------- call graph

struct FuncIndex {
  std::vector<FuncInfo> funcs;
  std::map<std::string, std::vector<size_t>> by_name;
  std::map<std::string, std::vector<size_t>> by_cls_name;   // "Cls::Name"
  std::map<std::string, std::vector<size_t>> by_file_name;  // "file\nName"
};

// Conservative static binding: qualified calls bind by class, receiver calls
// only within the same file (a receiver of unknown type must not jump to a
// same-named method of an unrelated class elsewhere), plain calls prefer the
// enclosing class, then the file, then a tree-wide unique match.
const FuncInfo* Bind(const FuncIndex& idx, const CallSite& call, const FuncDef& caller) {
  auto unique = [&](const std::map<std::string, std::vector<size_t>>& m,
                    const std::string& key) -> const FuncInfo* {
    auto it = m.find(key);
    if (it == m.end() || it->second.size() != 1) {
      return nullptr;
    }
    return &idx.funcs[it->second.front()];
  };
  if (!call.callee_qual.empty()) {
    return unique(idx.by_cls_name, call.callee_qual + "::" + call.callee);
  }
  if (call.has_receiver) {
    return unique(idx.by_file_name, caller.file + "\n" + call.callee);
  }
  if (!caller.cls.empty()) {
    if (const FuncInfo* f = unique(idx.by_cls_name, caller.cls + "::" + call.callee)) {
      return f;
    }
  }
  if (const FuncInfo* f = unique(idx.by_file_name, caller.file + "\n" + call.callee)) {
    return f;
  }
  return unique(idx.by_name, call.callee);
}

// ---------------------------------------------------------- cycle detection

void FindCycles(const std::vector<Edge>& edges, std::vector<Finding>* findings) {
  std::map<std::string, std::vector<const Edge*>> adj;
  std::set<std::string> nodes;
  for (const Edge& e : edges) {
    adj[e.from].push_back(&e);
    nodes.insert(e.from);
    nodes.insert(e.to);
  }
  std::set<std::string> reported;  // canonicalized cycles
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<const Edge*> path;

  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    color[node] = 1;
    for (const Edge* e : adj[node]) {
      if (color[e->to] == 1) {
        // Back edge: the grey path from e->to down to `node`, plus e.
        std::vector<const Edge*> cycle;
        bool in = false;
        for (const Edge* pe : path) {
          if (pe->from == e->to) {
            in = true;
          }
          if (in) {
            cycle.push_back(pe);
          }
        }
        cycle.push_back(e);
        // Canonical form: rotate so the lexicographically smallest lock leads.
        std::vector<std::string> names;
        names.reserve(cycle.size());
        for (const Edge* ce : cycle) {
          names.push_back(ce->from);
        }
        size_t min_i =
            static_cast<size_t>(std::min_element(names.begin(), names.end()) -
                                names.begin());
        std::string canon;
        for (size_t i = 0; i < names.size(); ++i) {
          canon += names[(min_i + i) % names.size()] + ">";
        }
        if (reported.insert(canon).second) {
          std::ostringstream msg;
          msg << "lock-order cycle: ";
          for (size_t i = 0; i < cycle.size(); ++i) {
            const Edge* ce = cycle[(min_i + i) % cycle.size()];
            if (i != 0) {
              msg << " -> ";
            }
            msg << ce->from;
          }
          msg << " -> " << cycle[(min_i + cycle.size() - 1) % cycle.size()]->to << " (";
          for (size_t i = 0; i < cycle.size(); ++i) {
            const Edge* ce = cycle[(min_i + i) % cycle.size()];
            if (i != 0) {
              msg << "; ";
            }
            msg << ce->to << " taken under " << ce->from << " in " << ce->note << " at "
                << ce->file << ":" << ce->line;
          }
          msg << ")";
          const Edge* first = cycle[min_i % cycle.size()];
          findings->push_back({first->file, first->line, "lock-order", msg.str()});
        }
        continue;
      }
      if (color[e->to] == 0) {
        path.push_back(e);
        dfs(e->to);
        path.pop_back();
      }
    }
    color[node] = 2;
  };
  for (const std::string& n : nodes) {
    if (color[n] == 0) {
      dfs(n);
    }
  }
}

// --------------------------------------------------------- reactor blocking

struct BlockingCall {
  int line = 0;
  std::string what;
};

std::vector<BlockingCall> FindBlockingCalls(const ParsedFile& pf, const FuncDef& def) {
  struct Pattern {
    const char* prefilter;  // cheap substring gate before the regex runs
    std::regex re;
    const char* what;
  };
  static const std::vector<Pattern> kPatterns = {
      {"sync", std::regex(R"(\b(fsync|fdatasync|sync_file_range)\s*\()"),
       "file sync syscall"},
      {"sleep", std::regex(R"(\b(sleep_for|sleep_until|usleep|nanosleep)\s*\()"),
       "thread sleep"},
      {"SyncDir", std::regex(R"(\bSyncDir\s*\()"), "directory sync"},
      {"Checkpoint", std::regex(R"(\bCheckpoint\s*\()"), "checkpoint"},
      {"Wait", std::regex(R"((\.|->)\s*Wait(For)?\s*\()"), "condition-variable wait"},
      {"pread", std::regex(R"(\bpread(64)?\s*\()"), "synchronous pread"},
      {"pwrite", std::regex(R"(\bpwrite(64)?\s*\()"), "synchronous pwrite"},
      {"", std::regex(R"(\b(store|shard)\w*\s*(\.|->)\s*)"
                      R"((Put|Get|Delete|Merge|MultiGet|Write|Flush)\s*\()"),
       "store operation (takes the store mutex, may hit disk)"},
  };
  static const std::regex kBlockingOk(R"(^\s*//\s*gadget:blocking-ok\b)");

  std::vector<BlockingCall> out;
  for (const Pattern& p : kPatterns) {
    if (p.prefilter[0] != '\0' && def.body.find(p.prefilter) == std::string::npos) {
      continue;
    }
    for (auto it = std::sregex_iterator(def.body.begin(), def.body.end(), p.re);
         it != std::sregex_iterator(); ++it) {
      int line = LineAt(pf.stripped, def.body_off + static_cast<size_t>(it->position()));
      bool suppressed = false;
      for (int l = std::max(1, line - 3); l <= line; ++l) {
        if (static_cast<size_t>(l - 1) < pf.raw_lines.size() &&
            std::regex_search(pf.raw_lines[static_cast<size_t>(l - 1)], kBlockingOk)) {
          suppressed = true;
          break;
        }
      }
      if (!suppressed) {
        out.push_back({line, p.what});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const BlockingCall& a, const BlockingCall& b) { return a.line < b.line; });
  return out;
}

void CheckReactorBlocking(const std::vector<ParsedFile>& files, const FuncIndex& idx,
                          std::vector<Finding>* findings) {
  // Entry points: the first function defined after each marker line.
  std::vector<size_t> entries;
  for (const ParsedFile& pf : files) {
    for (int mark : pf.reactor_marker_lines) {
      size_t best = idx.funcs.size();
      int best_line = 0;
      for (size_t fi = 0; fi < idx.funcs.size(); ++fi) {
        const FuncDef* d = idx.funcs[fi].def;
        if (d->file == pf.path && d->line > mark &&
            (best == idx.funcs.size() || d->line < best_line)) {
          best = fi;
          best_line = d->line;
        }
      }
      if (best != idx.funcs.size()) {
        entries.push_back(best);
      }
    }
  }

  // BFS with parent tracking so each finding can print the call chain.
  std::map<const FuncInfo*, const FuncInfo*> parent;
  std::map<const FuncInfo*, const FuncInfo*> entry_of;
  std::vector<const FuncInfo*> queue;
  for (size_t e : entries) {
    const FuncInfo* f = &idx.funcs[e];
    if (parent.emplace(f, nullptr).second) {
      entry_of[f] = f;
      queue.push_back(f);
    }
  }
  std::map<std::string, const ParsedFile*> file_by_path;
  for (const ParsedFile& pf : files) {
    file_by_path[pf.path] = &pf;
  }
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    const FuncInfo* f = queue[qi];
    for (const CallSite& call : f->calls) {
      const FuncInfo* callee = Bind(idx, call, *f->def);
      if (callee != nullptr && parent.emplace(callee, f).second) {
        entry_of[callee] = entry_of[f];
        queue.push_back(callee);
      }
    }
  }

  for (const FuncInfo* f : queue) {
    const ParsedFile* pf = file_by_path[f->def->file];
    for (const BlockingCall& bc : FindBlockingCalls(*pf, *f->def)) {
      std::ostringstream chain;
      std::vector<const FuncInfo*> rev;
      for (const FuncInfo* p = f; p != nullptr; p = parent.at(p)) {
        rev.push_back(p);
      }
      for (auto it = rev.rbegin(); it != rev.rend(); ++it) {
        if (it != rev.rbegin()) {
          chain << " -> ";
        }
        const FuncDef* d = (*it)->def;
        chain << (d->cls.empty() ? d->name : d->cls + "::" + d->name);
      }
      findings->push_back(
          {f->def->file, bc.line, "reactor-blocking",
           bc.what + " is reachable from the reactor thread (" + chain.str() +
               "); move it to a worker, or mark it `// gadget:blocking-ok: <why>`"});
    }
  }
}

}  // namespace

std::vector<Finding> AnalyzeTree(const std::vector<SourceFile>& files) {
  std::vector<ParsedFile> parsed;
  parsed.reserve(files.size());
  LockRegistry locks;
  for (const SourceFile& f : files) {
    ParsedFile pf;
    pf.path = f.path;
    pf.stripped = StripCommentsAndStrings(f.content);
    pf.raw_lines = SplitRawLines(f.content);
    ParseStructure(&pf, &locks);
    parsed.push_back(std::move(pf));
  }

  FuncIndex idx;
  std::vector<Edge> edges;
  for (const ParsedFile& pf : parsed) {
    for (const FuncDef& def : pf.defs) {
      FuncInfo info;
      info.def = &def;
      AnalyzeFunctionBody(pf, def, locks, &info, &edges);
      idx.funcs.push_back(std::move(info));
    }
  }
  for (size_t i = 0; i < idx.funcs.size(); ++i) {
    const FuncDef* d = idx.funcs[i].def;
    idx.by_name[d->name].push_back(i);
    if (!d->cls.empty()) {
      idx.by_cls_name[d->cls + "::" + d->name].push_back(i);
    }
    idx.by_file_name[d->file + "\n" + d->name].push_back(i);
  }

  // One-level interprocedural edges: holding H while calling G adds
  // H -> every lock G takes directly. REQUIRES-annotated helpers contribute
  // nothing here (the caller already holds what they need), which is exactly
  // right: a *Locked helper is not a second acquisition.
  for (const FuncInfo& f : idx.funcs) {
    for (const CallSite& call : f.calls) {
      if (call.held.empty()) {
        continue;
      }
      const FuncInfo* callee = Bind(idx, call, *f.def);
      if (callee == nullptr || callee == &f) {
        continue;
      }
      std::set<std::string> callee_locks(callee->direct_acquires.begin(),
                                         callee->direct_acquires.end());
      for (const std::string& to : callee_locks) {
        for (const std::string& h : call.held) {
          if (h != to) {
            const FuncDef* cd = callee->def;
            edges.push_back({h, to, f.def->file, call.line,
                             (f.def->cls.empty() ? f.def->name
                                                 : f.def->cls + "::" + f.def->name) +
                                 " calling " +
                                 (cd->cls.empty() ? cd->name : cd->cls + "::" + cd->name)});
          }
        }
      }
    }
  }

  std::vector<Finding> findings;
  FindCycles(edges, &findings);
  CheckReactorBlocking(parsed, idx, &findings);
  std::stable_sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return a.file != b.file ? a.file < b.file : a.line < b.line;
  });
  return findings;
}

}  // namespace lint
}  // namespace gadget
