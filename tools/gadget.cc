// The `gadget` command-line tool: runs a harness experiment from a config
// file, with optional key=value overrides (appendix A.4).
//
//   gadget <config-file> [key=value ...]
//   gadget - key=value ...              # no file, overrides only
//
// Examples:
//   gadget configs/tumbling.conf
//   gadget configs/tumbling.conf store=faster events=500000
//   gadget - mode=ycsb ycsb_workload=F store=btree
//   gadget configs/tumbling.conf store=lsm batch_size=64 sync_writes=true
#include <cstdio>
#include <iostream>
#include <string>

#include "src/common/config.h"
#include "src/gadget/harness.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <config-file|-> [key=value ...]\n"
                 "see src/gadget/harness.h for the config reference\n",
                 argv[0]);
    return 2;
  }
  gadget::Config config;
  const std::string config_arg = argv[1];
  if (config_arg != "-") {
    auto parsed = gadget::Config::ParseFile(config_arg);
    if (!parsed.ok()) {
      std::fprintf(stderr, "config: %s\n", parsed.status().ToString().c_str());
      return 2;
    }
    config = std::move(*parsed);
  }
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "override must be key=value: %s\n", arg.c_str());
      return 2;
    }
    config.Set(arg.substr(0, eq), arg.substr(eq + 1));
  }
  gadget::Status status = gadget::RunHarness(config, std::cout);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
