// The `gadget` command-line tool: runs a harness experiment from a config
// file, with optional key=value overrides (appendix A.4). Any argument
// starting with "--" is a flag and may appear anywhere; --key=value sets the
// config key `key` (so --report=r.json and --timeline_interval=10000 map to
// the `report` / `timeline_interval` harness keys). The first non-flag
// argument is the config file ("-" for none); the rest are key=value
// overrides. Flags and overrides apply after the file, in argv order.
//
//   gadget <config-file> [key=value ...] [--key=value ...]
//   gadget - key=value ...              # no file, overrides only
//
// Two subcommands select the service layer (DESIGN.md §6) instead of the
// in-process harness; they take the same config-file + overrides grammar:
//
//   gadget serve [config|-] [key=value ...]    # sharded store server
//   gadget loadgen [config|-] [key=value ...]  # wire-level trace replay
//
// Examples:
//   gadget configs/tumbling.conf
//   gadget configs/tumbling.conf store=faster events=500000
//   gadget - mode=ycsb ycsb_workload=F store=btree
//   gadget --report=r.json --timeline_interval=10000 configs/tumbling.conf
//   gadget serve - shards=4 port_file=/tmp/port store=lsm
//   gadget loadgen - port_file=/tmp/port clients=8 shards=4 events=20000
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/config.h"
#include "src/gadget/harness.h"
#include "src/server/service.h"

int main(int argc, char** argv) {
  enum class Command { kHarness, kServe, kLoadgen };
  Command command = Command::kHarness;
  int first_arg = 1;
  if (argc > 1 && std::strcmp(argv[1], "serve") == 0) {
    command = Command::kServe;
    first_arg = 2;
  } else if (argc > 1 && std::strcmp(argv[1], "loadgen") == 0) {
    command = Command::kLoadgen;
    first_arg = 2;
  }
  std::string config_arg;
  std::vector<std::string> overrides;  // key=value, flags already stripped
  for (int i = first_arg; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      arg = arg.substr(2);
      if (arg.find('=') == std::string::npos) {
        arg += "=true";  // bare flag, e.g. --analyze
      }
      overrides.push_back(std::move(arg));
    } else if (config_arg.empty()) {
      config_arg = std::move(arg);
    } else {
      overrides.push_back(std::move(arg));
    }
  }
  if (config_arg.empty()) {
    std::fprintf(stderr,
                 "usage: %s [serve|loadgen] [--key=value ...] <config-file|-> [key=value ...]\n"
                 "see src/gadget/harness.h (harness) and src/server/service.h\n"
                 "(serve/loadgen) for the config reference\n",
                 argv[0]);
    return 2;
  }
  gadget::Config config;
  if (config_arg != "-") {
    auto parsed = gadget::Config::ParseFile(config_arg);
    if (!parsed.ok()) {
      std::fprintf(stderr, "config: %s\n", parsed.status().ToString().c_str());
      return 2;
    }
    config = std::move(*parsed);
  }
  for (const std::string& arg : overrides) {
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "override must be key=value: %s\n", arg.c_str());
      return 2;
    }
    config.Set(arg.substr(0, eq), arg.substr(eq + 1));
  }
  gadget::Status status;
  switch (command) {
    case Command::kServe:
      status = gadget::wire::ServeMain(config, std::cout);
      break;
    case Command::kLoadgen:
      status = gadget::wire::LoadgenMain(config, std::cout);
      break;
    case Command::kHarness:
      status = gadget::RunHarness(config, std::cout);
      break;
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
