#include "tools/gadget_lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace gadget {
namespace lint {
namespace {

const char kJustification[] = "intentionally ignored";

std::vector<std::string_view> SplitLines(std::string_view text) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view TrimLeft(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  return s;
}

// 1-based line number of byte offset `pos` in `text`.
int LineOf(std::string_view text, size_t pos) {
  return 1 + static_cast<int>(std::count(text.begin(), text.begin() + static_cast<long>(pos), '\n'));
}

}  // namespace

std::string FormatFinding(const Finding& f) {
  std::ostringstream out;
  out << f.file << ":" << f.line << ": " << f.rule << ": " << f.message;
  return out.str();
}

Allowlist Allowlist::Parse(std::string_view text) {
  Allowlist list;
  const std::vector<std::string_view> lines = SplitLines(text);
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = TrimLeft(lines[i]);
    if (line.empty() || line.front() == '#') {
      continue;
    }
    size_t space = line.find_first_of(" \t");
    if (space == std::string_view::npos) {
      continue;  // malformed: a rule with no path never suppresses anything
    }
    Entry e;
    e.rule = std::string(line.substr(0, space));
    e.line = static_cast<int>(i + 1);
    std::string_view rest = TrimLeft(line.substr(space));
    size_t end = rest.find_first_of(" \t");
    e.path_suffix = std::string(rest.substr(0, end));
    if (!e.path_suffix.empty()) {
      list.entries_.push_back(std::move(e));
    }
  }
  return list;
}

bool Allowlist::Allows(std::string_view file, std::string_view rule) const {
  bool allowed = false;
  for (const Entry& e : entries_) {
    if (e.rule == rule && (e.path_suffix == "*" || EndsWith(file, e.path_suffix))) {
      e.used = true;  // keep scanning: overlapping entries are all "used"
      allowed = true;
    }
  }
  return allowed;
}

std::vector<Allowlist::Entry> Allowlist::UnusedEntries() const {
  std::vector<Entry> out;
  for (const Entry& e : entries_) {
    if (!e.used) {
      out.push_back(e);
    }
  }
  return out;
}

std::string StripCommentsAndStrings(std::string_view src) {
  std::string out;
  out.reserve(src.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_terminator;  // for kRawString: )delim"
  size_t i = 0;
  auto put = [&](char c) { out.push_back(c == '\n' ? '\n' : c); };
  auto blank = [&](char c) { out.push_back(c == '\n' ? '\n' : ' '); };
  while (i < src.size()) {
    char c = src[i];
    char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          blank(c);
          blank(next);
          i += 2;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          blank(c);
          blank(next);
          i += 2;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(src[i - 1])) &&
                               src[i - 1] != '_'))) {
          // Raw string literal: R"delim( ... )delim"
          size_t open = src.find('(', i + 2);
          if (open == std::string_view::npos) {
            put(c);
            ++i;
            break;
          }
          raw_terminator = ")" + std::string(src.substr(i + 2, open - (i + 2))) + "\"";
          state = State::kRawString;
          for (size_t j = i; j <= open; ++j) {
            blank(src[j]);
          }
          i = open + 1;
        } else if (c == '"') {
          state = State::kString;
          blank(c);
          ++i;
        } else if (c == '\'') {
          state = State::kChar;
          blank(c);
          ++i;
        } else {
          put(c);
          ++i;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        }
        blank(c);
        ++i;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          blank(c);
          blank(next);
          i += 2;
        } else {
          blank(c);
          ++i;
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\' && i + 1 < src.size()) {
          blank(c);
          blank(next);
          i += 2;
        } else {
          if ((state == State::kString && c == '"') || (state == State::kChar && c == '\'')) {
            state = State::kCode;
          }
          blank(c);
          ++i;
        }
        break;
      case State::kRawString:
        if (src.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          for (size_t j = 0; j < raw_terminator.size(); ++j) {
            blank(src[i + j]);
          }
          i += raw_terminator.size();
          state = State::kCode;
        } else {
          blank(c);
          ++i;
        }
        break;
    }
  }
  return out;
}

std::string ExpectedIncludeGuard(std::string_view path) {
  std::string p(path);
  while (p.rfind("./", 0) == 0) {
    p.erase(0, 2);
  }
  // Anchor at the rightmost top-level source directory so absolute paths and
  // out-of-tree invocations still compute the in-repo guard.
  static const char* kRoots[] = {"src", "tools", "tests", "bench", "examples"};
  size_t best = std::string::npos;
  for (const char* root : kRoots) {
    std::string needle = "/" + std::string(root) + "/";
    size_t pos = p.rfind(needle);
    if (pos != std::string::npos && (best == std::string::npos || pos > best)) {
      best = pos;
    }
  }
  if (best != std::string::npos) {
    p = p.substr(best + 1);
  }
  if (p.rfind("src/", 0) == 0) {
    p = p.substr(4);
  }
  std::string guard = "GADGET_";
  for (char c : p) {
    guard.push_back(std::isalnum(static_cast<unsigned char>(c))
                        ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                        : '_');
  }
  guard.push_back('_');
  return guard;
}

namespace {

void CheckIncludeGuard(std::string_view path, const std::vector<std::string_view>& stripped_lines,
                       std::vector<Finding>* findings) {
  const std::string expected = ExpectedIncludeGuard(path);
  for (size_t i = 0; i < stripped_lines.size(); ++i) {
    std::string_view line = TrimLeft(stripped_lines[i]);
    if (line.rfind("#ifndef", 0) != 0) {
      continue;
    }
    std::string_view name = TrimLeft(line.substr(7));
    size_t end = name.find_first_of(" \t");
    name = name.substr(0, end);
    if (name != expected) {
      findings->push_back({std::string(path), static_cast<int>(i + 1), "include-guard",
                           "include guard '" + std::string(name) + "' should be '" + expected +
                               "'"});
      return;
    }
    // The matching #define must follow (the next non-blank line).
    for (size_t j = i + 1; j < stripped_lines.size(); ++j) {
      std::string_view def = TrimLeft(stripped_lines[j]);
      if (def.empty()) {
        continue;
      }
      if (def.rfind("#define", 0) == 0 &&
          TrimLeft(def.substr(7)).substr(0, expected.size()) == expected) {
        return;  // guard is correct
      }
      break;
    }
    findings->push_back({std::string(path), static_cast<int>(i + 1), "include-guard",
                         "#ifndef " + expected + " is not followed by #define " + expected});
    return;
  }
  findings->push_back(
      {std::string(path), 1, "include-guard", "missing include guard; expected " + expected});
}

void CheckLockedRequires(std::string_view path, const std::string& stripped,
                         std::vector<Finding>* findings) {
  static const std::regex kLockedDecl(R"(([A-Za-z_][A-Za-z0-9_]*Locked)\s*\()");
  auto begin = std::sregex_iterator(stripped.begin(), stripped.end(), kLockedDecl);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    size_t name_pos = static_cast<size_t>(it->position(1));
    // Skip uses that are clearly calls, not declarations: member access,
    // qualified names, and expression contexts.
    size_t p = name_pos;
    while (p > 0 && (stripped[p - 1] == ' ' || stripped[p - 1] == '\t' ||
                     stripped[p - 1] == '\n')) {
      --p;
    }
    if (p > 0) {
      char prev = stripped[p - 1];
      if (prev == '.' || prev == '>' || prev == ':' || prev == '=' || prev == '(' ||
          prev == ',' || prev == '!' || prev == '&' || prev == '|') {
        continue;
      }
      // `return FooLocked(...)` is a call.
      if (p >= 6 && stripped.compare(p - 6, 6, "return") == 0) {
        continue;
      }
    }
    // Find the parameter list's closing paren.
    size_t open = stripped.find('(', name_pos);
    int depth = 0;
    size_t close = std::string::npos;
    for (size_t q = open; q < stripped.size(); ++q) {
      if (stripped[q] == '(') {
        ++depth;
      } else if (stripped[q] == ')' && --depth == 0) {
        close = q;
        break;
      }
    }
    if (close == std::string::npos) {
      continue;
    }
    size_t term = stripped.find_first_of(";{", close);
    if (term == std::string::npos) {
      continue;
    }
    std::string_view tail = std::string_view(stripped).substr(close, term - close);
    if (tail.find("REQUIRES") != std::string_view::npos ||
        tail.find("NO_THREAD_SAFETY_ANALYSIS") != std::string_view::npos) {
      continue;
    }
    findings->push_back({std::string(path), LineOf(stripped, name_pos), "locked-requires",
                         std::string(it->str(1)) +
                             " is a *Locked method but declares no REQUIRES(...) annotation"});
  }
}

void CheckBannedCalls(std::string_view path, const std::vector<std::string_view>& stripped_lines,
                      std::vector<Finding>* findings) {
  struct Banned {
    std::regex re;
    const char* message;
  };
  static const Banned kBanned[] = {
      {std::regex(R"(\brand\s*\()"),
       "rand() is banned: benchmarks must be reproducible; use the seeded "
       "std::mt19937 generators (src/distgen)"},
      {std::regex(R"(\bstrcpy\s*\()"),
       "strcpy() is banned: unbounded copy; use std::string"},
      {std::regex(R"(\bsprintf\s*\()"),
       "sprintf() is banned: unbounded format; use snprintf or std::string"},
      {std::regex(R"(\bsystem\s*\()"),
       "system() is banned: shells out of the benchmark harness"},
      {std::regex(R"(\bnew\s+[A-Za-z_][A-Za-z0-9_:<>]*\s*\[)"),
       "raw new[] is banned: use std::vector or std::string"},
  };
  for (size_t i = 0; i < stripped_lines.size(); ++i) {
    const std::string line(stripped_lines[i]);
    for (const Banned& b : kBanned) {
      if (std::regex_search(line, b.re)) {
        findings->push_back({std::string(path), static_cast<int>(i + 1), "banned-call", b.message});
      }
    }
  }
}

void CheckUsingNamespaceStd(std::string_view path,
                            const std::vector<std::string_view>& stripped_lines,
                            std::vector<Finding>* findings) {
  static const std::regex kUsing(R"(\busing\s+namespace\s+std\b)");
  for (size_t i = 0; i < stripped_lines.size(); ++i) {
    if (std::regex_search(std::string(stripped_lines[i]), kUsing)) {
      findings->push_back({std::string(path), static_cast<int>(i + 1), "using-namespace-std",
                           "headers must not `using namespace std` (pollutes every includer)"});
    }
  }
}

void CheckVoidStatus(std::string_view path, const std::vector<std::string_view>& raw_lines,
                     const std::vector<std::string_view>& stripped_lines,
                     std::vector<Finding>* findings) {
  for (size_t i = 0; i < stripped_lines.size(); ++i) {
    size_t pos = stripped_lines[i].find("(void)");
    if (pos == std::string_view::npos) {
      continue;
    }
    // Collect the statement after the cast (up to `;`, peeking at most three
    // lines ahead) and flag only discards of call expressions: `(void)x;`
    // silences an unused variable, which needs no justification.
    std::string stmt(stripped_lines[i].substr(pos + 6));
    for (size_t j = i + 1; j < stripped_lines.size() && j <= i + 3 &&
                           stmt.find(';') == std::string::npos;
         ++j) {
      stmt.append(stripped_lines[j]);
    }
    size_t semi = stmt.find(';');
    if (semi != std::string::npos) {
      stmt.resize(semi);
    }
    if (stmt.find('(') == std::string::npos) {
      continue;
    }
    bool justified = false;
    for (size_t j = i >= 3 ? i - 3 : 0; j <= i; ++j) {
      if (raw_lines[j].find(kJustification) != std::string_view::npos) {
        justified = true;
        break;
      }
    }
    if (!justified) {
      findings->push_back(
          {std::string(path), static_cast<int>(i + 1), "void-status",
           "discarded call result; add a nearby `// ... intentionally ignored: <why>` "
           "comment or handle the status"});
    }
  }
}

// A RenameFile call that is not followed by a SyncDir within the next few
// lines: the rename only becomes crash-durable once the parent directory
// entry is synced, so an unpaired rename re-opens the manifest/WAL crash
// window (DESIGN.md "Durability contract"). The declaration and definition
// of RenameFile itself (`Status RenameFile(...)`) are not calls.
void CheckRenameSync(std::string_view path, const std::vector<std::string_view>& stripped_lines,
                     std::vector<Finding>* findings) {
  static const std::regex kCall(R"(\bRenameFile\s*\()");
  static const std::regex kDecl(R"(\bStatus\s+RenameFile\s*\()");
  constexpr size_t kWindow = 8;  // lines after the call that may hold the sync
  for (size_t i = 0; i < stripped_lines.size(); ++i) {
    const std::string line(stripped_lines[i]);
    if (!std::regex_search(line, kCall) || std::regex_search(line, kDecl)) {
      continue;
    }
    bool synced = false;
    for (size_t j = i; j < stripped_lines.size() && j <= i + kWindow; ++j) {
      if (stripped_lines[j].find("SyncDir") != std::string_view::npos) {
        synced = true;
        break;
      }
    }
    if (!synced) {
      findings->push_back(
          {std::string(path), static_cast<int>(i + 1), "rename-sync",
           "RenameFile without a nearby SyncDir: the rename is not crash-durable until "
           "the parent directory is synced (see DESIGN.md \"Durability contract\")"});
    }
  }
}

// Block reads belong to the shared buffer pool: the legacy BlockCache type
// must not come back, and raw pread() calls outside src/stores/bufferpool/
// bypass the pool's IoBackend (no batching, no io_in_flight accounting).
// Long-standing helpers (PreadAll, RandomAccessFile) are allowlisted.
void CheckBufferPoolBypass(std::string_view path,
                           const std::vector<std::string_view>& stripped_lines,
                           std::vector<Finding>* findings) {
  if (path.find("src/stores/bufferpool/") != std::string_view::npos) {
    return;  // the pool's own implementation
  }
  static const std::regex kBlockCache(R"(\bBlockCache\b)");
  static const std::regex kPread(R"((^|[^A-Za-z0-9_:])(::\s*)?pread(64)?\s*\()");
  for (size_t i = 0; i < stripped_lines.size(); ++i) {
    const std::string line(stripped_lines[i]);
    if (std::regex_search(line, kBlockCache)) {
      findings->push_back({std::string(path), static_cast<int>(i + 1), "bufferpool-bypass",
                           "BlockCache was replaced by the shared BufferPool "
                           "(src/stores/bufferpool/); use BufferPool + PinnedBlock"});
    }
    if (std::regex_search(line, kPread)) {
      findings->push_back({std::string(path), static_cast<int>(i + 1), "bufferpool-bypass",
                           "raw pread() outside src/stores/bufferpool/ bypasses the pool's "
                           "IoBackend (no batching or in-flight accounting); read through "
                           "BufferPool/IoBackend or an allowlisted helper"});
    }
  }
}

// Raw socket syscalls and io_uring socket opcodes belong to src/server/net/:
// every other layer talks through the net:: helpers / FramedConn /
// UringSocket so framing, partial-write handling, EINTR retries and SIGPIPE
// suppression are decided once. The call matcher requires a non-identifier
// (and non `.`/`->`/`:`) character before the call so method calls like
// conn->Send(...) never fire; the opcode matcher covers only the SOCKET
// opcodes (IORING_OP_READ/WRITE stay legal for the buffer pool's file
// backend).
void CheckRawSocket(std::string_view path, const std::vector<std::string_view>& stripped_lines,
                    std::vector<Finding>* findings) {
  if (path.find("src/server/net/") != std::string_view::npos) {
    return;  // the one sanctioned home of the syscalls
  }
  static const std::regex kSyscall(
      R"((^|[^A-Za-z0-9_.>:])(::\s*)?(socket|send|recv|sendto|recvfrom|sendmsg|recvmsg|writev)\s*\()");
  static const std::regex kUringSocketOp(
      R"(IORING_OP_(SENDMSG|SEND|RECVMSG|RECV|WRITEV)([^A-Za-z0-9_]|$))");
  for (size_t i = 0; i < stripped_lines.size(); ++i) {
    const std::string line(stripped_lines[i]);
    std::smatch m;
    if (std::regex_search(line, m, kSyscall)) {
      findings->push_back({std::string(path), static_cast<int>(i + 1), "raw-socket",
                           "raw " + m[3].str() +
                               "() outside src/server/net/ bypasses the service's socket "
                               "helpers (framing, EINTR retries, SIGPIPE suppression); use "
                               "net::TcpConnect/SendAll/RecvChunk/WritevNonBlocking or "
                               "FramedConn"});
    }
    if (std::regex_search(line, m, kUringSocketOp)) {
      findings->push_back({std::string(path), static_cast<int>(i + 1), "raw-socket",
                           "io_uring socket opcode IORING_OP_" + m[1].str() +
                               " outside src/server/net/; submit socket work through "
                               "net::UringSocket so the epoll fallback and counters apply"});
    }
  }
}

}  // namespace

std::vector<Finding> LintContent(std::string_view path, std::string_view content) {
  std::vector<Finding> findings;
  const bool is_header = EndsWith(path, ".h");
  const std::string stripped = StripCommentsAndStrings(content);
  const std::vector<std::string_view> raw_lines = SplitLines(content);
  const std::vector<std::string_view> stripped_lines = SplitLines(stripped);
  if (is_header) {
    CheckIncludeGuard(path, stripped_lines, &findings);
    CheckLockedRequires(path, stripped, &findings);
    CheckUsingNamespaceStd(path, stripped_lines, &findings);
  }
  CheckBannedCalls(path, stripped_lines, &findings);
  CheckVoidStatus(path, raw_lines, stripped_lines, &findings);
  CheckRenameSync(path, stripped_lines, &findings);
  CheckBufferPoolBypass(path, stripped_lines, &findings);
  CheckRawSocket(path, stripped_lines, &findings);
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) { return a.line < b.line; });
  return findings;
}

std::vector<Finding> LintFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {{path, 0, "read-error", "cannot open file"}};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return LintContent(path, buf.str());
}

namespace {

namespace fs = std::filesystem;

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc";
}

bool SkipDir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name.empty() || name.front() == '.' || name.rfind("build", 0) == 0;
}

void Collect(const fs::path& p, std::vector<std::string>* files) {
  std::error_code ec;
  if (fs::is_directory(p, ec)) {
    for (fs::recursive_directory_iterator it(p, ec), end; it != end; it.increment(ec)) {
      if (it->is_directory(ec)) {
        if (SkipDir(it->path())) {
          it.disable_recursion_pending();
        }
        continue;
      }
      if (it->is_regular_file(ec) && IsSourceFile(it->path())) {
        files->push_back(it->path().generic_string());
      }
    }
  } else {
    files->push_back(p.generic_string());
  }
}

}  // namespace

int RunLint(const std::vector<std::string>& paths, const std::string& allowlist_path,
            std::ostream& out, std::ostream& err) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    Collect(p, &files);
  }
  if (files.empty()) {
    err << "gadget_lint: no source files under the given paths\n";
    return 2;
  }
  std::sort(files.begin(), files.end());

  Allowlist allowlist;
  if (!allowlist_path.empty()) {
    std::ifstream in(allowlist_path);
    if (!in) {
      err << "gadget_lint: cannot open allowlist " << allowlist_path << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    allowlist = Allowlist::Parse(buf.str());
  }

  // Read every file once: the per-file rules and the cross-TU pass share the
  // same contents.
  std::vector<Finding> findings;
  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      findings.push_back({file, 0, "read-error", "cannot open file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    SourceFile sf{file, buf.str()};
    for (Finding& f : LintContent(sf.path, sf.content)) {
      findings.push_back(std::move(f));
    }
    sources.push_back(std::move(sf));
  }
  for (Finding& f : AnalyzeTree(sources)) {
    findings.push_back(std::move(f));
  }

  int total = 0;
  for (const Finding& f : findings) {
    if (allowlist.Allows(f.file, f.rule)) {
      continue;
    }
    out << FormatFinding(f) << "\n";
    ++total;
  }
  // An entry that suppressed nothing would silently mask the next regression
  // matching it; the allowlist must shrink when the code it excused improves.
  for (const Allowlist::Entry& e : allowlist.UnusedEntries()) {
    out << FormatFinding({allowlist_path, e.line, "stale-allowlist",
                          "entry '" + e.rule + " " + e.path_suffix +
                              "' suppressed nothing in this run; remove it"})
        << "\n";
    ++total;
  }
  if (total != 0) {
    err << "gadget_lint: " << total << " finding(s) in " << files.size() << " file(s)\n";
    return 1;
  }
  return 0;
}

}  // namespace lint
}  // namespace gadget
