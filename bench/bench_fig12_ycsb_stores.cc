// Figure 12 / §6.3 baseline: the four KV stores under YCSB core workloads
// A (50/50 read-update), D (read latest), F (read-modify-write) — the
// approach a developer without Gadget would use. 8-byte keys, 256-byte
// values, 1K records, zipfian.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/gadget/evaluator.h"
#include "src/ycsb/ycsb.h"

namespace gadget {
namespace {

int Run() {
  bench::PrintHeader("Figure 12 — KV stores under YCSB core workloads A/D/F");
  const std::vector<int> widths = {12, 9, 14, 14, 14};
  bench::PrintRow({"workload", "store", "kops/s", "p50(us)", "p99.9(us)"}, widths);

  struct Preset {
    const char* name;
    YcsbOptions opts;
  };
  const Preset presets[] = {
      {"A", YcsbWorkloadA()}, {"D", YcsbWorkloadD()}, {"F", YcsbWorkloadF()}};
  for (const Preset& preset : presets) {
    YcsbOptions opts = preset.opts;
    opts.record_count = 1'000;
    opts.operation_count = bench::OpsBudget();
    opts.value_size = 256;
    auto workload = GenerateYcsb(opts);
    if (!workload.ok()) {
      std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
      return 1;
    }
    for (const char* engine : {"lsm", "lethe", "btree", "faster"}) {
      ScopedTempDir dir;
      auto store = bench::OpenBenchStore(engine, dir, preset.name);
      if (!store.ok()) {
        return 1;
      }
      // Load phase (not measured), then the run phase.
      auto load = ReplayTrace(workload->load, store->get());
      if (!load.ok()) {
        return 1;
      }
      ReplayOptions ropts;
      ropts.max_ops = bench::OpsBudget();
      auto result = ReplayTrace(workload->run, store->get(), ropts);
      Status close = (*store)->Close();
      if (!result.ok() || !close.ok()) {
        std::fprintf(stderr, "%s/%s failed\n", preset.name, engine);
        return 1;
      }
      bench::PrintRow({preset.name, engine,
                       bench::Fmt(result->throughput_ops_per_sec / 1000.0, 1),
                       bench::Fmt(static_cast<double>(result->latency_ns.Percentile(50)) / 1000.0, 1),
                       bench::Fmt(static_cast<double>(result->latency_ns.Percentile(99.9)) / 1000.0,
                                  1)},
                      widths);
    }
  }
  bench::PrintShapeNote(
      "FASTER posts the highest throughput across workloads (O(1) hash "
      "lookups + in-place updates) but high tail latency on the read-heavy D; "
      "LSM engines beat BerkeleyDB on D; BerkeleyDB is strongest on the "
      "update-heavy A and F");
  return 0;
}

}  // namespace
}  // namespace gadget

int main() { return gadget::Run(); }
