// Figure 11 / §6.2: are Gadget workloads valuable in practice? Replays the
// real (flinklet) trace, the Gadget trace, and the closest tuned YCSB trace
// against all four KV stores and compares throughput and p99.9 latency.
// Gadget results should track the real-trace results; YCSB results diverge,
// sometimes by an order of magnitude.
#include <cstdio>
#include <unordered_set>

#include "bench/bench_util.h"
#include "src/analysis/metrics.h"
#include "src/ycsb/ycsb.h"

namespace gadget {
namespace {

struct OpSpec {
  const char* op;
  const char* ycsb_dist;  // §6.2: sequential / hotspot / latest tunings
};

int Run() {
  bench::PrintHeader("Figure 11 — throughput/latency: real vs Gadget vs tuned YCSB");
  PipelineOptions popts;
  const std::vector<int> widths = {16, 9, 12, 14, 14};
  bench::PrintRow({"operator", "store", "trace", "kops/s", "p99.9(us)"}, widths);

  const OpSpec specs[] = {
      {"aggregation", "sequential"}, {"tumbling_incr", "hotspot"}, {"join_sliding", "latest"}};
  for (const OpSpec& spec : specs) {
    auto real = bench::RealTrace("borg", spec.op, bench::EventsBudget(), popts);
    auto sim = bench::GadgetTrace("borg", spec.op, bench::EventsBudget(), popts);
    if (!real.ok() || !sim.ok()) {
      std::fprintf(stderr, "%s failed\n", spec.op);
      return 1;
    }
    // Tuned YCSB per §4/§6.2.
    OpComposition c = ComputeComposition(*real);
    std::unordered_set<StateKey, StateKeyHash> distinct;
    for (const StateAccess& a : *real) {
      distinct.insert(a.key);
    }
    YcsbOptions yopts;
    yopts.record_count = std::max<uint64_t>(1, distinct.size());
    yopts.operation_count = real->size();
    double writes = c.put + c.merge + c.del;
    yopts.read_proportion = c.get / std::max(c.get + writes, 1e-9);
    yopts.update_proportion = 1.0 - yopts.read_proportion;
    yopts.request_distribution = spec.ycsb_dist;
    yopts.value_size = 64;
    auto ycsb = GenerateYcsb(yopts);
    if (!ycsb.ok()) {
      return 1;
    }

    for (const char* engine : {"lsm", "lethe", "btree", "faster"}) {
      struct Variant {
        const char* label;
        const std::vector<StateAccess>* trace;
      };
      const Variant variants[] = {
          {"real", &*real}, {"gadget", &*sim}, {"ycsb", &ycsb->run}};
      for (const Variant& v : variants) {
        ScopedTempDir dir;
        auto result = bench::ReplayOnStore(*v.trace, engine, dir, spec.op);
        if (!result.ok()) {
          std::fprintf(stderr, "%s/%s/%s: %s\n", spec.op, engine, v.label,
                       result.status().ToString().c_str());
          return 1;
        }
        bench::PrintRow({spec.op, engine, v.label,
                         bench::Fmt(result->throughput_ops_per_sec / 1000.0, 1),
                         bench::Fmt(static_cast<double>(result->latency_ns.Percentile(99.9)) /
                                        1000.0,
                                    1)},
                        widths);
      }
    }
  }
  bench::PrintShapeNote(
      "per store, the gadget rows track the real rows closely; the ycsb rows "
      "deviate (paper: up to 7x throughput and 80x tail-latency error), so "
      "YCSB tuning cannot stand in for streaming traces");
  return 0;
}

}  // namespace
}  // namespace gadget

int main() { return gadget::Run(); }
