// Figure 10 / §6.1: how close are Gadget traces to real traces? Compares the
// Gadget-simulated state access stream to the flinklet ("real") stream on
// identical Borg input: stack distances, unique key sequences, op counts.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/metrics.h"

namespace gadget {
namespace {

int Run() {
  bench::PrintHeader("Figure 10 — Gadget traces vs real traces (Borg)");
  PipelineOptions popts;
  const std::vector<int> widths = {16, 14, 14, 14, 14};
  bench::PrintRow({"operator", "metric", "real", "gadget", "shuffled"}, widths);

  for (const std::string& op : AllOperatorNames()) {
    auto real = bench::RealTrace("borg", op, bench::EventsBudget(), popts);
    auto sim = bench::GadgetTrace("borg", op, bench::EventsBudget(), popts);
    if (!real.ok() || !sim.ok()) {
      std::fprintf(stderr, "%s failed\n", op.c_str());
      return 1;
    }
    auto shuffled = ShuffleTrace(*real, 99);

    bench::PrintRow({op, "ops", std::to_string(real->size()), std::to_string(sim->size()), "-"},
                    widths);
    double sd_real = ComputeStackDistances(*real).Mean();
    double sd_sim = ComputeStackDistances(*sim).Mean();
    double sd_sh = ComputeStackDistances(shuffled).Mean();
    bench::PrintRow({op, "stackdist", bench::Fmt(sd_real, 1), bench::Fmt(sd_sim, 1),
                     bench::Fmt(sd_sh, 1)},
                    widths);
    const int kLen = 8;
    uint64_t sq_real = CountUniqueSequences(*real, kLen)[kLen - 1];
    uint64_t sq_sim = CountUniqueSequences(*sim, kLen)[kLen - 1];
    uint64_t sq_sh = CountUniqueSequences(shuffled, kLen)[kLen - 1];
    bench::PrintRow({op, "uniq-seq8", std::to_string(sq_real), std::to_string(sq_sim),
                     std::to_string(sq_sh)},
                    widths);
  }
  bench::PrintShapeNote(
      "Gadget's simulated traces are near-identical to the real traces on "
      "every locality metric (the integration test proves op/key-level "
      "equality), while shuffled baselines are far off");
  return 0;
}

}  // namespace
}  // namespace gadget

int main() { return gadget::Run(); }
