// Figure 3: event amplification (state requests per input event) and
// keyspace amplification (distinct state keys over distinct input keys) for
// every operator on the Borg stream.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/metrics.h"

namespace gadget {
namespace {

int Run() {
  bench::PrintHeader("Figure 3 — event & keyspace amplification (Borg)");
  const std::vector<int> widths = {16, 12, 12, 14, 14};
  bench::PrintRow({"operator", "event-amp", "key-amp", "input-keys", "state-keys"}, widths);

  auto events = bench::DatasetEvents("borg", bench::EventsBudget());
  if (!events.ok()) {
    std::fprintf(stderr, "%s\n", events.status().ToString().c_str());
    return 1;
  }
  PipelineOptions opts;
  for (const std::string& op : bench::Table1Operators()) {
    auto trace = bench::RealTrace("borg", op, bench::EventsBudget(), opts);
    if (!trace.ok()) {
      std::fprintf(stderr, "%s: %s\n", op.c_str(), trace.status().ToString().c_str());
      return 1;
    }
    Amplification amp = ComputeAmplification(*events, *trace);
    bench::PrintRow({op, bench::Fmt(amp.event_amplification, 2),
                     bench::Fmt(amp.key_amplification, 2),
                     std::to_string(amp.distinct_input_keys),
                     std::to_string(amp.distinct_state_keys)},
                    widths);
  }
  bench::PrintShapeNote(
      "all operators generate >= ~2 state accesses per event except holistic "
      "tumbling (~1 merge/event); sliding windows amplify by ~2x length/slide; "
      "time-based operators (windows, interval join) amplify the key space "
      "heavily while continuous aggregation preserves it (key-amp = 1)");
  return 0;
}

}  // namespace
}  // namespace gadget

int main() { return gadget::Run(); }
