// Figure 6: effect of watermark frequency on the working set size of an
// incremental tumbling window over the Azure stream. Slow watermarks keep
// windows in state longer, inflating the maximum working set (paper: up to
// 3x between wm=100 and wm=1000 events).
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/metrics.h"

namespace gadget {
namespace {

int Run() {
  bench::PrintHeader("Figure 6 — watermark frequency vs working set (Azure, tumbling-incr)");
  const std::vector<int> widths = {18, 14, 14};
  bench::PrintRow({"wm-every", "max-ws", "mean-ws"}, widths);

  double max_ws[2] = {0, 0};
  int i = 0;
  for (uint64_t wm_every : {100ull, 1000ull}) {
    PipelineOptions opts;
    opts.watermark_every = wm_every;
    auto trace = bench::RealTrace("azure", "tumbling_incr", bench::EventsBudget(), opts);
    if (!trace.ok()) {
      std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
      return 1;
    }
    auto timeline = ComputeWorkingSetTimeline(*trace, 100);
    uint64_t max_active = 0;
    double sum = 0;
    for (const auto& p : timeline) {
      max_active = std::max(max_active, p.active_keys);
      sum += static_cast<double>(p.active_keys);
    }
    max_ws[i++] = static_cast<double>(max_active);
    bench::PrintRow({std::to_string(wm_every) + " events", std::to_string(max_active),
                     bench::Fmt(timeline.empty() ? 0 : sum / static_cast<double>(timeline.size()), 1)},
                    widths);
  }
  std::printf("max working set ratio (wm=1000 / wm=100): %.2fx\n",
              max_ws[1] / std::max(max_ws[0], 1.0));
  bench::PrintShapeNote(
      "slow watermarks (1 per 1000 events) increase the maximum working set "
      "severalfold vs eager watermarks (1 per 100): windows cannot fire and "
      "be cleaned up until the watermark advances");
  return 0;
}

}  // namespace
}  // namespace gadget

int main() { return gadget::Run(); }
