#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/json.h"
#include "src/gadget/report.h"

namespace gadget {
namespace bench {

namespace {
uint64_t EnvOr(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return def;
  }
  return std::strtoull(v, nullptr, 10);
}
}  // namespace

uint64_t EventsBudget() { return EnvOr("GADGET_EVENTS", 120'000); }
uint64_t OpsBudget() { return EnvOr("GADGET_OPS", 200'000); }

StatusOr<std::vector<StateAccess>> RealTrace(const std::string& dataset_name,
                                             const std::string& operator_name,
                                             uint64_t max_events, const PipelineOptions& opts) {
  auto dataset = MakeDataset(dataset_name, max_events, /*seed=*/42);
  if (!dataset.ok()) {
    return dataset.status();
  }
  auto result = RunPipeline(operator_name, **dataset, opts);
  if (!result.ok()) {
    return result.status();
  }
  return std::move(result->trace);
}

StatusOr<std::vector<StateAccess>> GadgetTrace(const std::string& dataset_name,
                                               const std::string& operator_name,
                                               uint64_t max_events, const PipelineOptions& opts) {
  auto dataset = MakeDataset(dataset_name, max_events, /*seed=*/42);
  if (!dataset.ok()) {
    return dataset.status();
  }
  auto source = MakeReplaySource(std::move(*dataset), opts.watermark_every);
  auto result = GenerateWorkload(operator_name, *source, opts.operator_config);
  if (!result.ok()) {
    return result.status();
  }
  return std::move(result->trace);
}

StatusOr<std::vector<Event>> DatasetEvents(const std::string& dataset_name, uint64_t max_events) {
  auto dataset = MakeDataset(dataset_name, max_events, /*seed=*/42);
  if (!dataset.ok()) {
    return dataset.status();
  }
  return CollectEvents(**dataset);
}

StatusOr<std::unique_ptr<KVStore>> OpenBenchStore(const std::string& engine,
                                                  const ScopedTempDir& dir,
                                                  const std::string& tag) {
  StoreOptions opts;
  opts.engine = engine;
  opts.dir = dir.path() + "/" + engine + "-" + tag;
  return OpenStore(opts);
}

StatusOr<ReplayResult> ReplayOnStore(const std::vector<StateAccess>& trace,
                                     const std::string& engine, const ScopedTempDir& dir,
                                     const std::string& tag) {
  auto store = OpenBenchStore(engine, dir, tag);
  if (!store.ok()) {
    return store.status();
  }
  ReplayOptions opts;
  opts.max_ops = OpsBudget();
  auto result = ReplayTrace(trace, store->get(), opts);
  Status close = (*store)->Close();
  if (!result.ok()) {
    return result.status();
  }
  if (!close.ok()) {
    return close;
  }
  return result;
}

Status EmitBenchJson(const std::string& path, const std::string& name,
                     const std::vector<BenchRun>& runs) {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("schema", kBenchSchema);
  doc.Set("name", name);
  JsonValue meta = JsonValue::MakeObject();
  meta.Set("git", GitDescribe());
  meta.Set("timestamp", CurrentTimestamp());
  meta.Set("events_budget", EventsBudget());
  meta.Set("ops_budget", OpsBudget());
  doc.Set("meta", std::move(meta));
  JsonValue arr = JsonValue::MakeArray();
  for (const BenchRun& run : runs) {
    JsonValue r = JsonValue::MakeObject();
    r.Set("label", run.label);
    r.Set("engine", run.engine);
    r.Set("result", ReplayResultToJson(run.result));
    r.Set("stats", StoreStatsToJson(run.stats));
    arr.Append(std::move(r));
  }
  doc.Set("runs", std::move(arr));
  std::string text = doc.Write(/*indent=*/2);
  text += '\n';
  GADGET_RETURN_IF_ERROR(WriteStringToFile(path, text));
  std::printf("bench report written to %s (%zu runs)\n", path.c_str(), runs.size());
  return Status::Ok();
}

void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

void PrintRow(const std::vector<std::string>& cells, const std::vector<int>& widths) {
  for (size_t i = 0; i < cells.size(); ++i) {
    int w = i < widths.size() ? widths[i] : 12;
    std::printf("%-*s", w, cells[i].c_str());
  }
  std::printf("\n");
}

void PrintShapeNote(const std::string& note) { std::printf("paper-shape: %s\n", note.c_str()); }

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return std::string(buf);
}

const std::vector<std::string>& Table1Operators() {
  static const std::vector<std::string> kOps = {
      "tumbling_incr", "sliding_incr", "session_incr", "tumbling_hol", "sliding_hol",
      "session_hol",   "join_cont",    "join_interval", "aggregation",
  };
  return kOps;
}

}  // namespace bench
}  // namespace gadget
