// Shared helpers for the per-table / per-figure benchmark binaries.
//
// Every bench prints the paper's rows/series plus a `paper-shape:` note
// describing the qualitative claim being reproduced. Scale defaults keep the
// full suite laptop-friendly; env vars raise them to paper scale:
//   GADGET_EVENTS  events per generated stream   (default 120000)
//   GADGET_OPS     operations per store replay   (default 200000)
#ifndef GADGET_BENCH_BENCH_UTIL_H_
#define GADGET_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/file_util.h"
#include "src/common/status.h"
#include "src/flinklet/runtime.h"
#include "src/gadget/evaluator.h"
#include "src/gadget/event_generator.h"
#include "src/gadget/workload.h"
#include "src/stores/kvstore.h"
#include "src/streams/dataset.h"

namespace gadget {
namespace bench {

uint64_t EventsBudget();  // GADGET_EVENTS
uint64_t OpsBudget();     // GADGET_OPS

// "Real" trace: run the flinklet reference pipeline over a dataset.
StatusOr<std::vector<StateAccess>> RealTrace(const std::string& dataset_name,
                                             const std::string& operator_name,
                                             uint64_t max_events, const PipelineOptions& opts);

// Gadget trace: run the driver/state-machine simulation over the same data.
StatusOr<std::vector<StateAccess>> GadgetTrace(const std::string& dataset_name,
                                               const std::string& operator_name,
                                               uint64_t max_events, const PipelineOptions& opts);

// Collects the dataset's raw events (for amplification metrics).
StatusOr<std::vector<Event>> DatasetEvents(const std::string& dataset_name, uint64_t max_events);

// Opens a store in a fresh subdirectory of `dir`.
StatusOr<std::unique_ptr<KVStore>> OpenBenchStore(const std::string& engine,
                                                  const ScopedTempDir& dir,
                                                  const std::string& tag);

// Replays up to OpsBudget() operations and returns the result.
StatusOr<ReplayResult> ReplayOnStore(const std::vector<StateAccess>& trace,
                                     const std::string& engine, const ScopedTempDir& dir,
                                     const std::string& tag);

// One labeled measurement inside a gadget.bench/1 document.
struct BenchRun {
  std::string label;   // comparison key for report_check, e.g. "replay/lsm"
  std::string engine;
  ReplayResult result;
  StoreStats stats;
};

// Writes a gadget.bench/1 JSON document (src/gadget/report.h) so CI can
// validate and diff bench output. `name` identifies the bench binary, e.g.
// "micro_stores" -> conventionally written to BENCH_micro.json.
Status EmitBenchJson(const std::string& path, const std::string& name,
                     const std::vector<BenchRun>& runs);

// Table formatting.
void PrintHeader(const std::string& title);
void PrintRow(const std::vector<std::string>& cells, const std::vector<int>& widths);
void PrintShapeNote(const std::string& note);

std::string Fmt(double v, int precision = 3);

// The nine Table-1 operators (the eleven minus the two window joins the
// table does not list).
const std::vector<std::string>& Table1Operators();

}  // namespace bench
}  // namespace gadget

#endif  // GADGET_BENCH_BENCH_UTIL_H_
