// Table 2: Kolmogorov-Smirnov test between each operator's input key
// distribution and its state-key distribution (Borg). Continuous aggregation
// is the only operator whose state stream preserves the input distribution.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/stats_tests.h"

namespace gadget {
namespace {

int Run() {
  bench::PrintHeader("Table 2 — KS test: input keys vs state keys (Borg)");
  const std::vector<int> widths = {16, 10, 12, 12, 12, 10};
  bench::PrintRow({"operator", "D", "p-value", "n", "m", "passes"}, widths);

  auto events = bench::DatasetEvents("borg", bench::EventsBudget());
  if (!events.ok()) {
    std::fprintf(stderr, "%s\n", events.status().ToString().c_str());
    return 1;
  }
  std::vector<double> input_ranks = EventKeyRanks(*events);

  PipelineOptions opts;
  for (const std::string& op : bench::Table1Operators()) {
    auto trace = bench::RealTrace("borg", op, bench::EventsBudget(), opts);
    if (!trace.ok()) {
      std::fprintf(stderr, "%s: %s\n", op.c_str(), trace.status().ToString().c_str());
      return 1;
    }
    KsResult r = KsTest(input_ranks, StateKeyRanks(*trace));
    bench::PrintRow({op, bench::Fmt(r.d), bench::Fmt(r.p_value, 4), std::to_string(r.n),
                     std::to_string(r.m), r.Rejects() ? "no" : "YES"},
                    widths);
  }
  bench::PrintShapeNote(
      "every operator distorts the input key distribution (D >> 0, p ~ 0) "
      "except continuous aggregation (D ~ 0, p ~ 1), which uses input keys "
      "directly as state keys");
  return 0;
}

}  // namespace
}  // namespace gadget

int main() { return gadget::Run(); }
