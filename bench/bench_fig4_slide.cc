// Figure 4: effect of the slide of a 10-minute sliding window on event and
// keyspace amplification (Taxi). Amplification is proportional to
// length/slide, as each event is assigned to that many window buckets.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/metrics.h"

namespace gadget {
namespace {

int Run() {
  bench::PrintHeader("Figure 4 — slide of a 10-min window vs amplification (Taxi)");
  const std::vector<int> widths = {12, 14, 12, 12};
  bench::PrintRow({"slide", "length/slide", "event-amp", "key-amp"}, widths);

  auto events = bench::DatasetEvents("taxi", bench::EventsBudget());
  if (!events.ok()) {
    std::fprintf(stderr, "%s\n", events.status().ToString().c_str());
    return 1;
  }
  const uint64_t length_ms = 10 * 60'000;
  for (uint64_t slide_min : {1ull, 2ull, 5ull, 10ull}) {
    PipelineOptions opts;
    opts.operator_config.window_length_ms = length_ms;
    opts.operator_config.window_slide_ms = slide_min * 60'000;
    auto trace = bench::RealTrace("taxi", "sliding_incr", bench::EventsBudget(), opts);
    if (!trace.ok()) {
      std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
      return 1;
    }
    Amplification amp = ComputeAmplification(*events, *trace);
    bench::PrintRow({std::to_string(slide_min) + "min",
                     std::to_string(length_ms / (slide_min * 60'000)),
                     bench::Fmt(amp.event_amplification, 2),
                     bench::Fmt(amp.key_amplification, 2)},
                    widths);
  }
  bench::PrintShapeNote(
      "event amplification tracks ~2x length/slide (a get+put per assigned "
      "window) and keyspace amplification grows as slides shrink");
  return 0;
}

}  // namespace
}  // namespace gadget

int main() { return gadget::Run(); }
