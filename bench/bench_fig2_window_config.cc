// Figure 2: effect of window length (tumbling) and session gap on the
// workload composition of the Taxi stream. Smaller windows / gaps produce a
// higher proportion of delete operations.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/metrics.h"

namespace gadget {
namespace {

int Run() {
  bench::PrintHeader("Figure 2 — window configuration vs op composition (Taxi)");
  const std::vector<int> widths = {22, 8, 8, 8, 8};

  std::printf("\n(a) tumbling incremental window, varying length\n");
  bench::PrintRow({"window-length", "GET", "PUT", "MERGE", "DELETE"}, widths);
  for (uint64_t length_s : {1ull, 5ull, 30ull, 60ull}) {
    PipelineOptions opts;
    opts.operator_config.window_length_ms = length_s * 1000;
    auto trace = bench::RealTrace("taxi", "tumbling_incr", bench::EventsBudget(), opts);
    if (!trace.ok()) {
      std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
      return 1;
    }
    OpComposition c = ComputeComposition(*trace);
    bench::PrintRow({std::to_string(length_s) + "s", bench::Fmt(c.get), bench::Fmt(c.put),
                     bench::Fmt(c.merge), bench::Fmt(c.del)},
                    widths);
  }

  std::printf("\n(b) session incremental window, varying gap\n");
  bench::PrintRow({"session-gap", "GET", "PUT", "MERGE", "DELETE"}, widths);
  for (uint64_t gap_min : {1ull, 2ull, 5ull, 10ull}) {
    PipelineOptions opts;
    opts.operator_config.session_gap_ms = gap_min * 60'000;
    auto trace = bench::RealTrace("taxi", "session_incr", bench::EventsBudget(), opts);
    if (!trace.ok()) {
      std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
      return 1;
    }
    OpComposition c = ComputeComposition(*trace);
    bench::PrintRow({std::to_string(gap_min) + "min", bench::Fmt(c.get), bench::Fmt(c.put),
                     bench::Fmt(c.merge), bench::Fmt(c.del)},
                    widths);
  }

  bench::PrintShapeNote(
      "the smaller the window length (or session gap), the higher the delete "
      "fraction: windows hold fewer updates and expire more often");
  return 0;
}

}  // namespace
}  // namespace gadget

int main() { return gadget::Run(); }
