// Engine-level micro-benchmarks (google-benchmark): point operations per
// engine, merge vs read-modify-write on growing buckets, and block/page
// cache behaviour. These are the building blocks behind the shapes in
// Figures 12/13.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/common/file_util.h"
#include "src/stores/kvstore.h"

namespace gadget {
namespace {

struct EngineFixture {
  explicit EngineFixture(const std::string& engine) {
    dir = std::make_unique<ScopedTempDir>();
    auto opened = OpenStore(engine, dir->path() + "/db");
    if (opened.ok()) {
      store = std::move(*opened);
    }
  }
  std::unique_ptr<ScopedTempDir> dir;
  std::unique_ptr<KVStore> store;
};

std::string KeyOf(uint64_t i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "key%016llu", static_cast<unsigned long long>(i));
  return std::string(buf);
}

void BM_Put(benchmark::State& state, const std::string& engine) {
  EngineFixture fx(engine);
  std::string value(256, 'v');
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.store->Put(KeyOf(i++ % 10'000), value));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_Get(benchmark::State& state, const std::string& engine) {
  EngineFixture fx(engine);
  std::string value(256, 'v');
  for (uint64_t i = 0; i < 10'000; ++i) {
    (void)fx.store->Put(KeyOf(i), value);
  }
  std::string out;
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.store->Get(KeyOf(i++ * 7919 % 10'000), &out));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

// Growing-bucket appends: merge on the LSM vs eager RMW elsewhere — the §6.5
// mechanic behind the holistic-window results.
void BM_BucketAppend(benchmark::State& state, const std::string& engine) {
  EngineFixture fx(engine);
  std::string operand(64, 'o');
  uint64_t bucket = 0;
  uint64_t appended = 0;
  for (auto _ : state) {
    if (fx.store->supports_merge()) {
      benchmark::DoNotOptimize(fx.store->Merge(KeyOf(bucket), operand));
    } else {
      benchmark::DoNotOptimize(fx.store->ReadModifyWrite(KeyOf(bucket), operand));
    }
    // New bucket every 2000 appends, like a firing window.
    if (++appended % 2'000 == 0) {
      (void)fx.store->Delete(KeyOf(bucket));
      ++bucket;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

#define REGISTER_ENGINE_BENCH(fn)                                          \
  BENCHMARK_CAPTURE(fn, lsm, std::string("lsm"));                          \
  BENCHMARK_CAPTURE(fn, lethe, std::string("lethe"));                      \
  BENCHMARK_CAPTURE(fn, btree, std::string("btree"));                      \
  BENCHMARK_CAPTURE(fn, faster, std::string("faster"));                    \
  BENCHMARK_CAPTURE(fn, mem, std::string("mem"))

REGISTER_ENGINE_BENCH(BM_Put);
REGISTER_ENGINE_BENCH(BM_Get);
REGISTER_ENGINE_BENCH(BM_BucketAppend);

}  // namespace
}  // namespace gadget

BENCHMARK_MAIN();
