// Engine-level micro-benchmarks (google-benchmark): point operations per
// engine, merge vs read-modify-write on growing buckets, and block/page
// cache behaviour. These are the building blocks behind the shapes in
// Figures 12/13.
//
// When GADGET_BENCH_JSON=<path> is set, a machine-readable gadget.bench/1
// report is additionally written there after the benchmarks run: one small
// replay (OpsBudget() ops, so GADGET_OPS bounds it) per engine, labeled
// "replay/<engine>", plus a cache-miss-heavy cold-pool read leg on the LSM
// (buffer pool sized below the working set) comparing a serial Get loop
// against batched MultiGet, labeled "read_cold/lsm/serial_get" and
// "read_cold/lsm/multiget", plus a loopback wire replay against the store
// server with 1 and 4 IO threads, labeled "wire/lsm/ioT1" / "wire/lsm/ioT4"
// (the multi-reactor network-path probe). CI's bench-smoke job validates and
// archives this file.
//
// --threads=1,2,4,... additionally runs a concurrent-writer sweep against a
// single LSM instance (ReplaySharded: one trace partitioned by key hash, so
// the single-writer-per-key invariant holds) and adds one JSON run per
// thread count, labeled "replay_mt/lsm/t<N>". This is the scaling probe for
// the pipelined write path: group commit and the immutable-memtable queue
// only pay off with concurrent writers.
#include <benchmark/benchmark.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/file_util.h"
#include "src/gadget/multi.h"
#include "src/server/loadgen.h"
#include "src/server/server.h"
#include "src/stores/kvstore.h"

namespace gadget {
namespace {

struct EngineFixture {
  explicit EngineFixture(const std::string& engine) {
    dir = std::make_unique<ScopedTempDir>();
    StoreOptions opts;
    opts.engine = engine;
    opts.dir = dir->path() + "/db";
    auto opened = OpenStore(opts);
    if (opened.ok()) {
      store = std::move(*opened);
    }
  }
  std::unique_ptr<ScopedTempDir> dir;
  std::unique_ptr<KVStore> store;
};

std::string KeyOf(uint64_t i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "key%016llu", static_cast<unsigned long long>(i));
  return std::string(buf);
}

void BM_Put(benchmark::State& state, const std::string& engine) {
  EngineFixture fx(engine);
  std::string value(256, 'v');
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.store->Put(KeyOf(i++ % 10'000), value));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_Get(benchmark::State& state, const std::string& engine) {
  EngineFixture fx(engine);
  std::string value(256, 'v');
  for (uint64_t i = 0; i < 10'000; ++i) {
    (void)fx.store->Put(KeyOf(i), value);
  }
  std::string out;
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.store->Get(KeyOf(i++ * 7919 % 10'000), &out));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

// Growing-bucket appends: merge on the LSM vs eager RMW elsewhere — the §6.5
// mechanic behind the holistic-window results.
void BM_BucketAppend(benchmark::State& state, const std::string& engine) {
  EngineFixture fx(engine);
  std::string operand(64, 'o');
  uint64_t bucket = 0;
  uint64_t appended = 0;
  for (auto _ : state) {
    if (fx.store->supports_merge()) {
      benchmark::DoNotOptimize(fx.store->Merge(KeyOf(bucket), operand));
    } else {
      benchmark::DoNotOptimize(fx.store->ReadModifyWrite(KeyOf(bucket), operand));
    }
    // New bucket every 2000 appends, like a firing window.
    if (++appended % 2'000 == 0) {
      (void)fx.store->Delete(KeyOf(bucket));
      ++bucket;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

// Batched-write throughput: each iteration fills one WriteBatch of
// state.range(0) puts and commits it with a single Write() call. Keys are
// precomputed — KeyOf's snprintf costs ~100ns, enough to mask the per-op
// savings the batch path is supposed to expose.
void BM_WriteBatch(benchmark::State& state, const std::string& engine) {
  const size_t batch = static_cast<size_t>(state.range(0));
  EngineFixture fx(engine);
  std::string value(256, 'v');
  std::vector<std::string> keys;
  keys.reserve(10'000);
  for (uint64_t i = 0; i < 10'000; ++i) {
    keys.push_back(KeyOf(i));
  }
  WriteBatch wb;
  uint64_t i = 0;
  for (auto _ : state) {
    wb.Clear();  // keeps entry storage: no per-op allocation in steady state
    for (size_t j = 0; j < batch; ++j) {
      wb.Put(keys[i++ % 10'000], value);
    }
    benchmark::DoNotOptimize(fx.store->Write(wb));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}

// Vector-lookup throughput: one MultiGet of state.range(0) keys per
// iteration, striding the preloaded key space.
void BM_MultiGet(benchmark::State& state, const std::string& engine) {
  const size_t batch = static_cast<size_t>(state.range(0));
  EngineFixture fx(engine);
  std::string value(256, 'v');
  std::vector<std::string> preloaded;
  preloaded.reserve(10'000);
  for (uint64_t i = 0; i < 10'000; ++i) {
    preloaded.push_back(KeyOf(i));
    (void)fx.store->Put(preloaded.back(), value);
  }
  std::vector<std::string> keys(batch);
  std::vector<std::string> values;
  std::vector<Status> statuses;
  uint64_t i = 0;
  for (auto _ : state) {
    for (size_t j = 0; j < batch; ++j) {
      keys[j] = preloaded[i++ * 7919 % 10'000];
    }
    benchmark::DoNotOptimize(fx.store->MultiGet(keys, &values, &statuses));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}

#define REGISTER_ENGINE_BENCH(fn)                                          \
  BENCHMARK_CAPTURE(fn, lsm, std::string("lsm"));                          \
  BENCHMARK_CAPTURE(fn, lethe, std::string("lethe"));                      \
  BENCHMARK_CAPTURE(fn, btree, std::string("btree"));                      \
  BENCHMARK_CAPTURE(fn, faster, std::string("faster"));                    \
  BENCHMARK_CAPTURE(fn, mem, std::string("mem"))

// Sweep batch width 1 -> 256; Arg(1) is the apples-to-apples baseline (one
// op per Write/MultiGet call) against which the wins are quoted.
#define REGISTER_BATCH_BENCH(fn)                                           \
  BENCHMARK_CAPTURE(fn, lsm, std::string("lsm"))                           \
      ->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);                        \
  BENCHMARK_CAPTURE(fn, lethe, std::string("lethe"))                       \
      ->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);                        \
  BENCHMARK_CAPTURE(fn, btree, std::string("btree"))                       \
      ->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);                        \
  BENCHMARK_CAPTURE(fn, faster, std::string("faster"))                     \
      ->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);                        \
  BENCHMARK_CAPTURE(fn, mem, std::string("mem"))                           \
      ->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256)

REGISTER_ENGINE_BENCH(BM_Put);
REGISTER_ENGINE_BENCH(BM_Get);
REGISTER_ENGINE_BENCH(BM_BucketAppend);
REGISTER_BATCH_BENCH(BM_WriteBatch);
REGISTER_BATCH_BENCH(BM_MultiGet);

// A small synthetic put/get mix over 1024 keys — enough to touch every
// engine's read and write path and accumulate nonzero StoreStats.
std::vector<StateAccess> JsonReplayTrace(uint64_t ops) {
  std::vector<StateAccess> trace;
  trace.reserve(ops);
  for (uint64_t i = 0; i < ops; ++i) {
    StateAccess a;
    a.key.hi = 1;
    a.key.lo = i % 1024;
    a.op = (i % 2 == 0) ? OpType::kPut : OpType::kGet;
    a.value_size = 64;
    trace.push_back(a);
  }
  return trace;
}

// Parses "--threads=1,2,4" from argv (removing it) into a thread-count list.
std::vector<unsigned> ParseThreadsFlag(int* argc, char** argv) {
  std::vector<unsigned> threads;
  constexpr const char* kPrefix = "--threads=";
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(kPrefix, 0) != 0) {
      continue;
    }
    std::string list = arg.substr(std::string(kPrefix).size());
    size_t pos = 0;
    while (pos < list.size()) {
      size_t comma = list.find(',', pos);
      if (comma == std::string::npos) {
        comma = list.size();
      }
      int n = std::atoi(list.substr(pos, comma - pos).c_str());
      if (n > 0) {
        threads.push_back(static_cast<unsigned>(n));
      }
      pos = comma + 1;
    }
    // Remove the flag so google-benchmark does not reject it.
    for (int j = i; j + 1 < *argc; ++j) {
      argv[j] = argv[j + 1];
    }
    --*argc;
    break;
  }
  return threads;
}

// Replays one shared trace against a single LSM store with 1..N writer
// threads and appends one BenchRun per thread count. Prints a small table so
// the sweep is useful without the JSON report too.
bool RunThreadSweep(const std::vector<unsigned>& threads, std::vector<bench::BenchRun>* runs) {
  const uint64_t ops = bench::OpsBudget();
  const std::vector<StateAccess> trace = JsonReplayTrace(ops);
  ScopedTempDir dir("bench-micro-mt");
  bench::PrintHeader("LSM concurrent-writer sweep (one store, sharded trace)");
  std::printf("%8s %14s %14s %14s %14s\n", "threads", "kops/s", "group_commits", "max_group",
              "stall_ms");
  for (unsigned n : threads) {
    auto store = bench::OpenBenchStore("lsm", dir, "t" + std::to_string(n));
    if (!store.ok()) {
      std::fprintf(stderr, "open lsm t%u: %s\n", n, store.status().ToString().c_str());
      return false;
    }
    ReplayOptions opts;
    opts.timeline_interval_ops = ops / 4 > 0 ? ops / 4 : 1;
    auto result = ReplaySharded(trace, store->get(), n, opts);
    if (!result.ok() || !result->all_ok()) {
      Status s = result.ok() ? result->FirstError() : result.status();
      std::fprintf(stderr, "replay lsm t%u: %s\n", n, s.ToString().c_str());
      return false;
    }
    bench::BenchRun run;
    run.label = "replay_mt/lsm/t" + std::to_string(n);
    run.engine = "lsm";
    run.result = result->Merged();
    run.result.throughput_ops_per_sec = result->combined_throughput_ops_per_sec;
    run.stats = (*store)->stats();
    std::printf("%8u %14.1f %14llu %14llu %14.1f\n", n,
                result->combined_throughput_ops_per_sec / 1e3,
                static_cast<unsigned long long>(run.stats.wal_group_commits),
                static_cast<unsigned long long>(run.stats.wal_group_size_max),
                static_cast<double>(run.stats.stall_micros + run.stats.slowdown_micros) / 1e3);
    runs->push_back(std::move(run));
    Status closed = (*store)->Close();
    if (!closed.ok()) {
      std::fprintf(stderr, "close lsm t%u: %s\n", n, closed.ToString().c_str());
      return false;
    }
  }
  bench::PrintShapeNote(
      "throughput should hold or improve with writer threads: the leader "
      "commits whole groups with one fsync while followers park, and flushes "
      "run on the background queue instead of the writer's critical path");
  return true;
}

// Drops the OS page cache for every file under `dir` so the cold-read legs
// measure device reads, not page-cache hits. POSIX_FADV_DONTNEED only evicts
// clean pages — which is all the load phase leaves behind after Flush+Close.
// Best-effort: on filesystems where it is a no-op (tmpfs) the legs simply
// measure the syscall-batching win instead.
void DropPageCache(const std::string& dir) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) {
      continue;
    }
    int fd = ::open(entry.path().c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      continue;
    }
    // DONTNEED skips dirty pages, and freshly built SSTables have not hit
    // writeback yet — flush them first so the advice actually evicts.
    (void)::fdatasync(fd);
    (void)::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
    (void)::close(fd);
  }
}

// Cache-miss-heavy read leg: one LSM store whose buffer pool is sized far
// below the on-disk working set, read back twice from a cold pool — once
// with a serial Get loop, once with batched MultiGet. MultiGet resolves all
// missed blocks of a batch in one IoBackend wave, so it should beat the
// serial leg and report io_in_flight_max > 1; the serial leg fetches one
// block per miss. Appends "read_cold/lsm/serial_get" and
// "read_cold/lsm/multiget" runs.
bool RunColdReadLeg(std::vector<bench::BenchRun>* runs) {
  const uint64_t keys = std::max<uint64_t>(std::min<uint64_t>(bench::OpsBudget(), 20'000), 512);
  constexpr size_t kBatch = 64;
  constexpr uint64_t kPoolBytes = 64 * 1024;
  ScopedTempDir dir("bench-micro-cold");
  const std::string db = dir.path() + "/db";
  // Block-sized values: every key lives in its own data block, so each pool
  // miss is a distinct block fetch rather than 14 keys amortizing one read.
  const std::string value(4000, 'v');
  {
    StoreOptions opts;
    opts.engine = "lsm";
    opts.dir = db;
    auto store = OpenStore(opts);
    if (!store.ok()) {
      std::fprintf(stderr, "open cold-read load store: %s\n", store.status().ToString().c_str());
      return false;
    }
    for (uint64_t i = 0; i < keys; ++i) {
      Status s = (*store)->Put(KeyOf(i), value);
      if (!s.ok()) {
        std::fprintf(stderr, "cold-read preload: %s\n", s.ToString().c_str());
        return false;
      }
    }
    if (Status s = (*store)->Flush(); !s.ok()) {
      std::fprintf(stderr, "cold-read flush: %s\n", s.ToString().c_str());
      return false;
    }
    if (Status s = (*store)->Close(); !s.ok()) {
      std::fprintf(stderr, "cold-read close: %s\n", s.ToString().c_str());
      return false;
    }
  }
  // Each leg reopens the store so both start from a cold pool.
  auto open_cold = [&db]() {
    StoreOptions opts;
    opts.engine = "lsm";
    opts.dir = db;
    opts.buffer_pool.capacity_bytes = kPoolBytes;
    opts.buffer_pool.shards = 2;
    return OpenStore(opts);
  };
  auto finish_run = [&](const char* label, KVStore* store, uint64_t ops,
                        double seconds) {
    bench::BenchRun run;
    run.label = label;
    run.engine = "lsm";
    run.result.ops = ops;
    run.result.elapsed_seconds = seconds;
    run.result.throughput_ops_per_sec = seconds > 0 ? static_cast<double>(ops) / seconds : 0;
    run.stats = store->stats();
    runs->push_back(run);
    return run;
  };

  double serial_kops = 0;
  {
    DropPageCache(db);
    auto store = open_cold();
    if (!store.ok()) {
      std::fprintf(stderr, "open cold serial: %s\n", store.status().ToString().c_str());
      return false;
    }
    std::string out;
    uint64_t not_found = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < keys; ++i) {
      Status s = (*store)->Get(KeyOf(i * 7919 % keys), &out);
      if (s.IsNotFound()) {
        ++not_found;
      } else if (!s.ok()) {
        std::fprintf(stderr, "cold serial get: %s\n", s.ToString().c_str());
        return false;
      }
    }
    double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (not_found != 0) {
      std::fprintf(stderr, "cold serial get: %llu unexpected misses\n",
                   static_cast<unsigned long long>(not_found));
      return false;
    }
    bench::BenchRun run = finish_run("read_cold/lsm/serial_get", store->get(), keys, secs);
    serial_kops = run.result.throughput_ops_per_sec / 1e3;
    (void)(*store)->Close();
  }

  DropPageCache(db);
  auto store = open_cold();
  if (!store.ok()) {
    std::fprintf(stderr, "open cold multiget: %s\n", store.status().ToString().c_str());
    return false;
  }
  std::vector<std::string> batch;
  batch.reserve(kBatch);
  std::vector<std::string> values;
  std::vector<Status> statuses;
  auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < keys;) {
    batch.clear();
    for (size_t j = 0; j < kBatch && i < keys; ++j, ++i) {
      batch.push_back(KeyOf(i * 7919 % keys));
    }
    Status s = (*store)->MultiGet(batch, &values, &statuses);
    if (!s.ok()) {
      std::fprintf(stderr, "cold multiget: %s\n", s.ToString().c_str());
      return false;
    }
    for (const Status& st : statuses) {
      if (!st.ok()) {
        std::fprintf(stderr, "cold multiget key: %s\n", st.ToString().c_str());
        return false;
      }
    }
  }
  double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  bench::BenchRun mg = finish_run("read_cold/lsm/multiget", store->get(), keys, secs);
  (void)(*store)->Close();

  bench::PrintHeader("Cold-pool read path (pool " + std::to_string(kPoolBytes / 1024) +
                     " KiB, " + std::to_string(keys) + " keys)");
  std::printf("%24s %12s %12s %14s %12s\n", "leg", "kops/s", "io_batches", "io_inflight_max",
              "cache_miss");
  std::printf("%24s %12.1f %12s %14s %12s\n", "serial Get", serial_kops, "-", "-", "-");
  std::printf("%24s %12.1f %12llu %14llu %12llu\n", "MultiGet x64",
              mg.result.throughput_ops_per_sec / 1e3,
              static_cast<unsigned long long>(mg.stats.io_batches),
              static_cast<unsigned long long>(mg.stats.io_in_flight_max),
              static_cast<unsigned long long>(mg.stats.cache_misses));
  if (serial_kops > 0) {
    std::printf("%24s %12.2fx\n", "multiget speedup", mg.result.throughput_ops_per_sec / 1e3 / serial_kops);
  }
  bench::PrintShapeNote(
      "batched MultiGet should clearly beat the serial Get loop on a cold "
      "pool: every batch's block misses are issued as one IoBackend wave "
      "(io_in_flight_max > 1) instead of one blocking read per miss");
  return true;
}

// Replays the synthetic trace over the wire against a loopback store server
// with 1 and then 4 IO threads, labeled "wire/lsm/ioT1" / "wire/lsm/ioT4" —
// the loaded-vs-report comparison for the multi-reactor network path. The
// single-machine caveat applies doubly here: client threads, reactors, and
// shard workers all share this host's cores, so treat the ioT4/ioT1 ratio as
// a smoke signal locally and as the real scaling probe only on multi-core CI.
bool RunWireLeg(std::vector<bench::BenchRun>* runs) {
  const uint64_t ops = bench::OpsBudget();
  const std::vector<StateAccess> trace = JsonReplayTrace(ops);
  bench::PrintHeader("wire replay (loopback loadgen vs store server, lsm)");
  std::printf("%8s %14s %14s %14s %10s\n", "ioT", "kops/s", "writev_calls", "frames/wv max",
              "io_uring");
  for (int io_threads : {1, 4}) {
    ScopedTempDir dir("bench-micro-wire");
    wire::ServerOptions sopts;
    sopts.shards = 4;
    sopts.io_threads = io_threads;
    sopts.store.engine = "lsm";
    sopts.store.dir = dir.path() + "/db";
    auto server = wire::Server::Start(sopts);
    if (!server.ok()) {
      std::fprintf(stderr, "wire ioT%d: %s\n", io_threads, server.status().ToString().c_str());
      return false;
    }
    wire::LoadgenOptions lopts;
    lopts.port = (*server)->port();
    lopts.clients = 8;
    lopts.shards = 4;
    lopts.batch_size = 16;
    lopts.pipeline_depth = 4;
    auto result = wire::RunLoadgen(trace, lopts);
    if (!result.ok()) {
      std::fprintf(stderr, "loadgen ioT%d: %s\n", io_threads, result.status().ToString().c_str());
      return false;
    }
    if (result->ops_acked != result->ops_sent || result->errors != 0) {
      std::fprintf(stderr, "loadgen ioT%d lost operations (%llu/%llu acked, %llu errors)\n",
                   io_threads, static_cast<unsigned long long>(result->ops_acked),
                   static_cast<unsigned long long>(result->ops_sent),
                   static_cast<unsigned long long>(result->errors));
      return false;
    }
    const wire::NetStats net = (*server)->net_stats();
    bench::BenchRun run;
    run.label = "wire/lsm/ioT" + std::to_string(io_threads);
    run.engine = "lsm";
    run.result = result->replay;
    run.stats = (*server)->shard_set()->MergedStats();
    std::printf("%8d %14.1f %14llu %14llu %10s\n", io_threads,
                result->replay.throughput_ops_per_sec / 1e3,
                static_cast<unsigned long long>(net.writev_calls),
                static_cast<unsigned long long>(net.frames_per_writev_max),
                net.io_uring_active ? "yes" : "no");
    runs->push_back(std::move(run));
    (*server)->Stop();
  }
  bench::PrintShapeNote(
      "pipelined responses should coalesce (frames/wv max well above 1), and "
      "with spare cores the ioT4 leg should out-pace ioT1: four reactors "
      "decode and drain connections in parallel instead of serializing every "
      "socket behind one epoll loop");
  return true;
}

// Replays the synthetic trace on every engine and writes the gadget.bench/1
// document to `path`, appending any `extra` runs (the thread sweep). Returns
// false on the first failure.
bool EmitMicroJson(const std::string& path, std::vector<bench::BenchRun> extra) {
  const uint64_t ops = bench::OpsBudget();
  const std::vector<StateAccess> trace = JsonReplayTrace(ops);
  ScopedTempDir dir("bench-micro-json");
  std::vector<bench::BenchRun> runs;
  for (const char* engine : {"mem", "lsm", "lethe", "btree", "faster"}) {
    auto store = bench::OpenBenchStore(engine, dir, "json");
    if (!store.ok()) {
      std::fprintf(stderr, "open %s: %s\n", engine, store.status().ToString().c_str());
      return false;
    }
    ReplayOptions opts;
    opts.timeline_interval_ops = ops / 4 > 0 ? ops / 4 : 1;
    auto result = ReplayTrace(trace, store->get(), opts);
    if (!result.ok()) {
      std::fprintf(stderr, "replay %s: %s\n", engine, result.status().ToString().c_str());
      return false;
    }
    bench::BenchRun run;
    run.label = std::string("replay/") + engine;
    run.engine = engine;
    run.result = std::move(*result);
    run.stats = (*store)->stats();
    runs.push_back(std::move(run));
    Status closed = (*store)->Close();
    if (!closed.ok()) {
      std::fprintf(stderr, "close %s: %s\n", engine, closed.ToString().c_str());
      return false;
    }
  }
  for (auto& run : extra) {
    runs.push_back(std::move(run));
  }
  Status s = bench::EmitBenchJson(path, "micro_stores", runs);
  if (!s.ok()) {
    std::fprintf(stderr, "emit %s: %s\n", path.c_str(), s.ToString().c_str());
    return false;
  }
  return true;
}

}  // namespace
}  // namespace gadget

int main(int argc, char** argv) {
  std::vector<unsigned> threads = gadget::ParseThreadsFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  std::vector<gadget::bench::BenchRun> sweep_runs;
  if (!threads.empty() && !gadget::RunThreadSweep(threads, &sweep_runs)) {
    return 1;
  }
  if (const char* json = std::getenv("GADGET_BENCH_JSON"); json != nullptr && json[0] != '\0') {
    if (!gadget::RunColdReadLeg(&sweep_runs)) {
      return 1;
    }
    if (!gadget::RunWireLeg(&sweep_runs)) {
      return 1;
    }
    if (!gadget::EmitMicroJson(json, std::move(sweep_runs))) {
      return 1;
    }
  }
  return 0;
}
