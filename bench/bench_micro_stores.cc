// Engine-level micro-benchmarks (google-benchmark): point operations per
// engine, merge vs read-modify-write on growing buckets, and block/page
// cache behaviour. These are the building blocks behind the shapes in
// Figures 12/13.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/common/file_util.h"
#include "src/stores/kvstore.h"

namespace gadget {
namespace {

struct EngineFixture {
  explicit EngineFixture(const std::string& engine) {
    dir = std::make_unique<ScopedTempDir>();
    StoreOptions opts;
    opts.engine = engine;
    opts.dir = dir->path() + "/db";
    auto opened = OpenStore(opts);
    if (opened.ok()) {
      store = std::move(*opened);
    }
  }
  std::unique_ptr<ScopedTempDir> dir;
  std::unique_ptr<KVStore> store;
};

std::string KeyOf(uint64_t i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "key%016llu", static_cast<unsigned long long>(i));
  return std::string(buf);
}

void BM_Put(benchmark::State& state, const std::string& engine) {
  EngineFixture fx(engine);
  std::string value(256, 'v');
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.store->Put(KeyOf(i++ % 10'000), value));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_Get(benchmark::State& state, const std::string& engine) {
  EngineFixture fx(engine);
  std::string value(256, 'v');
  for (uint64_t i = 0; i < 10'000; ++i) {
    (void)fx.store->Put(KeyOf(i), value);
  }
  std::string out;
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.store->Get(KeyOf(i++ * 7919 % 10'000), &out));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

// Growing-bucket appends: merge on the LSM vs eager RMW elsewhere — the §6.5
// mechanic behind the holistic-window results.
void BM_BucketAppend(benchmark::State& state, const std::string& engine) {
  EngineFixture fx(engine);
  std::string operand(64, 'o');
  uint64_t bucket = 0;
  uint64_t appended = 0;
  for (auto _ : state) {
    if (fx.store->supports_merge()) {
      benchmark::DoNotOptimize(fx.store->Merge(KeyOf(bucket), operand));
    } else {
      benchmark::DoNotOptimize(fx.store->ReadModifyWrite(KeyOf(bucket), operand));
    }
    // New bucket every 2000 appends, like a firing window.
    if (++appended % 2'000 == 0) {
      (void)fx.store->Delete(KeyOf(bucket));
      ++bucket;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

// Batched-write throughput: each iteration fills one WriteBatch of
// state.range(0) puts and commits it with a single Write() call. Keys are
// precomputed — KeyOf's snprintf costs ~100ns, enough to mask the per-op
// savings the batch path is supposed to expose.
void BM_WriteBatch(benchmark::State& state, const std::string& engine) {
  const size_t batch = static_cast<size_t>(state.range(0));
  EngineFixture fx(engine);
  std::string value(256, 'v');
  std::vector<std::string> keys;
  keys.reserve(10'000);
  for (uint64_t i = 0; i < 10'000; ++i) {
    keys.push_back(KeyOf(i));
  }
  WriteBatch wb;
  uint64_t i = 0;
  for (auto _ : state) {
    wb.Clear();  // keeps entry storage: no per-op allocation in steady state
    for (size_t j = 0; j < batch; ++j) {
      wb.Put(keys[i++ % 10'000], value);
    }
    benchmark::DoNotOptimize(fx.store->Write(wb));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}

// Vector-lookup throughput: one MultiGet of state.range(0) keys per
// iteration, striding the preloaded key space.
void BM_MultiGet(benchmark::State& state, const std::string& engine) {
  const size_t batch = static_cast<size_t>(state.range(0));
  EngineFixture fx(engine);
  std::string value(256, 'v');
  std::vector<std::string> preloaded;
  preloaded.reserve(10'000);
  for (uint64_t i = 0; i < 10'000; ++i) {
    preloaded.push_back(KeyOf(i));
    (void)fx.store->Put(preloaded.back(), value);
  }
  std::vector<std::string> keys(batch);
  std::vector<std::string> values;
  std::vector<Status> statuses;
  uint64_t i = 0;
  for (auto _ : state) {
    for (size_t j = 0; j < batch; ++j) {
      keys[j] = preloaded[i++ * 7919 % 10'000];
    }
    benchmark::DoNotOptimize(fx.store->MultiGet(keys, &values, &statuses));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}

#define REGISTER_ENGINE_BENCH(fn)                                          \
  BENCHMARK_CAPTURE(fn, lsm, std::string("lsm"));                          \
  BENCHMARK_CAPTURE(fn, lethe, std::string("lethe"));                      \
  BENCHMARK_CAPTURE(fn, btree, std::string("btree"));                      \
  BENCHMARK_CAPTURE(fn, faster, std::string("faster"));                    \
  BENCHMARK_CAPTURE(fn, mem, std::string("mem"))

// Sweep batch width 1 -> 256; Arg(1) is the apples-to-apples baseline (one
// op per Write/MultiGet call) against which the wins are quoted.
#define REGISTER_BATCH_BENCH(fn)                                           \
  BENCHMARK_CAPTURE(fn, lsm, std::string("lsm"))                           \
      ->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);                        \
  BENCHMARK_CAPTURE(fn, lethe, std::string("lethe"))                       \
      ->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);                        \
  BENCHMARK_CAPTURE(fn, btree, std::string("btree"))                       \
      ->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);                        \
  BENCHMARK_CAPTURE(fn, faster, std::string("faster"))                     \
      ->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);                        \
  BENCHMARK_CAPTURE(fn, mem, std::string("mem"))                           \
      ->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256)

REGISTER_ENGINE_BENCH(BM_Put);
REGISTER_ENGINE_BENCH(BM_Get);
REGISTER_ENGINE_BENCH(BM_BucketAppend);
REGISTER_BATCH_BENCH(BM_WriteBatch);
REGISTER_BATCH_BENCH(BM_MultiGet);

}  // namespace
}  // namespace gadget

BENCHMARK_MAIN();
