// Ablation (§6.5 / DESIGN.md): how much of the LSM's holistic-window
// advantage comes from the lazy merge operator? Runs the holistic sliding
// workload on the LSM twice — once using native merge, once with merges
// force-translated to eager read-modify-writes — and on FASTER/B+tree for
// reference.
#include <cstdio>

#include "bench/bench_util.h"

namespace gadget {
namespace {

StatusOr<std::vector<StateAccess>> HolisticWorkload() {
  EventGeneratorOptions gen;
  gen.num_events = bench::EventsBudget();
  gen.num_keys = 1'000;
  gen.seed = 42;
  auto source = MakeEventGenerator(gen);
  if (!source.ok()) {
    return source.status();
  }
  OperatorConfig cfg;
  auto result = GenerateWorkload("sliding_hol", **source, cfg);
  if (!result.ok()) {
    return result.status();
  }
  return std::move(result->trace);
}

// Wrapper that hides the engine's merge so the evaluator falls back to RMW.
class NoMergeStore : public KVStore {
 public:
  explicit NoMergeStore(KVStore* inner) : inner_(inner) {}
  using KVStore::Get;
  Status Put(std::string_view k, std::string_view v) override { return inner_->Put(k, v); }
  Status Get(std::string_view k, std::string* v, const ReadOptions& options) override {
    return inner_->Get(k, v, options);
  }
  Status Delete(std::string_view k) override { return inner_->Delete(k); }
  Status ReadModifyWrite(std::string_view k, std::string_view op) override {
    return inner_->ReadModifyWrite(k, op);
  }
  Status Flush() override { return inner_->Flush(); }
  StoreStats stats() const override { return inner_->stats(); }
  std::string name() const override { return inner_->name() + "-nomerge"; }

 private:
  KVStore* inner_;
};

int Run() {
  bench::PrintHeader("Ablation — lazy merge vs eager RMW on the holistic sliding workload");
  auto trace = HolisticWorkload();
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
    return 1;
  }
  const std::vector<int> widths = {20, 14, 14};
  bench::PrintRow({"configuration", "kops/s", "p99.9(us)"}, widths);

  ReplayOptions ropts;
  ropts.max_ops = bench::OpsBudget();

  {
    ScopedTempDir dir;
    auto store = bench::OpenBenchStore("lsm", dir, "merge");
    if (!store.ok()) {
      return 1;
    }
    auto result = ReplayTrace(*trace, store->get(), ropts);
    (void)(*store)->Close();
    if (!result.ok()) {
      return 1;
    }
    bench::PrintRow({"lsm (native merge)", bench::Fmt(result->throughput_ops_per_sec / 1e3, 1),
                     bench::Fmt(static_cast<double>(result->latency_ns.Percentile(99.9)) / 1e3, 1)},
                    widths);
  }
  {
    ScopedTempDir dir;
    auto store = bench::OpenBenchStore("lsm", dir, "rmw");
    if (!store.ok()) {
      return 1;
    }
    NoMergeStore wrapped(store->get());
    auto result = ReplayTrace(*trace, &wrapped, ropts);
    (void)(*store)->Close();
    if (!result.ok()) {
      return 1;
    }
    bench::PrintRow({"lsm (merge->RMW)", bench::Fmt(result->throughput_ops_per_sec / 1e3, 1),
                     bench::Fmt(static_cast<double>(result->latency_ns.Percentile(99.9)) / 1e3, 1)},
                    widths);
  }
  for (const char* engine : {"btree", "faster"}) {
    ScopedTempDir dir;
    auto result = bench::ReplayOnStore(*trace, engine, dir, "ref");
    if (!result.ok()) {
      return 1;
    }
    bench::PrintRow({std::string(engine) + " (RMW)",
                     bench::Fmt(result->throughput_ops_per_sec / 1e3, 1),
                     bench::Fmt(static_cast<double>(result->latency_ns.Percentile(99.9)) / 1e3, 1)},
                    widths);
  }
  bench::PrintShapeNote(
      "disabling the merge operator collapses the LSM's holistic-workload "
      "advantage to (or below) the eager-update engines: lazy appends are THE "
      "reason LSMs win holistic operators (§6.5)");
  return 0;
}

}  // namespace
}  // namespace gadget

int main() { return gadget::Run(); }
