// Figure 13 / §6.3 headline: all four KV stores under the eleven Gadget
// workloads (5s windows, 1s slide, 2min session gap, synthetic zipfian
// sources). The paper's finding: RocksDB is outperformed by FASTER and
// BerkeleyDB on six of eleven workloads (all the incremental ones), but LSM
// engines win the holistic window workloads thanks to lazy merges — and
// RocksDB's tail latency stays robust everywhere.
#include <cstdio>

#include "bench/bench_util.h"

namespace gadget {
namespace {

StatusOr<std::vector<StateAccess>> SyntheticWorkload(const std::string& op) {
  EventGeneratorOptions gen;
  gen.num_events = bench::EventsBudget();
  gen.num_keys = 1'000;
  gen.key_distribution = "zipfian";
  gen.rate_per_sec = 1'000;
  gen.value_size = 64;
  gen.num_streams = op.rfind("join", 0) == 0 ? 2 : 1;
  gen.seed = 42;
  auto source = MakeEventGenerator(gen);
  if (!source.ok()) {
    return source.status();
  }
  OperatorConfig cfg;  // paper defaults
  auto result = GenerateWorkload(op, **source, cfg);
  if (!result.ok()) {
    return result.status();
  }
  return std::move(result->trace);
}

int Run() {
  bench::PrintHeader("Figure 13 — four KV stores x eleven Gadget workloads");
  const std::vector<int> widths = {16, 9, 14, 14, 14};
  bench::PrintRow({"workload", "store", "kops/s", "p50(us)", "p99.9(us)"}, widths);

  int lsm_losses = 0;
  int workloads = 0;
  for (const std::string& op : AllOperatorNames()) {
    auto trace = SyntheticWorkload(op);
    if (!trace.ok()) {
      std::fprintf(stderr, "%s: %s\n", op.c_str(), trace.status().ToString().c_str());
      return 1;
    }
    double tput[4] = {0, 0, 0, 0};
    const char* engines[] = {"lsm", "lethe", "btree", "faster"};
    for (int i = 0; i < 4; ++i) {
      ScopedTempDir dir;
      auto result = bench::ReplayOnStore(*trace, engines[i], dir, op);
      if (!result.ok()) {
        std::fprintf(stderr, "%s/%s: %s\n", op.c_str(), engines[i],
                     result.status().ToString().c_str());
        return 1;
      }
      tput[i] = result->throughput_ops_per_sec;
      bench::PrintRow({op, engines[i], bench::Fmt(tput[i] / 1000.0, 1),
                       bench::Fmt(static_cast<double>(result->latency_ns.Percentile(50)) / 1000.0, 1),
                       bench::Fmt(static_cast<double>(result->latency_ns.Percentile(99.9)) / 1000.0,
                                  1)},
                      widths);
    }
    ++workloads;
    if (tput[2] > tput[0] && tput[3] > tput[0]) {
      ++lsm_losses;  // both btree and faster beat the LSM (paper's criterion)
    }
  }
  std::printf("\nlsm outperformed by BOTH faster and btree on %d of %d workloads\n", lsm_losses,
              workloads);
  bench::PrintShapeNote(
      "hash/B+tree stores win the incremental workloads (in-place updates, "
      "O(1)/O(log n) lookups) — paper: six of eleven; the LSM engines win the "
      "holistic window workloads (lazy merge appends beat rewriting a growing "
      "vector) and keep the most robust tail latency overall");
  return 0;
}

}  // namespace
}  // namespace gadget

int main() { return gadget::Run(); }
