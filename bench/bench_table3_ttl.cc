// Table 3: key TTL (timesteps between first and last access) in real traces
// vs the closest tuned YCSB traces. Streaming state is ephemeral: TTLs are
// orders of magnitude shorter than in YCSB, whose keys live forever.
#include <cstdio>
#include <unordered_set>

#include "bench/bench_util.h"
#include "src/analysis/metrics.h"
#include "src/ycsb/ycsb.h"

namespace gadget {
namespace {

struct RowSpec {
  const char* op;
  const char* closest_ycsb;  // §4: latest / hotspot / sequential
};

int Run() {
  bench::PrintHeader("Table 3 — TTL percentiles: real vs closest YCSB (timesteps)");
  const std::vector<int> widths = {16, 14, 12, 12, 12, 12};
  bench::PrintRow({"operator", "trace", "p50", "p90", "p99.9", "max"}, widths);

  PipelineOptions popts;
  const RowSpec specs[] = {
      {"aggregation", "latest"}, {"tumbling_incr", "hotspot"}, {"join_sliding", "sequential"}};
  for (const RowSpec& spec : specs) {
    auto real = bench::RealTrace("borg", spec.op, bench::EventsBudget(), popts);
    if (!real.ok()) {
      std::fprintf(stderr, "%s\n", real.status().ToString().c_str());
      return 1;
    }
    auto print_ttls = [&](const std::string& label, const std::vector<StateAccess>& trace) {
      auto ttls = ComputeKeyTtls(trace);
      bench::PrintRow({spec.op, label, std::to_string(PercentileOf(ttls, 50)),
                       std::to_string(PercentileOf(ttls, 90)),
                       std::to_string(PercentileOf(ttls, 99.9)),
                       std::to_string(PercentileOf(ttls, 100))},
                      widths);
    };
    print_ttls("real", *real);

    OpComposition c = ComputeComposition(*real);
    std::unordered_set<StateKey, StateKeyHash> distinct;
    for (const StateAccess& a : *real) {
      distinct.insert(a.key);
    }
    YcsbOptions opts;
    opts.record_count = std::max<uint64_t>(1, distinct.size());
    opts.operation_count = real->size();
    double writes = c.put + c.merge + c.del;
    opts.read_proportion = c.get / std::max(c.get + writes, 1e-9);
    opts.update_proportion = 1.0 - opts.read_proportion;
    opts.request_distribution = spec.closest_ycsb;
    auto ycsb = GenerateYcsb(opts);
    if (!ycsb.ok()) {
      std::fprintf(stderr, "%s\n", ycsb.status().ToString().c_str());
      return 1;
    }
    print_ttls(std::string("ycsb-") + spec.closest_ycsb, ycsb->run);
  }
  bench::PrintShapeNote(
      "real streaming workloads have drastically shorter TTLs than the "
      "closest YCSB configuration, most extreme at p50; many YCSB keys are "
      "touched once and never again, which never happens in real traces");
  return 0;
}

}  // namespace
}  // namespace gadget

int main() { return gadget::Run(); }
