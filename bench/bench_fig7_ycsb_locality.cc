// Figure 7 (and the §4 study): real streaming traces vs the closest
// manually-tuned YCSB workloads. YCSB-L (latest) approaches temporal
// locality but has shuffled-like spatial locality; YCSB-S (sequential) has
// extreme spatial locality but no temporal locality. Neither matches the
// real traces on both metrics. Also prints the Wasserstein distance between
// key distributions (§4 "Request distributions").
#include <cstdio>
#include <unordered_set>

#include "bench/bench_util.h"
#include "src/analysis/metrics.h"
#include "src/analysis/stats_tests.h"
#include "src/ycsb/ycsb.h"

namespace gadget {
namespace {

struct Target {
  const char* op;
  double read_fraction;  // tuned to the real trace's mix
};

StatusOr<std::vector<StateAccess>> TunedYcsb(const std::vector<StateAccess>& real,
                                             const std::string& distribution) {
  // §4 methodology: same #operations, #distinct keys, and read/update ratio
  // as the real trace; no inserts; deletes omitted (unsupported in YCSB).
  OpComposition c = ComputeComposition(real);
  std::unordered_set<StateKey, StateKeyHash> distinct;
  for (const StateAccess& a : real) {
    distinct.insert(a.key);
  }
  YcsbOptions opts;
  opts.record_count = std::max<uint64_t>(1, distinct.size());
  opts.operation_count = real.size();
  double writes = c.put + c.merge + c.del;
  double total = c.get + writes;
  opts.read_proportion = total > 0 ? c.get / total : 0.5;
  opts.update_proportion = 1.0 - opts.read_proportion;
  opts.request_distribution = distribution;
  opts.seed = 7;
  auto w = GenerateYcsb(opts);
  if (!w.ok()) {
    return w.status();
  }
  return std::move(w->run);
}

int Run() {
  bench::PrintHeader("Figure 7 — real traces vs tuned YCSB-L / YCSB-S");
  PipelineOptions popts;
  const std::vector<int> widths = {16, 12, 14, 14, 14, 14};
  bench::PrintRow({"operator", "metric", "real", "ycsb-latest", "ycsb-seq", "shuffled"}, widths);

  for (const char* op : {"aggregation", "tumbling_incr", "join_sliding"}) {
    auto real = bench::RealTrace("borg", op, bench::EventsBudget(), popts);
    if (!real.ok()) {
      std::fprintf(stderr, "%s\n", real.status().ToString().c_str());
      return 1;
    }
    auto ycsb_l = TunedYcsb(*real, "latest");
    auto ycsb_s = TunedYcsb(*real, "sequential");
    if (!ycsb_l.ok() || !ycsb_s.ok()) {
      return 1;
    }
    auto shuffled = ShuffleTrace(*real, 99);

    double sd_real = ComputeStackDistances(*real).Mean();
    double sd_l = ComputeStackDistances(*ycsb_l).Mean();
    double sd_s = ComputeStackDistances(*ycsb_s).Mean();
    double sd_sh = ComputeStackDistances(shuffled).Mean();
    bench::PrintRow({op, "stackdist", bench::Fmt(sd_real, 1), bench::Fmt(sd_l, 1),
                     bench::Fmt(sd_s, 1), bench::Fmt(sd_sh, 1)},
                    widths);

    const int kLen = 8;
    auto seq = [&](const std::vector<StateAccess>& t) {
      return std::to_string(CountUniqueSequences(t, kLen)[kLen - 1]);
    };
    bench::PrintRow({op, "uniq-seq8", seq(*real), seq(*ycsb_l), seq(*ycsb_s), seq(shuffled)},
                    widths);

    // Wasserstein distance between key-rank distributions (real vs each).
    auto real_ranks = StateKeyRanks(*real);
    double w_l = Wasserstein1D(real_ranks, StateKeyRanks(*ycsb_l));
    double w_s = Wasserstein1D(real_ranks, StateKeyRanks(*ycsb_s));
    bench::PrintRow({op, "wasserstein", "0", bench::Fmt(w_l, 4), bench::Fmt(w_s, 4), "-"},
                    widths);
  }
  bench::PrintShapeNote(
      "YCSB-latest lands closer on stack distance but its unique-sequence "
      "count tracks the shuffled trace (no spatial locality); YCSB-sequential "
      "has near-minimal sequences (too much spatial locality) but large stack "
      "distances; no YCSB tuning matches real traces on both");
  return 0;
}

}  // namespace
}  // namespace gadget

int main() { return gadget::Run(); }
