// Ablation (§8 / DESIGN.md): Lethe's delete-persistence threshold sweep on a
// delete-heavy streaming workload (short tumbling windows). Lower thresholds
// reclaim tombstoned space sooner at the cost of extra compactions —
// exploiting how predictable streaming deletes are.
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "src/stores/lsm/lsm_store.h"

namespace gadget {
namespace {

StatusOr<std::vector<StateAccess>> DeleteHeavyWorkload() {
  EventGeneratorOptions gen;
  gen.num_events = bench::EventsBudget();
  gen.num_keys = 2'000;
  gen.rate_per_sec = 200;  // low rate + short windows => many deletes
  gen.seed = 42;
  auto source = MakeEventGenerator(gen);
  if (!source.ok()) {
    return source.status();
  }
  OperatorConfig cfg;
  cfg.window_length_ms = 1'000;
  auto result = GenerateWorkload("tumbling_incr", **source, cfg);
  if (!result.ok()) {
    return result.status();
  }
  return std::move(result->trace);
}

int Run() {
  bench::PrintHeader("Ablation — Lethe delete-persistence threshold sweep");
  auto trace = DeleteHeavyWorkload();
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
    return 1;
  }
  const std::vector<int> widths = {16, 12, 14, 14, 16};
  bench::PrintRow({"threshold", "kops/s", "compactions", "sst-bytes", "p99.9(us)"}, widths);

  struct Config {
    const char* label;
    bool delete_aware;
    uint64_t threshold_ms;
  };
  const Config configs[] = {
      {"off (lsm)", false, 0}, {"10000ms", true, 10'000}, {"1000ms", true, 1'000},
      {"100ms", true, 100}};
  for (const Config& config : configs) {
    ScopedTempDir dir;
    LsmOptions opts;
    opts.write_buffer_size = 1 << 20;  // frequent flushes expose tombstones
    opts.delete_aware = config.delete_aware;
    opts.delete_persistence_ms = config.threshold_ms;
    auto store = LsmStore::Open(dir.path() + "/db", opts);
    if (!store.ok()) {
      return 1;
    }
    ReplayOptions ropts;
    ropts.max_ops = bench::OpsBudget();
    auto result = ReplayTrace(*trace, store->get(), ropts);
    if (!result.ok()) {
      return 1;
    }
    // Give the age-based trigger a beat to catch the tail, then measure.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    StoreStats stats = (*store)->stats();
    uint64_t sst_bytes = static_cast<LsmStore*>(store->get())->TotalSstBytes();
    (void)(*store)->Close();
    bench::PrintRow({config.label, bench::Fmt(result->throughput_ops_per_sec / 1e3, 1),
                     std::to_string(stats.compactions), std::to_string(sst_bytes),
                     bench::Fmt(static_cast<double>(result->latency_ns.Percentile(99.9)) / 1e3, 1)},
                    widths);
  }
  bench::PrintShapeNote(
      "lower delete-persistence thresholds trigger more compactions and keep "
      "resident SSTable bytes smaller (tombstoned space reclaimed promptly), "
      "trading background work for space — the §8 'predictable deletes' "
      "opportunity");
  return 0;
}

}  // namespace
}  // namespace gadget

int main() { return gadget::Run(); }
