// Figure 14 / §6.4: concurrent operators sharing one RocksDB(-like) store.
// Two Gadget instances (an incremental and a holistic sliding window, 5s/1s)
// run alone and co-located: Concurrent-A = two operators of the same type,
// Concurrent-B = two different types, all against a single LSM instance.
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"

namespace gadget {
namespace {

StatusOr<std::vector<StateAccess>> SlidingWorkload(bool holistic, uint64_t seed,
                                                   uint64_t key_base) {
  EventGeneratorOptions gen;
  gen.num_events = bench::EventsBudget() / 2;
  gen.num_keys = 1'000;
  gen.seed = seed;
  auto source = MakeEventGenerator(gen);
  if (!source.ok()) {
    return source.status();
  }
  OperatorConfig cfg;  // 5s window, 1s slide
  auto result = GenerateWorkload(holistic ? "sliding_hol" : "sliding_incr", **source, cfg);
  if (!result.ok()) {
    return result.status();
  }
  // Distinct operators own disjoint key ranges in the shared store
  // (single-writer-per-key model, §2.3).
  for (StateAccess& a : result->trace) {
    a.key.hi += key_base;
  }
  return std::move(result->trace);
}

struct Measure {
  double kops = 0;
  double p999_us = 0;
};

StatusOr<Measure> RunAlone(const std::vector<StateAccess>& trace) {
  ScopedTempDir dir;
  auto result = bench::ReplayOnStore(trace, "lsm", dir, "alone");
  if (!result.ok()) {
    return result.status();
  }
  return Measure{result->throughput_ops_per_sec / 1000.0,
                 static_cast<double>(result->latency_ns.Percentile(99.9)) / 1000.0};
}

// Replays `a` on the shared store while `b` runs on a second thread.
StatusOr<Measure> RunShared(const std::vector<StateAccess>& a,
                            const std::vector<StateAccess>& b) {
  ScopedTempDir dir;
  auto store = bench::OpenBenchStore("lsm", dir, "shared");
  if (!store.ok()) {
    return store.status();
  }
  ReplayOptions opts;
  opts.max_ops = bench::OpsBudget() / 2;
  StatusOr<ReplayResult> other = Status::Internal("not run");
  std::thread background([&] { other = ReplayTrace(b, store->get(), opts); });
  auto result = ReplayTrace(a, store->get(), opts);
  background.join();
  Status close = (*store)->Close();
  if (!result.ok()) {
    return result.status();
  }
  if (!other.ok()) {
    return other.status();
  }
  if (!close.ok()) {
    return close;
  }
  return Measure{result->throughput_ops_per_sec / 1000.0,
                 static_cast<double>(result->latency_ns.Percentile(99.9)) / 1000.0};
}

int Run() {
  bench::PrintHeader("Figure 14 — concurrent operators on one LSM instance");
  auto incr = SlidingWorkload(false, 1, 0);
  auto incr2 = SlidingWorkload(false, 2, 1'000'000);
  auto hol = SlidingWorkload(true, 3, 2'000'000);
  auto hol2 = SlidingWorkload(true, 4, 3'000'000);
  if (!incr.ok() || !incr2.ok() || !hol.ok() || !hol2.ok()) {
    std::fprintf(stderr, "workload generation failed\n");
    return 1;
  }

  const std::vector<int> widths = {16, 18, 12, 14};
  bench::PrintRow({"operator", "setting", "kops/s", "p99.9(us)"}, widths);
  struct Row {
    const char* op;
    const char* setting;
    StatusOr<Measure> m;
  };
  Row rows[] = {
      {"sliding-incr", "alone", RunAlone(*incr)},
      {"sliding-incr", "concurrent-A", RunShared(*incr, *incr2)},
      {"sliding-incr", "concurrent-B", RunShared(*incr, *hol)},
      {"sliding-hol", "alone", RunAlone(*hol)},
      {"sliding-hol", "concurrent-A", RunShared(*hol, *hol2)},
      {"sliding-hol", "concurrent-B", RunShared(*hol, *incr)},
  };
  for (const Row& row : rows) {
    if (!row.m.ok()) {
      std::fprintf(stderr, "%s/%s: %s\n", row.op, row.setting,
                   row.m.status().ToString().c_str());
      return 1;
    }
    bench::PrintRow({row.op, row.setting, bench::Fmt(row.m->kops, 1),
                     bench::Fmt(row.m->p999_us, 1)},
                    widths);
  }
  bench::PrintShapeNote(
      "co-location costs throughput and tail latency; the incremental window "
      "suffers most when sharing with another incremental operator "
      "(paper: 1.7x lower throughput, 1.5x higher latency), while the "
      "holistic window is less sensitive (~1.4x / ~1.03x)");
  return 0;
}

}  // namespace
}  // namespace gadget

int main() { return gadget::Run(); }
