// Figure 14 / §6.4: concurrent operators sharing one RocksDB(-like) store.
// Two Gadget instances (an incremental and a holistic sliding window, 5s/1s)
// run alone and co-located: Concurrent-A = two operators of the same type,
// Concurrent-B = two different types, all against a single LSM instance.
//
// Beyond the paper: a scalability sweep against MemStore — N concurrent
// instances (disjoint namespaces) and a single trace sharded across 1..16
// threads — showing the striped store scales where a global lock serializes.
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "src/gadget/multi.h"
#include "src/stores/memstore.h"

namespace gadget {
namespace {

StatusOr<std::vector<StateAccess>> SlidingWorkload(bool holistic, uint64_t seed,
                                                   uint64_t key_base) {
  EventGeneratorOptions gen;
  gen.num_events = bench::EventsBudget() / 2;
  gen.num_keys = 1'000;
  gen.seed = seed;
  auto source = MakeEventGenerator(gen);
  if (!source.ok()) {
    return source.status();
  }
  OperatorConfig cfg;  // 5s window, 1s slide
  auto result = GenerateWorkload(holistic ? "sliding_hol" : "sliding_incr", **source, cfg);
  if (!result.ok()) {
    return result.status();
  }
  // Distinct operators own disjoint key ranges in the shared store
  // (single-writer-per-key model, §2.3).
  for (StateAccess& a : result->trace) {
    a.key.hi += key_base;
  }
  return std::move(result->trace);
}

struct Measure {
  double kops = 0;
  double p999_us = 0;
};

StatusOr<Measure> RunAlone(const std::vector<StateAccess>& trace) {
  ScopedTempDir dir;
  auto result = bench::ReplayOnStore(trace, "lsm", dir, "alone");
  if (!result.ok()) {
    return result.status();
  }
  return Measure{result->throughput_ops_per_sec / 1000.0,
                 static_cast<double>(result->latency_ns.Percentile(99.9)) / 1000.0};
}

// Replays `a` on the shared store while `b` runs on a second thread.
StatusOr<Measure> RunShared(const std::vector<StateAccess>& a,
                            const std::vector<StateAccess>& b) {
  ScopedTempDir dir;
  auto store = bench::OpenBenchStore("lsm", dir, "shared");
  if (!store.ok()) {
    return store.status();
  }
  ReplayOptions opts;
  opts.max_ops = bench::OpsBudget() / 2;
  StatusOr<ReplayResult> other = Status::Internal("not run");
  std::thread background([&] { other = ReplayTrace(b, store->get(), opts); });
  auto result = ReplayTrace(a, store->get(), opts);
  background.join();
  Status close = (*store)->Close();
  if (!result.ok()) {
    return result.status();
  }
  if (!other.ok()) {
    return other.status();
  }
  if (!close.ok()) {
    return close;
  }
  return Measure{result->throughput_ops_per_sec / 1000.0,
                 static_cast<double>(result->latency_ns.Percentile(99.9)) / 1000.0};
}

// Synthetic mixed workload for the MemStore scalability sweep: 3:1 get:put
// over a 2048-key working set, `ops` operations.
std::vector<StateAccess> MixedTrace(uint64_t ops) {
  std::vector<StateAccess> trace;
  trace.reserve(ops);
  for (uint64_t i = 0; i < ops; ++i) {
    trace.push_back(
        StateAccess{(i % 4) ? OpType::kGet : OpType::kPut, StateKey{i % 2048, 0}, 64, i});
  }
  return trace;
}

// `instances` copies of the mixed trace replayed concurrently into disjoint
// namespaces of one MemStore with `stripes` lock stripes. Returns wall-clock
// throughput (total ops over the longest instance), which is meaningful even
// when threads outnumber cores — summing per-instance throughputs is not.
StatusOr<double> InstancesThroughput(int instances, size_t stripes, uint64_t ops_each,
                                     uint64_t sample_every) {
  MemStore store(stripes);
  std::vector<std::vector<StateAccess>> traces(static_cast<size_t>(instances),
                                               MixedTrace(ops_each));
  ReplayOptions opts;
  opts.latency_sample_every = sample_every;
  auto result = ReplayConcurrently(traces, &store, opts);
  if (!result.ok()) {
    return result.status();
  }
  if (!result->all_ok()) {
    return result->FirstError();
  }
  return result->Merged().throughput_ops_per_sec;
}

int RunMemSweep() {
  const uint64_t ops_each = 2 * bench::OpsBudget();

  bench::PrintHeader("Fig 14 extension — 8 concurrent instances, one MemStore");
  const std::vector<int> iw = {26, 14, 12, 12};
  bench::PrintRow({"store configuration", "timing", "Mops/s", "vs baseline"}, iw);
  struct Cfg {
    const char* label;
    size_t stripes;
    uint64_t sample_every;
  };
  // Row 1 reproduces the pre-striping setup (one lock, every op timed); the
  // following rows isolate the striping and sampling contributions.
  double baseline = 0;
  for (const Cfg& c : {Cfg{"global lock (1 stripe)", 1, 1},
                       Cfg{"striped (64), exact", MemStore::kDefaultStripes, 1},
                       Cfg{"striped (64), sampled/16", MemStore::kDefaultStripes, 16}}) {
    auto tput = InstancesThroughput(8, c.stripes, ops_each, c.sample_every);
    if (!tput.ok()) {
      std::fprintf(stderr, "%s: %s\n", c.label, tput.status().ToString().c_str());
      return 1;
    }
    if (baseline == 0) {
      baseline = *tput;
    }
    bench::PrintRow({c.label, c.sample_every == 1 ? "exact" : "sampled",
                     bench::Fmt(*tput / 1e6, 2), bench::Fmt(*tput / baseline, 2) + "x"},
                    iw);
  }

  bench::PrintHeader("Fig 14 extension — one trace sharded across threads (MemStore)");
  const std::vector<int> sw = {10, 12, 12};
  bench::PrintRow({"threads", "Mops/s", "speedup"}, sw);
  const std::vector<StateAccess> trace = MixedTrace(8 * ops_each);
  ReplayOptions opts;
  opts.latency_sample_every = 16;
  double base = 0;
  for (unsigned threads : {1u, 2u, 4u, 8u, 16u}) {
    MemStore store(MemStore::kDefaultStripes);
    auto result = ReplaySharded(trace, &store, threads, opts);
    if (!result.ok() || !result->all_ok()) {
      Status err = result.ok() ? result->FirstError() : result.status();
      std::fprintf(stderr, "%u threads: %s\n", threads, err.ToString().c_str());
      return 1;
    }
    double tput = result->Merged().throughput_ops_per_sec;
    if (threads == 1) {
      base = tput;
    }
    bench::PrintRow({std::to_string(threads), bench::Fmt(tput / 1e6, 2),
                     base > 0 ? bench::Fmt(tput / base, 2) + "x" : "-"},
                    sw);
  }
  std::printf("(hardware: %u core(s) visible; thread scaling needs > 1)\n",
              std::thread::hardware_concurrency());
  bench::PrintShapeNote(
      "the striped MemStore scales with threads until memory bandwidth "
      "saturates; the 1-stripe configuration reproduces the old global-mutex "
      "plateau");
  return 0;
}

// Single-threaded batch_size sweep through the evaluator: the same mixed
// trace replayed with operation coalescing at widths 1 -> 256, against the
// global-lock MemStore (one lock acquisition per batch), the striped
// MemStore (per-stripe run locking), and the LSM (group-commit WAL). The
// win tracks how much synchronization each crossing costs: largest for the
// global lock and the WAL, thinnest for uncontended striped locks.
int RunBatchSweep() {
  const uint64_t ops = 2 * bench::OpsBudget();
  const std::vector<StateAccess> trace = MixedTrace(ops);

  bench::PrintHeader("Fig 14 extension — operation coalescing (batch_size sweep)");
  const std::vector<int> bw = {8, 14, 8, 14, 8, 12, 8};
  bench::PrintRow(
      {"batch", "mem-1 Mops/s", "vs 1", "mem-64 Mops/s", "vs 1", "lsm kops/s", "vs 1"}, bw);
  double mem1_base = 0;
  double mem64_base = 0;
  double lsm_base = 0;
  for (uint64_t batch : {1ull, 4ull, 16ull, 64ull, 256ull}) {
    ReplayOptions opts;
    opts.latency_sample_every = 16;
    opts.batch_size = batch;

    MemStore mem1_store(1);
    auto mem1_res = ReplayTrace(trace, &mem1_store, opts);
    MemStore mem64_store(MemStore::kDefaultStripes);
    auto mem64_res = ReplayTrace(trace, &mem64_store, opts);
    if (!mem1_res.ok() || !mem64_res.ok()) {
      Status err = mem1_res.ok() ? mem64_res.status() : mem1_res.status();
      std::fprintf(stderr, "mem batch=%llu: %s\n", static_cast<unsigned long long>(batch),
                   err.ToString().c_str());
      return 1;
    }

    ScopedTempDir dir;
    auto lsm = bench::OpenBenchStore("lsm", dir, "batch" + std::to_string(batch));
    if (!lsm.ok()) {
      std::fprintf(stderr, "lsm open: %s\n", lsm.status().ToString().c_str());
      return 1;
    }
    ReplayOptions lsm_opts = opts;
    lsm_opts.max_ops = bench::OpsBudget();
    auto lsm_res = ReplayTrace(trace, lsm->get(), lsm_opts);
    Status close = (*lsm)->Close();
    if (!lsm_res.ok() || !close.ok()) {
      Status err = lsm_res.ok() ? close : lsm_res.status();
      std::fprintf(stderr, "lsm batch=%llu: %s\n", static_cast<unsigned long long>(batch),
                   err.ToString().c_str());
      return 1;
    }

    if (batch == 1) {
      mem1_base = mem1_res->throughput_ops_per_sec;
      mem64_base = mem64_res->throughput_ops_per_sec;
      lsm_base = lsm_res->throughput_ops_per_sec;
    }
    bench::PrintRow(
        {std::to_string(batch), bench::Fmt(mem1_res->throughput_ops_per_sec / 1e6, 2),
         bench::Fmt(mem1_res->throughput_ops_per_sec / mem1_base, 2) + "x",
         bench::Fmt(mem64_res->throughput_ops_per_sec / 1e6, 2),
         bench::Fmt(mem64_res->throughput_ops_per_sec / mem64_base, 2) + "x",
         bench::Fmt(lsm_res->throughput_ops_per_sec / 1e3, 1),
         bench::Fmt(lsm_res->throughput_ops_per_sec / lsm_base, 2) + "x"},
        bw);
  }
  bench::PrintShapeNote(
      "coalescing amortizes synchronization: the global-lock MemStore and "
      "the LSM (WAL record framing + one group commit per batch) win most; "
      "the striped MemStore's uncontended per-stripe locks are already "
      "cheap, so its single-threaded win is thinner");
  return 0;
}

int Run() {
  bench::PrintHeader("Figure 14 — concurrent operators on one LSM instance");
  auto incr = SlidingWorkload(false, 1, 0);
  auto incr2 = SlidingWorkload(false, 2, 1'000'000);
  auto hol = SlidingWorkload(true, 3, 2'000'000);
  auto hol2 = SlidingWorkload(true, 4, 3'000'000);
  if (!incr.ok() || !incr2.ok() || !hol.ok() || !hol2.ok()) {
    std::fprintf(stderr, "workload generation failed\n");
    return 1;
  }

  const std::vector<int> widths = {16, 18, 12, 14};
  bench::PrintRow({"operator", "setting", "kops/s", "p99.9(us)"}, widths);
  struct Row {
    const char* op;
    const char* setting;
    StatusOr<Measure> m;
  };
  Row rows[] = {
      {"sliding-incr", "alone", RunAlone(*incr)},
      {"sliding-incr", "concurrent-A", RunShared(*incr, *incr2)},
      {"sliding-incr", "concurrent-B", RunShared(*incr, *hol)},
      {"sliding-hol", "alone", RunAlone(*hol)},
      {"sliding-hol", "concurrent-A", RunShared(*hol, *hol2)},
      {"sliding-hol", "concurrent-B", RunShared(*hol, *incr)},
  };
  for (const Row& row : rows) {
    if (!row.m.ok()) {
      std::fprintf(stderr, "%s/%s: %s\n", row.op, row.setting,
                   row.m.status().ToString().c_str());
      return 1;
    }
    bench::PrintRow({row.op, row.setting, bench::Fmt(row.m->kops, 1),
                     bench::Fmt(row.m->p999_us, 1)},
                    widths);
  }
  bench::PrintShapeNote(
      "co-location costs throughput and tail latency; the incremental window "
      "suffers most when sharing with another incremental operator "
      "(paper: 1.7x lower throughput, 1.5x higher latency), while the "
      "holistic window is less sensitive (~1.4x / ~1.03x)");
  int rc = RunMemSweep();
  if (rc != 0) {
    return rc;
  }
  return RunBatchSweep();
}

}  // namespace
}  // namespace gadget

int main() { return gadget::Run(); }
