// Figure 5: locality and ephemerality of streaming state access workloads
// (Borg) for the three representative operators: continuous aggregation,
// tumbling incremental window, and sliding (window) join. Real traces vs
// their shuffled counterparts.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/metrics.h"

namespace gadget {
namespace {

const char* kOps[] = {"aggregation", "tumbling_incr", "join_sliding"};

int Run() {
  bench::PrintHeader("Figure 5 — locality & ephemerality (Borg)");
  PipelineOptions opts;

  std::printf("\n(top) temporal locality: mean LRU stack distance\n");
  const std::vector<int> w1 = {16, 14, 14, 10};
  bench::PrintRow({"operator", "real", "shuffled", "ratio"}, w1);
  for (const char* op : kOps) {
    auto trace = bench::RealTrace("borg", op, bench::EventsBudget(), opts);
    if (!trace.ok()) {
      std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
      return 1;
    }
    auto real = ComputeStackDistances(*trace);
    auto shuffled = ComputeStackDistances(ShuffleTrace(*trace, 99));
    bench::PrintRow({op, bench::Fmt(real.Mean(), 1), bench::Fmt(shuffled.Mean(), 1),
                     bench::Fmt(shuffled.Mean() / std::max(real.Mean(), 1e-9), 1) + "x"},
                    w1);
  }

  std::printf("\n(middle) spatial locality: unique key sequences of length l\n");
  const std::vector<int> w2 = {16, 6, 14, 14};
  bench::PrintRow({"operator", "l", "real", "shuffled"}, w2);
  for (const char* op : kOps) {
    auto trace = bench::RealTrace("borg", op, bench::EventsBudget(), opts);
    if (!trace.ok()) {
      return 1;
    }
    auto real = CountUniqueSequences(*trace, 10);
    auto shuffled = CountUniqueSequences(ShuffleTrace(*trace, 99), 10);
    for (int l : {2, 5, 10}) {
      bench::PrintRow({op, std::to_string(l), std::to_string(real[static_cast<size_t>(l - 1)]),
                       std::to_string(shuffled[static_cast<size_t>(l - 1)])},
                      w2);
    }
  }

  std::printf("\n(bottom) working set size over time (samples)\n");
  const std::vector<int> w3 = {16, 12, 12, 12, 12};
  bench::PrintRow({"operator", "25%", "50%", "75%", "100%"}, w3);
  for (const char* op : kOps) {
    auto trace = bench::RealTrace("borg", op, bench::EventsBudget(), opts);
    if (!trace.ok()) {
      return 1;
    }
    auto timeline = ComputeWorkingSetTimeline(*trace, 100);
    auto at = [&](double frac) {
      if (timeline.empty()) {
        return std::string("0");
      }
      size_t idx = std::min(timeline.size() - 1,
                            static_cast<size_t>(frac * static_cast<double>(timeline.size())));
      return std::to_string(timeline[idx].active_keys);
    };
    bench::PrintRow({op, at(0.25), at(0.5), at(0.75), at(0.999)}, w3);
  }

  bench::PrintShapeNote(
      "real traces show far lower stack distances and far fewer unique "
      "sequences than shuffled ones (high temporal+spatial locality); "
      "aggregation's working set only grows while windowed operators' stays "
      "bounded (ephemeral state)");
  return 0;
}

}  // namespace
}  // namespace gadget

int main() { return gadget::Run(); }
