// Batched block-read backend for the buffer pool: callers hand over a set of
// (fd, offset, length) reads and block until every one has completed, turning
// N cache misses into one I/O wave instead of N serial preads.
//
// Two implementations behind one interface, chosen at construction:
//   io_uring   one submission syscall per wave (raw io_uring_setup/enter —
//              no liburing dependency). Compiled in when <linux/io_uring.h>
//              exists and probed at runtime; a kernel or seccomp refusal
//              falls back silently.
//   threads    a small persistent pool of pread workers. Portable fallback;
//              also what single-read fast paths use.
//
// The backend is intentionally synchronous at the batch level (submit, wait,
// return): the read path needs all blocks of a wave before it can resolve
// lookups, and a blocking batch keeps the pool free of completion callbacks.
#ifndef GADGET_STORES_BUFFERPOOL_IO_BACKEND_H_
#define GADGET_STORES_BUFFERPOOL_IO_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"

namespace gadget {

// One positional read. `out` is sized to `length` by the backend; `status`
// carries the per-read outcome (short reads fail — block reads know their
// exact size).
struct IoRead {
  int fd = -1;
  uint64_t offset = 0;
  uint32_t length = 0;
  std::string out;
  Status status;
};

class IoBackend {
 public:
  // `threads` sizes the pread worker pool (clamped to >= 1); when
  // `try_io_uring` is set and the kernel cooperates, waves go through a ring
  // instead and the workers stay parked.
  explicit IoBackend(int threads = 2, bool try_io_uring = true);
  ~IoBackend();
  IoBackend(const IoBackend&) = delete;
  IoBackend& operator=(const IoBackend&) = delete;

  // Issues every read and blocks until all have completed. Per-read results
  // land in each IoRead::status/out. Reads may complete in any order.
  void ReadBatch(const std::vector<IoRead*>& reads);

  // True when waves are served by io_uring (probe succeeded).
  bool using_io_uring() const { return ring_fd_ >= 0; }

  // Counters surfaced through StoreStats: batches issued, reads completed,
  // and the largest number of reads ever in flight at once.
  uint64_t batches() const { return batches_.load(std::memory_order_relaxed); }
  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t in_flight_max() const { return in_flight_max_.load(std::memory_order_relaxed); }

 private:
  struct Batch {
    size_t remaining = 0;
  };
  struct WorkItem {
    IoRead* read = nullptr;
    Batch* batch = nullptr;
  };

  void WorkerLoop();
  void ReadBatchThreads(const std::vector<IoRead*>& reads);
  void ReadBatchUring(const std::vector<IoRead*>& reads) EXCLUDES(ring_mu_);
  void NoteBatch(size_t n);

  // io_uring state (ring_fd_ < 0 when unavailable). The ring is single-issuer:
  // ring_mu_ serializes whole waves.
  Mutex ring_mu_;
  int ring_fd_ = -1;
  unsigned sq_entries_ = 0;
  unsigned cq_entries_ = 0;
  void* sq_ring_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  void* cq_ring_ = nullptr;
  size_t cq_ring_bytes_ = 0;
  void* sqes_ = nullptr;
  size_t sqes_bytes_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_mask_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned* cq_mask_ = nullptr;
  void* cqes_ = nullptr;

  // Thread-pool state.
  Mutex mu_;
  CondVar work_cv_;
  CondVar done_cv_;
  std::deque<WorkItem> queue_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;

  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> in_flight_max_{0};
};

}  // namespace gadget

#endif  // GADGET_STORES_BUFFERPOOL_IO_BACKEND_H_
