#include "src/stores/bufferpool/buffer_pool.h"

#include <utility>

namespace gadget {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

// --- PinnedBlock ------------------------------------------------------------

PinnedBlock::PinnedBlock(PinnedBlock&& other) noexcept
    : pool_(other.pool_), shard_(other.shard_), frame_(std::move(other.frame_)) {
  other.pool_ = nullptr;
  other.frame_.reset();
}

PinnedBlock& PinnedBlock::operator=(PinnedBlock&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    shard_ = other.shard_;
    frame_ = std::move(other.frame_);
    other.pool_ = nullptr;
    other.frame_.reset();
  }
  return *this;
}

PinnedBlock::~PinnedBlock() { Release(); }

void PinnedBlock::Release() {
  if (frame_ != nullptr) {
    pool_->Unpin(shard_, frame_.get());
    frame_.reset();
    pool_ = nullptr;
  }
}

// --- BufferPool -------------------------------------------------------------

BufferPool::BufferPool(const BufferPoolOptions& options)
    : options_(options),
      capacity_(options.capacity_bytes),
      shards_(RoundUpPow2(options.shards < 1 ? 1 : static_cast<size_t>(options.shards))),
      io_(options.io_threads, options.use_io_uring) {
  shard_mask_ = shards_.size() - 1;
  capacity_per_shard_ = capacity_ / shards_.size();
  for (Shard& s : shards_) {
    MutexLock lock(&s.mu);
    s.hand = s.cold.end();
  }
}

BufferPool::~BufferPool() = default;

PinnedBlock BufferPool::Lookup(uint64_t file_id, uint64_t offset) {
  Shard& s = ShardFor(file_id, offset);
  size_t shard_index = static_cast<size_t>(&s - shards_.data());
  MutexLock lock(&s.mu);
  auto it = s.map.find(Key{file_id, offset});
  if (it == s.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return PinnedBlock();
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  pins_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<Frame> f = it->second;
  ++f->pins;
  TouchLocked(s, f);
  return PinnedBlock(this, shard_index, std::move(f));
}

PinnedBlock BufferPool::Insert(uint64_t file_id, uint64_t offset,
                               std::shared_ptr<const std::string> data,
                               std::shared_ptr<void> object, size_t charge) {
  Shard& s = ShardFor(file_id, offset);
  size_t shard_index = static_cast<size_t>(&s - shards_.data());
  MutexLock lock(&s.mu);
  auto it = s.map.find(Key{file_id, offset});
  if (it != s.map.end()) {
    // Repin the existing frame; fill in whichever representation it lacks
    // (a raw block can gain its decoded object and vice versa).
    std::shared_ptr<Frame> f = it->second;
    if (f->data == nullptr && data != nullptr) {
      f->data = std::move(data);
    }
    if (f->object == nullptr && object != nullptr) {
      f->object = std::move(object);
    }
    pins_.fetch_add(1, std::memory_order_relaxed);
    ++f->pins;
    TouchLocked(s, f);
    return PinnedBlock(this, shard_index, std::move(f));
  }
  EvictForLocked(s, charge);
  auto f = std::make_shared<Frame>();
  f->file = file_id;
  f->offset = offset;
  f->data = std::move(data);
  f->object = std::move(object);
  f->charge = charge;
  f->pins = 1;
  s.cold.push_back(f);
  f->pos = std::prev(s.cold.end());
  if (s.hand == s.cold.end()) {
    s.hand = f->pos;
  }
  s.map.emplace(Key{file_id, offset}, f);
  s.bytes += charge;
  pins_.fetch_add(1, std::memory_order_relaxed);
  return PinnedBlock(this, shard_index, std::move(f));
}

PinnedBlock BufferPool::InsertBlock(uint64_t file_id, uint64_t offset, std::string block) {
  size_t charge = block.size();
  auto data = std::make_shared<const std::string>(std::move(block));
  return Insert(file_id, offset, std::move(data), nullptr, charge);
}

void BufferPool::TouchLocked(Shard& s, const std::shared_ptr<Frame>& f) {
  if (options_.eviction == BufferPoolOptions::Eviction::kClock) {
    f->referenced = true;
    return;
  }
  // 2Q: first re-reference promotes out of probation; later ones refresh LRU.
  if (!f->hot) {
    if (s.hand == f->pos) {
      s.hand = std::next(s.hand);
    }
    s.hot.splice(s.hot.begin(), s.cold, f->pos);
    f->hot = true;
  } else {
    s.hot.splice(s.hot.begin(), s.hot, f->pos);
  }
  f->pos = s.hot.begin();
}

void BufferPool::RemoveFrameLocked(Shard& s, const std::shared_ptr<Frame>& f) {
  s.map.erase(Key{f->file, f->offset});
  s.bytes -= f->charge;
  if (f->hot) {
    s.hot.erase(f->pos);
  } else {
    if (s.hand == f->pos) {
      s.hand = std::next(s.hand);
    }
    s.cold.erase(f->pos);
  }
}

void BufferPool::EvictForLocked(Shard& s, size_t incoming_charge) {
  while (s.bytes + incoming_charge > capacity_per_shard_ && s.bytes > 0) {
    Frame* victim = nullptr;
    if (options_.eviction == BufferPoolOptions::Eviction::kClock) {
      // Second-chance sweep: clear referenced bits, skip pinned frames, give
      // up after two full revolutions (everything pinned or referenced by a
      // racing pin).
      size_t steps = 2 * s.cold.size();
      while (steps-- > 0) {
        if (s.hand == s.cold.end()) {
          s.hand = s.cold.begin();
          if (s.hand == s.cold.end()) {
            break;
          }
        }
        Frame* f = s.hand->get();
        if (f->pins > 0) {
          ++s.hand;
        } else if (f->referenced) {
          f->referenced = false;
          ++s.hand;
        } else {
          victim = f;
          break;
        }
      }
    } else {
      // 2Q: drain probation FIFO first, then the protected LRU tail.
      for (auto it = s.cold.begin(); it != s.cold.end(); ++it) {
        if ((*it)->pins == 0) {
          victim = it->get();
          break;
        }
      }
      if (victim == nullptr) {
        for (auto it = s.hot.rbegin(); it != s.hot.rend(); ++it) {
          if ((*it)->pins == 0) {
            victim = it->get();
            break;
          }
        }
      }
    }
    if (victim == nullptr) {
      return;  // all pinned: allow the transient capacity overshoot
    }
    // Keep a reference across removal so `victim` stays valid to the end.
    std::shared_ptr<Frame> keep = s.map.at(Key{victim->file, victim->offset});
    RemoveFrameLocked(s, keep);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void BufferPool::Erase(uint64_t file_id, uint64_t offset) {
  Shard& s = ShardFor(file_id, offset);
  MutexLock lock(&s.mu);
  auto it = s.map.find(Key{file_id, offset});
  if (it == s.map.end()) {
    return;
  }
  std::shared_ptr<Frame> f = it->second;
  RemoveFrameLocked(s, f);
  f->doomed = true;  // outstanding pins keep the storage alive
}

void BufferPool::EraseFile(uint64_t file_id) {
  for (Shard& s : shards_) {
    MutexLock lock(&s.mu);
    std::vector<std::shared_ptr<Frame>> doomed;
    for (const auto& [key, frame] : s.map) {
      if (key.file == file_id) {
        doomed.push_back(frame);
      }
    }
    for (const std::shared_ptr<Frame>& f : doomed) {
      RemoveFrameLocked(s, f);
      f->doomed = true;
    }
  }
}

void BufferPool::Unpin(size_t shard_index, Frame* frame) {
  Shard& s = shards_[shard_index];
  MutexLock lock(&s.mu);
  --frame->pins;
}

uint64_t BufferPool::usage_bytes() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    MutexLock lock(&s.mu);
    total += s.bytes;
  }
  return total;
}

}  // namespace gadget
