#include "src/stores/bufferpool/io_backend.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#if defined(__NR_io_uring_setup) && defined(__NR_io_uring_enter)
#define GADGET_HAVE_IO_URING 1
#endif
#endif

namespace gadget {
namespace {

// Full positional read with short-read detection; block reads always know
// their exact length, so a short read is corruption, not EOF handling.
Status PreadFully(IoRead* r) {
  r->out.resize(r->length);
  char* p = r->out.data();
  size_t left = r->length;
  uint64_t off = r->offset;
  while (left > 0) {
    ssize_t n = ::pread(r->fd, p, left, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoError(std::string("pread: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::IoError("short read");
    }
    p += n;
    left -= static_cast<size_t>(n);
    off += static_cast<uint64_t>(n);
  }
  return Status::Ok();
}

#ifdef GADGET_HAVE_IO_URING
unsigned LoadAcquire(const unsigned* p) { return __atomic_load_n(p, __ATOMIC_ACQUIRE); }
void StoreRelease(unsigned* p, unsigned v) { __atomic_store_n(p, v, __ATOMIC_RELEASE); }
#endif

}  // namespace

IoBackend::IoBackend(int threads, bool try_io_uring) : work_cv_(&mu_), done_cv_(&mu_) {
#ifdef GADGET_HAVE_IO_URING
  if (try_io_uring) {
    // Runtime probe: a kernel too old for IORING_OP_READ (< 5.6) or a seccomp
    // filter fails here, and we silently fall back to the worker pool.
    io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    long fd = ::syscall(__NR_io_uring_setup, 64u, &params);
    if (fd >= 0 && (params.features & IORING_FEAT_SINGLE_MMAP) != 0) {
      ring_fd_ = static_cast<int>(fd);
      sq_entries_ = params.sq_entries;
      cq_entries_ = params.cq_entries;
      sq_ring_bytes_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
      cq_ring_bytes_ = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
      size_t ring_bytes = sq_ring_bytes_ > cq_ring_bytes_ ? sq_ring_bytes_ : cq_ring_bytes_;
      sq_ring_ = ::mmap(nullptr, ring_bytes, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
      sqes_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
      sqes_ = ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
                     ring_fd_, IORING_OFF_SQES);
      if (sq_ring_ == MAP_FAILED || sqes_ == MAP_FAILED) {
        if (sq_ring_ != MAP_FAILED) {
          ::munmap(sq_ring_, ring_bytes);
        }
        if (sqes_ != MAP_FAILED) {
          ::munmap(sqes_, sqes_bytes_);
        }
        ::close(ring_fd_);
        ring_fd_ = -1;
        sq_ring_ = nullptr;
        sqes_ = nullptr;
      } else {
        sq_ring_bytes_ = ring_bytes;  // single mmap serves both rings
        cq_ring_ = sq_ring_;
        cq_ring_bytes_ = 0;  // owned by the sq mapping
        char* sq = static_cast<char*>(sq_ring_);
        sq_head_ = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
        sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
        sq_mask_ = reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
        sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
        char* cq = static_cast<char*>(cq_ring_);
        cq_head_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
        cq_tail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
        cq_mask_ = reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
        cqes_ = cq + params.cq_off.cqes;
      }
    } else if (fd >= 0) {
      ::close(static_cast<int>(fd));
    }
  }
#else
  (void)try_io_uring;
#endif
  if (ring_fd_ < 0) {
    int n = threads < 1 ? 1 : threads;
    workers_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

IoBackend::~IoBackend() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.SignalAll();
  for (std::thread& t : workers_) {
    t.join();
  }
#ifdef GADGET_HAVE_IO_URING
  if (ring_fd_ >= 0) {
    ::munmap(sq_ring_, sq_ring_bytes_);
    ::munmap(sqes_, sqes_bytes_);
    ::close(ring_fd_);
  }
#endif
}

void IoBackend::NoteBatch(size_t n) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  reads_.fetch_add(n, std::memory_order_relaxed);
  uint64_t cur = in_flight_max_.load(std::memory_order_relaxed);
  while (n > cur &&
         !in_flight_max_.compare_exchange_weak(cur, n, std::memory_order_relaxed)) {
  }
}

void IoBackend::ReadBatch(const std::vector<IoRead*>& reads) {
  if (reads.empty()) {
    return;
  }
  NoteBatch(reads.size());
  if (reads.size() == 1) {
    // A one-read wave gains nothing from submission machinery.
    reads[0]->status = PreadFully(reads[0]);
    return;
  }
#ifdef GADGET_HAVE_IO_URING
  if (ring_fd_ >= 0) {
    ReadBatchUring(reads);
    return;
  }
#endif
  ReadBatchThreads(reads);
}

void IoBackend::ReadBatchThreads(const std::vector<IoRead*>& reads) {
  Batch batch;
  batch.remaining = reads.size();
  {
    MutexLock lock(&mu_);
    for (IoRead* r : reads) {
      queue_.push_back({r, &batch});
    }
  }
  work_cv_.SignalAll();
  MutexLock lock(&mu_);
  while (batch.remaining > 0) {
    done_cv_.Wait();
  }
}

void IoBackend::WorkerLoop() {
  for (;;) {
    WorkItem item;
    {
      MutexLock lock(&mu_);
      while (queue_.empty() && !shutdown_) {
        work_cv_.Wait();
      }
      if (queue_.empty()) {
        return;  // shutdown with the queue drained
      }
      item = queue_.front();
      queue_.pop_front();
    }
    item.read->status = PreadFully(item.read);
    {
      MutexLock lock(&mu_);
      --item.batch->remaining;
    }
    done_cv_.SignalAll();
  }
}

#ifdef GADGET_HAVE_IO_URING
void IoBackend::ReadBatchUring(const std::vector<IoRead*>& reads) {
  MutexLock lock(&ring_mu_);
  const size_t n = reads.size();
  for (IoRead* r : reads) {
    r->out.resize(r->length);
  }
  std::vector<char> done(n, 0);
  size_t filled = 0;     // SQEs written into the ring
  size_t completed = 0;  // CQEs reaped
  unsigned pending = 0;  // SQEs in the ring the kernel has not consumed yet
  while (completed < n) {
    // Fill as many SQEs as the ring holds, then make one enter() that both
    // submits and waits — the wave is a single syscall when it fits.
    unsigned tail = LoadAcquire(sq_tail_);
    while (filled < n && tail - LoadAcquire(sq_head_) < sq_entries_) {
      unsigned idx = tail & *sq_mask_;
      auto* sqe = reinterpret_cast<io_uring_sqe*>(static_cast<char*>(sqes_) +
                                                  idx * sizeof(io_uring_sqe));
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = IORING_OP_READ;
      sqe->fd = reads[filled]->fd;
      sqe->off = reads[filled]->offset;
      sqe->addr = reinterpret_cast<uint64_t>(reads[filled]->out.data());
      sqe->len = reads[filled]->length;
      sqe->user_data = filled;
      sq_array_[idx] = idx;
      ++tail;
      ++pending;
      ++filled;
    }
    StoreRelease(sq_tail_, tail);
    unsigned want = static_cast<unsigned>(filled < n ? 1 : n - completed);
    long ret = ::syscall(__NR_io_uring_enter, ring_fd_, pending, want, IORING_ENTER_GETEVENTS,
                         nullptr, 0);
    if (ret >= 0) {
      pending -= static_cast<unsigned>(ret);
    } else if (errno != EINTR) {
      Status err = Status::IoError(std::string("io_uring_enter: ") + std::strerror(errno));
      for (size_t i = 0; i < n; ++i) {
        if (!done[i]) {
          reads[i]->status = err;
        }
      }
      return;
    }
    unsigned head = LoadAcquire(cq_head_);
    while (head != LoadAcquire(cq_tail_)) {
      const auto* cqe = reinterpret_cast<const io_uring_cqe*>(static_cast<const char*>(cqes_)) +
                        (head & *cq_mask_);
      IoRead* r = reads[cqe->user_data];
      if (cqe->res < 0) {
        r->status = Status::IoError(std::string("io_uring read: ") + std::strerror(-cqe->res));
      } else if (static_cast<uint32_t>(cqe->res) != r->length) {
        // Kernel reads can legally come back short; finish the tail with a
        // plain pread rather than resubmitting through the ring.
        IoRead tail_read;
        tail_read.fd = r->fd;
        tail_read.offset = r->offset + static_cast<uint64_t>(cqe->res);
        tail_read.length = r->length - static_cast<uint32_t>(cqe->res);
        r->status = PreadFully(&tail_read);
        if (r->status.ok()) {
          r->out.replace(static_cast<size_t>(cqe->res), tail_read.out.size(), tail_read.out);
        }
      } else {
        r->status = Status::Ok();
      }
      done[cqe->user_data] = 1;
      ++completed;
      ++head;
      StoreRelease(cq_head_, head);
    }
  }
}
#else
void IoBackend::ReadBatchUring(const std::vector<IoRead*>& reads) { ReadBatchThreads(reads); }
#endif

}  // namespace gadget
