// Process-wide sharded buffer pool with pin/unpin frames (DESIGN.md §5h).
//
// Frames are keyed by (file_id, offset) where file ids come from the pool's
// own NewFileId() counter, so any number of stores — LSM tables and btree
// pages alike — can share one pool without colliding. A frame carries either
// raw immutable bytes (SSTable blocks), a type-erased decoded object (btree
// nodes), or both; `charge` is what it counts against capacity.
//
// Pin lifetime rules:
//   - Lookup/Insert return a PinnedBlock; the frame cannot be evicted while
//     any pin is outstanding. Pins are released by the handle's destructor.
//   - Erase/EraseFile on a pinned frame *dooms* it: the frame leaves the
//     table (no new lookups find it, capacity is credited back) but its
//     storage stays alive until the last pin drops. Readers never dangle.
//   - Insert may transiently overshoot capacity when every frame is pinned;
//     eviction only ever removes unpinned frames.
//
// Eviction is per shard: clock (second chance) by default, or 2Q (FIFO
// probation + LRU protected) via BufferPoolOptions::eviction.
#ifndef GADGET_STORES_BUFFERPOOL_BUFFER_POOL_H_
#define GADGET_STORES_BUFFERPOOL_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/stores/bufferpool/io_backend.h"

namespace gadget {

struct BufferPoolOptions {
  uint64_t capacity_bytes = 32ull << 20;
  // Number of independently locked shards (rounded up to a power of two).
  int shards = 8;
  enum class Eviction { kClock, kTwoQueue };
  Eviction eviction = Eviction::kClock;
  // Width of the pread worker pool behind IoBackend (io_uring parks it).
  int io_threads = 2;
  bool use_io_uring = true;
};

class BufferPool;

namespace bufferpool_internal {
// One cached block/page. All fields are guarded by the owning shard's mutex;
// the struct cannot name it, so the invariant is documented rather than
// annotated (PinnedBlock only touches fields through BufferPool methods).
struct Frame {
  uint64_t file = 0;
  uint64_t offset = 0;
  std::shared_ptr<const std::string> data;  // raw bytes (may be null)
  std::shared_ptr<void> object;             // decoded form (may be null)
  size_t charge = 0;
  uint32_t pins = 0;
  bool referenced = false;  // clock second-chance bit
  bool hot = false;         // 2Q: lives on the protected list
  bool doomed = false;      // erased while pinned; already off the table
  std::list<std::shared_ptr<Frame>>::iterator pos;  // position in its list
};
}  // namespace bufferpool_internal

// Movable RAII pin. While alive, the underlying frame (and its data/object)
// stays valid even if the frame is erased or its file deleted.
class PinnedBlock {
 public:
  PinnedBlock() = default;
  PinnedBlock(PinnedBlock&& other) noexcept;
  PinnedBlock& operator=(PinnedBlock&& other) noexcept;
  PinnedBlock(const PinnedBlock&) = delete;
  PinnedBlock& operator=(const PinnedBlock&) = delete;
  ~PinnedBlock();

  explicit operator bool() const { return frame_ != nullptr; }

  // Raw bytes. Valid only when the frame was inserted with data.
  const std::string& data() const { return *frame_->data; }
  std::shared_ptr<const std::string> data_ptr() const { return frame_->data; }
  bool has_data() const { return frame_ != nullptr && frame_->data != nullptr; }

  // Decoded object slot (callers cast back to the concrete type).
  const std::shared_ptr<void>& object() const { return frame_->object; }

  // Drops the pin early (idempotent).
  void Release();

 private:
  friend class BufferPool;
  PinnedBlock(BufferPool* pool, size_t shard,
              std::shared_ptr<bufferpool_internal::Frame> frame)
      : pool_(pool), shard_(shard), frame_(std::move(frame)) {}

  BufferPool* pool_ = nullptr;
  size_t shard_ = 0;
  std::shared_ptr<bufferpool_internal::Frame> frame_;
};

class BufferPool {
 public:
  explicit BufferPool(const BufferPoolOptions& options = BufferPoolOptions());
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Allocates a pool-unique file id. Every store attaching a file (SSTable,
  // btree page file) claims one, which is what makes the pool shareable.
  uint64_t NewFileId() { return next_file_id_.fetch_add(1, std::memory_order_relaxed); }

  // Returns a pinned handle on hit, an empty handle on miss.
  PinnedBlock Lookup(uint64_t file_id, uint64_t offset);

  // Inserts (or repins an existing frame, refreshing data/object when the
  // frame lacks them) and returns a pinned handle. Evicts unpinned frames as
  // needed to make room; `charge` counts against capacity.
  PinnedBlock Insert(uint64_t file_id, uint64_t offset,
                     std::shared_ptr<const std::string> data, std::shared_ptr<void> object,
                     size_t charge);

  // Raw-bytes convenience: charge = block size.
  PinnedBlock InsertBlock(uint64_t file_id, uint64_t offset, std::string block);

  // Removes one frame / every frame of a file. Pinned frames are doomed (see
  // header comment); unpinned ones are freed immediately.
  void Erase(uint64_t file_id, uint64_t offset);
  void EraseFile(uint64_t file_id);

  IoBackend& io() { return io_; }

  uint64_t capacity_bytes() const { return capacity_; }
  uint64_t usage_bytes() const;

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }
  uint64_t pins() const { return pins_.load(std::memory_order_relaxed); }

 private:
  friend class PinnedBlock;
  using Frame = bufferpool_internal::Frame;

  struct Key {
    uint64_t file;
    uint64_t offset;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(k.file * 0x9e3779b97f4a7c15ULL ^ (k.offset + 0x517cc1b7));
    }
  };

  struct Shard {
    mutable Mutex mu;
    std::unordered_map<Key, std::shared_ptr<Frame>, KeyHash> map GUARDED_BY(mu);
    // kClock: `cold` is the clock ring (hand included), `hot` unused.
    // kTwoQueue: `cold` is the FIFO probation queue, `hot` the LRU protected
    // list (front = most recent).
    std::list<std::shared_ptr<Frame>> cold GUARDED_BY(mu);
    std::list<std::shared_ptr<Frame>> hot GUARDED_BY(mu);
    std::list<std::shared_ptr<Frame>>::iterator hand GUARDED_BY(mu);
    uint64_t bytes GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(uint64_t file_id, uint64_t offset) {
    return shards_[KeyHash{}(Key{file_id, offset}) & shard_mask_];
  }
  void TouchLocked(Shard& s, const std::shared_ptr<Frame>& f) REQUIRES(s.mu);
  void EvictForLocked(Shard& s, size_t incoming_charge) REQUIRES(s.mu);
  void RemoveFrameLocked(Shard& s, const std::shared_ptr<Frame>& f) REQUIRES(s.mu);
  void Unpin(size_t shard_index, Frame* frame);

  const BufferPoolOptions options_;
  const uint64_t capacity_;
  uint64_t capacity_per_shard_;
  size_t shard_mask_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> next_file_id_{1};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> pins_{0};
  IoBackend io_;
};

}  // namespace gadget

#endif  // GADGET_STORES_BUFFERPOOL_BUFFER_POOL_H_
