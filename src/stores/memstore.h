// In-memory reference store: a mutex-protected hash map. Used as the oracle
// in differential tests and as a zero-I/O baseline in examples.
#ifndef GADGET_STORES_MEMSTORE_H_
#define GADGET_STORES_MEMSTORE_H_

#include <mutex>
#include <string>
#include <unordered_map>

#include "src/stores/kvstore.h"

namespace gadget {

class MemStore : public KVStore {
 public:
  MemStore() = default;

  Status Put(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value) override;
  Status Merge(std::string_view key, std::string_view operand) override;
  Status Delete(std::string_view key) override;
  Status ReadModifyWrite(std::string_view key, std::string_view operand) override;

  bool supports_merge() const override { return true; }
  StoreStats stats() const override;
  std::string name() const override { return "mem"; }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::string> map_;
  StoreStats stats_;
};

}  // namespace gadget

#endif  // GADGET_STORES_MEMSTORE_H_
