// In-memory reference store: a lock-striped hash map. Used as the oracle in
// differential tests, as a zero-I/O baseline in examples, and as the target
// of the concurrent-replay scalability benchmarks (Fig. 14 thread sweep).
//
// Keys are sharded across `num_stripes` independent maps by hash; each stripe
// has its own reader-writer mutex, so gets on different keys never serialize
// and gets on the same stripe proceed concurrently under the shared lock.
// Counters are relaxed atomics so readers holding only the shared lock can
// still account their work.
#ifndef GADGET_STORES_MEMSTORE_H_
#define GADGET_STORES_MEMSTORE_H_

#include <atomic>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/stores/kvstore.h"

namespace gadget {

class MemStore : public KVStore {
 public:
  // `num_stripes` is rounded up to a power of two. 1 stripe degenerates to a
  // single-lock store (the pre-striping behaviour, kept for baselines).
  explicit MemStore(size_t num_stripes = kDefaultStripes);

  using KVStore::Get;
  using KVStore::MultiGet;

  Status Put(std::string_view key, std::string_view value) override;
  // ReadOptions are accepted but ignored: there is no cache or I/O to tune.
  Status Get(std::string_view key, std::string* value, const ReadOptions& options) override;
  Status Merge(std::string_view key, std::string_view operand) override;
  Status Delete(std::string_view key) override;
  Status ReadModifyWrite(std::string_view key, std::string_view operand) override;

  // Batched paths: entries are grouped by stripe (stable, so same-key order
  // is preserved — equal keys always hash to the same stripe) and each
  // stripe's lock is taken once per batch instead of once per operation;
  // per-stripe counters are updated once per group.
  Status Write(const WriteBatch& batch) override;
  Status MultiGet(const std::vector<std::string>& keys, std::vector<std::string>* values,
                  std::vector<Status>* statuses, const ReadOptions& options) override;

  bool supports_merge() const override { return true; }
  StoreStats stats() const override;
  std::string name() const override { return "mem"; }

  // Serializes every stripe into `dir`/memstore.snap (one length-prefixed
  // key/value record per entry). Each stripe is captured under its shared
  // lock, so per-key atomicity holds; callers wanting a cross-stripe-atomic
  // image quiesce writers first (the harness checkpoints between replay ops).
  StatusOr<CheckpointInfo> Checkpoint(const std::string& dir,
                                      const CheckpointOptions& options) override;
  // Loads a Checkpoint() image into this (empty, fresh) store. Entries are
  // inserted directly: operation counters stay at zero, matching a
  // freshly-recovered disk engine. Used by RestoreStore.
  Status LoadCheckpoint(const std::string& dir);

  size_t num_stripes() const { return stripes_.size(); }

  static constexpr size_t kDefaultStripes = 64;

 private:
  // Transparent hash so gets can probe with a string_view (no allocation),
  // with a fast path for the 16-byte encoded StateKeys the replayer uses.
  // The same value picks the stripe (low bits) and the map bucket (libstdc++
  // reduces modulo a prime, so reusing one hash is safe).
  struct KeyHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const;
  };

  // Padded to a cache line so stripes do not false-share.
  struct alignas(64) Stripe {
    mutable SharedMutex mu;
    std::unordered_map<std::string, std::string, KeyHash, std::equal_to<>> map GUARDED_BY(mu);
    std::atomic<uint64_t> gets{0};
    std::atomic<uint64_t> puts{0};
    std::atomic<uint64_t> merges{0};
    std::atomic<uint64_t> deletes{0};
    std::atomic<uint64_t> rmws{0};
    std::atomic<uint64_t> bytes_written{0};
    std::atomic<uint64_t> bytes_read{0};
  };

  Stripe& StripeFor(std::string_view key);

  std::vector<Stripe> stripes_;
  size_t stripe_mask_;  // stripes_.size() - 1 (power of two)
};

}  // namespace gadget

#endif  // GADGET_STORES_MEMSTORE_H_
