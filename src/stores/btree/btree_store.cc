#include "src/stores/btree/btree_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/common/coding.h"
#include "src/common/file_util.h"

namespace gadget {
namespace {

constexpr uint32_t kMetaMagic = 0x42545245;  // "BTRE"
constexpr uint8_t kLeafType = 1;
constexpr uint8_t kInternalType = 2;

std::string TreePath(const std::string& dir) { return dir + "/btree.db"; }

Status PwriteAll(int fd, const char* data, size_t n, uint64_t offset) {
  while (n > 0) {
    ssize_t w = ::pwrite(fd, data, n, static_cast<off_t>(offset));
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoError(std::string("pwrite: ") + std::strerror(errno));
    }
    data += w;
    offset += static_cast<uint64_t>(w);
    n -= static_cast<size_t>(w);
  }
  return Status::Ok();
}

Status PreadAll(int fd, char* data, size_t n, uint64_t offset) {
  while (n > 0) {
    ssize_t r = ::pread(fd, data, n, static_cast<off_t>(offset));
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoError(std::string("pread: ") + std::strerror(errno));
    }
    if (r == 0) {
      return Status::IoError("short pread from btree file");
    }
    data += r;
    offset += static_cast<uint64_t>(r);
    n -= static_cast<size_t>(r);
  }
  return Status::Ok();
}

}  // namespace

size_t BTreeStore::Node::SerializedSize() const {
  size_t size = 1 + 2 + 4;  // type + nkeys + next_leaf
  if (leaf) {
    for (size_t i = 0; i < keys.size(); ++i) {
      size += 2 + keys[i].size() + 1;
      if (values[i].overflow_head == 0) {
        size += 4 + values[i].inline_data.size();
      } else {
        size += 8;
      }
    }
  } else {
    size += 4;  // child0
    for (const std::string& k : keys) {
      size += 2 + k.size() + 4;
    }
  }
  return size;
}

std::string BTreeStore::SerializeNode(const Node& node) const {
  std::string out;
  out.reserve(opts_.page_size);
  out.push_back(static_cast<char>(node.leaf ? kLeafType : kInternalType));
  uint16_t nkeys = static_cast<uint16_t>(node.keys.size());
  out.push_back(static_cast<char>(nkeys & 0xff));
  out.push_back(static_cast<char>(nkeys >> 8));
  PutFixed32(&out, node.next_leaf);
  if (node.leaf) {
    for (size_t i = 0; i < node.keys.size(); ++i) {
      uint16_t klen = static_cast<uint16_t>(node.keys[i].size());
      out.push_back(static_cast<char>(klen & 0xff));
      out.push_back(static_cast<char>(klen >> 8));
      out += node.keys[i];
      const ValueRef& v = node.values[i];
      if (v.overflow_head == 0) {
        out.push_back(0);
        PutFixed32(&out, static_cast<uint32_t>(v.inline_data.size()));
        out += v.inline_data;
      } else {
        out.push_back(1);
        PutFixed32(&out, v.overflow_head);
        PutFixed32(&out, v.total_len);
      }
    }
  } else {
    PutFixed32(&out, node.children[0]);
    for (size_t i = 0; i < node.keys.size(); ++i) {
      uint16_t klen = static_cast<uint16_t>(node.keys[i].size());
      out.push_back(static_cast<char>(klen & 0xff));
      out.push_back(static_cast<char>(klen >> 8));
      out += node.keys[i];
      PutFixed32(&out, node.children[i + 1]);
    }
  }
  out.resize(opts_.page_size, '\0');
  return out;
}

StatusOr<BTreeStore::Node> BTreeStore::DeserializeNode(std::string_view data) const {
  if (data.size() < 7) {
    return Status::Corruption("btree page too small");
  }
  Node node;
  const char* p = data.data();
  const char* end = p + data.size();
  uint8_t type = static_cast<uint8_t>(*p++);
  if (type != kLeafType && type != kInternalType) {
    return Status::Corruption("bad btree page type");
  }
  node.leaf = type == kLeafType;
  uint16_t nkeys = static_cast<uint8_t>(p[0]) | (static_cast<uint8_t>(p[1]) << 8);
  p += 2;
  node.next_leaf = DecodeFixed32(p);
  p += 4;
  auto need = [&](size_t n) { return static_cast<size_t>(end - p) >= n; };
  if (node.leaf) {
    node.keys.reserve(nkeys);
    node.values.reserve(nkeys);
    for (uint16_t i = 0; i < nkeys; ++i) {
      if (!need(2)) {
        return Status::Corruption("truncated leaf entry");
      }
      uint16_t klen = static_cast<uint8_t>(p[0]) | (static_cast<uint8_t>(p[1]) << 8);
      p += 2;
      if (!need(klen + 1)) {
        return Status::Corruption("truncated leaf key");
      }
      node.keys.emplace_back(p, klen);
      p += klen;
      uint8_t flag = static_cast<uint8_t>(*p++);
      ValueRef v;
      if (flag == 0) {
        if (!need(4)) {
          return Status::Corruption("truncated leaf value len");
        }
        uint32_t vlen = DecodeFixed32(p);
        p += 4;
        if (!need(vlen)) {
          return Status::Corruption("truncated leaf value");
        }
        v.inline_data.assign(p, vlen);
        p += vlen;
      } else {
        if (!need(8)) {
          return Status::Corruption("truncated overflow ref");
        }
        v.overflow_head = DecodeFixed32(p);
        v.total_len = DecodeFixed32(p + 4);
        p += 8;
      }
      node.values.push_back(std::move(v));
    }
  } else {
    if (!need(4)) {
      return Status::Corruption("truncated internal node");
    }
    node.children.push_back(DecodeFixed32(p));
    p += 4;
    node.keys.reserve(nkeys);
    for (uint16_t i = 0; i < nkeys; ++i) {
      if (!need(2)) {
        return Status::Corruption("truncated internal entry");
      }
      uint16_t klen = static_cast<uint8_t>(p[0]) | (static_cast<uint8_t>(p[1]) << 8);
      p += 2;
      if (!need(klen + 4)) {
        return Status::Corruption("truncated internal key");
      }
      node.keys.emplace_back(p, klen);
      p += klen;
      node.children.push_back(DecodeFixed32(p));
      p += 4;
    }
  }
  return node;
}

// -------------------------------------------------------------------- admin

BTreeStore::BTreeStore(std::string dir, const BTreeOptions& opts,
                       std::shared_ptr<BufferPool> pool)
    : dir_(std::move(dir)),
      opts_(opts),
      pool_(pool != nullptr ? std::move(pool) : std::make_shared<BufferPool>()) {
  pool_file_id_ = pool_->NewFileId();
}

// status intentionally ignored: destructors cannot propagate errors; callers
// that care about durability call Close() explicitly and check.
BTreeStore::~BTreeStore() { (void)Close(); }

StatusOr<std::unique_ptr<KVStore>> BTreeStore::Open(const std::string& dir,
                                                    const BTreeOptions& opts,
                                                    std::shared_ptr<BufferPool> pool) {
  GADGET_RETURN_IF_ERROR(CreateDirIfMissing(dir));
  std::unique_ptr<BTreeStore> store(new BTreeStore(dir, opts, std::move(pool)));
  GADGET_RETURN_IF_ERROR(store->Recover());
  return std::unique_ptr<KVStore>(std::move(store));
}

Status BTreeStore::Recover() {
  MutexLock lock(&mu_);
  const std::string path = TreePath(dir_);
  bool fresh = !FileExists(path);
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  if (fresh) {
    root_ = 1;
    next_page_ = 2;
    free_head_ = 0;
    height_ = 1;
    Node empty_root;
    empty_root.leaf = true;
    GADGET_RETURN_IF_ERROR(WriteNode(root_, empty_root));
    return PersistMeta();
  }
  std::string meta(opts_.page_size, '\0');
  GADGET_RETURN_IF_ERROR(PreadAll(fd_, meta.data(), meta.size(), 0));
  if (DecodeFixed32(meta.data()) != kMetaMagic) {
    return Status::Corruption("bad btree meta page");
  }
  root_ = DecodeFixed32(meta.data() + 4);
  next_page_ = DecodeFixed32(meta.data() + 8);
  free_head_ = DecodeFixed32(meta.data() + 12);
  height_ = DecodeFixed32(meta.data() + 16);
  return Status::Ok();
}

Status BTreeStore::PersistMeta() {
  std::string meta;
  PutFixed32(&meta, kMetaMagic);
  PutFixed32(&meta, root_);
  PutFixed32(&meta, next_page_);
  PutFixed32(&meta, free_head_);
  PutFixed32(&meta, height_);
  meta.resize(opts_.page_size, '\0');
  return PwriteAll(fd_, meta.data(), meta.size(), 0);
}

// --------------------------------------------------------------- page cache

Status BTreeStore::ReadPageRaw(uint32_t page_id, std::string* out) {
  out->resize(opts_.page_size);
  stats_.io_bytes_read += opts_.page_size;
  return PreadAll(fd_, out->data(), out->size(),
                  static_cast<uint64_t>(page_id) * opts_.page_size);
}

Status BTreeStore::WritePageRaw(uint32_t page_id, std::string_view data) {
  stats_.io_bytes_written += opts_.page_size;
  return PwriteAll(fd_, data.data(), data.size(),
                   static_cast<uint64_t>(page_id) * opts_.page_size);
}

Status BTreeStore::WriteNode(uint32_t page_id, const Node& node) {
  return WritePageRaw(page_id, SerializeNode(node));
}

StatusOr<std::shared_ptr<BTreeStore::Node>> BTreeStore::ReadNode(uint32_t page_id) {
  std::string raw;
  GADGET_RETURN_IF_ERROR(ReadPageRaw(page_id, &raw));
  auto node = DeserializeNode(raw);
  if (!node.ok()) {
    return node.status();
  }
  return std::make_shared<Node>(std::move(*node));
}

StatusOr<std::shared_ptr<BTreeStore::Node>> BTreeStore::FetchNode(uint32_t page_id,
                                                                  bool fill_cache) {
  // Dirty table first: a dirty node is the page's only truth — the pool may
  // have evicted its frame, and the on-disk bytes are stale.
  auto dit = dirty_.find(page_id);
  if (dit != dirty_.end()) {
    return dit->second;
  }
  if (PinnedBlock cached = pool_->Lookup(pool_file_id_, page_id);
      cached && cached.object() != nullptr) {
    return std::static_pointer_cast<Node>(cached.object());
  }
  auto node = ReadNode(page_id);
  if (!node.ok()) {
    return node.status();
  }
  if (fill_cache) {
    pool_->Insert(pool_file_id_, page_id, nullptr, *node, opts_.page_size);
  }
  return *node;
}

void BTreeStore::MarkDirty(uint32_t page_id, const std::shared_ptr<Node>& node) {
  dirty_[page_id] = node;
}

void BTreeStore::InstallNode(uint32_t page_id, std::shared_ptr<Node> node) {
  pool_->Insert(pool_file_id_, page_id, nullptr, node, opts_.page_size);
  dirty_[page_id] = std::move(node);
}

Status BTreeStore::WriteBackDirtyLocked() {
  for (auto& [page_id, node] : dirty_) {
    GADGET_RETURN_IF_ERROR(WriteNode(page_id, *node));
    ++stats_.flushes;
  }
  dirty_.clear();
  return Status::Ok();
}

Status BTreeStore::MaybeWriteBackLocked() {
  if (dirty_.size() < kMaxDirtyPages) {
    return Status::Ok();
  }
  return WriteBackDirtyLocked();
}

uint32_t BTreeStore::AllocPage() {
  if (free_head_ != 0) {
    // Pop from the free list: the page's first 4 bytes hold the next id.
    std::string raw;
    if (ReadPageRaw(free_head_, &raw).ok()) {
      uint32_t page = free_head_;
      free_head_ = DecodeFixed32(raw.data());
      return page;
    }
  }
  return next_page_++;
}

void BTreeStore::FreePage(uint32_t page_id) {
  // Thread onto the free list; drop any cached copy.
  dirty_.erase(page_id);
  pool_->Erase(pool_file_id_, page_id);
  std::string raw;
  PutFixed32(&raw, free_head_);
  raw.resize(opts_.page_size, '\0');
  if (WritePageRaw(page_id, raw).ok()) {
    free_head_ = page_id;
  }
}

// ---------------------------------------------------------- overflow values

StatusOr<BTreeStore::ValueRef> BTreeStore::StoreValue(std::string_view value) {
  ValueRef ref;
  if (value.size() <= opts_.page_size / 4) {
    ref.inline_data.assign(value.data(), value.size());
    return ref;
  }
  // Chain of overflow pages: u32 next | u32 chunk_len | bytes.
  ref.total_len = static_cast<uint32_t>(value.size());
  const size_t chunk_cap = opts_.page_size - 8;
  size_t offset = 0;
  uint32_t prev_page = 0;
  std::string page;
  while (offset < value.size()) {
    size_t chunk = std::min(chunk_cap, value.size() - offset);
    uint32_t page_id = AllocPage();
    page.clear();
    PutFixed32(&page, 0);  // next; patched by the following iteration
    PutFixed32(&page, static_cast<uint32_t>(chunk));
    page.append(value.data() + offset, chunk);
    page.resize(opts_.page_size, '\0');
    GADGET_RETURN_IF_ERROR(WritePageRaw(page_id, page));
    if (prev_page == 0) {
      ref.overflow_head = page_id;
    } else {
      // Patch the previous page's next pointer.
      std::string next_bytes;
      PutFixed32(&next_bytes, page_id);
      GADGET_RETURN_IF_ERROR(PwriteAll(fd_, next_bytes.data(), 4,
                                       static_cast<uint64_t>(prev_page) * opts_.page_size));
    }
    prev_page = page_id;
    offset += chunk;
  }
  return ref;
}

Status BTreeStore::LoadValue(const ValueRef& ref, std::string* out) {
  if (ref.overflow_head == 0) {
    *out = ref.inline_data;
    return Status::Ok();
  }
  out->clear();
  out->reserve(ref.total_len);
  uint32_t page_id = ref.overflow_head;
  std::string raw;
  while (page_id != 0) {
    GADGET_RETURN_IF_ERROR(ReadPageRaw(page_id, &raw));
    uint32_t next = DecodeFixed32(raw.data());
    uint32_t chunk = DecodeFixed32(raw.data() + 4);
    if (chunk > opts_.page_size - 8) {
      return Status::Corruption("bad overflow chunk");
    }
    out->append(raw.data() + 8, chunk);
    page_id = next;
  }
  if (out->size() != ref.total_len) {
    return Status::Corruption("overflow chain length mismatch");
  }
  return Status::Ok();
}

void BTreeStore::ReleaseValue(const ValueRef& ref) {
  uint32_t page_id = ref.overflow_head;
  std::string raw;
  while (page_id != 0) {
    if (!ReadPageRaw(page_id, &raw).ok()) {
      return;
    }
    uint32_t next = DecodeFixed32(raw.data());
    FreePage(page_id);
    page_id = next;
  }
}

// ----------------------------------------------------------------- tree ops

StatusOr<uint32_t> BTreeStore::DescendToLeaf(std::string_view key,
                                             std::vector<PathEntry>* path) {
  uint32_t page_id = root_;
  for (;;) {
    auto node = FetchNode(page_id);
    if (!node.ok()) {
      return node.status();
    }
    if ((*node)->leaf) {
      return page_id;
    }
    const auto& keys = (*node)->keys;
    size_t idx = static_cast<size_t>(
        std::upper_bound(keys.begin(), keys.end(), key,
                         [](std::string_view k, const std::string& sep) { return k < sep; }) -
        keys.begin());
    path->push_back(PathEntry{page_id, idx});
    page_id = (*node)->children[idx];
  }
}

Status BTreeStore::GetLocked(std::string_view key, std::string* value, bool fill_cache) {
  std::vector<PathEntry> path;
  auto leaf_id = DescendToLeaf(key, &path);
  if (!leaf_id.ok()) {
    return leaf_id.status();
  }
  auto leaf = FetchNode(*leaf_id, fill_cache);
  if (!leaf.ok()) {
    return leaf.status();
  }
  const auto& keys = (*leaf)->keys;
  auto it = std::lower_bound(keys.begin(), keys.end(), key,
                             [](const std::string& k, std::string_view q) { return k < q; });
  if (it == keys.end() || std::string_view(*it) != key) {
    return Status::NotFound();
  }
  size_t idx = static_cast<size_t>(it - keys.begin());
  return LoadValue((*leaf)->values[idx], value);
}

Status BTreeStore::PutLocked(std::string_view key, std::string_view value) {
  std::vector<PathEntry> path;
  auto leaf_id = DescendToLeaf(key, &path);
  if (!leaf_id.ok()) {
    return leaf_id.status();
  }
  auto leaf = FetchNode(*leaf_id);
  if (!leaf.ok()) {
    return leaf.status();
  }
  Node& node = **leaf;
  auto it = std::lower_bound(node.keys.begin(), node.keys.end(), key,
                             [](const std::string& k, std::string_view q) { return k < q; });
  size_t idx = static_cast<size_t>(it - node.keys.begin());
  auto new_ref = StoreValue(value);
  if (!new_ref.ok()) {
    return new_ref.status();
  }
  if (it != node.keys.end() && std::string_view(*it) == key) {
    ReleaseValue(node.values[idx]);
    node.values[idx] = std::move(*new_ref);
  } else {
    node.keys.insert(node.keys.begin() + static_cast<long>(idx), std::string(key));
    node.values.insert(node.values.begin() + static_cast<long>(idx), std::move(*new_ref));
  }
  MarkDirty(*leaf_id, *leaf);
  if (node.SerializedSize() > opts_.page_size) {
    return SplitAndInsert(*leaf_id, std::move(path));
  }
  return Status::Ok();
}

Status BTreeStore::SplitAndInsert(uint32_t page_id, std::vector<PathEntry> path) {
  for (;;) {
    auto node_or = FetchNode(page_id);
    if (!node_or.ok()) {
      return node_or.status();
    }
    Node& node = **node_or;
    if (node.SerializedSize() <= opts_.page_size) {
      return Status::Ok();
    }
    // Split `node` into itself (left) and a new right sibling at the size
    // midpoint.
    auto right = std::make_shared<Node>();
    right->leaf = node.leaf;

    size_t total = node.SerializedSize();
    size_t acc = 0;
    size_t split_idx = 0;
    if (node.leaf) {
      for (size_t i = 0; i < node.keys.size(); ++i) {
        size_t entry = 3 + node.keys[i].size() +
                       (node.values[i].overflow_head == 0
                            ? 4 + node.values[i].inline_data.size()
                            : 8);
        acc += entry;
        if (acc >= total / 2) {
          split_idx = i + 1;
          break;
        }
      }
      split_idx = std::clamp<size_t>(split_idx, 1, node.keys.size() - 1);
      right->keys.assign(node.keys.begin() + static_cast<long>(split_idx), node.keys.end());
      right->values.assign(node.values.begin() + static_cast<long>(split_idx),
                           node.values.end());
      node.keys.resize(split_idx);
      node.values.resize(split_idx);
      uint32_t right_id = AllocPage();
      right->next_leaf = node.next_leaf;
      node.next_leaf = right_id;
      MarkDirty(page_id, *node_or);
      InstallNode(right_id, right);

      std::string separator = right->keys.front();
      // Insert the separator into the parent (or grow a new root).
      if (path.empty()) {
        auto new_root = std::make_shared<Node>();
        new_root->leaf = false;
        new_root->keys.push_back(separator);
        new_root->children = {page_id, right_id};
        uint32_t new_root_id = AllocPage();
        InstallNode(new_root_id, new_root);
        root_ = new_root_id;
        ++height_;
        GADGET_RETURN_IF_ERROR(PersistMeta());
        return Status::Ok();
      }
      PathEntry parent = path.back();
      path.pop_back();
      auto parent_node = FetchNode(parent.page_id);
      if (!parent_node.ok()) {
        return parent_node.status();
      }
      Node& pn = **parent_node;
      pn.keys.insert(pn.keys.begin() + static_cast<long>(parent.child_index), separator);
      pn.children.insert(pn.children.begin() + static_cast<long>(parent.child_index) + 1,
                         right_id);
      MarkDirty(parent.page_id, *parent_node);
      page_id = parent.page_id;  // continue loop: parent may now overflow
      continue;
    }
    // Internal node split: promote the middle key.
    size_t n = node.keys.size();
    acc = 0;
    split_idx = n / 2;
    for (size_t i = 0; i < n; ++i) {
      acc += 6 + node.keys[i].size();
      if (acc >= total / 2) {
        split_idx = i;
        break;
      }
    }
    split_idx = std::clamp<size_t>(split_idx, 1, n - 2 > 0 ? n - 2 : 1);
    std::string promoted = node.keys[split_idx];
    right->keys.assign(node.keys.begin() + static_cast<long>(split_idx) + 1, node.keys.end());
    right->children.assign(node.children.begin() + static_cast<long>(split_idx) + 1,
                           node.children.end());
    node.keys.resize(split_idx);
    node.children.resize(split_idx + 1);
    uint32_t right_id = AllocPage();
    MarkDirty(page_id, *node_or);
    InstallNode(right_id, right);

    if (path.empty()) {
      auto new_root = std::make_shared<Node>();
      new_root->leaf = false;
      new_root->keys.push_back(promoted);
      new_root->children = {page_id, right_id};
      uint32_t new_root_id = AllocPage();
      InstallNode(new_root_id, new_root);
      root_ = new_root_id;
      ++height_;
      GADGET_RETURN_IF_ERROR(PersistMeta());
      return Status::Ok();
    }
    PathEntry parent = path.back();
    path.pop_back();
    auto parent_node = FetchNode(parent.page_id);
    if (!parent_node.ok()) {
      return parent_node.status();
    }
    Node& pn = **parent_node;
    pn.keys.insert(pn.keys.begin() + static_cast<long>(parent.child_index), promoted);
    pn.children.insert(pn.children.begin() + static_cast<long>(parent.child_index) + 1,
                       right_id);
    MarkDirty(parent.page_id, *parent_node);
    page_id = parent.page_id;
  }
}

Status BTreeStore::DeleteLocked(std::string_view key) {
  std::vector<PathEntry> path;
  auto leaf_id = DescendToLeaf(key, &path);
  if (!leaf_id.ok()) {
    return leaf_id.status();
  }
  auto leaf = FetchNode(*leaf_id);
  if (!leaf.ok()) {
    return leaf.status();
  }
  Node& node = **leaf;
  auto it = std::lower_bound(node.keys.begin(), node.keys.end(), key,
                             [](const std::string& k, std::string_view q) { return k < q; });
  if (it == node.keys.end() || std::string_view(*it) != key) {
    return Status::Ok();  // blind delete of a missing key is a no-op
  }
  size_t idx = static_cast<size_t>(it - node.keys.begin());
  ReleaseValue(node.values[idx]);
  node.keys.erase(it);
  node.values.erase(node.values.begin() + static_cast<long>(idx));
  MarkDirty(*leaf_id, *leaf);
  // No rebalancing: empty non-root leaves stay linked but hold no entries;
  // their pages are reused only after the parent range empties out. This is
  // the lazy-reclamation model (see header).
  return Status::Ok();
}

Status BTreeStore::RmwLocked(std::string_view key, std::string_view operand) {
  std::string value;
  Status s = GetLocked(key, &value);
  if (!s.ok() && !s.IsNotFound()) {
    return s;
  }
  value.append(operand.data(), operand.size());
  return PutLocked(key, value);
}

// ------------------------------------------------------------ public facade

Status BTreeStore::Put(std::string_view key, std::string_view value) {
  MutexLock lock(&mu_);
  if (closed_) {
    return Status::Internal("store is closed");
  }
  ++stats_.puts;
  stats_.bytes_written += key.size() + value.size();
  GADGET_RETURN_IF_ERROR(PutLocked(key, value));
  return MaybeWriteBackLocked();
}

Status BTreeStore::Get(std::string_view key, std::string* value, const ReadOptions& options) {
  MutexLock lock(&mu_);
  if (closed_) {
    return Status::Internal("store is closed");
  }
  ++stats_.gets;
  Status s = GetLocked(key, value, options.fill_cache);
  if (s.ok()) {
    stats_.bytes_read += value->size();
  }
  return s;
}

Status BTreeStore::Delete(std::string_view key) {
  MutexLock lock(&mu_);
  if (closed_) {
    return Status::Internal("store is closed");
  }
  ++stats_.deletes;
  // Accounting contract (kvstore.h): a delete accepts its key bytes.
  stats_.bytes_written += key.size();
  GADGET_RETURN_IF_ERROR(DeleteLocked(key));
  return MaybeWriteBackLocked();
}

Status BTreeStore::ReadModifyWrite(std::string_view key, std::string_view operand) {
  MutexLock lock(&mu_);
  if (closed_) {
    return Status::Internal("store is closed");
  }
  ++stats_.rmws;
  stats_.bytes_written += key.size() + operand.size();
  GADGET_RETURN_IF_ERROR(RmwLocked(key, operand));
  return MaybeWriteBackLocked();
}

Status BTreeStore::Write(const WriteBatch& batch) {
  MutexLock lock(&mu_);
  if (closed_) {
    return Status::Internal("store is closed");
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    const WriteBatch::Entry& e = batch.entry(i);
    Status s;
    switch (e.op) {
      case WriteBatch::Op::kPut:
        ++stats_.puts;
        stats_.bytes_written += e.key.size() + e.value.size();
        s = PutLocked(e.key, e.value);
        break;
      case WriteBatch::Op::kMerge:
        // No native merge: a batched merge is an eager RMW, same as the
        // single-op fallback path and counted identically.
        ++stats_.rmws;
        stats_.bytes_written += e.key.size() + e.value.size();
        s = RmwLocked(e.key, e.value);
        break;
      case WriteBatch::Op::kDelete:
        ++stats_.deletes;
        stats_.bytes_written += e.key.size();
        s = DeleteLocked(e.key);
        break;
    }
    GADGET_RETURN_IF_ERROR(s);
  }
  NoteBatch(batch.size());
  return MaybeWriteBackLocked();
}

Status BTreeStore::MultiGet(const std::vector<std::string>& keys,
                            std::vector<std::string>* values, std::vector<Status>* statuses,
                            const ReadOptions& options) {
  values->resize(keys.size());
  statuses->assign(keys.size(), Status::Ok());
  MutexLock lock(&mu_);
  if (closed_) {
    return Status::Internal("store is closed");
  }
  Status first_error;
  for (size_t i = 0; i < keys.size(); ++i) {
    ++stats_.gets;
    Status s = GetLocked(keys[i], &(*values)[i], options.fill_cache);
    if (s.ok()) {
      stats_.bytes_read += (*values)[i].size();
    } else if (!s.IsNotFound() && first_error.ok()) {
      first_error = s;
    }
    (*statuses)[i] = std::move(s);
  }
  NoteBatch(keys.size());
  return first_error;
}

Status BTreeStore::FlushLocked() {
  GADGET_RETURN_IF_ERROR(WriteBackDirtyLocked());
  GADGET_RETURN_IF_ERROR(PersistMeta());
  if (::fdatasync(fd_) != 0) {
    return Status::IoError("fdatasync btree");
  }
  return Status::Ok();
}

Status BTreeStore::Flush() {
  MutexLock lock(&mu_);
  if (closed_) {
    return Status::Ok();
  }
  return FlushLocked();
}

StatusOr<CheckpointInfo> BTreeStore::Checkpoint(const std::string& dir,
                                                const CheckpointOptions& options) {
  (void)options;  // the page file mutates in place: nothing to reuse
  GADGET_RETURN_IF_ERROR(CreateDirIfMissing(dir));
  auto names = ListDir(dir);
  if (!names.ok()) {
    return names.status();
  }
  if (!names->empty()) {
    return Status::InvalidArgument("checkpoint dir not empty: " + dir);
  }
  MutexLock lock(&mu_);
  if (closed_) {
    return Status::Internal("store is closed");
  }
  GADGET_RETURN_IF_ERROR(FlushLocked());
  GADGET_RETURN_IF_ERROR(CopyFile(TreePath(dir_), TreePath(dir), /*sync=*/true));
  GADGET_RETURN_IF_ERROR(SyncDir(dir));
  auto size = FileSize(TreePath(dir));
  if (!size.ok()) {
    return size.status();
  }
  CheckpointInfo info;
  info.bytes = *size;
  info.files = 1;
  return info;
}

Status BTreeStore::Close() {
  {
    MutexLock lock(&mu_);
    if (closed_) {
      return Status::Ok();
    }
  }
  Status s = Flush();
  MutexLock lock(&mu_);
  closed_ = true;
  // Drop this store's pages from the shared pool so a long-lived pool does
  // not pin budget for a closed store.
  pool_->EraseFile(pool_file_id_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  return s;
}

StoreStats BTreeStore::stats() const {
  MutexLock lock(&mu_);
  StoreStats out = stats_;
  FoldBatchStats(&out);
  // Pool-wide totals (the pool may be shared across stores; see kvstore.h).
  out.cache_hits = pool_->hits();
  out.cache_misses = pool_->misses();
  out.cache_evictions = pool_->evictions();
  out.cache_pins = pool_->pins();
  out.io_batches = pool_->io().batches();
  out.io_in_flight_max = pool_->io().in_flight_max();
  return out;
}

uint32_t BTreeStore::height() const {
  MutexLock lock(&mu_);
  return height_;
}

uint64_t BTreeStore::num_pages() const {
  MutexLock lock(&mu_);
  return next_page_;
}

Status BTreeStore::CheckInvariants() {
  MutexLock lock(&mu_);
  // Iterative BFS verifying (a) key ordering within nodes, (b) separator
  // bounds, (c) uniform leaf depth.
  struct Item {
    uint32_t page_id;
    uint32_t depth;
    std::string low;
    std::string high;  // empty = unbounded
    bool has_high;
  };
  std::vector<Item> queue{{root_, 0, "", "", false}};
  int leaf_depth = -1;
  while (!queue.empty()) {
    Item item = std::move(queue.back());
    queue.pop_back();
    auto node = FetchNode(item.page_id);
    if (!node.ok()) {
      return node.status();
    }
    const Node& n = **node;
    for (size_t i = 1; i < n.keys.size(); ++i) {
      if (n.keys[i - 1] >= n.keys[i]) {
        return Status::Corruption("keys out of order in page " + std::to_string(item.page_id));
      }
    }
    for (const std::string& k : n.keys) {
      if (k < item.low || (item.has_high && k >= item.high)) {
        return Status::Corruption("key outside separator bounds in page " +
                                  std::to_string(item.page_id));
      }
    }
    if (n.leaf) {
      if (leaf_depth == -1) {
        leaf_depth = static_cast<int>(item.depth);
      } else if (leaf_depth != static_cast<int>(item.depth)) {
        return Status::Corruption("non-uniform leaf depth");
      }
      if (n.keys.size() != n.values.size()) {
        return Status::Corruption("leaf keys/values mismatch");
      }
    } else {
      if (n.children.size() != n.keys.size() + 1) {
        return Status::Corruption("internal children count mismatch");
      }
      for (size_t i = 0; i < n.children.size(); ++i) {
        Item child;
        child.page_id = n.children[i];
        child.depth = item.depth + 1;
        child.low = i == 0 ? item.low : n.keys[i - 1];
        if (i < n.keys.size()) {
          child.high = n.keys[i];
          child.has_high = true;
        } else {
          child.high = item.high;
          child.has_high = item.has_high;
        }
        queue.push_back(std::move(child));
      }
    }
  }
  return Status::Ok();
}

}  // namespace gadget
