// Persistent B+tree key-value store (the project's BerkeleyDB stand-in).
//
// Fixed-size pages in a single file, parsed nodes cached in the SHARED
// BufferPool (as decoded objects, charged one page each), in-place value
// updates when the new value fits, leaf splits on overflow, and
// overflow-page chains for values larger than a quarter page (holistic
// window buckets grow far beyond a page). Deletes remove entries without
// rebalancing (pages return to a free list when empty), which matches
// BerkeleyDB's lazy reclamation behaviour closely enough for benchmarking.
//
// Durability model: dirty nodes are held in a side table (unevictable — the
// pool may drop its frame, the node object survives) and written back when
// the table grows past a threshold, on Flush() and on Close(). FetchNode
// consults the dirty table before the pool, so an evicted-then-refetched
// dirty page can never resurrect its stale on-disk bytes.
// Crash-consistency (journaling) is out of scope — the paper benchmarks the
// storage engine data path, not transactional recovery (DESIGN.md §2).
#ifndef GADGET_STORES_BTREE_BTREE_STORE_H_
#define GADGET_STORES_BTREE_BTREE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/stores/bufferpool/buffer_pool.h"
#include "src/stores/kvstore.h"

namespace gadget {

struct BTreeOptions {
  uint32_t page_size = 4096;
  // Page residency is bounded by the BufferPool passed to Open (sized by
  // StoreOptions::buffer_pool), not per-store.
  bool sync_writes = false;
};

class BTreeStore : public KVStore {
 public:
  // `pool` bounds page residency; nullptr makes the store create a private
  // default-sized pool (standalone tests/tools).
  static StatusOr<std::unique_ptr<KVStore>> Open(const std::string& dir,
                                                 const BTreeOptions& opts,
                                                 std::shared_ptr<BufferPool> pool = nullptr);
  ~BTreeStore() override;

  using KVStore::Get;
  using KVStore::MultiGet;

  Status Put(std::string_view key, std::string_view value) override;
  // Honors options.fill_cache (a miss read with fill_cache=false is not
  // admitted to the pool); readahead/checksums do not apply to the page file.
  Status Get(std::string_view key, std::string* value, const ReadOptions& options) override;
  Status Delete(std::string_view key) override;
  Status ReadModifyWrite(std::string_view key, std::string_view operand) override;

  // Batched paths: one mu_ acquisition and one write-back sweep per batch
  // instead of one per operation (page granularity — consecutive entries
  // hitting the same leaf reuse the cached page without re-locking).
  Status Write(const WriteBatch& batch) override;
  Status MultiGet(const std::vector<std::string>& keys, std::vector<std::string>* values,
                  std::vector<Status>* statuses, const ReadOptions& options) override;

  Status Flush() override;
  Status Close() override;
  // Flushes dirty pages + meta under mu_, then byte-copies the page file
  // into `dir`. The copy happens with mu_ held after the flush, so it is a
  // point-in-time image; the file mutates in place, so there is nothing to
  // reuse incrementally (options.base_dir is ignored).
  StatusOr<CheckpointInfo> Checkpoint(const std::string& dir,
                                      const CheckpointOptions& options) override;
  StoreStats stats() const override;
  std::string name() const override { return "btree"; }

  // Introspection for tests.
  uint32_t height() const;
  uint64_t num_pages() const;
  // Walks the whole tree checking ordering + structure invariants.
  Status CheckInvariants();

 private:
  // In-memory (parsed) page representation.
  struct ValueRef {
    std::string inline_data;     // used when overflow_head == 0
    uint32_t overflow_head = 0;  // first overflow page, 0 = inline
    uint32_t total_len = 0;      // full value length when overflowed
  };
  struct Node {
    bool leaf = true;
    std::vector<std::string> keys;
    std::vector<ValueRef> values;     // leaf: parallel to keys
    std::vector<uint32_t> children;   // internal: keys.size() + 1 entries
    uint32_t next_leaf = 0;
    size_t SerializedSize() const;
  };

  BTreeStore(std::string dir, const BTreeOptions& opts, std::shared_ptr<BufferPool> pool);

  Status Recover();

  // --- page cache (mu_ held) ---
  // Dirty table first (pool eviction must never resurrect stale disk bytes),
  // then the pool, then disk. `fill_cache` = false skips pool admission on a
  // miss.
  StatusOr<std::shared_ptr<Node>> FetchNode(uint32_t page_id, bool fill_cache = true)
      REQUIRES(mu_);
  // Registers a mutated node in the dirty table (idempotent).
  void MarkDirty(uint32_t page_id, const std::shared_ptr<Node>& node) REQUIRES(mu_);
  // Admits a freshly created page to pool + dirty table (splits, new roots).
  void InstallNode(uint32_t page_id, std::shared_ptr<Node> node) REQUIRES(mu_);
  // Writes every dirty node to the page file and clears the table (no sync).
  Status WriteBackDirtyLocked() REQUIRES(mu_);
  // Bounds the dirty table: full write-back once it passes kMaxDirtyPages
  // (the pool bounds CLEAN residency; dirty nodes live outside its budget).
  Status MaybeWriteBackLocked() REQUIRES(mu_);
  Status WriteNode(uint32_t page_id, const Node& node) REQUIRES(mu_);
  StatusOr<std::shared_ptr<Node>> ReadNode(uint32_t page_id) REQUIRES(mu_);
  uint32_t AllocPage() REQUIRES(mu_);
  void FreePage(uint32_t page_id) REQUIRES(mu_);
  Status PersistMeta() REQUIRES(mu_);
  // Flush body shared by Flush() and Checkpoint(): write-back every dirty
  // page, persist the meta page, fdatasync the file.
  Status FlushLocked() REQUIRES(mu_);

  // --- tree ops (mu_ held) ---
  Status GetLocked(std::string_view key, std::string* value, bool fill_cache = true)
      REQUIRES(mu_);
  Status PutLocked(std::string_view key, std::string_view value) REQUIRES(mu_);
  Status DeleteLocked(std::string_view key) REQUIRES(mu_);
  Status RmwLocked(std::string_view key, std::string_view operand) REQUIRES(mu_);
  // Descends to the leaf for `key`, recording the path (page ids + child
  // indices) for split propagation.
  struct PathEntry {
    uint32_t page_id;
    size_t child_index;
  };
  StatusOr<uint32_t> DescendToLeaf(std::string_view key, std::vector<PathEntry>* path)
      REQUIRES(mu_);
  Status SplitAndInsert(uint32_t leaf_id, std::vector<PathEntry> path) REQUIRES(mu_);

  // --- overflow values (mu_ held) ---
  StatusOr<ValueRef> StoreValue(std::string_view value) REQUIRES(mu_);
  Status LoadValue(const ValueRef& ref, std::string* out) REQUIRES(mu_);
  void ReleaseValue(const ValueRef& ref) REQUIRES(mu_);

  // --- raw page I/O (mu_ held: they use fd_) ---
  Status ReadPageRaw(uint32_t page_id, std::string* out) REQUIRES(mu_);
  Status WritePageRaw(uint32_t page_id, std::string_view data) REQUIRES(mu_);

  std::string SerializeNode(const Node& node) const;
  StatusOr<Node> DeserializeNode(std::string_view data) const;

  const std::string dir_;
  const BTreeOptions opts_;
  // Shared (or private when Open got nullptr) page residency: parsed nodes
  // are cached as decoded objects, one page of charge each. Never null.
  const std::shared_ptr<BufferPool> pool_;
  uint64_t pool_file_id_ = 0;  // this store's namespace within the pool

  // Write-back ceiling for the dirty table.
  static constexpr size_t kMaxDirtyPages = 1024;

  mutable Mutex mu_;
  int fd_ GUARDED_BY(mu_) = -1;
  uint32_t root_ GUARDED_BY(mu_) = 0;
  uint32_t next_page_ GUARDED_BY(mu_) = 1;  // page 0 is the meta page
  // Singly-linked free list threaded through pages.
  uint32_t free_head_ GUARDED_BY(mu_) = 0;
  uint32_t height_ GUARDED_BY(mu_) = 1;

  // Mutated nodes not yet written back. Keeps the node object alive (and
  // authoritative) even if the pool evicts its frame.
  std::unordered_map<uint32_t, std::shared_ptr<Node>> dirty_ GUARDED_BY(mu_);

  StoreStats stats_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace gadget

#endif  // GADGET_STORES_BTREE_BTREE_STORE_H_
