#include "src/stores/kvstore.h"

#include <algorithm>

#include "src/common/file_util.h"
#include "src/stores/btree/btree_store.h"
#include "src/stores/faster/faster_store.h"
#include "src/stores/lsm/lsm_store.h"
#include "src/stores/memstore.h"

namespace gadget {
namespace {

uint64_t SatSub(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }

// Applies `fn(field_of_this, field_of_other)` to every plain counter field.
// Keeping the field list in ONE place so DeltaSince/MergeMax cannot drift
// from the struct definition.
template <typename Fn>
void ForEachCounter(StoreStats* a, const StoreStats& b, Fn fn) {
  fn(&a->gets, b.gets);
  fn(&a->puts, b.puts);
  fn(&a->merges, b.merges);
  fn(&a->deletes, b.deletes);
  fn(&a->rmws, b.rmws);
  fn(&a->bytes_written, b.bytes_written);
  fn(&a->bytes_read, b.bytes_read);
  fn(&a->io_bytes_written, b.io_bytes_written);
  fn(&a->io_bytes_read, b.io_bytes_read);
  fn(&a->flushes, b.flushes);
  fn(&a->compactions, b.compactions);
  fn(&a->cache_hits, b.cache_hits);
  fn(&a->cache_misses, b.cache_misses);
  fn(&a->batches, b.batches);
  fn(&a->batched_ops, b.batched_ops);
  fn(&a->wal_fsyncs, b.wal_fsyncs);
  fn(&a->wal_bytes, b.wal_bytes);
  fn(&a->flush_micros, b.flush_micros);
  fn(&a->stall_micros, b.stall_micros);
  fn(&a->slowdown_micros, b.slowdown_micros);
  fn(&a->compaction_micros, b.compaction_micros);
  fn(&a->cache_evictions, b.cache_evictions);
  fn(&a->wal_group_commits, b.wal_group_commits);
  fn(&a->cache_pins, b.cache_pins);
  fn(&a->io_batches, b.io_batches);
  // wal_group_size_max and io_in_flight_max are gauges (like level_files):
  // DeltaSince keeps the later snapshot's value, MergeMax takes the max —
  // both handled by callers.
}

}  // namespace

StoreStats StoreStats::DeltaSince(const StoreStats& start) const {
  StoreStats out = *this;  // keeps level_files: the gauge is this snapshot's
  ForEachCounter(&out, start, [](uint64_t* field, uint64_t base) {
    *field = SatSub(*field, base);
  });
  return out;
}

void StoreStats::MergeSum(const StoreStats& other) {
  ForEachCounter(this, other, [](uint64_t* field, uint64_t theirs) { *field += theirs; });
  // Gauges cannot meaningfully sum across instances: the widest single
  // observation is the honest aggregate. level_files sums element-wise — N
  // shards really do hold N× the files.
  wal_group_size_max = std::max(wal_group_size_max, other.wal_group_size_max);
  io_in_flight_max = std::max(io_in_flight_max, other.io_in_flight_max);
  if (other.level_files.size() > level_files.size()) {
    level_files.resize(other.level_files.size());
  }
  for (size_t i = 0; i < other.level_files.size(); ++i) {
    level_files[i] += other.level_files[i];
  }
}

void StoreStats::MergeMax(const StoreStats& other) {
  ForEachCounter(this, other, [](uint64_t* field, uint64_t theirs) {
    *field = std::max(*field, theirs);
  });
  wal_group_size_max = std::max(wal_group_size_max, other.wal_group_size_max);
  io_in_flight_max = std::max(io_in_flight_max, other.io_in_flight_max);
  if (other.level_files.size() > level_files.size()) {
    level_files.resize(other.level_files.size());
  }
  for (size_t i = 0; i < other.level_files.size(); ++i) {
    level_files[i] = std::max(level_files[i], other.level_files[i]);
  }
}

StatusOr<CheckpointInfo> KVStore::Checkpoint(const std::string& dir,
                                             const CheckpointOptions& options) {
  (void)dir;
  (void)options;
  return Status::Unsupported("checkpoint not supported by " + name());
}

Status KVStore::ReadModifyWrite(std::string_view key, std::string_view operand) {
  std::string value;
  Status s = Get(key, &value);
  if (!s.ok() && !s.IsNotFound()) {
    return s;
  }
  value.append(operand.data(), operand.size());
  return Put(key, value);
}

Status KVStore::Write(const WriteBatch& batch) {
  // Correct-by-construction fallback: one single-op call per entry, in
  // order. Engines override this with a one-epoch implementation.
  const bool has_merge = supports_merge();
  for (size_t i = 0; i < batch.size(); ++i) {
    const WriteBatch::Entry& e = batch.entry(i);
    Status s;
    switch (e.op) {
      case WriteBatch::Op::kPut:
        s = Put(e.key, e.value);
        break;
      case WriteBatch::Op::kMerge:
        s = has_merge ? Merge(e.key, e.value) : ReadModifyWrite(e.key, e.value);
        break;
      case WriteBatch::Op::kDelete:
        s = Delete(e.key);
        break;
    }
    GADGET_RETURN_IF_ERROR(s);
  }
  NoteBatch(batch.size());
  return Status::Ok();
}

Status KVStore::MultiGet(const std::vector<std::string>& keys,
                         std::vector<std::string>* values, std::vector<Status>* statuses,
                         const ReadOptions& options) {
  values->resize(keys.size());
  statuses->assign(keys.size(), Status::Ok());
  Status first_error;
  for (size_t i = 0; i < keys.size(); ++i) {
    (*statuses)[i] = Get(keys[i], &(*values)[i], options);
    if (!(*statuses)[i].ok() && !(*statuses)[i].IsNotFound() && first_error.ok()) {
      first_error = (*statuses)[i];
    }
  }
  NoteBatch(keys.size());
  return first_error;
}

StatusOr<std::unique_ptr<KVStore>> OpenStore(const StoreOptions& options) {
  const std::string& engine = options.engine;
  if (engine == "mem") {
    return std::unique_ptr<KVStore>(new MemStore(
        options.mem_stripes == 0 ? MemStore::kDefaultStripes : options.mem_stripes));
  }
  GADGET_RETURN_IF_ERROR(CreateDirIfMissing(options.dir));
  // Block-structured engines share one pool when the caller supplies it;
  // otherwise each store gets a private pool sized by options.buffer_pool.
  auto pool = options.shared_pool != nullptr ? options.shared_pool
                                             : std::make_shared<BufferPool>(options.buffer_pool);
  if (engine == "lsm" || engine == "lethe") {
    LsmOptions opts;
    opts.sync_writes = options.sync_writes;
    if (engine == "lethe") {
      opts.delete_aware = true;
      opts.delete_persistence_ms = 10'000;  // paper: Lethe delete threshold 10s
    }
    return LsmStore::Open(options.dir, opts, std::move(pool));
  }
  if (engine == "faster") {
    FasterOptions opts;
    if (options.log_memory_bytes > 0) {
      opts.log_memory_bytes = options.log_memory_bytes;
    }
    opts.sync_writes = options.sync_writes;
    return FasterStore::Open(options.dir, opts);
  }
  if (engine == "btree") {
    BTreeOptions opts;
    opts.sync_writes = options.sync_writes;
    return BTreeStore::Open(options.dir, opts, std::move(pool));
  }
  return Status::InvalidArgument("unknown engine: " + engine);
}

StatusOr<std::unique_ptr<KVStore>> RestoreStore(const StoreOptions& options,
                                                const std::string& checkpoint_dir) {
  if (!FileExists(checkpoint_dir)) {
    return Status::NotFound("no checkpoint at " + checkpoint_dir);
  }
  // Every engine writes its anchor file last (after syncing the data it
  // references), so its absence means a checkpoint that was cut short.
  const std::string anchor = options.engine == "lsm" || options.engine == "lethe" ? "MANIFEST"
                             : options.engine == "btree"                          ? "btree.db"
                             : options.engine == "faster"                         ? "hybrid.log"
                                                                                  : "memstore.snap";
  if (!FileExists(checkpoint_dir + "/" + anchor)) {
    return Status::Corruption("incomplete checkpoint (no " + anchor + ") at " + checkpoint_dir);
  }
  if (options.engine == "mem") {
    auto store = std::make_unique<MemStore>(
        options.mem_stripes == 0 ? MemStore::kDefaultStripes : options.mem_stripes);
    GADGET_RETURN_IF_ERROR(store->LoadCheckpoint(checkpoint_dir));
    return std::unique_ptr<KVStore>(std::move(store));
  }
  if (options.dir.empty()) {
    return Status::InvalidArgument("restore needs a target dir");
  }
  GADGET_RETURN_IF_ERROR(CreateDirIfMissing(options.dir));
  auto existing = ListDir(options.dir);
  if (!existing.ok()) {
    return existing.status();
  }
  if (!existing->empty()) {
    return Status::InvalidArgument("restore target not empty: " + options.dir);
  }
  auto names = ListDir(checkpoint_dir);
  if (!names.ok()) {
    return names.status();
  }
  // SSTables are immutable for the rest of their life (the store only ever
  // unlinks them, which leaves the checkpoint's directory entry intact), so
  // they can be shared by hard link. Everything else — the manifest, WAL
  // tails, btree.db, hybrid.log — is rewritten or appended in place by the
  // restored store and must be a private byte copy.
  const bool link_ssts = options.engine == "lsm" || options.engine == "lethe";
  for (const std::string& name : *names) {
    const std::string from = checkpoint_dir + "/" + name;
    const std::string to = options.dir + "/" + name;
    const bool is_sst = name.size() > 4 && name.compare(name.size() - 4, 4, ".sst") == 0;
    if (link_ssts && is_sst) {
      GADGET_RETURN_IF_ERROR(LinkOrCopyFile(from, to));
    } else {
      GADGET_RETURN_IF_ERROR(CopyFile(from, to, /*sync=*/true));
    }
  }
  GADGET_RETURN_IF_ERROR(SyncDir(options.dir));
  return OpenStore(options);
}

}  // namespace gadget
