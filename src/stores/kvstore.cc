#include "src/stores/kvstore.h"

#include "src/common/file_util.h"
#include "src/stores/btree/btree_store.h"
#include "src/stores/faster/faster_store.h"
#include "src/stores/lsm/lsm_store.h"
#include "src/stores/memstore.h"

namespace gadget {

Status KVStore::ReadModifyWrite(std::string_view key, std::string_view operand) {
  std::string value;
  Status s = Get(key, &value);
  if (!s.ok() && !s.IsNotFound()) {
    return s;
  }
  value.append(operand.data(), operand.size());
  return Put(key, value);
}

Status KVStore::Write(const WriteBatch& batch) {
  // Correct-by-construction fallback: one single-op call per entry, in
  // order. Engines override this with a one-epoch implementation.
  const bool has_merge = supports_merge();
  for (size_t i = 0; i < batch.size(); ++i) {
    const WriteBatch::Entry& e = batch.entry(i);
    Status s;
    switch (e.op) {
      case WriteBatch::Op::kPut:
        s = Put(e.key, e.value);
        break;
      case WriteBatch::Op::kMerge:
        s = has_merge ? Merge(e.key, e.value) : ReadModifyWrite(e.key, e.value);
        break;
      case WriteBatch::Op::kDelete:
        s = Delete(e.key);
        break;
    }
    GADGET_RETURN_IF_ERROR(s);
  }
  NoteBatch(batch.size());
  return Status::Ok();
}

Status KVStore::MultiGet(const std::vector<std::string>& keys,
                         std::vector<std::string>* values, std::vector<Status>* statuses) {
  values->resize(keys.size());
  statuses->assign(keys.size(), Status::Ok());
  Status first_error;
  for (size_t i = 0; i < keys.size(); ++i) {
    (*statuses)[i] = Get(keys[i], &(*values)[i]);
    if (!(*statuses)[i].ok() && !(*statuses)[i].IsNotFound() && first_error.ok()) {
      first_error = (*statuses)[i];
    }
  }
  NoteBatch(keys.size());
  return first_error;
}

StatusOr<std::unique_ptr<KVStore>> OpenStore(const StoreOptions& options) {
  const std::string& engine = options.engine;
  if (engine == "mem") {
    return std::unique_ptr<KVStore>(new MemStore(
        options.mem_stripes == 0 ? MemStore::kDefaultStripes : options.mem_stripes));
  }
  GADGET_RETURN_IF_ERROR(CreateDirIfMissing(options.dir));
  if (engine == "lsm" || engine == "lethe") {
    LsmOptions opts;
    if (options.cache_bytes > 0) {
      opts.block_cache_bytes = options.cache_bytes;
    }
    opts.sync_writes = options.sync_writes;
    if (engine == "lethe") {
      opts.delete_aware = true;
      opts.delete_persistence_ms = 10'000;  // paper: Lethe delete threshold 10s
    }
    return LsmStore::Open(options.dir, opts);
  }
  if (engine == "faster") {
    FasterOptions opts;
    if (options.cache_bytes > 0) {
      opts.log_memory_bytes = options.cache_bytes;
    }
    opts.sync_writes = options.sync_writes;
    return FasterStore::Open(options.dir, opts);
  }
  if (engine == "btree") {
    BTreeOptions opts;
    if (options.cache_bytes > 0) {
      opts.cache_bytes = options.cache_bytes;
    }
    opts.sync_writes = options.sync_writes;
    return BTreeStore::Open(options.dir, opts);
  }
  return Status::InvalidArgument("unknown engine: " + engine);
}

StatusOr<std::unique_ptr<KVStore>> OpenStore(const std::string& engine, const std::string& dir) {
  StoreOptions options;
  options.engine = engine;
  options.dir = dir;
  return OpenStore(options);
}

}  // namespace gadget
