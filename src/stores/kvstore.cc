#include "src/stores/kvstore.h"

#include "src/common/file_util.h"
#include "src/stores/btree/btree_store.h"
#include "src/stores/faster/faster_store.h"
#include "src/stores/lsm/lsm_store.h"
#include "src/stores/memstore.h"

namespace gadget {

Status KVStore::ReadModifyWrite(std::string_view key, std::string_view operand) {
  std::string value;
  Status s = Get(key, &value);
  if (!s.ok() && !s.IsNotFound()) {
    return s;
  }
  value.append(operand.data(), operand.size());
  return Put(key, value);
}

StatusOr<std::unique_ptr<KVStore>> OpenStore(const std::string& engine, const std::string& dir) {
  if (engine == "mem") {
    return std::unique_ptr<KVStore>(new MemStore());
  }
  GADGET_RETURN_IF_ERROR(CreateDirIfMissing(dir));
  if (engine == "lsm") {
    LsmOptions opts;
    return LsmStore::Open(dir, opts);
  }
  if (engine == "lethe") {
    LsmOptions opts;
    opts.delete_aware = true;
    opts.delete_persistence_ms = 10'000;  // paper: Lethe delete threshold 10s
    return LsmStore::Open(dir, opts);
  }
  if (engine == "faster") {
    FasterOptions opts;
    return FasterStore::Open(dir, opts);
  }
  if (engine == "btree") {
    BTreeOptions opts;
    return BTreeStore::Open(dir, opts);
  }
  return Status::InvalidArgument("unknown engine: " + engine);
}

}  // namespace gadget
