#include "src/stores/memstore.h"

#include <cstring>
#include <mutex>

#include "src/common/hash.h"

namespace gadget {
namespace {

size_t RoundUpPow2(size_t n) {
  if (n < 2) {
    return 1;
  }
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

size_t MemStore::KeyHash::operator()(std::string_view s) const {
  if (s.size() == 16) {
    uint64_t hi, lo;
    std::memcpy(&hi, s.data(), 8);
    std::memcpy(&lo, s.data() + 8, 8);
    return static_cast<size_t>(Mix64(hi ^ (lo * 0x9e3779b97f4a7c15ULL)));
  }
  return static_cast<size_t>(Hash64(s));
}

MemStore::MemStore(size_t num_stripes)
    : stripes_(RoundUpPow2(num_stripes)), stripe_mask_(stripes_.size() - 1) {}

MemStore::Stripe& MemStore::StripeFor(std::string_view key) {
  return stripes_[KeyHash{}(key) & stripe_mask_];
}

Status MemStore::Put(std::string_view key, std::string_view value) {
  Stripe& s = StripeFor(key);
  {
    std::unique_lock<std::shared_mutex> lock(s.mu);
    // Transparent find + in-place assign: overwriting an existing key (the
    // common case in replay loops) allocates nothing.
    auto it = s.map.find(key);
    if (it == s.map.end()) {
      s.map.emplace(key, value);
    } else {
      it->second.assign(value.data(), value.size());
    }
  }
  s.puts.fetch_add(1, std::memory_order_relaxed);
  s.bytes_written.fetch_add(key.size() + value.size(), std::memory_order_relaxed);
  return Status::Ok();
}

Status MemStore::Get(std::string_view key, std::string* value) {
  Stripe& s = StripeFor(key);
  s.gets.fetch_add(1, std::memory_order_relaxed);
  size_t read = 0;
  {
    std::shared_lock<std::shared_mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) {
      return Status::NotFound();
    }
    *value = it->second;
    read = value->size();
  }
  s.bytes_read.fetch_add(read, std::memory_order_relaxed);
  return Status::Ok();
}

Status MemStore::Merge(std::string_view key, std::string_view operand) {
  Stripe& s = StripeFor(key);
  {
    std::unique_lock<std::shared_mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) {
      s.map.emplace(key, operand);
    } else {
      it->second.append(operand.data(), operand.size());
    }
  }
  s.merges.fetch_add(1, std::memory_order_relaxed);
  s.bytes_written.fetch_add(key.size() + operand.size(), std::memory_order_relaxed);
  return Status::Ok();
}

Status MemStore::Delete(std::string_view key) {
  Stripe& s = StripeFor(key);
  {
    std::unique_lock<std::shared_mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it != s.map.end()) {
      s.map.erase(it);
    }
  }
  s.deletes.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status MemStore::ReadModifyWrite(std::string_view key, std::string_view operand) {
  Stripe& s = StripeFor(key);
  {
    std::unique_lock<std::shared_mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) {
      s.map.emplace(key, operand);
    } else {
      it->second.append(operand.data(), operand.size());
    }
  }
  s.rmws.fetch_add(1, std::memory_order_relaxed);
  s.bytes_written.fetch_add(key.size() + operand.size(), std::memory_order_relaxed);
  return Status::Ok();
}

StoreStats MemStore::stats() const {
  StoreStats out;
  for (const Stripe& s : stripes_) {
    out.gets += s.gets.load(std::memory_order_relaxed);
    out.puts += s.puts.load(std::memory_order_relaxed);
    out.merges += s.merges.load(std::memory_order_relaxed);
    out.deletes += s.deletes.load(std::memory_order_relaxed);
    out.rmws += s.rmws.load(std::memory_order_relaxed);
    out.bytes_written += s.bytes_written.load(std::memory_order_relaxed);
    out.bytes_read += s.bytes_read.load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace gadget
