#include "src/stores/memstore.h"

namespace gadget {

Status MemStore::Put(std::string_view key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  map_[std::string(key)] = std::string(value);
  ++stats_.puts;
  stats_.bytes_written += key.size() + value.size();
  return Status::Ok();
}

Status MemStore::Get(std::string_view key, std::string* value) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.gets;
  auto it = map_.find(std::string(key));
  if (it == map_.end()) {
    return Status::NotFound();
  }
  *value = it->second;
  stats_.bytes_read += value->size();
  return Status::Ok();
}

Status MemStore::Merge(std::string_view key, std::string_view operand) {
  std::lock_guard<std::mutex> lock(mu_);
  map_[std::string(key)].append(operand.data(), operand.size());
  ++stats_.merges;
  stats_.bytes_written += key.size() + operand.size();
  return Status::Ok();
}

Status MemStore::Delete(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  map_.erase(std::string(key));
  ++stats_.deletes;
  return Status::Ok();
}

Status MemStore::ReadModifyWrite(std::string_view key, std::string_view operand) {
  std::lock_guard<std::mutex> lock(mu_);
  map_[std::string(key)].append(operand.data(), operand.size());
  ++stats_.rmws;
  stats_.bytes_written += key.size() + operand.size();
  return Status::Ok();
}

StoreStats MemStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace gadget
