#include "src/stores/memstore.h"

#include <cstring>

#include "src/common/coding.h"
#include "src/common/file_util.h"
#include "src/common/hash.h"
#include "src/common/mutex.h"

namespace gadget {
namespace {

constexpr std::string_view kSnapshotHeader = "gadget-memsnap 1\n";
constexpr const char* kSnapshotFile = "memstore.snap";

size_t RoundUpPow2(size_t n) {
  if (n < 2) {
    return 1;
  }
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

// Stable counting sort of batch positions by stripe: equal keys share a
// stripe, so their insertion order survives. O(n + stripes) with no
// comparisons — std::stable_sort's n log n comparator (plus its temporary
// buffer) costs more than the lock amortization it enables at typical batch
// widths, which inverted the batch win.
void GroupByStripe(const std::vector<uint32_t>& stripe_of, size_t num_stripes,
                   std::vector<uint32_t>* counts, std::vector<uint32_t>* idx) {
  const size_t n = stripe_of.size();
  counts->assign(num_stripes + 1, 0);
  for (uint32_t s : stripe_of) {
    ++(*counts)[s + 1];
  }
  for (size_t s = 1; s <= num_stripes; ++s) {
    (*counts)[s] += (*counts)[s - 1];
  }
  idx->resize(n);
  for (size_t i = 0; i < n; ++i) {
    (*idx)[(*counts)[stripe_of[i]]++] = static_cast<uint32_t>(i);
  }
}

}  // namespace

size_t MemStore::KeyHash::operator()(std::string_view s) const {
  if (s.size() == 16) {
    uint64_t hi, lo;
    std::memcpy(&hi, s.data(), 8);
    std::memcpy(&lo, s.data() + 8, 8);
    return static_cast<size_t>(Mix64(hi ^ (lo * 0x9e3779b97f4a7c15ULL)));
  }
  return static_cast<size_t>(Hash64(s));
}

MemStore::MemStore(size_t num_stripes)
    : stripes_(RoundUpPow2(num_stripes)), stripe_mask_(stripes_.size() - 1) {}

MemStore::Stripe& MemStore::StripeFor(std::string_view key) {
  return stripes_[KeyHash{}(key) & stripe_mask_];
}

Status MemStore::Put(std::string_view key, std::string_view value) {
  Stripe& s = StripeFor(key);
  {
    WriterMutexLock lock(&s.mu);
    // Transparent find + in-place assign: overwriting an existing key (the
    // common case in replay loops) allocates nothing.
    auto it = s.map.find(key);
    if (it == s.map.end()) {
      s.map.emplace(key, value);
    } else {
      it->second.assign(value.data(), value.size());
    }
  }
  s.puts.fetch_add(1, std::memory_order_relaxed);
  s.bytes_written.fetch_add(key.size() + value.size(), std::memory_order_relaxed);
  return Status::Ok();
}

Status MemStore::Get(std::string_view key, std::string* value, const ReadOptions& /*options*/) {
  Stripe& s = StripeFor(key);
  s.gets.fetch_add(1, std::memory_order_relaxed);
  size_t read = 0;
  {
    ReaderMutexLock lock(&s.mu);
    // Const view of the map: under the shared lock only const access is
    // allowed (the analysis treats non-const member calls as writes).
    const auto& map = s.map;
    auto it = map.find(key);
    if (it == map.end()) {
      return Status::NotFound();
    }
    *value = it->second;
    read = value->size();
  }
  s.bytes_read.fetch_add(read, std::memory_order_relaxed);
  return Status::Ok();
}

Status MemStore::Merge(std::string_view key, std::string_view operand) {
  Stripe& s = StripeFor(key);
  {
    WriterMutexLock lock(&s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) {
      s.map.emplace(key, operand);
    } else {
      it->second.append(operand.data(), operand.size());
    }
  }
  s.merges.fetch_add(1, std::memory_order_relaxed);
  s.bytes_written.fetch_add(key.size() + operand.size(), std::memory_order_relaxed);
  return Status::Ok();
}

Status MemStore::Delete(std::string_view key) {
  Stripe& s = StripeFor(key);
  {
    WriterMutexLock lock(&s.mu);
    auto it = s.map.find(key);
    if (it != s.map.end()) {
      s.map.erase(it);
    }
  }
  s.deletes.fetch_add(1, std::memory_order_relaxed);
  // Accounting contract (kvstore.h): a delete accepts its key bytes.
  s.bytes_written.fetch_add(key.size(), std::memory_order_relaxed);
  return Status::Ok();
}

Status MemStore::ReadModifyWrite(std::string_view key, std::string_view operand) {
  Stripe& s = StripeFor(key);
  {
    WriterMutexLock lock(&s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) {
      s.map.emplace(key, operand);
    } else {
      it->second.append(operand.data(), operand.size());
    }
  }
  s.rmws.fetch_add(1, std::memory_order_relaxed);
  s.bytes_written.fetch_add(key.size() + operand.size(), std::memory_order_relaxed);
  return Status::Ok();
}

Status MemStore::Write(const WriteBatch& batch) {
  const size_t n = batch.size();
  if (n == 0) {
    NoteBatch(0);  // a batch call is a batch call, even when empty
    return Status::Ok();
  }
  // Single-stripe store: the whole batch commits under one lock acquisition
  // with no grouping work at all — the configuration where batching pays the
  // most, since every op otherwise takes the global lock.
  if (stripes_.size() == 1) {
    Stripe& s = stripes_[0];
    uint64_t puts = 0, merges = 0, deletes = 0, bytes = 0;
    {
      WriterMutexLock lock(&s.mu);
      for (size_t i = 0; i < n; ++i) {
        const WriteBatch::Entry& e = batch.entry(i);
        switch (e.op) {
          case WriteBatch::Op::kPut: {
            auto it = s.map.find(e.key);
            if (it == s.map.end()) {
              s.map.emplace(e.key, e.value);
            } else {
              it->second.assign(e.value);
            }
            ++puts;
            bytes += e.key.size() + e.value.size();
            break;
          }
          case WriteBatch::Op::kMerge: {
            auto it = s.map.find(e.key);
            if (it == s.map.end()) {
              s.map.emplace(e.key, e.value);
            } else {
              it->second.append(e.value);
            }
            ++merges;
            bytes += e.key.size() + e.value.size();
            break;
          }
          case WriteBatch::Op::kDelete: {
            auto it = s.map.find(e.key);
            if (it != s.map.end()) {
              s.map.erase(it);
            }
            ++deletes;
            bytes += e.key.size();
            break;
          }
        }
      }
    }
    if (puts != 0) {
      s.puts.fetch_add(puts, std::memory_order_relaxed);
    }
    if (merges != 0) {
      s.merges.fetch_add(merges, std::memory_order_relaxed);
    }
    if (deletes != 0) {
      s.deletes.fetch_add(deletes, std::memory_order_relaxed);
    }
    s.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
    NoteBatch(n);
    return Status::Ok();
  }
  // Stable order-by-stripe: same-key entries stay in insertion order (equal
  // keys share a stripe), cross-stripe reordering is unobservable. Each
  // stripe is then locked once per batch.
  std::vector<uint32_t> stripe_of(n);
  for (size_t i = 0; i < n; ++i) {
    stripe_of[i] = static_cast<uint32_t>(KeyHash{}(batch.entry(i).key) & stripe_mask_);
  }
  std::vector<uint32_t> counts;
  std::vector<uint32_t> idx;
  GroupByStripe(stripe_of, stripes_.size(), &counts, &idx);
  size_t run = 0;
  while (run < n) {
    const uint32_t stripe = stripe_of[idx[run]];
    size_t end = run;
    while (end < n && stripe_of[idx[end]] == stripe) {
      ++end;
    }
    Stripe& s = stripes_[stripe];
    uint64_t puts = 0, merges = 0, deletes = 0, bytes = 0;
    {
      WriterMutexLock lock(&s.mu);
      for (size_t i = run; i < end; ++i) {
        const WriteBatch::Entry& e = batch.entry(idx[i]);
        switch (e.op) {
          case WriteBatch::Op::kPut: {
            auto it = s.map.find(e.key);
            if (it == s.map.end()) {
              s.map.emplace(e.key, e.value);
            } else {
              it->second.assign(e.value);
            }
            ++puts;
            bytes += e.key.size() + e.value.size();
            break;
          }
          case WriteBatch::Op::kMerge: {
            auto it = s.map.find(e.key);
            if (it == s.map.end()) {
              s.map.emplace(e.key, e.value);
            } else {
              it->second.append(e.value);
            }
            ++merges;
            bytes += e.key.size() + e.value.size();
            break;
          }
          case WriteBatch::Op::kDelete: {
            auto it = s.map.find(e.key);
            if (it != s.map.end()) {
              s.map.erase(it);
            }
            ++deletes;
            bytes += e.key.size();
            break;
          }
        }
      }
    }
    // One relaxed update per (stripe, batch) instead of two per operation.
    if (puts != 0) {
      s.puts.fetch_add(puts, std::memory_order_relaxed);
    }
    if (merges != 0) {
      s.merges.fetch_add(merges, std::memory_order_relaxed);
    }
    if (deletes != 0) {
      s.deletes.fetch_add(deletes, std::memory_order_relaxed);
    }
    s.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
    run = end;
  }
  NoteBatch(n);
  return Status::Ok();
}

Status MemStore::MultiGet(const std::vector<std::string>& keys,
                          std::vector<std::string>* values, std::vector<Status>* statuses,
                          const ReadOptions& /*options*/) {
  const size_t n = keys.size();
  values->resize(n);
  statuses->assign(n, Status::Ok());
  if (n == 0) {
    NoteBatch(0);
    return Status::Ok();
  }
  // Single-stripe fast path: one shared-lock acquisition for the whole
  // vector lookup (see Write).
  if (stripes_.size() == 1) {
    Stripe& s = stripes_[0];
    uint64_t read = 0;
    {
      ReaderMutexLock lock(&s.mu);
      const auto& map = s.map;
      for (size_t i = 0; i < n; ++i) {
        auto it = map.find(std::string_view(keys[i]));
        if (it == map.end()) {
          (*statuses)[i] = Status::NotFound();
        } else {
          (*values)[i] = it->second;
          read += it->second.size();
        }
      }
    }
    s.gets.fetch_add(n, std::memory_order_relaxed);
    if (read != 0) {
      s.bytes_read.fetch_add(read, std::memory_order_relaxed);
    }
    NoteBatch(n);
    return Status::Ok();
  }
  std::vector<uint32_t> stripe_of(n);
  for (size_t i = 0; i < n; ++i) {
    stripe_of[i] = static_cast<uint32_t>(KeyHash{}(keys[i]) & stripe_mask_);
  }
  std::vector<uint32_t> counts;
  std::vector<uint32_t> idx;
  GroupByStripe(stripe_of, stripes_.size(), &counts, &idx);
  size_t run = 0;
  while (run < n) {
    const uint32_t stripe = stripe_of[idx[run]];
    size_t end = run;
    while (end < n && stripe_of[idx[end]] == stripe) {
      ++end;
    }
    Stripe& s = stripes_[stripe];
    uint64_t read = 0;
    {
      ReaderMutexLock lock(&s.mu);
      const auto& map = s.map;
      for (size_t i = run; i < end; ++i) {
        const uint32_t k = idx[i];
        auto it = map.find(std::string_view(keys[k]));
        if (it == map.end()) {
          (*statuses)[k] = Status::NotFound();
        } else {
          (*values)[k] = it->second;
          read += it->second.size();
        }
      }
    }
    s.gets.fetch_add(end - run, std::memory_order_relaxed);
    if (read != 0) {
      s.bytes_read.fetch_add(read, std::memory_order_relaxed);
    }
    run = end;
  }
  NoteBatch(n);
  return Status::Ok();
}

StatusOr<CheckpointInfo> MemStore::Checkpoint(const std::string& dir,
                                              const CheckpointOptions& options) {
  (void)options;  // no immutable files to reuse incrementally
  GADGET_RETURN_IF_ERROR(CreateDirIfMissing(dir));
  auto names = ListDir(dir);
  if (!names.ok()) {
    return names.status();
  }
  if (!names->empty()) {
    return Status::InvalidArgument("checkpoint dir not empty: " + dir);
  }
  auto file = WritableFile::Create(dir + "/" + kSnapshotFile);
  if (!file.ok()) {
    return file.status();
  }
  GADGET_RETURN_IF_ERROR((*file)->Append(kSnapshotHeader));
  std::string lengths;
  for (const Stripe& s : stripes_) {
    ReaderMutexLock lock(&s.mu);
    const auto& map = s.map;
    for (const auto& [key, value] : map) {
      lengths.clear();
      PutFixed32(&lengths, static_cast<uint32_t>(key.size()));
      PutFixed32(&lengths, static_cast<uint32_t>(value.size()));
      GADGET_RETURN_IF_ERROR((*file)->Append(lengths));
      GADGET_RETURN_IF_ERROR((*file)->Append(key));
      GADGET_RETURN_IF_ERROR((*file)->Append(value));
    }
  }
  CheckpointInfo info;
  info.bytes = (*file)->size();
  info.files = 1;
  GADGET_RETURN_IF_ERROR((*file)->Sync());
  GADGET_RETURN_IF_ERROR((*file)->Close());
  GADGET_RETURN_IF_ERROR(SyncDir(dir));
  return info;
}

Status MemStore::LoadCheckpoint(const std::string& dir) {
  std::string data;
  GADGET_RETURN_IF_ERROR(ReadFileToString(dir + "/" + kSnapshotFile, &data));
  if (data.size() < kSnapshotHeader.size() ||
      std::string_view(data).substr(0, kSnapshotHeader.size()) != kSnapshotHeader) {
    return Status::Corruption("bad memstore snapshot header in " + dir);
  }
  size_t pos = kSnapshotHeader.size();
  while (pos < data.size()) {
    if (pos + 8 > data.size()) {
      return Status::Corruption("truncated memstore snapshot record");
    }
    const uint32_t klen = DecodeFixed32(data.data() + pos);
    const uint32_t vlen = DecodeFixed32(data.data() + pos + 4);
    pos += 8;
    if (pos + static_cast<size_t>(klen) + vlen > data.size()) {
      return Status::Corruption("truncated memstore snapshot record");
    }
    std::string_view key(data.data() + pos, klen);
    std::string_view value(data.data() + pos + klen, vlen);
    pos += static_cast<size_t>(klen) + vlen;
    Stripe& s = StripeFor(key);
    WriterMutexLock lock(&s.mu);
    s.map.emplace(key, value);  // direct load: operation counters stay zero
  }
  return Status::Ok();
}

StoreStats MemStore::stats() const {
  StoreStats out;
  for (const Stripe& s : stripes_) {
    out.gets += s.gets.load(std::memory_order_relaxed);
    out.puts += s.puts.load(std::memory_order_relaxed);
    out.merges += s.merges.load(std::memory_order_relaxed);
    out.deletes += s.deletes.load(std::memory_order_relaxed);
    out.rmws += s.rmws.load(std::memory_order_relaxed);
    out.bytes_written += s.bytes_written.load(std::memory_order_relaxed);
    out.bytes_read += s.bytes_read.load(std::memory_order_relaxed);
  }
  FoldBatchStats(&out);
  return out;
}

}  // namespace gadget
