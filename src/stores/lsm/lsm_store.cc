#include "src/stores/lsm/lsm_store.h"

#include <algorithm>
#include <chrono>

#include "src/common/file_util.h"
#include "src/common/logging.h"

namespace gadget {
namespace {

std::string SstPath(const std::string& dir, uint64_t number) {
  return dir + "/" + std::to_string(number) + ".sst";
}

std::string WalPath(const std::string& dir, uint64_t number) {
  return dir + "/wal-" + std::to_string(number) + ".log";
}

// True if [f->smallest, f->largest] intersects [begin, end].
bool Overlaps(const FileMeta& f, const std::string& begin, const std::string& end) {
  return !(f.largest < begin || end < f.smallest);
}

using MonoClock = std::chrono::steady_clock;

uint64_t MicrosSince(MonoClock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(MonoClock::now() - t0).count());
}

}  // namespace

uint64_t LsmStore::NowMs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

LsmStore::LsmStore(std::string dir, const LsmOptions& opts)
    : dir_(std::move(dir)),
      opts_(opts),
      cache_(opts.block_cache_bytes),
      mem_(std::make_unique<MemTable>()),
      compact_cursor_(static_cast<size_t>(opts.num_levels), 0) {
  current_ = std::make_shared<Version>(opts_.num_levels);
}

StatusOr<std::unique_ptr<KVStore>> LsmStore::Open(const std::string& dir,
                                                  const LsmOptions& opts) {
  GADGET_RETURN_IF_ERROR(CreateDirIfMissing(dir));
  std::unique_ptr<LsmStore> store(new LsmStore(dir, opts));
  GADGET_RETURN_IF_ERROR(store->Recover());
  store->bg_thread_ = std::thread(&LsmStore::BackgroundThread, store.get());
  return std::unique_ptr<KVStore>(std::move(store));
}

LsmStore::~LsmStore() { (void)Close(); }

Status LsmStore::Recover() {
  std::lock_guard<std::mutex> lock(mu_);
  auto manifest = LoadManifest(dir_);
  if (!manifest.ok() && !manifest.status().IsNotFound()) {
    return manifest.status();
  }
  if (manifest.ok()) {
    next_file_number_ = manifest->next_file_number;
    auto version = std::make_shared<Version>(opts_.num_levels);
    for (const auto& rec : manifest->files) {
      if (rec.level < 0 || rec.level >= opts_.num_levels) {
        return Status::Corruption("manifest level out of range");
      }
      auto meta = std::make_shared<FileMeta>();
      meta->number = rec.number;
      meta->size = rec.size;
      meta->entries = rec.entries;
      meta->tombstones = rec.tombstones;
      meta->created_ms = NowMs();  // steady clock restarts; ages restart too
      meta->smallest = rec.smallest;
      meta->largest = rec.largest;
      meta->path = SstPath(dir_, rec.number);
      meta->cache = &cache_;
      auto reader = SSTableReader::Open(meta->path, meta->number, &cache_);
      if (!reader.ok()) {
        return reader.status();
      }
      meta->reader = std::move(*reader);
      version->levels[static_cast<size_t>(rec.level)].push_back(std::move(meta));
    }
    // L0 by file number (creation order); L1+ by smallest key.
    std::sort(version->levels[0].begin(), version->levels[0].end(),
              [](const auto& a, const auto& b) { return a->number < b->number; });
    for (int l = 1; l < opts_.num_levels; ++l) {
      auto& files = version->levels[static_cast<size_t>(l)];
      std::sort(files.begin(), files.end(),
                [](const auto& a, const auto& b) { return a->smallest < b->smallest; });
    }
    current_ = std::move(version);

    // Replay the WAL that was active when we went down.
    const std::string wal_path = WalPath(dir_, manifest->wal_number);
    if (FileExists(wal_path)) {
      auto replayed = ReplayWal(wal_path, [this](RecType type, std::string_view key,
                                                 std::string_view value) {
        switch (type) {
          case RecType::kValue:
            mem_->Put(key, value);
            break;
          case RecType::kMergeStack:
            mem_->Merge(key, value);
            break;
          case RecType::kTombstone:
            mem_->Delete(key);
            break;
        }
      });
      if (!replayed.ok()) {
        return replayed.status();
      }
      if (!mem_->empty()) {
        GADGET_RETURN_IF_ERROR(FlushMemTableLocked());
      }
      (void)RemoveFile(wal_path);
    }
  }
  // Fresh WAL for the new generation.
  wal_number_ = next_file_number_++;
  auto wal = WalWriter::Create(WalPath(dir_, wal_number_));
  if (!wal.ok()) {
    return wal.status();
  }
  wal_ = std::move(*wal);
  return PersistManifestLocked();
}

Status LsmStore::PersistManifestLocked() {
  ManifestData data;
  data.next_file_number = next_file_number_;
  data.wal_number = wal_number_;
  for (int l = 0; l < opts_.num_levels; ++l) {
    for (const auto& f : current_->levels[static_cast<size_t>(l)]) {
      data.files.push_back({l, f->number, f->size, f->entries, f->tombstones, f->created_ms,
                            f->smallest, f->largest});
    }
  }
  return SaveManifest(dir_, data);
}

// ------------------------------------------------------------------- writes

Status LsmStore::WriteInternal(RecType type, std::string_view key, std::string_view value) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!bg_error_.ok()) {
    return bg_error_;
  }
  if (closing_) {
    return Status::Internal("store is closed");
  }
  GADGET_RETURN_IF_ERROR(wal_->Append(type, key, value, opts_.sync_writes));
  switch (type) {
    case RecType::kValue:
      mem_->Put(key, value);
      ++stats_.puts;
      break;
    case RecType::kMergeStack:
      mem_->Merge(key, value);
      ++stats_.merges;
      break;
    case RecType::kTombstone:
      mem_->Delete(key);
      ++stats_.deletes;
      break;
  }
  stats_.bytes_written += key.size() + value.size();

  if (mem_->ApproximateBytes() >= opts_.write_buffer_size) {
    // Stall the writer if L0 is too deep (RocksDB-style backpressure).
    if (current_->levels[0].size() >= static_cast<size_t>(opts_.l0_stall_limit)) {
      auto stall_start = MonoClock::now();
      while (current_->levels[0].size() >=
                 static_cast<size_t>(opts_.l0_stall_limit) &&
             bg_error_.ok() && !closing_) {
        work_cv_.notify_all();
        stall_cv_.wait(lock);
      }
      stats_.stall_micros += MicrosSince(stall_start);
    }
    GADGET_RETURN_IF_ERROR(FlushMemTableLocked());
    work_cv_.notify_all();
  }
  return Status::Ok();
}

Status LsmStore::Put(std::string_view key, std::string_view value) {
  return WriteInternal(RecType::kValue, key, value);
}

Status LsmStore::Merge(std::string_view key, std::string_view operand) {
  return WriteInternal(RecType::kMergeStack, key, operand);
}

Status LsmStore::Delete(std::string_view key) {
  return WriteInternal(RecType::kTombstone, key, "");
}

Status LsmStore::Write(const WriteBatch& batch) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!bg_error_.ok()) {
    return bg_error_;
  }
  if (closing_) {
    return Status::Internal("store is closed");
  }
  if (!batch.empty()) {
    // Group commit: the whole batch becomes one WAL record — one crc, one
    // buffered write, at most one fsync regardless of batch size.
    GADGET_RETURN_IF_ERROR(wal_->AppendBatch(batch, opts_.sync_writes));
    for (size_t i = 0; i < batch.size(); ++i) {
      const WriteBatch::Entry& e = batch.entry(i);
      switch (e.op) {
        case WriteBatch::Op::kPut:
          mem_->Put(e.key, e.value);
          ++stats_.puts;
          break;
        case WriteBatch::Op::kMerge:
          mem_->Merge(e.key, e.value);
          ++stats_.merges;
          break;
        case WriteBatch::Op::kDelete:
          mem_->Delete(e.key);
          ++stats_.deletes;
          break;
      }
      stats_.bytes_written += e.key.size() + e.value.size();
    }
    // Memtable pressure is checked once per batch; the overshoot is bounded
    // by one batch's payload.
    if (mem_->ApproximateBytes() >= opts_.write_buffer_size) {
      if (current_->levels[0].size() >= static_cast<size_t>(opts_.l0_stall_limit)) {
        auto stall_start = MonoClock::now();
        while (current_->levels[0].size() >=
                   static_cast<size_t>(opts_.l0_stall_limit) &&
               bg_error_.ok() && !closing_) {
          work_cv_.notify_all();
          stall_cv_.wait(lock);
        }
        stats_.stall_micros += MicrosSince(stall_start);
      }
      GADGET_RETURN_IF_ERROR(FlushMemTableLocked());
      work_cv_.notify_all();
    }
  }
  NoteBatch(batch.size());
  return Status::Ok();
}

StatusOr<std::shared_ptr<FileMeta>> LsmStore::BuildTableFromMemLocked() {
  uint64_t number = next_file_number_++;
  const std::string path = SstPath(dir_, number);
  SSTableBuilder builder(path, opts_.block_size, opts_.bloom_bits_per_key);
  Status add_status;
  mem_->ForEachFlushRecord([&](const MemTable::FlushRecord& rec) {
    if (add_status.ok()) {
      add_status = builder.Add(rec.key, rec.type, rec.value);
    }
  });
  GADGET_RETURN_IF_ERROR(add_status);
  GADGET_RETURN_IF_ERROR(builder.Finish());

  auto meta = std::make_shared<FileMeta>();
  meta->number = number;
  meta->size = builder.file_size();
  meta->entries = builder.num_entries();
  meta->tombstones = builder.num_tombstones();
  meta->created_ms = NowMs();
  meta->smallest = builder.smallest();
  meta->largest = builder.largest();
  meta->path = path;
  meta->cache = &cache_;
  auto reader = SSTableReader::Open(path, number, &cache_);
  if (!reader.ok()) {
    return reader.status();
  }
  meta->reader = std::move(*reader);
  stats_.io_bytes_written += meta->size;
  return meta;
}

Status LsmStore::FlushMemTableLocked() {
  if (mem_->empty()) {
    return Status::Ok();
  }
  auto flush_start = MonoClock::now();
  auto meta = BuildTableFromMemLocked();
  if (!meta.ok()) {
    return meta.status();
  }

  auto version = std::make_shared<Version>(*current_);
  version->levels[0].push_back(std::move(*meta));
  current_ = std::move(version);
  mem_ = std::make_unique<MemTable>();
  ++stats_.flushes;
  stats_.flush_micros += MicrosSince(flush_start);

  // Rotate the WAL: records up to here are now durable in the SSTable.
  // During Recover() the new-generation WAL does not exist yet (the replayed
  // old WAL is removed by the caller), so rotation is skipped.
  if (wal_ != nullptr) {
    // Fold the retiring generation's log accounting into the store counters
    // before the writer (and its counters) are destroyed.
    stats_.wal_bytes += wal_->size();
    stats_.wal_fsyncs += wal_->fsyncs();
    GADGET_RETURN_IF_ERROR(wal_->Close());
    uint64_t old_wal = wal_number_;
    wal_number_ = next_file_number_++;
    auto wal = WalWriter::Create(WalPath(dir_, wal_number_));
    if (!wal.ok()) {
      return wal.status();
    }
    wal_ = std::move(*wal);
    GADGET_RETURN_IF_ERROR(PersistManifestLocked());
    (void)RemoveFile(WalPath(dir_, old_wal));
    return Status::Ok();
  }
  return PersistManifestLocked();
}

// -------------------------------------------------------------------- reads

Status LsmStore::Get(std::string_view key, std::string* value) {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.gets;
  if (!bg_error_.ok()) {
    return bg_error_;
  }
  std::string val;
  std::vector<std::string> layer_ops;
  LookupState state = mem_->Get(key, &val, &layer_ops);
  if (state == LookupState::kFound) {
    *value = std::move(val);
    read_bytes_.fetch_add(value->size(), std::memory_order_relaxed);
    return Status::Ok();
  }
  if (state == LookupState::kDeleted) {
    return Status::NotFound();
  }
  std::shared_ptr<const Version> version = current_;
  lock.unlock();
  // From here on the lookup works off the snapshot only: searching SSTables
  // (block I/O) must never touch mu_, or concurrent readers serialize behind
  // writers and the background compactor.
  return SearchTablesUnlocked(*version, key, std::move(layer_ops), value);
}

Status LsmStore::MultiGet(const std::vector<std::string>& keys,
                          std::vector<std::string>* values, std::vector<Status>* statuses) {
  const size_t n = keys.size();
  values->resize(n);
  statuses->assign(n, Status::Ok());
  // Keys the memtable could not resolve, with any merge operands it stacked.
  struct PendingRead {
    size_t index;
    std::vector<std::string> acc;
  };
  std::vector<PendingRead> pending;
  std::shared_ptr<const Version> version;
  {
    std::unique_lock<std::mutex> lock(mu_);
    stats_.gets += n;
    if (!bg_error_.ok()) {
      return bg_error_;
    }
    std::string val;
    std::vector<std::string> layer_ops;
    for (size_t i = 0; i < n; ++i) {
      val.clear();
      layer_ops.clear();
      LookupState state = mem_->Get(keys[i], &val, &layer_ops);
      switch (state) {
        case LookupState::kFound:
          (*values)[i] = std::move(val);
          read_bytes_.fetch_add((*values)[i].size(), std::memory_order_relaxed);
          break;
        case LookupState::kDeleted:
          (*statuses)[i] = Status::NotFound();
          break;
        case LookupState::kNotFound:
        case LookupState::kMergePartial:
          pending.push_back({i, std::move(layer_ops)});
          break;
      }
    }
    if (!pending.empty()) {
      version = current_;  // one snapshot covers every SSTable lookup below
    }
  }
  Status first_error;
  for (auto& p : pending) {
    Status s = SearchTablesUnlocked(*version, keys[p.index], std::move(p.acc),
                                    &(*values)[p.index]);
    if (!s.ok() && !s.IsNotFound() && first_error.ok()) {
      first_error = s;
    }
    (*statuses)[p.index] = std::move(s);
  }
  NoteBatch(n);
  return first_error;
}

Status LsmStore::SearchTablesUnlocked(const Version& version, std::string_view key,
                                      std::vector<std::string> acc, std::string* value) {
  std::string val;
  std::vector<std::string> layer_ops;

  auto finish_found = [&](std::string base) -> Status {
    *value = ApplyMerge(base, acc);
    read_bytes_.fetch_add(value->size(), std::memory_order_relaxed);
    return Status::Ok();
  };
  auto finish_deleted = [&]() -> Status {
    if (acc.empty()) {
      return Status::NotFound();
    }
    return finish_found("");
  };

  auto search_file = [&](const std::shared_ptr<FileMeta>& f,
                         bool* terminal) -> Status {
    *terminal = false;
    if (key < std::string_view(f->smallest) || std::string_view(f->largest) < key) {
      return Status::Ok();
    }
    layer_ops.clear();
    val.clear();
    auto st = f->reader->Get(key, &val, &layer_ops);
    if (!st.ok()) {
      *terminal = true;
      return st.status();
    }
    switch (*st) {
      case LookupState::kNotFound:
        return Status::Ok();
      case LookupState::kFound:
        *terminal = true;
        return finish_found(std::move(val));
      case LookupState::kDeleted:
        *terminal = true;
        return finish_deleted();
      case LookupState::kMergePartial:
        // This layer is older than everything accumulated: prepend.
        acc.insert(acc.begin(), std::make_move_iterator(layer_ops.begin()),
                   std::make_move_iterator(layer_ops.end()));
        return Status::Ok();
    }
    return Status::Internal("unreachable");
  };

  // L0: newest file first.
  const auto& l0 = version.levels[0];
  for (auto it = l0.rbegin(); it != l0.rend(); ++it) {
    bool terminal = false;
    Status s = search_file(*it, &terminal);
    if (terminal || !s.ok()) {
      return s;
    }
  }
  // L1+: at most one file per level contains the key.
  for (size_t l = 1; l < version.levels.size(); ++l) {
    const auto& files = version.levels[l];
    auto it = std::lower_bound(files.begin(), files.end(), key,
                               [](const std::shared_ptr<FileMeta>& f, std::string_view k) {
                                 return std::string_view(f->largest) < k;
                               });
    if (it == files.end()) {
      continue;
    }
    bool terminal = false;
    Status s = search_file(*it, &terminal);
    if (terminal || !s.ok()) {
      return s;
    }
  }
  if (acc.empty()) {
    return Status::NotFound();
  }
  // Merge operands with no base anywhere: base is implicitly empty.
  return finish_found("");
}

// --------------------------------------------------------------- compaction

uint64_t LsmStore::MaxBytesForLevel(int level) const {
  double bytes = static_cast<double>(opts_.max_bytes_level_base);
  for (int l = 1; l < level; ++l) {
    bytes *= opts_.level_size_multiplier;
  }
  return static_cast<uint64_t>(bytes);
}

bool LsmStore::PickCompactionLocked(CompactionJob* job) {
  const Version& v = *current_;

  auto add_overlaps = [&](int level, const std::string& begin, const std::string& end) {
    for (const auto& f : v.levels[static_cast<size_t>(level)]) {
      if (Overlaps(*f, begin, end)) {
        job->inputs.push_back(f);
      }
    }
  };
  auto compute_bottommost = [&](int output_level, const std::string& begin,
                                const std::string& end) {
    for (int l = output_level + 1; l < opts_.num_levels; ++l) {
      for (const auto& f : v.levels[static_cast<size_t>(l)]) {
        if (Overlaps(*f, begin, end)) {
          return false;
        }
      }
    }
    return true;
  };

  // Rule 1: L0 file count.
  if (v.levels[0].size() >= static_cast<size_t>(opts_.l0_compaction_trigger)) {
    // Newest first.
    for (auto it = v.levels[0].rbegin(); it != v.levels[0].rend(); ++it) {
      job->inputs.push_back(*it);
    }
    std::string begin = job->inputs.front()->smallest;
    std::string end = job->inputs.front()->largest;
    for (const auto& f : job->inputs) {
      begin = std::min(begin, f->smallest);
      end = std::max(end, f->largest);
    }
    add_overlaps(1, begin, end);
    job->output_level = 1;
    job->bottommost = compute_bottommost(1, begin, end);
    return true;
  }

  // Rule 2: level sizes.
  for (int l = 1; l < opts_.num_levels - 1; ++l) {
    const auto& files = v.levels[static_cast<size_t>(l)];
    if (files.empty() || v.LevelBytes(l) <= MaxBytesForLevel(l)) {
      continue;
    }
    size_t& cursor = compact_cursor_[static_cast<size_t>(l)];
    if (cursor >= files.size()) {
      cursor = 0;
    }
    auto file = files[cursor];
    ++cursor;
    job->inputs.push_back(file);
    add_overlaps(l + 1, file->smallest, file->largest);
    job->output_level = l + 1;
    job->bottommost = compute_bottommost(l + 1, file->smallest, file->largest);
    return true;
  }

  // Rule 3 (Lethe): force-compact files whose tombstones outlived the delete
  // persistence threshold.
  if (opts_.delete_aware) {
    uint64_t now = NowMs();
    for (int l = 0; l < opts_.num_levels - 1; ++l) {
      for (const auto& f : v.levels[static_cast<size_t>(l)]) {
        if (f->tombstones == 0 || now - f->created_ms <= opts_.delete_persistence_ms) {
          continue;
        }
        if (l == 0) {
          // A partial L0 compaction would re-order shadowing (a newer L0
          // record must never end up below an older L0 file), so an aged L0
          // tombstone triggers the full L0->L1 compaction.
          if (v.levels[0].empty()) {
            continue;
          }
          for (auto it = v.levels[0].rbegin(); it != v.levels[0].rend(); ++it) {
            job->inputs.push_back(*it);
          }
          std::string begin = job->inputs.front()->smallest;
          std::string end = job->inputs.front()->largest;
          for (const auto& in : job->inputs) {
            begin = std::min(begin, in->smallest);
            end = std::max(end, in->largest);
          }
          add_overlaps(1, begin, end);
          job->output_level = 1;
          job->bottommost = compute_bottommost(1, begin, end);
          return true;
        }
        job->inputs.push_back(f);
        add_overlaps(l + 1, f->smallest, f->largest);
        job->output_level = l + 1;
        job->bottommost = compute_bottommost(l + 1, f->smallest, f->largest);
        return true;
      }
    }
  }
  return false;
}

Status LsmStore::DoCompaction(const CompactionJob& job,
                              std::vector<std::shared_ptr<FileMeta>>* outputs) {
  // One iterator per input; inputs are ordered newest-first.
  std::vector<std::unique_ptr<SSTableIterator>> iters;
  iters.reserve(job.inputs.size());
  for (const auto& f : job.inputs) {
    iters.push_back(std::make_unique<SSTableIterator>(f->reader));
  }

  std::unique_ptr<SSTableBuilder> builder;
  uint64_t builder_number = 0;
  uint64_t min_tombstone_created = ~0ULL;
  bool output_has_tombstones = false;

  auto open_builder = [&]() -> Status {
    std::lock_guard<std::mutex> lock(mu_);
    builder_number = next_file_number_++;
    builder = std::make_unique<SSTableBuilder>(SstPath(dir_, builder_number), opts_.block_size,
                                               opts_.bloom_bits_per_key);
    return Status::Ok();
  };
  auto close_builder = [&]() -> Status {
    if (builder == nullptr || builder->num_entries() == 0) {
      if (builder != nullptr) {
        GADGET_RETURN_IF_ERROR(builder->Finish());
        (void)RemoveFile(SstPath(dir_, builder_number));
        builder.reset();
      }
      return Status::Ok();
    }
    GADGET_RETURN_IF_ERROR(builder->Finish());
    auto meta = std::make_shared<FileMeta>();
    meta->number = builder_number;
    meta->size = builder->file_size();
    meta->entries = builder->num_entries();
    meta->tombstones = builder->num_tombstones();
    meta->created_ms = output_has_tombstones ? min_tombstone_created : NowMs();
    meta->smallest = builder->smallest();
    meta->largest = builder->largest();
    meta->path = SstPath(dir_, builder_number);
    meta->cache = &cache_;
    auto reader = SSTableReader::Open(meta->path, meta->number, &cache_);
    if (!reader.ok()) {
      return reader.status();
    }
    meta->reader = std::move(*reader);
    outputs->push_back(std::move(meta));
    builder.reset();
    output_has_tombstones = false;
    min_tombstone_created = ~0ULL;
    return Status::Ok();
  };

  auto emit = [&](std::string_view key, RecType type, std::string_view value,
                  uint64_t source_created_ms) -> Status {
    if (builder == nullptr) {
      GADGET_RETURN_IF_ERROR(open_builder());
    }
    if (type == RecType::kTombstone) {
      output_has_tombstones = true;
      min_tombstone_created = std::min(min_tombstone_created, source_created_ms);
    }
    GADGET_RETURN_IF_ERROR(builder->Add(key, type, value));
    return Status::Ok();
  };

  uint64_t emitted_bytes = 0;
  std::vector<std::string> pending;
  std::string merged_value;

  for (;;) {
    // Find the smallest key among valid iterators.
    std::string_view min_key;
    bool any = false;
    for (const auto& it : iters) {
      if (!it->Valid()) {
        continue;
      }
      if (!any || it->key() < min_key) {
        min_key = it->key();
        any = true;
      }
    }
    if (!any) {
      break;
    }
    const std::string key(min_key);  // own it: iterators advance below

    // Combine records for this key, newest input first.
    pending.clear();
    bool resolved = false;
    bool drop = false;
    RecType out_type = RecType::kValue;
    merged_value.clear();
    uint64_t tomb_created = NowMs();

    for (size_t i = 0; i < iters.size(); ++i) {
      auto& it = iters[i];
      if (!it->Valid() || it->key() != std::string_view(key)) {
        continue;
      }
      if (!resolved) {
        switch (it->type()) {
          case RecType::kValue:
            merged_value = ApplyMerge(it->value(), pending);
            out_type = RecType::kValue;
            resolved = true;
            break;
          case RecType::kTombstone:
            tomb_created = job.inputs[i]->created_ms;
            if (pending.empty()) {
              if (job.bottommost) {
                drop = true;
              } else {
                out_type = RecType::kTombstone;
                merged_value.clear();
              }
            } else {
              out_type = RecType::kValue;
              merged_value = ApplyMerge("", pending);
            }
            resolved = true;
            break;
          case RecType::kMergeStack: {
            std::vector<std::string> ops;
            if (!DecodeMergeStack(it->value(), &ops)) {
              return Status::Corruption("bad merge stack during compaction");
            }
            // This record is older than everything in `pending`.
            pending.insert(pending.begin(), std::make_move_iterator(ops.begin()),
                           std::make_move_iterator(ops.end()));
            break;
          }
        }
      }
      it->Next();
      if (!it->status().ok()) {
        return it->status();
      }
    }

    if (!resolved) {
      if (job.bottommost) {
        out_type = RecType::kValue;
        merged_value = ApplyMerge("", pending);
      } else {
        out_type = RecType::kMergeStack;
        merged_value = EncodeMergeStack(pending);
      }
    }
    if (!drop) {
      GADGET_RETURN_IF_ERROR(emit(key, out_type, merged_value,
                                  out_type == RecType::kTombstone ? tomb_created : NowMs()));
      emitted_bytes += key.size() + merged_value.size() + 8;
      if (emitted_bytes >= opts_.target_file_size) {
        GADGET_RETURN_IF_ERROR(close_builder());
        emitted_bytes = 0;
      }
    }
  }
  GADGET_RETURN_IF_ERROR(close_builder());
  return Status::Ok();
}

void LsmStore::InstallCompactionLocked(const CompactionJob& job,
                                       std::vector<std::shared_ptr<FileMeta>> outputs) {
  auto version = std::make_shared<Version>(*current_);
  auto is_input = [&](const std::shared_ptr<FileMeta>& f) {
    for (const auto& in : job.inputs) {
      if (in->number == f->number) {
        return true;
      }
    }
    return false;
  };
  for (auto& level : version->levels) {
    level.erase(std::remove_if(level.begin(), level.end(), is_input), level.end());
  }
  auto& out_level = version->levels[static_cast<size_t>(job.output_level)];
  uint64_t out_bytes = 0;
  for (auto& f : outputs) {
    stats_.io_bytes_written += f->size;
    out_bytes += f->size;
    out_level.push_back(std::move(f));
  }
  std::sort(out_level.begin(), out_level.end(),
            [](const auto& a, const auto& b) { return a->smallest < b->smallest; });
  current_ = std::move(version);
  ++stats_.compactions;
  for (const auto& in : job.inputs) {
    stats_.io_bytes_read += in->size;
    in->obsolete.store(true, std::memory_order_release);
  }
  Status s = PersistManifestLocked();
  if (!s.ok() && bg_error_.ok()) {
    bg_error_ = s;
  }
  (void)out_bytes;
}

void LsmStore::BackgroundThread() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!closing_) {
    CompactionJob job;
    if (!PickCompactionLocked(&job)) {
      // Time-bounded wait: Lethe's age-based trigger needs periodic checks.
      work_cv_.wait_for(lock, std::chrono::milliseconds(200));
      continue;
    }
    compaction_running_ = true;
    lock.unlock();

    auto compaction_start = MonoClock::now();
    std::vector<std::shared_ptr<FileMeta>> outputs;
    Status s = DoCompaction(job, &outputs);
    uint64_t compaction_micros = MicrosSince(compaction_start);

    lock.lock();
    stats_.compaction_micros += compaction_micros;
    compaction_running_ = false;
    if (s.ok()) {
      InstallCompactionLocked(job, std::move(outputs));
    } else {
      GADGET_LOG(Error) << "compaction failed: " << s.ToString();
      if (bg_error_.ok()) {
        bg_error_ = s;
      }
      // Drop any partially written outputs.
      for (const auto& f : outputs) {
        f->obsolete.store(true, std::memory_order_release);
      }
    }
    stall_cv_.notify_all();
  }
}

// ------------------------------------------------------------------- admin

Status LsmStore::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushMemTableLocked();
}

Status LsmStore::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closing_) {
      return Status::Ok();
    }
    closing_ = true;
  }
  work_cv_.notify_all();
  stall_cv_.notify_all();
  if (bg_thread_.joinable()) {
    bg_thread_.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  Status s = FlushMemTableLocked();
  if (wal_ != nullptr) {
    stats_.wal_bytes += wal_->size();
    stats_.wal_fsyncs += wal_->fsyncs();
    Status ws = wal_->Close();
    if (s.ok()) {
      s = ws;
    }
    wal_.reset();  // accounting folded in; stats() must not add it again
  }
  return s;
}

StoreStats LsmStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StoreStats out = stats_;
  out.bytes_read += read_bytes_.load(std::memory_order_relaxed);
  out.cache_hits = cache_.hits();
  out.cache_misses = cache_.misses();
  out.cache_evictions = cache_.evictions();
  if (wal_ != nullptr) {  // live generation: not yet folded by rotation
    out.wal_bytes += wal_->size();
    out.wal_fsyncs += wal_->fsyncs();
  }
  out.level_files.reserve(current_->levels.size());
  for (const auto& level : current_->levels) {
    out.level_files.push_back(level.size());
  }
  FoldBatchStats(&out);
  return out;
}

int LsmStore::NumFilesAtLevel(int level) const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(current_->levels[static_cast<size_t>(level)].size());
}

uint64_t LsmStore::TotalSstBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& level : current_->levels) {
    for (const auto& f : level) {
      total += f->size;
    }
  }
  return total;
}

}  // namespace gadget
