#include "src/stores/lsm/lsm_store.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <thread>
#include <utility>

#include "src/common/file_util.h"
#include "src/common/logging.h"

namespace gadget {
namespace {

std::string SstPath(const std::string& dir, uint64_t number) {
  return dir + "/" + std::to_string(number) + ".sst";
}

std::string WalPath(const std::string& dir, uint64_t number) {
  return dir + "/wal-" + std::to_string(number) + ".log";
}

// True if `name` is a WAL file name ("wal-<n>.log"); stores <n> in *number.
bool ParseWalFileName(std::string_view name, uint64_t* number) {
  constexpr std::string_view kPrefix = "wal-";
  constexpr std::string_view kSuffix = ".log";
  if (name.size() <= kPrefix.size() + kSuffix.size() ||
      name.substr(0, kPrefix.size()) != kPrefix ||
      name.substr(name.size() - kSuffix.size()) != kSuffix) {
    return false;
  }
  std::string_view digits = name.substr(kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
  uint64_t n = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return false;
    }
    n = n * 10 + static_cast<uint64_t>(c - '0');
  }
  *number = n;
  return true;
}

// True if [f->smallest, f->largest] intersects [begin, end].
bool Overlaps(const FileMeta& f, const std::string& begin, const std::string& end) {
  return !(f.largest < begin || end < f.smallest);
}

RecType RecTypeForOp(WriteBatch::Op op) {
  switch (op) {
    case WriteBatch::Op::kPut:
      return RecType::kValue;
    case WriteBatch::Op::kMerge:
      return RecType::kMergeStack;
    case WriteBatch::Op::kDelete:
      return RecType::kTombstone;
  }
  return RecType::kValue;
}

using MonoClock = std::chrono::steady_clock;

uint64_t MicrosSince(MonoClock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(MonoClock::now() - t0).count());
}

// Group-commit bounds: one WAL record per group keeps the fsync count at one,
// but an unbounded group would hold the log (and every follower) for the
// duration of one giant append.
constexpr size_t kMaxGroupWriters = 128;
constexpr size_t kMaxGroupBytes = 1 << 20;

}  // namespace

uint64_t LsmStore::NowMs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

LsmStore::LsmStore(std::string dir, const LsmOptions& opts, std::shared_ptr<BufferPool> pool)
    : dir_(std::move(dir)),
      opts_(opts),
      pool_(pool != nullptr ? std::move(pool) : std::make_shared<BufferPool>()),
      work_cv_(&mu_),
      flush_cv_(&mu_),
      stall_cv_(&mu_),
      mem_(std::make_unique<MemTable>()),
      compact_cursor_(static_cast<size_t>(opts.num_levels), 0) {
  current_ = std::make_shared<Version>(opts_.num_levels);
}

StatusOr<std::unique_ptr<KVStore>> LsmStore::Open(const std::string& dir, const LsmOptions& opts,
                                                  std::shared_ptr<BufferPool> pool) {
  GADGET_RETURN_IF_ERROR(CreateDirIfMissing(dir));
  std::unique_ptr<LsmStore> store(new LsmStore(dir, opts, std::move(pool)));
  GADGET_RETURN_IF_ERROR(store->Recover());
  store->flusher_thread_ = std::thread(&LsmStore::FlusherThread, store.get());
  store->compaction_thread_ = std::thread(&LsmStore::CompactionThread, store.get());
  return std::unique_ptr<KVStore>(std::move(store));
}

// status intentionally ignored: a destructor cannot propagate the close
// error; callers that care close explicitly first.
LsmStore::~LsmStore() { (void)Close(); }

Status LsmStore::Recover() {
  MutexLock lock(&mu_);
  auto manifest = LoadManifest(dir_);
  if (!manifest.ok() && !manifest.status().IsNotFound()) {
    return manifest.status();
  }
  if (manifest.ok()) {
    next_file_number_ = manifest->next_file_number;
    auto version = std::make_shared<Version>(opts_.num_levels);
    for (const auto& rec : manifest->files) {
      if (rec.level < 0 || rec.level >= opts_.num_levels) {
        return Status::Corruption("manifest level out of range");
      }
      auto meta = std::make_shared<FileMeta>();
      meta->number = rec.number;
      meta->size = rec.size;
      meta->entries = rec.entries;
      meta->tombstones = rec.tombstones;
      meta->created_ms = NowMs();  // steady clock restarts; ages restart too
      meta->smallest = rec.smallest;
      meta->largest = rec.largest;
      meta->path = SstPath(dir_, rec.number);
      auto reader = SSTableReader::Open(meta->path, meta->number, pool_.get());
      if (!reader.ok()) {
        return reader.status();
      }
      meta->reader = std::move(*reader);
      version->levels[static_cast<size_t>(rec.level)].push_back(std::move(meta));
    }
    // L0 by file number (creation order); L1+ by smallest key.
    std::sort(version->levels[0].begin(), version->levels[0].end(),
              [](const auto& a, const auto& b) { return a->number < b->number; });
    for (int l = 1; l < opts_.num_levels; ++l) {
      auto& files = version->levels[static_cast<size_t>(l)];
      std::sort(files.begin(), files.end(),
                [](const auto& a, const auto& b) { return a->smallest < b->smallest; });
    }
    current_ = std::move(version);

    // Replay the live WAL generations. The manifest's list is the live set
    // as of its last persist; rotations since then created higher-numbered
    // generations without a manifest write, and because the flusher retires
    // generations strictly oldest-first, liveness is a suffix by number:
    // every on-disk WAL numbered >= the oldest recorded live generation is
    // unflushed and is replayed in ascending order (= write order). Files
    // below the floor were already flushed — replaying them would let stale
    // records shadow newer flushed data — so they are deleted instead. An
    // empty live list (or a manifest persisted after a completed recovery
    // flush) makes every leftover WAL stale.
    auto names = ListDir(dir_);
    if (!names.ok()) {
      return names.status();
    }
    uint64_t floor = ~uint64_t{0};
    for (uint64_t n : manifest->wal_numbers) {
      floor = std::min(floor, n);
    }
    std::vector<uint64_t> replay;
    for (const std::string& name : *names) {
      uint64_t n = 0;
      if (!ParseWalFileName(name, &n)) {
        continue;
      }
      // Rotation allocates WAL numbers past the persisted next_file_number;
      // make sure fresh allocations cannot collide with files on disk.
      next_file_number_ = std::max(next_file_number_, n + 1);
      if (n < floor) {
        // status intentionally ignored: deleting an already-flushed log is
        // garbage collection; a leftover file is re-deleted next recovery.
        (void)RemoveFile(WalPath(dir_, n));
      } else {
        replay.push_back(n);
      }
    }
    std::sort(replay.begin(), replay.end());
    for (uint64_t n : replay) {
      auto replayed = ReplayWal(WalPath(dir_, n), [this](RecType type, std::string_view key,
                                                         std::string_view value) {
        switch (type) {
          case RecType::kValue:
            mem_->Put(key, value);
            break;
          case RecType::kMergeStack:
            mem_->Merge(key, value);
            break;
          case RecType::kTombstone:
            mem_->Delete(key);
            break;
        }
      });
      if (!replayed.ok()) {
        return replayed.status();
      }
    }
    if (!mem_->empty()) {
      // wal_ is still null here, so no rotation happens; the manifest this
      // persists has an empty live list, which is what marks the replayed
      // files as flushed if we crash before removing them below.
      GADGET_RETURN_IF_ERROR(FlushActiveMemLocked());
    }
    for (uint64_t n : replay) {
      // status intentionally ignored: the replayed data is already flushed
      // and the manifest lists no live generations, so a stale log that
      // survives this unlink is ignored (and re-deleted) on the next open.
      (void)RemoveFile(WalPath(dir_, n));
    }
  }
  // Fresh WAL generation for the new lifetime.
  wal_number_ = next_file_number_++;
  auto wal = WalWriter::Create(WalPath(dir_, wal_number_));
  if (!wal.ok()) {
    return wal.status();
  }
  wal_ = std::move(*wal);
  return PersistManifestLocked();
}

Status LsmStore::PersistManifestLocked() {
  ManifestData data;
  data.next_file_number = next_file_number_;
  for (const auto& im : imm_) {
    data.wal_numbers.push_back(im.wal_number);
  }
  if (wal_ != nullptr) {
    data.wal_numbers.push_back(wal_number_);
  }
  for (int l = 0; l < opts_.num_levels; ++l) {
    for (const auto& f : current_->levels[static_cast<size_t>(l)]) {
      data.files.push_back({l, f->number, f->size, f->entries, f->tombstones, f->created_ms,
                            f->smallest, f->largest});
    }
  }
  return SaveManifest(dir_, data);
}

// ------------------------------------------------------------------- writes

Status LsmStore::Put(std::string_view key, std::string_view value) {
  Writer w(&mu_);
  w.type = RecType::kValue;
  w.key = key;
  w.value = value;
  return EnqueueWriter(&w);
}

Status LsmStore::Merge(std::string_view key, std::string_view operand) {
  Writer w(&mu_);
  w.type = RecType::kMergeStack;
  w.key = key;
  w.value = operand;
  return EnqueueWriter(&w);
}

Status LsmStore::Delete(std::string_view key) {
  Writer w(&mu_);
  w.type = RecType::kTombstone;
  w.key = key;
  return EnqueueWriter(&w);
}

Status LsmStore::Write(const WriteBatch& batch) {
  if (!batch.empty()) {
    Writer w(&mu_);
    w.batch = &batch;
    GADGET_RETURN_IF_ERROR(EnqueueWriter(&w));
  }
  NoteBatch(batch.size());
  return Status::Ok();
}

Status LsmStore::EnqueueWriter(Writer* w) {
  MutexLock lock(&mu_);
  writers_.push_back(w);
  // Followers park here; the queue front is the group leader. A follower
  // either gets committed (done) by a leader's group or inherits leadership
  // when it reaches the front.
  while (!w->done && w != writers_.front()) {
    w->cv.Wait();
  }
  if (!w->done) {
    CommitGroupLocked(w);
  }
  return w->status;
}

void LsmStore::CommitGroupLocked(Writer* w) {
  Status s;
  if (!bg_error_.ok()) {
    s = bg_error_;
  } else if (closing_) {
    s = Status::Internal("store is closed");
  } else {
    s = MakeRoomForWriteLocked();
  }

  std::vector<Writer*> group;
  if (s.ok()) {
    // Collect contiguous writers from the queue front into one commit group.
    // Writers that enqueue while the leader is appending form the next group.
    std::vector<WalWriter::GroupOp> ops;
    size_t group_bytes = 0;
    for (Writer* other : writers_) {
      if (!group.empty() &&
          (group.size() >= kMaxGroupWriters || group_bytes >= kMaxGroupBytes)) {
        break;
      }
      group.push_back(other);
      if (other->batch != nullptr) {
        for (size_t i = 0; i < other->batch->size(); ++i) {
          const WriteBatch::Entry& e = other->batch->entry(i);
          ops.push_back({RecTypeForOp(e.op), e.key, e.value});
          group_bytes += e.key.size() + e.value.size();
        }
      } else {
        ops.push_back({other->type, other->key, other->value});
        group_bytes += other->key.size() + other->value.size();
      }
    }

    // One WAL record, one crc, at most one fdatasync for the whole group —
    // appended with mu_ released so readers and the background threads keep
    // running. Safe: followers are parked, so only the leader touches wal_
    // and the memtable, and the group members' storage outlives `done`.
    WalWriter* wal = wal_.get();
    mu_.Unlock();
    s = wal->AppendGroup(ops, opts_.sync_writes);
    mu_.Lock();

    if (s.ok()) {
      for (Writer* other : group) {
        if (other->batch != nullptr) {
          for (size_t i = 0; i < other->batch->size(); ++i) {
            const WriteBatch::Entry& e = other->batch->entry(i);
            ApplyOpLocked(RecTypeForOp(e.op), e.key, e.value);
          }
        } else {
          ApplyOpLocked(other->type, other->key, other->value);
        }
      }
      if (group.size() >= 2) {
        ++stats_.wal_group_commits;
      }
      stats_.wal_group_size_max =
          std::max(stats_.wal_group_size_max, static_cast<uint64_t>(ops.size()));
    } else if (bg_error_.ok()) {
      // A failed append may leave a partial record in the log; nothing after
      // it could be made durable reliably, so the store is poisoned.
      bg_error_ = s;
    }
  } else {
    // Room/close failure: fail only the leader. Followers take over one by
    // one and observe the same condition themselves.
    group.push_back(w);
  }

  for (Writer* other : group) {
    writers_.pop_front();
    other->status = s;
    other->done = true;
    if (other != w) {
      other->cv.Signal();
    }
  }
  if (!writers_.empty()) {
    writers_.front()->cv.Signal();  // next leader
  } else {
    stall_cv_.SignalAll();  // Flush()/Close() wait for the queue to drain
  }

  // Seal a just-filled memtable immediately (never blocking) so the flusher
  // overlaps the next group's WAL work.
  if (s.ok() && !closing_ && bg_error_.ok() &&
      mem_->ApproximateBytes() >= opts_.write_buffer_size &&
      imm_.size() < static_cast<size_t>(std::max(1, opts_.max_immutable_memtables))) {
    Status rs = RotateMemTableLocked();
    if (!rs.ok() && bg_error_.ok()) {
      bg_error_ = rs;
    }
    flush_cv_.SignalAll();
  }
}

Status LsmStore::MakeRoomForWriteLocked() {
  const size_t imm_cap = static_cast<size_t>(std::max(1, opts_.max_immutable_memtables));
  bool slowdown_done = false;
  for (;;) {
    if (!bg_error_.ok()) {
      return bg_error_;
    }
    if (closing_) {
      return Status::Internal("store is closed");
    }
    if (mem_->ApproximateBytes() < opts_.write_buffer_size) {
      return Status::Ok();
    }
    const size_t l0 = current_->levels[0].size();
    if (l0 >= static_cast<size_t>(opts_.l0_stall_limit)) {
      // Hard stall tier: block until compaction thins L0.
      auto t0 = MonoClock::now();
      work_cv_.SignalAll();
      stall_cv_.Wait();
      stats_.stall_micros += MicrosSince(t0);
      continue;
    }
    if (imm_.size() >= imm_cap) {
      // The flusher is behind: block until it retires a sealed memtable.
      auto t0 = MonoClock::now();
      flush_cv_.SignalAll();
      stall_cv_.Wait();
      stats_.stall_micros += MicrosSince(t0);
      continue;
    }
    if (!slowdown_done && l0 >= static_cast<size_t>(opts_.l0_slowdown_limit)) {
      // Graduated tier: one brief sleep per commit group gives compaction a
      // head start long before the hard stall threshold.
      auto t0 = MonoClock::now();
      mu_.Unlock();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      mu_.Lock();
      stats_.slowdown_micros += MicrosSince(t0);
      slowdown_done = true;
      continue;
    }
    GADGET_RETURN_IF_ERROR(RotateMemTableLocked());
    flush_cv_.SignalAll();
    if (opts_.max_immutable_memtables <= 0) {
      // Compatibility mode: behave like the old inline flush — the write
      // that fills a memtable waits for it to reach L0.
      while (!imm_.empty() && bg_error_.ok() && !closing_) {
        auto t0 = MonoClock::now();
        stall_cv_.Wait();
        stats_.stall_micros += MicrosSince(t0);
      }
    }
  }
}

Status LsmStore::RotateMemTableLocked() {
  // Fold the retiring generation's log accounting into the store counters
  // before the writer (and its counters) are destroyed.
  stats_.wal_bytes += wal_->size();
  stats_.wal_fsyncs += wal_->fsyncs();
  Status close_status = wal_->Close();
  wal_.reset();
  GADGET_RETURN_IF_ERROR(close_status);
  imm_.push_back(ImmutableMem{std::move(mem_), wal_number_});
  mem_ = std::make_unique<MemTable>();
  // No manifest write here: the new generation's number is higher than every
  // live one, so the recovery floor rule picks it up automatically.
  wal_number_ = next_file_number_++;
  auto wal = WalWriter::Create(WalPath(dir_, wal_number_));
  if (!wal.ok()) {
    return wal.status();
  }
  wal_ = std::move(*wal);
  // Recovery discovers this generation by listing the directory (nothing
  // records it until the next manifest write), so its directory entry must
  // be durable before any record in it is acknowledged.
  return SyncDir(dir_);
}

void LsmStore::ApplyOpLocked(RecType type, std::string_view key, std::string_view value) {
  switch (type) {
    case RecType::kValue:
      mem_->Put(key, value);
      ++stats_.puts;
      break;
    case RecType::kMergeStack:
      mem_->Merge(key, value);
      ++stats_.merges;
      break;
    case RecType::kTombstone:
      mem_->Delete(key);
      ++stats_.deletes;
      break;
  }
  stats_.bytes_written += key.size() + value.size();
}

// -------------------------------------------------------------------- reads

LookupState LsmStore::LookupMemLayersLocked(std::string_view key, std::string* value,
                                            std::vector<std::string>* acc) const {
  std::string val;
  std::vector<std::string> layer_ops;
  auto probe = [&](const MemTable& m) -> LookupState {
    val.clear();
    layer_ops.clear();
    LookupState state = m.Get(key, &val, &layer_ops);
    switch (state) {
      case LookupState::kFound:
        // This layer resolves the base; operands from newer layers apply on
        // top of it.
        *value = acc->empty() ? std::move(val) : ApplyMerge(val, *acc);
        return LookupState::kFound;
      case LookupState::kDeleted:
        if (acc->empty()) {
          return LookupState::kDeleted;
        }
        *value = ApplyMerge("", *acc);
        return LookupState::kFound;
      case LookupState::kMergePartial:
        // This layer is older than everything accumulated so far: prepend.
        acc->insert(acc->begin(), std::make_move_iterator(layer_ops.begin()),
                    std::make_move_iterator(layer_ops.end()));
        return LookupState::kMergePartial;
      case LookupState::kNotFound:
        return LookupState::kNotFound;
    }
    return LookupState::kNotFound;
  };
  LookupState state = probe(*mem_);
  if (state == LookupState::kFound || state == LookupState::kDeleted) {
    return state;
  }
  for (auto it = imm_.rbegin(); it != imm_.rend(); ++it) {  // newest first
    state = probe(*it->mem);
    if (state == LookupState::kFound || state == LookupState::kDeleted) {
      return state;
    }
  }
  return acc->empty() ? LookupState::kNotFound : LookupState::kMergePartial;
}

Status LsmStore::Get(std::string_view key, std::string* value, const ReadOptions& options) {
  std::vector<std::string> acc;
  std::shared_ptr<const Version> version;
  {
    MutexLock lock(&mu_);
    ++stats_.gets;
    if (!bg_error_.ok()) {
      return bg_error_;
    }
    LookupState state = LookupMemLayersLocked(key, value, &acc);
    if (state == LookupState::kFound) {
      read_bytes_.fetch_add(value->size(), std::memory_order_relaxed);
      return Status::Ok();
    }
    if (state == LookupState::kDeleted) {
      return Status::NotFound();
    }
    version = current_;
  }
  // From here on the lookup works off the snapshot only: searching SSTables
  // (block I/O) must never touch mu_, or concurrent readers serialize behind
  // writers and the background threads.
  return SearchTablesUnlocked(*version, key, std::move(acc), value, options);
}

Status LsmStore::MultiGet(const std::vector<std::string>& keys,
                          std::vector<std::string>* values, std::vector<Status>* statuses,
                          const ReadOptions& options) {
  const size_t n = keys.size();
  values->resize(n);
  statuses->assign(n, Status::Ok());
  // Keys the memtable layers could not resolve, with any merge operands they
  // stacked.
  std::vector<PendingRead> pending;
  std::shared_ptr<const Version> version;
  {
    MutexLock lock(&mu_);
    stats_.gets += n;
    if (!bg_error_.ok()) {
      return bg_error_;
    }
    for (size_t i = 0; i < n; ++i) {
      std::vector<std::string> acc;
      LookupState state = LookupMemLayersLocked(keys[i], &(*values)[i], &acc);
      switch (state) {
        case LookupState::kFound:
          read_bytes_.fetch_add((*values)[i].size(), std::memory_order_relaxed);
          break;
        case LookupState::kDeleted:
          (*statuses)[i] = Status::NotFound();
          break;
        case LookupState::kNotFound:
        case LookupState::kMergePartial:
          pending.push_back({i, std::move(acc)});
          break;
      }
    }
    if (!pending.empty()) {
      version = current_;  // one snapshot covers every SSTable lookup below
    }
  }
  if (!pending.empty()) {
    SearchTablesAsyncUnlocked(*version, keys, std::move(pending), values, statuses, options);
  }
  Status first_error;
  for (size_t i = 0; i < n; ++i) {
    const Status& s = (*statuses)[i];
    if (!s.ok() && !s.IsNotFound() && first_error.ok()) {
      first_error = s;
    }
  }
  NoteBatch(n);
  return first_error;
}

Status LsmStore::SearchTablesUnlocked(const Version& version, std::string_view key,
                                      std::vector<std::string> acc, std::string* value,
                                      const ReadOptions& options) {
  std::string val;
  std::vector<std::string> layer_ops;

  auto finish_found = [&](std::string base) -> Status {
    *value = ApplyMerge(base, acc);
    read_bytes_.fetch_add(value->size(), std::memory_order_relaxed);
    return Status::Ok();
  };
  auto finish_deleted = [&]() -> Status {
    if (acc.empty()) {
      return Status::NotFound();
    }
    return finish_found("");
  };

  auto search_file = [&](const std::shared_ptr<FileMeta>& f,
                         bool* terminal) -> Status {
    *terminal = false;
    if (key < std::string_view(f->smallest) || std::string_view(f->largest) < key) {
      return Status::Ok();
    }
    layer_ops.clear();
    val.clear();
    auto st = f->reader->Get(key, &val, &layer_ops, options);
    if (!st.ok()) {
      *terminal = true;
      return st.status();
    }
    switch (*st) {
      case LookupState::kNotFound:
        return Status::Ok();
      case LookupState::kFound:
        *terminal = true;
        return finish_found(std::move(val));
      case LookupState::kDeleted:
        *terminal = true;
        return finish_deleted();
      case LookupState::kMergePartial:
        // This layer is older than everything accumulated: prepend.
        acc.insert(acc.begin(), std::make_move_iterator(layer_ops.begin()),
                   std::make_move_iterator(layer_ops.end()));
        return Status::Ok();
    }
    return Status::Internal("unreachable");
  };

  // L0: newest file first.
  const auto& l0 = version.levels[0];
  for (auto it = l0.rbegin(); it != l0.rend(); ++it) {
    bool terminal = false;
    Status s = search_file(*it, &terminal);
    if (terminal || !s.ok()) {
      return s;
    }
  }
  // L1+: at most one file per level contains the key.
  for (size_t l = 1; l < version.levels.size(); ++l) {
    const auto& files = version.levels[l];
    auto it = std::lower_bound(files.begin(), files.end(), key,
                               [](const std::shared_ptr<FileMeta>& f, std::string_view k) {
                                 return std::string_view(f->largest) < k;
                               });
    if (it == files.end()) {
      continue;
    }
    bool terminal = false;
    Status s = search_file(*it, &terminal);
    if (terminal || !s.ok()) {
      return s;
    }
  }
  if (acc.empty()) {
    return Status::NotFound();
  }
  // Merge operands with no base anywhere: base is implicitly empty.
  return finish_found("");
}

void LsmStore::SearchTablesAsyncUnlocked(const Version& version,
                                         const std::vector<std::string>& keys,
                                         std::vector<PendingRead> pending,
                                         std::vector<std::string>* values,
                                         std::vector<Status>* statuses,
                                         const ReadOptions& options) {
  // Per-key cursor over the SSTables that may hold it, in shadowing order
  // (L0 newest first, then at most one candidate per lower level). The
  // `version` snapshot held by the caller keeps every FileMeta alive.
  struct KeyWork {
    size_t index = 0;                    // into keys/values/statuses
    std::vector<std::string> acc;        // merge operands, newest first
    std::vector<const FileMeta*> files;  // candidates in shadowing order
    size_t next_file = 0;
    bool done = false;
  };
  std::vector<KeyWork> work(pending.size());
  for (size_t i = 0; i < pending.size(); ++i) {
    KeyWork& w = work[i];
    w.index = pending[i].index;
    w.acc = std::move(pending[i].acc);
    const std::string_view key = keys[w.index];
    const auto& l0 = version.levels[0];
    for (auto it = l0.rbegin(); it != l0.rend(); ++it) {  // newest first
      if (key >= std::string_view((*it)->smallest) && key <= std::string_view((*it)->largest)) {
        w.files.push_back(it->get());
      }
    }
    for (size_t l = 1; l < version.levels.size(); ++l) {
      const auto& files = version.levels[l];
      auto it = std::lower_bound(files.begin(), files.end(), key,
                                 [](const std::shared_ptr<FileMeta>& f, std::string_view k) {
                                   return std::string_view(f->largest) < k;
                                 });
      if (it != files.end() && key >= std::string_view((*it)->smallest)) {
        w.files.push_back(it->get());
      }
    }
  }

  auto finish_found = [&](KeyWork* w, std::string base) {
    (*values)[w->index] = ApplyMerge(base, w->acc);
    read_bytes_.fetch_add((*values)[w->index].size(), std::memory_order_relaxed);
    (*statuses)[w->index] = Status::Ok();
    w->done = true;
  };
  auto finish_deleted = [&](KeyWork* w) {
    if (w->acc.empty()) {
      (*statuses)[w->index] = Status::NotFound();
      w->done = true;
      return;
    }
    finish_found(w, "");
  };
  auto finish_error = [&](KeyWork* w, Status s) {
    (*statuses)[w->index] = std::move(s);
    w->done = true;
  };
  // Searches one decoded block; mirrors SearchTablesUnlocked's per-table
  // handling (terminal found/deleted, operand prepend, else next table).
  auto apply_block = [&](KeyWork* w, std::string_view block, const std::string& path) {
    std::string val;
    std::vector<std::string> ops;
    auto st = SSTableReader::SearchBlock(block, keys[w->index], &val, &ops, path);
    if (!st.ok()) {
      finish_error(w, st.status());
      return;
    }
    switch (*st) {
      case LookupState::kNotFound:
        ++w->next_file;
        break;
      case LookupState::kFound:
        finish_found(w, std::move(val));
        break;
      case LookupState::kDeleted:
        finish_deleted(w);
        break;
      case LookupState::kMergePartial:
        // This layer is older than everything accumulated: prepend.
        w->acc.insert(w->acc.begin(), std::make_move_iterator(ops.begin()),
                      std::make_move_iterator(ops.end()));
        ++w->next_file;
        break;
    }
  };

  // One round: every unresolved key walks its candidate tables through the
  // cache until it either resolves, exhausts, or misses — all of a round's
  // misses (deduplicated per block) then form one batched I/O wave. Each
  // parsed block strictly advances or resolves its waiters, so rounds
  // terminate.
  struct WaveBlock {
    SSTableReader* reader = nullptr;
    uint64_t offset = 0;
    IoRead io;
    std::vector<KeyWork*> waiters;
  };
  for (;;) {
    std::vector<WaveBlock> wave;
    std::map<std::pair<SSTableReader*, uint64_t>, size_t> block_index;
    for (KeyWork& w : work) {
      while (!w.done) {
        if (w.next_file >= w.files.size()) {
          // No table resolved the key; merge operands (if any) apply to an
          // implicitly empty base.
          if (w.acc.empty()) {
            (*statuses)[w.index] = Status::NotFound();
            w.done = true;
          } else {
            finish_found(&w, "");
          }
          break;
        }
        SSTableReader* reader = w.files[w.next_file]->reader.get();
        uint64_t offset = 0;
        uint32_t size = 0;
        if (!reader->FindDataBlock(keys[w.index], &offset, &size)) {
          ++w.next_file;  // bloom/index miss: no I/O for this table
          continue;
        }
        PinnedBlock cached = reader->CacheLookup(offset);
        if (cached.has_data()) {
          apply_block(&w, cached.data(), reader->path());
          continue;
        }
        // Cache miss: join (or start) this round's wave entry for the block
        // and stop walking until the wave lands.
        auto [it, inserted] = block_index.try_emplace({reader, offset}, wave.size());
        if (inserted) {
          wave.emplace_back();
          WaveBlock& b = wave.back();
          b.reader = reader;
          b.offset = offset;
          b.io.fd = reader->fd();
          b.io.offset = offset;
          b.io.length = size;
        }
        wave[it->second].waiters.push_back(&w);
        break;
      }
    }
    if (wave.empty()) {
      return;  // every key resolved
    }
    std::vector<IoRead*> ios;
    ios.reserve(wave.size());
    for (WaveBlock& b : wave) {
      ios.push_back(&b.io);
    }
    pool_->io().ReadBatch(ios);
    for (WaveBlock& b : wave) {
      if (!b.io.status.ok()) {
        for (KeyWork* w : b.waiters) {
          finish_error(w, b.io.status);
        }
        continue;
      }
      std::string block = std::move(b.io.out);
      Status vs = SSTableReader::VerifyAndStripChecksum(&block, options.verify_checksums,
                                                        b.reader->path());
      if (!vs.ok()) {
        for (KeyWork* w : b.waiters) {
          finish_error(w, vs);
        }
        continue;
      }
      PinnedBlock inserted;
      if (options.fill_cache) {
        inserted = b.reader->CacheInsert(b.offset, std::move(block));
      }
      const std::string_view view =
          inserted.has_data() ? inserted.data() : std::string_view(block);
      for (KeyWork* w : b.waiters) {
        apply_block(w, view, b.reader->path());
      }
    }
  }
}

// -------------------------------------------------------------------- flush

StatusOr<std::shared_ptr<FileMeta>> LsmStore::BuildTableFromMem(const MemTable& mem,
                                                                uint64_t number) {
  const std::string path = SstPath(dir_, number);
  SSTableBuilder builder(path, opts_.block_size, opts_.bloom_bits_per_key);
  Status add_status;
  mem.ForEachFlushRecord([&](const MemTable::FlushRecord& rec) {
    if (add_status.ok()) {
      add_status = builder.Add(rec.key, rec.type, rec.value);
    }
  });
  GADGET_RETURN_IF_ERROR(add_status);
  GADGET_RETURN_IF_ERROR(builder.Finish());

  auto meta = std::make_shared<FileMeta>();
  meta->number = number;
  meta->size = builder.file_size();
  meta->entries = builder.num_entries();
  meta->tombstones = builder.num_tombstones();
  meta->created_ms = NowMs();
  meta->smallest = builder.smallest();
  meta->largest = builder.largest();
  meta->path = path;
  auto reader = SSTableReader::Open(path, number, pool_.get());
  if (!reader.ok()) {
    return reader.status();
  }
  meta->reader = std::move(*reader);
  return meta;
}

void LsmStore::FlusherThread() {
  mu_.Lock();
  for (;;) {
    while (bg_error_.ok() && !closing_ && (imm_.empty() || flusher_paused_)) {
      flush_cv_.Wait();
    }
    if (!bg_error_.ok()) {
      // Poisoned store: stop flushing. The queued memtables' WAL generations
      // stay live in the manifest, so their data survives for recovery.
      if (closing_) {
        mu_.Unlock();
        return;
      }
      flush_cv_.Wait();
      continue;
    }
    if (imm_.empty()) {
      if (closing_) {
        mu_.Unlock();
        return;
      }
      continue;
    }
    // closing_ with a non-empty queue still flushes: Close() drains the
    // queue (the test pause is ignored) before its final memtable flush.
    const MemTable* mem = imm_.front().mem.get();
    const uint64_t wal_gen = imm_.front().wal_number;
    const uint64_t number = next_file_number_++;
    auto flush_start = MonoClock::now();
    mu_.Unlock();
    // Safe off-lock: the sealed memtable is immutable and only this thread
    // pops the queue entry, so readers keep probing it under mu_ while the
    // SSTable is built.
    auto meta = BuildTableFromMem(*mem, number);
    // The new SSTable's directory entry must be durable before the manifest
    // that references it: the builder fsyncs the file's data, but only a
    // directory fsync persists the entry, and recovery cannot open a
    // manifest-listed file whose entry a crash erased.
    Status dir_sync = meta.ok() ? SyncDir(dir_) : Status::Ok();
    mu_.Lock();
    Status s = !dir_sync.ok()
                   ? dir_sync
                   : (meta.ok() ? InstallFlushLocked(std::move(*meta)) : meta.status());
    if (s.ok()) {
      ++stats_.flushes;
      stats_.flush_micros += MicrosSince(flush_start);
      mu_.Unlock();
      // The generation's records are durable in the SSTable and the manifest
      // that stops listing it is durable (SaveManifest returns only after the
      // rename's directory entry is synced), so the log is dead weight. This
      // ordering — durable manifest first, unlink second — is what closes
      // the resurrection window: a crash here leaves a stale log that the
      // recovery floor rule skips.
      // status intentionally ignored: failing to unlink a dead log wastes
      // disk but loses nothing — recovery's floor rule skips stale logs.
      (void)RemoveFile(WalPath(dir_, wal_gen));
      mu_.Lock();
    } else if (bg_error_.ok()) {
      bg_error_ = s;
    }
    stall_cv_.SignalAll();  // writers waiting for queue room, Flush() waiters
    work_cv_.SignalAll();   // L0 may have reached the compaction trigger
  }
}

Status LsmStore::InstallFlushLocked(std::shared_ptr<FileMeta> meta) {
  stats_.io_bytes_written += meta->size;
  auto version = std::make_shared<Version>(*current_);
  version->levels[0].push_back(std::move(meta));
  current_ = std::move(version);
  imm_.pop_front();
  return PersistManifestLocked();
}

Status LsmStore::FlushActiveMemLocked() {
  if (mem_->empty()) {
    return Status::Ok();
  }
  auto flush_start = MonoClock::now();
  const uint64_t number = next_file_number_++;
  auto meta = BuildTableFromMem(*mem_, number);
  if (!meta.ok()) {
    return meta.status();
  }
  // New SSTable's directory entry before the manifest that references it.
  GADGET_RETURN_IF_ERROR(SyncDir(dir_));
  stats_.io_bytes_written += (*meta)->size;
  auto version = std::make_shared<Version>(*current_);
  version->levels[0].push_back(std::move(*meta));
  current_ = std::move(version);
  mem_ = std::make_unique<MemTable>();
  ++stats_.flushes;
  stats_.flush_micros += MicrosSince(flush_start);

  // Rotate the WAL: records up to here are now durable in the SSTable.
  // During Recover() the new-generation WAL does not exist yet (the replayed
  // logs are removed by the caller), so rotation is skipped.
  if (wal_ != nullptr) {
    stats_.wal_bytes += wal_->size();
    stats_.wal_fsyncs += wal_->fsyncs();
    Status close_status = wal_->Close();
    wal_.reset();
    GADGET_RETURN_IF_ERROR(close_status);
    uint64_t old_wal = wal_number_;
    wal_number_ = next_file_number_++;
    auto wal = WalWriter::Create(WalPath(dir_, wal_number_));
    if (!wal.ok()) {
      return wal.status();
    }
    wal_ = std::move(*wal);
    GADGET_RETURN_IF_ERROR(PersistManifestLocked());
    // The unlink happens only after the manifest that stops listing the old
    // generation is durable (SaveManifest dir-syncs the rename) — a crash
    // here cannot resurrect a manifest that still needs the deleted log.
    // status intentionally ignored: the manifest no longer lists the old
    // generation, so a leftover file is skipped by recovery and re-deleted.
    (void)RemoveFile(WalPath(dir_, old_wal));
    return Status::Ok();
  }
  return PersistManifestLocked();
}

// --------------------------------------------------------------- compaction

uint64_t LsmStore::MaxBytesForLevel(int level) const {
  double bytes = static_cast<double>(opts_.max_bytes_level_base);
  for (int l = 1; l < level; ++l) {
    bytes *= opts_.level_size_multiplier;
  }
  return static_cast<uint64_t>(bytes);
}

bool LsmStore::PickCompactionLocked(CompactionJob* job) {
  const Version& v = *current_;

  auto add_overlaps = [&](int level, const std::string& begin, const std::string& end) {
    for (const auto& f : v.levels[static_cast<size_t>(level)]) {
      if (Overlaps(*f, begin, end)) {
        job->inputs.push_back(f);
      }
    }
  };
  auto compute_bottommost = [&](int output_level, const std::string& begin,
                                const std::string& end) {
    for (int l = output_level + 1; l < opts_.num_levels; ++l) {
      for (const auto& f : v.levels[static_cast<size_t>(l)]) {
        if (Overlaps(*f, begin, end)) {
          return false;
        }
      }
    }
    return true;
  };

  // Rule 1: L0 file count.
  if (v.levels[0].size() >= static_cast<size_t>(opts_.l0_compaction_trigger)) {
    // Newest first.
    for (auto it = v.levels[0].rbegin(); it != v.levels[0].rend(); ++it) {
      job->inputs.push_back(*it);
    }
    std::string begin = job->inputs.front()->smallest;
    std::string end = job->inputs.front()->largest;
    for (const auto& f : job->inputs) {
      begin = std::min(begin, f->smallest);
      end = std::max(end, f->largest);
    }
    add_overlaps(1, begin, end);
    job->output_level = 1;
    job->bottommost = compute_bottommost(1, begin, end);
    return true;
  }

  // Rule 2: level sizes.
  for (int l = 1; l < opts_.num_levels - 1; ++l) {
    const auto& files = v.levels[static_cast<size_t>(l)];
    if (files.empty() || v.LevelBytes(l) <= MaxBytesForLevel(l)) {
      continue;
    }
    size_t& cursor = compact_cursor_[static_cast<size_t>(l)];
    if (cursor >= files.size()) {
      cursor = 0;
    }
    auto file = files[cursor];
    ++cursor;
    job->inputs.push_back(file);
    add_overlaps(l + 1, file->smallest, file->largest);
    job->output_level = l + 1;
    job->bottommost = compute_bottommost(l + 1, file->smallest, file->largest);
    return true;
  }

  // Rule 3 (Lethe): force-compact files whose tombstones outlived the delete
  // persistence threshold.
  if (opts_.delete_aware) {
    uint64_t now = NowMs();
    for (int l = 0; l < opts_.num_levels - 1; ++l) {
      for (const auto& f : v.levels[static_cast<size_t>(l)]) {
        if (f->tombstones == 0 || now - f->created_ms <= opts_.delete_persistence_ms) {
          continue;
        }
        if (l == 0) {
          // A partial L0 compaction would re-order shadowing (a newer L0
          // record must never end up below an older L0 file), so an aged L0
          // tombstone triggers the full L0->L1 compaction.
          if (v.levels[0].empty()) {
            continue;
          }
          for (auto it = v.levels[0].rbegin(); it != v.levels[0].rend(); ++it) {
            job->inputs.push_back(*it);
          }
          std::string begin = job->inputs.front()->smallest;
          std::string end = job->inputs.front()->largest;
          for (const auto& in : job->inputs) {
            begin = std::min(begin, in->smallest);
            end = std::max(end, in->largest);
          }
          add_overlaps(1, begin, end);
          job->output_level = 1;
          job->bottommost = compute_bottommost(1, begin, end);
          return true;
        }
        job->inputs.push_back(f);
        add_overlaps(l + 1, f->smallest, f->largest);
        job->output_level = l + 1;
        job->bottommost = compute_bottommost(l + 1, f->smallest, f->largest);
        return true;
      }
    }
  }
  return false;
}

Status LsmStore::DoCompaction(const CompactionJob& job,
                              std::vector<std::shared_ptr<FileMeta>>* outputs) {
  // Partition the key range at input-file smallest-key boundaries: every key
  // falls into exactly one sub-range, so the per-key merge/shadowing logic
  // never sees a key split across subcompactions.
  std::vector<std::string> bounds;  // interior boundaries, ascending
  const size_t want = static_cast<size_t>(std::max(1, opts_.compaction_threads));
  if (want > 1 && job.inputs.size() > 1) {
    std::vector<std::string> candidates;
    candidates.reserve(job.inputs.size());
    for (const auto& f : job.inputs) {
      candidates.push_back(f->smallest);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());
    candidates.erase(candidates.begin());  // the global minimum is not interior
    const size_t subs = std::min(want, candidates.size() + 1);
    for (size_t j = 1; j < subs; ++j) {
      bounds.push_back(candidates[j * candidates.size() / subs]);
    }
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  }

  const size_t n = bounds.size() + 1;
  if (n == 1) {
    return RunSubcompaction(job, "", /*has_end=*/false, "", outputs);
  }

  std::vector<std::vector<std::shared_ptr<FileMeta>>> sub_outputs(n);
  std::vector<Status> sub_status(n);
  auto run = [&](size_t i) {
    const std::string_view begin =
        i == 0 ? std::string_view() : std::string_view(bounds[i - 1]);
    const bool has_end = i + 1 < n;
    const std::string_view end = has_end ? std::string_view(bounds[i]) : std::string_view();
    sub_status[i] = RunSubcompaction(job, begin, has_end, end, &sub_outputs[i]);
  };
  std::vector<std::thread> workers;
  workers.reserve(n - 1);
  for (size_t i = 1; i < n; ++i) {
    workers.emplace_back(run, i);
  }
  run(0);  // the calling thread takes the first range
  for (auto& t : workers) {
    t.join();
  }
  // Concatenating in range order yields global key order across outputs.
  // Partial outputs are returned even on error so the caller can mark them
  // obsolete.
  for (size_t i = 0; i < n; ++i) {
    for (auto& f : sub_outputs[i]) {
      outputs->push_back(std::move(f));
    }
  }
  for (const Status& s : sub_status) {
    GADGET_RETURN_IF_ERROR(s);
  }
  return Status::Ok();
}

Status LsmStore::RunSubcompaction(const CompactionJob& job, std::string_view begin,
                                  bool has_end, std::string_view end,
                                  std::vector<std::shared_ptr<FileMeta>>* outputs) {
  // One iterator per input that intersects [begin, end), preserving the
  // newest-first input order (shadowing between inputs is positional).
  std::vector<std::unique_ptr<SSTableIterator>> iters;
  std::vector<const FileMeta*> files;  // parallel to iters: created_ms source
  for (const auto& f : job.inputs) {
    if (has_end && std::string_view(f->smallest) >= end) {
      continue;
    }
    if (!begin.empty() && std::string_view(f->largest) < begin) {
      continue;
    }
    iters.push_back(std::make_unique<SSTableIterator>(f->reader));
    files.push_back(f.get());
  }
  if (!begin.empty()) {
    for (auto& it : iters) {
      while (it->Valid() && it->key() < begin) {
        it->Next();
      }
      GADGET_RETURN_IF_ERROR(it->status());
    }
  }

  std::unique_ptr<SSTableBuilder> builder;
  uint64_t builder_number = 0;
  uint64_t min_tombstone_created = ~0ULL;
  bool output_has_tombstones = false;

  auto open_builder = [&]() -> Status {
    // File numbers come from the shared counter; this is the only store
    // state a subcompaction touches, so the critical section is tiny.
    MutexLock lock(&mu_);
    builder_number = next_file_number_++;
    builder = std::make_unique<SSTableBuilder>(SstPath(dir_, builder_number), opts_.block_size,
                                               opts_.bloom_bits_per_key);
    return Status::Ok();
  };
  auto close_builder = [&]() -> Status {
    if (builder == nullptr || builder->num_entries() == 0) {
      if (builder != nullptr) {
        GADGET_RETURN_IF_ERROR(builder->Finish());
        // status intentionally ignored: the empty output was never installed
        // in any version, so a leftover file is inert garbage.
        (void)RemoveFile(SstPath(dir_, builder_number));
        builder.reset();
      }
      return Status::Ok();
    }
    GADGET_RETURN_IF_ERROR(builder->Finish());
    auto meta = std::make_shared<FileMeta>();
    meta->number = builder_number;
    meta->size = builder->file_size();
    meta->entries = builder->num_entries();
    meta->tombstones = builder->num_tombstones();
    meta->created_ms = output_has_tombstones ? min_tombstone_created : NowMs();
    meta->smallest = builder->smallest();
    meta->largest = builder->largest();
    meta->path = SstPath(dir_, builder_number);
    auto reader = SSTableReader::Open(meta->path, meta->number, pool_.get());
    if (!reader.ok()) {
      return reader.status();
    }
    meta->reader = std::move(*reader);
    outputs->push_back(std::move(meta));
    builder.reset();
    output_has_tombstones = false;
    min_tombstone_created = ~0ULL;
    return Status::Ok();
  };

  auto emit = [&](std::string_view key, RecType type, std::string_view value,
                  uint64_t source_created_ms) -> Status {
    if (builder == nullptr) {
      GADGET_RETURN_IF_ERROR(open_builder());
    }
    if (type == RecType::kTombstone) {
      output_has_tombstones = true;
      min_tombstone_created = std::min(min_tombstone_created, source_created_ms);
    }
    GADGET_RETURN_IF_ERROR(builder->Add(key, type, value));
    return Status::Ok();
  };

  uint64_t emitted_bytes = 0;
  std::vector<std::string> pending;
  std::string merged_value;

  for (;;) {
    // Find the smallest key among valid iterators.
    std::string_view min_key;
    bool any = false;
    for (const auto& it : iters) {
      if (!it->Valid()) {
        continue;
      }
      if (!any || it->key() < min_key) {
        min_key = it->key();
        any = true;
      }
    }
    if (!any || (has_end && min_key >= end)) {
      break;  // range exhausted; keys >= end belong to the next subcompaction
    }
    const std::string key(min_key);  // own it: iterators advance below

    // Combine records for this key, newest input first.
    pending.clear();
    bool resolved = false;
    bool drop = false;
    RecType out_type = RecType::kValue;
    merged_value.clear();
    uint64_t tomb_created = NowMs();

    for (size_t i = 0; i < iters.size(); ++i) {
      auto& it = iters[i];
      if (!it->Valid() || it->key() != std::string_view(key)) {
        continue;
      }
      if (!resolved) {
        switch (it->type()) {
          case RecType::kValue:
            merged_value = ApplyMerge(it->value(), pending);
            out_type = RecType::kValue;
            resolved = true;
            break;
          case RecType::kTombstone:
            tomb_created = files[i]->created_ms;
            if (pending.empty()) {
              if (job.bottommost) {
                drop = true;
              } else {
                out_type = RecType::kTombstone;
                merged_value.clear();
              }
            } else {
              out_type = RecType::kValue;
              merged_value = ApplyMerge("", pending);
            }
            resolved = true;
            break;
          case RecType::kMergeStack: {
            std::vector<std::string> ops;
            if (!DecodeMergeStack(it->value(), &ops)) {
              return Status::Corruption("bad merge stack during compaction");
            }
            // This record is older than everything in `pending`.
            pending.insert(pending.begin(), std::make_move_iterator(ops.begin()),
                           std::make_move_iterator(ops.end()));
            break;
          }
        }
      }
      it->Next();
      if (!it->status().ok()) {
        return it->status();
      }
    }

    if (!resolved) {
      if (job.bottommost) {
        out_type = RecType::kValue;
        merged_value = ApplyMerge("", pending);
      } else {
        out_type = RecType::kMergeStack;
        merged_value = EncodeMergeStack(pending);
      }
    }
    if (!drop) {
      GADGET_RETURN_IF_ERROR(emit(key, out_type, merged_value,
                                  out_type == RecType::kTombstone ? tomb_created : NowMs()));
      emitted_bytes += key.size() + merged_value.size() + 8;
      if (emitted_bytes >= opts_.target_file_size) {
        GADGET_RETURN_IF_ERROR(close_builder());
        emitted_bytes = 0;
      }
    }
  }
  GADGET_RETURN_IF_ERROR(close_builder());
  return Status::Ok();
}

void LsmStore::InstallCompactionLocked(const CompactionJob& job,
                                       std::vector<std::shared_ptr<FileMeta>> outputs) {
  auto version = std::make_shared<Version>(*current_);
  auto is_input = [&](const std::shared_ptr<FileMeta>& f) {
    for (const auto& in : job.inputs) {
      if (in->number == f->number) {
        return true;
      }
    }
    return false;
  };
  for (auto& level : version->levels) {
    level.erase(std::remove_if(level.begin(), level.end(), is_input), level.end());
  }
  auto& out_level = version->levels[static_cast<size_t>(job.output_level)];
  for (auto& f : outputs) {
    stats_.io_bytes_written += f->size;
    out_level.push_back(std::move(f));
  }
  std::sort(out_level.begin(), out_level.end(),
            [](const auto& a, const auto& b) { return a->smallest < b->smallest; });
  current_ = std::move(version);
  ++stats_.compactions;
  for (const auto& in : job.inputs) {
    stats_.io_bytes_read += in->size;
  }
  Status s = PersistManifestLocked();
  if (!s.ok() && bg_error_.ok()) {
    bg_error_ = s;
  }
  // Inputs become deletable (FileMeta dtor unlinks obsolete files) only once
  // the manifest that stops listing them is durable; if the persist failed,
  // the durable manifest still references them and they must stay on disk.
  if (s.ok()) {
    for (const auto& in : job.inputs) {
      in->obsolete.store(true, std::memory_order_release);
    }
  }
}

void LsmStore::CompactionThread() {
  mu_.Lock();
  while (!closing_) {
    CompactionJob job;
    if (!bg_error_.ok() || !PickCompactionLocked(&job)) {
      // Time-bounded wait: Lethe's age-based trigger needs periodic checks.
      work_cv_.WaitFor(std::chrono::milliseconds(200));
      continue;
    }
    mu_.Unlock();

    auto compaction_start = MonoClock::now();
    std::vector<std::shared_ptr<FileMeta>> outputs;
    Status s = DoCompaction(job, &outputs);
    if (s.ok()) {
      // Output SSTables' directory entries before the version edit that
      // references them (same rule as the flush path).
      s = SyncDir(dir_);
    }
    uint64_t compaction_micros = MicrosSince(compaction_start);

    mu_.Lock();
    stats_.compaction_micros += compaction_micros;
    if (s.ok()) {
      InstallCompactionLocked(job, std::move(outputs));
    } else {
      GADGET_LOG(Error) << "compaction failed: " << s.ToString();
      if (bg_error_.ok()) {
        bg_error_ = s;
      }
      // Drop any partially written outputs.
      for (const auto& f : outputs) {
        f->obsolete.store(true, std::memory_order_release);
      }
    }
    stall_cv_.SignalAll();
  }
  mu_.Unlock();
}

// ------------------------------------------------------------------- admin

Status LsmStore::Flush() {
  MutexLock lock(&mu_);
  // Drain the whole pipeline: in-flight commit groups AND sealed memtables
  // (older data must reach L0 before the active memtable does). Both must be
  // empty in the same critical section — an empty writer queue is also what
  // guarantees no leader is mid-append with its wal_ pointer while we rotate
  // the log below (groups are only popped under mu_ after the append).
  while ((!writers_.empty() || !imm_.empty()) && bg_error_.ok() && !closing_) {
    flush_cv_.SignalAll();
    stall_cv_.Wait();
  }
  if (!bg_error_.ok()) {
    return bg_error_;
  }
  if (closing_) {
    return Status::Internal("store is closed");
  }
  return FlushActiveMemLocked();
}

StatusOr<CheckpointInfo> LsmStore::Checkpoint(const std::string& dir,
                                              const CheckpointOptions& options) {
  GADGET_RETURN_IF_ERROR(CreateDirIfMissing(dir));
  auto existing = ListDir(dir);
  if (!existing.ok()) {
    return existing.status();
  }
  if (!existing->empty()) {
    return Status::InvalidArgument("checkpoint dir not empty: " + dir);
  }

  CheckpointInfo info;
  ManifestData data;
  std::shared_ptr<const Version> version;
  {
    MutexLock lock(&mu_);
    if (closing_) {
      return Status::Internal("store is closed");
    }
    GADGET_RETURN_IF_ERROR(bg_error_);
    // Snapshot the file layout. The Version shared_ptr keeps every
    // referenced SSTable alive (FileMeta only unlinks once the last snapshot
    // drops), so the hard-linking below runs with mu_ released.
    version = current_;
    data.next_file_number = next_file_number_;
    for (const auto& im : imm_) {
      data.wal_numbers.push_back(im.wal_number);
    }
    if (wal_ != nullptr) {
      data.wal_numbers.push_back(wal_number_);
    }
    // Copy the live WAL generations while still holding mu_: the flusher
    // retires a generation only through InstallFlushLocked (which needs
    // mu_), so every file listed above exists for the duration of the copy.
    // A leader may be appending to the active generation off-lock, but a
    // group is one CRC-framed record whose bytes reach the fd before any
    // writer in it is acknowledged — the copy therefore captures every
    // acknowledged write, and at worst a torn tail of an in-flight
    // (unacknowledged) group, which replay discards exactly as after a
    // crash.
    for (uint64_t n : data.wal_numbers) {
      GADGET_RETURN_IF_ERROR(CopyFile(WalPath(dir_, n), WalPath(dir, n), /*sync=*/true));
      auto wal_size = FileSize(WalPath(dir, n));
      if (!wal_size.ok()) {
        return wal_size.status();
      }
      info.bytes += *wal_size;
      ++info.files;
    }
  }
  // SSTables are immutable: capture them by hard link (byte copy across
  // filesystems) without blocking writers. Incremental mode links unchanged
  // files from the previous checkpoint instead of the live tree; either way
  // no data is copied on the same filesystem.
  for (int l = 0; l < opts_.num_levels; ++l) {
    for (const auto& f : version->levels[static_cast<size_t>(l)]) {
      std::string from = f->path;
      bool reused = false;
      if (!options.base_dir.empty()) {
        auto base_size = FileSize(SstPath(options.base_dir, f->number));
        if (base_size.ok() && *base_size == f->size) {
          from = SstPath(options.base_dir, f->number);
          reused = true;
        }
      }
      bool linked = false;
      GADGET_RETURN_IF_ERROR(LinkOrCopyFile(from, SstPath(dir, f->number), &linked));
      info.bytes += f->size;
      ++info.files;
      if (linked) {
        ++info.hard_links;
      }
      if (reused) {
        ++info.reused;
      }
      data.files.push_back({l, f->number, f->size, f->entries, f->tombstones, f->created_ms,
                            f->smallest, f->largest});
    }
  }
  // The manifest goes last: SaveManifest fsyncs it and then the checkpoint
  // directory, making every entry above (WAL copies, SSTable links) durable
  // in one sweep. A crash mid-checkpoint leaves a directory without a
  // MANIFEST, which RestoreStore rejects as incomplete.
  GADGET_RETURN_IF_ERROR(SaveManifest(dir, data));
  auto manifest_size = FileSize(dir + "/MANIFEST");
  if (!manifest_size.ok()) {
    return manifest_size.status();
  }
  info.bytes += *manifest_size;
  ++info.files;
  return info;
}

Status LsmStore::Close() {
  mu_.Lock();
  if (closing_) {
    mu_.Unlock();
    return Status::Ok();
  }
  closing_ = true;
  // Wake everything: stalled/slowed writers fail out, the flusher drains the
  // immutable queue, the compaction thread exits after its current job.
  stall_cv_.SignalAll();
  flush_cv_.SignalAll();
  work_cv_.SignalAll();
  if (!writers_.empty()) {
    writers_.front()->cv.Signal();
  }
  while (!writers_.empty()) {
    stall_cv_.Wait();
  }
  mu_.Unlock();
  if (flusher_thread_.joinable()) {
    flusher_thread_.join();
  }
  if (compaction_thread_.joinable()) {
    compaction_thread_.join();
  }
  mu_.Lock();
  Status s;
  if (imm_.empty() && bg_error_.ok()) {
    s = FlushActiveMemLocked();
  } else if (!bg_error_.ok()) {
    // Poisoned: leave the WAL generations in place (and listed live in the
    // last-persisted manifest) so recovery replays them.
    s = bg_error_;
  }
  if (wal_ != nullptr) {
    stats_.wal_bytes += wal_->size();
    stats_.wal_fsyncs += wal_->fsyncs();
    Status ws = wal_->Close();
    if (s.ok()) {
      s = ws;
    }
    wal_.reset();  // accounting folded in; stats() must not add it again
  }
  mu_.Unlock();
  return s;
}

StoreStats LsmStore::stats() const {
  MutexLock lock(&mu_);
  StoreStats out = stats_;
  out.bytes_read += read_bytes_.load(std::memory_order_relaxed);
  // Pool-wide totals: with a shared pool these cover every attached store
  // (the pool is one resource; per-store attribution would be fiction).
  out.cache_hits = pool_->hits();
  out.cache_misses = pool_->misses();
  out.cache_evictions = pool_->evictions();
  out.cache_pins = pool_->pins();
  out.io_batches = pool_->io().batches();
  out.io_in_flight_max = pool_->io().in_flight_max();
  if (wal_ != nullptr) {  // live generation: not yet folded by rotation
    out.wal_bytes += wal_->size();
    out.wal_fsyncs += wal_->fsyncs();
  }
  out.level_files.reserve(current_->levels.size());
  for (const auto& level : current_->levels) {
    out.level_files.push_back(level.size());
  }
  FoldBatchStats(&out);
  return out;
}

int LsmStore::NumFilesAtLevel(int level) const {
  MutexLock lock(&mu_);
  return static_cast<int>(current_->levels[static_cast<size_t>(level)].size());
}

uint64_t LsmStore::TotalSstBytes() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& level : current_->levels) {
    for (const auto& f : level) {
      total += f->size;
    }
  }
  return total;
}

size_t LsmStore::TEST_NumImmutables() const {
  MutexLock lock(&mu_);
  return imm_.size();
}

void LsmStore::TEST_PauseFlusher(bool paused) {
  {
    MutexLock lock(&mu_);
    flusher_paused_ = paused;
  }
  flush_cv_.SignalAll();
}

}  // namespace gadget
