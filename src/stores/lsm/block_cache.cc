#include "src/stores/lsm/block_cache.h"

#include <atomic>

namespace gadget {

BlockCache::BlockCache(uint64_t capacity_bytes)
    : capacity_per_shard_(capacity_bytes / kShards + 1) {}

BlockCache::BlockHandle BlockCache::Lookup(uint64_t file_number, uint64_t offset) {
  Key key{file_number, offset};
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // Move to front.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->block;
}

BlockCache::BlockHandle BlockCache::Insert(uint64_t file_number, uint64_t offset,
                                           std::string block) {
  Key key{file_number, offset};
  auto handle = std::make_shared<const std::string>(std::move(block));
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    shard.bytes -= it->second->block->size();
    shard.lru.erase(it->second);
    shard.map.erase(it);
  }
  shard.lru.push_front(Shard::Entry{key, handle});
  shard.map[key] = shard.lru.begin();
  shard.bytes += handle->size();
  EvictLocked(shard);
  return handle;
}

void BlockCache::EvictLocked(Shard& shard) {
  while (shard.bytes > capacity_per_shard_ && !shard.lru.empty()) {
    const Shard::Entry& victim = shard.lru.back();
    shard.bytes -= victim.block->size();
    shard.map.erase(victim.key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void BlockCache::EraseFile(uint64_t file_number) {
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.file == file_number) {
        shard.bytes -= it->block->size();
        shard.map.erase(it->key);
        it = shard.lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

}  // namespace gadget
