#include "src/stores/lsm/sstable.h"

#include <algorithm>

#include "src/common/coding.h"
#include "src/common/crc32c.h"
#include "src/stores/lsm/bloom.h"

namespace gadget {
namespace {

constexpr uint64_t kTableMagic = 0x67616467657453ULL;  // "gadgetS"
constexpr size_t kFooterSize = 8 + 4 + 8 + 4 + 8 + 8;  // 40 bytes

void AppendBlockWithCrc(std::string* out, std::string_view block) {
  out->append(block.data(), block.size());
  PutFixed32(out, MaskCrc(Crc32c(0, block.data(), block.size())));
}

}  // namespace

// -------------------------------------------------------------- SSTableBuilder

SSTableBuilder::SSTableBuilder(std::string path, uint32_t block_size, int bloom_bits_per_key)
    : path_(std::move(path)), block_size_(block_size) {
  auto file = WritableFile::Create(path_);
  if (!file.ok()) {
    open_status_ = file.status();
  } else {
    file_ = std::move(*file);
  }
  bloom_ = std::make_unique<BloomFilterBuilder>(bloom_bits_per_key);
}

Status SSTableBuilder::Add(std::string_view key, RecType type, std::string_view value) {
  if (!open_status_.ok()) {
    return open_status_;
  }
  if (finished_) {
    return Status::Internal("Add after Finish");
  }
  if (num_entries_ == 0) {
    smallest_.assign(key.data(), key.size());
  } else if (key <= largest_) {
    return Status::Internal("keys not strictly increasing in SSTable");
  }
  largest_.assign(key.data(), key.size());

  PutVarint32(&data_block_, static_cast<uint32_t>(key.size()));
  data_block_.append(key.data(), key.size());
  data_block_.push_back(static_cast<char>(type));
  PutVarint32(&data_block_, static_cast<uint32_t>(value.size()));
  data_block_.append(value.data(), value.size());
  last_key_in_block_.assign(key.data(), key.size());

  bloom_->AddKey(key);
  ++num_entries_;
  if (type == RecType::kTombstone) {
    ++num_tombstones_;
  }
  if (data_block_.size() >= block_size_) {
    return FlushDataBlock();
  }
  return Status::Ok();
}

Status SSTableBuilder::FlushDataBlock() {
  if (data_block_.empty()) {
    return Status::Ok();
  }
  // Index entry: last key of the block -> (offset, size incl. crc).
  uint32_t size_with_crc = static_cast<uint32_t>(data_block_.size() + 4);
  PutVarint32(&index_block_, static_cast<uint32_t>(last_key_in_block_.size()));
  index_block_.append(last_key_in_block_);
  PutFixed64(&index_block_, offset_);
  PutFixed32(&index_block_, size_with_crc);

  std::string out;
  out.reserve(size_with_crc);
  AppendBlockWithCrc(&out, data_block_);
  GADGET_RETURN_IF_ERROR(file_->Append(out));
  offset_ += out.size();
  data_block_.clear();
  return Status::Ok();
}

Status SSTableBuilder::Finish() {
  if (!open_status_.ok()) {
    return open_status_;
  }
  if (finished_) {
    return Status::Ok();
  }
  finished_ = true;
  GADGET_RETURN_IF_ERROR(FlushDataBlock());

  std::string tail;
  uint64_t bloom_off = offset_;
  std::string bloom = bloom_->Finish();
  AppendBlockWithCrc(&tail, bloom);
  uint32_t bloom_sz = static_cast<uint32_t>(bloom.size() + 4);

  uint64_t index_off = bloom_off + bloom_sz;
  AppendBlockWithCrc(&tail, index_block_);
  uint32_t index_sz = static_cast<uint32_t>(index_block_.size() + 4);

  PutFixed64(&tail, index_off);
  PutFixed32(&tail, index_sz);
  PutFixed64(&tail, bloom_off);
  PutFixed32(&tail, bloom_sz);
  PutFixed64(&tail, num_entries_);
  PutFixed64(&tail, kTableMagic);

  GADGET_RETURN_IF_ERROR(file_->Append(tail));
  GADGET_RETURN_IF_ERROR(file_->Sync());
  file_size_ = file_->size();
  return file_->Close();
}

// --------------------------------------------------------------- SSTableReader

SSTableReader::SSTableReader(std::unique_ptr<RandomAccessFile> file, uint64_t file_number,
                             BufferPool* pool)
    : file_(std::move(file)), file_number_(file_number), pool_(pool) {
  if (pool_ != nullptr) {
    pool_file_id_ = pool_->NewFileId();
  }
}

SSTableReader::~SSTableReader() {
  // The reader is the table's handle on the pool: when it goes (table
  // obsoleted by compaction, or the store closed), its blocks go too.
  if (pool_ != nullptr) {
    pool_->EraseFile(pool_file_id_);
  }
}

StatusOr<std::shared_ptr<SSTableReader>> SSTableReader::Open(const std::string& path,
                                                             uint64_t file_number,
                                                             BufferPool* pool) {
  auto file = RandomAccessFile::Open(path);
  if (!file.ok()) {
    return file.status();
  }
  auto reader = std::shared_ptr<SSTableReader>(
      new SSTableReader(std::move(*file), file_number, pool));

  uint64_t fsize = reader->file_->size();
  if (fsize < kFooterSize) {
    return Status::Corruption("table too small: " + path);
  }
  std::string footer;
  GADGET_RETURN_IF_ERROR(reader->file_->Read(fsize - kFooterSize, kFooterSize, &footer));
  const char* p = footer.data();
  uint64_t index_off = DecodeFixed64(p);
  uint32_t index_sz = DecodeFixed32(p + 8);
  uint64_t bloom_off = DecodeFixed64(p + 12);
  uint32_t bloom_sz = DecodeFixed32(p + 20);
  reader->num_entries_ = DecodeFixed64(p + 24);
  if (DecodeFixed64(p + 32) != kTableMagic) {
    return Status::Corruption("bad table magic: " + path);
  }
  // An adversarial footer can claim multi-gigabyte index/bloom regions; bound
  // both against the actual file before allocating anything.
  const uint64_t body = fsize - kFooterSize;
  if (index_sz > body || index_off > body - index_sz || bloom_sz > body ||
      bloom_off > body - bloom_sz) {
    return Status::Corruption("footer region out of bounds: " + path);
  }

  GADGET_RETURN_IF_ERROR(reader->ReadBlockRaw(bloom_off, bloom_sz, &reader->bloom_));

  std::string index;
  GADGET_RETURN_IF_ERROR(reader->ReadBlockRaw(index_off, index_sz, &index));
  const char* ip = index.data();
  const char* iend = ip + index.size();
  while (ip < iend) {
    uint32_t klen = 0;
    ip = GetVarint32(ip, iend, &klen);
    // 64-bit math: `klen + 12` wraps in uint32 for klen near UINT32_MAX and
    // would pass the bounds check with a huge out-of-bounds read to follow.
    if (ip == nullptr || static_cast<uint64_t>(iend - ip) < static_cast<uint64_t>(klen) + 12) {
      return Status::Corruption("bad index entry: " + path);
    }
    IndexEntry e;
    e.last_key.assign(ip, klen);
    ip += klen;
    e.offset = DecodeFixed64(ip);
    e.size = DecodeFixed32(ip + 8);
    ip += 12;
    reader->index_.push_back(std::move(e));
  }
  return reader;
}

Status SSTableReader::ReadBlockRaw(uint64_t offset, uint32_t size, std::string* out) const {
  std::string raw;
  GADGET_RETURN_IF_ERROR(file_->Read(offset, size, &raw));
  GADGET_RETURN_IF_ERROR(VerifyAndStripChecksum(&raw, /*verify=*/true, file_->path()));
  *out = std::move(raw);
  return Status::Ok();
}

Status SSTableReader::VerifyAndStripChecksum(std::string* block, bool verify,
                                             const std::string& path) {
  if (block->size() < 4) {
    return Status::Corruption("block too small in " + path);
  }
  if (verify) {
    uint32_t stored = UnmaskCrc(DecodeFixed32(block->data() + block->size() - 4));
    uint32_t actual = Crc32c(0, block->data(), block->size() - 4);
    if (stored != actual) {
      return Status::Corruption("block checksum mismatch in " + path);
    }
  }
  block->resize(block->size() - 4);
  return Status::Ok();
}

bool SSTableReader::FindDataBlock(std::string_view key, uint64_t* offset, uint32_t* size) const {
  if (!BloomFilterMayContain(bloom_, key)) {
    return false;
  }
  // First block whose last key >= key.
  auto it = std::lower_bound(index_.begin(), index_.end(), key,
                             [](const IndexEntry& e, std::string_view k) {
                               return std::string_view(e.last_key) < k;
                             });
  if (it == index_.end()) {
    return false;
  }
  *offset = it->offset;
  *size = it->size;
  return true;
}

void SSTableReader::BlocksAfter(uint64_t offset, uint32_t n,
                                std::vector<std::pair<uint64_t, uint32_t>>* out) const {
  auto it = std::lower_bound(
      index_.begin(), index_.end(), offset,
      [](const IndexEntry& e, uint64_t off) { return e.offset < off; });
  if (it == index_.end() || it->offset != offset) {
    return;
  }
  for (++it; it != index_.end() && n > 0; ++it, --n) {
    out->emplace_back(it->offset, it->size);
  }
}

PinnedBlock SSTableReader::CacheLookup(uint64_t offset) {
  return pool_ != nullptr ? pool_->Lookup(pool_file_id_, offset) : PinnedBlock();
}

PinnedBlock SSTableReader::CacheInsert(uint64_t offset, std::string block) {
  return pool_ != nullptr ? pool_->InsertBlock(pool_file_id_, offset, std::move(block))
                          : PinnedBlock();
}

StatusOr<PinnedBlock> SSTableReader::ReadDataBlock(uint64_t offset, uint32_t size,
                                                   const ReadOptions& options,
                                                   std::string* uncached) {
  if (pool_ == nullptr) {
    GADGET_RETURN_IF_ERROR(ReadBlockRaw(offset, size, uncached));
    return PinnedBlock();
  }
  if (PinnedBlock h = pool_->Lookup(pool_file_id_, offset)) {
    return h;
  }
  // Miss: fetch the block — and, under readahead, the following blocks of
  // this table that are not cached yet — as one I/O wave.
  std::vector<std::pair<uint64_t, uint32_t>> want;
  want.emplace_back(offset, size);
  if (options.fill_cache && options.readahead_blocks > 0) {
    BlocksAfter(offset, options.readahead_blocks, &want);
  }
  std::vector<IoRead> ios(want.size());
  std::vector<IoRead*> ptrs;
  ptrs.reserve(want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ios[i].fd = file_->fd();
    ios[i].offset = want[i].first;
    ios[i].length = want[i].second;
    ptrs.push_back(&ios[i]);
  }
  pool_->io().ReadBatch(ptrs);
  GADGET_RETURN_IF_ERROR(ios[0].status);
  GADGET_RETURN_IF_ERROR(
      VerifyAndStripChecksum(&ios[0].out, options.verify_checksums, file_->path()));
  // Readahead completions are best-effort: a bad speculative block is simply
  // not cached (a future direct read will surface the error).
  for (size_t i = 1; i < ios.size(); ++i) {
    if (!ios[i].status.ok() ||
        !VerifyAndStripChecksum(&ios[i].out, options.verify_checksums, file_->path()).ok()) {
      continue;
    }
    PinnedBlock ra = pool_->InsertBlock(pool_file_id_, want[i].first, std::move(ios[i].out));
    ra.Release();
  }
  if (options.fill_cache) {
    return pool_->InsertBlock(pool_file_id_, offset, std::move(ios[0].out));
  }
  *uncached = std::move(ios[0].out);
  return PinnedBlock();
}

StatusOr<LookupState> SSTableReader::SearchBlock(std::string_view block, std::string_view key,
                                                 std::string* value,
                                                 std::vector<std::string>* operands,
                                                 const std::string& path) {
  const char* p = block.data();
  const char* end = p + block.size();
  while (p < end) {
    uint32_t klen = 0;
    p = GetVarint32(p, end, &klen);
    if (p == nullptr || static_cast<uint64_t>(end - p) < static_cast<uint64_t>(klen) + 1) {
      return Status::Corruption("bad data entry in " + path);
    }
    std::string_view k(p, klen);
    p += klen;
    RecType type = static_cast<RecType>(*p++);
    uint32_t vlen = 0;
    p = GetVarint32(p, end, &vlen);
    if (p == nullptr || static_cast<size_t>(end - p) < vlen) {
      return Status::Corruption("bad data value in " + path);
    }
    std::string_view v(p, vlen);
    p += vlen;
    if (k == key) {
      switch (type) {
        case RecType::kTombstone:
          return LookupState::kDeleted;
        case RecType::kValue:
          value->assign(v.data(), v.size());
          return LookupState::kFound;
        case RecType::kMergeStack: {
          if (!DecodeMergeStack(v, operands)) {
            return Status::Corruption("bad merge stack in " + path);
          }
          return LookupState::kMergePartial;
        }
      }
    }
    if (k > key) {
      return LookupState::kNotFound;
    }
  }
  return LookupState::kNotFound;
}

StatusOr<LookupState> SSTableReader::Get(std::string_view key, std::string* value,
                                         std::vector<std::string>* operands,
                                         const ReadOptions& options) {
  uint64_t offset = 0;
  uint32_t size = 0;
  if (!FindDataBlock(key, &offset, &size)) {
    return LookupState::kNotFound;
  }
  std::string uncached;
  auto block = ReadDataBlock(offset, size, options, &uncached);
  if (!block.ok()) {
    return block.status();
  }
  if (*block) {
    return SearchBlock(block->data(), key, value, operands, file_->path());
  }
  return SearchBlock(uncached, key, value, operands, file_->path());
}

Status SSTableReader::ForEach(
    const std::function<void(std::string_view, RecType, std::string_view)>& fn) {
  for (const IndexEntry& ie : index_) {
    std::string block;
    GADGET_RETURN_IF_ERROR(ReadBlockRaw(ie.offset, ie.size, &block));
    const char* p = block.data();
    const char* end = p + block.size();
    while (p < end) {
      uint32_t klen = 0;
      p = GetVarint32(p, end, &klen);
      if (p == nullptr || static_cast<uint64_t>(end - p) < static_cast<uint64_t>(klen) + 1) {
        return Status::Corruption("bad data entry in " + file_->path());
      }
      std::string_view k(p, klen);
      p += klen;
      RecType type = static_cast<RecType>(*p++);
      uint32_t vlen = 0;
      p = GetVarint32(p, end, &vlen);
      if (p == nullptr || static_cast<size_t>(end - p) < vlen) {
        return Status::Corruption("bad data value in " + file_->path());
      }
      fn(k, type, std::string_view(p, vlen));
      p += vlen;
    }
  }
  return Status::Ok();
}

// -------------------------------------------------------------- SSTableIterator

SSTableIterator::SSTableIterator(std::shared_ptr<SSTableReader> reader)
    : reader_(std::move(reader)) {
  LoadBlock();
  ParseEntry();
}

void SSTableIterator::LoadBlock() {
  valid_ = false;
  while (block_index_ < reader_->index_.size()) {
    const auto& ie = reader_->index_[block_index_];
    Status s = reader_->ReadBlockRaw(ie.offset, ie.size, &block_);
    if (!s.ok()) {
      status_ = s;
      return;
    }
    ++block_index_;
    if (!block_.empty()) {
      pos_ = block_.data();
      end_ = block_.data() + block_.size();
      valid_ = true;
      return;
    }
  }
  pos_ = end_ = nullptr;
}

void SSTableIterator::ParseEntry() {
  if (!valid_ || pos_ == nullptr) {
    valid_ = false;
    return;
  }
  uint32_t klen = 0;
  pos_ = GetVarint32(pos_, end_, &klen);
  if (pos_ == nullptr || static_cast<uint64_t>(end_ - pos_) < static_cast<uint64_t>(klen) + 1) {
    status_ = Status::Corruption("bad iterator entry");
    valid_ = false;
    return;
  }
  key_ = std::string_view(pos_, klen);
  pos_ += klen;
  type_ = static_cast<RecType>(*pos_++);
  uint32_t vlen = 0;
  pos_ = GetVarint32(pos_, end_, &vlen);
  if (pos_ == nullptr || static_cast<size_t>(end_ - pos_) < vlen) {
    status_ = Status::Corruption("bad iterator value");
    valid_ = false;
    return;
  }
  value_ = std::string_view(pos_, vlen);
  pos_ += vlen;
}

void SSTableIterator::Next() {
  if (!valid_) {
    return;
  }
  if (pos_ >= end_) {
    LoadBlock();
  }
  ParseEntry();
}

}  // namespace gadget
