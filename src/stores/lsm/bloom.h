// Bloom filter for SSTables: double hashing (Kirsch-Mitzenmacher) over the
// 64-bit key hash, k derived from bits-per-key.
#ifndef GADGET_STORES_LSM_BLOOM_H_
#define GADGET_STORES_LSM_BLOOM_H_

#include <string>
#include <string_view>
#include <vector>

namespace gadget {

class BloomFilterBuilder {
 public:
  explicit BloomFilterBuilder(int bits_per_key);

  void AddKey(std::string_view key);

  // Serializes the filter (bit array + k byte).
  std::string Finish();

 private:
  int bits_per_key_;
  std::vector<uint64_t> key_hashes_;
};

// Returns true if the serialized filter may contain the key (false = definitely not).
bool BloomFilterMayContain(std::string_view filter, std::string_view key);

}  // namespace gadget

#endif  // GADGET_STORES_LSM_BLOOM_H_
