// Immutable snapshots of the LSM file layout (leveldb-style versions).
//
// A Version is a copy-on-write array of levels; readers take a shared_ptr
// snapshot under the store mutex and then read SSTables lock-free. FileMeta
// unlinks its file on destruction once marked obsolete, so snapshots keep
// compacted-away files alive exactly as long as needed.
#ifndef GADGET_STORES_LSM_VERSION_H_
#define GADGET_STORES_LSM_VERSION_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/stores/lsm/sstable.h"

namespace gadget {

struct FileMeta {
  uint64_t number = 0;
  uint64_t size = 0;
  uint64_t entries = 0;
  uint64_t tombstones = 0;
  uint64_t created_ms = 0;  // steady-clock ms; drives Lethe's delete-aware trigger
  std::string smallest;
  std::string largest;
  std::string path;
  // The reader owns the table's buffer-pool residency: its destructor drops
  // the file's cached blocks, so FileMeta only unlinks the file itself.
  std::shared_ptr<SSTableReader> reader;
  std::atomic<bool> obsolete{false};
  std::atomic<bool> being_compacted{false};

  ~FileMeta();
};

struct Version {
  // levels[0]: overlapping files, oldest first (search back-to-front).
  // levels[1..]: disjoint ranges, sorted by smallest key.
  std::vector<std::vector<std::shared_ptr<FileMeta>>> levels;

  explicit Version(int num_levels) : levels(static_cast<size_t>(num_levels)) {}

  uint64_t LevelBytes(int level) const {
    uint64_t total = 0;
    for (const auto& f : levels[static_cast<size_t>(level)]) {
      total += f->size;
    }
    return total;
  }

  uint64_t TotalFiles() const {
    uint64_t n = 0;
    for (const auto& level : levels) {
      n += level.size();
    }
    return n;
  }
};

// Manifest persistence: a text file rewritten atomically after every flush
// and compaction.
struct ManifestData {
  uint64_t next_file_number = 1;
  // Live (unflushed) WAL generations, oldest first: one per sealed memtable
  // still waiting in the immutable queue plus the active memtable's log.
  // Recovery replays exactly these files in this order; a WAL file on disk
  // but absent from this list is already flushed (crash between manifest
  // persist and file removal) and must NOT be replayed, or stale records
  // would shadow newer flushed data. Serialized as one "wal N" line per
  // generation — a pre-pipeline manifest with its single "wal N" line loads
  // as a list of one (backward compatible).
  std::vector<uint64_t> wal_numbers;
  // (level, meta) pairs; readers are not opened by Load.
  struct FileRecord {
    int level;
    uint64_t number;
    uint64_t size;
    uint64_t entries;
    uint64_t tombstones;
    uint64_t created_ms;
    std::string smallest;
    std::string largest;
  };
  std::vector<FileRecord> files;
};

Status SaveManifest(const std::string& dir, const ManifestData& data);
// NotFound if no manifest exists (fresh database).
StatusOr<ManifestData> LoadManifest(const std::string& dir);

}  // namespace gadget

#endif  // GADGET_STORES_LSM_VERSION_H_
