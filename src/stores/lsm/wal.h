// Write-ahead log. One log file per memtable generation; replayed on open,
// deleted after the corresponding memtable flushes.
//
// Record framing: fixed32 masked-crc(payload) | varint32 len | payload
//
// Two payload formats share the framing, distinguished by the first byte:
//   v1 (single op):  type byte (RecType 0..2) | varint32 klen | key |
//                    varint32 vlen | value
//   v2 (group commit, kBatchRecordTag): tag byte | varint32 count |
//                    count x (type byte | varint32 klen | key |
//                             varint32 vlen | value)
// A v2 record carries an entire WriteBatch — or a whole group of concurrent
// writers' operations (cross-writer group commit) — under ONE crc and (when
// syncing) ONE fsync. Because the crc covers the whole payload, a partially
// synced batch record fails verification and replay stops cleanly before
// applying any of its entries: batches/groups are all-or-nothing on recovery,
// which is safe because no writer in the group has been acknowledged until
// the record is durable. Pre-v2 log files contain only v1 records and replay
// unchanged (backward compatible).
//
// A torn tail (partial final record after a crash) stops replay cleanly.
#ifndef GADGET_STORES_LSM_WAL_H_
#define GADGET_STORES_LSM_WAL_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/file_util.h"
#include "src/common/status.h"
#include "src/stores/kvstore.h"
#include "src/stores/lsm/format.h"

namespace gadget {

// First payload byte of a v2 group-commit record. RecType occupies 0..2, so
// any value outside that range works; 3 is the next code point.
inline constexpr uint8_t kBatchRecordTag = 3;

class WalWriter {
 public:
  static StatusOr<std::unique_ptr<WalWriter>> Create(const std::string& path);

  Status Append(RecType type, std::string_view key, std::string_view value, bool sync);

  // Appends the whole batch as one v2 record: one crc, one buffered write,
  // one fsync when `sync`. Batch ops map kPut -> kValue, kMerge ->
  // kMergeStack (single raw operand, same convention as Append), kDelete ->
  // kTombstone.
  Status AppendBatch(const WriteBatch& batch, bool sync);

  // One logical operation inside a cross-writer commit group. Views point
  // into the enqueued writers' storage, which stays alive until the group
  // leader signals completion.
  struct GroupOp {
    RecType type;
    std::string_view key;
    std::string_view value;
  };
  // Appends the whole group as one v2 record: one crc, one buffered write,
  // one fsync when `sync` — the cross-writer group-commit path.
  Status AppendGroup(const std::vector<GroupOp>& ops, bool sync);

  Status Close();

  // Counters are atomics so StoreStats snapshots can read them while the
  // group-commit leader appends with the store mutex released.
  uint64_t size() const { return bytes_.load(std::memory_order_relaxed); }
  // fdatasync calls issued by this log generation (observability counters;
  // the store folds them into StoreStats::wal_fsyncs across rotations).
  uint64_t fsyncs() const { return fsyncs_.load(std::memory_order_relaxed); }

 private:
  explicit WalWriter(std::unique_ptr<WritableFile> file) : file_(std::move(file)) {}

  Status AppendPayload(bool sync);

  std::unique_ptr<WritableFile> file_;
  std::string scratch_;
  std::string payload_;
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> fsyncs_{0};
};

// Replays records until EOF or the first corrupt/torn record, invoking `fn`
// once per logical operation (v2 batch records fan out to one call per
// entry). Returns the number of operations applied.
StatusOr<uint64_t> ReplayWal(
    const std::string& path,
    const std::function<void(RecType type, std::string_view key, std::string_view value)>& fn);

}  // namespace gadget

#endif  // GADGET_STORES_LSM_WAL_H_
