// Write-ahead log. One log file per memtable generation; replayed on open,
// deleted after the corresponding memtable flushes.
//
// Record: fixed32 masked-crc(payload) | varint32 len | payload
// Payload: type byte (RecType) | varint32 klen | key | varint32 vlen | value
// A torn tail (partial final record after a crash) stops replay cleanly.
#ifndef GADGET_STORES_LSM_WAL_H_
#define GADGET_STORES_LSM_WAL_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/file_util.h"
#include "src/common/status.h"
#include "src/stores/lsm/format.h"

namespace gadget {

class WalWriter {
 public:
  static StatusOr<std::unique_ptr<WalWriter>> Create(const std::string& path);

  Status Append(RecType type, std::string_view key, std::string_view value, bool sync);
  Status Close();

  uint64_t size() const { return file_->size(); }

 private:
  explicit WalWriter(std::unique_ptr<WritableFile> file) : file_(std::move(file)) {}

  std::unique_ptr<WritableFile> file_;
  std::string scratch_;
};

// Replays records until EOF or the first corrupt/torn record. Returns the
// number of records applied.
StatusOr<uint64_t> ReplayWal(
    const std::string& path,
    const std::function<void(RecType type, std::string_view key, std::string_view value)>& fn);

}  // namespace gadget

#endif  // GADGET_STORES_LSM_WAL_H_
