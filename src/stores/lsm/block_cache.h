// Sharded LRU block cache keyed by (file_number, block_offset). Cached
// blocks are immutable shared_ptr<string>, so readers never copy.
#ifndef GADGET_STORES_LSM_BLOCK_CACHE_H_
#define GADGET_STORES_LSM_BLOCK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace gadget {

class BlockCache {
 public:
  explicit BlockCache(uint64_t capacity_bytes);

  using BlockHandle = std::shared_ptr<const std::string>;

  // Returns nullptr on miss.
  BlockHandle Lookup(uint64_t file_number, uint64_t offset);

  // Inserts (replacing any existing entry) and returns the cached handle.
  BlockHandle Insert(uint64_t file_number, uint64_t offset, std::string block);

  // Drops all blocks belonging to a deleted file.
  void EraseFile(uint64_t file_number);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }

 private:
  static constexpr int kShards = 8;

  struct Key {
    uint64_t file;
    uint64_t offset;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(k.file * 0x9e3779b97f4a7c15ULL ^ (k.offset + 0x517cc1b7));
    }
  };

  struct Shard {
    Mutex mu;
    // LRU list: front = most recent. Map values point into the list.
    struct Entry {
      Key key;
      BlockHandle block;
    };
    std::list<Entry> lru GUARDED_BY(mu);
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map GUARDED_BY(mu);
    uint64_t bytes GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const Key& k) { return shards_[KeyHash{}(k) % kShards]; }
  void EvictLocked(Shard& shard) REQUIRES(shard.mu);

  uint64_t capacity_per_shard_;
  Shard shards_[kShards];
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace gadget

#endif  // GADGET_STORES_LSM_BLOCK_CACHE_H_
