// Tuning knobs for the LSM engine. Defaults follow the paper's RocksDB
// configuration (§6: two 128MB memtables, 64MB block cache) scaled down 8x so
// the full benchmark suite runs on a laptop; ratios are preserved. Benches
// can restore paper-scale budgets via these options.
#ifndef GADGET_STORES_LSM_OPTIONS_H_
#define GADGET_STORES_LSM_OPTIONS_H_

#include <cstdint>

namespace gadget {

struct LsmOptions {
  // Memtable budget: writes rotate between up to `max_write_buffers` buffers
  // of `write_buffer_size` bytes each (paper: 2 x 128MB; scaled: 2 x 16MB).
  uint64_t write_buffer_size = 16ull << 20;
  int max_write_buffers = 2;

  // Write pipeline (DESIGN.md §5e). A full memtable is sealed onto a bounded
  // queue of immutables and flushed to L0 by a dedicated flusher thread, so
  // writers never do SSTable I/O inline. 0 makes every rotation synchronous
  // (the writer waits for the flusher to drain before continuing — the
  // closest analogue of the old inline-flush behavior).
  int max_immutable_memtables = 2;

  // Maximum parallel subcompactions per compaction job: the input key range
  // is split into up to this many disjoint sub-ranges (at input-file
  // boundaries) merged concurrently. 1 = fully serial compaction.
  int compaction_threads = 2;

  // Block caching is no longer per-store: data blocks live in the shared
  // BufferPool passed to LsmStore::Open (sized by StoreOptions::buffer_pool).

  uint32_t block_size = 4096;
  int bloom_bits_per_key = 10;

  // Leveled compaction shape.
  int l0_compaction_trigger = 4;    // # L0 files that triggers L0->L1
  int l0_slowdown_limit = 8;        // writers sleep briefly above this many L0 files
  int l0_stall_limit = 12;          // writer stalls above this many L0 files
  uint64_t max_bytes_level_base = 32ull << 20;  // L1 target size
  double level_size_multiplier = 10.0;
  uint64_t target_file_size = 4ull << 20;
  int num_levels = 6;

  // Durability: fsync WAL on every write (off by default, like RocksDB's
  // default WriteOptions). With the cross-writer group commit, one fdatasync
  // covers every writer in the committing group.
  bool sync_writes = false;

  // Lethe mode (§6: "we further set the Lethe delete threshold to 10s"):
  // SSTables holding tombstones older than delete_persistence_ms are
  // force-compacted so deleted space is reclaimed promptly.
  bool delete_aware = false;
  uint64_t delete_persistence_ms = 10'000;
};

}  // namespace gadget

#endif  // GADGET_STORES_LSM_OPTIONS_H_
