#include "src/stores/lsm/bloom.h"

#include <algorithm>

#include "src/common/hash.h"

namespace gadget {
namespace {

inline uint32_t NumProbes(int bits_per_key) {
  // k = ln(2) * bits/key, clamped to [1, 30].
  int k = static_cast<int>(bits_per_key * 0.69);
  return static_cast<uint32_t>(std::clamp(k, 1, 30));
}

}  // namespace

BloomFilterBuilder::BloomFilterBuilder(int bits_per_key) : bits_per_key_(bits_per_key) {}

void BloomFilterBuilder::AddKey(std::string_view key) {
  key_hashes_.push_back(Hash64(key, /*seed=*/0xb1003));
}

std::string BloomFilterBuilder::Finish() {
  size_t bits = std::max<size_t>(64, key_hashes_.size() * static_cast<size_t>(bits_per_key_));
  size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  std::string filter(bytes, '\0');
  uint32_t k = NumProbes(bits_per_key_);
  for (uint64_t h : key_hashes_) {
    uint64_t h1 = h;
    uint64_t h2 = (h >> 32) | (h << 32);
    for (uint32_t i = 0; i < k; ++i) {
      uint64_t bit = (h1 + i * h2) % bits;
      filter[bit / 8] |= static_cast<char>(1 << (bit % 8));
    }
  }
  filter.push_back(static_cast<char>(k));
  return filter;
}

bool BloomFilterMayContain(std::string_view filter, std::string_view key) {
  if (filter.size() < 2) {
    return true;  // degenerate filter: be safe
  }
  uint32_t k = static_cast<uint8_t>(filter.back());
  if (k == 0 || k > 30) {
    return true;
  }
  size_t bits = (filter.size() - 1) * 8;
  uint64_t h = Hash64(key, /*seed=*/0xb1003);
  uint64_t h1 = h;
  uint64_t h2 = (h >> 32) | (h << 32);
  for (uint32_t i = 0; i < k; ++i) {
    uint64_t bit = (h1 + i * h2) % bits;
    if ((filter[bit / 8] & (1 << (bit % 8))) == 0) {
      return false;
    }
  }
  return true;
}

}  // namespace gadget
