#include "src/stores/lsm/wal.h"

#include "src/common/coding.h"
#include "src/common/crc32c.h"

namespace gadget {

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Create(const std::string& path) {
  auto file = WritableFile::Create(path);
  if (!file.ok()) {
    return file.status();
  }
  return std::unique_ptr<WalWriter>(new WalWriter(std::move(*file)));
}

Status WalWriter::Append(RecType type, std::string_view key, std::string_view value, bool sync) {
  scratch_.clear();
  std::string payload;
  payload.reserve(key.size() + value.size() + 12);
  payload.push_back(static_cast<char>(type));
  PutVarint32(&payload, static_cast<uint32_t>(key.size()));
  payload.append(key.data(), key.size());
  PutVarint32(&payload, static_cast<uint32_t>(value.size()));
  payload.append(value.data(), value.size());

  PutFixed32(&scratch_, MaskCrc(Crc32c(0, payload.data(), payload.size())));
  PutVarint32(&scratch_, static_cast<uint32_t>(payload.size()));
  scratch_ += payload;
  GADGET_RETURN_IF_ERROR(file_->Append(scratch_));
  if (sync) {
    return file_->Sync();
  }
  // WAL durability without per-record fsync still requires the data to reach
  // the OS promptly so a process crash (not power loss) cannot lose it.
  return file_->Flush();
}

Status WalWriter::Close() { return file_->Close(); }

StatusOr<uint64_t> ReplayWal(
    const std::string& path,
    const std::function<void(RecType, std::string_view, std::string_view)>& fn) {
  std::string data;
  GADGET_RETURN_IF_ERROR(ReadFileToString(path, &data));
  const char* p = data.data();
  const char* end = p + data.size();
  uint64_t applied = 0;
  while (p + 5 <= end) {
    uint32_t stored_crc = UnmaskCrc(DecodeFixed32(p));
    const char* q = p + 4;
    uint32_t len = 0;
    q = GetVarint32(q, end, &len);
    if (q == nullptr || static_cast<size_t>(end - q) < len) {
      break;  // torn tail
    }
    if (Crc32c(0, q, len) != stored_crc) {
      break;  // torn/corrupt record; stop replay
    }
    const char* payload = q;
    const char* plimit = q + len;
    RecType type = static_cast<RecType>(*payload++);
    uint32_t klen = 0;
    payload = GetVarint32(payload, plimit, &klen);
    if (payload == nullptr || static_cast<size_t>(plimit - payload) < klen) {
      break;
    }
    std::string_view key(payload, klen);
    payload += klen;
    uint32_t vlen = 0;
    payload = GetVarint32(payload, plimit, &vlen);
    if (payload == nullptr || static_cast<size_t>(plimit - payload) < vlen) {
      break;
    }
    std::string_view value(payload, vlen);
    fn(type, key, value);
    ++applied;
    p = plimit;
  }
  return applied;
}

}  // namespace gadget
