#include "src/stores/lsm/wal.h"

#include "src/common/coding.h"
#include "src/common/crc32c.h"

namespace gadget {
namespace {

void PutOp(std::string* payload, RecType type, std::string_view key, std::string_view value) {
  payload->push_back(static_cast<char>(type));
  PutVarint32(payload, static_cast<uint32_t>(key.size()));
  payload->append(key.data(), key.size());
  PutVarint32(payload, static_cast<uint32_t>(value.size()));
  payload->append(value.data(), value.size());
}

RecType RecTypeFor(WriteBatch::Op op) {
  switch (op) {
    case WriteBatch::Op::kPut:
      return RecType::kValue;
    case WriteBatch::Op::kMerge:
      return RecType::kMergeStack;
    case WriteBatch::Op::kDelete:
      return RecType::kTombstone;
  }
  return RecType::kValue;
}

// Decodes `type | varint klen | key | varint vlen | value` from [*pp, limit).
// Advances *pp past the op on success.
bool GetOp(const char** pp, const char* limit, RecType* type, std::string_view* key,
           std::string_view* value) {
  const char* p = *pp;
  if (p >= limit) {
    return false;
  }
  uint8_t raw = static_cast<uint8_t>(*p++);
  if (raw > static_cast<uint8_t>(RecType::kMergeStack)) {
    return false;
  }
  *type = static_cast<RecType>(raw);
  uint32_t klen = 0;
  p = GetVarint32(p, limit, &klen);
  if (p == nullptr || static_cast<size_t>(limit - p) < klen) {
    return false;
  }
  *key = std::string_view(p, klen);
  p += klen;
  uint32_t vlen = 0;
  p = GetVarint32(p, limit, &vlen);
  if (p == nullptr || static_cast<size_t>(limit - p) < vlen) {
    return false;
  }
  *value = std::string_view(p, vlen);
  *pp = p + vlen;
  return true;
}

}  // namespace

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Create(const std::string& path) {
  auto file = WritableFile::Create(path);
  if (!file.ok()) {
    return file.status();
  }
  return std::unique_ptr<WalWriter>(new WalWriter(std::move(*file)));
}

Status WalWriter::AppendPayload(bool sync) {
  scratch_.clear();
  PutFixed32(&scratch_, MaskCrc(Crc32c(0, payload_.data(), payload_.size())));
  PutVarint32(&scratch_, static_cast<uint32_t>(payload_.size()));
  scratch_ += payload_;
  GADGET_RETURN_IF_ERROR(file_->Append(scratch_));
  bytes_.fetch_add(scratch_.size(), std::memory_order_relaxed);
  if (sync) {
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
    return file_->Sync();
  }
  // WAL durability without per-record fsync still requires the data to reach
  // the OS promptly so a process crash (not power loss) cannot lose it.
  return file_->Flush();
}

Status WalWriter::Append(RecType type, std::string_view key, std::string_view value, bool sync) {
  payload_.clear();
  payload_.reserve(key.size() + value.size() + 12);
  PutOp(&payload_, type, key, value);
  return AppendPayload(sync);
}

Status WalWriter::AppendBatch(const WriteBatch& batch, bool sync) {
  if (batch.empty()) {
    return Status::Ok();
  }
  payload_.clear();
  payload_.push_back(static_cast<char>(kBatchRecordTag));
  PutVarint32(&payload_, static_cast<uint32_t>(batch.size()));
  for (size_t i = 0; i < batch.size(); ++i) {
    const WriteBatch::Entry& e = batch.entry(i);
    PutOp(&payload_, RecTypeFor(e.op), e.key, e.value);
  }
  return AppendPayload(sync);
}

Status WalWriter::AppendGroup(const std::vector<GroupOp>& ops, bool sync) {
  if (ops.empty()) {
    return Status::Ok();
  }
  if (ops.size() == 1) {
    // A group of one is just a v1 record — no tag/count framing overhead.
    return Append(ops[0].type, ops[0].key, ops[0].value, sync);
  }
  payload_.clear();
  payload_.push_back(static_cast<char>(kBatchRecordTag));
  PutVarint32(&payload_, static_cast<uint32_t>(ops.size()));
  for (const GroupOp& op : ops) {
    PutOp(&payload_, op.type, op.key, op.value);
  }
  return AppendPayload(sync);
}

Status WalWriter::Close() { return file_->Close(); }

StatusOr<uint64_t> ReplayWal(
    const std::string& path,
    const std::function<void(RecType, std::string_view, std::string_view)>& fn) {
  std::string data;
  GADGET_RETURN_IF_ERROR(ReadFileToString(path, &data));
  const char* p = data.data();
  const char* end = p + data.size();
  uint64_t applied = 0;
  while (p + 5 <= end) {
    uint32_t stored_crc = UnmaskCrc(DecodeFixed32(p));
    const char* q = p + 4;
    uint32_t len = 0;
    q = GetVarint32(q, end, &len);
    if (q == nullptr || static_cast<size_t>(end - q) < len) {
      break;  // torn tail
    }
    if (Crc32c(0, q, len) != stored_crc) {
      break;  // torn/corrupt record; stop replay
    }
    const char* payload = q;
    const char* plimit = q + len;
    if (payload < plimit && static_cast<uint8_t>(*payload) == kBatchRecordTag) {
      // v2 group-commit record: the crc already vouched for the whole batch,
      // so inner decode failures mean a writer bug, not a torn write — stop.
      ++payload;
      uint32_t count = 0;
      payload = GetVarint32(payload, plimit, &count);
      if (payload == nullptr) {
        break;
      }
      bool bad = false;
      for (uint32_t i = 0; i < count; ++i) {
        RecType type;
        std::string_view key, value;
        if (!GetOp(&payload, plimit, &type, &key, &value)) {
          bad = true;
          break;
        }
        fn(type, key, value);
        ++applied;
      }
      if (bad) {
        break;
      }
    } else {
      RecType type;
      std::string_view key, value;
      if (!GetOp(&payload, plimit, &type, &key, &value)) {
        break;
      }
      fn(type, key, value);
      ++applied;
    }
    p = plimit;
  }
  return applied;
}

}  // namespace gadget
