#include "src/stores/lsm/version.h"

#include <cstdio>
#include <sstream>

#include "src/common/file_util.h"

namespace gadget {
namespace {

std::string ToHex(std::string_view s) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(s.size() * 2);
  for (unsigned char c : s) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out.empty() ? "-" : out;
}

std::string FromHex(std::string_view s) {
  if (s == "-") {
    return "";
  }
  auto nib = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return 0;
  };
  std::string out;
  out.reserve(s.size() / 2);
  for (size_t i = 0; i + 1 < s.size(); i += 2) {
    out.push_back(static_cast<char>((nib(s[i]) << 4) | nib(s[i + 1])));
  }
  return out;
}

}  // namespace

FileMeta::~FileMeta() {
  if (obsolete.load(std::memory_order_acquire)) {
    // status intentionally ignored: deleting an obsolete SSTable is garbage
    // collection; a leftover file is swept on the next recovery. The reader
    // member (destroyed after this body) evicts the table's cached blocks.
    (void)RemoveFile(path);
  }
}

Status SaveManifest(const std::string& dir, const ManifestData& data) {
  std::ostringstream out;
  out << "gadget-lsm 1\n";
  out << "next_file " << data.next_file_number << "\n";
  for (uint64_t wal : data.wal_numbers) {
    out << "wal " << wal << "\n";
  }
  for (const auto& f : data.files) {
    out << "file " << f.level << " " << f.number << " " << f.size << " " << f.entries << " "
        << f.tombstones << " " << f.created_ms << " " << ToHex(f.smallest) << " "
        << ToHex(f.largest) << "\n";
  }
  const std::string tmp = dir + "/MANIFEST.tmp";
  GADGET_RETURN_IF_ERROR(WriteStringToFile(tmp, out.str(), /*sync=*/true));
  GADGET_RETURN_IF_ERROR(RenameFile(tmp, dir + "/MANIFEST"));
  // The rename only becomes crash-durable once the directory entry is synced;
  // without this a crash can resurrect the previous manifest, whose listed
  // WAL generations may already be deleted — losing acknowledged writes.
  // Callers rely on SaveManifest returning only after the new manifest is the
  // one recovery will see (DESIGN.md "Durability contract").
  return SyncDir(dir);
}

StatusOr<ManifestData> LoadManifest(const std::string& dir) {
  const std::string path = dir + "/MANIFEST";
  if (!FileExists(path)) {
    return Status::NotFound("no manifest in " + dir);
  }
  std::string text;
  GADGET_RETURN_IF_ERROR(ReadFileToString(path, &text));
  std::istringstream in(text);
  std::string tag;
  int version = 0;
  in >> tag >> version;
  if (tag != "gadget-lsm" || version != 1) {
    return Status::Corruption("bad manifest header in " + dir);
  }
  ManifestData data;
  while (in >> tag) {
    if (tag == "next_file") {
      in >> data.next_file_number;
    } else if (tag == "wal") {
      uint64_t wal = 0;
      in >> wal;
      data.wal_numbers.push_back(wal);
    } else if (tag == "file") {
      ManifestData::FileRecord f;
      std::string smallest_hex, largest_hex;
      in >> f.level >> f.number >> f.size >> f.entries >> f.tombstones >> f.created_ms >>
          smallest_hex >> largest_hex;
      f.smallest = FromHex(smallest_hex);
      f.largest = FromHex(largest_hex);
      data.files.push_back(std::move(f));
    } else {
      return Status::Corruption("unknown manifest tag: " + tag);
    }
    if (in.fail()) {
      return Status::Corruption("malformed manifest in " + dir);
    }
  }
  return data;
}

}  // namespace gadget
