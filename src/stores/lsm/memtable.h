// Sorted in-memory write buffer.
//
// Entries collapse eagerly where legal: Put and Delete supersede everything
// older *within this memtable*, so only the latest base plus subsequent merge
// operands are kept per key. Keys with operands but no base must remain lazy
// (kMergeStack) so older levels supply the base.
#ifndef GADGET_STORES_LSM_MEMTABLE_H_
#define GADGET_STORES_LSM_MEMTABLE_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/stores/lsm/format.h"

namespace gadget {

class MemTable {
 public:
  MemTable() = default;

  void Put(std::string_view key, std::string_view value);
  void Merge(std::string_view key, std::string_view operand);
  void Delete(std::string_view key);

  // Point lookup. On kFound, *value is the fully assembled value from this
  // memtable. On kMergePartial, *operands receives this memtable's operands
  // (oldest-first) and the caller must continue searching older data.
  LookupState Get(std::string_view key, std::string* value,
                  std::vector<std::string>* operands) const;

  // Approximate memory footprint in bytes.
  uint64_t ApproximateBytes() const { return bytes_; }
  bool empty() const { return table_.empty(); }
  size_t num_keys() const { return table_.size(); }

  // Flush support: emits (key, type, serialized value) in key order. The
  // serialized value for kMergeStack is EncodeMergeStack(operands).
  struct FlushRecord {
    std::string_view key;
    RecType type;
    std::string value;
  };
  template <typename Fn>
  void ForEachFlushRecord(Fn&& fn) const {
    for (const auto& [key, entry] : table_) {
      if (!entry.has_base) {
        fn(FlushRecord{key, RecType::kMergeStack, EncodeMergeStack(entry.operands)});
      } else if (entry.base_type == RecType::kTombstone && entry.operands.empty()) {
        fn(FlushRecord{key, RecType::kTombstone, std::string()});
      } else {
        // Base (possibly deleted->empty) plus operands collapses to a full
        // value, which legally shadows all older records.
        std::string_view base;
        if (entry.base_type == RecType::kValue) {
          base = entry.base;
        }
        fn(FlushRecord{key, RecType::kValue, ApplyMerge(base, entry.operands)});
      }
    }
  }

  uint64_t tombstone_count() const { return tombstones_; }

 private:
  struct Entry {
    bool has_base = false;
    RecType base_type = RecType::kValue;
    std::string base;
    std::vector<std::string> operands;  // oldest first
  };

  std::map<std::string, Entry, std::less<>> table_;
  uint64_t bytes_ = 0;
  uint64_t tombstones_ = 0;
};

}  // namespace gadget

#endif  // GADGET_STORES_LSM_MEMTABLE_H_
