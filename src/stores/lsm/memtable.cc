#include "src/stores/lsm/memtable.h"

namespace gadget {

void MemTable::Put(std::string_view key, std::string_view value) {
  auto it = table_.find(key);
  if (it == table_.end()) {
    it = table_.emplace(std::string(key), Entry{}).first;
    bytes_ += key.size() + 32;
  } else {
    bytes_ -= it->second.base.size();
    for (const std::string& op : it->second.operands) {
      bytes_ -= op.size();
    }
    if (it->second.has_base && it->second.base_type == RecType::kTombstone) {
      --tombstones_;
    }
  }
  Entry& e = it->second;
  e.has_base = true;
  e.base_type = RecType::kValue;
  e.base.assign(value.data(), value.size());
  e.operands.clear();
  bytes_ += value.size();
}

void MemTable::Merge(std::string_view key, std::string_view operand) {
  auto it = table_.find(key);
  if (it == table_.end()) {
    it = table_.emplace(std::string(key), Entry{}).first;
    bytes_ += key.size() + 32;
  }
  it->second.operands.emplace_back(operand);
  bytes_ += operand.size() + 8;
}

void MemTable::Delete(std::string_view key) {
  auto it = table_.find(key);
  if (it == table_.end()) {
    it = table_.emplace(std::string(key), Entry{}).first;
    bytes_ += key.size() + 32;
  } else {
    bytes_ -= it->second.base.size();
    for (const std::string& op : it->second.operands) {
      bytes_ -= op.size();
    }
    if (it->second.has_base && it->second.base_type == RecType::kTombstone) {
      --tombstones_;
    }
  }
  Entry& e = it->second;
  e.has_base = true;
  e.base_type = RecType::kTombstone;
  e.base.clear();
  e.operands.clear();
  ++tombstones_;
}

LookupState MemTable::Get(std::string_view key, std::string* value,
                          std::vector<std::string>* operands) const {
  auto it = table_.find(key);
  if (it == table_.end()) {
    return LookupState::kNotFound;
  }
  const Entry& e = it->second;
  if (e.has_base) {
    if (e.base_type == RecType::kTombstone && e.operands.empty()) {
      return LookupState::kDeleted;
    }
    std::string_view base = e.base_type == RecType::kValue ? std::string_view(e.base) : "";
    *value = ApplyMerge(base, e.operands);
    return LookupState::kFound;
  }
  operands->insert(operands->end(), e.operands.begin(), e.operands.end());
  return LookupState::kMergePartial;
}

}  // namespace gadget
