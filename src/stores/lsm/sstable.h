// Block-based sorted table format.
//
// Layout:
//   [data block + crc32]*      entries: varint klen | key | type | varint vlen | value
//   [bloom block + crc32]      BloomFilterBuilder output over all user keys
//   [index block + crc32]      per data block: varint klen | last_key | fixed64 off | fixed32 sz
//   [footer, 40 bytes]         index_off/sz, bloom_off/sz, entry count, magic
//
// Keys appear at most once per table (flush/compaction collapse per key), in
// strictly increasing order. The index and bloom blocks are pinned in memory
// by the reader; data blocks go through the shared BufferPool.
#ifndef GADGET_STORES_LSM_SSTABLE_H_
#define GADGET_STORES_LSM_SSTABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/file_util.h"
#include "src/common/status.h"
#include "src/stores/bufferpool/buffer_pool.h"
#include "src/stores/lsm/bloom.h"
#include "src/stores/lsm/format.h"
#include "src/stores/read_options.h"

namespace gadget {

class SSTableBuilder {
 public:
  // file_number names the file: <dir>/<number>.sst
  SSTableBuilder(std::string path, uint32_t block_size, int bloom_bits_per_key);

  // Keys must be added in strictly increasing order.
  Status Add(std::string_view key, RecType type, std::string_view value);

  // Writes filter/index/footer and syncs. No Add after Finish.
  Status Finish();

  uint64_t num_entries() const { return num_entries_; }
  uint64_t num_tombstones() const { return num_tombstones_; }
  uint64_t file_size() const { return file_size_; }
  const std::string& smallest() const { return smallest_; }
  const std::string& largest() const { return largest_; }

 private:
  Status FlushDataBlock();

  std::string path_;
  uint32_t block_size_;
  std::unique_ptr<WritableFile> file_;
  Status open_status_;

  std::string data_block_;
  std::string index_block_;
  std::string last_key_in_block_;
  std::unique_ptr<BloomFilterBuilder> bloom_;

  uint64_t num_entries_ = 0;
  uint64_t num_tombstones_ = 0;
  uint64_t offset_ = 0;
  uint64_t file_size_ = 0;
  std::string smallest_;
  std::string largest_;
  bool finished_ = false;
};

class SSTableReader {
 public:
  // pool may be nullptr (standalone tooling/tests); the reader then reads
  // uncached. With a pool, the reader claims a pool-global file id at Open
  // and drops its blocks again on destruction.
  static StatusOr<std::shared_ptr<SSTableReader>> Open(const std::string& path,
                                                       uint64_t file_number, BufferPool* pool);
  ~SSTableReader();
  SSTableReader(const SSTableReader&) = delete;
  SSTableReader& operator=(const SSTableReader&) = delete;

  // Point lookup. kNotFound: not in this table. kFound/kDeleted: terminal.
  // kMergePartial: *operands filled (oldest-first).
  StatusOr<LookupState> Get(std::string_view key, std::string* value,
                            std::vector<std::string>* operands,
                            const ReadOptions& options = ReadOptions());

  // Sequential scan of every record, in key order (compaction input).
  Status ForEach(
      const std::function<void(std::string_view key, RecType type, std::string_view value)>& fn);

  // --- async read-path support (the MultiGet wave in LsmStore) ---

  // Locates the data block that may hold `key`. False when the bloom filter
  // or index proves the key absent (no I/O either way).
  bool FindDataBlock(std::string_view key, uint64_t* offset, uint32_t* size) const;

  // Appends (offset, size) of up to `n` data blocks following the block at
  // `offset` — the readahead window.
  void BlocksAfter(uint64_t offset, uint32_t n,
                   std::vector<std::pair<uint64_t, uint32_t>>* out) const;

  // Pool access for externally fetched blocks. Empty handle when poolless.
  PinnedBlock CacheLookup(uint64_t offset);
  PinnedBlock CacheInsert(uint64_t offset, std::string block);

  // Checks and strips the 4-byte CRC trailer in place (`verify` = false
  // strips without checking).
  static Status VerifyAndStripChecksum(std::string* block, bool verify, const std::string& path);

  // Scans one decoded (CRC-stripped) data block for `key`; same contract as
  // Get. `path` is only for error messages.
  static StatusOr<LookupState> SearchBlock(std::string_view block, std::string_view key,
                                           std::string* value,
                                           std::vector<std::string>* operands,
                                           const std::string& path);

  uint64_t num_entries() const { return num_entries_; }
  uint64_t file_number() const { return file_number_; }
  int fd() const { return file_->fd(); }
  const std::string& path() const { return file_->path(); }

  friend class SSTableIterator;

 private:
  SSTableReader(std::unique_ptr<RandomAccessFile> file, uint64_t file_number, BufferPool* pool);

  Status ReadBlockRaw(uint64_t offset, uint32_t size, std::string* out) const;
  // Data block through the pool (sync path; issues readahead per `options`).
  StatusOr<PinnedBlock> ReadDataBlock(uint64_t offset, uint32_t size, const ReadOptions& options,
                                      std::string* uncached);

  std::unique_ptr<RandomAccessFile> file_;
  uint64_t file_number_;
  BufferPool* pool_;
  uint64_t pool_file_id_ = 0;

  struct IndexEntry {
    std::string last_key;
    uint64_t offset;
    uint32_t size;
  };
  std::vector<IndexEntry> index_;
  std::string bloom_;
  uint64_t num_entries_ = 0;
};

// Pull-style sequential iterator over one table (compaction input). Reads
// block-by-block bypassing the cache; O(block) memory.
class SSTableIterator {
 public:
  explicit SSTableIterator(std::shared_ptr<SSTableReader> reader);

  bool Valid() const { return valid_; }
  std::string_view key() const { return key_; }
  RecType type() const { return type_; }
  std::string_view value() const { return value_; }

  // Advances; sets !Valid() at end. Corruption surfaces via status().
  void Next();
  const Status& status() const { return status_; }

 private:
  void LoadBlock();
  void ParseEntry();

  std::shared_ptr<SSTableReader> reader_;
  size_t block_index_ = 0;
  std::string block_;
  const char* pos_ = nullptr;
  const char* end_ = nullptr;
  bool valid_ = false;
  std::string_view key_;
  RecType type_ = RecType::kValue;
  std::string_view value_;
  Status status_;
};

}  // namespace gadget

#endif  // GADGET_STORES_LSM_SSTABLE_H_
