// Internal record representation shared by the memtable, SSTables, WAL and
// compaction.
//
// The engine supports RocksDB-style lazy merge: a merge writes an *operand*
// that is only combined with the base value on read or compaction. The merge
// operator is byte-append (operands concatenate after the base), which is
// exactly what holistic window buckets need (§6.5).
//
// Record types:
//   kTombstone  — key deleted; shadows all older records.
//   kValue      — full value; shadows all older records.
//   kMergeStack — list of merge operands with *no* base yet; a reader must
//                 keep searching older data for the base.
#ifndef GADGET_STORES_LSM_FORMAT_H_
#define GADGET_STORES_LSM_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/coding.h"

namespace gadget {

enum class RecType : uint8_t {
  kTombstone = 0,
  kValue = 1,
  kMergeStack = 2,
};

// Serialization of a merge stack: operands oldest-first, length-prefixed.
inline std::string EncodeMergeStack(const std::vector<std::string>& operands) {
  std::string out;
  for (const std::string& op : operands) {
    PutLengthPrefixed(&out, op);
  }
  return out;
}

// Appends the decoded operands (oldest-first) to *out. Returns false on
// malformed input.
inline bool DecodeMergeStack(std::string_view stack, std::vector<std::string>* out) {
  const char* p = stack.data();
  const char* limit = p + stack.size();
  while (p < limit) {
    std::string_view op;
    p = GetLengthPrefixed(p, limit, &op);
    if (p == nullptr) {
      return false;
    }
    out->emplace_back(op);
  }
  return true;
}

// Applies the byte-append merge operator: base + op1 + op2 + ...
inline std::string ApplyMerge(std::string_view base, const std::vector<std::string>& operands) {
  std::string out(base);
  for (const std::string& op : operands) {
    out += op;
  }
  return out;
}

// Outcome of a point lookup against one layer (memtable or SSTable).
enum class LookupState : uint8_t {
  kNotFound = 0,    // layer has nothing for this key; keep searching
  kFound = 1,       // complete value assembled
  kDeleted = 2,     // tombstone; stop searching, key absent
  kMergePartial = 3,  // operands found, base still missing; keep searching
};

}  // namespace gadget

#endif  // GADGET_STORES_LSM_FORMAT_H_
