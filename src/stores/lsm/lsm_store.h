// LSM-tree key-value store (the project's RocksDB stand-in) with optional
// delete-aware compaction (the Lethe stand-in, enabled via
// LsmOptions::delete_aware).
//
// Architecture (DESIGN.md §5e):
//  * the write path is a pipeline: concurrent writers enqueue on a leveldb-
//    style writer queue and one leader appends the whole group to the WAL as
//    a single record (one crc, one fdatasync — cross-writer group commit),
//    then applies it to the active memtable;
//  * a full memtable is sealed onto a bounded queue of immutables together
//    with its WAL generation number and the writer returns immediately; a
//    dedicated flusher thread drains the queue (oldest first) into L0
//    SSTables, so writers never perform SSTable I/O inline;
//  * a dedicated compaction thread runs leveled compaction (L0->L1 by file
//    count, Ln->Ln+1 by level size; delete-aware force-compaction in Lethe
//    mode), partitioning each job's key range into up to
//    LsmOptions::compaction_threads disjoint sub-ranges merged in parallel
//    and installed as one version edit — a long compaction never blocks a
//    flush;
//  * backpressure is graduated: above l0_slowdown_limit L0 files writers
//    sleep briefly (slowdown tier, slowdown_micros); above l0_stall_limit or
//    with the immutable queue full they block (stall tier, stall_micros);
//  * readers take the store mutex only to probe the memtables (active, then
//    immutables newest-first) and snapshot the Version, then search SSTables
//    lock-free, accumulating lazy merge operands until a base value or
//    tombstone resolves the lookup;
//  * everything on disk is CRC-protected; the manifest is atomically
//    rewritten after every flush/compaction and records the live (unflushed)
//    WAL generations, so recovery replays exactly those, oldest first; a
//    torn WAL tail is tolerated.
#ifndef GADGET_STORES_LSM_LSM_STORE_H_
#define GADGET_STORES_LSM_LSM_STORE_H_

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/stores/bufferpool/buffer_pool.h"
#include "src/stores/kvstore.h"
#include "src/stores/lsm/memtable.h"
#include "src/stores/lsm/options.h"
#include "src/stores/lsm/version.h"
#include "src/stores/lsm/wal.h"

namespace gadget {

class LsmStore : public KVStore {
 public:
  // `pool` is the shared buffer pool data blocks live in; nullptr makes the
  // store create a private default-sized pool (standalone tests/tools).
  static StatusOr<std::unique_ptr<KVStore>> Open(const std::string& dir, const LsmOptions& opts,
                                                 std::shared_ptr<BufferPool> pool = nullptr);
  ~LsmStore() override;

  using KVStore::Get;
  using KVStore::MultiGet;

  Status Put(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value, const ReadOptions& options) override;
  Status Merge(std::string_view key, std::string_view operand) override;
  Status Delete(std::string_view key) override;

  // Batched paths. Write enqueues the whole batch as ONE writer on the
  // group-commit queue (the leader may coalesce it with other writers into a
  // single WAL record); MultiGet probes the memtable layers for every key and
  // snapshots the Version once, then resolves the misses against SSTables
  // asynchronously: every key's block miss joins one batched I/O wave through
  // the pool's IoBackend instead of N serial preads.
  Status Write(const WriteBatch& batch) override;
  Status MultiGet(const std::vector<std::string>& keys, std::vector<std::string>* values,
                  std::vector<Status>* statuses, const ReadOptions& options) override;

  bool supports_merge() const override { return true; }
  // Synchronously persists all buffered writes: drains the immutable queue,
  // then flushes the active memtable inline. Must not be called while the
  // flusher is paused via TEST_PauseFlusher.
  Status Flush() override;
  Status Close() override;

  // Checkpoint: copies the live WAL generations and hard-links the current
  // Version's SSTable set into `dir`, then writes a manifest snapshot.
  // Opening the image runs normal recovery, so the WAL tail captured by the
  // copy is replayed — restore == checkpoint + WAL tail. With
  // options.base_dir set to the previous checkpoint of this store, unchanged
  // SSTables are linked from there instead (incremental; counted in
  // CheckpointInfo::reused).
  StatusOr<CheckpointInfo> Checkpoint(const std::string& dir,
                                      const CheckpointOptions& options) override;

  StoreStats stats() const override;
  std::string name() const override { return opts_.delete_aware ? "lethe" : "lsm"; }

  // Introspection for tests.
  int NumFilesAtLevel(int level) const;
  uint64_t TotalSstBytes() const;
  size_t TEST_NumImmutables() const;
  // Holds the flusher so sealed memtables accumulate deterministically (the
  // crash-recovery tests build multi-generation immutable queues this way).
  // Ignored once Close() begins: close always drains.
  void TEST_PauseFlusher(bool paused);

 private:
  LsmStore(std::string dir, const LsmOptions& opts, std::shared_ptr<BufferPool> pool);

  Status Recover();

  // ------------------------------------------------------------ write path
  // One enqueued write: either a single operation (batch == nullptr; the
  // views alias the caller's arguments, alive until `done`) or a WriteBatch.
  // Fields are written by the committing leader and read by the owning
  // writer, both under mu_ (per-instance annotation is not expressible: the
  // guarding mutex belongs to the store, not the struct).
  struct Writer {
    explicit Writer(Mutex* mu) : cv(mu) {}
    const WriteBatch* batch = nullptr;
    RecType type = RecType::kValue;
    std::string_view key;
    std::string_view value;
    Status status;
    bool done = false;
    CondVar cv;
  };
  // Common Put/Merge/Delete/Write path: enqueue, then either wait for a
  // leader to commit us or become the leader and commit a group.
  Status EnqueueWriter(Writer* w) EXCLUDES(mu_);
  // Leader duties: make room, collect a group, group-commit the WAL (mu_
  // released around the append+sync), apply to the memtable, signal the
  // group. Requires w == writers_.front().
  void CommitGroupLocked(Writer* w) REQUIRES(mu_);
  // Ensures the active memtable can absorb the next group: applies the
  // graduated backpressure tiers (mu_ released around the slowdown sleep)
  // and seals a full memtable onto imm_.
  Status MakeRoomForWriteLocked() REQUIRES(mu_);
  // Seals mem_ (with its WAL generation) onto imm_ and starts a fresh
  // memtable + WAL generation. Requires mem_ non-empty.
  Status RotateMemTableLocked() REQUIRES(mu_);
  void ApplyOpLocked(RecType type, std::string_view key, std::string_view value)
      REQUIRES(mu_);

  // ------------------------------------------------------------- read path
  // Probes active memtable then immutables newest-first. kFound/kDeleted are
  // terminal (*value set for kFound); kNotFound/kMergePartial mean the caller
  // must continue into the SSTables with the accumulated operands in *acc.
  LookupState LookupMemLayersLocked(std::string_view key, std::string* value,
                                    std::vector<std::string>* acc) const REQUIRES(mu_);
  // SSTable half of the serial read path (Get). `acc` carries merge operands
  // already accumulated from newer layers (the memtables). Must be called
  // with no locks held: it does block I/O against the snapshot.
  Status SearchTablesUnlocked(const Version& version, std::string_view key,
                              std::vector<std::string> acc, std::string* value,
                              const ReadOptions& options) EXCLUDES(mu_);
  // Async SSTable half of MultiGet: resolves all pending keys against the
  // snapshot, batching every cache-missed block read of a round into one
  // IoBackend wave. Each entry of `pending` indexes keys/values/statuses.
  struct PendingRead {
    size_t index;
    std::vector<std::string> acc;
  };
  void SearchTablesAsyncUnlocked(const Version& version, const std::vector<std::string>& keys,
                                 std::vector<PendingRead> pending,
                                 std::vector<std::string>* values, std::vector<Status>* statuses,
                                 const ReadOptions& options) EXCLUDES(mu_);

  // ------------------------------------------------------------ flush path
  struct ImmutableMem {
    std::unique_ptr<MemTable> mem;
    uint64_t wal_number = 0;  // the generation whose records this memtable holds
  };
  void FlusherThread();
  // Builds an L0 SSTable from `mem` as file `number` (allocated by the caller
  // under mu_). Takes no locks itself: the flusher builds with mu_ released
  // (sealed memtables are immutable, so concurrent reader probes are safe);
  // the synchronous paths build with mu_ held (why this is not EXCLUDES).
  StatusOr<std::shared_ptr<FileMeta>> BuildTableFromMem(const MemTable& mem, uint64_t number);
  // Synchronous flush of the active memtable (recovery, Flush, Close): build
  // + install inline, rotate the WAL generation. Requires the immutable
  // queue empty (older data must reach L0 first).
  Status FlushActiveMemLocked() REQUIRES(mu_);
  // Installs a built L0 file and persists the manifest.
  Status InstallFlushLocked(std::shared_ptr<FileMeta> meta) REQUIRES(mu_);

  // Persists the current version + live WAL generations.
  Status PersistManifestLocked() REQUIRES(mu_);

  // ------------------------------------------------------- compaction path
  void CompactionThread();
  struct CompactionJob {
    // Inputs ordered newest-first (L0 newest..oldest, then level-n file(s),
    // then level-n+1 overlaps).
    std::vector<std::shared_ptr<FileMeta>> inputs;
    int output_level = 1;
    bool bottommost = false;
  };
  // Returns false if no compaction is needed.
  bool PickCompactionLocked(CompactionJob* job) REQUIRES(mu_);
  // Merges the job's inputs into output files. Partitions the key range into
  // up to opts_.compaction_threads disjoint sub-ranges (split at input-file
  // smallest-key boundaries) and runs them in parallel; outputs are returned
  // in key order across the whole range. Runs with mu_ released.
  Status DoCompaction(const CompactionJob& job, std::vector<std::shared_ptr<FileMeta>>* outputs)
      EXCLUDES(mu_);
  // One subcompaction: merges keys in [begin, end) — an empty `begin` means
  // unbounded below, has_end == false unbounded above.
  Status RunSubcompaction(const CompactionJob& job, std::string_view begin, bool has_end,
                          std::string_view end,
                          std::vector<std::shared_ptr<FileMeta>>* outputs) EXCLUDES(mu_);
  void InstallCompactionLocked(const CompactionJob& job,
                               std::vector<std::shared_ptr<FileMeta>> outputs) REQUIRES(mu_);

  uint64_t MaxBytesForLevel(int level) const;
  static uint64_t NowMs();

  const std::string dir_;
  const LsmOptions opts_;
  // Shared (or private when Open got nullptr) block residency; SSTable
  // readers pin data blocks here and issue batched misses through its
  // IoBackend. Never null after construction.
  const std::shared_ptr<BufferPool> pool_;

  mutable Mutex mu_;
  CondVar work_cv_;   // signals the compaction thread
  CondVar flush_cv_;  // signals the flusher thread
  CondVar stall_cv_;  // wakes stalled writers / drain waiters
  std::unique_ptr<MemTable> mem_ GUARDED_BY(mu_);
  // Sealed memtables, oldest first. The queue (and each entry's unique_ptr)
  // is guarded; the pointed-to memtables are immutable, so the flusher reads
  // them with mu_ released.
  std::deque<ImmutableMem> imm_ GUARDED_BY(mu_);
  // Commit queue; front is the group leader.
  std::deque<Writer*> writers_ GUARDED_BY(mu_);
  // The pointer is guarded; the leader appends to the pointed-to log with mu_
  // released (safe: followers are parked, so exactly one thread writes it).
  std::unique_ptr<WalWriter> wal_ GUARDED_BY(mu_);
  uint64_t wal_number_ GUARDED_BY(mu_) = 0;
  uint64_t next_file_number_ GUARDED_BY(mu_) = 1;
  std::shared_ptr<const Version> current_ GUARDED_BY(mu_);
  // Round-robin pick position per level.
  std::vector<size_t> compact_cursor_ GUARDED_BY(mu_);
  StoreStats stats_ GUARDED_BY(mu_);
  // Bytes returned by gets. Kept outside mu_ so the read path never
  // re-acquires the store lock after it has dropped it to do block I/O.
  mutable std::atomic<uint64_t> read_bytes_{0};
  Status bg_error_ GUARDED_BY(mu_);
  bool closing_ GUARDED_BY(mu_) = false;
  bool flusher_paused_ GUARDED_BY(mu_) = false;  // test hook; see TEST_PauseFlusher
  // Started by Open, joined by Close; never touched concurrently.
  std::thread flusher_thread_;
  std::thread compaction_thread_;
};

}  // namespace gadget

#endif  // GADGET_STORES_LSM_LSM_STORE_H_
