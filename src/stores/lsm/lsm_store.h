// LSM-tree key-value store (the project's RocksDB stand-in) with optional
// delete-aware compaction (the Lethe stand-in, enabled via
// LsmOptions::delete_aware).
//
// Architecture:
//  * writes go to a WAL + sorted memtable; a full memtable is flushed to an
//    L0 SSTable on the writer's thread;
//  * a single background thread runs leveled compaction (L0->L1 by file
//    count, Ln->Ln+1 by level size) and, in delete-aware mode, force-compacts
//    SSTables whose tombstones have outlived the delete-persistence
//    threshold (FADE-style);
//  * readers take a copy-on-write Version snapshot and search memtable ->
//    L0 (newest first) -> L1..Ln, accumulating lazy merge operands until a
//    base value or tombstone resolves the lookup;
//  * everything on disk is CRC-protected; the manifest is atomically
//    rewritten after every flush/compaction; a torn WAL tail is tolerated.
#ifndef GADGET_STORES_LSM_LSM_STORE_H_
#define GADGET_STORES_LSM_LSM_STORE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/stores/kvstore.h"
#include "src/stores/lsm/block_cache.h"
#include "src/stores/lsm/memtable.h"
#include "src/stores/lsm/options.h"
#include "src/stores/lsm/version.h"
#include "src/stores/lsm/wal.h"

namespace gadget {

class LsmStore : public KVStore {
 public:
  static StatusOr<std::unique_ptr<KVStore>> Open(const std::string& dir, const LsmOptions& opts);
  ~LsmStore() override;

  Status Put(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value) override;
  Status Merge(std::string_view key, std::string_view operand) override;
  Status Delete(std::string_view key) override;

  // Batched paths. Write appends the whole batch as ONE group-commit WAL
  // record (one crc, one buffered write, at most one fsync) and applies it to
  // the memtable under one mu_ acquisition; memtable pressure is evaluated
  // once per batch. MultiGet probes the memtable for every key and snapshots
  // the Version once, then resolves the misses against SSTables lock-free.
  Status Write(const WriteBatch& batch) override;
  Status MultiGet(const std::vector<std::string>& keys, std::vector<std::string>* values,
                  std::vector<Status>* statuses) override;

  bool supports_merge() const override { return true; }
  Status Flush() override;
  Status Close() override;

  StoreStats stats() const override;
  std::string name() const override { return opts_.delete_aware ? "lethe" : "lsm"; }

  // Introspection for tests.
  int NumFilesAtLevel(int level) const;
  uint64_t TotalSstBytes() const;

 private:
  LsmStore(std::string dir, const LsmOptions& opts);

  Status Recover();
  Status WriteInternal(RecType type, std::string_view key, std::string_view value);

  // SSTable half of the read path, shared by Get and MultiGet. `acc` carries
  // merge operands already accumulated from newer layers (the memtable). Must
  // be called with no locks held: it does block I/O against the snapshot.
  Status SearchTablesUnlocked(const Version& version, std::string_view key,
                              std::vector<std::string> acc, std::string* value);

  // Requires mu_ held. Flushes the active memtable into an L0 file.
  Status FlushMemTableLocked();

  // Requires mu_ held. Persists the current version + counters.
  Status PersistManifestLocked();

  // Background compaction machinery.
  void BackgroundThread();
  struct CompactionJob {
    // Inputs ordered newest-first (L0 newest..oldest, then level-n file(s),
    // then level-n+1 overlaps).
    std::vector<std::shared_ptr<FileMeta>> inputs;
    int output_level = 1;
    bool bottommost = false;
  };
  // Requires mu_ held. Returns false if no compaction is needed.
  bool PickCompactionLocked(CompactionJob* job);
  Status DoCompaction(const CompactionJob& job, std::vector<std::shared_ptr<FileMeta>>* outputs);
  // Requires mu_ held.
  void InstallCompactionLocked(const CompactionJob& job,
                               std::vector<std::shared_ptr<FileMeta>> outputs);

  StatusOr<std::shared_ptr<FileMeta>> BuildTableFromMemLocked();
  uint64_t MaxBytesForLevel(int level) const;
  static uint64_t NowMs();

  const std::string dir_;
  const LsmOptions opts_;
  BlockCache cache_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // signals the background thread
  std::condition_variable stall_cv_;  // wakes stalled writers
  std::unique_ptr<MemTable> mem_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t wal_number_ = 0;
  uint64_t next_file_number_ = 1;
  std::shared_ptr<const Version> current_;
  std::vector<size_t> compact_cursor_;  // round-robin pick position per level
  StoreStats stats_;
  // Bytes returned by gets. Kept outside mu_ so the read path never
  // re-acquires the store lock after it has dropped it to do block I/O.
  mutable std::atomic<uint64_t> read_bytes_{0};
  Status bg_error_;
  bool closing_ = false;
  bool compaction_running_ = false;
  std::thread bg_thread_;
};

}  // namespace gadget

#endif  // GADGET_STORES_LSM_LSM_STORE_H_
