#include "src/stores/faster/faster_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/coding.h"

namespace gadget {
namespace {

constexpr uint8_t kRecordValue = 1;
constexpr uint8_t kRecordTombstone = 0;
constexpr size_t kRecordHeader = 4 + 1 + 4 + 4;  // total | type | klen | vlen

std::string LogPath(const std::string& dir) { return dir + "/hybrid.log"; }

Status Pwrite(int fd, const char* data, size_t n, uint64_t offset) {
  while (n > 0) {
    ssize_t w = ::pwrite(fd, data, n, static_cast<off_t>(offset));
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoError(std::string("pwrite: ") + std::strerror(errno));
    }
    data += w;
    offset += static_cast<uint64_t>(w);
    n -= static_cast<size_t>(w);
  }
  return Status::Ok();
}

Status Pread(int fd, char* data, size_t n, uint64_t offset) {
  while (n > 0) {
    ssize_t r = ::pread(fd, data, n, static_cast<off_t>(offset));
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoError(std::string("pread: ") + std::strerror(errno));
    }
    if (r == 0) {
      return Status::IoError("short pread from hybrid log");
    }
    data += r;
    offset += static_cast<uint64_t>(r);
    n -= static_cast<size_t>(r);
  }
  return Status::Ok();
}

}  // namespace

FasterStore::FasterStore(std::string dir, const FasterOptions& opts)
    : dir_(std::move(dir)), opts_(opts) {}

// status intentionally ignored: destructors cannot propagate errors; callers
// that care about durability call Close() explicitly and check.
FasterStore::~FasterStore() { (void)Close(); }

StatusOr<std::unique_ptr<KVStore>> FasterStore::Open(const std::string& dir,
                                                     const FasterOptions& opts) {
  GADGET_RETURN_IF_ERROR(CreateDirIfMissing(dir));
  std::unique_ptr<FasterStore> store(new FasterStore(dir, opts));
  GADGET_RETURN_IF_ERROR(store->Recover());
  return std::unique_ptr<KVStore>(std::move(store));
}

Status FasterStore::Recover() {
  MutexLock lock(&mu_);
  const std::string path = LogPath(dir_);
  log_fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (log_fd_ < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  off_t end = ::lseek(log_fd_, 0, SEEK_END);
  if (end < 0) {
    return Status::IoError("lseek " + path);
  }
  uint64_t file_size = static_cast<uint64_t>(end);

  // Sequential scan rebuilds the hash index: last record per key wins.
  uint64_t addr = 0;
  std::string header(kRecordHeader, '\0');
  std::string key;
  while (addr + kRecordHeader <= file_size) {
    GADGET_RETURN_IF_ERROR(Pread(log_fd_, header.data(), kRecordHeader, addr));
    uint32_t total = DecodeFixed32(header.data());
    uint8_t type = static_cast<uint8_t>(header[4]);
    uint32_t klen = DecodeFixed32(header.data() + 5);
    uint32_t vlen = DecodeFixed32(header.data() + 9);
    if (total != kRecordHeader + klen + vlen || addr + total > file_size ||
        (type != kRecordValue && type != kRecordTombstone)) {
      break;  // torn tail from a crash; truncate here
    }
    key.resize(klen);
    if (klen > 0) {
      GADGET_RETURN_IF_ERROR(Pread(log_fd_, key.data(), klen, addr + kRecordHeader));
    }
    if (type == kRecordTombstone) {
      index_.erase(key);
    } else {
      index_[key] = addr;
    }
    addr += total;
  }
  if (addr < file_size) {
    if (::ftruncate(log_fd_, static_cast<off_t>(addr)) != 0) {
      return Status::IoError("ftruncate hybrid log");
    }
  }
  head_ = tail_ = durable_ = addr;
  return Status::Ok();
}

bool FasterStore::InMutableRegionLocked(uint64_t addr) const {
  uint64_t mutable_bytes =
      static_cast<uint64_t>(static_cast<double>(opts_.log_memory_bytes) * opts_.mutable_fraction);
  uint64_t boundary = tail_ > mutable_bytes ? tail_ - mutable_bytes : 0;
  return addr >= boundary && addr >= head_;
}

StatusOr<uint64_t> FasterStore::AppendRecordLocked(uint8_t type, std::string_view key,
                                                   std::string_view value) {
  uint64_t addr = tail_;
  uint32_t total = static_cast<uint32_t>(kRecordHeader + key.size() + value.size());
  std::string rec;
  rec.reserve(total);
  PutFixed32(&rec, total);
  rec.push_back(static_cast<char>(type));
  PutFixed32(&rec, static_cast<uint32_t>(key.size()));
  PutFixed32(&rec, static_cast<uint32_t>(value.size()));
  rec.append(key.data(), key.size());
  rec.append(value.data(), value.size());
  buffer_ += rec;
  tail_ += total;
  stats_.io_bytes_written += total;
  stats_.wal_bytes += total;
  GADGET_RETURN_IF_ERROR(MaybeEvictLocked());
  return addr;
}

Status FasterStore::MaybeEvictLocked() {
  if (tail_ - head_ <= opts_.log_memory_bytes) {
    return Status::Ok();
  }
  // Evict whole records from the cold end until within budget (head advances
  // to a record boundary by construction).
  uint64_t target = tail_ - opts_.log_memory_bytes / 2;  // evict in bulk, half window
  uint64_t new_head = head_;
  while (new_head < target) {
    size_t off = static_cast<size_t>(new_head - head_);
    if (off + 4 > buffer_.size()) {
      break;
    }
    uint32_t total = DecodeFixed32(buffer_.data() + off);
    if (total < kRecordHeader) {
      return Status::Corruption("bad record during eviction");
    }
    new_head += total;
  }
  size_t evict_bytes = static_cast<size_t>(new_head - head_);
  GADGET_RETURN_IF_ERROR(Pwrite(log_fd_, buffer_.data(), evict_bytes, head_));
  if (opts_.sync_writes) {
    ++stats_.wal_fsyncs;
    if (::fdatasync(log_fd_) != 0) {
      return Status::IoError("fdatasync hybrid log");
    }
  }
  buffer_.erase(0, evict_bytes);
  head_ = new_head;
  durable_ = head_;
  ++stats_.flushes;
  ++stats_.cache_evictions;  // the in-memory log window spilled its cold half
  return Status::Ok();
}

Status FasterStore::ReadRecordLocked(uint64_t addr, uint8_t* type, std::string* key,
                                     std::string* value) {
  if (addr >= head_) {
    size_t off = static_cast<size_t>(addr - head_);
    if (off + kRecordHeader > buffer_.size()) {
      return Status::Corruption("record address beyond tail");
    }
    const char* p = buffer_.data() + off;
    uint32_t total = DecodeFixed32(p);
    *type = static_cast<uint8_t>(p[4]);
    uint32_t klen = DecodeFixed32(p + 5);
    uint32_t vlen = DecodeFixed32(p + 9);
    if (off + total > buffer_.size() || total != kRecordHeader + klen + vlen) {
      return Status::Corruption("bad in-memory record");
    }
    key->assign(p + kRecordHeader, klen);
    value->assign(p + kRecordHeader + klen, vlen);
    return Status::Ok();
  }
  std::string header(kRecordHeader, '\0');
  GADGET_RETURN_IF_ERROR(Pread(log_fd_, header.data(), kRecordHeader, addr));
  uint32_t total = DecodeFixed32(header.data());
  *type = static_cast<uint8_t>(header[4]);
  uint32_t klen = DecodeFixed32(header.data() + 5);
  uint32_t vlen = DecodeFixed32(header.data() + 9);
  if (total != kRecordHeader + klen + vlen) {
    return Status::Corruption("bad on-disk record");
  }
  std::string body(klen + vlen, '\0');
  if (!body.empty()) {
    GADGET_RETURN_IF_ERROR(Pread(log_fd_, body.data(), body.size(), addr + kRecordHeader));
  }
  stats_.io_bytes_read += total;
  key->assign(body, 0, klen);
  value->assign(body, klen, vlen);
  return Status::Ok();
}

Status FasterStore::PutLocked(std::string_view key, std::string_view value) {
  auto it = index_.find(std::string(key));
  if (it != index_.end() && InMutableRegionLocked(it->second)) {
    // In-place upsert when the new value fits exactly over the old one.
    size_t off = static_cast<size_t>(it->second - head_);
    const char* p = buffer_.data() + off;
    uint32_t vlen = DecodeFixed32(p + 9);
    uint32_t klen = DecodeFixed32(p + 5);
    if (vlen == value.size()) {
      std::memcpy(buffer_.data() + off + kRecordHeader + klen, value.data(), value.size());
      buffer_[off + 4] = static_cast<char>(kRecordValue);
      ++in_place_updates_;
      return Status::Ok();
    }
  }
  auto addr = AppendRecordLocked(kRecordValue, key, value);
  if (!addr.ok()) {
    return addr.status();
  }
  index_[std::string(key)] = *addr;
  return Status::Ok();
}

Status FasterStore::GetLocked(std::string_view key, std::string* value) {
  auto it = index_.find(std::string(key));
  if (it == index_.end()) {
    return Status::NotFound();
  }
  uint8_t type = 0;
  std::string stored_key;
  GADGET_RETURN_IF_ERROR(ReadRecordLocked(it->second, &type, &stored_key, value));
  if (type == kRecordTombstone) {
    return Status::NotFound();
  }
  return Status::Ok();
}

Status FasterStore::DeleteLocked(std::string_view key) {
  auto it = index_.find(std::string(key));
  if (it == index_.end()) {
    return Status::Ok();  // blind delete of a missing key is a no-op
  }
  // Tombstone so recovery sees the deletion, then drop the index entry.
  auto addr = AppendRecordLocked(kRecordTombstone, key, "");
  if (!addr.ok()) {
    return addr.status();
  }
  index_.erase(std::string(key));
  return Status::Ok();
}

Status FasterStore::RmwLocked(std::string_view key, std::string_view operand) {
  std::string value;
  auto it = index_.find(std::string(key));
  if (it != index_.end()) {
    uint8_t type = 0;
    std::string stored_key;
    GADGET_RETURN_IF_ERROR(ReadRecordLocked(it->second, &type, &stored_key, &value));
    if (type == kRecordTombstone) {
      value.clear();
    }
  }
  // The appended value has grown, so the RMW always copies to the tail
  // (FASTER's rmw copies unless the update fits in place; append never fits).
  value.append(operand.data(), operand.size());
  auto addr = AppendRecordLocked(kRecordValue, key, value);
  if (!addr.ok()) {
    return addr.status();
  }
  index_[std::string(key)] = *addr;
  return Status::Ok();
}

Status FasterStore::Put(std::string_view key, std::string_view value) {
  MutexLock lock(&mu_);
  if (closed_) {
    return Status::Internal("store is closed");
  }
  ++stats_.puts;
  stats_.bytes_written += key.size() + value.size();
  return PutLocked(key, value);
}

Status FasterStore::Get(std::string_view key, std::string* value,
                        const ReadOptions& /*options*/) {
  MutexLock lock(&mu_);
  if (closed_) {
    return Status::Internal("store is closed");
  }
  ++stats_.gets;
  Status s = GetLocked(key, value);
  if (s.ok()) {
    stats_.bytes_read += value->size();
  }
  return s;
}

Status FasterStore::Delete(std::string_view key) {
  MutexLock lock(&mu_);
  if (closed_) {
    return Status::Internal("store is closed");
  }
  ++stats_.deletes;
  // Accounting contract (kvstore.h): a delete accepts its key bytes.
  stats_.bytes_written += key.size();
  return DeleteLocked(key);
}

Status FasterStore::ReadModifyWrite(std::string_view key, std::string_view operand) {
  MutexLock lock(&mu_);
  if (closed_) {
    return Status::Internal("store is closed");
  }
  ++stats_.rmws;
  stats_.bytes_written += key.size() + operand.size();
  return RmwLocked(key, operand);
}

Status FasterStore::Write(const WriteBatch& batch) {
  MutexLock lock(&mu_);
  if (closed_) {
    return Status::Internal("store is closed");
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    const WriteBatch::Entry& e = batch.entry(i);
    Status s;
    switch (e.op) {
      case WriteBatch::Op::kPut:
        ++stats_.puts;
        stats_.bytes_written += e.key.size() + e.value.size();
        s = PutLocked(e.key, e.value);
        break;
      case WriteBatch::Op::kMerge:
        // No native merge on the hybrid log: a batched merge is an eager
        // RMW, same as the single-op fallback path and counted identically.
        ++stats_.rmws;
        stats_.bytes_written += e.key.size() + e.value.size();
        s = RmwLocked(e.key, e.value);
        break;
      case WriteBatch::Op::kDelete:
        ++stats_.deletes;
        stats_.bytes_written += e.key.size();
        s = DeleteLocked(e.key);
        break;
    }
    GADGET_RETURN_IF_ERROR(s);
  }
  NoteBatch(batch.size());
  return Status::Ok();
}

Status FasterStore::MultiGet(const std::vector<std::string>& keys,
                             std::vector<std::string>* values, std::vector<Status>* statuses,
                             const ReadOptions& /*options*/) {
  values->resize(keys.size());
  statuses->assign(keys.size(), Status::Ok());
  MutexLock lock(&mu_);
  if (closed_) {
    return Status::Internal("store is closed");
  }
  Status first_error;
  for (size_t i = 0; i < keys.size(); ++i) {
    ++stats_.gets;
    Status s = GetLocked(keys[i], &(*values)[i]);
    if (s.ok()) {
      stats_.bytes_read += (*values)[i].size();
    } else if (!s.IsNotFound() && first_error.ok()) {
      first_error = s;
    }
    (*statuses)[i] = std::move(s);
  }
  NoteBatch(keys.size());
  return first_error;
}

Status FasterStore::Flush() {
  MutexLock lock(&mu_);
  if (closed_ || buffer_.empty()) {
    return Status::Ok();
  }
  GADGET_RETURN_IF_ERROR(Pwrite(log_fd_, buffer_.data(), buffer_.size(), head_));
  ++stats_.wal_fsyncs;
  if (::fdatasync(log_fd_) != 0) {
    return Status::IoError("fdatasync hybrid log");
  }
  durable_ = tail_;
  return Status::Ok();
}

StatusOr<CheckpointInfo> FasterStore::Checkpoint(const std::string& dir,
                                                 const CheckpointOptions& options) {
  (void)options;  // the log is appended in place: nothing to reuse
  GADGET_RETURN_IF_ERROR(CreateDirIfMissing(dir));
  auto names = ListDir(dir);
  if (!names.ok()) {
    return names.status();
  }
  if (!names->empty()) {
    return Status::InvalidArgument("checkpoint dir not empty: " + dir);
  }
  MutexLock lock(&mu_);
  if (closed_) {
    return Status::Internal("store is closed");
  }
  // Write the in-memory window [head_, tail_) through to the file (without
  // clearing it — the window stays resident), so the copy below contains
  // every acknowledged record up to the tail.
  if (!buffer_.empty()) {
    GADGET_RETURN_IF_ERROR(Pwrite(log_fd_, buffer_.data(), buffer_.size(), head_));
    ++stats_.wal_fsyncs;
    if (::fdatasync(log_fd_) != 0) {
      return Status::IoError("fdatasync hybrid log");
    }
    durable_ = tail_;
  }
  GADGET_RETURN_IF_ERROR(CopyFile(LogPath(dir_), LogPath(dir), /*sync=*/true));
  GADGET_RETURN_IF_ERROR(SyncDir(dir));
  auto size = FileSize(LogPath(dir));
  if (!size.ok()) {
    return size.status();
  }
  CheckpointInfo info;
  info.bytes = *size;
  info.files = 1;
  return info;
}

Status FasterStore::Close() {
  MutexLock lock(&mu_);
  if (closed_) {
    return Status::Ok();
  }
  Status s = Status::Ok();
  if (!buffer_.empty()) {
    s = Pwrite(log_fd_, buffer_.data(), buffer_.size(), head_);
    buffer_.clear();
  }
  if (log_fd_ >= 0) {
    ++stats_.wal_fsyncs;
    // The final sync's failure must not vanish: this is the last chance to
    // report that buffered log bytes may not have reached the platter.
    if (::fdatasync(log_fd_) != 0 && s.ok()) {
      s = Status::IoError("fdatasync hybrid log on close");
    }
    ::close(log_fd_);
    log_fd_ = -1;
  }
  closed_ = true;
  return s;
}

StoreStats FasterStore::stats() const {
  MutexLock lock(&mu_);
  StoreStats out = stats_;
  FoldBatchStats(&out);
  return out;
}

uint64_t FasterStore::tail_address() const {
  MutexLock lock(&mu_);
  return tail_;
}

uint64_t FasterStore::head_address() const {
  MutexLock lock(&mu_);
  return head_;
}

uint64_t FasterStore::in_place_updates() const {
  MutexLock lock(&mu_);
  return in_place_updates_;
}

}  // namespace gadget
