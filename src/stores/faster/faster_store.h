// FASTER-style hash key-value store: an in-memory hash index over a hybrid
// append-only log.
//
// The log address space is split into three regions (Chandramouli et al.,
// SIGMOD'18):
//   [0, head)            on disk, read with pread;
//   [head, read_only)    in memory, immutable (updates copy to the tail);
//   [read_only, tail)    in memory, mutable — same-size upserts happen
//                        in place, which is why hash stores win incremental
//                        streaming operators (§6.5).
// Read-modify-write appends the grown record to the tail (the log has no
// native merge), reproducing the holistic-window penalty the paper reports.
//
// Recovery scans the log sequentially and rebuilds the index (last record
// per key wins; tombstones erase).
#ifndef GADGET_STORES_FASTER_FASTER_STORE_H_
#define GADGET_STORES_FASTER_FASTER_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/common/file_util.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/stores/kvstore.h"

namespace gadget {

struct FasterOptions {
  // In-memory log window (paper: 256MB; scaled: 32MB).
  uint64_t log_memory_bytes = 32ull << 20;
  // Tail fraction of the memory window that allows in-place updates.
  double mutable_fraction = 0.9;
  bool sync_writes = false;
};

class FasterStore : public KVStore {
 public:
  static StatusOr<std::unique_ptr<KVStore>> Open(const std::string& dir,
                                                 const FasterOptions& opts);
  ~FasterStore() override;

  using KVStore::Get;
  using KVStore::MultiGet;

  Status Put(std::string_view key, std::string_view value) override;
  // ReadOptions are accepted but ignored: the hybrid log reads whole records,
  // not cached blocks.
  Status Get(std::string_view key, std::string* value, const ReadOptions& options) override;
  Status Delete(std::string_view key) override;
  Status ReadModifyWrite(std::string_view key, std::string_view operand) override;

  // Batched paths: one mu_ acquisition per batch (record granularity —
  // appends within the batch land contiguously at the tail).
  Status Write(const WriteBatch& batch) override;
  Status MultiGet(const std::vector<std::string>& keys, std::vector<std::string>* values,
                  std::vector<Status>* statuses, const ReadOptions& options) override;

  Status Flush() override;
  Status Close() override;
  // Pushes the in-memory log window to the file under mu_, then byte-copies
  // the whole hybrid log into `dir` — a log-segment snapshot up to the tail
  // address. Restore replays it through normal recovery (sequential index
  // rebuild). The log is appended in place, so options.base_dir is ignored.
  StatusOr<CheckpointInfo> Checkpoint(const std::string& dir,
                                      const CheckpointOptions& options) override;
  StoreStats stats() const override;
  std::string name() const override { return "faster"; }

  // Introspection for tests.
  uint64_t tail_address() const;
  uint64_t head_address() const;
  uint64_t in_place_updates() const;

 private:
  FasterStore(std::string dir, const FasterOptions& opts);

  Status Recover() EXCLUDES(mu_);
  // Appends a record, returns its address.
  StatusOr<uint64_t> AppendRecordLocked(uint8_t type, std::string_view key,
                                        std::string_view value) REQUIRES(mu_);
  // Reads the record at `addr` (memory or disk).
  Status ReadRecordLocked(uint64_t addr, uint8_t* type, std::string* key, std::string* value)
      REQUIRES(mu_);
  // Evicts the cold prefix of the memory window to disk.
  Status MaybeEvictLocked() REQUIRES(mu_);
  bool InMutableRegionLocked(uint64_t addr) const REQUIRES(mu_);

  // Single-operation bodies without locking or stats, shared by the public
  // facade and the batched paths.
  Status PutLocked(std::string_view key, std::string_view value) REQUIRES(mu_);
  Status GetLocked(std::string_view key, std::string* value) REQUIRES(mu_);
  Status DeleteLocked(std::string_view key) REQUIRES(mu_);
  Status RmwLocked(std::string_view key, std::string_view operand) REQUIRES(mu_);

  const std::string dir_;
  const FasterOptions opts_;

  mutable Mutex mu_;
  // key -> record address
  std::unordered_map<std::string, uint64_t> index_ GUARDED_BY(mu_);
  std::string buffer_ GUARDED_BY(mu_);   // in-memory log window [head_, tail_)
  uint64_t head_ GUARDED_BY(mu_) = 0;    // first in-memory address
  uint64_t tail_ GUARDED_BY(mu_) = 0;    // next append address
  // On-disk log (addresses [0, head_) are durable).
  int log_fd_ GUARDED_BY(mu_) = -1;
  // Bytes persisted to the log file.
  uint64_t durable_ GUARDED_BY(mu_) = 0;
  StoreStats stats_ GUARDED_BY(mu_);
  uint64_t in_place_updates_ GUARDED_BY(mu_) = 0;
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace gadget

#endif  // GADGET_STORES_FASTER_FASTER_STORE_H_
