// Per-read knobs shared by every engine (KVStore::Get / MultiGet take one).
// Kept in its own header so low-level readers (SSTable, btree pages) can use
// it without pulling in the full KVStore interface.
#ifndef GADGET_STORES_READ_OPTIONS_H_
#define GADGET_STORES_READ_OPTIONS_H_

#include <cstdint>

namespace gadget {

struct ReadOptions {
  // Insert blocks/pages fetched on a miss into the buffer pool. Disable for
  // scans that would wipe the working set.
  bool fill_cache = true;
  // Verify block CRCs on every pool miss. Disabling trades integrity checks
  // for read throughput (index/footer blocks are always verified at open).
  bool verify_checksums = true;
  // On an SSTable block miss, fetch this many following blocks of the same
  // table in the same I/O wave (0 = just the missed block). Only effective
  // with fill_cache, since readahead exists to warm the pool.
  uint32_t readahead_blocks = 0;
};

}  // namespace gadget

#endif  // GADGET_STORES_READ_OPTIONS_H_
