// Abstract KV store interface shared by all four engines.
//
// §5.5: state access streams contain get/put/merge/delete; engines that do
// not support lazy merge (FASTER, BerkeleyDB) expose ReadModifyWrite instead
// and the performance evaluator translates. Merge semantics throughout this
// project are *operand append* (RocksDB list-append merge operator), which is
// what holistic window buckets need.
//
// Batched execution: real streaming runtimes amortize store crossings (Flink
// batches state writes per checkpoint; RocksDB's high-throughput path is
// WriteBatch/MultiGet). The interface therefore exposes
//   * Write(WriteBatch)  — an ordered sequence of put/merge/delete entries
//     applied under ONE synchronization epoch (one lock acquisition, one WAL
//     group-commit record where the engine has a WAL);
//   * MultiGet           — vector point lookup with per-key statuses.
// Both have correct-by-construction defaults (loop over the single-op
// methods), and every engine overrides them with an amortized
// implementation. Entries within a batch apply in insertion order, so a batch
// that puts then deletes one key leaves it deleted.
//
// Stats accounting contract (identical across engines AND across the batched
// and single-op paths — asserted by tests/batch_test.cc):
//   * gets/puts/merges/deletes/rmws count one per logical operation, whether
//     issued singly or inside a batch;
//   * bytes_written  += key+value for put/merge/rmw, += key for delete;
//   * bytes_read     += returned value bytes for each successful get;
//   * batches        += 1 per Write()/MultiGet() call,
//     batched_ops    += operations carried by those calls — these two are the
//     only counters allowed to differ between batch sizes.
//
// Thread-safety: all engines are internally synchronized (Fig. 14 shares one
// store instance across concurrently running operators).
#ifndef GADGET_STORES_KVSTORE_H_
#define GADGET_STORES_KVSTORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/stores/bufferpool/buffer_pool.h"
#include "src/stores/read_options.h"

namespace gadget {

struct StoreStats {
  uint64_t gets = 0;
  uint64_t puts = 0;
  uint64_t merges = 0;
  uint64_t deletes = 0;
  uint64_t rmws = 0;
  uint64_t bytes_written = 0;   // user bytes accepted
  uint64_t bytes_read = 0;      // user bytes returned
  uint64_t io_bytes_written = 0;  // device bytes (write amplification)
  uint64_t io_bytes_read = 0;
  uint64_t flushes = 0;        // memtable/page-cache flushes
  uint64_t compactions = 0;    // LSM compactions / btree merges
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t batches = 0;        // Write()/MultiGet() calls
  uint64_t batched_ops = 0;    // operations carried inside those calls

  // Internal engine counters surfaced for run reports (DESIGN.md §5d).
  // Engines without the mechanism leave the counter at zero.
  uint64_t wal_fsyncs = 0;        // LSM WAL / FASTER log fdatasync calls
  uint64_t wal_bytes = 0;         // bytes appended to the WAL / durability log
  uint64_t flush_micros = 0;      // time spent flushing memtable -> L0
  uint64_t stall_micros = 0;      // writer time hard-blocked on backpressure
                                  // (L0 stall tier, full immutable queue)
  uint64_t slowdown_micros = 0;   // writer time in the graduated slowdown
                                  // tier (brief sleeps before a hard stall)
  uint64_t compaction_micros = 0;  // background compaction work time
  uint64_t cache_evictions = 0;   // block/page-cache evictions, log-window
                                  // spills (FASTER)
  // Cross-writer WAL group commit: appends whose record committed two or more
  // concurrent writers at once, and (a gauge, like level_files) the widest
  // group observed so far in logical operations.
  uint64_t wal_group_commits = 0;
  uint64_t wal_group_size_max = 0;
  // Shared buffer pool / async read path (engines on the pool report the
  // POOL's totals — one resource, one set of numbers; others leave zero):
  uint64_t cache_pins = 0;         // successful pin acquisitions (hit+insert)
  uint64_t io_batches = 0;         // batched-read waves through the IoBackend
  // Widest single I/O wave (reads in flight at once). A gauge, like
  // wal_group_size_max: DeltaSince keeps the later snapshot's value.
  uint64_t io_in_flight_max = 0;
  // LSM only: SSTable count per level at observation time. A gauge, not a
  // counter — DeltaSince copies the later snapshot's value verbatim.
  std::vector<uint64_t> level_files;

  // Counter delta over an interval: every counter subtracts `start`'s value
  // (saturating at 0 so a racy snapshot never wraps); gauges (level_files,
  // wal_group_size_max) take this (the later) snapshot's value. Timeline
  // samples are built from this (src/gadget/evaluator.h).
  StoreStats DeltaSince(const StoreStats& start) const;

  // Element-wise sum. Used to aggregate DISTINCT store instances (the server
  // merges N shards' stats into one fleet view): counters add; gauges
  // (wal_group_size_max, io_in_flight_max) take the max of the instances,
  // and level_files sums per level since each shard owns its own files.
  void MergeSum(const StoreStats& other);

  // Element-wise max. Used when merging concurrent instances' timeline
  // samples: every instance observes the SAME shared store, so summing their
  // per-interval deltas would multiply store activity by the thread count;
  // max keeps the widest single observation instead.
  void MergeMax(const StoreStats& other);
};

// An ordered sequence of put/merge/delete entries applied atomically with
// respect to other writers (one synchronization epoch). Cleared batches keep
// their entry storage, so a reused batch allocates nothing in steady state —
// replay loops rebuild one batch per flush without per-op heap traffic.
class WriteBatch {
 public:
  enum class Op : uint8_t { kPut = 0, kMerge = 1, kDelete = 2 };

  struct Entry {
    Op op = Op::kPut;
    std::string key;
    std::string value;  // operand for kMerge, empty for kDelete
  };

  void Put(std::string_view key, std::string_view value) {
    Append(Op::kPut, key, value);
  }
  // Operand-append merge. Engines without native merge apply it as an eager
  // read-modify-write (same observable semantics, counted as an rmw).
  void Merge(std::string_view key, std::string_view operand) {
    Append(Op::kMerge, key, operand);
  }
  void Delete(std::string_view key) { Append(Op::kDelete, key, {}); }

  // Keeps entry capacity (keys/values reuse their buffers on the next fill).
  void Clear() { size_ = 0; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Entry& entry(size_t i) const { return entries_[i]; }

 private:
  void Append(Op op, std::string_view key, std::string_view value) {
    if (size_ == entries_.size()) {
      entries_.emplace_back();
    }
    Entry& e = entries_[size_++];
    e.op = op;
    e.key.assign(key.data(), key.size());
    e.value.assign(value.data(), value.size());
  }

  std::vector<Entry> entries_;  // [0, size_) live; tail retained for reuse
  size_t size_ = 0;
};

// Options for KVStore::Checkpoint.
struct CheckpointOptions {
  // Path of a previous checkpoint of the SAME store instance. Engines with
  // immutable file sets (LSM/Lethe) hard-link unchanged files from the base
  // instead of re-capturing them (incremental checkpoint); other engines
  // ignore it. Empty means a full checkpoint.
  std::string base_dir;
};

// What a Checkpoint call produced, for run reports and tests.
struct CheckpointInfo {
  uint64_t bytes = 0;       // total size of the checkpoint image
  uint64_t files = 0;       // files written into the checkpoint dir
  uint64_t hard_links = 0;  // files captured by hard link (no bytes copied)
  uint64_t reused = 0;      // files linked from options.base_dir (incremental)
};

class KVStore {
 public:
  virtual ~KVStore() = default;

  virtual Status Put(std::string_view key, std::string_view value) = 0;

  // NotFound when the key is absent or deleted. `options` tunes the read
  // (cache admission, readahead, checksum verification — see
  // src/stores/read_options.h); engines without the mechanism ignore it.
  // Overriders must re-surface the convenience overload with
  // `using KVStore::Get;`.
  virtual Status Get(std::string_view key, std::string* value, const ReadOptions& options) = 0;

  // Convenience overload: default ReadOptions.
  Status Get(std::string_view key, std::string* value) { return Get(key, value, ReadOptions()); }

  // Lazy append of `operand` to the key's value (RocksDB-style merge).
  // Engines without native merge return Unsupported; callers should consult
  // supports_merge() once up front and fall back to ReadModifyWrite (the
  // evaluator and the batch paths do this automatically).
  virtual Status Merge(std::string_view key, std::string_view operand) {
    // Short message stays within SSO: no allocation on this per-op path.
    return Status::Unsupported("no merge");
  }

  virtual Status Delete(std::string_view key) = 0;

  // Eager read-modify-write: append `operand` to the stored value (missing
  // key treated as empty). Default implementation is Get+concat+Put; engines
  // override when they can do better (FASTER in-place RMW).
  virtual Status ReadModifyWrite(std::string_view key, std::string_view operand);

  // Applies every entry of `batch` in order under one synchronization epoch.
  // Default loops over the single-op methods (merge entries fall back to
  // ReadModifyWrite when the engine lacks merge); engines override to take
  // their locks once, group-commit their WAL, and batch at their native
  // granularity. On error, a prefix of the batch may have been applied — the
  // store itself stays consistent.
  virtual Status Write(const WriteBatch& batch);

  // Vector point lookup. Resizes *values and *statuses to keys.size();
  // (*statuses)[i] is Ok/NotFound per key. Duplicate keys are looked up
  // independently. Returns the first non-NotFound error, else Ok. Engines
  // with a block-structured read path (LSM/Lethe) resolve all cache misses
  // as ONE batched I/O wave instead of N serial reads.
  virtual Status MultiGet(const std::vector<std::string>& keys,
                          std::vector<std::string>* values, std::vector<Status>* statuses,
                          const ReadOptions& options);

  // Convenience overload: default ReadOptions.
  Status MultiGet(const std::vector<std::string>& keys, std::vector<std::string>* values,
                  std::vector<Status>* statuses) {
    return MultiGet(keys, values, statuses, ReadOptions());
  }

  virtual bool supports_merge() const { return false; }

  // Persists all buffered state (memtables, dirty pages, log tail).
  virtual Status Flush() { return Status::Ok(); }

  // Writes a crash-consistent, self-contained image of the store into `dir`
  // (created if missing; must be empty). The image captures one atomic point
  // in the operation sequence: every acknowledged write before that point is
  // in the image, none after. RestoreStore() materializes the image as a
  // fresh store with identical contents. Safe to call concurrently with
  // reads and writes. The image is durable (file data and directory entries
  // synced) when the call returns.
  virtual StatusOr<CheckpointInfo> Checkpoint(const std::string& dir,
                                              const CheckpointOptions& options = {});

  virtual Status Close() { return Status::Ok(); }

  virtual StoreStats stats() const = 0;

  virtual std::string name() const = 0;

 protected:
  // Batch-visibility accounting shared by all engines: overrides of
  // Write/MultiGet call NoteBatch(ops) once per call, and every stats()
  // implementation folds the counters in via FoldBatchStats.
  void NoteBatch(uint64_t ops) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    batched_ops_.fetch_add(ops, std::memory_order_relaxed);
  }
  void FoldBatchStats(StoreStats* out) const {
    out->batches = batches_.load(std::memory_order_relaxed);
    out->batched_ops = batched_ops_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_ops_{0};
};

// Open-time configuration shared by every engine. Field semantics per engine:
//   buffer_pool      — sizing/policy for the block/page pool the store
//                      creates (LSM/Lethe data blocks, B+tree pages); see
//                      src/stores/bufferpool/buffer_pool.h;
//   shared_pool      — attach to an EXISTING pool instead of creating one:
//                      every store opened with the same pointer shares one
//                      frame budget and one IoBackend (buffer_pool sizing is
//                      then ignored);
//   log_memory_bytes — FASTER in-memory log window (0 = engine default);
//   mem_stripes      — MemStore lock-stripe count (0 = MemStore default);
//   sync_writes      — fsync the WAL / log on every commit (group commit
//                      makes this per-batch rather than per-op);
//   batch_size       — default operation-coalescing width replays should use
//                      (consumed by the harness / ReplayOptions, not the
//                      engine).
struct StoreOptions {
  std::string engine = "lsm";  // mem | lsm | lethe | faster | btree
  std::string dir;             // created if missing; ignored by mem
  BufferPoolOptions buffer_pool;
  std::shared_ptr<BufferPool> shared_pool;
  uint64_t log_memory_bytes = 0;
  size_t mem_stripes = 0;
  bool sync_writes = false;
  uint64_t batch_size = 1;
};

// Engine factory.
StatusOr<std::unique_ptr<KVStore>> OpenStore(const StoreOptions& options);

// Materializes the checkpoint image at `checkpoint_dir` into options.dir and
// opens it as a fresh store (normal recovery runs, so for the LSM engines the
// WAL tail captured by the checkpoint is replayed). options.engine must match
// the engine that produced the checkpoint. options.dir must be empty or
// missing (ignored for mem, which loads the snapshot directly). Immutable
// files (SSTables) are hard-linked when possible; mutating engines (btree,
// faster) get byte copies so the checkpoint stays pristine.
StatusOr<std::unique_ptr<KVStore>> RestoreStore(const StoreOptions& options,
                                                const std::string& checkpoint_dir);

}  // namespace gadget

#endif  // GADGET_STORES_KVSTORE_H_
