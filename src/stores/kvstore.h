// Abstract KV store interface shared by all four engines.
//
// §5.5: state access streams contain get/put/merge/delete; engines that do
// not support lazy merge (FASTER, BerkeleyDB) expose ReadModifyWrite instead
// and the performance evaluator translates. Merge semantics throughout this
// project are *operand append* (RocksDB list-append merge operator), which is
// what holistic window buckets need.
//
// Thread-safety: all engines are internally synchronized (Fig. 14 shares one
// store instance across concurrently running operators).
#ifndef GADGET_STORES_KVSTORE_H_
#define GADGET_STORES_KVSTORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace gadget {

struct StoreStats {
  uint64_t gets = 0;
  uint64_t puts = 0;
  uint64_t merges = 0;
  uint64_t deletes = 0;
  uint64_t rmws = 0;
  uint64_t bytes_written = 0;   // user bytes accepted
  uint64_t bytes_read = 0;      // user bytes returned
  uint64_t io_bytes_written = 0;  // device bytes (write amplification)
  uint64_t io_bytes_read = 0;
  uint64_t flushes = 0;        // memtable/page-cache flushes
  uint64_t compactions = 0;    // LSM compactions / btree merges
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

class KVStore {
 public:
  virtual ~KVStore() = default;

  virtual Status Put(std::string_view key, std::string_view value) = 0;

  // NotFound when the key is absent or deleted.
  virtual Status Get(std::string_view key, std::string* value) = 0;

  // Lazy append of `operand` to the key's value (RocksDB-style merge).
  // Engines without native merge return Unsupported; callers should fall
  // back to ReadModifyWrite (the evaluator does this automatically).
  virtual Status Merge(std::string_view key, std::string_view operand) {
    return Status::Unsupported(name() + " has no merge");
  }

  virtual Status Delete(std::string_view key) = 0;

  // Eager read-modify-write: append `operand` to the stored value (missing
  // key treated as empty). Default implementation is Get+concat+Put; engines
  // override when they can do better (FASTER in-place RMW).
  virtual Status ReadModifyWrite(std::string_view key, std::string_view operand);

  virtual bool supports_merge() const { return false; }

  // Persists all buffered state (memtables, dirty pages, log tail).
  virtual Status Flush() { return Status::Ok(); }

  virtual Status Close() { return Status::Ok(); }

  virtual StoreStats stats() const = 0;

  virtual std::string name() const = 0;
};

// Engine factory. `engine` in {mem, lsm, lethe, faster, btree}; `dir` is the
// storage directory (created if missing; ignored by mem).
StatusOr<std::unique_ptr<KVStore>> OpenStore(const std::string& engine, const std::string& dir);

}  // namespace gadget

#endif  // GADGET_STORES_KVSTORE_H_
