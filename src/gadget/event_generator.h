// Gadget's configurable event generator (§5.1).
//
// Generates one or two event streams with configurable arrival process, key
// distribution, value sizes, watermark frequency, and out-of-order events
// with bounded lateness. Can also replay an existing event trace or a
// synthetic dataset (the "input replayer" box in Fig. 8), adding watermarks.
#ifndef GADGET_GADGET_EVENT_GENERATOR_H_
#define GADGET_GADGET_EVENT_GENERATOR_H_

#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/distgen/arrival.h"
#include "src/distgen/distribution.h"
#include "src/streams/dataset.h"
#include "src/streams/event.h"

namespace gadget {

struct EventGeneratorOptions {
  uint64_t num_events = 100'000;
  uint64_t seed = 1;

  // Key space.
  std::string key_distribution = "zipfian";  // any CreateDistribution name
  uint64_t num_keys = 1'000;

  // Arrival process ("constant", "poisson", "bursty").
  std::string arrival_process = "poisson";
  double rate_per_sec = 1'000.0;

  // Value sizes (constant by default; "uniform" draws in [1, value_size]).
  std::string value_size_distribution = "constant";
  uint32_t value_size = 64;

  // Watermarks: one per `watermark_every` records (punctuated, §3.1.2).
  uint64_t watermark_every = 100;

  // Out-of-order events: this fraction of events is emitted with an event
  // time up to `max_lateness_ms` behind the stream head (Fig. 8's example:
  // 2% of events late by at most 3 time units).
  double out_of_order_fraction = 0.0;
  uint64_t max_lateness_ms = 0;

  // Two-input operators pull from two sources round-robin (§6.1).
  int num_streams = 1;
};

// Pull-based event source: emits records and watermarks.
class EventSource {
 public:
  virtual ~EventSource() = default;
  // False at end of stream.
  virtual bool Next(Event* out) = 0;
};

// Synthetic generator from the options above.
StatusOr<std::unique_ptr<EventSource>> MakeEventGenerator(const EventGeneratorOptions& opts);

// Input replayer: wraps a dataset generator, injecting a watermark every
// `watermark_every` records (watermark time = max event time seen).
std::unique_ptr<EventSource> MakeReplaySource(std::unique_ptr<DatasetGenerator> dataset,
                                              uint64_t watermark_every);

// Input replayer over a persisted event trace (the "existing event trace
// like those we used in §3" path of §5.1). Watermarks already present in the
// trace are passed through; additional ones are injected every
// `watermark_every` records (0 = none).
StatusOr<std::unique_ptr<EventSource>> MakeTraceFileSource(const std::string& path,
                                                           uint64_t watermark_every);

// Drains a source into a vector.
std::vector<Event> CollectSource(EventSource& source);

}  // namespace gadget

#endif  // GADGET_GADGET_EVENT_GENERATOR_H_
