#include "src/gadget/multi.h"

#include <algorithm>
#include <thread>

#include "src/streams/state_access.h"

namespace gadget {
namespace {

// Common runner: one thread per entry of `traces`, instance i replays with
// key.hi shifted by i * namespace_stride (applied inside ReplayTrace, no
// trace copies). Collects every instance's outcome.
ConcurrentReplayResult RunInstances(const std::vector<const std::vector<StateAccess>*>& traces,
                                    KVStore* store, const ReplayOptions& options,
                                    uint64_t namespace_stride) {
  ConcurrentReplayResult result;
  const size_t n = traces.size();
  std::vector<StatusOr<ReplayResult>> outcomes(n, Status::Internal("instance did not run"));
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      ReplayOptions opts = options;
      opts.key_hi_offset += static_cast<uint64_t>(i) * namespace_stride;
      outcomes[i] = ReplayTrace(*traces[i], store, opts);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  result.per_instance.resize(n);
  result.statuses.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    result.statuses.push_back(outcomes[i].status());
    if (outcomes[i].ok()) {
      result.combined_throughput_ops_per_sec += outcomes[i]->throughput_ops_per_sec;
      result.total_ops += outcomes[i]->ops;
      result.per_instance[i] = std::move(*outcomes[i]);
    }
  }
  return result;
}

}  // namespace

bool ConcurrentReplayResult::all_ok() const {
  for (const Status& s : statuses) {
    if (!s.ok()) {
      return false;
    }
  }
  return true;
}

Status ConcurrentReplayResult::FirstError() const {
  for (const Status& s : statuses) {
    if (!s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

ReplayResult ConcurrentReplayResult::Merged() const {
  ReplayResult merged;
  for (size_t i = 0; i < per_instance.size(); ++i) {
    if (i < statuses.size() && statuses[i].ok()) {
      merged.MergeFrom(per_instance[i]);
    }
  }
  return merged;
}

StatusOr<ConcurrentReplayResult> ReplayConcurrently(
    const std::vector<std::vector<StateAccess>>& traces, KVStore* store,
    const ReplayOptions& options, uint64_t namespace_stride) {
  if (traces.empty()) {
    return ConcurrentReplayResult{};
  }
  if (store == nullptr) {
    return Status::InvalidArgument("ReplayConcurrently: null store");
  }
  std::vector<const std::vector<StateAccess>*> ptrs;
  ptrs.reserve(traces.size());
  for (const auto& t : traces) {
    ptrs.push_back(&t);
  }
  return RunInstances(ptrs, store, options, namespace_stride);
}

StatusOr<ConcurrentReplayResult> ReplaySharded(const std::vector<StateAccess>& trace,
                                               KVStore* store, unsigned num_threads,
                                               const ReplayOptions& options) {
  if (num_threads == 0) {
    return Status::InvalidArgument("ReplaySharded: num_threads must be >= 1");
  }
  if (store == nullptr) {
    return Status::InvalidArgument("ReplaySharded: null store");
  }
  const uint64_t limit = options.max_ops == 0
                             ? trace.size()
                             : std::min<uint64_t>(options.max_ops, trace.size());
  // Hash-partition by key: every access to a key lands in the same shard, in
  // trace order, so per-key operation order (and thus final state) is
  // preserved exactly.
  std::vector<std::vector<StateAccess>> shards(num_threads);
  for (auto& shard : shards) {
    shard.reserve(static_cast<size_t>(limit) / num_threads + 1);
  }
  StateKeyHash hasher;
  for (uint64_t i = 0; i < limit; ++i) {
    shards[hasher(trace[i].key) % num_threads].push_back(trace[i]);
  }
  ReplayOptions opts = options;
  opts.max_ops = 0;  // the partition above already enforces the total budget
  std::vector<const std::vector<StateAccess>*> ptrs;
  ptrs.reserve(shards.size());
  for (const auto& s : shards) {
    ptrs.push_back(&s);
  }
  // Stride 0: shards share the workload's key namespace; disjointness comes
  // from the hash partition, not from offsetting.
  return RunInstances(ptrs, store, opts, /*namespace_stride=*/0);
}

}  // namespace gadget
