#include "src/gadget/multi.h"

#include <thread>

namespace gadget {

StatusOr<ConcurrentReplayResult> ReplayConcurrently(
    const std::vector<std::vector<StateAccess>>& traces, KVStore* store,
    const ReplayOptions& options, uint64_t namespace_stride) {
  ConcurrentReplayResult result;
  if (traces.empty()) {
    return result;
  }
  std::vector<StatusOr<ReplayResult>> outcomes;
  outcomes.reserve(traces.size());
  for (size_t i = 0; i < traces.size(); ++i) {
    outcomes.emplace_back(Status::Internal("instance did not run"));
  }
  std::vector<std::thread> threads;
  threads.reserve(traces.size());
  for (size_t i = 0; i < traces.size(); ++i) {
    threads.emplace_back([&, i] {
      if (namespace_stride == 0) {
        outcomes[i] = ReplayTrace(traces[i], store, options);
        return;
      }
      std::vector<StateAccess> shifted = traces[i];
      for (StateAccess& a : shifted) {
        a.key.hi += static_cast<uint64_t>(i) * namespace_stride;
      }
      outcomes[i] = ReplayTrace(shifted, store, options);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  double combined = 0;
  for (auto& outcome : outcomes) {
    if (!outcome.ok()) {
      return outcome.status();
    }
    combined += outcome->throughput_ops_per_sec;
    result.per_instance.push_back(std::move(*outcome));
  }
  result.combined_throughput_ops_per_sec = combined;
  return result;
}

}  // namespace gadget
