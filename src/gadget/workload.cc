#include "src/gadget/workload.h"

#include "src/streams/trace_io.h"

namespace gadget {

StatusOr<WorkloadResult> GenerateWorkload(std::unique_ptr<OperatorLogic> logic,
                                          EventSource& source, const OperatorConfig& config) {
  WorkloadResult result;
  Driver driver(std::move(logic), &result.trace);
  driver.set_config(config);
  Event e;
  while (source.Next(&e)) {
    if (e.is_watermark()) {
      ++result.watermarks;
    } else {
      ++result.events_processed;
    }
    GADGET_RETURN_IF_ERROR(driver.OnEvent(e));
  }
  // End-of-stream watermark flushes remaining windows, mirroring flinklet.
  ++result.watermarks;
  GADGET_RETURN_IF_ERROR(driver.OnWatermark(~0ull >> 2));
  return result;
}

StatusOr<WorkloadResult> GenerateWorkload(const std::string& operator_name, EventSource& source,
                                          const OperatorConfig& config) {
  auto logic = MakeOperatorLogic(operator_name);
  if (!logic.ok()) {
    return logic.status();
  }
  return GenerateWorkload(std::move(*logic), source, config);
}

Status GenerateWorkloadToFile(const std::string& operator_name, EventSource& source,
                              const OperatorConfig& config, const std::string& path) {
  auto result = GenerateWorkload(operator_name, source, config);
  if (!result.ok()) {
    return result.status();
  }
  return WriteAccessTrace(path, result->trace);
}

}  // namespace gadget
