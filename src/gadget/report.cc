#include "src/gadget/report.h"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <utility>

#include "src/common/file_util.h"

namespace gadget {
namespace {

// Enumerates every StoreStats counter with its field name — the single list
// the JSON emitter and the validator both walk, so neither can drift from
// kvstore.h (level_files, the one gauge, is handled separately).
template <typename Fn>
void ForEachStatField(const StoreStats& s, Fn fn) {
  fn("gets", s.gets);
  fn("puts", s.puts);
  fn("merges", s.merges);
  fn("deletes", s.deletes);
  fn("rmws", s.rmws);
  fn("bytes_written", s.bytes_written);
  fn("bytes_read", s.bytes_read);
  fn("io_bytes_written", s.io_bytes_written);
  fn("io_bytes_read", s.io_bytes_read);
  fn("flushes", s.flushes);
  fn("compactions", s.compactions);
  fn("cache_hits", s.cache_hits);
  fn("cache_misses", s.cache_misses);
  fn("batches", s.batches);
  fn("batched_ops", s.batched_ops);
  fn("wal_fsyncs", s.wal_fsyncs);
  fn("wal_bytes", s.wal_bytes);
  fn("flush_micros", s.flush_micros);
  fn("stall_micros", s.stall_micros);
  fn("slowdown_micros", s.slowdown_micros);
  fn("compaction_micros", s.compaction_micros);
  fn("cache_evictions", s.cache_evictions);
  fn("cache_pins", s.cache_pins);
  fn("io_batches", s.io_batches);
  fn("io_in_flight_max", s.io_in_flight_max);
  fn("wal_group_commits", s.wal_group_commits);
  fn("wal_group_size_max", s.wal_group_size_max);
}

Status Invalid(const std::string& what) { return Status::InvalidArgument(what); }

// Checks a serialized StoreStats object carries every field ForEachStatField
// emits (numeric, by name) — a report from a stale binary fails here instead
// of silently passing downstream dashboards zeros.
Status ValidateStats(const JsonValue& stats, const std::string& where) {
  if (!stats.is_object()) {
    return Status::InvalidArgument(where + " is not an object");
  }
  Status s;
  ForEachStatField(StoreStats(), [&](const char* name, uint64_t) {
    const JsonValue* v = stats.Get(name);
    if (s.ok() && (v == nullptr || !v->is_number())) {
      s = Status::InvalidArgument(where + ": missing or non-numeric \"" + std::string(name) +
                                  "\"");
    }
  });
  return s;
}

// --- validation helpers -----------------------------------------------------

Status RequireNumber(const JsonValue& obj, const char* key, const std::string& where) {
  const JsonValue* v = obj.Get(key);
  if (v == nullptr || !v->is_number()) {
    return Invalid(where + ": missing or non-numeric \"" + key + "\"");
  }
  return Status::Ok();
}

Status RequireString(const JsonValue& obj, const char* key, const std::string& where) {
  const JsonValue* v = obj.Get(key);
  if (v == nullptr || !v->is_string()) {
    return Invalid(where + ": missing or non-string \"" + key + "\"");
  }
  return Status::Ok();
}

Status ValidateHistogram(const JsonValue& obj, const char* key, const std::string& where) {
  const JsonValue* v = obj.Get(key);
  if (v == nullptr || !v->is_object()) {
    return Invalid(where + ": missing histogram \"" + key + "\"");
  }
  LatencyHistogram h;
  if (!HistogramFromJson(*v, &h)) {
    return Invalid(where + ": histogram \"" + key + "\" does not restore");
  }
  return Status::Ok();
}

Status ValidateResult(const JsonValue& result, const std::string& where) {
  if (!result.is_object()) {
    return Invalid(where + " is not an object");
  }
  for (const char* key : {"ops", "elapsed_seconds", "throughput_ops_per_sec", "not_found"}) {
    GADGET_RETURN_IF_ERROR(RequireNumber(result, key, where));
  }
  for (const char* key : {"latency_ns", "read_latency_ns", "write_latency_ns"}) {
    GADGET_RETURN_IF_ERROR(ValidateHistogram(result, key, where));
  }
  const JsonValue* timeline = result.Get("timeline");
  if (timeline != nullptr) {
    if (!timeline->is_array()) {
      return Invalid(where + ".timeline is not an array");
    }
    for (size_t i = 0; i < timeline->items().size(); ++i) {
      const JsonValue& s = timeline->items()[i];
      std::string sw = where + ".timeline[" + std::to_string(i) + "]";
      if (!s.is_object()) {
        return Invalid(sw + " is not an object");
      }
      for (const char* key : {"index", "ops", "start_seconds", "end_seconds", "ops_per_sec"}) {
        GADGET_RETURN_IF_ERROR(RequireNumber(s, key, sw));
      }
      const JsonValue* delta = s.Get("stats_delta");
      if (delta == nullptr || !delta->is_object()) {
        return Invalid(sw + ": missing \"stats_delta\"");
      }
      GADGET_RETURN_IF_ERROR(ValidateStats(*delta, sw + ".stats_delta"));
    }
  }
  // "checkpoints" is optional (absent unless the run checkpointed), but when
  // present every sample must carry its full shape.
  const JsonValue* checkpoints = result.Get("checkpoints");
  if (checkpoints != nullptr) {
    if (!checkpoints->is_array()) {
      return Invalid(where + ".checkpoints is not an array");
    }
    for (size_t i = 0; i < checkpoints->items().size(); ++i) {
      const JsonValue& s = checkpoints->items()[i];
      std::string sw = where + ".checkpoints[" + std::to_string(i) + "]";
      if (!s.is_object()) {
        return Invalid(sw + " is not an object");
      }
      for (const char* key :
           {"index", "trace_pos", "at_seconds", "duration_micros", "bytes", "files"}) {
        GADGET_RETURN_IF_ERROR(RequireNumber(s, key, sw));
      }
    }
  }
  return Status::Ok();
}

Status ValidateRecovery(const JsonValue& recovery, const std::string& where) {
  if (!recovery.is_object()) {
    return Invalid(where + " is not an object");
  }
  for (const char* key : {"checkpoint_index", "checkpoint_trace_pos", "restore_micros",
                          "replay_gap_ops", "replay_gap_micros", "verified_keys",
                          "mismatched_keys"}) {
    GADGET_RETURN_IF_ERROR(RequireNumber(recovery, key, where));
  }
  return Status::Ok();
}

Status ValidateSingleReport(const JsonValue& doc) {
  const JsonValue* meta = doc.Get("meta");
  if (meta == nullptr || !meta->is_object()) {
    return Invalid("report: missing \"meta\"");
  }
  GADGET_RETURN_IF_ERROR(RequireString(*meta, "engine", "report.meta"));
  const JsonValue* result = doc.Get("result");
  if (result == nullptr) {
    return Invalid("report: missing \"result\"");
  }
  GADGET_RETURN_IF_ERROR(ValidateResult(*result, "report.result"));
  const JsonValue* stats = doc.Get("stats");
  if (stats == nullptr || !stats->is_object()) {
    return Invalid("report: missing \"stats\"");
  }
  GADGET_RETURN_IF_ERROR(ValidateStats(*stats, "report.stats"));
  // Optional: only checkpointed runs carry a crash/restore outcome.
  if (const JsonValue* recovery = doc.Get("recovery"); recovery != nullptr) {
    GADGET_RETURN_IF_ERROR(ValidateRecovery(*recovery, "report.recovery"));
  }
  return Status::Ok();
}

Status ValidateBenchReport(const JsonValue& doc) {
  GADGET_RETURN_IF_ERROR(RequireString(doc, "name", "bench"));
  const JsonValue* runs = doc.Get("runs");
  if (runs == nullptr || !runs->is_array()) {
    return Invalid("bench: missing \"runs\" array");
  }
  for (size_t i = 0; i < runs->items().size(); ++i) {
    const JsonValue& run = runs->items()[i];
    std::string where = "bench.runs[" + std::to_string(i) + "]";
    if (!run.is_object()) {
      return Invalid(where + " is not an object");
    }
    GADGET_RETURN_IF_ERROR(RequireString(run, "label", where));
    const JsonValue* result = run.Get("result");
    if (result == nullptr) {
      return Invalid(where + ": missing \"result\"");
    }
    GADGET_RETURN_IF_ERROR(ValidateResult(*result, where + ".result"));
  }
  return Status::Ok();
}

// --- comparison helpers -----------------------------------------------------

void CompareRun(const JsonValue& base, const JsonValue& cand, double max_regression,
                const std::string& label, RegressionCheck* check) {
  char buf[256];
  double base_tput = base.GetDouble("throughput_ops_per_sec");
  double cand_tput = cand.GetDouble("throughput_ops_per_sec");
  if (base_tput > 0) {
    ++check->compared;
    if (cand_tput < base_tput * (1.0 - max_regression)) {
      std::snprintf(buf, sizeof(buf), "%s: throughput %.0f -> %.0f ops/s (-%.1f%%, budget %.1f%%)",
                    label.c_str(), base_tput, cand_tput, (1.0 - cand_tput / base_tput) * 100.0,
                    max_regression * 100.0);
      check->failures.emplace_back(buf);
      check->passed = false;
    }
  }
  LatencyHistogram base_h;
  LatencyHistogram cand_h;
  const JsonValue* bh = base.Get("latency_ns");
  const JsonValue* ch = cand.Get("latency_ns");
  if (bh == nullptr || ch == nullptr || !HistogramFromJson(*bh, &base_h) ||
      !HistogramFromJson(*ch, &cand_h) || base_h.count() == 0 || cand_h.count() == 0) {
    return;
  }
  for (double p : {50.0, 99.0, 99.9}) {
    uint64_t base_ns = base_h.Percentile(p);
    uint64_t cand_ns = cand_h.Percentile(p);
    if (base_ns == 0) {
      continue;
    }
    ++check->compared;
    if (static_cast<double>(cand_ns) >
        static_cast<double>(base_ns) * (1.0 + max_regression)) {
      std::snprintf(buf, sizeof(buf), "%s: p%g latency %llu -> %llu ns (+%.1f%%, budget %.1f%%)",
                    label.c_str(), p, static_cast<unsigned long long>(base_ns),
                    static_cast<unsigned long long>(cand_ns),
                    (static_cast<double>(cand_ns) / static_cast<double>(base_ns) - 1.0) * 100.0,
                    max_regression * 100.0);
      check->failures.emplace_back(buf);
      check->passed = false;
    }
  }
}

}  // namespace

std::string GitDescribe() {
  if (const char* env = std::getenv("GADGET_GIT_DESCRIBE"); env != nullptr && env[0] != '\0') {
    return env;
  }
  std::string out;
  if (FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null", "r")) {
    char buf[128];
    while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
      out += buf;
    }
    ::pclose(pipe);
  }
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out;
}

std::string CurrentTimestamp() {
  std::time_t now = std::time(nullptr);
  std::tm tm{};
  ::gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

JsonValue HistogramToJson(const LatencyHistogram& h) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("count", h.count());
  obj.Set("sum", h.sum());
  obj.Set("min", h.min());
  obj.Set("max", h.max());
  JsonValue buckets = JsonValue::MakeArray();
  for (const auto& [index, count] : h.NonzeroBuckets()) {
    JsonValue pair = JsonValue::MakeArray();
    pair.Append(static_cast<uint64_t>(index));
    pair.Append(count);
    buckets.Append(std::move(pair));
  }
  obj.Set("buckets", std::move(buckets));
  return obj;
}

bool HistogramFromJson(const JsonValue& v, LatencyHistogram* out) {
  out->Reset();
  if (!v.is_object()) {
    return false;
  }
  const JsonValue* buckets = v.Get("buckets");
  if (buckets == nullptr || !buckets->is_array()) {
    return false;
  }
  std::vector<std::pair<uint32_t, uint64_t>> sparse;
  sparse.reserve(buckets->items().size());
  for (const JsonValue& pair : buckets->items()) {
    if (!pair.is_array() || pair.items().size() != 2 || !pair.items()[0].is_number() ||
        !pair.items()[1].is_number()) {
      return false;
    }
    sparse.emplace_back(static_cast<uint32_t>(pair.items()[0].AsUint64()),
                        pair.items()[1].AsUint64());
  }
  return out->Restore(sparse, v.GetDouble("sum"), v.GetUint("min"), v.GetUint("max"));
}

JsonValue StoreStatsToJson(const StoreStats& s) {
  JsonValue obj = JsonValue::MakeObject();
  ForEachStatField(s, [&obj](const char* name, uint64_t value) { obj.Set(name, value); });
  JsonValue levels = JsonValue::MakeArray();
  for (uint64_t files : s.level_files) {
    levels.Append(files);
  }
  obj.Set("level_files", std::move(levels));
  return obj;
}

JsonValue TimelineSampleToJson(const TimelineSample& s) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("index", s.index);
  obj.Set("ops", s.ops);
  obj.Set("start_seconds", s.start_seconds);
  obj.Set("end_seconds", s.end_seconds);
  obj.Set("ops_per_sec", s.ops_per_sec);
  obj.Set("not_found", s.not_found);
  obj.Set("reads_sampled", s.read_latency_ns.count());
  obj.Set("read_p50_ns", s.read_latency_ns.Percentile(50));
  obj.Set("read_p99_ns", s.read_latency_ns.Percentile(99));
  obj.Set("read_p999_ns", s.read_latency_ns.Percentile(99.9));
  obj.Set("writes_sampled", s.write_latency_ns.count());
  obj.Set("write_p50_ns", s.write_latency_ns.Percentile(50));
  obj.Set("write_p99_ns", s.write_latency_ns.Percentile(99));
  obj.Set("write_p999_ns", s.write_latency_ns.Percentile(99.9));
  // Device traffic pulled up for timeline plots; the full delta follows.
  obj.Set("bytes_in", s.stats_delta.io_bytes_written);
  obj.Set("bytes_out", s.stats_delta.io_bytes_read);
  obj.Set("checkpoints", s.checkpoints);
  obj.Set("checkpoint_micros", s.checkpoint_micros);
  obj.Set("stats_delta", StoreStatsToJson(s.stats_delta));
  return obj;
}

JsonValue CheckpointSampleToJson(const CheckpointSample& s) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("index", s.index);
  obj.Set("trace_pos", s.trace_pos);
  obj.Set("at_seconds", s.at_seconds);
  obj.Set("duration_micros", s.duration_micros);
  obj.Set("bytes", s.bytes);
  obj.Set("files", s.files);
  obj.Set("hard_links", s.hard_links);
  obj.Set("reused", s.reused);
  obj.Set("dir", s.dir);
  return obj;
}

JsonValue RecoveryResultToJson(const RecoveryResult& r) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("checkpoint_index", r.checkpoint_index);
  obj.Set("checkpoint_trace_pos", r.checkpoint_trace_pos);
  obj.Set("restore_micros", r.restore_micros);
  obj.Set("replay_gap_ops", r.replay_gap_ops);
  obj.Set("replay_gap_micros", r.replay_gap_micros);
  obj.Set("verified_keys", r.verified_keys);
  obj.Set("mismatched_keys", r.mismatched_keys);
  return obj;
}

JsonValue ReplayResultToJson(const ReplayResult& result) {
  JsonValue r = JsonValue::MakeObject();
  r.Set("ops", result.ops);
  r.Set("elapsed_seconds", result.elapsed_seconds);
  r.Set("throughput_ops_per_sec", result.throughput_ops_per_sec);
  r.Set("not_found", result.not_found);
  r.Set("latency_ns", HistogramToJson(result.latency_ns));
  r.Set("read_latency_ns", HistogramToJson(result.read_latency_ns));
  r.Set("write_latency_ns", HistogramToJson(result.write_latency_ns));
  JsonValue timeline = JsonValue::MakeArray();
  for (const TimelineSample& s : result.timeline) {
    timeline.Append(TimelineSampleToJson(s));
  }
  r.Set("timeline", std::move(timeline));
  if (!result.checkpoints.empty()) {
    JsonValue checkpoints = JsonValue::MakeArray();
    for (const CheckpointSample& s : result.checkpoints) {
      checkpoints.Append(CheckpointSampleToJson(s));
    }
    r.Set("checkpoints", std::move(checkpoints));
  }
  return r;
}

JsonValue BuildReportJson(const ReportMeta& meta, const ReplayResult& result,
                          const StoreStats& stats, const RecoveryResult* recovery) {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("schema", kReportSchema);

  JsonValue m = JsonValue::MakeObject();
  m.Set("engine", meta.engine);
  m.Set("git", meta.git);
  m.Set("timestamp", meta.timestamp);
  m.Set("batch_size", meta.batch_size);
  JsonValue config = JsonValue::MakeObject();
  for (const auto& [key, value] : meta.config) {
    config.Set(key, value);
  }
  m.Set("config", std::move(config));
  doc.Set("meta", std::move(m));

  doc.Set("result", ReplayResultToJson(result));
  doc.Set("stats", StoreStatsToJson(stats));
  if (recovery != nullptr) {
    doc.Set("recovery", RecoveryResultToJson(*recovery));
  }
  return doc;
}

Status WriteReportJson(const std::string& path, const ReportMeta& meta,
                       const ReplayResult& result, const StoreStats& stats,
                       const RecoveryResult* recovery) {
  std::string text = BuildReportJson(meta, result, stats, recovery).Write(/*indent=*/2);
  text += '\n';
  return WriteStringToFile(path, text);
}

Status ValidateReportJson(const JsonValue& doc) {
  if (!doc.is_object()) {
    return Invalid("report document is not a JSON object");
  }
  std::string schema = doc.GetString("schema");
  if (schema == kReportSchema) {
    return ValidateSingleReport(doc);
  }
  if (schema == kBenchSchema) {
    return ValidateBenchReport(doc);
  }
  return Invalid("unknown schema \"" + schema + "\"");
}

StatusOr<RegressionCheck> CompareReportJson(const JsonValue& baseline,
                                            const JsonValue& candidate, double max_regression) {
  GADGET_RETURN_IF_ERROR(ValidateReportJson(baseline));
  GADGET_RETURN_IF_ERROR(ValidateReportJson(candidate));
  std::string schema = baseline.GetString("schema");
  if (schema != candidate.GetString("schema")) {
    return Status::InvalidArgument("schema mismatch: " + schema + " vs " +
                                   candidate.GetString("schema"));
  }
  RegressionCheck check;
  if (schema == kReportSchema) {
    CompareRun(*baseline.Get("result"), *candidate.Get("result"), max_regression, "run", &check);
    return check;
  }
  // Bench: match runs by label; unmatched runs are skipped, not failed.
  for (const JsonValue& base_run : baseline.Get("runs")->items()) {
    const std::string& label = base_run.GetString("label");
    for (const JsonValue& cand_run : candidate.Get("runs")->items()) {
      if (cand_run.GetString("label") == label) {
        CompareRun(*base_run.Get("result"), *cand_run.Get("result"), max_regression, label,
                   &check);
        break;
      }
    }
  }
  return check;
}

}  // namespace gadget
