// Gadget's driver and state-machine API (§5.2-§5.4, Algorithm 1).
//
// The driver maintains only the metadata needed to steer workload
// generation: hIndex maps event keys to state keys, vIndex maps expiration
// times to state keys, and one finite state machine exists per state key
// with its element-count metadata ("their sizes in number of elements",
// §5.2). The driver performs no computation on values and issues no store
// requests — the workload generator materializes StateAccess records into a
// FIFO queue through the OpEmitter.
//
// Extending Gadget (§5.4): implement OperatorLogic's three methods —
// AssignStateMachines(), Run(), Terminate() — and pass the logic to the
// Driver. All three have access to hIndex, vIndex and the latest watermark.
#ifndef GADGET_GADGET_DRIVER_H_
#define GADGET_GADGET_DRIVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/flinklet/operator.h"  // reuses OperatorConfig
#include "src/streams/event.h"
#include "src/streams/state_access.h"

namespace gadget {

// One finite state machine per state key (§5.3).
struct StateMachine {
  StateKey key;
  int state = 0;          // operator-defined machine state
  uint64_t elements = 0;  // bucket size metadata (number of elements)
  uint64_t bytes = 0;     // accumulated value bytes (holistic buckets)
  uint64_t created_ms = 0;
  uint64_t aux = 0;  // operator-defined (e.g. current session end)
};

// The FIFO queue of generated requests (§5.3: "all KV store requests
// triggered by an event are generated and added to a FIFO queue").
class OpEmitter {
 public:
  explicit OpEmitter(std::vector<StateAccess>* queue) : queue_(queue) {}

  void Emit(OpType op, const StateKey& key, uint32_t value_size, uint64_t t) {
    queue_->push_back(StateAccess{op, key, value_size, t});
  }

 private:
  std::vector<StateAccess>* queue_;
};

class Driver;

// The three extension methods of §5.4.
class OperatorLogic {
 public:
  virtual ~OperatorLogic() = default;

  // Maps the event to the state machines it drives, creating machines (and
  // vIndex registrations) as needed. Returns the affected state keys.
  virtual std::vector<StateKey> AssignStateMachines(const Event& e, Driver& driver) = 0;

  // Runs one machine for this event: emits the machine's KV requests and
  // advances its state (Fig. 9).
  virtual void Run(StateMachine& m, const Event& e, Driver& driver, OpEmitter& out) = 0;

  // Closes an expired machine: emits final requests and cleans up state.
  // `fire_time` is the vIndex registration time that triggered this call —
  // logics with movable expirations (sessions) use it to skip stale timers.
  virtual void Terminate(StateMachine& m, uint64_t fire_time, Driver& driver, OpEmitter& out) = 0;

  virtual const char* name() const = 0;
};

class Driver {
 public:
  Driver(std::unique_ptr<OperatorLogic> logic, std::vector<StateAccess>* queue)
      : logic_(std::move(logic)), emitter_(queue) {}

  // Algorithm 1, driver(): process one event.
  Status OnEvent(const Event& e);

  // Algorithm 1, onWatermark(): terminate expired machines.
  Status OnWatermark(uint64_t wm);

  // ---- index + machine access for OperatorLogic implementations ----

  // Returns the machine for `key`, creating it (with created_ms = t) if
  // needed. Newly created machines have state 0 and no elements.
  StateMachine& GetOrCreateMachine(const StateKey& key, uint64_t t);
  StateMachine* FindMachine(const StateKey& key);
  void DropMachine(const StateKey& key);
  size_t num_machines() const { return machines_.size(); }

  // vIndex: expiration time -> state keys.
  void RegisterExpiry(uint64_t when, const StateKey& key);

  // hIndex: event key -> state keys currently associated with it.
  std::vector<StateKey>& HIndexEntry(uint64_t event_key) { return h_index_[event_key]; }
  void DropHIndexEntry(uint64_t event_key) { h_index_.erase(event_key); }

  uint64_t watermark() const { return watermark_; }
  const OperatorConfig& config() const { return config_; }
  void set_config(const OperatorConfig& config) { config_ = config; }

  OperatorLogic& logic() { return *logic_; }

 private:
  std::unique_ptr<OperatorLogic> logic_;
  OpEmitter emitter_;
  OperatorConfig config_;

  std::unordered_map<StateKey, StateMachine, StateKeyHash> machines_;
  std::unordered_map<uint64_t, std::vector<StateKey>> h_index_;
  std::map<uint64_t, std::vector<StateKey>> v_index_;
  uint64_t watermark_ = 0;
};

// Factory for the eleven built-in operator logics (same names as
// flinklet's AllOperatorNames()).
StatusOr<std::unique_ptr<OperatorLogic>> MakeOperatorLogic(const std::string& name);

}  // namespace gadget

#endif  // GADGET_GADGET_DRIVER_H_
