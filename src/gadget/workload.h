// Gadget's workload generator (§5.3): feeds an event source through the
// driver and materializes the state access stream. Offline mode writes the
// stream to a trace file for later replay; online mode hands it directly to
// the performance evaluator.
#ifndef GADGET_GADGET_WORKLOAD_H_
#define GADGET_GADGET_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/gadget/driver.h"
#include "src/gadget/event_generator.h"

namespace gadget {

struct WorkloadResult {
  std::vector<StateAccess> trace;
  uint64_t events_processed = 0;
  uint64_t watermarks = 0;
};

// Generates the state access stream for `operator_name` over `source`.
StatusOr<WorkloadResult> GenerateWorkload(const std::string& operator_name, EventSource& source,
                                          const OperatorConfig& config);

// Same, but with a caller-provided (possibly custom, §5.4) operator logic.
StatusOr<WorkloadResult> GenerateWorkload(std::unique_ptr<OperatorLogic> logic,
                                          EventSource& source, const OperatorConfig& config);

// Offline mode: generate and persist to `path` (§5: "generates and stores a
// state access stream that can be replayed on demand").
Status GenerateWorkloadToFile(const std::string& operator_name, EventSource& source,
                              const OperatorConfig& config, const std::string& path);

}  // namespace gadget

#endif  // GADGET_GADGET_WORKLOAD_H_
