// Gadget's performance evaluator (§5.5): replays a state access stream
// against a KV store, translating operations the engine lacks (merge ->
// read-modify-write on FASTER/BerkeleyDB), optionally paced by a service
// rate, and collects throughput + latency measurements.
#ifndef GADGET_GADGET_EVALUATOR_H_
#define GADGET_GADGET_EVALUATOR_H_

#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/status.h"
#include "src/stores/kvstore.h"
#include "src/streams/state_access.h"

namespace gadget {

struct ReplayOptions {
  // 0 = replay as fast as possible; otherwise pace requests to this rate
  // ("can be configured with a service rate to speed up or slow down the
  // trace arbitrarily", §5.5).
  double service_rate_ops_per_sec = 0;
  // Limit the number of operations replayed (0 = whole trace).
  uint64_t max_ops = 0;
  // Record per-op latency for every Nth operation. 1 (default) times every
  // operation exactly as before; larger values skip the two steady_clock
  // reads on unsampled ops, so throughput-oriented runs are not dominated by
  // clock overhead. Histogram counts then reflect sampled ops only;
  // ops/throughput always count every operation. 0 is treated as 1.
  uint64_t latency_sample_every = 1;
  // Added to every access's key.hi before encoding. Lets concurrent
  // instances replay one shared trace into disjoint key namespaces without
  // materializing a shifted copy of the trace per instance.
  uint64_t key_hi_offset = 0;
  // Coalesce up to this many operations into one Write(WriteBatch) /
  // MultiGet call (1 = the classic one-call-per-op path, bit-for-bit
  // unchanged). Same-key ordering is preserved: a get whose key sits in the
  // pending write batch flushes the writes first (read-your-writes), and a
  // write whose key is among the pending gets flushes the gets first, so the
  // two pending key sets stay disjoint and no reordering ever crosses a
  // same-key dependency — only ops on unrelated keys commit out of trace
  // order, which no single-writer-per-key workload can observe.
  // With batching, latency histograms record one sample per *flush* (the
  // latency an operator sees for the whole batch); ops/throughput still
  // count every operation.
  uint64_t batch_size = 1;
  // When nonzero, collect a TimelineSample every N completed operations:
  // per-interval throughput, read/write latency histograms, not-found count,
  // and the store's StoreStats delta over the interval. The final interval
  // may be ragged (fewer than N ops); under batching an interval closes at
  // the first flush at or after its boundary, so mid-run intervals can also
  // overshoot by up to batch_size - 1 ops.
  uint64_t timeline_interval_ops = 0;
  // When nonzero (and checkpoint_dir is set), take a store checkpoint every
  // N completed operations into numbered subdirectories of checkpoint_dir
  // (cp-000000, cp-000001, ...). Each image is an exact trace prefix: the
  // batched path flushes both pending buffers before checkpointing, so like
  // timeline intervals a checkpoint can land up to batch_size - 1 ops past
  // its boundary, but always at a point where the store state equals
  // trace[0, CheckpointSample::trace_pos).
  uint64_t checkpoint_every_ops = 0;
  std::string checkpoint_dir;
  // Pass the previous checkpoint as CheckpointOptions::base_dir so engines
  // with immutable file sets (LSM/Lethe) link unchanged files instead of
  // re-capturing them.
  bool checkpoint_incremental = true;
  // Passed through to every Get/MultiGet the replay issues (fill_cache,
  // verify_checksums, readahead_blocks — see src/stores/read_options.h).
  ReadOptions read_options;
};

// One interval of a replay's timeline (ReplayOptions::timeline_interval_ops).
// Keeps full latency histograms rather than pre-computed percentiles so
// concurrent-replay merges stay bucket-wise exact.
struct TimelineSample {
  uint64_t index = 0;        // 0-based interval number within the replay
  uint64_t ops = 0;          // operations completed in this interval
  double start_seconds = 0;  // interval bounds relative to replay start
  double end_seconds = 0;
  double ops_per_sec = 0;
  uint64_t not_found = 0;
  LatencyHistogram read_latency_ns;
  LatencyHistogram write_latency_ns;
  StoreStats stats_delta;  // store counters consumed during this interval
  // Checkpoints cut during this interval and the replay time they consumed —
  // marks checkpoint intervals on the timeline so throughput dips are
  // attributable.
  uint64_t checkpoints = 0;
  uint64_t checkpoint_micros = 0;

  // Folds the same-index sample of a concurrently measured result into this
  // one: ops/not_found add, bounds widen (min start, max end), throughput is
  // recomputed over the widened span, histograms merge bucket-wise, and
  // stats_delta takes the element-wise max — concurrent instances share one
  // store, so each delta already observes the whole store's counters and
  // summing them would multiply by the thread count.
  void MergeFrom(const TimelineSample& other);
};

// One checkpoint taken during replay (ReplayOptions::checkpoint_every_ops).
struct CheckpointSample {
  uint64_t index = 0;      // 0-based checkpoint number within the replay
  uint64_t trace_pos = 0;  // the image equals a replay of trace[0, trace_pos)
  double at_seconds = 0;   // completion time relative to replay start
  uint64_t duration_micros = 0;
  // From CheckpointInfo: image size and how it was captured.
  uint64_t bytes = 0;
  uint64_t files = 0;
  uint64_t hard_links = 0;
  uint64_t reused = 0;
  std::string dir;  // where the image lives (input to RestoreStore)
};

// Result of the crash/restore scenario the harness runs after a checkpointed
// replay: restore from the last checkpoint, replay the trace gap, and verify
// every distinct trace key against an in-memory oracle. Emitted as the
// "recovery" object of gadget.report/1.
struct RecoveryResult {
  uint64_t checkpoint_index = 0;      // which checkpoint was restored
  uint64_t checkpoint_trace_pos = 0;  // its trace prefix length
  uint64_t restore_micros = 0;        // RestoreStore: materialize + recover
  uint64_t replay_gap_ops = 0;        // trace[trace_pos, end) replayed on top
  uint64_t replay_gap_micros = 0;
  uint64_t verified_keys = 0;   // distinct keys compared against the oracle
  uint64_t mismatched_keys = 0; // 0 == restore matches a crash-free replay
};

struct ReplayResult {
  uint64_t ops = 0;
  double elapsed_seconds = 0;
  double throughput_ops_per_sec = 0;
  LatencyHistogram latency_ns;          // all operations
  LatencyHistogram read_latency_ns;     // gets
  LatencyHistogram write_latency_ns;    // puts/merges/rmws/deletes
  uint64_t not_found = 0;               // gets that missed (expected for probes)
  // Per-interval samples, empty unless timeline_interval_ops was set.
  std::vector<TimelineSample> timeline;
  // Checkpoints taken, empty unless checkpoint_every_ops was set. Ordered by
  // trace_pos; MergeFrom appends (checkpointing is single-instance).
  std::vector<CheckpointSample> checkpoints;

  // Folds `other` (a result measured on a concurrently running thread) into
  // this one: op counts add, histograms merge bucket-wise (O(buckets), no
  // per-sample work), elapsed takes the max, and throughput is recomputed as
  // total ops over that wall-clock span. Timelines merge sample-wise by
  // interval index (see TimelineSample::MergeFrom); a longer timeline's
  // trailing samples are appended as-is.
  void MergeFrom(const ReplayResult& other);

  std::string Summary() const;
};

// Replays `trace` against `store`. Values are deterministic synthetic bytes
// of each access's value_size. Returns IoError/Corruption if the store
// fails; NotFound from gets is counted, not fatal.
StatusOr<ReplayResult> ReplayTrace(const std::vector<StateAccess>& trace, KVStore* store,
                                   const ReplayOptions& options = {});

}  // namespace gadget

#endif  // GADGET_GADGET_EVALUATOR_H_
