#include "src/gadget/driver.h"

namespace gadget {

Status Driver::OnEvent(const Event& e) {
  if (e.is_watermark()) {
    return OnWatermark(e.event_time_ms);
  }
  std::vector<StateKey> machines = logic_->AssignStateMachines(e, *this);
  for (const StateKey& key : machines) {
    auto it = machines_.find(key);
    if (it == machines_.end()) {
      continue;  // logic decided to drop it during assignment
    }
    logic_->Run(it->second, e, *this, emitter_);
  }
  return Status::Ok();
}

Status Driver::OnWatermark(uint64_t wm) {
  watermark_ = wm;
  auto end = v_index_.upper_bound(wm);
  for (auto it = v_index_.begin(); it != end; ++it) {
    for (const StateKey& key : it->second) {
      auto mit = machines_.find(key);
      if (mit == machines_.end()) {
        continue;  // stale registration (machine merged away or re-keyed)
      }
      logic_->Terminate(mit->second, it->first, *this, emitter_);
    }
  }
  v_index_.erase(v_index_.begin(), end);
  return Status::Ok();
}

StateMachine& Driver::GetOrCreateMachine(const StateKey& key, uint64_t t) {
  auto [it, inserted] = machines_.try_emplace(key);
  if (inserted) {
    it->second.key = key;
    it->second.created_ms = t;
  }
  return it->second;
}

StateMachine* Driver::FindMachine(const StateKey& key) {
  auto it = machines_.find(key);
  return it == machines_.end() ? nullptr : &it->second;
}

void Driver::DropMachine(const StateKey& key) { machines_.erase(key); }

void Driver::RegisterExpiry(uint64_t when, const StateKey& key) {
  v_index_[when].push_back(key);
}

}  // namespace gadget
