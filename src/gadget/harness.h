// Config-driven harness: one entry point that wires event generation,
// workload generation, trace files, store evaluation, and trace analysis
// from a flat key=value config (the interface the original Gadget exposes,
// paper appendix A.4.1). Used by the `gadget` CLI in tools/.
//
// Recognized keys (defaults in parentheses):
//   mode             online | offline | replay | analyze | ycsb  (online)
//   operator         one of the eleven workload names             (tumbling_incr)
//   source           synthetic | borg | taxi | azure              (synthetic)
//   events           number of input events                       (100000)
//   seed             master RNG seed                              (42)
//   keys             synthetic key-space size                     (1000)
//   key_distribution uniform|zipfian|scrambled_zipfian|hotspot|
//                    sequential|exponential|latest                (zipfian)
//   arrival          constant | poisson | bursty                  (poisson)
//   rate             events per second                            (1000)
//   value_size       payload bytes                                (64)
//   watermark_every  events per punctuated watermark              (100)
//   out_of_order     fraction of late events                      (0)
//   max_lateness_ms  lateness bound for late events               (0)
//   window_length_ms / window_slide_ms / session_gap_ms /
//   join_lower_ms / join_upper_ms / allowed_lateness_ms           (paper defaults)
//   store            mem | lsm | lethe | faster | btree           (lsm)
//   store_dir        storage directory (temp dir if empty)
//   buffer_pool_bytes shared buffer pool capacity (LSM/Lethe blocks
//                    + btree pages), 0 = pool default              (0)
//   store_cache_bytes legacy alias for buffer_pool_bytes           (0)
//   buffer_pool_shards pool shard count                            (8)
//   buffer_pool_eviction clock | 2q                                (clock)
//   use_io_uring     probe io_uring for batched block reads,
//                    thread-pool pread fallback either way         (true)
//   store_log_memory_bytes FASTER in-memory log window, 0 =
//                    engine default                                (0)
//   fill_cache       admit replay read misses to the pool (the
//                    CLI's --fill_cache=true|false)                (true)
//   verify_checksums CRC-check every fetched block                 (true)
//   readahead_blocks extra blocks fetched per cache-missing Get    (0)
//   store_stripes    MemStore lock-stripe count, 0 = default      (0)
//   sync_writes      fsync the WAL/log on every commit (group
//                    commit makes this per-batch with batching)   (false)
//   batch_size       coalesce up to N consecutive ops into one
//                    WriteBatch / MultiGet, 1 = op-at-a-time      (1)
//   service_rate     replay pacing, ops/s, 0 = unpaced            (0)
//   max_ops          replay budget, 0 = whole trace               (0)
//   timeline_interval evaluation timeline sample width in ops, 0 =
//                    no timeline (the CLI's --timeline_interval=N)  (0)
//   checkpoint_every checkpoint the store every N replayed ops (the
//                    CLI's --checkpoint_every=N); after the replay
//                    the harness restores from the latest checkpoint,
//                    replays the trace gap, and verifies the restored
//                    store against an in-memory oracle, reporting
//                    checkpoint duration/size and recovery time.
//                    0 = no checkpointing                           (0)
//   checkpoint_dir   where checkpoint images go (a sibling of the
//                    store dir if empty)
//   checkpoint_incremental  link unchanged SSTables from the previous
//                    checkpoint instead of re-capturing (LSM/Lethe)  (true)
//   report           write a gadget.report/1 JSON run report here
//                    (the CLI's --report=FILE; see src/gadget/report.h)
//   trace_out        offline mode: output trace path
//   trace_in         replay/analyze mode: input trace path
//   analyze          also print trace analysis in online/offline  (false)
//   ycsb_workload    A | D | F (mode=ycsb)                        (A)
//   ycsb_records / ycsb_distribution                              (1000 / preset)
#ifndef GADGET_GADGET_HARNESS_H_
#define GADGET_GADGET_HARNESS_H_

#include <ostream>
#include <string>
#include <vector>

#include "src/common/config.h"
#include "src/common/status.h"
#include "src/stores/kvstore.h"
#include "src/streams/state_access.h"

namespace gadget {

// Runs the experiment described by `config`, writing human-readable results
// to `out`. Returns the first error encountered.
Status RunHarness(const Config& config, std::ostream& out);

// Materializes the access trace `config` describes without replaying it:
// trace_in=<path> when set, otherwise the source/operator generation path
// RunHarness itself uses. This is how the service loadgen replays the same
// workloads the in-process evaluator does.
StatusOr<std::vector<StateAccess>> BuildAccessTrace(const Config& config);

// The StoreOptions `config` describes (store / buffer_pool_* / sync_writes /
// batch_size keys; see the key table above) rooted at `dir`.
StoreOptions StoreOptionsFromConfig(const Config& config, std::string dir);

}  // namespace gadget

#endif  // GADGET_GADGET_HARNESS_H_
