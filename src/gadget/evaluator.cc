#include "src/gadget/evaluator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

namespace gadget {
namespace {

using Clock = std::chrono::steady_clock;

inline uint64_t ElapsedNs(Clock::time_point a, Clock::time_point b) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

// 4096-bit membership filter over a pending batch's keys. Never
// false-negative, so a miss (the common case) skips the exact scan entirely;
// sized so even a 256-key batch stays ~6% occupied and false-positive scans
// are rare. Clearing is a 512-byte fill per flush — noise next to one store
// crossing. This keeps the batched replay loop's conflict checks
// allocation-free: a hash-set of encoded keys costs a node allocation per
// buffered op, which is more than the batching is trying to amortize.
struct KeyFilter {
  uint64_t bits[64] = {};

  static uint64_t HashOf(const StateKey& k) {
    uint64_t h = k.hi * 0x9e3779b97f4a7c15ULL;
    h ^= k.lo + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  }
  void Add(uint64_t h) { bits[(h >> 6) & 63] |= 1ull << (h & 63); }
  bool MayContain(uint64_t h) const { return ((bits[(h >> 6) & 63] >> (h & 63)) & 1) != 0; }
  void Clear() { std::fill(std::begin(bits), std::end(bits), 0); }
};

// Collects per-interval TimelineSamples during one replay. The replay loops
// feed it sampled latencies (RecordLatency) and signal after ops/not_found
// advance (OnProgress); an interval closes once the cumulative op count
// reaches the next boundary — exactly on it for the single-op path, at the
// first flush at or after it when batching — and Finish emits the trailing
// ragged interval. Each boundary takes one store->stats() snapshot, whose
// delta against the previous snapshot becomes the sample's stats_delta.
class TimelineCollector {
 public:
  TimelineCollector(const ReplayOptions& options, KVStore* store, ReplayResult* result)
      : interval_(options.timeline_interval_ops), store_(store), result_(result) {}

  bool active() const { return interval_ != 0; }

  void Start(Clock::time_point start) {
    if (!active()) {
      return;
    }
    start_ = interval_start_time_ = start;
    stats_at_start_ = store_->stats();
    next_boundary_ = interval_;
  }

  void RecordLatency(uint64_t ns, bool is_read) {
    if (!active()) {
      return;
    }
    (is_read ? cur_read_ : cur_write_).Record(ns);
  }

  void OnProgress() {
    if (!active() || result_->ops < next_boundary_) {
      return;
    }
    CloseInterval(Clock::now());
    next_boundary_ = result_->ops + interval_;
  }

  void Finish(Clock::time_point end) {
    if (active() && result_->ops > interval_start_ops_) {
      CloseInterval(end);
    }
  }

  // Marks the current interval as containing a checkpoint (the replay time
  // it consumed is attributed to the interval it landed in).
  void NoteCheckpoint(uint64_t duration_micros) {
    if (!active()) {
      return;
    }
    ++cur_checkpoints_;
    cur_checkpoint_micros_ += duration_micros;
  }

 private:
  void CloseInterval(Clock::time_point now) {
    TimelineSample s;
    s.index = result_->timeline.size();
    s.ops = result_->ops - interval_start_ops_;
    s.start_seconds = static_cast<double>(ElapsedNs(start_, interval_start_time_)) / 1e9;
    s.end_seconds = static_cast<double>(ElapsedNs(start_, now)) / 1e9;
    double span = s.end_seconds - s.start_seconds;
    s.ops_per_sec = span > 0 ? static_cast<double>(s.ops) / span : 0;
    s.not_found = result_->not_found - not_found_at_start_;
    // Exchange against fresh histograms: a moved-from LatencyHistogram has no
    // bucket storage and would crash on the next Record.
    s.read_latency_ns = std::exchange(cur_read_, LatencyHistogram());
    s.write_latency_ns = std::exchange(cur_write_, LatencyHistogram());
    s.checkpoints = std::exchange(cur_checkpoints_, 0);
    s.checkpoint_micros = std::exchange(cur_checkpoint_micros_, 0);
    StoreStats stats_now = store_->stats();
    s.stats_delta = stats_now.DeltaSince(stats_at_start_);
    result_->timeline.push_back(std::move(s));
    interval_start_ops_ = result_->ops;
    not_found_at_start_ = result_->not_found;
    interval_start_time_ = now;
    stats_at_start_ = std::move(stats_now);
  }

  const uint64_t interval_;
  KVStore* const store_;
  ReplayResult* const result_;
  Clock::time_point start_;
  Clock::time_point interval_start_time_;
  uint64_t next_boundary_ = 0;
  uint64_t interval_start_ops_ = 0;
  uint64_t not_found_at_start_ = 0;
  StoreStats stats_at_start_;
  LatencyHistogram cur_read_;
  LatencyHistogram cur_write_;
  uint64_t cur_checkpoints_ = 0;
  uint64_t cur_checkpoint_micros_ = 0;
};

// Takes periodic checkpoints during one replay
// (ReplayOptions::checkpoint_every_ops). The replay loops call Due() after
// result->ops advances and Take() at a point where the store state equals the
// exact trace prefix [0, result->ops) — the single-op loop after every op,
// the batched loop after flushing both pending buffers.
class CheckpointDriver {
 public:
  CheckpointDriver(const ReplayOptions& options, KVStore* store, ReplayResult* result,
                   TimelineCollector* tl)
      : every_(options.checkpoint_every_ops),
        dir_(options.checkpoint_dir),
        incremental_(options.checkpoint_incremental),
        store_(store),
        result_(result),
        tl_(tl) {}

  bool active() const { return every_ != 0 && !dir_.empty(); }

  void Start(Clock::time_point start) {
    start_ = start;
    next_ = every_;
  }

  bool Due() const { return active() && result_->ops >= next_; }

  Status Take() {
    CheckpointSample s;
    s.index = result_->checkpoints.size();
    s.trace_pos = result_->ops;
    char name[32];
    std::snprintf(name, sizeof(name), "cp-%06llu", static_cast<unsigned long long>(s.index));
    s.dir = dir_ + "/" + name;
    CheckpointOptions copts;
    if (incremental_ && !result_->checkpoints.empty()) {
      copts.base_dir = result_->checkpoints.back().dir;
    }
    auto t0 = Clock::now();
    auto info = store_->Checkpoint(s.dir, copts);
    if (!info.ok()) {
      return info.status();
    }
    auto t1 = Clock::now();
    s.at_seconds = static_cast<double>(ElapsedNs(start_, t1)) / 1e9;
    s.duration_micros = ElapsedNs(t0, t1) / 1000;
    s.bytes = info->bytes;
    s.files = info->files;
    s.hard_links = info->hard_links;
    s.reused = info->reused;
    tl_->NoteCheckpoint(s.duration_micros);
    result_->checkpoints.push_back(std::move(s));
    next_ = result_->ops + every_;
    return Status::Ok();
  }

 private:
  const uint64_t every_;
  const std::string dir_;
  const bool incremental_;
  KVStore* const store_;
  ReplayResult* const result_;
  TimelineCollector* const tl_;
  Clock::time_point start_;
  uint64_t next_ = 0;
};

// Exact membership: filter first, linear scan of the (small) pending-key
// vector only on a filter hit.
inline bool BatchContains(const std::vector<StateKey>& keys, const KeyFilter& filter,
                          const StateKey& k, uint64_t h) {
  if (!filter.MayContain(h)) {
    return false;
  }
  return std::find(keys.begin(), keys.end(), k) != keys.end();
}

// Batched replay: writes accumulate into a WriteBatch and gets into a
// MultiGet group; each fills to options.batch_size before flushing.
// Correctness rules (see ReplayOptions::batch_size):
//   * a get whose key is in the pending write batch flushes the writes first
//     (read-your-writes);
//   * a write whose key is among the pending gets flushes the gets first
//     (no write-after-read reordering);
// so the two pending key sets are disjoint at all times and the flush order
// between them is unobservable — ops on unrelated keys may commit out of
// trace order, but no reordering crosses a same-key dependency.
StatusOr<ReplayResult> ReplayBatched(const std::vector<StateAccess>& trace, KVStore* store,
                                     const ReplayOptions& options) {
  ReplayResult result;
  TimelineCollector tl(options, store, &result);
  CheckpointDriver cp(options, store, &result, &tl);
  const size_t batch_size = static_cast<size_t>(options.batch_size);
  const uint64_t limit =
      options.max_ops == 0 ? trace.size() : std::min<uint64_t>(options.max_ops, trace.size());
  const double pace_ns =
      options.service_rate_ops_per_sec > 0 ? 1e9 / options.service_rate_ops_per_sec : 0;
  const uint64_t sample_every = std::max<uint64_t>(options.latency_sample_every, 1);
  uint64_t until_sample = 0;

  WriteBatch wb;
  std::vector<StateKey> write_keys;  // raw keys currently buffered in wb
  KeyFilter write_filter;
  std::vector<StateKey> get_state_keys;  // raw keys of the pending gets
  KeyFilter get_filter;
  // Encoded pending-get keys, reused via the n_gets watermark so each slot's
  // 16-byte heap buffer survives across flushes (16 bytes exceeds SSO).
  std::vector<std::string> get_keys;
  size_t n_gets = 0;
  std::vector<std::string> get_values;
  std::vector<Status> get_statuses;
  std::string key;
  std::string value_buf;

  auto flush_gets = [&]() -> Status {
    if (n_gets == 0) {
      return Status::Ok();
    }
    get_keys.resize(n_gets);  // shrink-only; kept slots keep their buffers
    const bool sampled = until_sample == 0;
    until_sample = sampled ? sample_every - 1 : until_sample - 1;
    Clock::time_point t0;
    if (sampled) {
      t0 = Clock::now();
    }
    Status s = store->MultiGet(get_keys, &get_values, &get_statuses, options.read_options);
    if (!s.ok()) {
      return s;  // per-key NotFound stays in statuses; this is a real error
    }
    if (sampled) {
      uint64_t ns = ElapsedNs(t0, Clock::now());
      result.latency_ns.Record(ns);
      result.read_latency_ns.Record(ns);
      tl.RecordLatency(ns, /*is_read=*/true);
    }
    for (const Status& st : get_statuses) {
      if (st.IsNotFound()) {
        ++result.not_found;
      }
    }
    result.ops += n_gets;
    n_gets = 0;
    get_state_keys.clear();
    get_filter.Clear();
    tl.OnProgress();
    return Status::Ok();
  };
  auto flush_writes = [&]() -> Status {
    if (wb.empty()) {
      return Status::Ok();
    }
    const bool sampled = until_sample == 0;
    until_sample = sampled ? sample_every - 1 : until_sample - 1;
    Clock::time_point t0;
    if (sampled) {
      t0 = Clock::now();
    }
    GADGET_RETURN_IF_ERROR(store->Write(wb));
    if (sampled) {
      uint64_t ns = ElapsedNs(t0, Clock::now());
      result.latency_ns.Record(ns);
      result.write_latency_ns.Record(ns);
      tl.RecordLatency(ns, /*is_read=*/false);
    }
    result.ops += wb.size();
    wb.Clear();
    write_keys.clear();
    write_filter.Clear();
    tl.OnProgress();
    return Status::Ok();
  };

  auto start = Clock::now();
  tl.Start(start);
  cp.Start(start);
  for (uint64_t i = 0; i < limit; ++i) {
    // A due checkpoint first flushes BOTH pending buffers so the image is an
    // exact trace prefix (the buffers are key-disjoint; either flush order
    // is correct), then cuts it. result.ops only advances at flushes, so
    // like timeline intervals the cut can overshoot its boundary by up to
    // batch_size - 1 ops.
    if (cp.Due()) {
      GADGET_RETURN_IF_ERROR(flush_writes());
      GADGET_RETURN_IF_ERROR(flush_gets());
      GADGET_RETURN_IF_ERROR(cp.Take());
    }
    const StateAccess& a = trace[i];
    if (pace_ns > 0) {
      auto due =
          start + std::chrono::nanoseconds(static_cast<uint64_t>(pace_ns * static_cast<double>(i)));
      std::this_thread::sleep_until(due);
    }
    StateKey k = a.key;
    k.hi += options.key_hi_offset;
    const uint64_t h = KeyFilter::HashOf(k);
    if (a.op == OpType::kGet) {
      if (!wb.empty() && BatchContains(write_keys, write_filter, k, h)) {
        GADGET_RETURN_IF_ERROR(flush_writes());  // read-your-writes
      }
      if (n_gets == get_keys.size()) {
        get_keys.emplace_back();
      }
      EncodeStateKeyTo(k, &get_keys[n_gets]);
      ++n_gets;
      get_state_keys.push_back(k);
      get_filter.Add(h);
      if (n_gets >= batch_size) {
        GADGET_RETURN_IF_ERROR(flush_gets());
      }
      continue;
    }
    if (n_gets != 0 && BatchContains(get_state_keys, get_filter, k, h)) {
      GADGET_RETURN_IF_ERROR(flush_gets());  // a pending get precedes this write
    }
    EncodeStateKeyTo(k, &key);
    if (a.value_size > value_buf.size()) {
      value_buf.resize(a.value_size, 'v');
    }
    std::string_view value(value_buf.data(), a.value_size);
    switch (a.op) {
      case OpType::kPut:
        wb.Put(key, value);
        break;
      case OpType::kMerge:
        // Engines without native merge apply this as an eager RMW, the same
        // translation the single-op path makes.
        wb.Merge(key, value);
        break;
      case OpType::kDelete:
        wb.Delete(key);
        break;
      case OpType::kGet:
        break;  // handled above
    }
    write_keys.push_back(k);
    write_filter.Add(h);
    if (wb.size() >= batch_size) {
      GADGET_RETURN_IF_ERROR(flush_writes());
    }
  }
  // Trailing partial batches: the pending gets and pending writes are
  // key-disjoint (both conflict rules above), so either order is correct.
  GADGET_RETURN_IF_ERROR(flush_writes());
  GADGET_RETURN_IF_ERROR(flush_gets());
  auto end = Clock::now();
  tl.Finish(end);
  result.elapsed_seconds = static_cast<double>(ElapsedNs(start, end)) / 1e9;
  result.throughput_ops_per_sec =
      result.elapsed_seconds > 0 ? static_cast<double>(result.ops) / result.elapsed_seconds : 0;
  return result;
}

}  // namespace

void TimelineSample::MergeFrom(const TimelineSample& other) {
  ops += other.ops;
  not_found += other.not_found;
  start_seconds = std::min(start_seconds, other.start_seconds);
  end_seconds = std::max(end_seconds, other.end_seconds);
  double span = end_seconds - start_seconds;
  ops_per_sec = span > 0 ? static_cast<double>(ops) / span : 0;
  read_latency_ns.Merge(other.read_latency_ns);
  write_latency_ns.Merge(other.write_latency_ns);
  stats_delta.MergeMax(other.stats_delta);
  checkpoints += other.checkpoints;
  checkpoint_micros += other.checkpoint_micros;
}

void ReplayResult::MergeFrom(const ReplayResult& other) {
  ops += other.ops;
  not_found += other.not_found;
  latency_ns.Merge(other.latency_ns);
  read_latency_ns.Merge(other.read_latency_ns);
  write_latency_ns.Merge(other.write_latency_ns);
  elapsed_seconds = std::max(elapsed_seconds, other.elapsed_seconds);
  throughput_ops_per_sec =
      elapsed_seconds > 0 ? static_cast<double>(ops) / elapsed_seconds : 0;
  for (size_t i = 0; i < other.timeline.size(); ++i) {
    if (i < timeline.size()) {
      timeline[i].MergeFrom(other.timeline[i]);
    } else {
      timeline.push_back(other.timeline[i]);
    }
  }
  // Checkpointing runs on one instance; appended samples keep their indices.
  checkpoints.insert(checkpoints.end(), other.checkpoints.begin(), other.checkpoints.end());
}

std::string ReplayResult::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%llu ops in %.2fs -> %.0f ops/s, p50=%.1fus p99.9=%.1fus",
                static_cast<unsigned long long>(ops), elapsed_seconds, throughput_ops_per_sec,
                static_cast<double>(latency_ns.Percentile(50)) / 1000.0,
                static_cast<double>(latency_ns.Percentile(99.9)) / 1000.0);
  return std::string(buf);
}

StatusOr<ReplayResult> ReplayTrace(const std::vector<StateAccess>& trace, KVStore* store,
                                   const ReplayOptions& options) {
  if (options.batch_size > 1) {
    return ReplayBatched(trace, store, options);
  }
  ReplayResult result;
  TimelineCollector tl(options, store, &result);
  CheckpointDriver cp(options, store, &result, &tl);
  const bool has_merge = store->supports_merge();
  // Reusable synthetic value buffer; contents are irrelevant, size matters.
  std::string value_buf;
  std::string read_buf;

  const uint64_t limit =
      options.max_ops == 0 ? trace.size() : std::min<uint64_t>(options.max_ops, trace.size());
  const double pace_ns =
      options.service_rate_ops_per_sec > 0 ? 1e9 / options.service_rate_ops_per_sec : 0;
  const uint64_t sample_every = std::max<uint64_t>(options.latency_sample_every, 1);
  uint64_t until_sample = 0;  // countdown: avoids a divide per op
  std::string key;  // reused: EncodeStateKeyTo avoids an allocation per op

  auto start = Clock::now();
  tl.Start(start);
  cp.Start(start);
  for (uint64_t i = 0; i < limit; ++i) {
    if (cp.Due()) {
      GADGET_RETURN_IF_ERROR(cp.Take());  // store state == trace[0, i) exactly
    }
    const StateAccess& a = trace[i];
    if (pace_ns > 0) {
      auto due = start + std::chrono::nanoseconds(static_cast<uint64_t>(pace_ns * static_cast<double>(i)));
      std::this_thread::sleep_until(due);
    }
    StateKey k = a.key;
    k.hi += options.key_hi_offset;
    EncodeStateKeyTo(k, &key);
    if (a.value_size > value_buf.size()) {
      value_buf.resize(a.value_size, 'v');
    }
    std::string_view value(value_buf.data(), a.value_size);

    const bool sampled = until_sample == 0;
    until_sample = sampled ? sample_every - 1 : until_sample - 1;
    Clock::time_point op_start;
    if (sampled) {
      op_start = Clock::now();
    }
    Status s;
    bool is_read = false;
    switch (a.op) {
      case OpType::kGet:
        is_read = true;
        s = store->Get(key, &read_buf, options.read_options);
        if (s.IsNotFound()) {
          ++result.not_found;
          s = Status::Ok();
        }
        break;
      case OpType::kPut:
        s = store->Put(key, value);
        break;
      case OpType::kMerge:
        s = has_merge ? store->Merge(key, value) : store->ReadModifyWrite(key, value);
        break;
      case OpType::kDelete:
        s = store->Delete(key);
        break;
    }
    if (!s.ok()) {
      return s;
    }
    if (sampled) {
      uint64_t ns = ElapsedNs(op_start, Clock::now());
      result.latency_ns.Record(ns);
      if (is_read) {
        result.read_latency_ns.Record(ns);
      } else {
        result.write_latency_ns.Record(ns);
      }
      tl.RecordLatency(ns, is_read);
    }
    ++result.ops;
    tl.OnProgress();
  }
  auto end = Clock::now();
  tl.Finish(end);
  result.elapsed_seconds = static_cast<double>(ElapsedNs(start, end)) / 1e9;
  result.throughput_ops_per_sec =
      result.elapsed_seconds > 0 ? static_cast<double>(result.ops) / result.elapsed_seconds : 0;
  return result;
}

}  // namespace gadget
