#include "src/gadget/evaluator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

namespace gadget {
namespace {

using Clock = std::chrono::steady_clock;

inline uint64_t ElapsedNs(Clock::time_point a, Clock::time_point b) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

}  // namespace

void ReplayResult::MergeFrom(const ReplayResult& other) {
  ops += other.ops;
  not_found += other.not_found;
  latency_ns.Merge(other.latency_ns);
  read_latency_ns.Merge(other.read_latency_ns);
  write_latency_ns.Merge(other.write_latency_ns);
  elapsed_seconds = std::max(elapsed_seconds, other.elapsed_seconds);
  throughput_ops_per_sec =
      elapsed_seconds > 0 ? static_cast<double>(ops) / elapsed_seconds : 0;
}

std::string ReplayResult::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%llu ops in %.2fs -> %.0f ops/s, p50=%.1fus p99.9=%.1fus",
                static_cast<unsigned long long>(ops), elapsed_seconds, throughput_ops_per_sec,
                static_cast<double>(latency_ns.Percentile(50)) / 1000.0,
                static_cast<double>(latency_ns.Percentile(99.9)) / 1000.0);
  return std::string(buf);
}

StatusOr<ReplayResult> ReplayTrace(const std::vector<StateAccess>& trace, KVStore* store,
                                   const ReplayOptions& options) {
  ReplayResult result;
  const bool has_merge = store->supports_merge();
  // Reusable synthetic value buffer; contents are irrelevant, size matters.
  std::string value_buf;
  std::string read_buf;

  const uint64_t limit =
      options.max_ops == 0 ? trace.size() : std::min<uint64_t>(options.max_ops, trace.size());
  const double pace_ns =
      options.service_rate_ops_per_sec > 0 ? 1e9 / options.service_rate_ops_per_sec : 0;
  const uint64_t sample_every = std::max<uint64_t>(options.latency_sample_every, 1);
  uint64_t until_sample = 0;  // countdown: avoids a divide per op
  std::string key;  // reused: EncodeStateKeyTo avoids an allocation per op

  auto start = Clock::now();
  for (uint64_t i = 0; i < limit; ++i) {
    const StateAccess& a = trace[i];
    if (pace_ns > 0) {
      auto due = start + std::chrono::nanoseconds(static_cast<uint64_t>(pace_ns * static_cast<double>(i)));
      std::this_thread::sleep_until(due);
    }
    StateKey k = a.key;
    k.hi += options.key_hi_offset;
    EncodeStateKeyTo(k, &key);
    if (a.value_size > value_buf.size()) {
      value_buf.resize(a.value_size, 'v');
    }
    std::string_view value(value_buf.data(), a.value_size);

    const bool sampled = until_sample == 0;
    until_sample = sampled ? sample_every - 1 : until_sample - 1;
    Clock::time_point op_start;
    if (sampled) {
      op_start = Clock::now();
    }
    Status s;
    bool is_read = false;
    switch (a.op) {
      case OpType::kGet:
        is_read = true;
        s = store->Get(key, &read_buf);
        if (s.IsNotFound()) {
          ++result.not_found;
          s = Status::Ok();
        }
        break;
      case OpType::kPut:
        s = store->Put(key, value);
        break;
      case OpType::kMerge:
        s = has_merge ? store->Merge(key, value) : store->ReadModifyWrite(key, value);
        break;
      case OpType::kDelete:
        s = store->Delete(key);
        break;
    }
    if (!s.ok()) {
      return s;
    }
    if (sampled) {
      uint64_t ns = ElapsedNs(op_start, Clock::now());
      result.latency_ns.Record(ns);
      if (is_read) {
        result.read_latency_ns.Record(ns);
      } else {
        result.write_latency_ns.Record(ns);
      }
    }
    ++result.ops;
  }
  auto end = Clock::now();
  result.elapsed_seconds = static_cast<double>(ElapsedNs(start, end)) / 1e9;
  result.throughput_ops_per_sec =
      result.elapsed_seconds > 0 ? static_cast<double>(result.ops) / result.elapsed_seconds : 0;
  return result;
}

}  // namespace gadget
