// Machine-readable run reports (DESIGN.md §5d). A report is a versioned JSON
// document capturing everything one evaluator run measured: run metadata,
// the final ReplayResult (with full histograms as sparse bucket arrays, so a
// parsed report merges bit-identically), the timeline samples, and the
// store's StoreStats. CI consumes reports through tools/report_check, which
// validates the schema and diffs two reports under a regression budget.
//
// Two schema kinds share the machinery:
//   gadget.report/1 — one evaluator run (tools/gadget --report=FILE);
//   gadget.bench/1  — a set of labeled runs from one bench binary
//                     (bench_util's EmitBenchJson).
#ifndef GADGET_GADGET_REPORT_H_
#define GADGET_GADGET_REPORT_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/json.h"
#include "src/common/status.h"
#include "src/gadget/evaluator.h"
#include "src/stores/kvstore.h"

namespace gadget {

inline constexpr char kReportSchema[] = "gadget.report/1";
inline constexpr char kBenchSchema[] = "gadget.bench/1";

struct ReportMeta {
  std::string engine;
  std::string git;        // best-effort `git describe --always --dirty`
  std::string timestamp;  // ISO-8601 UTC
  uint64_t batch_size = 1;
  std::map<std::string, std::string> config;  // resolved run configuration
};

// Best-effort `git describe --always --dirty`. The GADGET_GIT_DESCRIBE
// environment variable overrides (CI sets it so containers without a .git
// checkout still stamp reports); "" when neither source is available.
std::string GitDescribe();

// "YYYY-MM-DDTHH:MM:SSZ", UTC wall clock.
std::string CurrentTimestamp();

// Full histogram state: {"count","sum","min","max","buckets":[[index,count]...]}.
JsonValue HistogramToJson(const LatencyHistogram& h);
// Inverse of HistogramToJson. Returns false (leaving *out reset) on missing
// fields, malformed bucket pairs, or out-of-range bucket indexes.
bool HistogramFromJson(const JsonValue& v, LatencyHistogram* out);

// Every StoreStats counter by field name, plus "level_files" as an array.
JsonValue StoreStatsToJson(const StoreStats& s);

// Timeline sample: interval bounds/throughput/not_found, read+write op
// counts with p50/p99/p999, bytes in/out pulled up from the stats delta,
// checkpoint count/time for the interval, and the full "stats_delta" object.
JsonValue TimelineSampleToJson(const TimelineSample& s);

// One checkpoint taken during replay: position, timing, image size/capture.
JsonValue CheckpointSampleToJson(const CheckpointSample& s);

// The crash/restore scenario outcome (the report's optional "recovery"
// object): restore + gap-replay timing and oracle verification counts.
JsonValue RecoveryResultToJson(const RecoveryResult& r);

// The "result" payload shared by both schemas: scalars, full histograms,
// timeline array, and (when checkpointing ran) the "checkpoints" array.
JsonValue ReplayResultToJson(const ReplayResult& result);

// Assembles the gadget.report/1 document. `recovery` is optional (nullptr =
// no crash/restore scenario ran); when present it becomes the top-level
// "recovery" object.
JsonValue BuildReportJson(const ReportMeta& meta, const ReplayResult& result,
                          const StoreStats& stats, const RecoveryResult* recovery = nullptr);

// BuildReportJson + pretty-printed write to `path`.
Status WriteReportJson(const std::string& path, const ReportMeta& meta,
                       const ReplayResult& result, const StoreStats& stats,
                       const RecoveryResult* recovery = nullptr);

// Structural validation: Ok iff `doc` is a well-formed gadget.report/1 or
// gadget.bench/1 document (schema tag, required sections and field types,
// histograms that restore cleanly). InvalidArgument names the first problem.
Status ValidateReportJson(const JsonValue& doc);

struct RegressionCheck {
  bool passed = true;
  size_t compared = 0;                // metrics actually compared
  std::vector<std::string> failures;  // one human-readable line per breach
};

// Compares `candidate` against `baseline` (both must validate and carry the
// same schema). Throughput may drop, and overall-latency p50/p99/p999 may
// rise, by at most `max_regression` (fractional: 0.15 = 15%). Bench
// documents compare run-by-run matched on label; runs present on only one
// side are skipped. Returns the verdict; Status is only non-Ok for
// malformed inputs.
StatusOr<RegressionCheck> CompareReportJson(const JsonValue& baseline,
                                            const JsonValue& candidate, double max_regression);

}  // namespace gadget

#endif  // GADGET_GADGET_REPORT_H_
