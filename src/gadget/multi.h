// Multi-instance evaluation (§6.4 and the §8 external-state direction):
// several Gadget workload traces replayed concurrently against ONE store
// instance, one thread per instance, per-instance measurements. The dataflow
// model's single-writer-per-key guarantee is preserved by giving each
// instance a disjoint key namespace.
#ifndef GADGET_GADGET_MULTI_H_
#define GADGET_GADGET_MULTI_H_

#include <vector>

#include "src/gadget/evaluator.h"

namespace gadget {

struct ConcurrentReplayResult {
  std::vector<ReplayResult> per_instance;
  double combined_throughput_ops_per_sec = 0;
};

// Replays every trace in `traces` concurrently against `store`. Each
// instance i has its key.hi space offset by i * namespace_stride so writers
// never collide (pass 0 to keep keys as-is). Blocks until all instances
// finish.
StatusOr<ConcurrentReplayResult> ReplayConcurrently(
    const std::vector<std::vector<StateAccess>>& traces, KVStore* store,
    const ReplayOptions& options = {}, uint64_t namespace_stride = 1ull << 32);

}  // namespace gadget

#endif  // GADGET_GADGET_MULTI_H_
