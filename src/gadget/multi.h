// Multi-instance evaluation (§6.4 and the §8 external-state direction):
// several Gadget workload traces replayed concurrently against ONE store
// instance, one thread per instance, per-instance measurements. The dataflow
// model's single-writer-per-key guarantee is preserved by giving each
// instance a disjoint key namespace (ReplayConcurrently) or by partitioning
// one trace so each key's accesses all land on the same thread
// (ReplaySharded).
#ifndef GADGET_GADGET_MULTI_H_
#define GADGET_GADGET_MULTI_H_

#include <vector>

#include "src/gadget/evaluator.h"

namespace gadget {

struct ConcurrentReplayResult {
  // One entry per instance. per_instance[i] is meaningful only when
  // statuses[i].ok(); failed instances leave a default-constructed result.
  std::vector<ReplayResult> per_instance;
  std::vector<Status> statuses;
  double combined_throughput_ops_per_sec = 0;  // sum over ok instances
  uint64_t total_ops = 0;                      // sum over ok instances

  bool all_ok() const;
  // Ok() when every instance succeeded; otherwise the first failure.
  Status FirstError() const;
  // Bucket-wise merge of all ok instances' measurements (cheap: no
  // per-sample work).
  ReplayResult Merged() const;
};

// Replays every trace in `traces` concurrently against `store`. Each
// instance i has its key.hi space offset by i * namespace_stride so writers
// never collide (pass 0 to keep keys as-is). The offset is applied on the
// fly inside the replay loop — traces are never copied. Blocks until all
// instances finish and reports every instance's status (a failing instance
// does not mask the others' results).
StatusOr<ConcurrentReplayResult> ReplayConcurrently(
    const std::vector<std::vector<StateAccess>>& traces, KVStore* store,
    const ReplayOptions& options = {}, uint64_t namespace_stride = 1ull << 32);

// Partitions ONE trace across `num_threads` workers by key hash and replays
// the shards concurrently against `store`. All accesses to a given key stay
// on one thread in their original order, so the single-writer-per-key
// invariant holds and the final store state equals a sequential replay.
// This is the Fig. 14 thread-sweep mode: one workload, one store, 1..N
// threads. options.max_ops bounds the TOTAL op count across shards.
StatusOr<ConcurrentReplayResult> ReplaySharded(const std::vector<StateAccess>& trace,
                                               KVStore* store, unsigned num_threads,
                                               const ReplayOptions& options = {});

}  // namespace gadget

#endif  // GADGET_GADGET_MULTI_H_
