// The eleven built-in operator logics (§6.1) expressed in Gadget's
// state-machine API. Each Run() is a small switch over machine states in the
// style of Fig. 9; Terminate() closes a machine with its final requests
// (FGet + delete for windows). Only metadata flows here — no values, no
// store calls (§5.2).
#include <algorithm>
#include <map>
#include <vector>

#include "src/gadget/driver.h"

namespace gadget {
namespace {

// Machine states shared by the window logics (Fig. 9).
enum WindowState : int {
  kGetState = 0,
  kPutState = 1,
};

// ------------------------------------------------ fixed windows (tumb/slid)

class FixedWindowLogic : public OperatorLogic {
 public:
  FixedWindowLogic(bool sliding, bool holistic) : sliding_(sliding), holistic_(holistic) {}

  const char* name() const override {
    if (sliding_) {
      return holistic_ ? "sliding_hol" : "sliding_incr";
    }
    return holistic_ ? "tumbling_hol" : "tumbling_incr";
  }

  std::vector<StateKey> AssignStateMachines(const Event& e, Driver& driver) override {
    const OperatorConfig& cfg = driver.config();
    const uint64_t length = cfg.window_length_ms;
    const uint64_t slide = sliding_ ? cfg.window_slide_ms : length;
    std::vector<StateKey> keys;
    if (e.event_time_ms + length + cfg.allowed_lateness_ms <= driver.watermark()) {
      return keys;  // dropped late event
    }
    uint64_t first_end = (e.event_time_ms / slide) * slide + slide;
    for (uint64_t end = first_end; end <= e.event_time_ms + length; end += slide) {
      if (end - std::min(end, length) > e.event_time_ms) {
        continue;
      }
      if (end + cfg.allowed_lateness_ms <= driver.watermark()) {
        continue;
      }
      StateKey key{e.key, end};
      if (driver.FindMachine(key) == nullptr) {
        driver.GetOrCreateMachine(key, e.event_time_ms);
        driver.RegisterExpiry(end + cfg.allowed_lateness_ms, key);
      }
      keys.push_back(key);
    }
    return keys;
  }

  void Run(StateMachine& m, const Event& e, Driver& driver, OpEmitter& out) override {
    if (holistic_) {
      // Holistic machine: a single merge per event; contents accumulate.
      out.Emit(OpType::kMerge, m.key, e.value_size, e.event_time_ms);
      m.bytes += e.value_size;
      ++m.elements;
      return;
    }
    // Incremental machine (Fig. 9): GET then PUT per event.
    bool done = false;
    while (!done) {
      switch (m.state) {
        case kGetState:
          out.Emit(OpType::kGet, m.key, 0, e.event_time_ms);
          m.state = kPutState;
          break;
        case kPutState:
          out.Emit(OpType::kPut, m.key, driver.config().agg_value_size, e.event_time_ms);
          ++m.elements;
          m.state = kGetState;
          done = true;
          break;
      }
    }
  }

  void Terminate(StateMachine& m, uint64_t fire_time, Driver& driver, OpEmitter& out) override {
    // FGet retrieves the window contents, then the bucket is deleted.
    out.Emit(OpType::kGet, m.key, 0, driver.watermark());
    out.Emit(OpType::kDelete, m.key, 0, driver.watermark());
    driver.DropMachine(m.key);
  }

 private:
  bool sliding_;
  bool holistic_;
};

// ---------------------------------------------------------- session windows

class SessionWindowLogic : public OperatorLogic {
 public:
  explicit SessionWindowLogic(bool holistic) : holistic_(holistic) {}

  const char* name() const override { return holistic_ ? "session_hol" : "session_incr"; }

  // Mirrors flinklet's merging-window mechanics exactly (see
  // src/flinklet/window_ops.cc): immutable representative window ids, a
  // per-key merging-set entry read every event and lazily merged on
  // structural change, and absorb-into-survivor session merges.
  std::vector<StateKey> AssignStateMachines(const Event& e, Driver& driver) override {
    const OperatorConfig& cfg = driver.config();
    const uint64_t gap = cfg.session_gap_ms;
    const uint64_t t = e.event_time_ms;
    plan_ = Plan{};
    if (t + gap + cfg.allowed_lateness_ms <= driver.watermark()) {
      return {};
    }
    auto& sessions = registry_[e.key];
    std::vector<size_t> touching;
    for (size_t i = 0; i < sessions.size(); ++i) {
      if (t + gap >= sessions[i].start && t <= sessions[i].end) {
        touching.push_back(i);
      }
    }

    if (touching.empty()) {
      Session s{t, t, t + gap, 0};
      sessions.push_back(s);
      plan_.kind = Plan::kFresh;
      StateKey win{e.key, s.sid << 1};
      StateMachine& m = driver.GetOrCreateMachine(win, t);
      m.created_ms = s.sid;
      m.aux = s.end;
      driver.RegisterExpiry(s.end + cfg.allowed_lateness_ms, win);
      return {win};
    }

    if (touching.size() == 1) {
      Session& s = sessions[touching[0]];
      s.start = std::min(s.start, t);
      uint64_t new_end = std::max(s.end, t + gap);
      StateKey win{e.key, s.sid << 1};
      if (new_end != s.end) {
        s.end = new_end;
        driver.RegisterExpiry(s.end + cfg.allowed_lateness_ms, win);
      }
      StateMachine* m = driver.FindMachine(win);
      if (m != nullptr) {
        m->aux = s.end;
      }
      plan_.kind = Plan::kExtend;
      return {win};
    }

    // Bridge: absorb into the session with the smallest id.
    size_t survivor_idx = touching[0];
    for (size_t idx : touching) {
      if (sessions[idx].sid < sessions[survivor_idx].sid) {
        survivor_idx = idx;
      }
    }
    Session merged = sessions[survivor_idx];
    merged.start = std::min(merged.start, t);
    merged.end = std::max(merged.end, t + gap);
    plan_.kind = Plan::kBridge;
    for (size_t idx : touching) {
      merged.start = std::min(merged.start, sessions[idx].start);
      merged.end = std::max(merged.end, sessions[idx].end);
      if (idx == survivor_idx) {
        continue;
      }
      StateKey old_win{e.key, sessions[idx].sid << 1};
      plan_.absorbed.push_back(old_win);
      if (StateMachine* old_m = driver.FindMachine(old_win)) {
        plan_.absorbed_bytes += old_m->bytes;
      }
      driver.DropMachine(old_win);
    }
    std::vector<Session> kept;
    for (size_t i = 0; i < sessions.size(); ++i) {
      bool was_touching = false;
      for (size_t idx : touching) {
        if (idx == i) {
          was_touching = true;
          break;
        }
      }
      if (!was_touching) {
        kept.push_back(sessions[i]);
      }
    }
    kept.push_back(merged);
    sessions = std::move(kept);
    StateKey survivor_win{e.key, merged.sid << 1};
    StateMachine& m = driver.GetOrCreateMachine(survivor_win, t);
    m.created_ms = merged.sid;
    m.aux = merged.end;
    driver.RegisterExpiry(merged.end + cfg.allowed_lateness_ms, survivor_win);
    return {survivor_win};
  }

  void Run(StateMachine& m, const Event& e, Driver& driver, OpEmitter& out) override {
    const uint64_t t = e.event_time_ms;
    const uint32_t agg = driver.config().agg_value_size;
    StateKey set_key{m.key.hi, 1};
    out.Emit(OpType::kGet, set_key, 0, t);  // merging-set read, every event
    switch (plan_.kind) {
      case Plan::kFresh:
        out.Emit(OpType::kMerge, set_key, kSetDeltaBytes, t);
        if (holistic_) {
          out.Emit(OpType::kMerge, m.key, e.value_size, t);
          m.bytes += e.value_size;
        } else {
          out.Emit(OpType::kPut, m.key, agg, t);
        }
        ++m.elements;
        break;
      case Plan::kExtend:
        if (holistic_) {
          out.Emit(OpType::kMerge, m.key, e.value_size, t);
          m.bytes += e.value_size;
        } else {
          out.Emit(OpType::kGet, m.key, 0, t);
          out.Emit(OpType::kPut, m.key, agg, t);
        }
        ++m.elements;
        break;
      case Plan::kBridge: {
        for (const StateKey& old_win : plan_.absorbed) {
          out.Emit(OpType::kGet, old_win, 0, t);
          out.Emit(OpType::kDelete, old_win, 0, t);
        }
        if (holistic_) {
          uint64_t payload = plan_.absorbed_bytes + e.value_size;
          out.Emit(OpType::kMerge, m.key,
                   static_cast<uint32_t>(std::min<uint64_t>(payload, 64u << 20)), t);
          m.bytes += payload;
        } else {
          out.Emit(OpType::kMerge, m.key, agg, t);
        }
        ++m.elements;
        out.Emit(OpType::kMerge, set_key, kSetDeltaBytes, t);
        break;
      }
    }
    plan_ = Plan{};
  }

  void Terminate(StateMachine& m, uint64_t fire_time, Driver& driver, OpEmitter& out) override {
    auto rit = registry_.find(m.key.hi);
    if (rit == registry_.end()) {
      driver.DropMachine(m.key);
      return;
    }
    auto& sessions = rit->second;
    const uint64_t sid = m.key.lo >> 1;
    bool live = false;
    for (size_t i = 0; i < sessions.size(); ++i) {
      if (sessions[i].sid == sid &&
          sessions[i].end + driver.config().allowed_lateness_ms == fire_time) {
        sessions.erase(sessions.begin() + static_cast<long>(i));
        live = true;
        break;
      }
    }
    if (!live) {
      return;  // stale timer (session extended or merged away)
    }
    out.Emit(OpType::kGet, m.key, 0, driver.watermark());
    out.Emit(OpType::kDelete, m.key, 0, driver.watermark());
    if (sessions.empty()) {
      out.Emit(OpType::kDelete, StateKey{m.key.hi, 1}, 0, driver.watermark());
      registry_.erase(rit);
    }
    driver.DropMachine(m.key);
  }

 private:
  static constexpr uint32_t kSetDeltaBytes = 16;

  struct Session {
    uint64_t sid;
    uint64_t start;
    uint64_t end;
    uint64_t bytes;
  };
  struct Plan {
    enum Kind { kFresh, kExtend, kBridge } kind = kFresh;
    std::vector<StateKey> absorbed;
    uint64_t absorbed_bytes = 0;
  };

  bool holistic_;
  std::map<uint64_t, std::vector<Session>> registry_;
  Plan plan_;
};

// ---------------------------------------------------------- continuous join

class ContinuousJoinLogic : public OperatorLogic {
 public:
  const char* name() const override { return "join_cont"; }

  std::vector<StateKey> AssignStateMachines(const Event& e, Driver& driver) override {
    StateKey record_key{e.key, 0};
    if (e.stream_id == 0 && e.expiry_time_ms == 0) {
      driver.GetOrCreateMachine(record_key, e.event_time_ms).state = 1;  // open
      return {record_key};
    }
    // Close events and probes both address the record machine if it exists.
    if (driver.FindMachine(record_key) == nullptr && e.stream_id != 0) {
      // Probe with no open record: still costs the get.
      driver.GetOrCreateMachine(record_key, e.event_time_ms).state = 0;  // closed/ghost
    } else if (driver.FindMachine(record_key) == nullptr) {
      driver.GetOrCreateMachine(record_key, e.event_time_ms).state = 0;
    }
    return {record_key};
  }

  void Run(StateMachine& m, const Event& e, Driver& driver, OpEmitter& out) override {
    const uint64_t t = e.event_time_ms;
    if (e.stream_id == 0) {
      if (e.expiry_time_ms != 0) {
        // Validity closes: final read of the accumulated result + cleanup of
        // both entries.
        out.Emit(OpType::kGet, StateKey{m.key.hi, 1}, 0, t);
        out.Emit(OpType::kDelete, StateKey{m.key.hi, 0}, 0, t);
        out.Emit(OpType::kDelete, StateKey{m.key.hi, 1}, 0, t);
        driver.DropMachine(m.key);
        return;
      }
      if (m.state == 1 && m.elements == 0) {
        out.Emit(OpType::kPut, m.key, e.value_size, t);
        ++m.elements;
      } else {
        out.Emit(OpType::kPut, m.key, e.value_size, t);
      }
      return;
    }
    // Probe side: get the record; merge into the result when it is open.
    out.Emit(OpType::kGet, m.key, 0, t);
    if (m.state == 1) {
      out.Emit(OpType::kMerge, StateKey{m.key.hi, 1}, e.value_size, t);
    } else if (m.elements == 0) {
      // Ghost machine created just for the probe: drop it again.
      driver.DropMachine(m.key);
    }
  }

  void Terminate(StateMachine& m, uint64_t fire_time, Driver& driver, OpEmitter& out) override {
    driver.DropMachine(m.key);
  }
};

// ------------------------------------------------------------ interval join

class IntervalJoinLogic : public OperatorLogic {
 public:
  const char* name() const override { return "join_interval"; }

  std::vector<StateKey> AssignStateMachines(const Event& e, Driver& driver) override {
    const OperatorConfig& cfg = driver.config();
    StateKey key{e.key, (e.event_time_ms << 1) | (e.stream_id & 1)};
    driver.GetOrCreateMachine(key, e.event_time_ms);
    driver.RegisterExpiry(e.event_time_ms + cfg.join_upper_ms + cfg.allowed_lateness_ms, key);
    return {key};
  }

  void Run(StateMachine& m, const Event& e, Driver& driver, OpEmitter& out) override {
    const OperatorConfig& cfg = driver.config();
    const uint64_t t = e.event_time_ms;
    const uint64_t mid = (cfg.join_lower_ms + cfg.join_upper_ms) / 2;
    const uint8_t side = e.stream_id & 1;
    // Buffer own event under its timestamp; probe the opposite buffer.
    out.Emit(OpType::kPut, m.key, e.value_size, t);
    ++m.elements;
    uint64_t probe_t = side == 0 ? t + mid : (t > mid ? t - mid : 0);
    out.Emit(OpType::kGet, StateKey{e.key, (probe_t << 1) | static_cast<uint64_t>(1 - side)}, 0,
             t);
  }

  void Terminate(StateMachine& m, uint64_t fire_time, Driver& driver, OpEmitter& out) override {
    out.Emit(OpType::kDelete, m.key, 0, driver.watermark());
    driver.DropMachine(m.key);
  }
};

// -------------------------------------------------------------- window join

class WindowJoinLogic : public OperatorLogic {
 public:
  explicit WindowJoinLogic(bool sliding) : sliding_(sliding) {}

  const char* name() const override { return sliding_ ? "join_sliding" : "join_tumbling"; }

  std::vector<StateKey> AssignStateMachines(const Event& e, Driver& driver) override {
    const OperatorConfig& cfg = driver.config();
    const uint64_t length = cfg.window_length_ms;
    const uint64_t slide = sliding_ ? cfg.window_slide_ms : length;
    const uint64_t t = e.event_time_ms;
    const uint8_t side = e.stream_id & 1;
    std::vector<StateKey> keys;
    if (t + length + cfg.allowed_lateness_ms <= driver.watermark()) {
      return keys;
    }
    uint64_t first_end = (t / slide) * slide + slide;
    for (uint64_t end = first_end; end <= t + length; end += slide) {
      if (end - std::min(end, length) > t) {
        continue;
      }
      if (end + cfg.allowed_lateness_ms <= driver.watermark()) {
        continue;
      }
      StateKey bucket{e.key, (end << 1) | side};
      if (driver.FindMachine(bucket) == nullptr) {
        driver.GetOrCreateMachine(bucket, t);
        // The window (both sides) expires together; register the side-0 key
        // once and let Terminate handle its sibling.
        if (side == 0 || driver.FindMachine(StateKey{e.key, (end << 1)}) == nullptr) {
          driver.RegisterExpiry(end + cfg.allowed_lateness_ms, bucket);
        }
      }
      keys.push_back(bucket);
    }
    return keys;
  }

  void Run(StateMachine& m, const Event& e, Driver& driver, OpEmitter& out) override {
    out.Emit(OpType::kMerge, m.key, e.value_size, e.event_time_ms);
    m.bytes += e.value_size;
    ++m.elements;
  }

  void Terminate(StateMachine& m, uint64_t fire_time, Driver& driver, OpEmitter& out) override {
    // Fire the window: read both side buckets, then delete both.
    StateKey left{m.key.hi, m.key.lo & ~1ull};
    StateKey right{m.key.hi, m.key.lo | 1ull};
    out.Emit(OpType::kGet, left, 0, driver.watermark());
    out.Emit(OpType::kGet, right, 0, driver.watermark());
    out.Emit(OpType::kDelete, left, 0, driver.watermark());
    out.Emit(OpType::kDelete, right, 0, driver.watermark());
    driver.DropMachine(left);
    driver.DropMachine(right);
  }

 private:
  bool sliding_;
};

// -------------------------------------------------- continuous aggregation

class AggregationLogic : public OperatorLogic {
 public:
  const char* name() const override { return "aggregation"; }

  std::vector<StateKey> AssignStateMachines(const Event& e, Driver& driver) override {
    StateKey key{e.key, 0};
    driver.GetOrCreateMachine(key, e.event_time_ms);
    return {key};
  }

  void Run(StateMachine& m, const Event& e, Driver& driver, OpEmitter& out) override {
    out.Emit(OpType::kGet, m.key, 0, e.event_time_ms);
    out.Emit(OpType::kPut, m.key, driver.config().agg_value_size, e.event_time_ms);
    ++m.elements;
  }

  void Terminate(StateMachine& m, uint64_t fire_time, Driver& driver, OpEmitter& out) override {
    // Rolling aggregates never expire (§3.2.3: working set only grows).
  }
};

}  // namespace

StatusOr<std::unique_ptr<OperatorLogic>> MakeOperatorLogic(const std::string& name) {
  if (name == "tumbling_incr") {
    return std::unique_ptr<OperatorLogic>(new FixedWindowLogic(false, false));
  }
  if (name == "tumbling_hol") {
    return std::unique_ptr<OperatorLogic>(new FixedWindowLogic(false, true));
  }
  if (name == "sliding_incr") {
    return std::unique_ptr<OperatorLogic>(new FixedWindowLogic(true, false));
  }
  if (name == "sliding_hol") {
    return std::unique_ptr<OperatorLogic>(new FixedWindowLogic(true, true));
  }
  if (name == "session_incr") {
    return std::unique_ptr<OperatorLogic>(new SessionWindowLogic(false));
  }
  if (name == "session_hol") {
    return std::unique_ptr<OperatorLogic>(new SessionWindowLogic(true));
  }
  if (name == "join_cont") {
    return std::unique_ptr<OperatorLogic>(new ContinuousJoinLogic());
  }
  if (name == "join_interval") {
    return std::unique_ptr<OperatorLogic>(new IntervalJoinLogic());
  }
  if (name == "join_sliding") {
    return std::unique_ptr<OperatorLogic>(new WindowJoinLogic(true));
  }
  if (name == "join_tumbling") {
    return std::unique_ptr<OperatorLogic>(new WindowJoinLogic(false));
  }
  if (name == "aggregation") {
    return std::unique_ptr<OperatorLogic>(new AggregationLogic());
  }
  return Status::InvalidArgument("unknown operator logic: " + name);
}

}  // namespace gadget
