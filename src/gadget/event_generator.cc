#include "src/gadget/event_generator.h"

#include <algorithm>

#include "src/distgen/ecdf_file.h"
#include "src/streams/trace_io.h"

namespace gadget {
namespace {

class SyntheticEventSource : public EventSource {
 public:
  SyntheticEventSource(const EventGeneratorOptions& opts,
                       std::unique_ptr<Distribution> key_dist,
                       std::unique_ptr<Distribution> value_dist,
                       std::unique_ptr<ArrivalProcess> arrivals)
      : opts_(opts),
        key_dist_(std::move(key_dist)),
        value_dist_(std::move(value_dist)),
        arrivals_(std::move(arrivals)),
        rng_(opts.seed ^ 0x9aD6e7, /*stream=*/21) {}

  bool Next(Event* out) override {
    if (pending_watermark_) {
      pending_watermark_ = false;
      // Heuristic watermark: stream head minus the lateness bound, so late
      // events stay within allowed lateness of the watermark.
      uint64_t wm = clock_ms_ > opts_.max_lateness_ms ? clock_ms_ - opts_.max_lateness_ms : 0;
      *out = Event::Watermark(wm);
      return true;
    }
    if (emitted_ >= opts_.num_events) {
      return false;
    }
    clock_ms_ += arrivals_->NextGap();
    Event e;
    e.event_time_ms = clock_ms_;
    if (opts_.out_of_order_fraction > 0 && rng_.NextDouble() < opts_.out_of_order_fraction) {
      uint64_t lateness = rng_.NextBounded64(opts_.max_lateness_ms + 1);
      e.event_time_ms = clock_ms_ > lateness ? clock_ms_ - lateness : 0;
    }
    e.key = key_dist_->Next();
    e.value_size = static_cast<uint32_t>(value_dist_->Next()) + 1;
    if (opts_.num_streams > 1) {
      // Round-robin across sources (§6.1).
      e.stream_id = static_cast<uint8_t>(emitted_ % static_cast<uint64_t>(opts_.num_streams));
    }
    ++emitted_;
    if (opts_.watermark_every > 0 && emitted_ % opts_.watermark_every == 0) {
      pending_watermark_ = true;
    }
    *out = e;
    return true;
  }

 private:
  EventGeneratorOptions opts_;
  std::unique_ptr<Distribution> key_dist_;
  std::unique_ptr<Distribution> value_dist_;
  std::unique_ptr<ArrivalProcess> arrivals_;
  Pcg32 rng_;
  uint64_t clock_ms_ = 0;
  uint64_t emitted_ = 0;
  bool pending_watermark_ = false;
};

class ReplayEventSource : public EventSource {
 public:
  ReplayEventSource(std::unique_ptr<DatasetGenerator> dataset, uint64_t watermark_every)
      : dataset_(std::move(dataset)), watermark_every_(watermark_every) {}

  bool Next(Event* out) override {
    if (pending_watermark_) {
      pending_watermark_ = false;
      *out = Event::Watermark(max_time_);
      return true;
    }
    Event e;
    if (!dataset_->Next(&e)) {
      return false;
    }
    max_time_ = std::max(max_time_, e.event_time_ms);
    ++emitted_;
    if (watermark_every_ > 0 && emitted_ % watermark_every_ == 0) {
      pending_watermark_ = true;
    }
    *out = e;
    return true;
  }

 private:
  std::unique_ptr<DatasetGenerator> dataset_;
  uint64_t watermark_every_;
  uint64_t emitted_ = 0;
  uint64_t max_time_ = 0;
  bool pending_watermark_ = false;
};

class TraceFileEventSource : public EventSource {
 public:
  TraceFileEventSource(std::unique_ptr<EventTraceReader> reader, uint64_t watermark_every)
      : reader_(std::move(reader)), watermark_every_(watermark_every) {}

  bool Next(Event* out) override {
    if (pending_watermark_) {
      pending_watermark_ = false;
      *out = Event::Watermark(max_time_);
      return true;
    }
    Event e;
    auto more = reader_->Next(&e);
    if (!more.ok() || !*more) {
      return false;
    }
    if (!e.is_watermark()) {
      max_time_ = std::max(max_time_, e.event_time_ms);
      ++records_;
      if (watermark_every_ > 0 && records_ % watermark_every_ == 0) {
        pending_watermark_ = true;
      }
    }
    *out = e;
    return true;
  }

 private:
  std::unique_ptr<EventTraceReader> reader_;
  uint64_t watermark_every_;
  uint64_t records_ = 0;
  uint64_t max_time_ = 0;
  bool pending_watermark_ = false;
};

}  // namespace

StatusOr<std::unique_ptr<EventSource>> MakeTraceFileSource(const std::string& path,
                                                           uint64_t watermark_every) {
  auto reader = EventTraceReader::Open(path);
  if (!reader.ok()) {
    return reader.status();
  }
  return std::unique_ptr<EventSource>(
      new TraceFileEventSource(std::move(*reader), watermark_every));
}

StatusOr<std::unique_ptr<EventSource>> MakeEventGenerator(const EventGeneratorOptions& opts) {
  std::unique_ptr<Distribution> key_dist_owned;
  if (opts.key_distribution.rfind("ecdf:", 0) == 0) {
    auto ecdf = LoadEcdfFile(opts.key_distribution.substr(5), opts.seed);
    if (!ecdf.ok()) {
      return ecdf.status();
    }
    key_dist_owned = std::move(*ecdf);
  }
  auto key_dist = key_dist_owned
                      ? StatusOr<std::unique_ptr<Distribution>>(std::move(key_dist_owned))
                      : CreateDistribution(opts.key_distribution, opts.num_keys, opts.seed);
  if (!key_dist.ok()) {
    return key_dist.status();
  }
  std::unique_ptr<Distribution> value_dist;
  if (opts.value_size_distribution == "constant") {
    value_dist = std::make_unique<ConstantDistribution>(
        opts.value_size > 0 ? opts.value_size - 1 : 0);
  } else {
    auto vd = CreateDistribution(opts.value_size_distribution, opts.value_size, opts.seed ^ 1);
    if (!vd.ok()) {
      return vd.status();
    }
    value_dist = std::move(*vd);
  }
  auto arrivals = CreateArrivalProcess(opts.arrival_process, opts.rate_per_sec, opts.seed ^ 2);
  if (!arrivals.ok()) {
    return arrivals.status();
  }
  return std::unique_ptr<EventSource>(new SyntheticEventSource(
      opts, std::move(*key_dist), std::move(value_dist), std::move(*arrivals)));
}

std::unique_ptr<EventSource> MakeReplaySource(std::unique_ptr<DatasetGenerator> dataset,
                                              uint64_t watermark_every) {
  return std::make_unique<ReplayEventSource>(std::move(dataset), watermark_every);
}

std::vector<Event> CollectSource(EventSource& source) {
  std::vector<Event> out;
  Event e;
  while (source.Next(&e)) {
    out.push_back(e);
  }
  return out;
}

}  // namespace gadget
