#include "src/gadget/harness.h"

#include <chrono>
#include <iomanip>
#include <memory>
#include <unordered_set>

#include "src/analysis/cache_model.h"
#include "src/analysis/metrics.h"
#include "src/common/file_util.h"
#include "src/gadget/evaluator.h"
#include "src/gadget/event_generator.h"
#include "src/gadget/report.h"
#include "src/gadget/workload.h"
#include "src/streams/trace_io.h"
#include "src/ycsb/ycsb.h"

namespace gadget {
namespace {

OperatorConfig OperatorConfigFrom(const Config& config) {
  OperatorConfig cfg;
  cfg.window_length_ms = config.GetUint("window_length_ms", cfg.window_length_ms);
  cfg.window_slide_ms = config.GetUint("window_slide_ms", cfg.window_slide_ms);
  cfg.session_gap_ms = config.GetUint("session_gap_ms", cfg.session_gap_ms);
  cfg.join_lower_ms = config.GetUint("join_lower_ms", cfg.join_lower_ms);
  cfg.join_upper_ms = config.GetUint("join_upper_ms", cfg.join_upper_ms);
  cfg.allowed_lateness_ms = config.GetUint("allowed_lateness_ms", cfg.allowed_lateness_ms);
  return cfg;
}

StatusOr<std::unique_ptr<EventSource>> SourceFrom(const Config& config,
                                                  const std::string& op) {
  const std::string source = config.GetString("source", "synthetic");
  const uint64_t events = config.GetUint("events", 100'000);
  const uint64_t seed = config.GetUint("seed", 42);
  const uint64_t wm = config.GetUint("watermark_every", 100);
  if (source.rfind("trace:", 0) == 0) {
    return MakeTraceFileSource(source.substr(6), wm);
  }
  if (source == "synthetic") {
    EventGeneratorOptions gen;
    gen.num_events = events;
    gen.seed = seed;
    gen.num_keys = config.GetUint("keys", 1'000);
    gen.key_distribution = config.GetString("key_distribution", "zipfian");
    gen.arrival_process = config.GetString("arrival", "poisson");
    gen.rate_per_sec = config.GetDouble("rate", 1'000.0);
    gen.value_size = static_cast<uint32_t>(config.GetUint("value_size", 64));
    gen.watermark_every = wm;
    gen.out_of_order_fraction = config.GetDouble("out_of_order", 0.0);
    gen.max_lateness_ms = config.GetUint("max_lateness_ms", 0);
    gen.num_streams = op.rfind("join", 0) == 0 ? 2 : 1;
    return MakeEventGenerator(gen);
  }
  auto dataset = MakeDataset(source, events, seed);
  if (!dataset.ok()) {
    return dataset.status();
  }
  return MakeReplaySource(std::move(*dataset), wm);
}

void PrintAnalysis(const std::vector<StateAccess>& trace, std::ostream& out) {
  OpComposition c = ComputeComposition(trace);
  out << "composition: get=" << c.get << " put=" << c.put << " merge=" << c.merge
      << " delete=" << c.del << " (" << c.total << " ops)\n";
  auto stack = ComputeStackDistances(trace);
  out << "temporal locality: mean stack distance " << stack.Mean() << " ("
      << stack.cold_misses << " cold)\n";
  auto seqs = CountUniqueSequences(trace, 8);
  out << "spatial locality: unique sequences l=2:" << seqs[1] << " l=4:" << seqs[3]
      << " l=8:" << seqs[7] << "\n";
  auto ttls = ComputeKeyTtls(trace);
  out << "ttl timesteps: p50=" << PercentileOf(ttls, 50) << " p90=" << PercentileOf(ttls, 90)
      << " p99.9=" << PercentileOf(ttls, 99.9) << "\n";
  auto timeline = ComputeWorkingSetTimeline(trace, 100);
  uint64_t max_ws = 0;
  for (const auto& p : timeline) {
    max_ws = std::max(max_ws, p.active_keys);
  }
  out << "working set: max " << max_ws << " active keys\n";
  uint64_t cache = RecommendCacheSize(trace, 0.1);
  out << "cache sizing: >= " << cache << " entries for <=10% LRU miss ratio\n";
  PrefetchResult prefetch = SimulatePrefetch(trace);
  out << "prefetchability: " << std::fixed << std::setprecision(3) << prefetch.hit_fraction()
      << " of accesses predictable from the previous key\n";
}

StoreOptions StoreOptionsFrom(const Config& config, std::string dir) {
  StoreOptions opts;
  opts.engine = config.GetString("store", "lsm");
  opts.dir = std::move(dir);
  // Shared buffer pool sizing (LSM/Lethe blocks + btree pages).
  // store_cache_bytes is the pre-pool key, kept as an alias so existing
  // configs keep sizing the read cache; 0 keeps the BufferPoolOptions default.
  uint64_t pool_bytes = config.GetUint("buffer_pool_bytes", 0);
  if (pool_bytes == 0) {
    pool_bytes = config.GetUint("store_cache_bytes", 0);
  }
  if (pool_bytes != 0) {
    opts.buffer_pool.capacity_bytes = pool_bytes;
  }
  opts.buffer_pool.shards =
      static_cast<uint32_t>(config.GetUint("buffer_pool_shards", opts.buffer_pool.shards));
  if (config.GetString("buffer_pool_eviction", "clock") == "2q") {
    opts.buffer_pool.eviction = BufferPoolOptions::Eviction::kTwoQueue;
  }
  opts.buffer_pool.use_io_uring = config.GetBool("use_io_uring", true);
  opts.log_memory_bytes = config.GetUint("store_log_memory_bytes", 0);
  opts.mem_stripes = config.GetUint("store_stripes", 0);
  opts.sync_writes = config.GetBool("sync_writes");
  opts.batch_size = std::max<uint64_t>(config.GetUint("batch_size", 1), 1);
  return opts;
}

ReadOptions ReadOptionsFrom(const Config& config) {
  ReadOptions ropts;
  ropts.fill_cache = config.GetBool("fill_cache", true);
  ropts.verify_checksums = config.GetBool("verify_checksums", true);
  ropts.readahead_blocks = static_cast<uint32_t>(config.GetUint("readahead_blocks", 0));
  return ropts;
}

// Writes the gadget.report/1 document when the config asks for one
// (report=<path>, the CLI's --report flag). No-op otherwise.
Status MaybeWriteReport(const Config& config, const ReplayResult& result,
                        const StoreStats& stats, const RecoveryResult* recovery,
                        std::ostream& out) {
  const std::string path = config.GetString("report");
  if (path.empty()) {
    return Status::Ok();
  }
  ReportMeta meta;
  meta.engine = config.GetString("store", "lsm");
  meta.git = GitDescribe();
  meta.timestamp = CurrentTimestamp();
  meta.batch_size = std::max<uint64_t>(config.GetUint("batch_size", 1), 1);
  meta.config = config.values();
  GADGET_RETURN_IF_ERROR(WriteReportJson(path, meta, result, stats, recovery));
  out << "report written to " << path << "\n";
  return Status::Ok();
}

// The crash/restore leg of a checkpointed replay. The latest checkpoint IS
// the crash image: a point-in-time copy of the store directory (WAL tail
// included for the LSM engines), exactly what a kill at that instant leaves
// behind — so RestoreStore exercises the full recovery path, checkpoint +
// WAL-tail replay. The restored store then replays the trace gap
// [trace_pos, limit) and every distinct trace key is compared against an
// in-memory oracle that replayed the whole trace crash-free.
StatusOr<RecoveryResult> RunRecovery(const std::vector<StateAccess>& trace,
                                     const ReplayOptions& ropts, const StoreOptions& sopts,
                                     const std::vector<CheckpointSample>& checkpoints) {
  using Clock = std::chrono::steady_clock;
  auto micros = [](Clock::time_point a, Clock::time_point b) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
  };
  const CheckpointSample& last = checkpoints.back();
  RecoveryResult rec;
  rec.checkpoint_index = last.index;
  rec.checkpoint_trace_pos = last.trace_pos;

  StoreOptions restore_opts = sopts;
  restore_opts.dir = ropts.checkpoint_dir + "/restore";
  // A crash leaves no warm cache behind: restore with a cold private pool
  // rather than whatever the crashed replay had resident.
  restore_opts.shared_pool = nullptr;
  auto t0 = Clock::now();
  auto restored = RestoreStore(restore_opts, last.dir);
  if (!restored.ok()) {
    return restored.status();
  }
  rec.restore_micros = micros(t0, Clock::now());

  const uint64_t limit =
      ropts.max_ops == 0 ? trace.size() : std::min<uint64_t>(ropts.max_ops, trace.size());
  std::vector<StateAccess> gap(trace.begin() + static_cast<ptrdiff_t>(last.trace_pos),
                               trace.begin() + static_cast<ptrdiff_t>(limit));
  ReplayOptions gap_opts;
  gap_opts.batch_size = ropts.batch_size;
  auto t1 = Clock::now();
  auto gap_result = ReplayTrace(gap, restored->get(), gap_opts);
  if (!gap_result.ok()) {
    return gap_result.status();
  }
  rec.replay_gap_ops = gap_result->ops;
  rec.replay_gap_micros = micros(t1, Clock::now());

  // Oracle: the whole trace replayed crash-free into a MemStore. All engines
  // produce identical Get results for the replayer's deterministic values
  // (merge == operand append everywhere), so a key-by-key comparison proves
  // restore + gap replay converged to the crash-free state.
  StoreOptions oracle_opts;
  oracle_opts.engine = "mem";
  auto oracle = OpenStore(oracle_opts);
  if (!oracle.ok()) {
    return oracle.status();
  }
  ReplayOptions oracle_replay;
  oracle_replay.max_ops = ropts.max_ops;
  auto oracle_result = ReplayTrace(trace, oracle->get(), oracle_replay);
  if (!oracle_result.ok()) {
    return oracle_result.status();
  }
  std::unordered_set<std::string> keys;
  std::string key;
  for (uint64_t i = 0; i < limit; ++i) {
    EncodeStateKeyTo(trace[i].key, &key);
    keys.insert(key);
  }
  std::string expect;
  std::string got;
  for (const std::string& k : keys) {
    Status se = (*oracle)->Get(k, &expect);
    if (!se.ok() && !se.IsNotFound()) {
      return se;
    }
    Status sg = (*restored)->Get(k, &got);
    if (!sg.ok() && !sg.IsNotFound()) {
      return sg;
    }
    ++rec.verified_keys;
    const bool match = se.IsNotFound() ? sg.IsNotFound() : (sg.ok() && got == expect);
    if (!match) {
      ++rec.mismatched_keys;
    }
  }
  GADGET_RETURN_IF_ERROR((*oracle)->Close());
  GADGET_RETURN_IF_ERROR((*restored)->Close());
  return rec;
}

Status Evaluate(const std::vector<StateAccess>& trace, const Config& config,
                std::ostream& out) {
  const std::string engine = config.GetString("store", "lsm");
  std::string dir = config.GetString("store_dir");
  std::unique_ptr<ScopedTempDir> tmp;
  if (dir.empty()) {
    tmp = std::make_unique<ScopedTempDir>("gadget-harness");
    dir = tmp->path() + "/db";
  }
  const StoreOptions sopts = StoreOptionsFrom(config, dir);
  auto store = OpenStore(sopts);
  if (!store.ok()) {
    return store.status();
  }
  ReplayOptions ropts;
  ropts.service_rate_ops_per_sec = config.GetDouble("service_rate", 0);
  ropts.max_ops = config.GetUint("max_ops", 0);
  ropts.batch_size = sopts.batch_size;
  ropts.timeline_interval_ops = config.GetUint("timeline_interval", 0);
  ropts.checkpoint_every_ops = config.GetUint("checkpoint_every", 0);
  ropts.checkpoint_incremental = config.GetBool("checkpoint_incremental", true);
  ropts.read_options = ReadOptionsFrom(config);
  if (ropts.checkpoint_every_ops > 0) {
    ropts.checkpoint_dir = config.GetString("checkpoint_dir");
    if (ropts.checkpoint_dir.empty()) {
      ropts.checkpoint_dir = dir + ".checkpoints";  // sibling of the store dir
    }
    // Each run numbers its images from cp-000000: clear a previous run's.
    GADGET_RETURN_IF_ERROR(RemoveDirRecursively(ropts.checkpoint_dir));
  }
  auto result = ReplayTrace(trace, store->get(), ropts);
  if (!result.ok()) {
    return result.status();
  }
  out << engine << ": " << result->Summary() << "\n";
  out << "  reads:  " << result->read_latency_ns.Summary() << "\n";
  out << "  writes: " << result->write_latency_ns.Summary() << "\n";
  if (!result->timeline.empty()) {
    out << "  timeline: " << result->timeline.size() << " intervals of "
        << ropts.timeline_interval_ops << " ops\n";
  }
  std::unique_ptr<RecoveryResult> recovery;
  if (!result->checkpoints.empty()) {
    const CheckpointSample& last = result->checkpoints.back();
    out << "  checkpoints: " << result->checkpoints.size() << " every "
        << ropts.checkpoint_every_ops << " ops; last " << last.bytes << " bytes ("
        << last.files << " files, " << last.hard_links << " linked, " << last.reused
        << " reused) in " << static_cast<double>(last.duration_micros) / 1000.0 << " ms\n";
    auto rec = RunRecovery(trace, ropts, sopts, result->checkpoints);
    if (!rec.ok()) {
      return rec.status();
    }
    out << "  recovery: restore " << static_cast<double>(rec->restore_micros) / 1000.0
        << " ms + gap replay of " << rec->replay_gap_ops << " ops "
        << static_cast<double>(rec->replay_gap_micros) / 1000.0 << " ms; " << rec->verified_keys
        << " keys verified, " << rec->mismatched_keys << " mismatched\n";
    if (rec->mismatched_keys != 0) {
      out << "  WARNING: restored store diverges from a crash-free replay\n";
    }
    recovery = std::make_unique<RecoveryResult>(*rec);
  }
  const StoreStats stats = (*store)->stats();
  GADGET_RETURN_IF_ERROR(MaybeWriteReport(config, *result, stats, recovery.get(), out));
  return (*store)->Close();
}

Status RunYcsb(const Config& config, std::ostream& out) {
  const std::string which = config.GetString("ycsb_workload", "A");
  YcsbOptions opts;
  if (which == "A") {
    opts = YcsbWorkloadA();
  } else if (which == "D") {
    opts = YcsbWorkloadD();
  } else if (which == "F") {
    opts = YcsbWorkloadF();
  } else {
    return Status::InvalidArgument("ycsb_workload must be A, D or F");
  }
  opts.record_count = config.GetUint("ycsb_records", 1'000);
  opts.operation_count = config.GetUint("events", 100'000);
  opts.value_size = static_cast<uint32_t>(config.GetUint("value_size", 256));
  if (config.Has("ycsb_distribution")) {
    opts.request_distribution = config.GetString("ycsb_distribution");
  }
  opts.seed = config.GetUint("seed", 42);
  auto workload = GenerateYcsb(opts);
  if (!workload.ok()) {
    return workload.status();
  }
  out << "ycsb workload " << which << ": " << workload->run.size() << " requests over "
      << opts.record_count << " records\n";
  if (config.GetBool("analyze")) {
    PrintAnalysis(workload->run, out);
  }
  // Load phase first, unmeasured; then the measured run.
  const std::string engine = config.GetString("store", "lsm");
  std::string dir = config.GetString("store_dir");
  std::unique_ptr<ScopedTempDir> tmp;
  if (dir.empty()) {
    tmp = std::make_unique<ScopedTempDir>("gadget-ycsb");
    dir = tmp->path() + "/db";
  }
  const StoreOptions sopts = StoreOptionsFrom(config, dir);
  auto store = OpenStore(sopts);
  if (!store.ok()) {
    return store.status();
  }
  auto load = ReplayTrace(workload->load, store->get());
  if (!load.ok()) {
    return load.status();
  }
  ReplayOptions ropts;
  ropts.max_ops = config.GetUint("max_ops", 0);
  ropts.batch_size = sopts.batch_size;
  ropts.timeline_interval_ops = config.GetUint("timeline_interval", 0);
  ropts.read_options = ReadOptionsFrom(config);
  auto result = ReplayTrace(workload->run, store->get(), ropts);
  if (!result.ok()) {
    return result.status();
  }
  out << engine << ": " << result->Summary() << "\n";
  const StoreStats stats = (*store)->stats();
  GADGET_RETURN_IF_ERROR(MaybeWriteReport(config, *result, stats, /*recovery=*/nullptr, out));
  return (*store)->Close();
}

}  // namespace

StatusOr<std::vector<StateAccess>> BuildAccessTrace(const Config& config) {
  const std::string trace_in = config.GetString("trace_in");
  if (!trace_in.empty()) {
    return ReadAccessTrace(trace_in);
  }
  const std::string op = config.GetString("operator", "tumbling_incr");
  auto source = SourceFrom(config, op);
  if (!source.ok()) {
    return source.status();
  }
  auto workload = GenerateWorkload(op, **source, OperatorConfigFrom(config));
  if (!workload.ok()) {
    return workload.status();
  }
  return std::move(workload->trace);
}

StoreOptions StoreOptionsFromConfig(const Config& config, std::string dir) {
  return StoreOptionsFrom(config, std::move(dir));
}

Status RunHarness(const Config& config, std::ostream& out) {
  const std::string mode = config.GetString("mode", "online");
  if (mode == "ycsb") {
    return RunYcsb(config, out);
  }
  if (mode == "dump_events") {
    // Persist the configured event stream (watermarks included) so it can be
    // replayed later via source=trace:<path>.
    const std::string path = config.GetString("events_out");
    if (path.empty()) {
      return Status::InvalidArgument("dump_events mode requires events_out=<path>");
    }
    auto source = SourceFrom(config, config.GetString("operator", "tumbling_incr"));
    if (!source.ok()) {
      return source.status();
    }
    auto writer = EventTraceWriter::Create(path);
    if (!writer.ok()) {
      return writer.status();
    }
    Event e;
    while ((*source)->Next(&e)) {
      GADGET_RETURN_IF_ERROR((*writer)->Append(e));
    }
    GADGET_RETURN_IF_ERROR((*writer)->Finish());
    out << (*writer)->count() << " events written to " << path << "\n";
    return Status::Ok();
  }
  if (mode == "replay" || mode == "analyze") {
    const std::string path = config.GetString("trace_in");
    if (path.empty()) {
      return Status::InvalidArgument(mode + " mode requires trace_in=<path>");
    }
    auto trace = ReadAccessTrace(path);
    if (!trace.ok()) {
      return trace.status();
    }
    out << "loaded " << trace->size() << " accesses from " << path << "\n";
    if (mode == "analyze" || config.GetBool("analyze")) {
      PrintAnalysis(*trace, out);
    }
    if (mode == "replay") {
      return Evaluate(*trace, config, out);
    }
    return Status::Ok();
  }
  if (mode != "online" && mode != "offline") {
    return Status::InvalidArgument("unknown mode: " + mode);
  }

  const std::string op = config.GetString("operator", "tumbling_incr");
  auto source = SourceFrom(config, op);
  if (!source.ok()) {
    return source.status();
  }
  auto workload = GenerateWorkload(op, **source, OperatorConfigFrom(config));
  if (!workload.ok()) {
    return workload.status();
  }
  out << "operator " << op << ": " << workload->trace.size() << " accesses from "
      << workload->events_processed << " events (" << workload->watermarks << " watermarks)\n";
  if (config.GetBool("analyze")) {
    PrintAnalysis(workload->trace, out);
  }
  if (mode == "offline") {
    const std::string path = config.GetString("trace_out");
    if (path.empty()) {
      return Status::InvalidArgument("offline mode requires trace_out=<path>");
    }
    GADGET_RETURN_IF_ERROR(WriteAccessTrace(path, workload->trace));
    out << "trace written to " << path << "\n";
    return Status::Ok();
  }
  return Evaluate(workload->trace, config, out);
}

}  // namespace gadget
