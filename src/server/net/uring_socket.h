// io_uring socket backend for the server's IO threads (DESIGN.md §6).
//
// Each IO thread owns one UringSocket: a small raw-syscall io_uring ring
// (io_uring_setup/io_uring_enter directly, no liburing — same pread-era
// style as src/stores/bufferpool/io_backend.cc) used to submit the thread's
// socket work:
//
//   * RecvBatch — one IORING_OP_RECV per readable connection, submitted as a
//     single io_uring_enter wave. An epoll wake that reports K readable
//     connections costs 1 submission syscall instead of K recv() calls.
//   * Writev   — one IORING_OP_SENDMSG (gather list + MSG_NOSIGNAL) for an
//     output-queue drain, mirroring net::WritevNonBlocking's contract.
//
// Construction probes the kernel at runtime: a missing io_uring_setup, a
// seccomp refusal, or a pre-5.6 kernel without IORING_OP_RECV leaves
// available() false and the server falls back to plain epoll recv/writev
// silently — `use_io_uring` is a request, not a requirement. All fds are
// O_NONBLOCK, so ring completions carry -EAGAIN exactly where recv() would,
// and the epoll readiness loop keeps working unchanged above either backend.
#ifndef GADGET_SERVER_NET_URING_SOCKET_H_
#define GADGET_SERVER_NET_URING_SOCKET_H_

#include <sys/uio.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gadget {
namespace net {

class UringSocket {
 public:
  // Probes and maps a ring of `entries` SQEs. On any failure the object is
  // inert (available() == false) — never an error.
  explicit UringSocket(unsigned entries = 64);
  ~UringSocket();
  UringSocket(const UringSocket&) = delete;
  UringSocket& operator=(const UringSocket&) = delete;

  // True when the probe succeeded and socket ops go through the ring.
  bool available() const { return ring_fd_ >= 0; }

  // One receive in a batch wave. `result` mirrors net::RecvChunk:
  //   > 0 appended, 0 orderly EOF, -1 would-block, -2 error (see `error`).
  struct RecvOp {
    int fd = -1;
    std::string* buf = nullptr;  // received bytes are appended
    size_t cap = 0;              // max bytes this op may append
    int result = -1;
    std::string error;
  };

  // Submits every op as IORING_OP_RECV in one enter() wave and reaps all
  // completions. Returns false (ops untouched) when the ring is unavailable;
  // the caller then uses the epoll-path recv instead.
  bool RecvBatch(std::vector<RecvOp*>& ops);

  // Gather-write via IORING_OP_SENDMSG; contract of net::WritevNonBlocking
  // (>0 written, -1 would-block, -2 error). Falls back to the plain syscall
  // when the ring is unavailable.
  ssize_t Writev(int fd, const iovec* iov, int iovcnt, std::string* error);

  // Counters for the report's net object: enter() syscalls made and ops
  // submitted through the ring (sockets only; file I/O has its own backend).
  // Atomic because stats snapshots read them from outside the owner thread.
  uint64_t enters() const { return enters_.load(std::memory_order_relaxed); }
  uint64_t ops_submitted() const { return ops_submitted_.load(std::memory_order_relaxed); }

 private:
  void Teardown();

  int ring_fd_ = -1;
  unsigned sq_entries_ = 0;
  void* sq_ring_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  void* sqes_ = nullptr;
  size_t sqes_bytes_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_mask_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned* cq_mask_ = nullptr;
  void* cqes_ = nullptr;

  std::atomic<uint64_t> enters_{0};
  std::atomic<uint64_t> ops_submitted_{0};
};

}  // namespace net
}  // namespace gadget

#endif  // GADGET_SERVER_NET_URING_SOCKET_H_
