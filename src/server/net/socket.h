// TCP plumbing for the store service.
//
// This directory is the ONLY place in the tree allowed to call the raw
// socket syscalls (socket / send / recv / writev / sendmsg and the io_uring
// socket opcodes — enforced by gadget_lint's `raw-socket` rule): everything
// above it talks through these helpers or the FramedConn wrapper, so framing,
// partial-write handling, EINTR retries, and SIGPIPE suppression are decided
// once.
#ifndef GADGET_SERVER_NET_SOCKET_H_
#define GADGET_SERVER_NET_SOCKET_H_

#include <sys/uio.h>

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/server/wire.h"

namespace gadget {
namespace net {

// Closes `fd` if it is valid; safe on -1. Errors are ignored (close is
// best-effort teardown everywhere it is used).
void CloseFd(int fd);

// Marks `fd` O_NONBLOCK.
Status SetNonBlocking(int fd);

// Opens a listening TCP socket on 127.0.0.1:`port` (port 0 = kernel-assigned;
// read it back with TcpLocalPort). SO_REUSEADDR is set so restarts do not
// trip TIME_WAIT.
StatusOr<int> TcpListen(uint16_t port);

// The port a listening socket is actually bound to.
StatusOr<uint16_t> TcpLocalPort(int listen_fd);

// Accepts one pending connection. Returns -1 (not an error) when the listen
// queue is empty and `listen_fd` is non-blocking.
StatusOr<int> TcpAccept(int listen_fd);

// Blocking connect to 127.0.0.1:`port`.
StatusOr<int> TcpConnect(uint16_t port);

// TcpConnect with bounded retry: connection-refused (the server's socket is
// not listening *yet*) is retried with growing backoff until ~`budget_ms`
// has elapsed; any other failure is immediate. This is how loadgen tolerates
// racing a server that is still booting.
StatusOr<int> TcpConnectRetry(uint16_t port, int budget_ms);

// Shrinks/pins the kernel socket buffers (0 = leave that side alone). Used
// by the slow-reader tests to make send-side EAGAIN reproducible with small
// payloads; the kernel may round the value (it doubles SO_*BUF internally).
Status SetSocketBufferSizes(int fd, int sndbuf_bytes, int rcvbuf_bytes);

// Writes all of `data`, polling through EAGAIN (works on blocking and
// non-blocking fds alike) and retrying EINTR. Error means the connection is
// dead.
Status SendAll(int fd, std::string_view data);

// One read of up to `cap` bytes appended to *buf.
//   > 0  — that many bytes were appended
//     0  — orderly EOF (peer closed)
//    -1  — nothing available right now (non-blocking fd); *not* an error
//    -2  — connection error; *error says why
int RecvChunk(int fd, std::string* buf, size_t cap, std::string* error);

// One gather-write of `iov[0..iovcnt)` on a non-blocking fd (EINTR retried,
// SIGPIPE suppressed). Never blocks and never polls — partial progress is the
// caller's problem (it re-arms EPOLLOUT and finishes later).
//   > 0  — that many bytes were written (possibly a partial batch)
//    -1  — the socket buffer is full right now (EAGAIN); write nothing
//    -2  — connection error; *error says why
ssize_t WritevNonBlocking(int fd, const iovec* iov, int iovcnt, std::string* error);

// A blocking framed connection: SendAll on the way out, a streaming frame
// decoder on the way in. This is what clients and tests use; the server's
// epoll loop keeps its own receive buffers but still sends through SendAll.
class FramedConn {
 public:
  // Takes ownership of `fd` (closed by the destructor).
  explicit FramedConn(int fd) : fd_(fd) {}
  ~FramedConn() { CloseFd(fd_); }
  FramedConn(const FramedConn&) = delete;
  FramedConn& operator=(const FramedConn&) = delete;

  int fd() const { return fd_; }

  // Sends pre-encoded frame bytes (one frame or a pipelined burst).
  Status Send(std::string_view frames) { return SendAll(fd_, frames); }

  // Blocks until one complete frame arrives; the payload is copied out so it
  // survives further reads. InvalidArgument on malformed framing (the
  // connection should then be dropped), Unavailable on EOF mid-stream.
  Status RecvFrame(wire::MsgType* type, uint32_t* id, std::string* payload);

  // Convenience: receive one frame and decode it as a response.
  Status RecvResponse(wire::Response* out);

 private:
  int fd_;
  std::string rbuf_;
  size_t roff_ = 0;  // bytes of rbuf_ already consumed by decoded frames
};

}  // namespace net
}  // namespace gadget

#endif  // GADGET_SERVER_NET_SOCKET_H_
