#include "src/server/net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gadget {
namespace net {
namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

void CloseFd(int fd) {
  if (fd >= 0) {
    ::close(fd);
  }
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::Ok();
}

StatusOr<int> TcpListen(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Errno("socket");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Errno("bind");
    CloseFd(fd);
    return s;
  }
  if (::listen(fd, 512) < 0) {
    Status s = Errno("listen");
    CloseFd(fd);
    return s;
  }
  return fd;
}

StatusOr<uint16_t> TcpLocalPort(int listen_fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

StatusOr<int> TcpAccept(int listen_fd) {
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return -1;
    }
    return Errno("accept");
  }
}

StatusOr<int> TcpConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Errno("socket");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    Status s = Errno("connect");
    CloseFd(fd);
    return s;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

StatusOr<int> TcpConnectRetry(uint16_t port, int budget_ms) {
  int waited_ms = 0;
  int backoff_ms = 25;
  for (;;) {
    StatusOr<int> fd = TcpConnect(port);
    if (fd.ok()) {
      return fd;
    }
    // Only ECONNREFUSED means "try again later": the port is real but nobody
    // is listening yet. Anything else (unreachable, EMFILE...) is permanent.
    if (fd.status().ToString().find("Connection refused") == std::string::npos ||
        waited_ms >= budget_ms) {
      return fd.status();
    }
    struct timespec ts {};
    ts.tv_sec = backoff_ms / 1000;
    ts.tv_nsec = static_cast<long>(backoff_ms % 1000) * 1'000'000L;
    ::nanosleep(&ts, nullptr);
    waited_ms += backoff_ms;
    backoff_ms = backoff_ms * 2 > 400 ? 400 : backoff_ms * 2;
  }
}

Status SetSocketBufferSizes(int fd, int sndbuf_bytes, int rcvbuf_bytes) {
  if (sndbuf_bytes > 0 &&
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sndbuf_bytes, sizeof(sndbuf_bytes)) < 0) {
    return Errno("setsockopt(SO_SNDBUF)");
  }
  if (rcvbuf_bytes > 0 &&
      ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes, sizeof(rcvbuf_bytes)) < 0) {
    return Errno("setsockopt(SO_RCVBUF)");
  }
  return Status::Ok();
}

Status SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    // MSG_NOSIGNAL: a peer that vanished mid-send yields EPIPE here instead
    // of killing the process with SIGPIPE.
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n > 0) {
      data.remove_prefix(static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // The socket buffer is full — the peer is not draining. Block here
      // until it does: this is the service's backpressure path (a stalled
      // shard stops reading, the client's sends park, TCP flow control does
      // the rest).
      pollfd p{fd, POLLOUT, 0};
      if (::poll(&p, 1, -1) < 0 && errno != EINTR) {
        return Errno("poll(POLLOUT)");
      }
      continue;
    }
    return Errno("send");
  }
  return Status::Ok();
}

int RecvChunk(int fd, std::string* buf, size_t cap, std::string* error) {
  const size_t old = buf->size();
  buf->resize(old + cap);
  for (;;) {
    const ssize_t n = ::recv(fd, buf->data() + old, cap, 0);
    if (n >= 0) {
      buf->resize(old + static_cast<size_t>(n));
      return static_cast<int>(n);
    }
    if (errno == EINTR) {
      continue;
    }
    buf->resize(old);
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return -1;
    }
    *error = std::string("recv: ") + std::strerror(errno);
    return -2;
  }
}

ssize_t WritevNonBlocking(int fd, const iovec* iov, int iovcnt, std::string* error) {
  for (;;) {
    // writev has no MSG_NOSIGNAL, so route through sendmsg: a peer that
    // vanished mid-drain yields EPIPE instead of killing the process.
    msghdr msg{};
    msg.msg_iov = const_cast<iovec*>(iov);
    msg.msg_iovlen = static_cast<size_t>(iovcnt);
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n >= 0) {
      return n;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return -1;
    }
    *error = std::string("sendmsg: ") + std::strerror(errno);
    return -2;
  }
}

Status FramedConn::RecvFrame(wire::MsgType* type, uint32_t* id, std::string* payload) {
  for (;;) {
    wire::FrameView frame;
    size_t consumed = 0;
    std::string error;
    const wire::FrameStatus fs =
        wire::ExtractFrame(std::string_view(rbuf_).substr(roff_), &frame, &consumed, &error);
    if (fs == wire::FrameStatus::kError) {
      return Status::InvalidArgument("malformed frame: " + error);
    }
    if (fs == wire::FrameStatus::kOk) {
      *type = frame.type;
      *id = frame.id;
      payload->assign(frame.payload);
      roff_ += consumed;
      // Compact once the consumed prefix dominates, so a long-lived
      // connection does not grow its buffer without bound.
      if (roff_ > 4096 && roff_ * 2 > rbuf_.size()) {
        rbuf_.erase(0, roff_);
        roff_ = 0;
      }
      return Status::Ok();
    }
    std::string rerr;
    const int n = RecvChunk(fd_, &rbuf_, 64 << 10, &rerr);
    if (n == 0) {
      return Status::IoError("connection closed mid-frame");
    }
    if (n == -1) {
      // Blocking fd: recv only returns EAGAIN under SO_RCVTIMEO, which this
      // wrapper never sets — treat it as a hard error rather than spin.
      return Status::IoError("recv: would block on blocking fd");
    }
    if (n == -2) {
      return Status::IoError(rerr);
    }
  }
}

Status FramedConn::RecvResponse(wire::Response* out) {
  wire::MsgType type;
  uint32_t id = 0;
  std::string payload;
  GADGET_RETURN_IF_ERROR(RecvFrame(&type, &id, &payload));
  wire::FrameView frame{type, id, payload};
  return wire::ParseResponse(frame, out);
}

}  // namespace net
}  // namespace gadget
