#include "src/server/net/uring_socket.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/server/net/socket.h"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#if defined(__NR_io_uring_setup) && defined(__NR_io_uring_enter)
#define GADGET_HAVE_IO_URING 1
#endif
#endif

namespace gadget {
namespace net {

#ifdef GADGET_HAVE_IO_URING

namespace {

unsigned LoadAcquire(const unsigned* p) { return __atomic_load_n(p, __ATOMIC_ACQUIRE); }
void StoreRelease(unsigned* p, unsigned v) { __atomic_store_n(p, v, __ATOMIC_RELEASE); }

}  // namespace

UringSocket::UringSocket(unsigned entries) {
  io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  long fd = ::syscall(__NR_io_uring_setup, entries, &params);
  if (fd < 0) {
    return;  // no io_uring (old kernel or seccomp): stay inert
  }
  if ((params.features & IORING_FEAT_SINGLE_MMAP) == 0) {
    ::close(static_cast<int>(fd));
    return;
  }
  ring_fd_ = static_cast<int>(fd);
  sq_entries_ = params.sq_entries;
  const size_t sq_bytes = params.sq_off.array + params.sq_entries * sizeof(unsigned);
  const size_t cq_bytes = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  sq_ring_bytes_ = sq_bytes > cq_bytes ? sq_bytes : cq_bytes;
  sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
                    ring_fd_, IORING_OFF_SQ_RING);
  sqes_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
  sqes_ = ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
                 ring_fd_, IORING_OFF_SQES);
  if (sq_ring_ == MAP_FAILED || sqes_ == MAP_FAILED) {
    if (sq_ring_ != MAP_FAILED) {
      ::munmap(sq_ring_, sq_ring_bytes_);
    }
    if (sqes_ != MAP_FAILED) {
      ::munmap(sqes_, sqes_bytes_);
    }
    ::close(ring_fd_);
    ring_fd_ = -1;
    sq_ring_ = nullptr;
    sqes_ = nullptr;
    return;
  }
  char* sq = static_cast<char*>(sq_ring_);
  sq_head_ = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
  sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
  sq_mask_ = reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
  cq_head_ = reinterpret_cast<unsigned*>(sq + params.cq_off.head);
  cq_tail_ = reinterpret_cast<unsigned*>(sq + params.cq_off.tail);
  cq_mask_ = reinterpret_cast<unsigned*>(sq + params.cq_off.ring_mask);
  cqes_ = sq + params.cq_off.cqes;

  // Functional probe: IORING_OP_RECV arrived in 5.6 and a ring older than
  // that still sets up fine, so setup success is not support. Submit one
  // RECV (MSG_DONTWAIT) on an empty non-blocking socketpair: -EAGAIN means
  // the opcode works, -EINVAL means it does not and the epoll path takes
  // over.
  int sp[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0, sp) != 0) {
    Teardown();
    return;
  }
  char probe_byte = 0;
  std::string probe_buf;
  UringSocket::RecvOp op;
  op.fd = sp[0];
  op.buf = &probe_buf;
  op.cap = sizeof(probe_byte);
  std::vector<RecvOp*> ops{&op};
  const bool ran = RecvBatch(ops);
  ::close(sp[0]);
  ::close(sp[1]);
  if (!ran || op.result == -2) {
    Teardown();
  }
}

void UringSocket::Teardown() {
  if (ring_fd_ < 0) {
    return;
  }
  ::munmap(sq_ring_, sq_ring_bytes_);
  ::munmap(sqes_, sqes_bytes_);
  ::close(ring_fd_);
  ring_fd_ = -1;
  sq_ring_ = nullptr;
  sqes_ = nullptr;
}

UringSocket::~UringSocket() { Teardown(); }

bool UringSocket::RecvBatch(std::vector<RecvOp*>& ops) {
  if (ring_fd_ < 0) {
    return false;
  }
  const size_t n = ops.size();
  if (n == 0) {
    return true;
  }
  std::vector<size_t> old_size(n);
  for (size_t i = 0; i < n; ++i) {
    old_size[i] = ops[i]->buf->size();
    ops[i]->buf->resize(old_size[i] + ops[i]->cap);
  }
  std::vector<char> done(n, 0);
  size_t filled = 0;
  size_t completed = 0;
  unsigned pending = 0;
  while (completed < n) {
    unsigned tail = LoadAcquire(sq_tail_);
    while (filled < n && tail - LoadAcquire(sq_head_) < sq_entries_) {
      const unsigned idx = tail & *sq_mask_;
      auto* sqe = reinterpret_cast<io_uring_sqe*>(static_cast<char*>(sqes_) +
                                                  idx * sizeof(io_uring_sqe));
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = IORING_OP_RECV;
      sqe->fd = ops[filled]->fd;
      sqe->addr = reinterpret_cast<uint64_t>(ops[filled]->buf->data() + old_size[filled]);
      sqe->len = static_cast<uint32_t>(ops[filled]->cap);
      // MSG_DONTWAIT: without it, kernels with fast poll (5.7+) park a recv
      // on an empty socket until data arrives instead of completing with
      // -EAGAIN — and this batch waits for every CQE, so a parked op would
      // wedge the whole reactor.
      sqe->msg_flags = MSG_DONTWAIT;
      sqe->user_data = filled;
      sq_array_[idx] = idx;
      ++tail;
      ++pending;
      ++filled;
    }
    StoreRelease(sq_tail_, tail);
    const unsigned want = static_cast<unsigned>(filled < n ? 1 : n - completed);
    const long ret = ::syscall(__NR_io_uring_enter, ring_fd_, pending, want,
                               IORING_ENTER_GETEVENTS, nullptr, 0);
    ++enters_;
    if (ret >= 0) {
      pending -= static_cast<unsigned>(ret);
      ops_submitted_ += static_cast<uint64_t>(ret);
    } else if (errno != EINTR) {
      const std::string err = std::string("io_uring_enter: ") + std::strerror(errno);
      for (size_t i = 0; i < n; ++i) {
        if (!done[i]) {
          ops[i]->buf->resize(old_size[i]);
          ops[i]->result = -2;
          ops[i]->error = err;
        }
      }
      return true;
    }
    unsigned head = LoadAcquire(cq_head_);
    while (head != LoadAcquire(cq_tail_)) {
      const auto* cqe = reinterpret_cast<const io_uring_cqe*>(static_cast<const char*>(cqes_)) +
                        (head & *cq_mask_);
      RecvOp* op = ops[cqe->user_data];
      const size_t old = old_size[cqe->user_data];
      if (cqe->res >= 0) {
        op->buf->resize(old + static_cast<size_t>(cqe->res));
        op->result = cqe->res;
      } else if (cqe->res == -EAGAIN || cqe->res == -EWOULDBLOCK) {
        op->buf->resize(old);
        op->result = -1;
      } else {
        op->buf->resize(old);
        op->result = -2;
        op->error = std::string("io_uring recv: ") + std::strerror(-cqe->res);
      }
      done[cqe->user_data] = 1;
      ++completed;
      ++head;
      StoreRelease(cq_head_, head);
    }
  }
  return true;
}

ssize_t UringSocket::Writev(int fd, const iovec* iov, int iovcnt, std::string* error) {
  if (ring_fd_ < 0) {
    return WritevNonBlocking(fd, iov, iovcnt, error);
  }
  // SENDMSG rather than WRITEV so MSG_NOSIGNAL applies: a vanished peer
  // completes with -EPIPE instead of raising SIGPIPE.
  msghdr msg{};
  msg.msg_iov = const_cast<iovec*>(iov);
  msg.msg_iovlen = static_cast<size_t>(iovcnt);
  for (;;) {
    const unsigned tail = LoadAcquire(sq_tail_);
    const unsigned idx = tail & *sq_mask_;
    auto* sqe = reinterpret_cast<io_uring_sqe*>(static_cast<char*>(sqes_) +
                                                idx * sizeof(io_uring_sqe));
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->opcode = IORING_OP_SENDMSG;
    sqe->fd = fd;
    sqe->addr = reinterpret_cast<uint64_t>(&msg);
    sqe->len = 1;
    // MSG_DONTWAIT mirrors the recv side: fast-poll kernels would otherwise
    // park this op on a full send buffer, but the caller wants -1 (EAGAIN)
    // so it can re-arm EPOLLOUT and move on.
    sqe->msg_flags = MSG_NOSIGNAL | MSG_DONTWAIT;
    sqe->user_data = 0;
    sq_array_[idx] = idx;
    StoreRelease(sq_tail_, tail + 1);
    unsigned to_submit = 1;
    // Submit once, then keep waiting (submitting nothing further) until the
    // CQE lands — re-prepping the SQE here would duplicate the send.
    for (;;) {
      long ret;
      do {
        ret = ::syscall(__NR_io_uring_enter, ring_fd_, to_submit, 1, IORING_ENTER_GETEVENTS,
                        nullptr, 0);
        ++enters_;
      } while (ret < 0 && errno == EINTR);
      if (ret < 0) {
        *error = std::string("io_uring_enter: ") + std::strerror(errno);
        return -2;
      }
      if (to_submit > 0 && ret > 0) {
        ops_submitted_ += 1;
        to_submit = 0;
      }
      if (LoadAcquire(cq_head_) != LoadAcquire(cq_tail_)) {
        break;
      }
    }
    const unsigned head = LoadAcquire(cq_head_);
    const auto* cqe = reinterpret_cast<const io_uring_cqe*>(static_cast<const char*>(cqes_)) +
                      (head & *cq_mask_);
    const int res = cqe->res;
    StoreRelease(cq_head_, head + 1);
    if (res >= 0) {
      return res;
    }
    if (res == -EAGAIN || res == -EWOULDBLOCK) {
      return -1;
    }
    if (res == -EINTR) {
      continue;  // whole op was interrupted before transferring anything
    }
    *error = std::string("io_uring sendmsg: ") + std::strerror(-res);
    return -2;
  }
}

#else  // !GADGET_HAVE_IO_URING

UringSocket::UringSocket(unsigned /*entries*/) {}
UringSocket::~UringSocket() = default;
void UringSocket::Teardown() {}
bool UringSocket::RecvBatch(std::vector<RecvOp*>& /*ops*/) { return false; }
ssize_t UringSocket::Writev(int fd, const iovec* iov, int iovcnt, std::string* error) {
  return WritevNonBlocking(fd, iov, iovcnt, error);
}

#endif  // GADGET_HAVE_IO_URING

}  // namespace net
}  // namespace gadget
