#include "src/server/wire.h"

#include "src/common/coding.h"

namespace gadget {
namespace wire {
namespace {

// Per-field sanity bounds, tighter than the frame bound so a corrupt length
// prefix inside a structurally valid frame still fails fast.
constexpr uint32_t kMaxKeyBytes = 64u << 10;
constexpr uint32_t kMaxValueBytes = 8u << 20;
constexpr uint32_t kMaxBatchEntries = 1u << 20;

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("truncated ") + what);
}

// Reads a varint32 length-prefixed string, bounds-checked against `max`.
const char* GetBounded(const char* p, const char* limit, uint32_t max, std::string_view* out,
                       const char* what, Status* status) {
  std::string_view s;
  const char* q = GetLengthPrefixed(p, limit, &s);
  if (q == nullptr) {
    *status = Truncated(what);
    return nullptr;
  }
  if (s.size() > max) {
    *status = Status::InvalidArgument(std::string(what) + " exceeds wire limit");
    return nullptr;
  }
  *out = s;
  return q;
}

void AppendHeaderAndPayload(std::string* out, MsgType type, uint32_t id,
                            std::string_view payload) {
  PutFixed32(out, static_cast<uint32_t>(payload.size()) + kFrameOverhead);
  out->push_back(static_cast<char>(type));
  PutFixed32(out, id);
  out->append(payload.data(), payload.size());
}

}  // namespace

bool IsRequestType(uint8_t type) {
  return type >= static_cast<uint8_t>(MsgType::kGet) &&
         type <= static_cast<uint8_t>(MsgType::kPing);
}

bool IsResponseType(uint8_t type) {
  return type >= static_cast<uint8_t>(MsgType::kOk) &&
         type <= static_cast<uint8_t>(MsgType::kPong);
}

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kGet:
      return "GET";
    case MsgType::kPut:
      return "PUT";
    case MsgType::kMerge:
      return "MERGE";
    case MsgType::kDelete:
      return "DELETE";
    case MsgType::kMultiGet:
      return "MULTI_GET";
    case MsgType::kWriteBatch:
      return "WRITE_BATCH";
    case MsgType::kStats:
      return "STATS";
    case MsgType::kPing:
      return "PING";
    case MsgType::kOk:
      return "OK";
    case MsgType::kValue:
      return "VALUE";
    case MsgType::kNotFound:
      return "NOT_FOUND";
    case MsgType::kMulti:
      return "MULTI";
    case MsgType::kError:
      return "ERROR";
    case MsgType::kStatsText:
      return "STATS_TEXT";
    case MsgType::kPong:
      return "PONG";
  }
  return "?";
}

FrameStatus ExtractFrame(std::string_view buf, FrameView* frame, size_t* consumed,
                         std::string* error) {
  if (buf.size() < 4) {
    return FrameStatus::kNeedMore;
  }
  const uint32_t len = DecodeFixed32(buf.data());
  if (len < kFrameOverhead) {
    *error = "runt frame (length " + std::to_string(len) + " < header)";
    return FrameStatus::kError;
  }
  if (len > kMaxFrameBytes) {
    *error = "oversized frame (" + std::to_string(len) + " bytes > " +
             std::to_string(kMaxFrameBytes) + " limit)";
    return FrameStatus::kError;
  }
  const uint8_t type = buf.size() >= 5 ? static_cast<uint8_t>(buf[4]) : 0;
  // Type sanity is checked as soon as the byte is visible, before waiting for
  // the rest of the frame: garbage input fails after 5 bytes instead of
  // stalling until a bogus length's worth of noise arrives.
  if (buf.size() >= 5 && !IsRequestType(type) && !IsResponseType(type)) {
    *error = "unknown message type 0x" + std::to_string(type);
    return FrameStatus::kError;
  }
  if (buf.size() < 4 + static_cast<size_t>(len)) {
    return FrameStatus::kNeedMore;
  }
  frame->type = static_cast<MsgType>(type);
  frame->id = DecodeFixed32(buf.data() + 5);
  frame->payload = buf.substr(9, len - kFrameOverhead);
  *consumed = 4 + static_cast<size_t>(len);
  return FrameStatus::kOk;
}

void AppendFrame(std::string* out, MsgType type, uint32_t id, std::string_view payload) {
  AppendHeaderAndPayload(out, type, id, payload);
}

// --- requests ---------------------------------------------------------------

void AppendGetRequest(std::string* out, uint32_t id, std::string_view key) {
  std::string payload;
  PutLengthPrefixed(&payload, key);
  AppendHeaderAndPayload(out, MsgType::kGet, id, payload);
}

void AppendPutRequest(std::string* out, uint32_t id, std::string_view key,
                      std::string_view value) {
  std::string payload;
  PutLengthPrefixed(&payload, key);
  PutLengthPrefixed(&payload, value);
  AppendHeaderAndPayload(out, MsgType::kPut, id, payload);
}

void AppendMergeRequest(std::string* out, uint32_t id, std::string_view key,
                        std::string_view operand) {
  std::string payload;
  PutLengthPrefixed(&payload, key);
  PutLengthPrefixed(&payload, operand);
  AppendHeaderAndPayload(out, MsgType::kMerge, id, payload);
}

void AppendDeleteRequest(std::string* out, uint32_t id, std::string_view key) {
  std::string payload;
  PutLengthPrefixed(&payload, key);
  AppendHeaderAndPayload(out, MsgType::kDelete, id, payload);
}

void AppendMultiGetRequest(std::string* out, uint32_t id, const std::vector<std::string>& keys) {
  std::string payload;
  PutVarint32(&payload, static_cast<uint32_t>(keys.size()));
  for (const std::string& key : keys) {
    PutLengthPrefixed(&payload, key);
  }
  AppendHeaderAndPayload(out, MsgType::kMultiGet, id, payload);
}

void AppendWriteBatchRequest(std::string* out, uint32_t id, const WriteBatch& batch) {
  std::string payload;
  PutVarint32(&payload, static_cast<uint32_t>(batch.size()));
  for (size_t i = 0; i < batch.size(); ++i) {
    const WriteBatch::Entry& e = batch.entry(i);
    payload.push_back(static_cast<char>(e.op));
    PutLengthPrefixed(&payload, e.key);
    PutLengthPrefixed(&payload, e.value);
  }
  AppendHeaderAndPayload(out, MsgType::kWriteBatch, id, payload);
}

void AppendStatsRequest(std::string* out, uint32_t id) {
  AppendHeaderAndPayload(out, MsgType::kStats, id, {});
}

void AppendPingRequest(std::string* out, uint32_t id) {
  AppendHeaderAndPayload(out, MsgType::kPing, id, {});
}

Status ParseRequest(const FrameView& frame, Request* out) {
  if (!IsRequestType(static_cast<uint8_t>(frame.type))) {
    return Status::InvalidArgument(std::string("not a request frame: ") +
                                   MsgTypeName(frame.type));
  }
  out->type = frame.type;
  out->id = frame.id;
  out->key.clear();
  out->value.clear();
  out->keys.clear();
  out->batch.Clear();
  const char* p = frame.payload.data();
  const char* limit = p + frame.payload.size();
  Status status;
  std::string_view field;
  switch (frame.type) {
    case MsgType::kGet:
    case MsgType::kDelete:
      p = GetBounded(p, limit, kMaxKeyBytes, &field, "key", &status);
      if (p == nullptr) {
        return status;
      }
      out->key.assign(field);
      break;
    case MsgType::kPut:
    case MsgType::kMerge:
      p = GetBounded(p, limit, kMaxKeyBytes, &field, "key", &status);
      if (p == nullptr) {
        return status;
      }
      out->key.assign(field);
      p = GetBounded(p, limit, kMaxValueBytes, &field, "value", &status);
      if (p == nullptr) {
        return status;
      }
      out->value.assign(field);
      break;
    case MsgType::kMultiGet: {
      uint32_t n = 0;
      p = GetVarint32(p, limit, &n);
      if (p == nullptr || n > kMaxBatchEntries) {
        return p == nullptr ? Truncated("multi-get count")
                            : Status::InvalidArgument("multi-get count exceeds wire limit");
      }
      out->keys.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        p = GetBounded(p, limit, kMaxKeyBytes, &field, "multi-get key", &status);
        if (p == nullptr) {
          return status;
        }
        out->keys.emplace_back(field);
      }
      break;
    }
    case MsgType::kWriteBatch: {
      uint32_t n = 0;
      p = GetVarint32(p, limit, &n);
      if (p == nullptr || n > kMaxBatchEntries) {
        return p == nullptr ? Truncated("batch count")
                            : Status::InvalidArgument("batch count exceeds wire limit");
      }
      for (uint32_t i = 0; i < n; ++i) {
        if (p >= limit) {
          return Truncated("batch op");
        }
        const uint8_t op = static_cast<uint8_t>(*p++);
        if (op > static_cast<uint8_t>(WriteBatch::Op::kDelete)) {
          return Status::InvalidArgument("unknown batch op " + std::to_string(op));
        }
        std::string_view key;
        std::string_view value;
        p = GetBounded(p, limit, kMaxKeyBytes, &key, "batch key", &status);
        if (p == nullptr) {
          return status;
        }
        p = GetBounded(p, limit, kMaxValueBytes, &value, "batch value", &status);
        if (p == nullptr) {
          return status;
        }
        switch (static_cast<WriteBatch::Op>(op)) {
          case WriteBatch::Op::kPut:
            out->batch.Put(key, value);
            break;
          case WriteBatch::Op::kMerge:
            out->batch.Merge(key, value);
            break;
          case WriteBatch::Op::kDelete:
            out->batch.Delete(key);
            break;
        }
      }
      break;
    }
    case MsgType::kStats:
    case MsgType::kPing:
      break;
    default:
      return Status::InvalidArgument("unreachable request type");
  }
  if (p != limit) {
    return Status::InvalidArgument(std::string("trailing garbage after ") +
                                   MsgTypeName(frame.type) + " payload");
  }
  return Status::Ok();
}

// --- responses --------------------------------------------------------------

void AppendOkResponse(std::string* out, uint32_t id) {
  AppendHeaderAndPayload(out, MsgType::kOk, id, {});
}

void AppendValueResponse(std::string* out, uint32_t id, std::string_view value) {
  std::string payload;
  PutLengthPrefixed(&payload, value);
  AppendHeaderAndPayload(out, MsgType::kValue, id, payload);
}

void AppendNotFoundResponse(std::string* out, uint32_t id) {
  AppendHeaderAndPayload(out, MsgType::kNotFound, id, {});
}

void AppendMultiResponse(std::string* out, uint32_t id, const std::vector<Status>& statuses,
                         const std::vector<std::string>& values) {
  std::string payload;
  PutVarint32(&payload, static_cast<uint32_t>(statuses.size()));
  for (size_t i = 0; i < statuses.size(); ++i) {
    payload.push_back(statuses[i].ok() ? 0 : 1);
    PutLengthPrefixed(&payload, statuses[i].ok() ? std::string_view(values[i])
                                                 : std::string_view());
  }
  AppendHeaderAndPayload(out, MsgType::kMulti, id, payload);
}

void AppendErrorResponse(std::string* out, uint32_t id, std::string_view message) {
  std::string payload;
  PutLengthPrefixed(&payload, message);
  AppendHeaderAndPayload(out, MsgType::kError, id, payload);
}

void AppendStatsTextResponse(std::string* out, uint32_t id, std::string_view json) {
  std::string payload;
  PutLengthPrefixed(&payload, json);
  AppendHeaderAndPayload(out, MsgType::kStatsText, id, payload);
}

void AppendPongResponse(std::string* out, uint32_t id) {
  AppendHeaderAndPayload(out, MsgType::kPong, id, {});
}

Status ParseResponse(const FrameView& frame, Response* out) {
  if (!IsResponseType(static_cast<uint8_t>(frame.type))) {
    return Status::InvalidArgument(std::string("not a response frame: ") +
                                   MsgTypeName(frame.type));
  }
  out->type = frame.type;
  out->id = frame.id;
  out->value.clear();
  out->statuses.clear();
  out->values.clear();
  const char* p = frame.payload.data();
  const char* limit = p + frame.payload.size();
  Status status;
  std::string_view field;
  switch (frame.type) {
    case MsgType::kOk:
    case MsgType::kNotFound:
    case MsgType::kPong:
      break;
    case MsgType::kValue:
      p = GetBounded(p, limit, kMaxValueBytes, &field, "value", &status);
      if (p == nullptr) {
        return status;
      }
      out->value.assign(field);
      break;
    case MsgType::kError:
    case MsgType::kStatsText:
      // Error messages and stats JSON share the value field; the stats
      // document can exceed the per-value cap with many shards, so it is
      // bounded only by the frame itself.
      p = GetBounded(p, limit, kMaxFrameBytes, &field, "text", &status);
      if (p == nullptr) {
        return status;
      }
      out->value.assign(field);
      break;
    case MsgType::kMulti: {
      uint32_t n = 0;
      p = GetVarint32(p, limit, &n);
      if (p == nullptr || n > kMaxBatchEntries) {
        return p == nullptr ? Truncated("multi count")
                            : Status::InvalidArgument("multi count exceeds wire limit");
      }
      out->statuses.reserve(n);
      out->values.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        if (p >= limit) {
          return Truncated("multi status");
        }
        const uint8_t st = static_cast<uint8_t>(*p++);
        if (st > 1) {
          return Status::InvalidArgument("unknown multi status " + std::to_string(st));
        }
        p = GetBounded(p, limit, kMaxValueBytes, &field, "multi value", &status);
        if (p == nullptr) {
          return status;
        }
        out->statuses.push_back(st);
        out->values.emplace_back(field);
      }
      break;
    }
    default:
      return Status::InvalidArgument("unreachable response type");
  }
  if (p != limit) {
    return Status::InvalidArgument(std::string("trailing garbage after ") +
                                   MsgTypeName(frame.type) + " payload");
  }
  return Status::Ok();
}

}  // namespace wire
}  // namespace gadget
