#include "src/server/service.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/file_util.h"
#include "src/common/json.h"
#include "src/gadget/harness.h"
#include "src/gadget/report.h"
#include "src/server/loadgen.h"
#include "src/server/server.h"

namespace gadget {
namespace wire {
namespace {

std::atomic<bool> g_stop{false};

void StopSignalHandler(int /*signo*/) { g_stop.store(true, std::memory_order_relaxed); }

// The loadgen run's gadget.report/1 document: the standard report built from
// the merged wire-level ReplayResult, with "stats" replaced by the SERVER's
// merged StoreStats (the engines live on the other side of the wire) and a
// "server" object carrying the wire accounting the server-smoke gate checks.
Status WriteLoadgenReport(const std::string& path, const Config& config,
                          const LoadgenOptions& opts, const LoadgenResult& result,
                          std::ostream& out) {
  ReportMeta meta;
  meta.engine = config.GetString("store", "lsm");
  meta.git = GitDescribe();
  meta.timestamp = CurrentTimestamp();
  meta.batch_size = opts.batch_size;
  meta.config = config.values();
  JsonValue doc = BuildReportJson(meta, result.replay, StoreStats());

  auto server_stats = ParseJson(result.server_stats_json);
  if (!server_stats.ok()) {
    return server_stats.status();
  }
  if (const JsonValue* merged = server_stats->Get("merged")) {
    doc.Set("stats", *merged);
  }
  JsonValue server = JsonValue::MakeObject();
  server.Set("shards", static_cast<uint64_t>(opts.shards));
  server.Set("clients", static_cast<uint64_t>(opts.clients));
  server.Set("pipeline_depth", opts.pipeline_depth);
  server.Set("ops_sent", result.ops_sent);
  server.Set("ops_acked", result.ops_acked);
  server.Set("errors", result.errors);
  JsonValue shard_ops = JsonValue::MakeArray();
  for (uint64_t n : result.shard_ops) {
    shard_ops.Append(n);
  }
  server.Set("shard_ops", std::move(shard_ops));
  server.Set("shard_skew", result.shard_skew);
  if (const JsonValue* per_shard = server_stats->Get("per_shard")) {
    server.Set("per_shard", *per_shard);
  }
  // The server's network-layer counters (io thread count, writev coalescing,
  // output-queue stalls, io_uring use) ride along inside its STATS document;
  // report_check --require_server validates their presence and shape.
  if (const JsonValue* net = server_stats->Get("net")) {
    server.Set("net", *net);
  }
  doc.Set("server", std::move(server));

  GADGET_RETURN_IF_ERROR(ValidateReportJson(doc));
  GADGET_RETURN_IF_ERROR(WriteStringToFile(path, doc.Write(2)));
  out << "report written to " << path << "\n";
  return Status::Ok();
}

}  // namespace

Status ServeMain(const Config& config, std::ostream& out) {
  ServerOptions opts;
  opts.port = static_cast<uint16_t>(config.GetUint("port", 0));
  opts.shards = static_cast<int>(config.GetUint("shards", 4));
  opts.io_threads = static_cast<int>(config.GetUint("io_threads", 0));
  opts.use_io_uring = config.GetUint("use_io_uring", 0) != 0;
  opts.shard_queue_limit = config.GetUint("shard_queue_limit", 128);
  opts.conn_outq_limit = config.GetUint("conn_outq_limit", opts.conn_outq_limit);

  std::string dir = config.GetString("store_dir");
  std::unique_ptr<ScopedTempDir> tmp;
  if (dir.empty()) {
    tmp = std::make_unique<ScopedTempDir>("gadget-serve");
    dir = tmp->path() + "/db";
  }
  opts.store = StoreOptionsFromConfig(config, dir);

  auto server = Server::Start(opts);
  if (!server.ok()) {
    return server.status();
  }
  out << "serving " << opts.store.engine << " on 127.0.0.1:" << (*server)->port() << " with "
      << opts.shards << " shards, " << (*server)->io_threads() << " IO threads"
      << ((*server)->net_stats().io_uring_active ? " (io_uring)" : "") << " (dir " << dir
      << ")\n";
  out.flush();
  const std::string port_file = config.GetString("port_file");
  if (!port_file.empty()) {
    // Written only once the socket is live: a reader that sees the file can
    // connect immediately (the CI smoke job polls for exactly this).
    GADGET_RETURN_IF_ERROR(
        WriteStringToFile(port_file, std::to_string((*server)->port()) + "\n"));
  }

  g_stop.store(false, std::memory_order_relaxed);
  std::signal(SIGINT, StopSignalHandler);
  std::signal(SIGTERM, StopSignalHandler);
  while (!g_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  out << "shutting down\n";
  (*server)->Stop();
  return Status::Ok();
}

Status LoadgenMain(const Config& config, std::ostream& out) {
  LoadgenOptions opts;
  opts.port = static_cast<uint16_t>(config.GetUint("port", 0));
  if (opts.port == 0) {
    const std::string port_file = config.GetString("port_file");
    if (port_file.empty()) {
      return Status::InvalidArgument("loadgen requires port=N or port_file=PATH");
    }
    std::string text;
    GADGET_RETURN_IF_ERROR(ReadFileToString(port_file, &text));
    opts.port = static_cast<uint16_t>(std::stoul(text));
  }
  opts.clients = static_cast<int>(config.GetUint("clients", 4));
  opts.shards = static_cast<int>(config.GetUint("shards", 4));
  opts.batch_size = std::max<uint64_t>(config.GetUint("batch_size", 32), 1);
  opts.pipeline_depth = std::max<uint64_t>(config.GetUint("pipeline_depth", 4), 1);
  opts.max_ops = config.GetUint("max_ops", 0);
  opts.connect_budget_ms = static_cast<int>(config.GetUint("connect_budget_ms", 2000));

  auto trace = BuildAccessTrace(config);
  if (!trace.ok()) {
    return trace.status();
  }
  out << "loadgen: " << trace->size() << " accesses, " << opts.clients << " clients -> "
      << opts.shards << " shards on 127.0.0.1:" << opts.port << "\n";

  auto result = RunLoadgen(*trace, opts);
  if (!result.ok()) {
    return result.status();
  }
  out << "wire: " << result->replay.Summary() << "\n";
  out << "  reads:  " << result->replay.read_latency_ns.Summary() << "\n";
  out << "  writes: " << result->replay.write_latency_ns.Summary() << "\n";
  out << "  acked " << result->ops_acked << "/" << result->ops_sent << " ops, "
      << result->errors << " errors\n";
  out << "  shard ops:";
  for (uint64_t n : result->shard_ops) {
    out << " " << n;
  }
  out << " (skew " << result->shard_skew << ")\n";

  const std::string report = config.GetString("report");
  if (!report.empty()) {
    GADGET_RETURN_IF_ERROR(WriteLoadgenReport(report, config, opts, *result, out));
  }
  if (result->ops_acked != result->ops_sent || result->errors != 0) {
    return Status::IoError("loadgen lost operations: sent " + std::to_string(result->ops_sent) +
                           ", acked " + std::to_string(result->ops_acked) + ", " +
                           std::to_string(result->errors) + " errors");
  }
  return Status::Ok();
}

}  // namespace wire
}  // namespace gadget
