#include "src/server/loadgen.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>

#include "src/common/hash.h"
#include "src/server/client.h"
#include "src/server/router.h"

namespace gadget {
namespace wire {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedNs(Clock::time_point a, Clock::time_point b) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

// One frame awaiting its response on a client thread's connection.
struct Pending {
  uint64_t ops = 0;
  bool is_read = false;
  Clock::time_point sent_at;
};

// Per-thread replay state and tallies; merged after join.
struct ThreadState {
  ReplayResult replay;
  uint64_t ops_sent = 0;
  uint64_t ops_acked = 0;
  uint64_t errors = 0;
  Status status;
};

// Receives one response, matches it to an in-flight frame, and records the
// frame's wire latency. An unmatched id or a connection-fatal error (id 0)
// is fatal: it means the stream is corrupt, not that one request failed.
Status DrainOne(net::FramedConn* conn, std::unordered_map<uint32_t, Pending>* in_flight,
                ThreadState* st) {
  Response resp;
  GADGET_RETURN_IF_ERROR(conn->RecvResponse(&resp));
  if (resp.type == MsgType::kError && resp.id == 0) {
    return Status::IoError("server closed connection: " + resp.value);
  }
  auto it = in_flight->find(resp.id);
  if (it == in_flight->end()) {
    return Status::IoError("unmatched response id " + std::to_string(resp.id));
  }
  const Pending p = it->second;
  in_flight->erase(it);
  const uint64_t ns = ElapsedNs(p.sent_at, Clock::now());
  if (resp.type == MsgType::kError) {
    st->errors += p.ops;
    return Status::Ok();
  }
  st->replay.latency_ns.Record(ns);
  if (p.is_read) {
    st->replay.read_latency_ns.Record(ns);
    if (resp.type != MsgType::kMulti) {
      return Status::IoError(std::string("unexpected read response ") + MsgTypeName(resp.type));
    }
    for (uint8_t s : resp.statuses) {
      if (s != 0) {
        ++st->replay.not_found;
      }
    }
    st->ops_acked += resp.statuses.size();
  } else {
    st->replay.write_latency_ns.Record(ns);
    if (resp.type != MsgType::kOk) {
      return Status::IoError(std::string("unexpected write response ") + MsgTypeName(resp.type));
    }
    st->ops_acked += p.ops;
  }
  return Status::Ok();
}

// One client thread's replay of its key-partition of the trace.
void ReplayPartition(const std::vector<StateAccess>& trace, uint64_t limit, int thread_index,
                     int clients, const LoadgenOptions& options, Client::Lease lease,
                     ThreadState* st) {
  net::FramedConn* conn = lease.conn();
  std::unordered_map<uint32_t, Pending> in_flight;
  WriteBatch wb;
  std::vector<std::string> get_keys;
  std::string key;
  std::string value_buf;

  auto send_frame = [&](std::string_view frame, uint32_t id, uint64_t ops,
                        bool is_read) -> Status {
    // Block on responses before exceeding the pipeline window.
    while (in_flight.size() >= options.pipeline_depth) {
      GADGET_RETURN_IF_ERROR(DrainOne(conn, &in_flight, st));
    }
    in_flight.emplace(id, Pending{ops, is_read, Clock::now()});
    GADGET_RETURN_IF_ERROR(conn->Send(frame));
    st->ops_sent += ops;
    return Status::Ok();
  };
  auto flush_writes = [&]() -> Status {
    if (wb.empty()) {
      return Status::Ok();
    }
    const uint32_t id = lease.NextId();
    std::string frame;
    AppendWriteBatchRequest(&frame, id, wb);
    const uint64_t n = wb.size();
    wb.Clear();
    return send_frame(frame, id, n, /*is_read=*/false);
  };
  auto flush_gets = [&]() -> Status {
    if (get_keys.empty()) {
      return Status::Ok();
    }
    const uint32_t id = lease.NextId();
    std::string frame;
    AppendMultiGetRequest(&frame, id, get_keys);
    const uint64_t n = get_keys.size();
    get_keys.clear();
    return send_frame(frame, id, n, /*is_read=*/true);
  };

  auto run = [&]() -> Status {
    const auto start = Clock::now();
    for (uint64_t i = 0; i < limit; ++i) {
      const StateAccess& a = trace[i];
      EncodeStateKeyTo(a.key, &key);
      // Key-hash partition: every key belongs to exactly one thread, so
      // per-key trace order survives the fan-out.
      if (Hash64(key) % static_cast<uint64_t>(clients) !=
          static_cast<uint64_t>(thread_index)) {
        continue;
      }
      if (a.op == OpType::kGet) {
        GADGET_RETURN_IF_ERROR(flush_writes());  // kind switch closes the frame
        get_keys.push_back(key);
        if (get_keys.size() >= options.batch_size) {
          GADGET_RETURN_IF_ERROR(flush_gets());
        }
        continue;
      }
      GADGET_RETURN_IF_ERROR(flush_gets());
      if (a.value_size > value_buf.size()) {
        value_buf.resize(a.value_size, 'v');  // the evaluator's synthetic values
      }
      std::string_view value(value_buf.data(), a.value_size);
      switch (a.op) {
        case OpType::kPut:
          wb.Put(key, value);
          break;
        case OpType::kMerge:
          wb.Merge(key, value);
          break;
        case OpType::kDelete:
          wb.Delete(key);
          break;
        case OpType::kGet:
          break;  // handled above
      }
      if (wb.size() >= options.batch_size) {
        GADGET_RETURN_IF_ERROR(flush_writes());
      }
    }
    GADGET_RETURN_IF_ERROR(flush_writes());
    GADGET_RETURN_IF_ERROR(flush_gets());
    while (!in_flight.empty()) {
      GADGET_RETURN_IF_ERROR(DrainOne(conn, &in_flight, st));
    }
    const auto end = Clock::now();
    st->replay.ops = st->ops_acked;
    st->replay.elapsed_seconds = static_cast<double>(ElapsedNs(start, end)) / 1e9;
    st->replay.throughput_ops_per_sec =
        st->replay.elapsed_seconds > 0
            ? static_cast<double>(st->replay.ops) / st->replay.elapsed_seconds
            : 0;
    return Status::Ok();
  };
  st->status = run();
}

}  // namespace

StatusOr<LoadgenResult> RunLoadgen(const std::vector<StateAccess>& trace,
                                   const LoadgenOptions& options) {
  if (options.clients < 1) {
    return Status::InvalidArgument("loadgen clients must be >= 1");
  }
  if (options.shards < 1) {
    return Status::InvalidArgument("loadgen shards must be >= 1");
  }
  auto client = Client::Connect(options.port, options.clients, options.connect_budget_ms);
  if (!client.ok()) {
    return client.status();
  }
  GADGET_RETURN_IF_ERROR((*client)->Ping());  // fail fast on a half-open server

  const uint64_t limit =
      options.max_ops == 0 ? trace.size() : std::min<uint64_t>(options.max_ops, trace.size());

  LoadgenResult out;
  // Client-side routing histogram: what the server's shards are about to see.
  ConsistentHashRouter router(options.shards);
  out.shard_ops.assign(static_cast<size_t>(options.shards), 0);
  std::string key;
  for (uint64_t i = 0; i < limit; ++i) {
    EncodeStateKeyTo(trace[i].key, &key);
    ++out.shard_ops[static_cast<size_t>(router.Route(key))];
  }
  uint64_t max_ops = 0;
  uint64_t total_ops = 0;
  for (uint64_t n : out.shard_ops) {
    max_ops = std::max(max_ops, n);
    total_ops += n;
  }
  const double mean =
      static_cast<double>(total_ops) / static_cast<double>(options.shards);
  out.shard_skew = mean > 0 ? static_cast<double>(max_ops) / mean : 0;

  std::vector<ThreadState> states(static_cast<size_t>(options.clients));
  std::vector<std::thread> threads;
  threads.reserve(states.size());
  for (int t = 0; t < options.clients; ++t) {
    threads.emplace_back([&, t] {
      ReplayPartition(trace, limit, t, options.clients, options, (*client)->AcquireLease(),
                      &states[static_cast<size_t>(t)]);
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  Status first;
  bool merged_any = false;
  for (const ThreadState& st : states) {
    if (!st.status.ok() && first.ok()) {
      first = st.status;
    }
    out.ops_sent += st.ops_sent;
    out.ops_acked += st.ops_acked;
    out.errors += st.errors;
    if (!merged_any) {
      out.replay = st.replay;
      merged_any = true;
    } else {
      out.replay.MergeFrom(st.replay);
    }
  }
  GADGET_RETURN_IF_ERROR(first);

  auto stats = (*client)->StatsJson();
  if (!stats.ok()) {
    return stats.status();
  }
  out.server_stats_json = std::move(*stats);
  return out;
}

}  // namespace wire
}  // namespace gadget
