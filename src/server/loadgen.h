// Wire-level load generator for the store service (DESIGN.md §6).
//
// RunLoadgen replays a Gadget access trace against a running server from
// `clients` threads, each owning one pooled connection. The trace is
// partitioned by key hash — every key's operations land on exactly one
// client thread, in trace order, so per-key ordering survives the fan-out
// (the same invariant ReplaySharded relies on in-process). Each thread
// coalesces runs of consecutive writes into WRITE_BATCH frames and runs of
// consecutive reads into MULTI_GET frames (a kind switch closes the pending
// frame, which trivially preserves intra-thread order), and keeps up to
// `pipeline_depth` frames in flight, matching responses by correlation id.
//
// Measurements are wire-level: each frame's latency is recorded once at
// response match (the latency an operator would see for the whole batch,
// mirroring the in-process batched replay convention), merged across threads
// into one ReplayResult. The result also carries the loss/duplication
// accounting the server-smoke CI gate checks (ops_sent vs ops_acked) and the
// client-side shard routing histogram that feeds the shard-skew gauge.
#ifndef GADGET_SERVER_LOADGEN_H_
#define GADGET_SERVER_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/gadget/evaluator.h"
#include "src/streams/state_access.h"

namespace gadget {
namespace wire {

struct LoadgenOptions {
  uint16_t port = 0;
  // Replay threads; each holds one pooled connection for the whole run.
  int clients = 4;
  // Must match the server's shard count: the router is a pure function of
  // it, so client and server agree on key placement with no coordination.
  int shards = 4;
  // Max operations coalesced into one WRITE_BATCH / MULTI_GET frame.
  uint64_t batch_size = 32;
  // Max frames in flight per connection before the sender blocks on a
  // response (the client half of the pipelining the protocol allows).
  uint64_t pipeline_depth = 4;
  // Replay budget, 0 = whole trace.
  uint64_t max_ops = 0;
  // Initial-connect retry budget: connection-refused is retried with bounded
  // backoff for about this long before giving up, so a loadgen launched in
  // parallel with `gadget serve` cannot lose the boot race. 0 = fail fast.
  int connect_budget_ms = 2000;
};

struct LoadgenResult {
  // Merged wire-level measurements across all client threads. `ops` counts
  // acknowledged operations; latency histograms hold one sample per frame.
  ReplayResult replay;
  // Loss/duplication accounting: a clean run has ops_acked == ops_sent and
  // errors == 0.
  uint64_t ops_sent = 0;
  uint64_t ops_acked = 0;
  uint64_t errors = 0;
  // Client-side routing histogram: operations routed to each shard.
  std::vector<uint64_t> shard_ops;
  // max(shard_ops) / mean(shard_ops); 1.0 = perfectly even. The gauge the
  // Zipf skew experiment reports.
  double shard_skew = 0;
  // The server's STATS document (per-shard + merged StoreStats), fetched
  // after the replay finishes.
  std::string server_stats_json;
};

// Replays `trace` against the server at 127.0.0.1:port. A server still
// booting (connection refused) is retried within connect_budget_ms; any other
// unreachability fails fast. Per-request server errors are counted in
// `errors`, not fatal.
StatusOr<LoadgenResult> RunLoadgen(const std::vector<StateAccess>& trace,
                                   const LoadgenOptions& options);

}  // namespace wire
}  // namespace gadget

#endif  // GADGET_SERVER_LOADGEN_H_
