// CLI entry points for the store service: `gadget serve` and
// `gadget loadgen` (DESIGN.md §6). Both take the same flat key=value Config
// the harness uses, so a loadgen run is described exactly like an in-process
// replay — same trace-generation keys, same store keys on the serve side —
// plus the service-specific keys below.
//
// serve:
//   port              listen port, 0 = kernel-assigned            (0)
//   shards            engine shards behind the router             (4)
//   shard_queue_limit backpressure bound, tasks per shard         (128)
//   port_file         write the bound port here once listening
//                     (how CI finds a kernel-assigned port)
//   store / store_dir / buffer_pool_* / sync_writes ...           (harness keys)
//
// loadgen:
//   port              server port (or read from port_file)        (0)
//   port_file         read the port from this file when port=0
//   clients           replay threads, one connection each         (4)
//   shards            must match the server's shard count         (4)
//   batch_size        ops coalesced per frame                     (32)
//   pipeline_depth    frames in flight per connection             (4)
//   max_ops           replay budget, 0 = whole trace              (0)
//   report            write a gadget.report/1 JSON here; carries a
//                     "server" object (wire accounting + shard skew)
//                     and the server's merged StoreStats
//   mode/operator/source/events/... (harness trace-generation keys)
#ifndef GADGET_SERVER_SERVICE_H_
#define GADGET_SERVER_SERVICE_H_

#include <ostream>

#include "src/common/config.h"
#include "src/common/status.h"

namespace gadget {
namespace wire {

// Runs a server until SIGINT/SIGTERM. Blocks.
Status ServeMain(const Config& config, std::ostream& out);

// Builds the configured trace, replays it over the wire, prints a summary,
// and optionally writes the report.
Status LoadgenMain(const Config& config, std::ostream& out);

}  // namespace wire
}  // namespace gadget

#endif  // GADGET_SERVER_SERVICE_H_
