#include "src/server/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/common/logging.h"
#include "src/common/mutex.h"
#include "src/server/net/socket.h"
#include "src/server/wire.h"

namespace gadget {
namespace wire {
namespace {

// One live client connection. The IO thread owns the receive state; workers
// share the send side through Send()'s mutex so response bursts from
// different shards never interleave mid-frame.
struct Conn {
  explicit Conn(int conn_fd) : fd(conn_fd) {}
  ~Conn() { net::CloseFd(fd); }
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  const int fd;
  std::string in;   // IO-thread-only: received bytes not yet framed
  size_t off = 0;   // IO-thread-only: consumed prefix of `in`

  Mutex mu;
  bool closed GUARDED_BY(mu) = false;

  void Send(std::string_view frames) {
    if (frames.empty()) {
      return;
    }
    MutexLock lock(&mu);
    if (closed) {
      return;
    }
    if (!net::SendAll(fd, frames).ok()) {
      closed = true;  // peer is gone; epoll will surface the error to the IO thread
    }
  }

  void MarkClosed() {
    MutexLock lock(&mu);
    closed = true;
  }
};

// Join state for a MULTI_GET whose keys span shards: each shard's worker
// fills its positions; the last one to finish encodes and sends the single
// MULTI response.
struct MultiJoin {
  std::shared_ptr<Conn> conn;
  uint32_t id = 0;
  Mutex mu;
  std::vector<Status> statuses GUARDED_BY(mu);
  std::vector<std::string> values GUARDED_BY(mu);
  size_t remaining GUARDED_BY(mu) = 0;
};

// Join state for a cross-shard WRITE_BATCH: one OK once every shard has
// applied its slice, or the first error.
struct BatchJoin {
  std::shared_ptr<Conn> conn;
  uint32_t id = 0;
  Mutex mu;
  Status error GUARDED_BY(mu);
  size_t remaining GUARDED_BY(mu) = 0;
};

// One decoded request (or per-shard slice of a fan-out request) bound for a
// shard worker.
struct WorkItem {
  MsgType type = MsgType::kPing;
  uint32_t id = 0;
  std::string key;    // get / put / merge / delete
  std::string value;  // put / merge operand

  std::vector<std::string> keys;   // multi-get slice
  std::vector<size_t> positions;   // original index of each key in the request
  std::shared_ptr<MultiJoin> mjoin;

  WriteBatch batch;  // write-batch slice
  std::shared_ptr<BatchJoin> bjoin;
};

// A burst of requests from one connection for one shard.
struct ShardTask {
  std::shared_ptr<Conn> conn;
  std::vector<WorkItem> items;
};

struct ShardQueue {
  Mutex mu;
  CondVar not_empty{&mu};
  CondVar not_full{&mu};
  std::deque<ShardTask> tasks GUARDED_BY(mu);
  bool stop GUARDED_BY(mu) = false;
};

}  // namespace

struct Server::Impl {
  ServerOptions options;
  ShardSet* shards = nullptr;
  int listen_fd = -1;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::atomic<bool> stopping{false};
  std::unordered_map<int, std::shared_ptr<Conn>> conns;  // IO thread only
  std::vector<std::unique_ptr<ShardQueue>> queues;

  ~Impl() {
    net::CloseFd(listen_fd);
    net::CloseFd(wake_fd);
    if (epoll_fd >= 0) {
      ::close(epoll_fd);
    }
  }

  void IoLoop();
  void AcceptAll();
  void HandleReadable(const std::shared_ptr<Conn>& conn);
  // Decodes every complete frame buffered on `conn` and dispatches the
  // resulting shard tasks. Returns false when the connection must close
  // (protocol error — the fatal ERROR frame has already been sent).
  bool DecodeBurst(const std::shared_ptr<Conn>& conn);
  void Dispatch(int shard, ShardTask task);
  void DropConn(int fd);

  void WorkerLoop(int shard);
  void ExecuteTask(int shard, ShardTask& task);
};

void Server::Impl::AcceptAll() {
  for (;;) {
    StatusOr<int> fd = net::TcpAccept(listen_fd);
    if (!fd.ok()) {
      GADGET_LOG(Warning) << "accept failed: " << fd.status().ToString();
      return;
    }
    if (*fd < 0) {
      return;  // listen queue drained
    }
    if (!net::SetNonBlocking(*fd).ok()) {
      net::CloseFd(*fd);
      continue;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = *fd;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, *fd, &ev) < 0) {
      net::CloseFd(*fd);
      continue;
    }
    conns.emplace(*fd, std::make_shared<Conn>(*fd));
  }
}

void Server::Impl::DropConn(int fd) {
  auto it = conns.find(fd);
  if (it == conns.end()) {
    return;
  }
  it->second->MarkClosed();
  ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  // The fd itself closes when the last in-flight task drops its Conn ref.
  conns.erase(it);
}

void Server::Impl::IoLoop() {
  epoll_event events[64];
  while (!stopping.load(std::memory_order_relaxed)) {
    const int n = ::epoll_wait(epoll_fd, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      GADGET_LOG(Error) << "epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd) {
        uint64_t tick = 0;
        const ssize_t ignored = ::read(wake_fd, &tick, sizeof(tick));
        (void)ignored;
        continue;
      }
      if (fd == listen_fd) {
        AcceptAll();
        continue;
      }
      auto it = conns.find(fd);
      if (it == conns.end()) {
        continue;  // already dropped earlier in this wake
      }
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
          (events[i].events & EPOLLIN) == 0) {
        DropConn(fd);
        continue;
      }
      HandleReadable(it->second);
    }
  }
  // Teardown: no new frames will be read; in-flight tasks finish via their
  // own Conn refs.
  std::vector<int> fds;
  fds.reserve(conns.size());
  for (const auto& [fd, conn] : conns) {
    fds.push_back(fd);
  }
  for (int fd : fds) {
    DropConn(fd);
  }
}

void Server::Impl::HandleReadable(const std::shared_ptr<Conn>& conn) {
  bool eof = false;
  for (;;) {
    std::string error;
    const int n = net::RecvChunk(conn->fd, &conn->in, 64 << 10, &error);
    if (n > 0) {
      continue;  // drain until EAGAIN so level-triggered epoll stays quiet
    }
    if (n == -1) {
      break;  // no more buffered bytes
    }
    eof = true;  // orderly EOF or hard error: process what we have, then drop
    break;
  }
  if (!DecodeBurst(conn) || eof) {
    DropConn(conn->fd);
  }
}

bool Server::Impl::DecodeBurst(const std::shared_ptr<Conn>& conn) {
  // Responses the IO thread can produce itself (PONG, STATS_TEXT, trivial
  // empty-request replies) accumulate here and go out as one send.
  std::string inline_out;
  std::vector<std::vector<WorkItem>> per_shard(queues.size());
  bool ok = true;

  for (;;) {
    FrameView frame;
    size_t consumed = 0;
    std::string error;
    const FrameStatus fs =
        ExtractFrame(std::string_view(conn->in).substr(conn->off), &frame, &consumed, &error);
    if (fs == FrameStatus::kNeedMore) {
      break;
    }
    if (fs == FrameStatus::kError) {
      AppendErrorResponse(&inline_out, 0, error);  // id 0: connection-fatal
      ok = false;
      break;
    }
    Request req;
    const Status ps = ParseRequest(frame, &req);
    if (!ps.ok()) {
      AppendErrorResponse(&inline_out, 0, ps.ToString());
      ok = false;
      break;
    }
    conn->off += consumed;
    switch (req.type) {
      case MsgType::kPing:
        AppendPongResponse(&inline_out, req.id);
        break;
      case MsgType::kStats:
        AppendStatsTextResponse(&inline_out, req.id, shards->StatsJson());
        break;
      case MsgType::kGet:
      case MsgType::kPut:
      case MsgType::kMerge:
      case MsgType::kDelete: {
        WorkItem item;
        item.type = req.type;
        item.id = req.id;
        item.key = std::move(req.key);
        item.value = std::move(req.value);
        const int shard = shards->Route(item.key);
        per_shard[static_cast<size_t>(shard)].push_back(std::move(item));
        break;
      }
      case MsgType::kMultiGet: {
        if (req.keys.empty()) {
          AppendMultiResponse(&inline_out, req.id, {}, {});
          break;
        }
        auto join = std::make_shared<MultiJoin>();
        join->conn = conn;
        join->id = req.id;
        std::unordered_map<int, size_t> slice;  // shard -> index in per-shard items
        {
          MutexLock lock(&join->mu);
          join->statuses.assign(req.keys.size(), Status::NotFound());
          join->values.assign(req.keys.size(), std::string());
          for (size_t i = 0; i < req.keys.size(); ++i) {
            const int shard = shards->Route(req.keys[i]);
            auto [it, inserted] = slice.emplace(shard, 0);
            if (inserted) {
              WorkItem item;
              item.type = MsgType::kMultiGet;
              item.id = req.id;
              item.mjoin = join;
              per_shard[static_cast<size_t>(shard)].push_back(std::move(item));
              it->second = per_shard[static_cast<size_t>(shard)].size() - 1;
            }
            WorkItem& part = per_shard[static_cast<size_t>(shard)][it->second];
            part.keys.push_back(std::move(req.keys[i]));
            part.positions.push_back(i);
          }
          join->remaining = slice.size();
        }
        break;
      }
      case MsgType::kWriteBatch: {
        if (req.batch.empty()) {
          AppendOkResponse(&inline_out, req.id);
          break;
        }
        auto join = std::make_shared<BatchJoin>();
        join->conn = conn;
        join->id = req.id;
        std::unordered_map<int, size_t> slice;
        size_t parts = 0;
        for (size_t i = 0; i < req.batch.size(); ++i) {
          const WriteBatch::Entry& e = req.batch.entry(i);
          const int shard = shards->Route(e.key);
          auto [it, inserted] = slice.emplace(shard, 0);
          if (inserted) {
            WorkItem item;
            item.type = MsgType::kWriteBatch;
            item.id = req.id;
            item.bjoin = join;
            per_shard[static_cast<size_t>(shard)].push_back(std::move(item));
            it->second = per_shard[static_cast<size_t>(shard)].size() - 1;
            ++parts;
          }
          WorkItem& part = per_shard[static_cast<size_t>(shard)][it->second];
          switch (e.op) {
            case WriteBatch::Op::kPut:
              part.batch.Put(e.key, e.value);
              break;
            case WriteBatch::Op::kMerge:
              part.batch.Merge(e.key, e.value);
              break;
            case WriteBatch::Op::kDelete:
              part.batch.Delete(e.key);
              break;
          }
        }
        {
          MutexLock lock(&join->mu);
          join->remaining = parts;
        }
        break;
      }
      default:
        AppendErrorResponse(&inline_out, 0, "unhandled request type");
        ok = false;
        break;
    }
    if (!ok) {
      break;
    }
  }

  // Reclaim consumed bytes once they dominate the buffer.
  if (conn->off > 4096 && conn->off * 2 > conn->in.size()) {
    conn->in.erase(0, conn->off);
    conn->off = 0;
  }
  conn->Send(inline_out);
  for (size_t shard = 0; shard < per_shard.size(); ++shard) {
    if (!per_shard[shard].empty()) {
      ShardTask task;
      task.conn = conn;
      task.items = std::move(per_shard[shard]);
      Dispatch(static_cast<int>(shard), std::move(task));
    }
  }
  return ok;
}

void Server::Impl::Dispatch(int shard, ShardTask task) {
  ShardQueue& q = *queues[static_cast<size_t>(shard)];
  MutexLock lock(&q.mu);
  // Blocking here IS the backpressure: the IO thread stops reading every
  // connection until the stalled shard drains, and TCP pushes the wait back
  // to the clients.
  while (q.tasks.size() >= options.shard_queue_limit && !q.stop) {
    q.not_full.Wait();
  }
  if (q.stop) {
    return;  // shutting down; the connection is about to drop anyway
  }
  q.tasks.push_back(std::move(task));
  q.not_empty.Signal();
}

void Server::Impl::WorkerLoop(int shard) {
  ShardQueue& q = *queues[static_cast<size_t>(shard)];
  for (;;) {
    ShardTask task;
    {
      MutexLock lock(&q.mu);
      while (q.tasks.empty() && !q.stop) {
        q.not_empty.Wait();
      }
      if (q.tasks.empty()) {
        return;  // stopped and drained
      }
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
      q.not_full.Signal();
    }
    if (shard == options.test_delay_shard && options.test_delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(options.test_delay_ms));
    }
    ExecuteTask(shard, task);
  }
}

void Server::Impl::ExecuteTask(int shard, ShardTask& task) {
  KVStore* store = shards->shard(shard);
  std::string out;  // responses for this burst, sent once at the end

  // Coalescing state: consecutive simple writes build one WriteBatch,
  // consecutive GETs build one MultiGet. The conflict rules below flush one
  // side before the other touches the same key, which keeps the invariant
  // wkeys ∩ rkeys = ∅ — so the final flush order cannot change any result.
  WriteBatch wb;
  std::vector<uint32_t> wids;
  std::unordered_set<std::string> wkeys;
  std::vector<std::string> gkeys;
  std::vector<uint32_t> gids;
  std::unordered_set<std::string> rkeys;

  auto flush_writes = [&]() {
    if (wids.empty()) {
      return;
    }
    const Status s = store->Write(wb);
    for (uint32_t id : wids) {
      if (s.ok()) {
        AppendOkResponse(&out, id);
      } else {
        AppendErrorResponse(&out, id, s.ToString());
      }
    }
    wb.Clear();
    wids.clear();
    wkeys.clear();
  };
  auto flush_reads = [&]() {
    if (gids.empty()) {
      return;
    }
    std::vector<std::string> values;
    std::vector<Status> statuses;
    // Per-key statuses carry the outcome; the aggregate return repeats the
    // first non-NotFound error. status intentionally ignored: per-key below.
    (void)store->MultiGet(gkeys, &values, &statuses);
    for (size_t i = 0; i < gids.size(); ++i) {
      if (statuses[i].ok()) {
        AppendValueResponse(&out, gids[i], values[i]);
      } else if (statuses[i].IsNotFound()) {
        AppendNotFoundResponse(&out, gids[i]);
      } else {
        AppendErrorResponse(&out, gids[i], statuses[i].ToString());
      }
    }
    gkeys.clear();
    gids.clear();
    rkeys.clear();
  };

  for (WorkItem& item : task.items) {
    switch (item.type) {
      case MsgType::kPut:
      case MsgType::kMerge:
      case MsgType::kDelete:
        if (rkeys.count(item.key) != 0) {
          flush_reads();  // the pending read must see the pre-write value
        }
        if (item.type == MsgType::kPut) {
          wb.Put(item.key, item.value);
        } else if (item.type == MsgType::kMerge) {
          wb.Merge(item.key, item.value);
        } else {
          wb.Delete(item.key);
        }
        wkeys.insert(std::move(item.key));
        wids.push_back(item.id);
        break;
      case MsgType::kGet:
        if (wkeys.count(item.key) != 0) {
          flush_writes();  // read-your-writes: the GET must see the pending write
        }
        rkeys.insert(item.key);
        gkeys.push_back(std::move(item.key));
        gids.push_back(item.id);
        break;
      case MsgType::kMultiGet: {
        for (const std::string& k : item.keys) {
          if (wkeys.count(k) != 0) {
            flush_writes();
            break;
          }
        }
        std::vector<std::string> values;
        std::vector<Status> statuses;
        // status intentionally ignored: per-key statuses are authoritative.
        (void)store->MultiGet(item.keys, &values, &statuses);
        bool done = false;
        std::string join_out;
        {
          MutexLock lock(&item.mjoin->mu);
          for (size_t i = 0; i < item.positions.size(); ++i) {
            item.mjoin->statuses[item.positions[i]] = statuses[i];
            item.mjoin->values[item.positions[i]] = std::move(values[i]);
          }
          done = (--item.mjoin->remaining == 0);
          if (done) {
            AppendMultiResponse(&join_out, item.mjoin->id, item.mjoin->statuses,
                                item.mjoin->values);
          }
        }
        if (done) {
          item.mjoin->conn->Send(join_out);
        }
        break;
      }
      case MsgType::kWriteBatch: {
        bool flushed_w = false;
        for (size_t i = 0; i < item.batch.size(); ++i) {
          const std::string& k = item.batch.entry(i).key;
          if (!flushed_w && wkeys.count(k) != 0) {
            flush_writes();  // earlier pending writes apply first
            flushed_w = true;
          }
          if (rkeys.count(k) != 0) {
            flush_reads();  // earlier pending reads see the pre-batch value
          }
        }
        const Status s = store->Write(item.batch);
        bool done = false;
        std::string join_out;
        {
          MutexLock lock(&item.bjoin->mu);
          if (!s.ok() && item.bjoin->error.ok()) {
            item.bjoin->error = s;
          }
          done = (--item.bjoin->remaining == 0);
          if (done) {
            if (item.bjoin->error.ok()) {
              AppendOkResponse(&join_out, item.bjoin->id);
            } else {
              AppendErrorResponse(&join_out, item.bjoin->id, item.bjoin->error.ToString());
            }
          }
        }
        if (done) {
          item.bjoin->conn->Send(join_out);
        }
        break;
      }
      default:
        AppendErrorResponse(&out, item.id, "unroutable request type");
        break;
    }
  }
  flush_writes();
  flush_reads();
  task.conn->Send(out);
}

StatusOr<std::unique_ptr<Server>> Server::Start(const ServerOptions& options) {
  auto shards = ShardSet::Open(options.store, options.shards);
  if (!shards.ok()) {
    return shards.status();
  }
  StatusOr<int> listen = net::TcpListen(options.port);
  if (!listen.ok()) {
    // status intentionally ignored: the open itself already failed.
    (void)(*shards)->Close();
    return listen.status();
  }
  auto impl = std::make_unique<Server::Impl>();
  impl->options = options;
  impl->listen_fd = *listen;
  const StatusOr<uint16_t> port = net::TcpLocalPort(impl->listen_fd);
  if (!port.ok()) {
    // status intentionally ignored: the open itself already failed.
    (void)(*shards)->Close();
    return port.status();
  }
  GADGET_RETURN_IF_ERROR(net::SetNonBlocking(impl->listen_fd));
  impl->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  impl->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (impl->epoll_fd < 0 || impl->wake_fd < 0) {
    return Status::IoError("epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = impl->listen_fd;
  if (::epoll_ctl(impl->epoll_fd, EPOLL_CTL_ADD, impl->listen_fd, &ev) < 0) {
    return Status::IoError("epoll_ctl(listen)");
  }
  ev.data.fd = impl->wake_fd;
  if (::epoll_ctl(impl->epoll_fd, EPOLL_CTL_ADD, impl->wake_fd, &ev) < 0) {
    return Status::IoError("epoll_ctl(wake)");
  }

  std::unique_ptr<Server> server(new Server());
  server->shards_ = std::move(*shards);
  server->port_ = *port;
  impl->shards = server->shards_.get();
  impl->queues.reserve(static_cast<size_t>(options.shards));
  for (int i = 0; i < options.shards; ++i) {
    impl->queues.push_back(std::make_unique<ShardQueue>());
  }
  server->impl_ = std::move(impl);
  Server::Impl* raw = server->impl_.get();
  server->io_thread_ = std::thread([raw] { raw->IoLoop(); });
  server->workers_.reserve(static_cast<size_t>(options.shards));
  for (int i = 0; i < options.shards; ++i) {
    server->workers_.emplace_back([raw, i] { raw->WorkerLoop(i); });
  }
  GADGET_LOG(Info) << "gadget serve: " << options.shards << " shard(s) of "
                   << options.store.engine << " on 127.0.0.1:" << server->port_;
  return server;
}

void Server::Stop() {
  if (stopped_) {
    return;
  }
  stopped_ = true;
  impl_->stopping.store(true, std::memory_order_relaxed);
  const uint64_t one = 1;
  const ssize_t ignored = ::write(impl_->wake_fd, &one, sizeof(one));
  (void)ignored;
  io_thread_.join();
  for (auto& q : impl_->queues) {
    MutexLock lock(&q->mu);
    q->stop = true;
    q->not_empty.SignalAll();
    q->not_full.SignalAll();
  }
  for (std::thread& w : workers_) {
    w.join();
  }
  const Status close_status = shards_->Close();
  if (!close_status.ok()) {
    GADGET_LOG(Warning) << "shard close: " << close_status.ToString();
  }
}

Server::~Server() {
  if (impl_ != nullptr) {
    Stop();
  }
}

}  // namespace wire
}  // namespace gadget
