#include "src/server/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/common/json.h"
#include "src/common/logging.h"
#include "src/common/mutex.h"
#include "src/server/net/socket.h"
#include "src/server/net/uring_socket.h"
#include "src/server/wire.h"

namespace gadget {
namespace wire {
namespace {

constexpr size_t kRecvChunk = 64 << 10;
// Gather-list cap per writev: a deep pipeline coalesces up to this many
// queued response bursts into one syscall. Far below IOV_MAX (1024); past a
// few dozen entries the syscall itself stops being the cost.
constexpr int kMaxIov = 64;

void UpdateMax(std::atomic<uint64_t>& gauge, uint64_t v) {
  uint64_t cur = gauge.load(std::memory_order_relaxed);
  while (cur < v &&
         !gauge.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// Process-wide net-layer counters (NetStats minus the per-thread gauges).
struct NetCounters {
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  std::atomic<uint64_t> writev_calls{0};
  std::atomic<uint64_t> frames_per_writev_max{0};
  std::atomic<uint64_t> outq_stall_micros{0};
  std::atomic<uint64_t> outq_bytes_max{0};
  std::atomic<uint64_t> accepted{0};
};

// One enqueued response burst: pre-encoded frames plus how many, so the
// drain can report frames-per-writev.
struct OutChunk {
  std::string data;
  uint64_t frames = 0;
};

// One live client connection. The owning IO thread is the only reader of the
// receive state; the send side is a bounded output queue shared by workers
// and the owner under `mu`, so response bursts never tear or reorder.
struct Conn {
  Conn(int conn_fd, int epfd) : fd(conn_fd), owner_epfd(epfd) {}
  ~Conn() { net::CloseFd(fd); }
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  const int fd;
  const int owner_epfd;  // for EPOLLOUT (re)arming from any thread
  std::string in;        // owner-IO-thread-only: received bytes not yet framed
  size_t off = 0;        // owner-IO-thread-only: consumed prefix of `in`

  Mutex mu;
  bool closed GUARDED_BY(mu) = false;
  std::deque<OutChunk> outq GUARDED_BY(mu);
  size_t outq_bytes GUARDED_BY(mu) = 0;
  size_t head_off GUARDED_BY(mu) = 0;  // written prefix of outq.front()
  bool write_armed GUARDED_BY(mu) = false;
  CondVar drained{&mu};  // signaled whenever the drain frees queue bytes

  // Enqueues one response burst. Workers pass may_block=true: when the queue
  // is over `outq_limit` they wait — periodically attempting the drain
  // themselves, because the owner reactor may itself be parked in dispatch
  // backpressure and unable to service EPOLLOUT. Reactors pass
  // may_block=false (a reactor must never sleep on one connection) and their
  // own ring for the inline drain.
  void Send(std::string_view frames, uint64_t nframes, net::UringSocket* ring,
            bool may_block, size_t outq_limit, NetCounters* nc) {
    if (frames.empty()) {
      return;
    }
    MutexLock lock(&mu);
    if (closed) {
      return;
    }
    // A burst bigger than the limit on its own still goes out (it just waits
    // for an empty queue): `outq_bytes != 0` keeps the wait satisfiable.
    if (may_block && outq_bytes != 0 && outq_bytes + frames.size() > outq_limit) {
      const auto t0 = std::chrono::steady_clock::now();
      while (!closed && outq_bytes != 0 && outq_bytes + frames.size() > outq_limit) {
        if (!DrainLocked(nullptr, nc)) {
          break;  // connection died mid-drain
        }
        if (closed || outq_bytes == 0 || outq_bytes + frames.size() <= outq_limit) {
          break;
        }
        // gadget:blocking-ok: only workers pass may_block=true; the reactor's
        // Send(may_block=false) never enters this loop.
        drained.WaitFor(std::chrono::milliseconds(2));
      }
      nc->outq_stall_micros.fetch_add(
          static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                    std::chrono::steady_clock::now() - t0)
                                    .count()),
          std::memory_order_relaxed);
      if (closed) {
        return;
      }
    }
    outq.push_back(OutChunk{std::string(frames), nframes});
    outq_bytes += frames.size();
    UpdateMax(nc->outq_bytes_max, outq_bytes);
    if (!write_armed) {
      if (!DrainLocked(ring, nc)) {
        return;
      }
      if (!outq.empty()) {
        SetWriteInterestLocked(true);  // finish via EPOLLOUT on the owner
      }
    }
  }

  // Writes as much of the output queue as the socket accepts, coalescing up
  // to kMaxIov queued bursts per writev. Returns false when the connection
  // died (closed is then set); true otherwise — a true return with a
  // non-empty queue means EAGAIN.
  bool DrainLocked(net::UringSocket* ring, NetCounters* nc) REQUIRES(mu) {
    while (!outq.empty()) {
      iovec iov[kMaxIov];
      int cnt = 0;
      uint64_t batch_frames = 0;
      size_t first_off = head_off;
      for (auto it = outq.begin(); it != outq.end() && cnt < kMaxIov; ++it) {
        iov[cnt].iov_base = const_cast<char*>(it->data.data()) + first_off;
        iov[cnt].iov_len = it->data.size() - first_off;
        first_off = 0;
        batch_frames += it->frames;
        ++cnt;
      }
      std::string error;
      const ssize_t n = ring != nullptr
                            ? ring->Writev(fd, iov, cnt, &error)
                            : net::WritevNonBlocking(fd, iov, cnt, &error);
      if (n == -1) {
        return true;  // socket buffer full; caller arms EPOLLOUT
      }
      if (n == -2) {
        closed = true;  // peer is gone; epoll surfaces it to the owner
        drained.SignalAll();
        return false;
      }
      nc->writev_calls.fetch_add(1, std::memory_order_relaxed);
      nc->bytes_out.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      UpdateMax(nc->frames_per_writev_max, batch_frames);
      size_t written = static_cast<size_t>(n);
      outq_bytes -= written;
      while (written > 0) {
        OutChunk& front = outq.front();
        const size_t avail = front.data.size() - head_off;
        if (written >= avail) {
          written -= avail;
          head_off = 0;
          outq.pop_front();
        } else {
          head_off += written;
          written = 0;
        }
      }
      drained.SignalAll();
    }
    if (write_armed) {
      SetWriteInterestLocked(false);
    }
    return true;
  }

  // Flips EPOLLOUT interest on the owning reactor's epoll set. epoll_ctl is
  // thread-safe, so workers arm directly; ENOENT/EBADF (the owner already
  // dropped or closed the fd) are harmless.
  void SetWriteInterestLocked(bool want) REQUIRES(mu) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(owner_epfd, EPOLL_CTL_MOD, fd, &ev);
    write_armed = want;
  }

  void MarkClosed() {
    MutexLock lock(&mu);
    closed = true;
    drained.SignalAll();  // unblock workers stalled on this queue
  }
};

// Join state for a MULTI_GET whose keys span shards: each shard's worker
// fills its positions; the last one to finish encodes and sends the single
// MULTI response.
struct MultiJoin {
  std::shared_ptr<Conn> conn;
  uint32_t id = 0;
  Mutex mu;
  std::vector<Status> statuses GUARDED_BY(mu);
  std::vector<std::string> values GUARDED_BY(mu);
  size_t remaining GUARDED_BY(mu) = 0;
};

// Join state for a cross-shard WRITE_BATCH: one OK once every shard has
// applied its slice, or the first error.
struct BatchJoin {
  std::shared_ptr<Conn> conn;
  uint32_t id = 0;
  Mutex mu;
  Status error GUARDED_BY(mu);
  size_t remaining GUARDED_BY(mu) = 0;
};

// One decoded request (or per-shard slice of a fan-out request) bound for a
// shard worker.
struct WorkItem {
  MsgType type = MsgType::kPing;
  uint32_t id = 0;
  std::string key;    // get / put / merge / delete
  std::string value;  // put / merge operand

  std::vector<std::string> keys;   // multi-get slice
  std::vector<size_t> positions;   // original index of each key in the request
  std::shared_ptr<MultiJoin> mjoin;

  WriteBatch batch;  // write-batch slice
  std::shared_ptr<BatchJoin> bjoin;
};

// A burst of requests from one connection for one shard.
struct ShardTask {
  std::shared_ptr<Conn> conn;
  std::vector<WorkItem> items;
};

struct ShardQueue {
  Mutex mu;
  CondVar not_empty{&mu};
  CondVar not_full{&mu};
  std::deque<ShardTask> tasks GUARDED_BY(mu);
  bool stop GUARDED_BY(mu) = false;
};

// One reactor: a private epoll set, its connections, a wake eventfd doubling
// as the accepted-fd handoff doorbell, and (optionally) an io_uring ring.
struct IoThread {
  int epoll_fd = -1;
  int wake_fd = -1;
  std::unordered_map<int, std::shared_ptr<Conn>> conns;  // owner thread only
  Mutex in_mu;
  std::vector<int> incoming GUARDED_BY(in_mu);  // accepted fds awaiting adoption
  // Created before the thread starts, never reassigned after: concurrent
  // snapshot reads of the pointer are safe, and the ring itself is only
  // driven by the owner thread.
  std::unique_ptr<net::UringSocket> uring;
  std::atomic<uint64_t> ops{0};  // frames decoded by this reactor

  ~IoThread() {
    for (int fd : incoming) {
      net::CloseFd(fd);  // accepted but never adopted
    }
    net::CloseFd(wake_fd);
    if (epoll_fd >= 0) {
      ::close(epoll_fd);
    }
  }
};

}  // namespace

struct Server::Impl {
  ServerOptions options;
  ShardSet* shards = nullptr;
  int listen_fd = -1;
  std::atomic<bool> stopping{false};
  std::vector<std::unique_ptr<IoThread>> io;
  size_t next_io = 0;  // round-robin accept cursor; thread 0 only
  std::vector<std::unique_ptr<ShardQueue>> queues;
  NetCounters net;

  ~Impl() { net::CloseFd(listen_fd); }

  void IoLoop(size_t tid);
  void AcceptAll(IoThread& t0);
  void AdoptConn(IoThread& t, int fd);
  void AdoptIncoming(IoThread& t);
  // Receives everything currently buffered on each readable connection —
  // through one io_uring wave per round when the reactor has a ring, plain
  // recv otherwise. dead[i] is set on EOF / receive error.
  void ReadBatch(IoThread& t, const std::vector<std::shared_ptr<Conn>>& ready,
                 std::vector<char>* dead);
  // Drains the output queue on EPOLLOUT; drops the connection on write error.
  void HandleWritable(IoThread& t, const std::shared_ptr<Conn>& conn);
  // Decodes every complete frame buffered on `conn` and dispatches the
  // resulting shard tasks. Returns false when the connection must close
  // (protocol error — the fatal ERROR frame has already been queued).
  bool DecodeBurst(IoThread& t, const std::shared_ptr<Conn>& conn);
  void Dispatch(int shard, ShardTask task);
  void DropConn(IoThread& t, int fd);

  void WorkerLoop(int shard);
  void ExecuteTask(int shard, ShardTask& task);

  NetStats SnapshotNet() const;
  JsonValue NetJson() const;
  std::string StatsText() const;
};

void Server::Impl::AcceptAll(IoThread& t0) {
  for (;;) {
    StatusOr<int> fd = net::TcpAccept(listen_fd);
    if (!fd.ok()) {
      GADGET_LOG(Warning) << "accept failed: " << fd.status().ToString();
      return;
    }
    if (*fd < 0) {
      return;  // listen queue drained
    }
    if (!net::SetNonBlocking(*fd).ok()) {
      net::CloseFd(*fd);
      continue;
    }
    if (options.so_sndbuf > 0) {
      // status intentionally ignored: slow-reader test hook; failure just
      // means the test sees more buffering before EAGAIN.
      (void)net::SetSocketBufferSizes(*fd, options.so_sndbuf, 0);
    }
    net.accepted.fetch_add(1, std::memory_order_relaxed);
    IoThread& target = *io[next_io];
    next_io = (next_io + 1) % io.size();
    if (&target == &t0) {
      AdoptConn(t0, *fd);
    } else {
      {
        MutexLock lock(&target.in_mu);
        target.incoming.push_back(*fd);
      }
      const uint64_t one = 1;
      const ssize_t ignored = ::write(target.wake_fd, &one, sizeof(one));
      (void)ignored;
    }
  }
}

void Server::Impl::AdoptConn(IoThread& t, int fd) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(t.epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
    net::CloseFd(fd);
    return;
  }
  t.conns.emplace(fd, std::make_shared<Conn>(fd, t.epoll_fd));
}

void Server::Impl::AdoptIncoming(IoThread& t) {
  std::vector<int> fds;
  {
    MutexLock lock(&t.in_mu);
    fds.swap(t.incoming);
  }
  for (int fd : fds) {
    AdoptConn(t, fd);
  }
}

void Server::Impl::DropConn(IoThread& t, int fd) {
  auto it = t.conns.find(fd);
  if (it == t.conns.end()) {
    return;
  }
  it->second->MarkClosed();
  ::epoll_ctl(t.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  // The fd itself closes when the last in-flight task drops its Conn ref.
  t.conns.erase(it);
}

// gadget:reactor-context
void Server::Impl::IoLoop(size_t tid) {
  IoThread& t = *io[tid];
  epoll_event events[64];
  std::vector<std::shared_ptr<Conn>> readable;
  std::vector<char> dead;
  while (!stopping.load(std::memory_order_relaxed)) {
    const int n = ::epoll_wait(t.epoll_fd, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) {
        continue;  // signals are not events
      }
      GADGET_LOG(Error) << "epoll_wait: " << std::strerror(errno);
      break;
    }
    readable.clear();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == t.wake_fd) {
        uint64_t tick = 0;
        const ssize_t ignored = ::read(t.wake_fd, &tick, sizeof(tick));
        (void)ignored;
        AdoptIncoming(t);
        continue;
      }
      if (tid == 0 && fd == listen_fd) {
        AcceptAll(t);
        continue;
      }
      auto it = t.conns.find(fd);
      if (it == t.conns.end()) {
        continue;  // already dropped earlier in this wake
      }
      const uint32_t ev = events[i].events;
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0 && (ev & EPOLLIN) == 0) {
        DropConn(t, fd);
        continue;
      }
      if ((ev & EPOLLOUT) != 0) {
        HandleWritable(t, it->second);
        if (t.conns.find(fd) == t.conns.end()) {
          continue;  // dropped on write error
        }
      }
      if ((ev & EPOLLIN) != 0) {
        readable.push_back(it->second);
      }
    }
    if (!readable.empty()) {
      dead.assign(readable.size(), 0);
      ReadBatch(t, readable, &dead);
      for (size_t i = 0; i < readable.size(); ++i) {
        if (!DecodeBurst(t, readable[i]) || dead[i] != 0) {
          DropConn(t, readable[i]->fd);
        }
      }
    }
  }
  // Teardown: no new frames will be read; in-flight tasks finish via their
  // own Conn refs, and MarkClosed (inside DropConn) unblocks any worker
  // stalled on an output queue.
  std::vector<int> fds;
  fds.reserve(t.conns.size());
  for (const auto& [fd, conn] : t.conns) {
    fds.push_back(fd);
  }
  for (int fd : fds) {
    DropConn(t, fd);
  }
  AdoptIncoming(t);  // adopt-and-drop stragglers so their fds close
  fds.clear();
  for (const auto& [fd, conn] : t.conns) {
    fds.push_back(fd);
  }
  for (int fd : fds) {
    DropConn(t, fd);
  }
}

void Server::Impl::HandleWritable(IoThread& t, const std::shared_ptr<Conn>& conn) {
  bool dead_conn;
  {
    MutexLock lock(&conn->mu);
    dead_conn = conn->closed || !conn->DrainLocked(t.uring.get(), &net);
  }
  if (dead_conn) {
    DropConn(t, conn->fd);
  }
}

void Server::Impl::ReadBatch(IoThread& t, const std::vector<std::shared_ptr<Conn>>& ready,
                             std::vector<char>* dead) {
  if (t.uring != nullptr) {
    // Wave loop: every still-active connection gets one IORING_OP_RECV per
    // round, submitted together. A full chunk means the socket may hold
    // more, so it rides the next wave; a short chunk means it is drained.
    std::vector<size_t> active(ready.size());
    for (size_t i = 0; i < ready.size(); ++i) {
      active[i] = i;
    }
    std::vector<net::UringSocket::RecvOp> ops;
    std::vector<net::UringSocket::RecvOp*> op_ptrs;
    while (!active.empty()) {
      ops.assign(active.size(), net::UringSocket::RecvOp{});
      op_ptrs.clear();
      for (size_t j = 0; j < active.size(); ++j) {
        Conn& c = *ready[active[j]];
        ops[j].fd = c.fd;
        ops[j].buf = &c.in;
        ops[j].cap = kRecvChunk;
        op_ptrs.push_back(&ops[j]);
      }
      if (!t.uring->RecvBatch(op_ptrs)) {
        break;  // ring unusable; level-triggered epoll re-reports next wake
      }
      std::vector<size_t> next;
      for (size_t j = 0; j < active.size(); ++j) {
        const net::UringSocket::RecvOp& op = ops[j];
        if (op.result > 0) {
          net.bytes_in.fetch_add(static_cast<uint64_t>(op.result),
                                 std::memory_order_relaxed);
          if (static_cast<size_t>(op.result) == op.cap) {
            next.push_back(active[j]);
          }
        } else if (op.result != -1) {
          (*dead)[active[j]] = 1;  // orderly EOF or hard error
        }
      }
      active.swap(next);
    }
    return;
  }
  for (size_t i = 0; i < ready.size(); ++i) {
    for (;;) {
      std::string error;
      const int n = net::RecvChunk(ready[i]->fd, &ready[i]->in, kRecvChunk, &error);
      if (n > 0) {
        net.bytes_in.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
        continue;  // drain until EAGAIN so level-triggered epoll stays quiet
      }
      if (n == -1) {
        break;  // no more buffered bytes
      }
      (*dead)[i] = 1;  // orderly EOF or hard error: process what we have
      break;
    }
  }
}

bool Server::Impl::DecodeBurst(IoThread& t, const std::shared_ptr<Conn>& conn) {
  // Responses the reactor can produce itself (PONG, STATS_TEXT, trivial
  // empty-request replies) accumulate here and go out as one queued burst.
  std::string inline_out;
  uint64_t inline_frames = 0;
  std::vector<std::vector<WorkItem>> per_shard(queues.size());
  bool ok = true;

  for (;;) {
    FrameView frame;
    size_t consumed = 0;
    std::string error;
    const FrameStatus fs =
        ExtractFrame(std::string_view(conn->in).substr(conn->off), &frame, &consumed, &error);
    if (fs == FrameStatus::kNeedMore) {
      break;
    }
    if (fs == FrameStatus::kError) {
      AppendErrorResponse(&inline_out, 0, error);  // id 0: connection-fatal
      ++inline_frames;
      ok = false;
      break;
    }
    Request req;
    const Status ps = ParseRequest(frame, &req);
    if (!ps.ok()) {
      AppendErrorResponse(&inline_out, 0, ps.ToString());
      ++inline_frames;
      ok = false;
      break;
    }
    conn->off += consumed;
    t.ops.fetch_add(1, std::memory_order_relaxed);
    switch (req.type) {
      case MsgType::kPing:
        AppendPongResponse(&inline_out, req.id);
        ++inline_frames;
        break;
      case MsgType::kStats:
        AppendStatsTextResponse(&inline_out, req.id, StatsText());
        ++inline_frames;
        break;
      case MsgType::kGet:
      case MsgType::kPut:
      case MsgType::kMerge:
      case MsgType::kDelete: {
        WorkItem item;
        item.type = req.type;
        item.id = req.id;
        item.key = std::move(req.key);
        item.value = std::move(req.value);
        const int shard = shards->Route(item.key);
        per_shard[static_cast<size_t>(shard)].push_back(std::move(item));
        break;
      }
      case MsgType::kMultiGet: {
        if (req.keys.empty()) {
          AppendMultiResponse(&inline_out, req.id, {}, {});
          ++inline_frames;
          break;
        }
        auto join = std::make_shared<MultiJoin>();
        join->conn = conn;
        join->id = req.id;
        std::unordered_map<int, size_t> slice;  // shard -> index in per-shard items
        {
          MutexLock lock(&join->mu);
          join->statuses.assign(req.keys.size(), Status::NotFound());
          join->values.assign(req.keys.size(), std::string());
          for (size_t i = 0; i < req.keys.size(); ++i) {
            const int shard = shards->Route(req.keys[i]);
            auto [it, inserted] = slice.emplace(shard, 0);
            if (inserted) {
              WorkItem item;
              item.type = MsgType::kMultiGet;
              item.id = req.id;
              item.mjoin = join;
              per_shard[static_cast<size_t>(shard)].push_back(std::move(item));
              it->second = per_shard[static_cast<size_t>(shard)].size() - 1;
            }
            WorkItem& part = per_shard[static_cast<size_t>(shard)][it->second];
            part.keys.push_back(std::move(req.keys[i]));
            part.positions.push_back(i);
          }
          join->remaining = slice.size();
        }
        break;
      }
      case MsgType::kWriteBatch: {
        if (req.batch.empty()) {
          AppendOkResponse(&inline_out, req.id);
          ++inline_frames;
          break;
        }
        auto join = std::make_shared<BatchJoin>();
        join->conn = conn;
        join->id = req.id;
        std::unordered_map<int, size_t> slice;
        size_t parts = 0;
        for (size_t i = 0; i < req.batch.size(); ++i) {
          const WriteBatch::Entry& e = req.batch.entry(i);
          const int shard = shards->Route(e.key);
          auto [it, inserted] = slice.emplace(shard, 0);
          if (inserted) {
            WorkItem item;
            item.type = MsgType::kWriteBatch;
            item.id = req.id;
            item.bjoin = join;
            per_shard[static_cast<size_t>(shard)].push_back(std::move(item));
            it->second = per_shard[static_cast<size_t>(shard)].size() - 1;
            ++parts;
          }
          WorkItem& part = per_shard[static_cast<size_t>(shard)][it->second];
          switch (e.op) {
            case WriteBatch::Op::kPut:
              part.batch.Put(e.key, e.value);
              break;
            case WriteBatch::Op::kMerge:
              part.batch.Merge(e.key, e.value);
              break;
            case WriteBatch::Op::kDelete:
              part.batch.Delete(e.key);
              break;
          }
        }
        {
          MutexLock lock(&join->mu);
          join->remaining = parts;
        }
        break;
      }
      default:
        AppendErrorResponse(&inline_out, 0, "unhandled request type");
        ++inline_frames;
        ok = false;
        break;
    }
    if (!ok) {
      break;
    }
  }

  // Reclaim consumed bytes once they dominate the buffer.
  if (conn->off > 4096 && conn->off * 2 > conn->in.size()) {
    conn->in.erase(0, conn->off);
    conn->off = 0;
  }
  conn->Send(inline_out, inline_frames, t.uring.get(), /*may_block=*/false,
             options.conn_outq_limit, &net);
  for (size_t shard = 0; shard < per_shard.size(); ++shard) {
    if (!per_shard[shard].empty()) {
      ShardTask task;
      task.conn = conn;
      task.items = std::move(per_shard[shard]);
      Dispatch(static_cast<int>(shard), std::move(task));
    }
  }
  return ok;
}

void Server::Impl::Dispatch(int shard, ShardTask task) {
  ShardQueue& q = *queues[static_cast<size_t>(shard)];
  MutexLock lock(&q.mu);
  // Blocking here IS the backpressure: this reactor stops reading every
  // connection it owns until the stalled shard drains, and TCP pushes the
  // wait back to the clients.
  while (q.tasks.size() >= options.shard_queue_limit && !q.stop) {
    // gadget:blocking-ok: deliberate — a full shard queue must stall this
    // reactor (see the backpressure comment above).
    q.not_full.Wait();
  }
  if (q.stop) {
    return;  // shutting down; the connection is about to drop anyway
  }
  q.tasks.push_back(std::move(task));
  q.not_empty.Signal();
}

void Server::Impl::WorkerLoop(int shard) {
  ShardQueue& q = *queues[static_cast<size_t>(shard)];
  for (;;) {
    ShardTask task;
    {
      MutexLock lock(&q.mu);
      while (q.tasks.empty() && !q.stop) {
        q.not_empty.Wait();
      }
      if (q.tasks.empty()) {
        return;  // stopped and drained
      }
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
      q.not_full.Signal();
    }
    if (shard == options.test_delay_shard && options.test_delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(options.test_delay_ms));
    }
    ExecuteTask(shard, task);
  }
}

void Server::Impl::ExecuteTask(int shard, ShardTask& task) {
  KVStore* store = shards->shard(shard);
  std::string out;  // responses for this burst, queued once at the end
  uint64_t out_frames = 0;

  // Coalescing state: consecutive simple writes build one WriteBatch,
  // consecutive GETs build one MultiGet. The conflict rules below flush one
  // side before the other touches the same key, which keeps the invariant
  // wkeys ∩ rkeys = ∅ — so the final flush order cannot change any result.
  WriteBatch wb;
  std::vector<uint32_t> wids;
  std::unordered_set<std::string> wkeys;
  std::vector<std::string> gkeys;
  std::vector<uint32_t> gids;
  std::unordered_set<std::string> rkeys;

  auto flush_writes = [&]() {
    if (wids.empty()) {
      return;
    }
    const Status s = store->Write(wb);
    for (uint32_t id : wids) {
      if (s.ok()) {
        AppendOkResponse(&out, id);
      } else {
        AppendErrorResponse(&out, id, s.ToString());
      }
    }
    out_frames += wids.size();
    wb.Clear();
    wids.clear();
    wkeys.clear();
  };
  auto flush_reads = [&]() {
    if (gids.empty()) {
      return;
    }
    std::vector<std::string> values;
    std::vector<Status> statuses;
    // Per-key statuses carry the outcome; the aggregate return repeats the
    // first non-NotFound error. status intentionally ignored: per-key below.
    (void)store->MultiGet(gkeys, &values, &statuses);
    for (size_t i = 0; i < gids.size(); ++i) {
      if (statuses[i].ok()) {
        AppendValueResponse(&out, gids[i], values[i]);
      } else if (statuses[i].IsNotFound()) {
        AppendNotFoundResponse(&out, gids[i]);
      } else {
        AppendErrorResponse(&out, gids[i], statuses[i].ToString());
      }
    }
    out_frames += gids.size();
    gkeys.clear();
    gids.clear();
    rkeys.clear();
  };

  for (WorkItem& item : task.items) {
    switch (item.type) {
      case MsgType::kPut:
      case MsgType::kMerge:
      case MsgType::kDelete:
        if (rkeys.count(item.key) != 0) {
          flush_reads();  // the pending read must see the pre-write value
        }
        if (item.type == MsgType::kPut) {
          wb.Put(item.key, item.value);
        } else if (item.type == MsgType::kMerge) {
          wb.Merge(item.key, item.value);
        } else {
          wb.Delete(item.key);
        }
        wkeys.insert(std::move(item.key));
        wids.push_back(item.id);
        break;
      case MsgType::kGet:
        if (wkeys.count(item.key) != 0) {
          flush_writes();  // read-your-writes: the GET must see the pending write
        }
        rkeys.insert(item.key);
        gkeys.push_back(std::move(item.key));
        gids.push_back(item.id);
        break;
      case MsgType::kMultiGet: {
        for (const std::string& k : item.keys) {
          if (wkeys.count(k) != 0) {
            flush_writes();
            break;
          }
        }
        std::vector<std::string> values;
        std::vector<Status> statuses;
        // status intentionally ignored: per-key statuses are authoritative.
        (void)store->MultiGet(item.keys, &values, &statuses);
        bool done = false;
        std::string join_out;
        {
          MutexLock lock(&item.mjoin->mu);
          for (size_t i = 0; i < item.positions.size(); ++i) {
            item.mjoin->statuses[item.positions[i]] = statuses[i];
            item.mjoin->values[item.positions[i]] = std::move(values[i]);
          }
          done = (--item.mjoin->remaining == 0);
          if (done) {
            AppendMultiResponse(&join_out, item.mjoin->id, item.mjoin->statuses,
                                item.mjoin->values);
          }
        }
        if (done) {
          item.mjoin->conn->Send(join_out, 1, nullptr, /*may_block=*/true,
                                 options.conn_outq_limit, &net);
        }
        break;
      }
      case MsgType::kWriteBatch: {
        bool flushed_w = false;
        for (size_t i = 0; i < item.batch.size(); ++i) {
          const std::string& k = item.batch.entry(i).key;
          if (!flushed_w && wkeys.count(k) != 0) {
            flush_writes();  // earlier pending writes apply first
            flushed_w = true;
          }
          if (rkeys.count(k) != 0) {
            flush_reads();  // earlier pending reads see the pre-batch value
          }
        }
        const Status s = store->Write(item.batch);
        bool done = false;
        std::string join_out;
        {
          MutexLock lock(&item.bjoin->mu);
          if (!s.ok() && item.bjoin->error.ok()) {
            item.bjoin->error = s;
          }
          done = (--item.bjoin->remaining == 0);
          if (done) {
            if (item.bjoin->error.ok()) {
              AppendOkResponse(&join_out, item.bjoin->id);
            } else {
              AppendErrorResponse(&join_out, item.bjoin->id, item.bjoin->error.ToString());
            }
          }
        }
        if (done) {
          item.bjoin->conn->Send(join_out, 1, nullptr, /*may_block=*/true,
                                 options.conn_outq_limit, &net);
        }
        break;
      }
      default:
        AppendErrorResponse(&out, item.id, "unroutable request type");
        ++out_frames;
        break;
    }
  }
  flush_writes();
  flush_reads();
  task.conn->Send(out, out_frames, nullptr, /*may_block=*/true,
                  options.conn_outq_limit, &net);
}

NetStats Server::Impl::SnapshotNet() const {
  NetStats s;
  s.bytes_in = net.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = net.bytes_out.load(std::memory_order_relaxed);
  s.writev_calls = net.writev_calls.load(std::memory_order_relaxed);
  s.frames_per_writev_max = net.frames_per_writev_max.load(std::memory_order_relaxed);
  s.output_queue_stall_micros = net.outq_stall_micros.load(std::memory_order_relaxed);
  s.output_queue_bytes_max = net.outq_bytes_max.load(std::memory_order_relaxed);
  s.conns_accepted = net.accepted.load(std::memory_order_relaxed);
  s.thread_ops.reserve(io.size());
  for (const auto& t : io) {
    s.thread_ops.push_back(t->ops.load(std::memory_order_relaxed));
    if (t->uring != nullptr) {
      s.io_uring_active = true;
      s.uring_enters += t->uring->enters();
      s.uring_sqes += t->uring->ops_submitted();
    }
  }
  return s;
}

JsonValue Server::Impl::NetJson() const {
  const NetStats s = SnapshotNet();
  JsonValue net_doc = JsonValue::MakeObject();
  net_doc.Set("io_threads", static_cast<uint64_t>(io.size()));
  net_doc.Set("io_uring_requested", options.use_io_uring);
  net_doc.Set("io_uring_active", s.io_uring_active);
  net_doc.Set("bytes_in", s.bytes_in);
  net_doc.Set("bytes_out", s.bytes_out);
  net_doc.Set("writev_calls", s.writev_calls);
  net_doc.Set("frames_per_writev_max", s.frames_per_writev_max);
  net_doc.Set("output_queue_stall_micros", s.output_queue_stall_micros);
  net_doc.Set("output_queue_bytes_max", s.output_queue_bytes_max);
  net_doc.Set("conns_accepted", s.conns_accepted);
  net_doc.Set("uring_enters", s.uring_enters);
  net_doc.Set("uring_sqes", s.uring_sqes);
  JsonValue thread_ops = JsonValue::MakeArray();
  for (uint64_t v : s.thread_ops) {
    thread_ops.Append(v);
  }
  net_doc.Set("thread_ops", std::move(thread_ops));
  return net_doc;
}

std::string Server::Impl::StatsText() const {
  JsonValue doc = shards->StatsDoc();
  doc.Set("net", NetJson());
  return doc.Write();
}

StatusOr<std::unique_ptr<Server>> Server::Start(const ServerOptions& options) {
  auto shards = ShardSet::Open(options.store, options.shards);
  if (!shards.ok()) {
    return shards.status();
  }
  StatusOr<int> listen = net::TcpListen(options.port);
  if (!listen.ok()) {
    // status intentionally ignored: the open itself already failed.
    (void)(*shards)->Close();
    return listen.status();
  }
  auto impl = std::make_unique<Server::Impl>();
  impl->options = options;
  impl->listen_fd = *listen;
  const StatusOr<uint16_t> port = net::TcpLocalPort(impl->listen_fd);
  if (!port.ok()) {
    // status intentionally ignored: the open itself already failed.
    (void)(*shards)->Close();
    return port.status();
  }
  GADGET_RETURN_IF_ERROR(net::SetNonBlocking(impl->listen_fd));

  int nio = options.io_threads;
  if (nio <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    nio = static_cast<int>(std::min<unsigned>(4, hw == 0 ? 1 : hw));
  }
  impl->io.reserve(static_cast<size_t>(nio));
  for (int i = 0; i < nio; ++i) {
    auto t = std::make_unique<IoThread>();
    t->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    t->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (t->epoll_fd < 0 || t->wake_fd < 0) {
      // status intentionally ignored: the open itself already failed.
      (void)(*shards)->Close();
      return Status::IoError("epoll/eventfd setup failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = t->wake_fd;
    if (::epoll_ctl(t->epoll_fd, EPOLL_CTL_ADD, t->wake_fd, &ev) < 0) {
      // status intentionally ignored: the open itself already failed.
      (void)(*shards)->Close();
      return Status::IoError("epoll_ctl(wake)");
    }
    if (i == 0) {
      ev.data.fd = impl->listen_fd;
      if (::epoll_ctl(t->epoll_fd, EPOLL_CTL_ADD, impl->listen_fd, &ev) < 0) {
        // status intentionally ignored: the open itself already failed.
        (void)(*shards)->Close();
        return Status::IoError("epoll_ctl(listen)");
      }
    }
    if (options.use_io_uring) {
      auto ring = std::make_unique<net::UringSocket>();
      if (ring->available()) {
        t->uring = std::move(ring);
      }
      // else: the probe said no (old kernel, seccomp) — epoll silently.
    }
    impl->io.push_back(std::move(t));
  }

  std::unique_ptr<Server> server(new Server());
  server->shards_ = std::move(*shards);
  server->port_ = *port;
  impl->shards = server->shards_.get();
  impl->queues.reserve(static_cast<size_t>(options.shards));
  for (int i = 0; i < options.shards; ++i) {
    impl->queues.push_back(std::make_unique<ShardQueue>());
  }
  server->impl_ = std::move(impl);
  Server::Impl* raw = server->impl_.get();
  server->io_threads_.reserve(static_cast<size_t>(nio));
  for (int i = 0; i < nio; ++i) {
    server->io_threads_.emplace_back([raw, i] { raw->IoLoop(static_cast<size_t>(i)); });
  }
  server->workers_.reserve(static_cast<size_t>(options.shards));
  for (int i = 0; i < options.shards; ++i) {
    server->workers_.emplace_back([raw, i] { raw->WorkerLoop(i); });
  }
  bool uring_live = false;
  for (const auto& t : raw->io) {
    uring_live = uring_live || t->uring != nullptr;
  }
  GADGET_LOG(Info) << "gadget serve: " << options.shards << " shard(s) of "
                   << options.store.engine << " on 127.0.0.1:" << server->port_ << ", " << nio
                   << " IO thread(s), "
                   << (uring_live ? "io_uring" : (options.use_io_uring ? "epoll (io_uring unavailable)" : "epoll"));
  return server;
}

int Server::io_threads() const { return static_cast<int>(impl_->io.size()); }

NetStats Server::net_stats() const { return impl_->SnapshotNet(); }

void Server::Stop() {
  if (stopped_) {
    return;
  }
  stopped_ = true;
  impl_->stopping.store(true, std::memory_order_relaxed);
  // Unwedge reactors first: one blocked in Dispatch (backpressure) cannot see
  // `stopping` until its queue wait ends, so release the queues before the
  // joins. Workers still drain everything already queued before exiting.
  for (auto& q : impl_->queues) {
    MutexLock lock(&q->mu);
    q->stop = true;
    q->not_empty.SignalAll();
    q->not_full.SignalAll();
  }
  for (auto& t : impl_->io) {
    const uint64_t one = 1;
    const ssize_t ignored = ::write(t->wake_fd, &one, sizeof(one));
    (void)ignored;
  }
  for (std::thread& th : io_threads_) {
    th.join();
  }
  for (std::thread& w : workers_) {
    w.join();
  }
  const Status close_status = shards_->Close();
  if (!close_status.ok()) {
    GADGET_LOG(Warning) << "shard close: " << close_status.ToString();
  }
}

Server::~Server() {
  if (impl_ != nullptr) {
    Stop();
  }
}

}  // namespace wire
}  // namespace gadget
