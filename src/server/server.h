// The store service (DESIGN.md §6): N IO (reactor) threads feeding per-shard
// worker threads over bounded queues.
//
// Threading model:
//   * `io_threads` REACTOR threads, each owning a private epoll set plus the
//     receive buffers of the connections assigned to it. Accepted connections
//     are sharded round-robin across reactors (thread 0 also owns the listen
//     socket). Each reactor decodes frames, answers PING/STATS inline, and
//     groups a pipelined read-burst into at most one task per shard before
//     dispatching. With `use_io_uring`, a reactor drains all of a wake's
//     readable sockets through one io_uring submission wave instead of one
//     recv() per socket (silent epoll fallback when the kernel lacks it).
//   * ONE worker thread per shard drains that shard's task queue. A task is
//     a burst of requests from one connection; the worker coalesces it into
//     stripe-friendly WriteBatch / MultiGet calls (same read-your-writes
//     conflict rules as the evaluator's ReplayBatched) so a deep client
//     pipeline becomes one store crossing per shard per burst.
//   * Responses never block the reactors: each connection has a bounded
//     OUTPUT QUEUE of response bursts, drained by non-blocking writev with
//     EPOLLOUT re-arming on partial progress. Pipelined bursts queued behind
//     a slow socket coalesce into a single writev (iovec gather list), and
//     the per-connection mutex keeps frames whole and in enqueue order even
//     though bursts from different shards may interleave — which is why the
//     protocol matches by id, not order.
//
// Backpressure (two stages, no drops):
//   1. A slow READER fills its connection's output queue; workers sending to
//      it block (accounted as output_queue_stall_micros) until the drain
//      makes room — that parks the shard, so
//   2. the shard's bounded task queue fills and the reactor BLOCKS in
//      dispatch — it stops reading, socket buffers fill, and TCP flow
//      control pushes the stall back into the clients. The service degrades
//      to the slowest consumer's pace.
//
// Fan-out: a MULTI_GET or WRITE_BATCH whose keys span shards is split into
// per-shard sub-requests joined by a completion count; the last shard to
// finish sends the one response. Cross-shard WRITE_BATCH is NOT atomic
// across shards (each shard applies its slice in its own epoch) — same
// contract a client gets by splitting the batch itself.
#ifndef GADGET_SERVER_SERVER_H_
#define GADGET_SERVER_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/server/shard_set.h"
#include "src/stores/kvstore.h"

namespace gadget {
namespace wire {

struct ServerOptions {
  uint16_t port = 0;  // 0 = kernel-assigned; read back with Server::port()
  int shards = 4;
  StoreOptions store;  // per-shard template; see ShardSet::Open
  // Reactor count. 0 = min(4, hardware threads). Connections are assigned
  // round-robin at accept and never migrate.
  int io_threads = 0;
  // Submit socket receives/sends on the reactors through io_uring when the
  // kernel supports it (raw syscalls, probed at startup). A request, not a
  // requirement: unsupported kernels fall back to plain epoll silently.
  bool use_io_uring = false;
  // Max queued tasks per shard before dispatch blocks (the backpressure
  // knob; a task is one connection's burst for one shard).
  size_t shard_queue_limit = 128;
  // Max bytes of queued responses per connection before workers sending to
  // that connection block (the slow-reader backpressure knob). Reactor-
  // inline responses (PONG/STATS) may overshoot briefly — reactors never
  // block on a send.
  size_t conn_outq_limit = 4 << 20;
  // Test hook: shrink each accepted socket's kernel send buffer so a stalled
  // reader makes writev hit EAGAIN with small payloads. 0 = kernel default.
  int so_sndbuf = 0;
  // Test hook: delay every task on this shard by test_delay_ms before
  // execution, making out-of-order completion deterministic in tests.
  int test_delay_shard = -1;
  int test_delay_ms = 0;
};

// Snapshot of the network layer's counters; surfaced in STATS responses (the
// "net" object) and threaded into loadgen reports as `server.net`.
struct NetStats {
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t writev_calls = 0;
  // Most response frames ever submitted in one writev gather list — >1 means
  // pipelined bursts actually coalesced.
  uint64_t frames_per_writev_max = 0;
  uint64_t output_queue_stall_micros = 0;
  uint64_t output_queue_bytes_max = 0;
  uint64_t conns_accepted = 0;
  bool io_uring_active = false;  // probe succeeded on at least one reactor
  uint64_t uring_enters = 0;     // io_uring_enter syscalls across reactors
  uint64_t uring_sqes = 0;       // socket ops submitted through rings
  std::vector<uint64_t> thread_ops;  // frames decoded, per IO thread
};

class Server {
 public:
  // Opens the shards, binds the port, and starts the IO + worker threads.
  static StatusOr<std::unique_ptr<Server>> Start(const ServerOptions& options);

  ~Server();  // implies Stop()
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  uint16_t port() const { return port_; }
  ShardSet* shard_set() { return shards_.get(); }

  // Resolved reactor count (options.io_threads after the 0 = auto default).
  int io_threads() const;
  // Point-in-time snapshot of the net-layer counters.
  NetStats net_stats() const;

  // Stops accepting, drains in-flight tasks, joins all threads, and closes
  // every shard. Idempotent.
  void Stop();

 private:
  struct Impl;
  Server() = default;

  uint16_t port_ = 0;
  std::unique_ptr<ShardSet> shards_;
  std::unique_ptr<Impl> impl_;
  std::vector<std::thread> io_threads_;
  std::vector<std::thread> workers_;
  bool stopped_ = false;
};

}  // namespace wire
}  // namespace gadget

#endif  // GADGET_SERVER_SERVER_H_
