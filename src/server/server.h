// The store service (DESIGN.md §6): an epoll IO thread feeding per-shard
// worker threads over bounded queues.
//
// Threading model:
//   * ONE IO thread owns the listen socket, every connection's receive
//     buffer, and the epoll set. It decodes frames, answers PING/STATS
//     inline, and groups a pipelined read-burst into at most one task per
//     shard before dispatching.
//   * ONE worker thread per shard drains that shard's task queue. A task is
//     a burst of requests from one connection; the worker coalesces it into
//     stripe-friendly WriteBatch / MultiGet calls (same read-your-writes
//     conflict rules as the evaluator's ReplayBatched) so a deep client
//     pipeline becomes one store crossing per shard per burst.
//   * Responses are written by workers under a per-connection send mutex;
//     they may interleave across shards, which is why the protocol matches
//     by id, not order.
//
// Backpressure: the shard queues are bounded. When a shard stalls (its
// engine is in an L0 stall, say), its queue fills and the IO thread BLOCKS
// in dispatch — it stops reading every connection, socket buffers fill, and
// TCP flow control pushes the stall back into the clients. No frames are
// dropped; the service degrades to the slowest shard's pace.
//
// Fan-out: a MULTI_GET or WRITE_BATCH whose keys span shards is split into
// per-shard sub-requests joined by a completion count; the last shard to
// finish sends the one response. Cross-shard WRITE_BATCH is NOT atomic
// across shards (each shard applies its slice in its own epoch) — same
// contract a client gets by splitting the batch itself.
#ifndef GADGET_SERVER_SERVER_H_
#define GADGET_SERVER_SERVER_H_

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/server/shard_set.h"
#include "src/stores/kvstore.h"

namespace gadget {
namespace wire {

struct ServerOptions {
  uint16_t port = 0;  // 0 = kernel-assigned; read back with Server::port()
  int shards = 4;
  StoreOptions store;  // per-shard template; see ShardSet::Open
  // Max queued tasks per shard before dispatch blocks (the backpressure
  // knob; a task is one connection's burst for one shard).
  size_t shard_queue_limit = 128;
  // Test hook: delay every task on this shard by test_delay_ms before
  // execution, making out-of-order completion deterministic in tests.
  int test_delay_shard = -1;
  int test_delay_ms = 0;
};

class Server {
 public:
  // Opens the shards, binds the port, and starts the IO + worker threads.
  static StatusOr<std::unique_ptr<Server>> Start(const ServerOptions& options);

  ~Server();  // implies Stop()
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  uint16_t port() const { return port_; }
  ShardSet* shard_set() { return shards_.get(); }

  // Stops accepting, drains in-flight tasks, joins all threads, and closes
  // every shard. Idempotent.
  void Stop();

 private:
  struct Impl;
  Server() = default;

  uint16_t port_ = 0;
  std::unique_ptr<ShardSet> shards_;
  std::unique_ptr<Impl> impl_;
  std::thread io_thread_;
  std::vector<std::thread> workers_;
  bool stopped_ = false;
};

}  // namespace wire
}  // namespace gadget

#endif  // GADGET_SERVER_SERVER_H_
