#include "src/server/client.h"

namespace gadget {
namespace wire {

StatusOr<std::unique_ptr<Client>> Client::Connect(uint16_t port, int pool_size,
                                                  int connect_budget_ms) {
  if (pool_size < 1) {
    return Status::InvalidArgument("client pool_size must be >= 1");
  }
  std::unique_ptr<Client> client(new Client());
  client->pool_.reserve(static_cast<size_t>(pool_size));
  for (int i = 0; i < pool_size; ++i) {
    // Only the first connection burns the boot-race budget: once it is in,
    // the server is listening and the rest either connect or really fail.
    StatusOr<int> fd = (i == 0 && connect_budget_ms > 0)
                           ? net::TcpConnectRetry(port, connect_budget_ms)
                           : net::TcpConnect(port);
    if (!fd.ok()) {
      return fd.status();
    }
    PooledConn pc;
    pc.conn = std::make_unique<net::FramedConn>(*fd);
    client->pool_.push_back(std::move(pc));
  }
  return client;
}

Client::Lease Client::AcquireLease() {
  MutexLock lock(&mu_);
  for (;;) {
    for (size_t i = 0; i < pool_.size(); ++i) {
      const size_t idx = (next_ + i) % pool_.size();
      if (!pool_[idx].leased) {
        pool_[idx].leased = true;
        next_ = (idx + 1) % pool_.size();
        return Lease(this, idx);
      }
    }
    available_.Wait();
  }
}

Client::Lease::~Lease() {
  if (client_ == nullptr) {
    return;  // moved-from
  }
  MutexLock lock(&client_->mu_);
  client_->pool_[index_].leased = false;
  client_->available_.Signal();
}

net::FramedConn* Client::Lease::conn() { return client_->pool_[index_].conn.get(); }

uint32_t Client::Lease::NextId() {
  // The pool entry is exclusively leased: no lock needed for its id counter.
  uint32_t& next = client_->pool_[index_].next_id;
  if (next == 0) {
    next = 1;  // skip the reserved connection-fatal id on wrap
  }
  return next++;
}

Status Client::RoundTrip(Lease& lease, std::string_view frame, uint32_t id, Response* out) {
  GADGET_RETURN_IF_ERROR(lease.conn()->Send(frame));
  GADGET_RETURN_IF_ERROR(lease.conn()->RecvResponse(out));
  if (out->type == MsgType::kError && out->id == 0) {
    // Connection-fatal protocol error: the server is about to close this
    // connection, so the pool entry is dead for further use too.
    return Status::IoError("server closed connection: " + out->value);
  }
  if (out->id != id) {
    return Status::IoError("response id mismatch (sent " + std::to_string(id) + ", got " +
                           std::to_string(out->id) + ")");
  }
  if (out->type == MsgType::kError) {
    return Status::IoError("server error: " + out->value);
  }
  return Status::Ok();
}

Status Client::Put(std::string_view key, std::string_view value) {
  Lease lease = AcquireLease();
  const uint32_t id = lease.NextId();
  std::string frame;
  AppendPutRequest(&frame, id, key, value);
  Response resp;
  GADGET_RETURN_IF_ERROR(RoundTrip(lease, frame, id, &resp));
  return resp.type == MsgType::kOk
             ? Status::Ok()
             : Status::IoError(std::string("unexpected response ") + MsgTypeName(resp.type));
}

Status Client::Get(std::string_view key, std::string* value) {
  Lease lease = AcquireLease();
  const uint32_t id = lease.NextId();
  std::string frame;
  AppendGetRequest(&frame, id, key);
  Response resp;
  GADGET_RETURN_IF_ERROR(RoundTrip(lease, frame, id, &resp));
  if (resp.type == MsgType::kNotFound) {
    return Status::NotFound();
  }
  if (resp.type != MsgType::kValue) {
    return Status::IoError(std::string("unexpected response ") + MsgTypeName(resp.type));
  }
  *value = std::move(resp.value);
  return Status::Ok();
}

Status Client::Merge(std::string_view key, std::string_view operand) {
  Lease lease = AcquireLease();
  const uint32_t id = lease.NextId();
  std::string frame;
  AppendMergeRequest(&frame, id, key, operand);
  Response resp;
  GADGET_RETURN_IF_ERROR(RoundTrip(lease, frame, id, &resp));
  return resp.type == MsgType::kOk
             ? Status::Ok()
             : Status::IoError(std::string("unexpected response ") + MsgTypeName(resp.type));
}

Status Client::Delete(std::string_view key) {
  Lease lease = AcquireLease();
  const uint32_t id = lease.NextId();
  std::string frame;
  AppendDeleteRequest(&frame, id, key);
  Response resp;
  GADGET_RETURN_IF_ERROR(RoundTrip(lease, frame, id, &resp));
  return resp.type == MsgType::kOk
             ? Status::Ok()
             : Status::IoError(std::string("unexpected response ") + MsgTypeName(resp.type));
}

Status Client::MultiGet(const std::vector<std::string>& keys, std::vector<std::string>* values,
                        std::vector<Status>* statuses) {
  values->assign(keys.size(), std::string());
  statuses->assign(keys.size(), Status::NotFound());
  if (keys.empty()) {
    return Status::Ok();
  }
  Lease lease = AcquireLease();
  const uint32_t id = lease.NextId();
  std::string frame;
  AppendMultiGetRequest(&frame, id, keys);
  Response resp;
  GADGET_RETURN_IF_ERROR(RoundTrip(lease, frame, id, &resp));
  if (resp.type != MsgType::kMulti) {
    return Status::IoError(std::string("unexpected response ") + MsgTypeName(resp.type));
  }
  if (resp.statuses.size() != keys.size()) {
    return Status::IoError("multi response count mismatch");
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    if (resp.statuses[i] == 0) {
      (*statuses)[i] = Status::Ok();
      (*values)[i] = std::move(resp.values[i]);
    }
  }
  return Status::Ok();
}

Status Client::Write(const WriteBatch& batch) {
  if (batch.empty()) {
    return Status::Ok();
  }
  Lease lease = AcquireLease();
  const uint32_t id = lease.NextId();
  std::string frame;
  AppendWriteBatchRequest(&frame, id, batch);
  Response resp;
  GADGET_RETURN_IF_ERROR(RoundTrip(lease, frame, id, &resp));
  return resp.type == MsgType::kOk
             ? Status::Ok()
             : Status::IoError(std::string("unexpected response ") + MsgTypeName(resp.type));
}

Status Client::Ping() {
  Lease lease = AcquireLease();
  const uint32_t id = lease.NextId();
  std::string frame;
  AppendPingRequest(&frame, id);
  Response resp;
  GADGET_RETURN_IF_ERROR(RoundTrip(lease, frame, id, &resp));
  return resp.type == MsgType::kPong
             ? Status::Ok()
             : Status::IoError(std::string("unexpected response ") + MsgTypeName(resp.type));
}

StatusOr<std::string> Client::StatsJson() {
  Lease lease = AcquireLease();
  const uint32_t id = lease.NextId();
  std::string frame;
  AppendStatsRequest(&frame, id);
  Response resp;
  GADGET_RETURN_IF_ERROR(RoundTrip(lease, frame, id, &resp));
  if (resp.type != MsgType::kStatsText) {
    return Status::IoError(std::string("unexpected response ") + MsgTypeName(resp.type));
  }
  return std::move(resp.value);
}

}  // namespace wire
}  // namespace gadget
