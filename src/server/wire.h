// The store service's binary wire protocol (DESIGN.md §6).
//
// Every message is one length-prefixed frame:
//
//   [u32 len LE][u8 type][u32 id LE][payload: len-5 bytes]
//
// `len` counts everything after itself (type + id + payload), so a frame
// occupies 4 + len bytes on the wire and a decoder can resynchronize only by
// closing the connection — there is no resync marker, which is why a
// malformed frame is a connection-fatal error, never a skip. `id` is a
// client-assigned correlation tag: requests may be pipelined and responses
// may complete out of request order (per-shard batches finish independently),
// so clients match responses to requests by id, never by arrival order.
//
// Request payloads map 1:1 onto the KVStore API so a pipelined burst can ride
// the batched Write/MultiGet path unchanged:
//
//   GET         [lp key]                                -> VALUE | NOT_FOUND
//   PUT         [lp key][lp value]                      -> OK
//   MERGE       [lp key][lp operand]                    -> OK
//   DELETE      [lp key]                                -> OK
//   MULTI_GET   [varint n]{[lp key]}*n                  -> MULTI
//   WRITE_BATCH [varint n]{[u8 op][lp key][lp value]}*n -> OK
//   STATS       (empty)                                 -> STATS_TEXT (JSON)
//   PING        (empty)                                 -> PONG
//
// (`lp` = varint32 length prefix + bytes, src/common/coding.h.) MULTI's
// payload is [varint n]{[u8 status][lp value]}*n with status 0 = found and
// 1 = not-found (value empty). ERROR carries a human-readable message and is
// a per-request failure unless id == 0, which the server uses for
// connection-fatal protocol errors just before closing.
//
// All framing limits are validated on decode: a frame longer than
// kMaxFrameBytes, a runt frame, an unknown type byte, or a payload that does
// not parse exactly to its end is rejected with a clean error — torn input
// (a prefix of a valid frame) is reported as "need more bytes", never as an
// error, so a streaming decoder can accumulate.
#ifndef GADGET_SERVER_WIRE_H_
#define GADGET_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/stores/kvstore.h"

namespace gadget {
namespace wire {

// One frame must hold the largest WRITE_BATCH burst a client can send plus
// slack; anything bigger is a protocol violation, not a big request.
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;
// Frame header past the length word: 1 type byte + 4 id bytes.
inline constexpr uint32_t kFrameOverhead = 5;

enum class MsgType : uint8_t {
  // Requests.
  kGet = 0x01,
  kPut = 0x02,
  kMerge = 0x03,
  kDelete = 0x04,
  kMultiGet = 0x05,
  kWriteBatch = 0x06,
  kStats = 0x07,
  kPing = 0x08,
  // Responses (high bit set).
  kOk = 0x81,
  kValue = 0x82,
  kNotFound = 0x83,
  kMulti = 0x84,
  kError = 0x85,
  kStatsText = 0x86,
  kPong = 0x87,
};

bool IsRequestType(uint8_t type);
bool IsResponseType(uint8_t type);
const char* MsgTypeName(MsgType t);

// A decoded frame header whose payload still points into the receive buffer;
// valid only until the buffer is next mutated, so decode immediately.
struct FrameView {
  MsgType type = MsgType::kPing;
  uint32_t id = 0;
  std::string_view payload;
};

enum class FrameStatus {
  kOk,        // *frame holds the next frame; *consumed bytes were used
  kNeedMore,  // `buf` ends mid-frame (torn input) — read more and retry
  kError,     // malformed framing; *error says why. Close the connection.
};

// Extracts the next frame from `buf`. On kOk, `*consumed` is the number of
// bytes the frame occupied (advance the buffer by that much).
FrameStatus ExtractFrame(std::string_view buf, FrameView* frame, size_t* consumed,
                         std::string* error);

// Appends one complete frame to `*out`.
void AppendFrame(std::string* out, MsgType type, uint32_t id, std::string_view payload);

// --- requests ---------------------------------------------------------------

// A fully decoded (owning) request, ready to execute against a shard.
struct Request {
  MsgType type = MsgType::kPing;
  uint32_t id = 0;
  std::string key;                 // get / put / merge / delete
  std::string value;               // put / merge operand
  std::vector<std::string> keys;   // multi_get
  WriteBatch batch;                // write_batch
};

void AppendGetRequest(std::string* out, uint32_t id, std::string_view key);
void AppendPutRequest(std::string* out, uint32_t id, std::string_view key,
                      std::string_view value);
void AppendMergeRequest(std::string* out, uint32_t id, std::string_view key,
                        std::string_view operand);
void AppendDeleteRequest(std::string* out, uint32_t id, std::string_view key);
void AppendMultiGetRequest(std::string* out, uint32_t id, const std::vector<std::string>& keys);
void AppendWriteBatchRequest(std::string* out, uint32_t id, const WriteBatch& batch);
void AppendStatsRequest(std::string* out, uint32_t id);
void AppendPingRequest(std::string* out, uint32_t id);

// Decodes a request frame's payload. InvalidArgument on a response-type
// frame, trailing garbage, or a truncated field.
Status ParseRequest(const FrameView& frame, Request* out);

// --- responses --------------------------------------------------------------

struct Response {
  MsgType type = MsgType::kOk;
  uint32_t id = 0;
  std::string value;                  // kValue payload / kError message /
                                      // kStatsText JSON
  std::vector<uint8_t> statuses;      // kMulti: 0 = found, 1 = not-found
  std::vector<std::string> values;    // kMulti: per-key values ("" when miss)
};

void AppendOkResponse(std::string* out, uint32_t id);
void AppendValueResponse(std::string* out, uint32_t id, std::string_view value);
void AppendNotFoundResponse(std::string* out, uint32_t id);
void AppendMultiResponse(std::string* out, uint32_t id, const std::vector<Status>& statuses,
                         const std::vector<std::string>& values);
void AppendErrorResponse(std::string* out, uint32_t id, std::string_view message);
void AppendStatsTextResponse(std::string* out, uint32_t id, std::string_view json);
void AppendPongResponse(std::string* out, uint32_t id);

// Decodes a response frame's payload (the client side of ParseRequest).
Status ParseResponse(const FrameView& frame, Response* out);

}  // namespace wire
}  // namespace gadget

#endif  // GADGET_SERVER_WIRE_H_
