// N independent engine shards behind one consistent-hash router, sharing one
// buffer pool (DESIGN.md §6). Each shard is a full KVStore (own WAL, own
// memtables, own SSTables under <dir>/shard-<i>), so shards never contend on
// engine-internal locks — the only shared resource is the process-wide frame
// budget, which is exactly the topology PR 7's shared pool was built for.
#ifndef GADGET_SERVER_SHARD_SET_H_
#define GADGET_SERVER_SHARD_SET_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/server/router.h"
#include "src/stores/kvstore.h"

namespace gadget {
namespace wire {

class ShardSet {
 public:
  // Opens `shards` stores from the `base` options template. base.dir becomes
  // the fleet root (per-shard subdirectories are created under it; required
  // for disk engines). One BufferPool sized by base.buffer_pool is shared by
  // all shards unless base.shared_pool already names one.
  static StatusOr<std::unique_ptr<ShardSet>> Open(const StoreOptions& base, int shards);

  int shards() const { return static_cast<int>(stores_.size()); }
  KVStore* shard(int i) { return stores_[static_cast<size_t>(i)].get(); }
  const ConsistentHashRouter& router() const { return router_; }
  int Route(std::string_view key) const { return router_.Route(key); }

  StoreStats ShardStats(int i) const { return stores_[static_cast<size_t>(i)]->stats(); }

  // Fleet view: every shard's stats summed (gauges take the max — see
  // StoreStats::MergeSum).
  StoreStats MergedStats() const;

  // {"shards": N, "engine": ..., "per_shard": [...], "merged": {...}} as a
  // document, so the server can graft its own sections (the "net" object)
  // before serializing.
  JsonValue StatsDoc() const;

  // StatsDoc() serialized — the STATS response body, also embedded by loadgen
  // into its report.
  std::string StatsJson() const;

  // Closes every shard; first error wins, all shards still get closed.
  Status Close();

 private:
  ShardSet(std::vector<std::unique_ptr<KVStore>> stores, std::shared_ptr<BufferPool> pool,
           int shards)
      : stores_(std::move(stores)), pool_(std::move(pool)), router_(shards) {}

  std::vector<std::unique_ptr<KVStore>> stores_;
  std::shared_ptr<BufferPool> pool_;  // keeps the shared pool alive past Close
  ConsistentHashRouter router_;
};

}  // namespace wire
}  // namespace gadget

#endif  // GADGET_SERVER_SHARD_SET_H_
