#include "src/server/shard_set.h"

#include "src/common/file_util.h"
#include "src/common/json.h"
#include "src/gadget/report.h"

namespace gadget {
namespace wire {

StatusOr<std::unique_ptr<ShardSet>> ShardSet::Open(const StoreOptions& base, int shards) {
  if (shards < 1) {
    return Status::InvalidArgument("shard count must be >= 1");
  }
  // All shards draw frames from ONE pool: that keeps the fleet's memory
  // budget fixed regardless of shard count, and lets a hot shard borrow
  // capacity an idle one is not using.
  std::shared_ptr<BufferPool> pool = base.shared_pool;
  if (pool == nullptr) {
    pool = std::make_shared<BufferPool>(base.buffer_pool);
  }
  std::vector<std::unique_ptr<KVStore>> stores;
  stores.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    StoreOptions opts = base;
    opts.shared_pool = pool;
    if (!base.dir.empty()) {
      opts.dir = base.dir + "/shard-" + std::to_string(i);
      GADGET_RETURN_IF_ERROR(CreateDirIfMissing(base.dir));
    }
    auto store = OpenStore(opts);
    if (!store.ok()) {
      for (auto& s : stores) {
        (void)s->Close();  // status intentionally ignored: already failing open
      }
      return store.status();
    }
    stores.push_back(std::move(*store));
  }
  return std::unique_ptr<ShardSet>(new ShardSet(std::move(stores), std::move(pool), shards));
}

StoreStats ShardSet::MergedStats() const {
  StoreStats merged;
  for (const auto& store : stores_) {
    merged.MergeSum(store->stats());
  }
  return merged;
}

JsonValue ShardSet::StatsDoc() const {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("shards", static_cast<uint64_t>(stores_.size()));
  doc.Set("engine", stores_.empty() ? std::string() : stores_[0]->name());
  JsonValue per_shard = JsonValue::MakeArray();
  StoreStats merged;
  for (const auto& store : stores_) {
    const StoreStats s = store->stats();
    per_shard.Append(StoreStatsToJson(s));
    merged.MergeSum(s);
  }
  doc.Set("per_shard", std::move(per_shard));
  doc.Set("merged", StoreStatsToJson(merged));
  return doc;
}

std::string ShardSet::StatsJson() const { return StatsDoc().Write(); }

Status ShardSet::Close() {
  Status first;
  for (auto& store : stores_) {
    Status s = store->Close();
    if (!s.ok() && first.ok()) {
      first = s;
    }
  }
  return first;
}

}  // namespace wire
}  // namespace gadget
