// Consistent-hash key → shard routing (DESIGN.md §6).
//
// Each shard contributes kVnodesPerShard points on a 64-bit hash ring
// (derived by mixing the shard index with the vnode index, so the ring is a
// pure function of the shard count — every client and the server compute the
// same ring with no coordination). A key routes to the owner of the first
// ring point at or after Hash64(key), wrapping at the top. Growing N shards
// to N+1 therefore moves only ~1/(N+1) of the keyspace, which is what makes
// the router "consistent": loadgen clients and the server can disagree about
// nothing except during an explicit reshard.
#ifndef GADGET_SERVER_ROUTER_H_
#define GADGET_SERVER_ROUTER_H_

#include <algorithm>
#include <cstdint>
#include <string_view>
#include <vector>

#include "src/common/hash.h"

namespace gadget {
namespace wire {

class ConsistentHashRouter {
 public:
  static constexpr int kVnodesPerShard = 128;

  explicit ConsistentHashRouter(int shards) {
    ring_.reserve(static_cast<size_t>(shards) * kVnodesPerShard);
    for (int s = 0; s < shards; ++s) {
      for (int v = 0; v < kVnodesPerShard; ++v) {
        const uint64_t point =
            Mix64((static_cast<uint64_t>(s) << 32) | static_cast<uint64_t>(v) | (1ULL << 63));
        ring_.push_back({point, s});
      }
    }
    std::sort(ring_.begin(), ring_.end());
    shards_ = shards;
  }

  int shards() const { return shards_; }

  int Route(std::string_view key) const { return RouteHash(Hash64(key)); }

  int RouteHash(uint64_t h) const {
    auto it = std::lower_bound(ring_.begin(), ring_.end(), Point{h, -1});
    if (it == ring_.end()) {
      it = ring_.begin();  // wrap past the top of the ring
    }
    return it->shard;
  }

 private:
  struct Point {
    uint64_t hash;
    int shard;
    bool operator<(const Point& o) const {
      return hash != o.hash ? hash < o.hash : shard < o.shard;
    }
  };

  std::vector<Point> ring_;
  int shards_ = 0;
};

}  // namespace wire
}  // namespace gadget

#endif  // GADGET_SERVER_ROUTER_H_
