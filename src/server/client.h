// Connection-pooled client for the store service (DESIGN.md §6).
//
// A Client owns `pool_size` blocking FramedConn connections to one server.
// Two usage modes:
//   * Convenience calls (Get/Put/Merge/Delete/Write/MultiGet/Ping/StatsJson):
//     lease a pooled connection, send one request, block for its response.
//     Thread-safe — concurrent callers spread round-robin over the pool and
//     serialize per connection.
//   * Lease(): exclusive ownership of one pooled connection for pipelined
//     use (loadgen's replay threads). The holder sends bursts of frames and
//     matches responses by id itself; the connection returns to the pool when
//     the lease is destroyed.
//
// Correlation ids are per-connection monotonic counters: responses on one
// connection may complete out of request order (the server's shards finish
// independently), so every receive path matches on id, never on arrival
// order.
#ifndef GADGET_SERVER_CLIENT_H_
#define GADGET_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/server/net/socket.h"
#include "src/server/wire.h"
#include "src/stores/kvstore.h"

namespace gadget {
namespace wire {

class Client {
 public:
  // Connects `pool_size` blocking TCP connections to 127.0.0.1:`port`.
  // connect_budget_ms > 0 retries connection-refused with bounded backoff for
  // about that long (net::TcpConnectRetry) — how loadgen tolerates racing a
  // server that is still booting; 0 fails immediately.
  static StatusOr<std::unique_ptr<Client>> Connect(uint16_t port, int pool_size = 1,
                                                   int connect_budget_ms = 0);

  ~Client() = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // --- one-shot convenience API (thread-safe) -------------------------------

  Status Put(std::string_view key, std::string_view value);
  // NotFound when the key is absent; any other error is the wire/server error.
  Status Get(std::string_view key, std::string* value);
  Status Merge(std::string_view key, std::string_view operand);
  Status Delete(std::string_view key);
  // Mirrors KVStore::MultiGet: per-key Ok/NotFound statuses, first hard error
  // as the aggregate return.
  Status MultiGet(const std::vector<std::string>& keys, std::vector<std::string>* values,
                  std::vector<Status>* statuses);
  Status Write(const WriteBatch& batch);
  Status Ping();
  // The server's per-shard + merged StoreStats document (see
  // ShardSet::StatsJson).
  StatusOr<std::string> StatsJson();

  // --- pipelined API --------------------------------------------------------

  // Exclusive hold of one pooled connection. Movable, not copyable; the
  // connection is released back to the pool on destruction.
  class Lease {
   public:
    Lease(Lease&& o) noexcept : client_(o.client_), index_(o.index_) { o.client_ = nullptr; }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    net::FramedConn* conn();
    // Next correlation id for this connection (monotonic, never 0 — id 0 is
    // reserved for the server's connection-fatal errors).
    uint32_t NextId();

   private:
    friend class Client;
    Lease(Client* client, size_t index) : client_(client), index_(index) {}
    Client* client_;
    size_t index_;
  };

  // Blocks until a pooled connection is free. Every convenience call above
  // also goes through this, so leases and one-shot calls interleave safely.
  Lease AcquireLease();

 private:
  struct PooledConn {
    std::unique_ptr<net::FramedConn> conn;
    uint32_t next_id = 1;
    bool leased = false;
  };

  Client() = default;

  // Sends one request frame on a leased connection and blocks for the
  // response with the matching id (buffering none: the one-shot API has at
  // most one request in flight per connection).
  Status RoundTrip(Lease& lease, std::string_view frame, uint32_t id, Response* out);

  Mutex mu_;
  CondVar available_{&mu_};
  std::vector<PooledConn> pool_ GUARDED_BY(mu_);
  size_t next_ GUARDED_BY(mu_) = 0;  // round-robin start for the free scan
};

}  // namespace wire
}  // namespace gadget

#endif  // GADGET_SERVER_CLIENT_H_
