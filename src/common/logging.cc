#include "src/common/logging.h"

#include <atomic>
#include <cstring>

namespace gadget {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelName(level) << " " << (base ? base + 1 : file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace internal
}  // namespace gadget
