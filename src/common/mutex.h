// Annotated synchronization primitives (DESIGN.md §5f).
//
// Thin wrappers over std::mutex / std::shared_mutex / std::condition_variable
// that carry Clang thread-safety capability attributes, so GUARDED_BY /
// REQUIRES invariants on the stores' state are provable at compile time.
// libstdc++'s standard types are not annotated as capabilities, which is why
// synchronized code in this project uses these types instead. Zero-cost: the
// wrappers add no state beyond the wrapped primitive and every method is a
// one-line inline forward.
#ifndef GADGET_COMMON_MUTEX_H_
#define GADGET_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "src/common/thread_annotations.h"

namespace gadget {

class CondVar;

// Exclusive mutex. Prefer the MutexLock guard; explicit Lock()/Unlock() pairs
// are for the release-reacquire windows the LSM pipeline needs (the analysis
// tracks those precisely, including guarded-field access while released).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  // Tells the analysis the lock is held when it cannot prove it (no runtime
  // check; std::mutex has no owner query).
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// Scoped exclusive lock.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// Reader-writer mutex (MemStore stripes).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// Scoped exclusive lock on a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// Scoped shared (reader) lock on a SharedMutex. The destructor's generic
// RELEASE releases however the scope acquired (here: shared).
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() RELEASE() { mu_->UnlockShared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// Condition variable bound to one Mutex (LevelDB port::CondVar shape).
//
// Wait/WaitFor must be called with the mutex held and return with it held;
// the transient release inside the wait is invisible to the thread-safety
// analysis (deliberately: the net lock state is unchanged, and modelling the
// release would force NO_THREAD_SAFETY_ANALYSIS onto every caller). Guarded
// state read across a wait therefore still requires the usual re-check loop —
// the analysis enforces the hold, the loop handles spurious wakeups.
class CondVar {
 public:
  explicit CondVar(Mutex* mu) : mu_(mu) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's Lock()
  }

  template <typename Rep, typename Period>
  void WaitFor(const std::chrono::duration<Rep, Period>& timeout) {
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    cv_.wait_for(lock, timeout);
    lock.release();
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
  Mutex* const mu_;
};

}  // namespace gadget

#endif  // GADGET_COMMON_MUTEX_H_
