#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace gadget {

LatencyHistogram::LatencyHistogram() {
  // 64 powers of two x kSubBuckets sub-buckets covers the full uint64 range.
  buckets_.assign(64 * kSubBuckets, 0);
}

size_t LatencyHistogram::BucketFor(uint64_t value) const {
  if (value < kSubBuckets) {
    return static_cast<size_t>(value);
  }
  int log = 63 - std::countl_zero(value);
  // Sub-bucket index from the bits just below the leading one.
  int sub_shift = log - 6;  // 2^6 == kSubBuckets
  uint64_t sub = (value >> sub_shift) & (kSubBuckets - 1);
  size_t index = static_cast<size_t>(log - 5) * kSubBuckets + static_cast<size_t>(sub);
  return std::min(index, buckets_.size() - 1);
}

uint64_t LatencyHistogram::BucketLowerBound(size_t index) const {
  if (index < kSubBuckets) {
    return index;
  }
  size_t log = index / kSubBuckets + 5;
  size_t sub = index % kSubBuckets;
  int sub_shift = static_cast<int>(log) - 6;
  return (1ULL << log) | (static_cast<uint64_t>(sub) << sub_shift);
}

void LatencyHistogram::Record(uint64_t value) {
  ++buckets_[BucketFor(value)];
  ++count_;
  sum_ += static_cast<double>(value);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ULL;
  max_ = 0;
}

uint64_t LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  double target = p / 100.0 * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      return BucketLowerBound(i);
    }
  }
  return max_;
}

std::vector<std::pair<uint32_t, uint64_t>> LatencyHistogram::NonzeroBuckets() const {
  std::vector<std::pair<uint32_t, uint64_t>> out;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) {
      out.emplace_back(static_cast<uint32_t>(i), buckets_[i]);
    }
  }
  return out;
}

bool LatencyHistogram::Restore(
    const std::vector<std::pair<uint32_t, uint64_t>>& sparse_buckets, double sum, uint64_t min,
    uint64_t max) {
  Reset();
  for (const auto& [index, count] : sparse_buckets) {
    if (index >= buckets_.size()) {
      Reset();
      return false;
    }
    buckets_[index] += count;
    count_ += count;
  }
  sum_ = sum;
  max_ = max;
  min_ = count_ == 0 ? ~0ULL : min;
  return true;
}

std::string LatencyHistogram::Summary(const std::string& unit) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f%s p50=%llu p90=%llu p99=%llu p99.9=%llu max=%llu%s",
                static_cast<unsigned long long>(count_), mean(), unit.c_str(),
                static_cast<unsigned long long>(Percentile(50)),
                static_cast<unsigned long long>(Percentile(90)),
                static_cast<unsigned long long>(Percentile(99)),
                static_cast<unsigned long long>(Percentile(99.9)),
                static_cast<unsigned long long>(max()), unit.c_str());
  return std::string(buf);
}

}  // namespace gadget
