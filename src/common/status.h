// Lightweight Status / StatusOr error-handling primitives.
//
// Library code in this project does not throw; fallible operations return
// Status (or StatusOr<T> when they also produce a value). The codes mirror
// the small subset of canonical codes the storage engines need.
#ifndef GADGET_COMMON_STATUS_H_
#define GADGET_COMMON_STATUS_H_

#include <cassert>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace gadget {

enum class StatusCode {
  kOk = 0,
  kNotFound = 1,
  kCorruption = 2,
  kInvalidArgument = 3,
  kIoError = 4,
  kAlreadyExists = 5,
  kUnsupported = 6,
  kResourceExhausted = 7,
  kInternal = 8,
};

// Human-readable name for a status code ("OK", "NotFound", ...).
std::string_view StatusCodeName(StatusCode code);

// [[nodiscard]]: a fallible call whose Status is dropped is a latent bug (a
// failed WAL append that nobody notices corrupts the benchmark's durability
// story). The rare sites that legitimately ignore a Status cast to void and
// say why: `(void)expr;  // status intentionally ignored: <reason>` — the
// lint (tools/gadget_lint, rule void-status) rejects the cast without the
// justification.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string_view msg = "") { return Status(StatusCode::kNotFound, msg); }
  static Status Corruption(std::string_view msg = "") {
    return Status(StatusCode::kCorruption, msg);
  }
  static Status InvalidArgument(std::string_view msg = "") {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status IoError(std::string_view msg = "") { return Status(StatusCode::kIoError, msg); }
  static Status AlreadyExists(std::string_view msg = "") {
    return Status(StatusCode::kAlreadyExists, msg);
  }
  static Status Unsupported(std::string_view msg = "") {
    return Status(StatusCode::kUnsupported, msg);
  }
  static Status ResourceExhausted(std::string_view msg = "") {
    return Status(StatusCode::kResourceExhausted, msg);
  }
  static Status Internal(std::string_view msg = "") { return Status(StatusCode::kInternal, msg); }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsUnsupported() const { return code_ == StatusCode::kUnsupported; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string_view msg) : code_(code), message_(msg) {}

  StatusCode code_;
  std::string message_;
};

// StatusOr<T>: either an OK status plus a value, or a non-OK status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT: implicit by design
    assert(!status_.ok() && "StatusOr constructed from OK status without a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Accessing the value of a non-OK StatusOr aborts instead of asserting:
  // release builds define NDEBUG, and an erased assert would turn the bug
  // into a silent empty-optional dereference. The explicit has_value() guard
  // is also what lets clang-tidy's bugprone-unchecked-optional-access prove
  // every `*value_` below is reached only when the optional is engaged.
  T& value() & {
    if (!value_.has_value()) {
      std::abort();
    }
    return *value_;
  }
  const T& value() const& {
    if (!value_.has_value()) {
      std::abort();
    }
    return *value_;
  }
  T&& value() && {
    if (!value_.has_value()) {
      std::abort();
    }
    return std::move(*value_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define GADGET_RETURN_IF_ERROR(expr)       \
  do {                                     \
    ::gadget::Status _st = (expr);         \
    if (!_st.ok()) {                       \
      return _st;                          \
    }                                      \
  } while (0)

}  // namespace gadget

#endif  // GADGET_COMMON_STATUS_H_
