// RAII file and filesystem helpers shared by the persistent stores and trace
// writers: buffered sequential writers/readers, random-access readers, atomic
// renames, and scoped temp directories for tests/benches.
#ifndef GADGET_COMMON_FILE_UTIL_H_
#define GADGET_COMMON_FILE_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace gadget {

// Buffered append-only writer (used by WAL, SSTable builder, log segments).
class WritableFile {
 public:
  ~WritableFile();
  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  static StatusOr<std::unique_ptr<WritableFile>> Create(const std::string& path);

  Status Append(std::string_view data);
  Status Flush();
  Status Sync();   // flush + fdatasync
  Status Close();  // flush + close; safe to call twice

  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  WritableFile(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  Status FlushBuffer();

  std::string path_;
  int fd_;
  std::string buffer_;
  uint64_t size_ = 0;
};

// Positional (pread) random-access reader for SSTables / pages.
class RandomAccessFile {
 public:
  ~RandomAccessFile();
  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  static StatusOr<std::unique_ptr<RandomAccessFile>> Open(const std::string& path);

  // Reads exactly n bytes at offset into *out (resized). Fails on short read.
  Status Read(uint64_t offset, size_t n, std::string* out) const;

  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }
  // Raw descriptor for batched reads through IoBackend (the descriptor stays
  // owned by this object; callers must not close it).
  int fd() const { return fd_; }

 private:
  RandomAccessFile(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  std::string path_;
  int fd_;
  uint64_t size_;
};

// Whole-file helpers.
Status WriteStringToFile(const std::string& path, std::string_view data, bool sync = false);
Status ReadFileToString(const std::string& path, std::string* out);

// Filesystem helpers (thin wrappers over std::filesystem with Status).
Status CreateDirIfMissing(const std::string& path);
Status RemoveDirRecursively(const std::string& path);
Status RenameFile(const std::string& from, const std::string& to);
Status RemoveFile(const std::string& path);
bool FileExists(const std::string& path);
StatusOr<std::vector<std::string>> ListDir(const std::string& path);

// fsyncs the directory itself, making the directory entries (renames, new
// files, unlinks) durable. POSIX only guarantees a rename or newly created
// file survives a crash once the *parent directory* has been fsynced; file
// fsync alone is not enough. Every durability-sensitive RenameFile or
// file-creation must be followed by SyncDir on the parent before the change
// is relied upon (see DESIGN.md "Durability contract").
Status SyncDir(const std::string& dir);

// Copies `from` to `to` (replacing `to`), optionally fdatasync-ing the copy.
// The parent directory of `to` is NOT synced; callers that need the new entry
// durable follow up with SyncDir.
Status CopyFile(const std::string& from, const std::string& to, bool sync = false);

// Hard-links `from` as `to` when possible (same filesystem), falling back to
// a byte copy. Used by checkpoints to capture immutable files (SSTables)
// without duplicating data. Sets *linked (may be null) to whether a hard link
// was made. Fails if `to` exists.
Status LinkOrCopyFile(const std::string& from, const std::string& to, bool* linked = nullptr);

// Returns the size of `path` in bytes.
StatusOr<uint64_t> FileSize(const std::string& path);

// Creates a unique directory under the system temp dir, removed on
// destruction. Used pervasively by tests and benches.
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& prefix = "gadget");
  ~ScopedTempDir();
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace gadget

#endif  // GADGET_COMMON_FILE_UTIL_H_
