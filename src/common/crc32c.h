// CRC32C (Castagnoli) checksums protecting on-disk blocks (SSTables, WAL,
// B+tree pages, hybrid-log segments).
#ifndef GADGET_COMMON_CRC32C_H_
#define GADGET_COMMON_CRC32C_H_

#include <cstdint>
#include <cstddef>
#include <string_view>

namespace gadget {

// Computes CRC32C of data[0, len), continuing from `crc` (pass 0 to start).
uint32_t Crc32c(uint32_t crc, const void* data, size_t len);

inline uint32_t Crc32c(std::string_view s) { return Crc32c(0, s.data(), s.size()); }

// Masked CRC (RocksDB-style) so that checksums of data that happens to
// contain embedded CRCs remain well distributed.
inline uint32_t MaskCrc(uint32_t crc) { return ((crc >> 15) | (crc << 17)) + 0xa282ead8u; }
inline uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace gadget

#endif  // GADGET_COMMON_CRC32C_H_
