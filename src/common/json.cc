#include "src/common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace gadget {
namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double d) {
  if (!std::isfinite(d)) {  // JSON has no inf/nan; null is the least-bad spelling
    *out += "null";
    return;
  }
  // Counters dominate reports: emit integral values without a fraction so
  // they parse back as the same integer and diff cleanly.
  if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    *out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out += buf;
}

struct Parser {
  const char* p;
  const char* end;
  const char* begin;

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("json: " + msg + " at offset " +
                                   std::to_string(p - begin));
  }

  void SkipWs() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool Consume(char c) {
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) {
      return Error("expected string");
    }
    out->clear();
    while (p < end && *p != '"') {
      char c = *p++;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p >= end) {
        return Error("truncated escape");
      }
      char e = *p++;
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (end - p < 4) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = *p++;
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not needed
          // for report content; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    if (!Consume('"')) {
      return Error("unterminated string");
    }
    return Status::Ok();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > 64) {
      return Error("nesting too deep");
    }
    SkipWs();
    if (p >= end) {
      return Error("unexpected end of input");
    }
    switch (*p) {
      case '{': {
        ++p;
        *out = JsonValue::MakeObject();
        SkipWs();
        if (Consume('}')) {
          return Status::Ok();
        }
        for (;;) {
          SkipWs();
          std::string key;
          GADGET_RETURN_IF_ERROR(ParseString(&key));
          SkipWs();
          if (!Consume(':')) {
            return Error("expected ':'");
          }
          JsonValue v;
          GADGET_RETURN_IF_ERROR(ParseValue(&v, depth + 1));
          out->Set(std::move(key), std::move(v));
          SkipWs();
          if (Consume(',')) {
            continue;
          }
          if (Consume('}')) {
            return Status::Ok();
          }
          return Error("expected ',' or '}'");
        }
      }
      case '[': {
        ++p;
        *out = JsonValue::MakeArray();
        SkipWs();
        if (Consume(']')) {
          return Status::Ok();
        }
        for (;;) {
          JsonValue v;
          GADGET_RETURN_IF_ERROR(ParseValue(&v, depth + 1));
          out->Append(std::move(v));
          SkipWs();
          if (Consume(',')) {
            continue;
          }
          if (Consume(']')) {
            return Status::Ok();
          }
          return Error("expected ',' or ']'");
        }
      }
      case '"': {
        std::string s;
        GADGET_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue(std::move(s));
        return Status::Ok();
      }
      case 't':
        if (end - p >= 4 && std::memcmp(p, "true", 4) == 0) {
          p += 4;
          *out = JsonValue(true);
          return Status::Ok();
        }
        return Error("bad literal");
      case 'f':
        if (end - p >= 5 && std::memcmp(p, "false", 5) == 0) {
          p += 5;
          *out = JsonValue(false);
          return Status::Ok();
        }
        return Error("bad literal");
      case 'n':
        if (end - p >= 4 && std::memcmp(p, "null", 4) == 0) {
          p += 4;
          *out = JsonValue();
          return Status::Ok();
        }
        return Error("bad literal");
      default: {
        // Number: [-]digits[.digits][eE[+-]digits]
        const char* start = p;
        // result intentionally ignored: the sign is optional, so a failed
        // consume is not an error.
        (void)Consume('-');
        while (p < end && ((*p >= '0' && *p <= '9') || *p == '.' || *p == 'e' || *p == 'E' ||
                           *p == '+' || *p == '-')) {
          ++p;
        }
        if (p == start) {
          return Error("unexpected character");
        }
        std::string num(start, static_cast<size_t>(p - start));
        char* parse_end = nullptr;
        double d = std::strtod(num.c_str(), &parse_end);
        if (parse_end != num.c_str() + num.size()) {
          return Error("bad number");
        }
        *out = JsonValue(d);
        return Status::Ok();
      }
    }
  }
};

}  // namespace

double JsonValue::GetDouble(const std::string& key, double def) const {
  const JsonValue* v = Get(key);
  return v != nullptr && v->is_number() ? v->AsDouble() : def;
}

uint64_t JsonValue::GetUint(const std::string& key, uint64_t def) const {
  const JsonValue* v = Get(key);
  return v != nullptr && v->is_number() ? v->AsUint64() : def;
}

std::string JsonValue::GetString(const std::string& key, const std::string& def) const {
  const JsonValue* v = Get(key);
  return v != nullptr && v->is_string() ? v->AsString() : def;
}

void JsonValue::WriteTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent > 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(out, number_);
      break;
    case Type::kString:
      AppendEscaped(out, string_);
      break;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) {
          out->push_back(',');
        }
        first = false;
        newline(depth + 1);
        v.WriteTo(out, indent, depth + 1);
      }
      if (!array_.empty()) {
        newline(depth);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, v] : members_) {
        if (!first) {
          out->push_back(',');
        }
        first = false;
        newline(depth + 1);
        AppendEscaped(out, key);
        out->push_back(':');
        if (indent > 0) {
          out->push_back(' ');
        }
        v.WriteTo(out, indent, depth + 1);
      }
      if (!members_.empty()) {
        newline(depth);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Write(int indent) const {
  std::string out;
  WriteTo(&out, indent, 0);
  return out;
}

StatusOr<JsonValue> ParseJson(std::string_view text) {
  Parser parser{text.data(), text.data() + text.size(), text.data()};
  JsonValue value;
  GADGET_RETURN_IF_ERROR(parser.ParseValue(&value, 0));
  parser.SkipWs();
  if (parser.p != parser.end) {
    return parser.Error("trailing characters");
  }
  return value;
}

}  // namespace gadget
