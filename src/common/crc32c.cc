#include "src/common/crc32c.h"

#include <array>

namespace gadget {
namespace {

// Table-driven CRC32C, 8 bits at a time. The table is built once at startup.
struct Crc32cTable {
  std::array<uint32_t, 256> t;
  Crc32cTable() {
    constexpr uint32_t kPoly = 0x82f63b78u;  // reversed Castagnoli polynomial
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[i] = crc;
    }
  }
};

const Crc32cTable kTable;

}  // namespace

uint32_t Crc32c(uint32_t crc, const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ kTable.t[(crc ^ p[i]) & 0xff];
  }
  return ~crc;
}

}  // namespace gadget
