#include "src/common/status.h"

namespace gadget {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace gadget
