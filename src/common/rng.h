// Deterministic pseudo-random number generation.
//
// All randomness in the harness flows through Pcg32 so that every workload,
// trace, and benchmark is reproducible bit-for-bit from a seed. PCG-XSH-RR
// (Melissa O'Neill, 2014) is small, fast, and statistically strong enough for
// workload generation.
#ifndef GADGET_COMMON_RNG_H_
#define GADGET_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace gadget {

class Pcg32 {
 public:
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    NextU32();
    state_ += seed;
    NextU32();
  }

  // Uniform 32-bit value.
  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
  }

  // Uniform 64-bit value.
  uint64_t NextU64() {
    return (static_cast<uint64_t>(NextU32()) << 32) | static_cast<uint64_t>(NextU32());
  }

  // Uniform in [0, bound). Uses Lemire's multiply-shift rejection method.
  uint32_t NextBounded(uint32_t bound) {
    if (bound <= 1) {
      return 0;
    }
    uint64_t m = static_cast<uint64_t>(NextU32()) * bound;
    uint32_t low = static_cast<uint32_t>(m);
    if (low < bound) {
      uint32_t threshold = (0u - bound) % bound;
      while (low < threshold) {
        m = static_cast<uint64_t>(NextU32()) * bound;
        low = static_cast<uint32_t>(m);
      }
    }
    return static_cast<uint32_t>(m >> 32);
  }

  // Uniform in [0, bound) for 64-bit bounds.
  uint64_t NextBounded64(uint64_t bound) {
    if (bound <= 1) {
      return 0;
    }
    // Rejection sampling over the top of the range to avoid modulo bias.
    uint64_t threshold = (0ULL - bound) % bound;
    for (;;) {
      uint64_t r = NextU64();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Exponentially distributed with the given rate parameter (mean = 1/rate).
  double NextExponential(double rate) {
    double u = NextDouble();
    // Guard against log(0).
    if (u >= 1.0) {
      u = 0.9999999999999999;
    }
    return -std::log1p(-u) / rate;
  }

  // Standard normal via Box-Muller (polar form avoided for determinism simplicity).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) {
      u1 = 1e-300;
    }
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

 private:
  uint64_t state_;
  uint64_t inc_;
};

// SplitMix64: used to derive independent seeds from one master seed.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace gadget

#endif  // GADGET_COMMON_RNG_H_
