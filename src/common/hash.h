// Non-cryptographic hashing used by stores (bloom filters, hash index) and
// the YCSB zipfian scrambler.
#ifndef GADGET_COMMON_HASH_H_
#define GADGET_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace gadget {

// FNV-1a 64-bit over arbitrary bytes.
inline uint64_t Fnv1a64(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

inline uint64_t Fnv1a64(std::string_view s) { return Fnv1a64(s.data(), s.size()); }

// Fast 64-bit integer mixer (Stafford variant 13). Used to scramble keys.
inline uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// XXH-like 64-bit string hash (simplified, seedable). Good distribution for
// bloom filter double hashing.
inline uint64_t Hash64(const void* data, size_t len, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed ^ (len * 0x9e3779b97f4a7c15ULL);
  while (len >= 8) {
    uint64_t k;
    std::memcpy(&k, p, 8);
    h = (h ^ Mix64(k)) * 0xff51afd7ed558ccdULL;
    p += 8;
    len -= 8;
  }
  uint64_t tail = 0;
  for (size_t i = 0; i < len; ++i) {
    tail = (tail << 8) | p[i];
  }
  h = (h ^ Mix64(tail)) * 0xc4ceb9fe1a85ec53ULL;
  return Mix64(h);
}

inline uint64_t Hash64(std::string_view s, uint64_t seed = 0) {
  return Hash64(s.data(), s.size(), seed);
}

}  // namespace gadget

#endif  // GADGET_COMMON_HASH_H_
