#include "src/common/file_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

namespace gadget {
namespace fs = std::filesystem;

namespace {
constexpr size_t kWriteBufferSize = 64 * 1024;

Status ErrnoStatus(const std::string& context) {
  return Status::IoError(context + ": " + std::strerror(errno));
}
}  // namespace

// ---------------------------------------------------------------- WritableFile

// status intentionally ignored: destructors cannot propagate errors; durable
// writers (WAL, SSTable builder) call Close() explicitly and check.
WritableFile::~WritableFile() { (void)Close(); }

StatusOr<std::unique_ptr<WritableFile>> WritableFile::Create(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return ErrnoStatus("open " + path);
  }
  auto file = std::unique_ptr<WritableFile>(new WritableFile(path, fd));
  file->buffer_.reserve(kWriteBufferSize);
  return file;
}

Status WritableFile::Append(std::string_view data) {
  if (fd_ < 0) {
    return Status::IoError("append to closed file " + path_);
  }
  size_ += data.size();
  if (buffer_.size() + data.size() < kWriteBufferSize) {
    buffer_.append(data.data(), data.size());
    return Status::Ok();
  }
  GADGET_RETURN_IF_ERROR(FlushBuffer());
  if (data.size() >= kWriteBufferSize) {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return ErrnoStatus("write " + path_);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::Ok();
  }
  buffer_.append(data.data(), data.size());
  return Status::Ok();
}

Status WritableFile::FlushBuffer() {
  const char* p = buffer_.data();
  size_t left = buffer_.size();
  while (left > 0) {
    ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("write " + path_);
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  buffer_.clear();
  return Status::Ok();
}

Status WritableFile::Flush() { return fd_ < 0 ? Status::Ok() : FlushBuffer(); }

Status WritableFile::Sync() {
  GADGET_RETURN_IF_ERROR(Flush());
  if (fd_ >= 0 && ::fdatasync(fd_) != 0) {
    return ErrnoStatus("fdatasync " + path_);
  }
  return Status::Ok();
}

Status WritableFile::Close() {
  if (fd_ < 0) {
    return Status::Ok();
  }
  Status s = FlushBuffer();
  if (::close(fd_) != 0 && s.ok()) {
    s = ErrnoStatus("close " + path_);
  }
  fd_ = -1;
  return s;
}

// ------------------------------------------------------------ RandomAccessFile

RandomAccessFile::~RandomAccessFile() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

StatusOr<std::unique_ptr<RandomAccessFile>> RandomAccessFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return ErrnoStatus("open " + path);
  }
  off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return ErrnoStatus("lseek " + path);
  }
  return std::unique_ptr<RandomAccessFile>(
      new RandomAccessFile(path, fd, static_cast<uint64_t>(end)));
}

Status RandomAccessFile::Read(uint64_t offset, size_t n, std::string* out) const {
  out->resize(n);
  char* p = out->data();
  size_t left = n;
  uint64_t off = offset;
  while (left > 0) {
    ssize_t r = ::pread(fd_, p, left, static_cast<off_t>(off));
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("pread " + path_);
    }
    if (r == 0) {
      return Status::IoError("short read at offset " + std::to_string(offset) + " in " + path_);
    }
    p += r;
    off += static_cast<uint64_t>(r);
    left -= static_cast<size_t>(r);
  }
  return Status::Ok();
}

// ------------------------------------------------------------- free functions

Status WriteStringToFile(const std::string& path, std::string_view data, bool sync) {
  auto file = WritableFile::Create(path);
  if (!file.ok()) {
    return file.status();
  }
  GADGET_RETURN_IF_ERROR((*file)->Append(data));
  if (sync) {
    GADGET_RETURN_IF_ERROR((*file)->Sync());
  }
  return (*file)->Close();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  auto file = RandomAccessFile::Open(path);
  if (!file.ok()) {
    return file.status();
  }
  return (*file)->Read(0, (*file)->size(), out);
}

Status CreateDirIfMissing(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    return Status::IoError("mkdir " + path + ": " + ec.message());
  }
  return Status::Ok();
}

Status RemoveDirRecursively(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) {
    return Status::IoError("rm -r " + path + ": " + ec.message());
  }
  return Status::Ok();
}

Status RenameFile(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    return Status::IoError("rename " + from + " -> " + to + ": " + ec.message());
  }
  return Status::Ok();
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  if (!fs::remove(path, ec) || ec) {
    return Status::IoError("rm " + path + (ec ? ": " + ec.message() : ": no such file"));
  }
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

StatusOr<std::vector<std::string>> ListDir(const std::string& path) {
  std::error_code ec;
  std::vector<std::string> names;
  for (auto it = fs::directory_iterator(path, ec); !ec && it != fs::directory_iterator(); ++it) {
    names.push_back(it->path().filename().string());
  }
  if (ec) {
    return Status::IoError("list " + path + ": " + ec.message());
  }
  return names;
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return ErrnoStatus("open dir " + dir);
  }
  Status s = Status::Ok();
  if (::fsync(fd) != 0) {
    s = ErrnoStatus("fsync dir " + dir);
  }
  ::close(fd);
  return s;
}

Status CopyFile(const std::string& from, const std::string& to, bool sync) {
  std::string data;
  GADGET_RETURN_IF_ERROR(ReadFileToString(from, &data));
  return WriteStringToFile(to, data, sync);
}

Status LinkOrCopyFile(const std::string& from, const std::string& to, bool* linked) {
  if (linked != nullptr) {
    *linked = false;
  }
  if (FileExists(to)) {
    return Status::IoError("link target exists: " + to);
  }
  if (::link(from.c_str(), to.c_str()) == 0) {
    if (linked != nullptr) {
      *linked = true;
    }
    return Status::Ok();
  }
  if (errno != EXDEV && errno != EPERM && errno != EMLINK && errno != ENOSYS) {
    return ErrnoStatus("link " + from + " -> " + to);
  }
  return CopyFile(from, to, /*sync=*/true);
}

StatusOr<uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  uint64_t size = fs::file_size(path, ec);
  if (ec) {
    return Status::IoError("stat " + path + ": " + ec.message());
  }
  return size;
}

// -------------------------------------------------------------- ScopedTempDir

ScopedTempDir::ScopedTempDir(const std::string& prefix) {
  std::string tmpl = (fs::temp_directory_path() / (prefix + ".XXXXXX")).string();
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* result = ::mkdtemp(buf.data());
  path_ = (result != nullptr) ? std::string(result) : tmpl;
}

ScopedTempDir::~ScopedTempDir() {
  if (!path_.empty()) {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
}

}  // namespace gadget
