// Minimal JSON value, parser and writer. Run reports (src/gadget/report.h)
// are the primary consumer: CI parses, validates and diffs them, so emission
// and parsing must round-trip exactly for the integer counters the reports
// carry. No external dependencies.
//
// Numbers are stored as doubles; integer counters up to 2^53 round-trip
// exactly, which covers every counter a run can realistically accumulate.
// Object keys are kept in sorted order (std::map), so emission is
// deterministic — two identical runs produce byte-identical reports.
#ifndef GADGET_COMMON_JSON_H_
#define GADGET_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace gadget {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  JsonValue(double d) : type_(Type::kNumber), number_(d) {}
  JsonValue(int64_t i) : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(uint64_t u) : type_(Type::kNumber), number_(static_cast<double>(u)) {}
  JsonValue(int i) : type_(Type::kNumber), number_(i) {}
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  JsonValue(std::string_view s) : type_(Type::kString), string_(s) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}

  static JsonValue MakeArray() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue MakeObject() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  uint64_t AsUint64() const { return number_ <= 0 ? 0 : static_cast<uint64_t>(number_); }
  int64_t AsInt64() const { return static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }

  // Array access.
  const std::vector<JsonValue>& items() const { return array_; }
  void Append(JsonValue v) { array_.push_back(std::move(v)); }
  size_t size() const { return type_ == Type::kArray ? array_.size() : members_.size(); }

  // Object access. Get returns nullptr when the key is absent.
  const std::map<std::string, JsonValue>& members() const { return members_; }
  const JsonValue* Get(const std::string& key) const {
    auto it = members_.find(key);
    return it == members_.end() ? nullptr : &it->second;
  }
  void Set(std::string key, JsonValue v) { members_[std::move(key)] = std::move(v); }

  // Typed object lookups with defaults (missing or wrong-typed -> default).
  double GetDouble(const std::string& key, double def = 0) const;
  uint64_t GetUint(const std::string& key, uint64_t def = 0) const;
  std::string GetString(const std::string& key, const std::string& def = "") const;

  // Serializes this value. `indent` > 0 pretty-prints with that many spaces
  // per level; 0 emits the compact single-line form.
  std::string Write(int indent = 0) const;

 private:
  void WriteTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> members_;
};

// Parses a complete JSON document (trailing garbage is an error). Returns
// InvalidArgument with a byte offset on malformed input.
StatusOr<JsonValue> ParseJson(std::string_view text);

}  // namespace gadget

#endif  // GADGET_COMMON_JSON_H_
