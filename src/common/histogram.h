// Latency histogram with log-bucketed resolution (HdrHistogram-style) used by
// the performance evaluator for percentile reporting, plus a small streaming
// mean/variance accumulator.
#ifndef GADGET_COMMON_HISTOGRAM_H_
#define GADGET_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gadget {

// Records non-negative integer samples (nanoseconds in practice) into
// exponentially-growing buckets with ~1.5% relative error. O(1) record,
// O(buckets) percentile queries.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(uint64_t value);
  void Merge(const LatencyHistogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double sum() const { return sum_; }

  // p in [0, 100]. Returns an approximation of the p-th percentile.
  uint64_t Percentile(double p) const;

  // Multi-line human-readable summary (used by bench binaries).
  std::string Summary(const std::string& unit = "ns") const;

  // --- serialization support (run reports, src/gadget/report.h) ---
  // (index, count) for every nonzero bucket, ascending by index. Together
  // with sum/min/max this is the histogram's full state.
  std::vector<std::pair<uint32_t, uint64_t>> NonzeroBuckets() const;
  size_t num_buckets() const { return buckets_.size(); }
  // Smallest value that lands in bucket `index` (reports label buckets with
  // this bound).
  uint64_t BucketLowerBound(size_t index) const;
  // Rebuilds the histogram from serialized parts (the inverse of
  // NonzeroBuckets + sum/min/max accessors); count is recomputed from the
  // bucket counts. Returns false — leaving the histogram reset — if any
  // bucket index is out of range.
  bool Restore(const std::vector<std::pair<uint32_t, uint64_t>>& sparse_buckets, double sum,
               uint64_t min, uint64_t max);

 private:
  static constexpr int kSubBuckets = 64;  // per power-of-two resolution
  size_t BucketFor(uint64_t value) const;

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  uint64_t min_ = ~0ULL;
  uint64_t max_ = 0;
};

// Welford online mean/variance.
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
  }
  uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const { return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1); }

 private:
  uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

}  // namespace gadget

#endif  // GADGET_COMMON_HISTOGRAM_H_
