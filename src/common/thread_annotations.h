// Clang thread-safety analysis annotations (DESIGN.md §5f).
//
// These macros let lock invariants that used to live only in comments —
// "`*Locked` helpers require `mu_`", "stripe maps are guarded by their
// stripe's mutex" — be machine-checked at compile time. Under Clang with
// -Wthread-safety (the static-analysis CI job builds with
// -Werror=thread-safety) every annotated field access and function call is
// proven against the declared lock discipline; under GCC (the default local
// toolchain) every macro expands to nothing, so the annotations are free.
//
// The attributes only attach to capability types, and libstdc++'s std::mutex
// is not one, so synchronized code uses the annotated wrappers in
// src/common/mutex.h (Mutex, SharedMutex, MutexLock, CondVar) instead of the
// raw standard types.
//
// Conventions:
//  * every field written under a lock is GUARDED_BY(that lock);
//  * every private helper named `*Locked` is REQUIRES(the lock) — enforced
//    statically here and textually by tools/gadget_lint (rule
//    locked-requires);
//  * NO_THREAD_SAFETY_ANALYSIS is a last resort for code the analysis cannot
//    model; each use carries a one-line justification comment.
#ifndef GADGET_COMMON_THREAD_ANNOTATIONS_H_
#define GADGET_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define GADGET_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define GADGET_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op on non-Clang
#endif

// Type attributes ------------------------------------------------------------

// Marks a class as a lockable capability ("mutex", "shared_mutex", ...).
#define CAPABILITY(x) GADGET_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

// Marks an RAII class whose lifetime holds a capability (MutexLock et al.).
#define SCOPED_CAPABILITY GADGET_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

// Data-member attributes -----------------------------------------------------

// The field may only be read or written while holding the given capability
// (shared hold suffices for reads on shared capabilities).
#define GUARDED_BY(x) GADGET_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

// The pointer itself is unguarded, but the data it points to is guarded.
#define PT_GUARDED_BY(x) GADGET_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

// Function attributes --------------------------------------------------------

// Caller must hold the capability exclusively when calling (held on entry and
// on exit; the function may release and reacquire internally).
#define REQUIRES(...) \
  GADGET_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

// Caller must hold the capability at least shared.
#define REQUIRES_SHARED(...) \
  GADGET_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

// The function acquires the capability (exclusively / shared) and does not
// release it before returning.
#define ACQUIRE(...) \
  GADGET_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  GADGET_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

// The function releases a held capability. RELEASE is generic: on a
// SCOPED_CAPABILITY destructor it releases however the scope acquired.
#define RELEASE(...) \
  GADGET_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  GADGET_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

// Caller must NOT hold the capability (deadlock guard for self-locking APIs).
#define EXCLUDES(...) GADGET_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

// Try-lock: acquires only when returning `ret`.
#define TRY_ACQUIRE(ret, ...) \
  GADGET_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(ret, __VA_ARGS__))

// Runtime assertion that the capability is held (teaches the analysis a fact
// it cannot derive, e.g. after a CondVar wait loop re-establishes it).
#define ASSERT_CAPABILITY(x) \
  GADGET_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

// The function returns a reference to the given capability (accessor pattern).
#define RETURN_CAPABILITY(x) GADGET_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

// Escape hatch: the function body is not analyzed. Every use must carry a
// one-line justification comment (enforced by code review + DESIGN.md §5f;
// budget is ≤ 10 uses tree-wide).
#define NO_THREAD_SAFETY_ANALYSIS \
  GADGET_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // GADGET_COMMON_THREAD_ANNOTATIONS_H_
