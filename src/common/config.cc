#include "src/common/config.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace gadget {
namespace {

std::string_view Trim(std::string_view s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string_view::npos) {
    return {};
  }
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

StatusOr<Config> Config::ParseString(std::string_view text) {
  Config cfg;
  size_t pos = 0;
  int line_no = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = (eol == std::string_view::npos) ? text.size() + 1 : eol + 1;
    ++line_no;

    size_t hash = line.find('#');
    if (hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = Trim(line);
    if (line.empty()) {
      continue;
    }
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("config line " + std::to_string(line_no) +
                                     " has no '=': " + std::string(line));
    }
    std::string key(Trim(line.substr(0, eq)));
    std::string value(Trim(line.substr(eq + 1)));
    if (key.empty()) {
      return Status::InvalidArgument("config line " + std::to_string(line_no) + " has empty key");
    }
    cfg.values_[key] = value;
  }
  return cfg;
}

StatusOr<Config> Config::ParseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open config file: " + path);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return ParseString(ss.str());
}

std::string Config::GetString(const std::string& key, const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

int64_t Config::GetInt(const std::string& key, int64_t def) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

uint64_t Config::GetUint(const std::string& key, uint64_t def) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

double Config::GetDouble(const std::string& key, double def) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  return std::strtod(it->second.c_str(), nullptr);
}

bool Config::GetBool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  const std::string& v = it->second;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace gadget
