// Little-endian fixed-width and varint encodings shared by all on-disk
// formats (SSTable blocks, WAL records, trace files, B+tree pages).
#ifndef GADGET_COMMON_CODING_H_
#define GADGET_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace gadget {

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline void PutVarint32(std::string* dst, uint32_t v) {
  unsigned char buf[5];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

inline void PutVarint64(std::string* dst, uint64_t v) {
  unsigned char buf[10];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

// Parses a varint32 from [p, limit); returns the new position or nullptr on
// malformed input. The decoded value goes to *value.
inline const char* GetVarint32(const char* p, const char* limit, uint32_t* value) {
  uint32_t result = 0;
  for (uint32_t shift = 0; shift <= 28 && p < limit; shift += 7) {
    uint32_t byte = static_cast<unsigned char>(*p++);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;
}

inline const char* GetVarint64(const char* p, const char* limit, uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = static_cast<unsigned char>(*p++);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;
}

// Length-prefixed string helpers.
inline void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutVarint32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

inline const char* GetLengthPrefixed(const char* p, const char* limit, std::string_view* out) {
  uint32_t len = 0;
  p = GetVarint32(p, limit, &len);
  if (p == nullptr || static_cast<size_t>(limit - p) < len) {
    return nullptr;
  }
  *out = std::string_view(p, len);
  return p + len;
}

}  // namespace gadget

#endif  // GADGET_COMMON_CODING_H_
