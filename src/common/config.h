// Minimal key=value configuration parser.
//
// Gadget (the original) is driven by config files; we keep the same idea: a
// flat `key = value` format with `#` comments. Typed getters with defaults.
#ifndef GADGET_COMMON_CONFIG_H_
#define GADGET_COMMON_CONFIG_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace gadget {

class Config {
 public:
  Config() = default;

  // Parses `key = value` lines; '#' starts a comment; blank lines ignored.
  static StatusOr<Config> ParseString(std::string_view text);
  static StatusOr<Config> ParseFile(const std::string& path);

  void Set(const std::string& key, const std::string& value) { values_[key] = value; }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string GetString(const std::string& key, const std::string& def = "") const;
  int64_t GetInt(const std::string& key, int64_t def = 0) const;
  uint64_t GetUint(const std::string& key, uint64_t def = 0) const;
  double GetDouble(const std::string& key, double def = 0.0) const;
  bool GetBool(const std::string& key, bool def = false) const;

  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace gadget

#endif  // GADGET_COMMON_CONFIG_H_
