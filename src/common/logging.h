// Tiny leveled logging to stderr. The harness is a measurement tool, so
// logging defaults to warnings-and-up; benches flip to info for progress.
#ifndef GADGET_COMMON_LOGGING_H_
#define GADGET_COMMON_LOGGING_H_

#include <cstdio>
#include <sstream>
#include <string>

namespace gadget {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define GADGET_LOG(level)                                                       \
  if (::gadget::LogLevel::k##level < ::gadget::GetLogLevel()) {                 \
  } else                                                                        \
    ::gadget::internal::LogMessage(::gadget::LogLevel::k##level, __FILE__, __LINE__).stream()

}  // namespace gadget

#endif  // GADGET_COMMON_LOGGING_H_
