#include "src/analysis/cache_model.h"

#include <algorithm>
#include <unordered_map>

#include "src/analysis/metrics.h"

namespace gadget {

std::vector<MissRatioPoint> ComputeMissRatioCurve(const std::vector<StateAccess>& trace,
                                                  const std::vector<uint64_t>& cache_sizes) {
  StackDistanceResult sd = ComputeStackDistances(trace);
  // Histogram of stack distances -> cumulative hits under each size.
  std::vector<uint64_t> sorted = sd.distances;
  std::sort(sorted.begin(), sorted.end());
  const double total = static_cast<double>(sorted.size() + sd.cold_misses);

  std::vector<MissRatioPoint> curve;
  curve.reserve(cache_sizes.size());
  for (uint64_t size : cache_sizes) {
    // Hit iff distance < size.
    auto it = std::lower_bound(sorted.begin(), sorted.end(), size);
    uint64_t hits = static_cast<uint64_t>(it - sorted.begin());
    double miss = total == 0 ? 0 : 1.0 - static_cast<double>(hits) / total;
    curve.push_back(MissRatioPoint{size, miss});
  }
  return curve;
}

uint64_t RecommendCacheSize(const std::vector<StateAccess>& trace, double target_miss_ratio,
                            double granularity) {
  // Geometric sweep up to the trace's distinct-key count.
  std::unordered_map<StateKey, int, StateKeyHash> distinct;
  for (const StateAccess& a : trace) {
    distinct.emplace(a.key, 0);
  }
  std::vector<uint64_t> sizes;
  for (double s = 16; s < static_cast<double>(distinct.size()) * granularity;
       s *= granularity) {
    sizes.push_back(static_cast<uint64_t>(s));
  }
  if (sizes.empty()) {
    sizes.push_back(16);
  }
  for (const MissRatioPoint& point : ComputeMissRatioCurve(trace, sizes)) {
    if (point.miss_ratio <= target_miss_ratio) {
      return point.cache_entries;
    }
  }
  return 0;
}

PrefetchResult SimulatePrefetch(const std::vector<StateAccess>& trace, int slots) {
  PrefetchResult result;
  result.accesses = trace.size();
  if (trace.empty() || slots <= 0) {
    return result;
  }
  // Per context key: the most recent `slots` successors (LRU order).
  std::unordered_map<StateKey, std::vector<StateKey>, StateKeyHash> successors;
  successors.reserve(trace.size() / 4 + 16);
  bool have_prev = false;
  StateKey prev;
  for (const StateAccess& a : trace) {
    if (!have_prev) {
      ++result.cold;
      prev = a.key;
      have_prev = true;
      continue;
    }
    auto it = successors.find(prev);
    if (it == successors.end()) {
      ++result.cold;
    } else {
      const std::vector<StateKey>& cands = it->second;
      if (std::find(cands.begin(), cands.end(), a.key) != cands.end()) {
        ++result.predicted;
      }
    }
    // Train: a.key becomes the most recent successor of prev.
    std::vector<StateKey>& cands = successors[prev];
    auto pos = std::find(cands.begin(), cands.end(), a.key);
    if (pos != cands.end()) {
      cands.erase(pos);
    }
    cands.insert(cands.begin(), a.key);
    if (cands.size() > static_cast<size_t>(slots)) {
      cands.pop_back();
    }
    prev = a.key;
  }
  return result;
}

}  // namespace gadget
