#include "src/analysis/stats_tests.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace gadget {
namespace {

// Asymptotic Kolmogorov distribution complement Q_KS (Numerical Recipes).
double KsPValue(double lambda) {
  if (lambda < 1e-9) {
    return 1.0;
  }
  double sum = 0;
  double sign = 1;
  for (int j = 1; j <= 100; ++j) {
    double term = std::exp(-2.0 * j * j * lambda * lambda);
    sum += sign * term;
    if (term < 1e-12) {
      break;
    }
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

}  // namespace

KsResult KsTest(const std::vector<double>& a, const std::vector<double>& b) {
  KsResult result;
  result.n = a.size();
  result.m = b.size();
  if (a.empty() || b.empty()) {
    return result;
  }
  std::vector<double> sa = a, sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  size_t i = 0, j = 0;
  double d = 0;
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  while (i < sa.size() && j < sb.size()) {
    double x = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] <= x) {
      ++i;
    }
    while (j < sb.size() && sb[j] <= x) {
      ++j;
    }
    d = std::max(d, std::fabs(static_cast<double>(i) / na - static_cast<double>(j) / nb));
  }
  result.d = d;
  double ne = na * nb / (na + nb);
  double lambda = (std::sqrt(ne) + 0.12 + 0.11 / std::sqrt(ne)) * d;
  result.p_value = KsPValue(lambda);
  return result;
}

double Wasserstein1D(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.empty() || b.empty()) {
    return 0;
  }
  std::vector<double> sa = a, sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  // W1 = integral |F_a^{-1}(q) - F_b^{-1}(q)| dq, evaluated by merging the
  // two quantile functions.
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  size_t i = 0, j = 0;
  double prev_q = 0;
  double total = 0;
  while (i < sa.size() && j < sb.size()) {
    double qa = static_cast<double>(i + 1) / na;
    double qb = static_cast<double>(j + 1) / nb;
    double q = std::min(qa, qb);
    total += std::fabs(sa[i] - sb[j]) * (q - prev_q);
    prev_q = q;
    if (qa <= qb) {
      ++i;
    }
    if (qb <= qa) {
      ++j;
    }
  }
  return total;
}

std::vector<double> NormalizedRanks(std::vector<uint64_t> values_per_sample) {
  std::vector<uint64_t> distinct = values_per_sample;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
  std::map<uint64_t, double> rank;
  const double n = static_cast<double>(distinct.size());
  for (size_t i = 0; i < distinct.size(); ++i) {
    rank[distinct[i]] = n <= 1 ? 0.0 : static_cast<double>(i) / n;
  }
  std::vector<double> out;
  out.reserve(values_per_sample.size());
  for (uint64_t v : values_per_sample) {
    out.push_back(rank[v]);
  }
  return out;
}

std::vector<double> EventKeyRanks(const std::vector<Event>& events) {
  std::vector<uint64_t> keys;
  keys.reserve(events.size());
  for (const Event& e : events) {
    if (!e.is_watermark()) {
      keys.push_back(e.key);
    }
  }
  return NormalizedRanks(std::move(keys));
}

std::vector<double> StateKeyRanks(const std::vector<StateAccess>& trace) {
  // Rank the full 128-bit state keys in (hi, lo) order. For aggregation
  // (lo == 0 everywhere) this yields exactly the event-key ranking, so the
  // KS test passes, as in Table 2.
  std::vector<StateKey> distinct;
  distinct.reserve(trace.size());
  for (const StateAccess& a : trace) {
    distinct.push_back(a.key);
  }
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
  std::map<StateKey, double> rank;
  const double n = static_cast<double>(distinct.size());
  for (size_t i = 0; i < distinct.size(); ++i) {
    rank[distinct[i]] = n <= 1 ? 0.0 : static_cast<double>(i) / n;
  }
  std::vector<double> out;
  out.reserve(trace.size());
  for (const StateAccess& a : trace) {
    out.push_back(rank[a.key]);
  }
  return out;
}

}  // namespace gadget
