// Statistical distance machinery for the characterization study: two-sample
// Kolmogorov-Smirnov test (Table 2, §4) and the 1-D Wasserstein (earth
// mover's) distance (§4), plus the rank mapping the paper uses to compare
// key distributions over a common domain.
#ifndef GADGET_ANALYSIS_STATS_TESTS_H_
#define GADGET_ANALYSIS_STATS_TESTS_H_

#include <cstdint>
#include <vector>

#include "src/streams/event.h"
#include "src/streams/state_access.h"

namespace gadget {

struct KsResult {
  double d = 0;        // sup |F1 - F2|
  double p_value = 1;  // asymptotic two-sample p-value
  size_t n = 0;        // sample sizes
  size_t m = 0;

  // Rejected at significance alpha?
  bool Rejects(double alpha = 0.001) const { return p_value < alpha; }
};

// Two-sample KS test on raw samples.
KsResult KsTest(const std::vector<double>& a, const std::vector<double>& b);

// 1-D Wasserstein distance between empirical distributions given as samples,
// computed on the samples' common domain.
double Wasserstein1D(const std::vector<double>& a, const std::vector<double>& b);

// Maps each trace access / event to a normalized key rank in [0, 1): distinct
// keys are sorted and assigned evenly spaced ranks ("map both empirical
// distributions to the same domain [0, #distinct_keys)", §4). Identity-
// preserving for aggregation: the state key (k, 0) ranks exactly like the
// event key k.
std::vector<double> EventKeyRanks(const std::vector<Event>& events);
std::vector<double> StateKeyRanks(const std::vector<StateAccess>& trace);
std::vector<double> NormalizedRanks(std::vector<uint64_t> values_per_sample);

}  // namespace gadget

#endif  // GADGET_ANALYSIS_STATS_TESTS_H_
