#include "src/analysis/metrics.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/common/rng.h"

namespace gadget {

OpComposition ComputeComposition(const std::vector<StateAccess>& trace) {
  OpComposition c;
  c.total = trace.size();
  if (trace.empty()) {
    return c;
  }
  uint64_t counts[4] = {0, 0, 0, 0};
  for (const StateAccess& a : trace) {
    ++counts[static_cast<int>(a.op)];
  }
  double n = static_cast<double>(trace.size());
  c.get = static_cast<double>(counts[static_cast<int>(OpType::kGet)]) / n;
  c.put = static_cast<double>(counts[static_cast<int>(OpType::kPut)]) / n;
  c.merge = static_cast<double>(counts[static_cast<int>(OpType::kMerge)]) / n;
  c.del = static_cast<double>(counts[static_cast<int>(OpType::kDelete)]) / n;
  return c;
}

Amplification ComputeAmplification(const std::vector<Event>& events,
                                   const std::vector<StateAccess>& trace) {
  Amplification amp;
  uint64_t records = 0;
  std::unordered_set<uint64_t> input_keys;
  for (const Event& e : events) {
    if (!e.is_watermark()) {
      ++records;
      input_keys.insert(e.key);
    }
  }
  std::unordered_set<StateKey, StateKeyHash> state_keys;
  for (const StateAccess& a : trace) {
    state_keys.insert(a.key);
  }
  amp.distinct_input_keys = input_keys.size();
  amp.distinct_state_keys = state_keys.size();
  amp.event_amplification =
      records == 0 ? 0 : static_cast<double>(trace.size()) / static_cast<double>(records);
  amp.key_amplification = input_keys.empty() ? 0
                                             : static_cast<double>(state_keys.size()) /
                                                   static_cast<double>(input_keys.size());
  return amp;
}

double StackDistanceResult::Mean() const {
  if (distances.empty()) {
    return 0;
  }
  double sum = 0;
  for (uint64_t d : distances) {
    sum += static_cast<double>(d);
  }
  return sum / static_cast<double>(distances.size());
}

namespace {

// Fenwick tree over trace positions; a 1 marks the most recent access
// position of some key.
class Fenwick {
 public:
  explicit Fenwick(size_t n) : tree_(n + 1, 0) {}

  void Add(size_t i, int delta) {
    for (size_t x = i + 1; x < tree_.size(); x += x & (~x + 1)) {
      tree_[x] += delta;
    }
  }

  // Sum of [0, i].
  int64_t Prefix(size_t i) const {
    int64_t sum = 0;
    for (size_t x = i + 1; x > 0; x -= x & (~x + 1)) {
      sum += tree_[x];
    }
    return sum;
  }

 private:
  std::vector<int64_t> tree_;
};

}  // namespace

StackDistanceResult ComputeStackDistances(const std::vector<StateAccess>& trace) {
  StackDistanceResult result;
  result.distances.reserve(trace.size());
  Fenwick fen(trace.size());
  std::unordered_map<StateKey, size_t, StateKeyHash> last_pos;
  last_pos.reserve(trace.size() / 4 + 16);
  for (size_t i = 0; i < trace.size(); ++i) {
    const StateKey& key = trace[i].key;
    auto it = last_pos.find(key);
    if (it == last_pos.end()) {
      ++result.cold_misses;
    } else {
      size_t prev = it->second;
      // Distinct keys accessed strictly between prev and i = number of
      // "most recent access" marks in (prev, i).
      int64_t between = fen.Prefix(i > 0 ? i - 1 : 0) - fen.Prefix(prev);
      result.distances.push_back(static_cast<uint64_t>(between));
      fen.Add(prev, -1);
    }
    fen.Add(i, +1);
    last_pos[key] = i;
  }
  return result;
}

std::vector<uint64_t> CountUniqueSequences(const std::vector<StateAccess>& trace, int max_len) {
  std::vector<uint64_t> counts(static_cast<size_t>(max_len), 0);
  const size_t n = trace.size();
  // Pre-hash each key once.
  std::vector<uint64_t> key_hash(n);
  for (size_t i = 0; i < n; ++i) {
    key_hash[i] = StateKeyHash{}(trace[i].key) | 1;  // keep nonzero
  }
  for (int len = 1; len <= max_len; ++len) {
    std::unordered_set<uint64_t> seen;
    if (n >= static_cast<size_t>(len)) {
      seen.reserve(n);
      for (size_t i = 0; i + static_cast<size_t>(len) <= n; ++i) {
        // Order-sensitive polynomial hash of the window.
        uint64_t h = 1469598103934665603ULL;
        for (int j = 0; j < len; ++j) {
          h = (h ^ key_hash[i + static_cast<size_t>(j)]) * 1099511628211ULL;
        }
        seen.insert(h);
      }
    }
    counts[static_cast<size_t>(len - 1)] = seen.size();
  }
  return counts;
}

std::vector<WorkingSetPoint> ComputeWorkingSetTimeline(const std::vector<StateAccess>& trace,
                                                       uint64_t step) {
  std::vector<WorkingSetPoint> timeline;
  if (trace.empty() || step == 0) {
    return timeline;
  }
  std::unordered_map<StateKey, std::pair<size_t, size_t>, StateKeyHash> spans;
  for (size_t i = 0; i < trace.size(); ++i) {
    auto [it, inserted] = spans.try_emplace(trace[i].key, std::make_pair(i, i));
    if (!inserted) {
      it->second.second = i;
    }
  }
  // Difference array: +1 at first access, -1 after last access.
  std::vector<int64_t> delta(trace.size() + 1, 0);
  for (const auto& [key, span] : spans) {
    ++delta[span.first];
    --delta[span.second + 1];
  }
  int64_t active = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    active += delta[i];
    if (i % step == 0) {
      timeline.push_back(WorkingSetPoint{i, static_cast<uint64_t>(active)});
    }
  }
  return timeline;
}

std::vector<uint64_t> ComputeKeyTtls(const std::vector<StateAccess>& trace) {
  std::unordered_map<StateKey, std::pair<size_t, size_t>, StateKeyHash> spans;
  for (size_t i = 0; i < trace.size(); ++i) {
    auto [it, inserted] = spans.try_emplace(trace[i].key, std::make_pair(i, i));
    if (!inserted) {
      it->second.second = i;
    }
  }
  std::vector<uint64_t> ttls;
  ttls.reserve(spans.size());
  for (const auto& [key, span] : spans) {
    ttls.push_back(static_cast<uint64_t>(span.second - span.first));
  }
  return ttls;
}

uint64_t PercentileOf(std::vector<uint64_t> values, double p) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  size_t idx = static_cast<size_t>(rank);
  return values[std::min(idx, values.size() - 1)];
}

std::vector<StateAccess> ShuffleTrace(const std::vector<StateAccess>& trace, uint64_t seed) {
  std::vector<StateAccess> out = trace;
  Pcg32 rng(seed, /*stream=*/41);
  for (size_t i = out.size(); i > 1; --i) {
    size_t j = rng.NextBounded64(i);
    std::swap(out[i - 1], out[j]);
  }
  return out;
}

}  // namespace gadget
