// Trace analytics implementing every metric of the characterization study
// (§3.2): workload composition, event & keyspace amplification, temporal
// locality (LRU stack distances), spatial locality (unique key sequences),
// working-set-size evolution, and key TTL.
#ifndef GADGET_ANALYSIS_METRICS_H_
#define GADGET_ANALYSIS_METRICS_H_

#include <cstdint>
#include <vector>

#include "src/streams/event.h"
#include "src/streams/state_access.h"

namespace gadget {

// ------------------------------------------------------------- composition

struct OpComposition {
  uint64_t total = 0;
  double get = 0;
  double put = 0;
  double merge = 0;
  double del = 0;
};

OpComposition ComputeComposition(const std::vector<StateAccess>& trace);

// ------------------------------------------------------------ amplification

struct Amplification {
  // State requests per input event (§3.2.2).
  double event_amplification = 0;
  // Distinct state keys over distinct input keys.
  double key_amplification = 0;
  uint64_t distinct_input_keys = 0;
  uint64_t distinct_state_keys = 0;
};

Amplification ComputeAmplification(const std::vector<Event>& events,
                                   const std::vector<StateAccess>& trace);

// -------------------------------------------------------- temporal locality

struct StackDistanceResult {
  // One entry per re-access: the number of distinct keys touched since the
  // previous access to the same key (LRU stack distance).
  std::vector<uint64_t> distances;
  uint64_t cold_misses = 0;  // first accesses (infinite distance)

  double Mean() const;
};

// O(n log n) via a Fenwick tree over access positions.
StackDistanceResult ComputeStackDistances(const std::vector<StateAccess>& trace);

// --------------------------------------------------------- spatial locality

// counts[l-1] = number of distinct key sequences of length l (1 <= l <=
// max_len) in the trace's key sequence. Lower counts = higher spatial
// locality (§3.2.3).
std::vector<uint64_t> CountUniqueSequences(const std::vector<StateAccess>& trace, int max_len);

// -------------------------------------------------------------- working set

struct WorkingSetPoint {
  uint64_t op_index;
  uint64_t active_keys;  // keys with first access <= i and last access >= i
};

// Samples the working key set every `step` operations (§3.2.3 uses 100).
std::vector<WorkingSetPoint> ComputeWorkingSetTimeline(const std::vector<StateAccess>& trace,
                                                       uint64_t step);

// ---------------------------------------------------------------------- TTL

// Per distinct key: timesteps (trace positions) between first and last
// access. Keys accessed once have TTL 0.
std::vector<uint64_t> ComputeKeyTtls(const std::vector<StateAccess>& trace);

// Percentile over a vector (p in [0,100]); returns 0 on empty input.
uint64_t PercentileOf(std::vector<uint64_t> values, double p);

// --------------------------------------------------------------- shuffling

// Random permutation of the trace (preserves key popularity, destroys
// ordering) — the paper's "shuffled" baseline.
std::vector<StateAccess> ShuffleTrace(const std::vector<StateAccess>& trace, uint64_t seed);

}  // namespace gadget

#endif  // GADGET_ANALYSIS_METRICS_H_
