// Cache modeling built on the locality metrics — the §8 opportunities made
// executable:
//
//  * MissRatioCurve: LRU miss ratio as a function of cache size, derived
//    directly from the stack distance distribution (Mattson et al. 1970,
//    §3.2.3: stack distances "can directly estimate the cache miss ratio for
//    a given cache size"). Drives automatic cache sizing for state stores.
//
//  * PrefetchSimulator: a next-key predictor trained on the trace's key
//    sequences (the spatial-locality structure of §3.2.3) that measures how
//    many accesses a sequence-based prefetcher would have served — the
//    paper's "our spatial locality findings can guide the design of novel
//    prefetching mechanisms".
#ifndef GADGET_ANALYSIS_CACHE_MODEL_H_
#define GADGET_ANALYSIS_CACHE_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/streams/state_access.h"

namespace gadget {

struct MissRatioPoint {
  uint64_t cache_entries;  // cache size in distinct entries
  double miss_ratio;       // fraction of ALL accesses that miss
};

// Exact LRU miss-ratio curve sampled at the given cache sizes. An access
// hits iff its stack distance < cache size; cold misses always miss.
std::vector<MissRatioPoint> ComputeMissRatioCurve(const std::vector<StateAccess>& trace,
                                                  const std::vector<uint64_t>& cache_sizes);

// Smallest sampled cache size achieving at most `target_miss_ratio`, or 0 if
// none does. `granularity` controls the geometric sampling density.
uint64_t RecommendCacheSize(const std::vector<StateAccess>& trace, double target_miss_ratio,
                            double granularity = 1.3);

struct PrefetchResult {
  uint64_t accesses = 0;
  uint64_t predicted = 0;     // accesses whose key the predictor had ready
  uint64_t cold = 0;          // first-ever context, nothing to predict from
  double hit_fraction() const {
    return accesses == 0 ? 0 : static_cast<double>(predicted) / static_cast<double>(accesses);
  }
};

// First-order Markov next-key predictor with `slots` candidates per context:
// after observing key K, prefetch the `slots` most recent successors of K.
// A trace with strong spatial locality (few unique sequences) scores high;
// a shuffled trace scores near zero.
PrefetchResult SimulatePrefetch(const std::vector<StateAccess>& trace, int slots = 2);

}  // namespace gadget

#endif  // GADGET_ANALYSIS_CACHE_MODEL_H_
