#include "src/ycsb/ycsb.h"

#include "src/common/rng.h"
#include "src/distgen/distribution.h"

namespace gadget {

YcsbOptions YcsbWorkloadA() {
  YcsbOptions o;
  o.read_proportion = 0.5;
  o.update_proportion = 0.5;
  o.request_distribution = "zipfian";
  return o;
}

YcsbOptions YcsbWorkloadD() {
  YcsbOptions o;
  o.read_proportion = 0.95;
  o.update_proportion = 0.0;
  o.insert_proportion = 0.05;
  o.request_distribution = "latest";
  return o;
}

YcsbOptions YcsbWorkloadF() {
  YcsbOptions o;
  o.read_proportion = 0.5;
  o.update_proportion = 0.0;
  o.rmw_proportion = 0.5;
  o.request_distribution = "zipfian";
  return o;
}

StatusOr<YcsbWorkload> GenerateYcsb(const YcsbOptions& options) {
  double total = options.read_proportion + options.update_proportion +
                 options.insert_proportion + options.rmw_proportion;
  if (total <= 0.0 || total > 1.0 + 1e-9) {
    return Status::InvalidArgument("YCSB proportions must sum to 1");
  }
  if (options.record_count == 0) {
    return Status::InvalidArgument("record_count must be positive");
  }
  auto dist =
      CreateDistribution(options.request_distribution, options.record_count, options.seed);
  if (!dist.ok()) {
    return dist.status();
  }

  YcsbWorkload workload;
  workload.load.reserve(options.record_count);
  for (uint64_t i = 0; i < options.record_count; ++i) {
    workload.load.push_back(
        StateAccess{OpType::kPut, StateKey{i, 0}, options.value_size, i});
  }

  Pcg32 rng(options.seed ^ 0x9c5b, /*stream=*/31);
  uint64_t frontier = options.record_count;  // next key to insert
  workload.run.reserve(options.operation_count);
  for (uint64_t i = 0; i < options.operation_count; ++i) {
    double dice = rng.NextDouble() * total;
    uint64_t t = options.record_count + i;
    if (dice < options.read_proportion) {
      workload.run.push_back(StateAccess{OpType::kGet, StateKey{(*dist)->Next(), 0}, 0, t});
    } else if (dice < options.read_proportion + options.update_proportion) {
      workload.run.push_back(
          StateAccess{OpType::kPut, StateKey{(*dist)->Next(), 0}, options.value_size, t});
    } else if (dice <
               options.read_proportion + options.update_proportion + options.insert_proportion) {
      // Inserts extend the key space; the request distribution tracks the
      // frontier (relevant for "latest").
      workload.run.push_back(
          StateAccess{OpType::kPut, StateKey{frontier, 0}, options.value_size, t});
      ++frontier;
      (*dist)->GrowDomain(frontier);
    } else {
      // Read-modify-write: YCSB issues a read followed by an update of the
      // same key.
      uint64_t key = (*dist)->Next();
      workload.run.push_back(StateAccess{OpType::kGet, StateKey{key, 0}, 0, t});
      workload.run.push_back(
          StateAccess{OpType::kPut, StateKey{key, 0}, options.value_size, t});
    }
  }
  return workload;
}

}  // namespace gadget
