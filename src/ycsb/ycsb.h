// C++ reimplementation of the YCSB core workload generator (§4, §6.2, §6.3).
//
// Produces traces in the same StateAccess format as Gadget and flinklet so
// the one replayer and one analysis toolkit serve all three. Supports the
// request distributions the paper sweeps (uniform, zipfian, hotspot,
// sequential, exponential, latest) and the core workloads used in Fig. 12:
// A (50/50 read-update), D (read latest), F (read-modify-write).
//
// Like YCSB (and unlike streaming workloads): records are preloaded in a
// load phase, inserted keys are never reused, and there are no deletes (§4).
#ifndef GADGET_YCSB_YCSB_H_
#define GADGET_YCSB_YCSB_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/streams/state_access.h"

namespace gadget {

struct YcsbOptions {
  uint64_t record_count = 1'000;       // preloaded distinct keys
  uint64_t operation_count = 100'000;  // run-phase operations
  double read_proportion = 0.5;
  double update_proportion = 0.5;
  double insert_proportion = 0.0;
  double rmw_proportion = 0.0;  // read-modify-write (workload F)
  std::string request_distribution = "zipfian";
  uint32_t value_size = 256;
  uint64_t seed = 1;
};

struct YcsbWorkload {
  std::vector<StateAccess> load;  // record_count inserts
  std::vector<StateAccess> run;   // operation_count requests
};

// Presets matching the YCSB core workloads used in Fig. 12.
YcsbOptions YcsbWorkloadA();  // 50% read / 50% update, zipfian
YcsbOptions YcsbWorkloadD();  // 95% read / 5% insert, latest
YcsbOptions YcsbWorkloadF();  // 50% read / 50% read-modify-write, zipfian

StatusOr<YcsbWorkload> GenerateYcsb(const YcsbOptions& options);

}  // namespace gadget

#endif  // GADGET_YCSB_YCSB_H_
