// The state-access record shared by the whole harness.
//
// §2.3 defines a state access as a = (p, k, v, t). One record format is used
// by (i) flinklet's instrumented state backend ("real" traces), (ii) Gadget's
// workload generator, and (iii) the YCSB generator, so a single replayer and
// a single analysis toolkit serve all three.
//
// State keys are 128-bit (hi, lo) pairs: `hi` typically carries the event key
// and `lo` a window/timestamp discriminator (the W-ID strategy uses window
// boundary timestamps as state keys, §3.2.2). EncodeKey produces a 16-byte
// big-endian string whose lexicographic order equals (hi, lo) numeric order,
// which keeps ordered stores (LSM, B+tree) meaningful.
#ifndef GADGET_STREAMS_STATE_ACCESS_H_
#define GADGET_STREAMS_STATE_ACCESS_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace gadget {

enum class OpType : uint8_t {
  kGet = 0,
  kPut = 1,
  kMerge = 2,
  kDelete = 3,
};

inline const char* OpTypeName(OpType op) {
  switch (op) {
    case OpType::kGet:
      return "GET";
    case OpType::kPut:
      return "PUT";
    case OpType::kMerge:
      return "MERGE";
    case OpType::kDelete:
      return "DELETE";
  }
  return "?";
}

struct StateKey {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend bool operator==(const StateKey&, const StateKey&) = default;
  friend auto operator<=>(const StateKey&, const StateKey&) = default;
};

struct StateKeyHash {
  size_t operator()(const StateKey& k) const {
    uint64_t h = k.hi * 0x9e3779b97f4a7c15ULL;
    h ^= k.lo + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

struct StateAccess {
  OpType op = OpType::kGet;
  StateKey key;
  uint32_t value_size = 0;  // bytes written (0 for get/delete)
  uint64_t timestamp = 0;   // logical time of the operation (ms)
};

// 16-byte big-endian encoding, order-preserving. The *To variant reuses the
// caller's buffer so hot replay loops avoid a heap allocation per operation
// (16 bytes exceeds libstdc++'s SSO capacity).
inline void EncodeStateKeyTo(const StateKey& k, std::string* out) {
  out->resize(16);
  uint64_t hi = k.hi;
  uint64_t lo = k.lo;
  if constexpr (std::endian::native == std::endian::little) {
    hi = __builtin_bswap64(hi);
    lo = __builtin_bswap64(lo);
  }
  std::memcpy(out->data(), &hi, 8);
  std::memcpy(out->data() + 8, &lo, 8);
}

inline std::string EncodeStateKey(const StateKey& k) {
  std::string out;
  EncodeStateKeyTo(k, &out);
  return out;
}

inline StateKey DecodeStateKey(std::string_view s) {
  StateKey k;
  if (s.size() < 16) {
    return k;
  }
  for (int i = 0; i < 8; ++i) {
    k.hi = (k.hi << 8) | static_cast<uint8_t>(s[i]);
    k.lo = (k.lo << 8) | static_cast<uint8_t>(s[8 + i]);
  }
  return k;
}

}  // namespace gadget

#endif  // GADGET_STREAMS_STATE_ACCESS_H_
