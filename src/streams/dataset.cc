#include "src/streams/dataset.h"

#include <algorithm>
#include <cmath>

#include "src/distgen/arrival.h"
#include "src/distgen/distribution.h"

namespace gadget {

// ------------------------------------------------------------ SimulatedDataset

bool SimulatedDataset::Next(Event* out) {
  if (emitted_ >= max_events_) {
    return false;
  }
  // An event is only safe to emit once the arrival clock (frontier) has
  // passed it: every future Refill pushes events at or after the frontier.
  while (!exhausted_ && (heap_.empty() || heap_.top().event_time_ms > frontier_ms_)) {
    if (!Refill()) {
      exhausted_ = true;
    }
  }
  if (heap_.empty()) {
    return false;
  }
  *out = heap_.top();
  heap_.pop();
  ++emitted_;
  return true;
}

// ----------------------------------------------------------------------- Borg

namespace {

class BorgGenerator : public SimulatedDataset {
 public:
  explicit BorgGenerator(const BorgOptions& opts)
      : SimulatedDataset(opts.max_events),
        opts_(opts),
        rng_(opts.seed, /*stream=*/11),
        arrivals_(opts.job_rate_per_sec * 4.0, opts.job_rate_per_sec / 4.0, 10'000.0, 10'000.0,
                  opts.seed ^ 0xb0b) {}

  const char* name() const override { return "borg"; }
  int num_streams() const override { return 2; }

 protected:
  bool Refill() override {
    // One job submission per refill: submit event plus the full task
    // lifecycle pushed into the future.
    clock_ms_ += arrivals_.NextGap();
    SetFrontier(clock_ms_);
    uint64_t job_id = next_job_id_++;

    Event submit;
    submit.stream_id = 0;
    submit.event_time_ms = clock_ms_;
    submit.key = job_id;
    submit.value_size = opts_.value_size;
    submit.attr = event_attr::kBorgJobSubmit;
    Push(submit);

    // Geometric task count with the configured mean (>= 1).
    double p = 1.0 / opts_.mean_tasks_per_job;
    uint64_t tasks = 1;
    while (rng_.NextDouble() > p && tasks < 2000) {
      ++tasks;
    }

    uint64_t job_end = clock_ms_;
    for (uint64_t t = 0; t < tasks; ++t) {
      // Tasks are scheduled in a short burst after submission.
      uint64_t sched = clock_ms_ + 10 + rng_.NextBounded(5'000);
      double dur_s = rng_.NextExponential(1.0 / opts_.mean_task_duration_s);
      uint64_t finish = sched + static_cast<uint64_t>(dur_s * 1000.0) + 1;
      job_end = std::max(job_end, finish);

      Event sch;
      sch.stream_id = 1;
      sch.event_time_ms = sched;
      sch.key = job_id;
      sch.value_size = opts_.value_size;
      sch.attr = event_attr::kBorgTaskSchedule;
      Push(sch);

      Event fin = sch;
      fin.event_time_ms = finish;
      fin.attr = event_attr::kBorgTaskFinish;
      Push(fin);
    }

    Event done;
    done.stream_id = 0;
    done.event_time_ms = job_end + 1;
    done.key = job_id;
    done.value_size = opts_.value_size;
    done.attr = event_attr::kBorgJobFinish;
    // Continuous-join semantics: the job-finish event closes the key's
    // validity interval (paper: "state cleanup per job completed").
    done.expiry_time_ms = job_end + 1;
    Push(done);
    return true;
  }

 private:
  BorgOptions opts_;
  Pcg32 rng_;
  BurstyArrival arrivals_;
  uint64_t clock_ms_ = 0;
  uint64_t next_job_id_ = 1;
};

// ----------------------------------------------------------------------- Taxi

class TaxiGenerator : public SimulatedDataset {
 public:
  explicit TaxiGenerator(const TaxiOptions& opts)
      : SimulatedDataset(opts.max_events),
        opts_(opts),
        rng_(opts.seed, /*stream=*/12),
        arrivals_(opts.pickup_rate_per_sec, opts.seed ^ 0x7a1),
        medallion_dist_(opts.num_medallions, opts.seed ^ 0x7a2, /*theta=*/0.8) {}

  const char* name() const override { return "taxi"; }
  int num_streams() const override { return 2; }

 protected:
  bool Refill() override {
    clock_ms_ += arrivals_.NextGap();
    SetFrontier(clock_ms_);
    uint64_t medallion = medallion_dist_.Next();

    double dur_s = rng_.NextExponential(1.0 / opts_.mean_ride_duration_s);
    uint64_t dropoff = clock_ms_ + static_cast<uint64_t>(dur_s * 1000.0) + 60'000;

    Event pickup;
    pickup.stream_id = 0;
    pickup.event_time_ms = clock_ms_;
    pickup.key = medallion;
    pickup.value_size = opts_.value_size;
    pickup.attr = event_attr::kTaxiPickup;
    Push(pickup);

    Event drop = pickup;
    drop.event_time_ms = dropoff;
    drop.attr = event_attr::kTaxiDropoff;
    drop.expiry_time_ms = dropoff;  // drop-off closes the ride's validity
    Push(drop);

    // Fare events arrive during the ride on the second stream (paper query:
    // total fare events for a shared ride before the drop-off timestamp).
    if (rng_.NextDouble() < opts_.fares_per_trip) {
      Event fare;
      fare.stream_id = 1;
      fare.event_time_ms = clock_ms_ + rng_.NextBounded64(dropoff - clock_ms_);
      fare.key = medallion;
      fare.value_size = opts_.value_size;
      fare.attr = event_attr::kTaxiFare;
      Push(fare);
    }
    return true;
  }

 private:
  TaxiOptions opts_;
  Pcg32 rng_;
  PoissonArrival arrivals_;
  ZipfianDistribution medallion_dist_;
  uint64_t clock_ms_ = 0;
};

// ---------------------------------------------------------------------- Azure

class AzureGenerator : public SimulatedDataset {
 public:
  explicit AzureGenerator(const AzureOptions& opts)
      : SimulatedDataset(opts.max_events),
        opts_(opts),
        rng_(opts.seed, /*stream=*/13),
        arrivals_(opts.create_rate_per_sec, opts.seed ^ 0xa2e),
        subscription_dist_(opts.num_subscriptions, opts.seed ^ 0xa2f, opts.zipf_theta) {}

  const char* name() const override { return "azure"; }
  int num_streams() const override { return 1; }

 protected:
  bool Refill() override {
    clock_ms_ += arrivals_.NextGap();
    SetFrontier(clock_ms_);
    uint64_t sub = subscription_dist_.Next();

    double life_s = rng_.NextExponential(1.0 / opts_.mean_vm_lifetime_s);
    uint64_t deleted = clock_ms_ + static_cast<uint64_t>(life_s * 1000.0) + 1000;

    Event create;
    create.stream_id = 0;
    create.event_time_ms = clock_ms_;
    create.key = sub;
    create.value_size = opts_.value_size;
    create.attr = event_attr::kAzureVmCreate;
    Push(create);

    Event del = create;
    del.event_time_ms = deleted;
    del.attr = event_attr::kAzureVmDelete;
    del.expiry_time_ms = deleted;
    Push(del);
    return true;
  }

 private:
  AzureOptions opts_;
  Pcg32 rng_;
  PoissonArrival arrivals_;
  ZipfianDistribution subscription_dist_;
  uint64_t clock_ms_ = 0;
};

}  // namespace

std::unique_ptr<DatasetGenerator> MakeBorgGenerator(const BorgOptions& opts) {
  return std::make_unique<BorgGenerator>(opts);
}

std::unique_ptr<DatasetGenerator> MakeTaxiGenerator(const TaxiOptions& opts) {
  return std::make_unique<TaxiGenerator>(opts);
}

std::unique_ptr<DatasetGenerator> MakeAzureGenerator(const AzureOptions& opts) {
  return std::make_unique<AzureGenerator>(opts);
}

StatusOr<std::unique_ptr<DatasetGenerator>> MakeDataset(const std::string& name,
                                                        uint64_t max_events, uint64_t seed) {
  if (name == "borg") {
    BorgOptions o;
    o.max_events = max_events;
    o.seed = seed;
    return MakeBorgGenerator(o);
  }
  if (name == "taxi") {
    TaxiOptions o;
    o.max_events = max_events;
    o.seed = seed;
    return MakeTaxiGenerator(o);
  }
  if (name == "azure") {
    AzureOptions o;
    o.max_events = max_events;
    o.seed = seed;
    return MakeAzureGenerator(o);
  }
  return Status::InvalidArgument("unknown dataset: " + name);
}

std::vector<Event> CollectEvents(DatasetGenerator& gen) {
  std::vector<Event> out;
  Event e;
  while (gen.Next(&e)) {
    out.push_back(e);
  }
  return out;
}

}  // namespace gadget
