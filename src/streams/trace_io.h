// Binary trace files for event streams and state-access streams.
//
// Gadget's offline mode stores generated streams for later replay (§5).
// Format (both kinds): a fixed header (magic, version, record count) followed
// by varint-delta-encoded records, CRC32C over the body appended at the end.
#ifndef GADGET_STREAMS_TRACE_IO_H_
#define GADGET_STREAMS_TRACE_IO_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/file_util.h"
#include "src/common/status.h"
#include "src/streams/event.h"
#include "src/streams/state_access.h"

namespace gadget {

// ------------------------------------------------------------- event traces

class EventTraceWriter {
 public:
  static StatusOr<std::unique_ptr<EventTraceWriter>> Create(const std::string& path);

  Status Append(const Event& e);
  // Finalizes the header/trailer. Must be called before reading the file.
  Status Finish();

  uint64_t count() const { return count_; }

 private:
  explicit EventTraceWriter(std::unique_ptr<WritableFile> file);

  std::unique_ptr<WritableFile> file_;
  std::string buf_;
  uint64_t count_ = 0;
  uint64_t prev_time_ = 0;
  uint32_t crc_ = 0;
  std::string path_;
};

class EventTraceReader {
 public:
  static StatusOr<std::unique_ptr<EventTraceReader>> Open(const std::string& path);

  // Returns false at end of trace; Status covers corruption.
  StatusOr<bool> Next(Event* out);

  uint64_t count() const { return count_; }

 private:
  EventTraceReader(std::string body, uint64_t count);

  std::string body_;
  const char* pos_;
  const char* end_;
  uint64_t count_;
  uint64_t read_ = 0;
  uint64_t prev_time_ = 0;
};

// ------------------------------------------------------ state-access traces

class AccessTraceWriter {
 public:
  static StatusOr<std::unique_ptr<AccessTraceWriter>> Create(const std::string& path);

  Status Append(const StateAccess& a);
  Status Finish();

  uint64_t count() const { return count_; }

 private:
  explicit AccessTraceWriter(std::unique_ptr<WritableFile> file);

  std::unique_ptr<WritableFile> file_;
  std::string buf_;
  uint64_t count_ = 0;
  uint64_t prev_time_ = 0;
  uint32_t crc_ = 0;
};

class AccessTraceReader {
 public:
  static StatusOr<std::unique_ptr<AccessTraceReader>> Open(const std::string& path);

  StatusOr<bool> Next(StateAccess* out);

  uint64_t count() const { return count_; }

 private:
  AccessTraceReader(std::string body, uint64_t count);

  std::string body_;
  const char* pos_;
  const char* end_;
  uint64_t count_;
  uint64_t read_ = 0;
  uint64_t prev_time_ = 0;
};

// Convenience: read a whole access trace into memory.
StatusOr<std::vector<StateAccess>> ReadAccessTrace(const std::string& path);
// Convenience: write a whole access trace.
Status WriteAccessTrace(const std::string& path, const std::vector<StateAccess>& trace);

}  // namespace gadget

#endif  // GADGET_STREAMS_TRACE_IO_H_
