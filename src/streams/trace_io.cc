#include "src/streams/trace_io.h"

#include <cstring>

#include "src/common/coding.h"
#include "src/common/crc32c.h"

namespace gadget {
namespace {

constexpr uint32_t kEventMagic = 0x47455654;   // "GEVT"
constexpr uint32_t kAccessMagic = 0x47414343;  // "GACC"
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderSize = 4 + 4 + 8;  // magic + version + count

std::string MakeHeader(uint32_t magic, uint64_t count) {
  std::string h;
  PutFixed32(&h, magic);
  PutFixed32(&h, kVersion);
  PutFixed64(&h, count);
  return h;
}

// Reads the file, validates header/CRC, returns the record body and count.
// `min_record_bytes` is the smallest encodable record for the trace kind: a
// header `count` that could not fit in the body is rejected up front, so
// downstream `reserve(count)` calls never turn a 20-byte file into a
// multi-gigabyte allocation.
StatusOr<std::pair<std::string, uint64_t>> LoadBody(const std::string& path, uint32_t magic,
                                                    uint64_t min_record_bytes) {
  std::string data;
  GADGET_RETURN_IF_ERROR(ReadFileToString(path, &data));
  if (data.size() < kHeaderSize + 4) {
    return Status::Corruption("trace file too small: " + path);
  }
  if (DecodeFixed32(data.data()) != magic) {
    return Status::Corruption("bad trace magic in " + path);
  }
  if (DecodeFixed32(data.data() + 4) != kVersion) {
    return Status::Corruption("unsupported trace version in " + path);
  }
  uint64_t count = DecodeFixed64(data.data() + 8);
  size_t body_len = data.size() - kHeaderSize - 4;
  uint32_t stored_crc = UnmaskCrc(DecodeFixed32(data.data() + data.size() - 4));
  uint32_t actual_crc = Crc32c(0, data.data() + kHeaderSize, body_len);
  if (stored_crc != actual_crc) {
    return Status::Corruption("trace body checksum mismatch in " + path);
  }
  if (count > body_len / min_record_bytes) {
    return Status::Corruption("trace count exceeds body in " + path);
  }
  return std::make_pair(data.substr(kHeaderSize, body_len), count);
}

}  // namespace

// ----------------------------------------------------------- EventTraceWriter

EventTraceWriter::EventTraceWriter(std::unique_ptr<WritableFile> file)
    : file_(std::move(file)) {}

StatusOr<std::unique_ptr<EventTraceWriter>> EventTraceWriter::Create(const std::string& path) {
  auto file = WritableFile::Create(path);
  if (!file.ok()) {
    return file.status();
  }
  auto w = std::unique_ptr<EventTraceWriter>(new EventTraceWriter(std::move(*file)));
  // Placeholder header; rewritten via Finish() by writing a sidecar-free
  // format: we buffer header space with zeros and patch on Finish by
  // re-creating the file. To keep it simple and robust we instead write the
  // body to a .tmp and assemble on Finish.
  return w;
}

Status EventTraceWriter::Append(const Event& e) {
  buf_.clear();
  buf_.push_back(static_cast<char>(e.kind));
  buf_.push_back(static_cast<char>(e.stream_id));
  // Times are non-decreasing in generated traces but not guaranteed
  // (out-of-order events), so encode a zigzag delta.
  int64_t delta = static_cast<int64_t>(e.event_time_ms) - static_cast<int64_t>(prev_time_);
  uint64_t zz = (static_cast<uint64_t>(delta) << 1) ^ static_cast<uint64_t>(delta >> 63);
  PutVarint64(&buf_, zz);
  prev_time_ = e.event_time_ms;
  PutVarint64(&buf_, e.key);
  PutVarint32(&buf_, e.value_size);
  PutVarint32(&buf_, e.attr);
  PutVarint64(&buf_, e.expiry_time_ms);
  crc_ = Crc32c(crc_, buf_.data(), buf_.size());
  ++count_;
  return file_->Append(buf_);
}

Status EventTraceWriter::Finish() {
  // The body was written after a to-be-patched header... but WritableFile is
  // append-only. Instead, the Create path wrote no header; we now prepend it
  // by rewriting the file. Traces are bounded by available disk, and this
  // happens once per trace, so the extra copy is acceptable and keeps
  // WritableFile simple.
  GADGET_RETURN_IF_ERROR(file_->Close());
  const std::string path = file_->path();
  std::string body;
  GADGET_RETURN_IF_ERROR(ReadFileToString(path, &body));
  std::string out = MakeHeader(kEventMagic, count_);
  out += body;
  std::string crc;
  PutFixed32(&crc, MaskCrc(Crc32c(0, body.data(), body.size())));
  out += crc;
  return WriteStringToFile(path, out, /*sync=*/true);
}

// ----------------------------------------------------------- EventTraceReader

EventTraceReader::EventTraceReader(std::string body, uint64_t count)
    : body_(std::move(body)), count_(count) {
  pos_ = body_.data();
  end_ = body_.data() + body_.size();
}

StatusOr<std::unique_ptr<EventTraceReader>> EventTraceReader::Open(const std::string& path) {
  // kind + stream_id + five varints (>= 1 byte each).
  auto body = LoadBody(path, kEventMagic, /*min_record_bytes=*/7);
  if (!body.ok()) {
    return body.status();
  }
  return std::unique_ptr<EventTraceReader>(
      new EventTraceReader(std::move(body->first), body->second));
}

StatusOr<bool> EventTraceReader::Next(Event* out) {
  if (read_ >= count_) {
    return false;
  }
  if (pos_ + 2 > end_) {
    return Status::Corruption("truncated event record");
  }
  out->kind = static_cast<EventKind>(*pos_++);
  out->stream_id = static_cast<uint8_t>(*pos_++);
  uint64_t zz = 0;
  pos_ = GetVarint64(pos_, end_, &zz);
  if (pos_ == nullptr) {
    return Status::Corruption("bad event time varint");
  }
  int64_t delta = static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
  out->event_time_ms = static_cast<uint64_t>(static_cast<int64_t>(prev_time_) + delta);
  prev_time_ = out->event_time_ms;
  uint64_t key = 0;
  uint32_t vsize = 0, attr = 0;
  uint64_t expiry = 0;
  pos_ = GetVarint64(pos_, end_, &key);
  if (pos_ != nullptr) {
    pos_ = GetVarint32(pos_, end_, &vsize);
  }
  if (pos_ != nullptr) {
    pos_ = GetVarint32(pos_, end_, &attr);
  }
  if (pos_ != nullptr) {
    pos_ = GetVarint64(pos_, end_, &expiry);
  }
  if (pos_ == nullptr) {
    return Status::Corruption("bad event record fields");
  }
  out->key = key;
  out->value_size = vsize;
  out->attr = attr;
  out->expiry_time_ms = expiry;
  ++read_;
  return true;
}

// ---------------------------------------------------------- AccessTraceWriter

AccessTraceWriter::AccessTraceWriter(std::unique_ptr<WritableFile> file)
    : file_(std::move(file)) {}

StatusOr<std::unique_ptr<AccessTraceWriter>> AccessTraceWriter::Create(const std::string& path) {
  auto file = WritableFile::Create(path);
  if (!file.ok()) {
    return file.status();
  }
  return std::unique_ptr<AccessTraceWriter>(new AccessTraceWriter(std::move(*file)));
}

Status AccessTraceWriter::Append(const StateAccess& a) {
  buf_.clear();
  buf_.push_back(static_cast<char>(a.op));
  PutVarint64(&buf_, a.key.hi);
  PutVarint64(&buf_, a.key.lo);
  PutVarint32(&buf_, a.value_size);
  int64_t delta = static_cast<int64_t>(a.timestamp) - static_cast<int64_t>(prev_time_);
  uint64_t zz = (static_cast<uint64_t>(delta) << 1) ^ static_cast<uint64_t>(delta >> 63);
  PutVarint64(&buf_, zz);
  prev_time_ = a.timestamp;
  crc_ = Crc32c(crc_, buf_.data(), buf_.size());
  ++count_;
  return file_->Append(buf_);
}

Status AccessTraceWriter::Finish() {
  GADGET_RETURN_IF_ERROR(file_->Close());
  const std::string path = file_->path();
  std::string body;
  GADGET_RETURN_IF_ERROR(ReadFileToString(path, &body));
  std::string out = MakeHeader(kAccessMagic, count_);
  out += body;
  std::string crc;
  PutFixed32(&crc, MaskCrc(Crc32c(0, body.data(), body.size())));
  out += crc;
  return WriteStringToFile(path, out, /*sync=*/true);
}

// ---------------------------------------------------------- AccessTraceReader

AccessTraceReader::AccessTraceReader(std::string body, uint64_t count)
    : body_(std::move(body)), count_(count) {
  pos_ = body_.data();
  end_ = body_.data() + body_.size();
}

StatusOr<std::unique_ptr<AccessTraceReader>> AccessTraceReader::Open(const std::string& path) {
  // op + four varints (>= 1 byte each).
  auto body = LoadBody(path, kAccessMagic, /*min_record_bytes=*/5);
  if (!body.ok()) {
    return body.status();
  }
  return std::unique_ptr<AccessTraceReader>(
      new AccessTraceReader(std::move(body->first), body->second));
}

StatusOr<bool> AccessTraceReader::Next(StateAccess* out) {
  if (read_ >= count_) {
    return false;
  }
  if (pos_ >= end_) {
    return Status::Corruption("truncated access record");
  }
  out->op = static_cast<OpType>(*pos_++);
  pos_ = GetVarint64(pos_, end_, &out->key.hi);
  if (pos_ != nullptr) {
    pos_ = GetVarint64(pos_, end_, &out->key.lo);
  }
  if (pos_ != nullptr) {
    pos_ = GetVarint32(pos_, end_, &out->value_size);
  }
  uint64_t zz = 0;
  if (pos_ != nullptr) {
    pos_ = GetVarint64(pos_, end_, &zz);
  }
  if (pos_ == nullptr) {
    return Status::Corruption("bad access record fields");
  }
  int64_t delta = static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
  out->timestamp = static_cast<uint64_t>(static_cast<int64_t>(prev_time_) + delta);
  prev_time_ = out->timestamp;
  ++read_;
  return true;
}

// ------------------------------------------------------------- conveniences

StatusOr<std::vector<StateAccess>> ReadAccessTrace(const std::string& path) {
  auto reader = AccessTraceReader::Open(path);
  if (!reader.ok()) {
    return reader.status();
  }
  std::vector<StateAccess> out;
  out.reserve((*reader)->count());
  StateAccess a;
  for (;;) {
    auto more = (*reader)->Next(&a);
    if (!more.ok()) {
      return more.status();
    }
    if (!*more) {
      break;
    }
    out.push_back(a);
  }
  return out;
}

Status WriteAccessTrace(const std::string& path, const std::vector<StateAccess>& trace) {
  auto writer = AccessTraceWriter::Create(path);
  if (!writer.ok()) {
    return writer.status();
  }
  for (const StateAccess& a : trace) {
    GADGET_RETURN_IF_ERROR((*writer)->Append(a));
  }
  return (*writer)->Finish();
}

}  // namespace gadget
