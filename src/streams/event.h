// Input-stream event model.
//
// Events carry 64-bit event-time timestamps in milliseconds (§5.1: Gadget
// assigns 64-bit timestamps that can be replayed at different time units).
// The `kind` distinguishes data records from watermarks; `stream_id` selects
// the input of two-input (join) operators.
#ifndef GADGET_STREAMS_EVENT_H_
#define GADGET_STREAMS_EVENT_H_

#include <cstdint>

namespace gadget {

enum class EventKind : uint8_t {
  kRecord = 0,
  kWatermark = 1,
};

struct Event {
  EventKind kind = EventKind::kRecord;
  uint8_t stream_id = 0;        // 0 or 1 (two-input operators)
  uint64_t event_time_ms = 0;   // event time (watermark time for watermarks)
  uint64_t key = 0;             // jobID / medallionID / subscriptionID / ...
  uint32_t value_size = 0;      // payload size in bytes (content is synthetic)
  uint32_t attr = 0;            // dataset-specific attribute (see below)
  uint64_t expiry_time_ms = 0;  // validity deadline; 0 = none (continuous join)

  static Event Watermark(uint64_t t) {
    Event e;
    e.kind = EventKind::kWatermark;
    e.event_time_ms = t;
    return e;
  }

  bool is_watermark() const { return kind == EventKind::kWatermark; }
};

// Values of Event::attr used by the synthetic datasets. Operators that do not
// care about dataset semantics ignore attr entirely.
namespace event_attr {
// Borg (cluster trace): job/task lifecycle.
inline constexpr uint32_t kBorgJobSubmit = 0;
inline constexpr uint32_t kBorgTaskSchedule = 1;
inline constexpr uint32_t kBorgTaskFinish = 2;
inline constexpr uint32_t kBorgJobFinish = 3;
// Taxi (TLC trip records): trips and fares.
inline constexpr uint32_t kTaxiPickup = 10;
inline constexpr uint32_t kTaxiDropoff = 11;
inline constexpr uint32_t kTaxiFare = 12;
// Azure (VM trace): VM lifecycle.
inline constexpr uint32_t kAzureVmCreate = 20;
inline constexpr uint32_t kAzureVmDelete = 21;
}  // namespace event_attr

}  // namespace gadget

#endif  // GADGET_STREAMS_EVENT_H_
