// Synthetic dataset generators standing in for the paper's three public
// streams (§3.1.1). Each generator runs a small discrete-event simulation of
// the domain's entity lifecycles and emits a single event stream ordered by
// event time. See DESIGN.md §2 for the substitution rationale.
//
// All generators are deterministic given a seed and emit at most
// `max_events` records.
#ifndef GADGET_STREAMS_DATASET_H_
#define GADGET_STREAMS_DATASET_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/streams/event.h"

namespace gadget {

class DatasetGenerator {
 public:
  virtual ~DatasetGenerator() = default;

  // Produces the next event in event-time order. Returns false at end.
  virtual bool Next(Event* out) = 0;

  // Number of logical input streams (2 for datasets that support joins).
  virtual int num_streams() const { return 1; }

  // Human-readable dataset name ("borg", "taxi", "azure").
  virtual const char* name() const = 0;
};

// Shared scaffolding: a min-heap of future events. Subclasses seed the heap
// and refill it as entities progress through their lifecycle.
class SimulatedDataset : public DatasetGenerator {
 public:
  bool Next(Event* out) final;

 protected:
  explicit SimulatedDataset(uint64_t max_events) : max_events_(max_events) {}

  void Push(const Event& e) { heap_.push(e); }

  // Called when more arrivals are needed; must advance the arrival clock via
  // SetFrontier() and push the new lifecycle events. Return false when the
  // source is exhausted.
  virtual bool Refill() = 0;

  // The arrival clock: no future Refill may push an event earlier than this,
  // so heap entries at or before the frontier are safe to emit.
  void SetFrontier(uint64_t t) { frontier_ms_ = t; }

  uint64_t emitted() const { return emitted_; }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.event_time_ms > b.event_time_ms;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  uint64_t max_events_;
  uint64_t emitted_ = 0;
  uint64_t frontier_ms_ = 0;
  bool exhausted_ = false;
};

// --------------------------------------------------------------------- Borg
//
// Cluster trace: bursty job submissions; each job spawns several tasks whose
// schedule/finish events dominate the volume (paper: 2.5M task events vs 26K
// job events). Stream 0 = job events, stream 1 = task events. Key = jobID.

struct BorgOptions {
  uint64_t max_events = 500'000;
  uint64_t seed = 42;
  double job_rate_per_sec = 2.0;       // bursty around this average
  double mean_tasks_per_job = 40.0;    // geometric-ish heavy tail
  double mean_task_duration_s = 120.0; // exponential
  uint32_t value_size = 64;
};

std::unique_ptr<DatasetGenerator> MakeBorgGenerator(const BorgOptions& opts);

// --------------------------------------------------------------------- Taxi
//
// TLC trip records: low-rate pickup/drop-off pairs per medallion plus fare
// events. Rides are long (tens of minutes), which drives Taxi's high delete
// ratio in short windows (§3.2.1). Stream 0 = trip events, stream 1 = fares.
// Key = medallionID. Fare events carry expiry = drop-off time (continuous
// join semantics).

struct TaxiOptions {
  uint64_t max_events = 500'000;
  uint64_t seed = 43;
  uint64_t num_medallions = 13'000;
  double pickup_rate_per_sec = 5.0;
  double mean_ride_duration_s = 780.0;  // ~13 minutes
  double fares_per_trip = 0.5;          // paper: 1M trips, 500K fares
  uint32_t value_size = 64;
};

std::unique_ptr<DatasetGenerator> MakeTaxiGenerator(const TaxiOptions& opts);

// -------------------------------------------------------------------- Azure
//
// 2017 Azure VM trace: VM creation events keyed by subscription with a
// heavy-tailed subscription popularity; single stream (joins are not run on
// Azure, §3.2.1).

struct AzureOptions {
  uint64_t max_events = 500'000;
  uint64_t seed = 44;
  uint64_t num_subscriptions = 6'000;
  double create_rate_per_sec = 30.0;
  double mean_vm_lifetime_s = 3600.0;
  double zipf_theta = 0.9;  // subscription popularity skew
  uint32_t value_size = 64;
};

std::unique_ptr<DatasetGenerator> MakeAzureGenerator(const AzureOptions& opts);

// Factory by name with default options ("borg", "taxi", "azure"); max_events
// and seed override the defaults.
StatusOr<std::unique_ptr<DatasetGenerator>> MakeDataset(const std::string& name,
                                                        uint64_t max_events, uint64_t seed);

// Drains a generator into a vector (records only; no watermarks are added).
std::vector<Event> CollectEvents(DatasetGenerator& gen);

}  // namespace gadget

#endif  // GADGET_STREAMS_DATASET_H_
