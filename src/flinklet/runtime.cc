#include "src/flinklet/runtime.h"

namespace gadget {
namespace {

class PipelineRunner {
 public:
  PipelineRunner(const std::string& operator_name, const PipelineOptions& options,
                 KVStore* store)
      : options_(options) {
    backend_ = std::make_unique<InstrumentedStateBackend>(store, &result_.trace);
    ctx_.state = backend_.get();
    ctx_.config = options.operator_config;
    ctx_.outputs = &result_.outputs;
    auto op = MakeOperator(operator_name, &ctx_);
    if (!op.ok()) {
      init_status_ = op.status();
      return;
    }
    op_ = std::move(*op);
  }

  const Status& init_status() const { return init_status_; }

  Status Feed(const Event& e) {
    if (e.is_watermark()) {
      ++result_.watermarks_emitted;
      return op_->OnWatermark(e.event_time_ms);
    }
    max_time_ = std::max(max_time_, e.event_time_ms);
    GADGET_RETURN_IF_ERROR(op_->ProcessEvent(e));
    ++result_.events_processed;
    if (options_.watermark_every > 0 && result_.events_processed % options_.watermark_every == 0) {
      ++result_.watermarks_emitted;
      return op_->OnWatermark(max_time_);
    }
    return Status::Ok();
  }

  StatusOr<PipelineResult> Finish() {
    // Final watermark flushes all remaining windows (end-of-stream).
    ++result_.watermarks_emitted;
    GADGET_RETURN_IF_ERROR(op_->OnWatermark(~0ull >> 2));
    return std::move(result_);
  }

 private:
  PipelineOptions options_;
  std::unique_ptr<InstrumentedStateBackend> backend_;
  OperatorContext ctx_;
  std::unique_ptr<Operator> op_;
  PipelineResult result_;
  uint64_t max_time_ = 0;
  Status init_status_;
};

}  // namespace

StatusOr<PipelineResult> RunPipeline(const std::string& operator_name, DatasetGenerator& dataset,
                                     const PipelineOptions& options, KVStore* store) {
  PipelineRunner runner(operator_name, options, store);
  GADGET_RETURN_IF_ERROR(runner.init_status());
  Event e;
  while (dataset.Next(&e)) {
    GADGET_RETURN_IF_ERROR(runner.Feed(e));
  }
  return runner.Finish();
}

StatusOr<PipelineResult> RunPipeline(const std::string& operator_name,
                                     const std::vector<Event>& events,
                                     const PipelineOptions& options, KVStore* store) {
  PipelineRunner runner(operator_name, options, store);
  GADGET_RETURN_IF_ERROR(runner.init_status());
  for (const Event& e : events) {
    GADGET_RETURN_IF_ERROR(runner.Feed(e));
  }
  return runner.Finish();
}

}  // namespace gadget
