// Window operators (tumbling / sliding / session, incremental / holistic)
// for the flinklet reference runtime, using the W-ID state mapping the paper
// describes for Flink (§3.2.2): one KV pair per (key, window), keyed by the
// window end timestamp.
//
// Incremental windows keep a fixed-size aggregate: every event costs a
// get+put, every firing a get+delete. Holistic windows collect contents with
// a lazy merge per event and a get+delete at firing. Session windows extend
// and merge; moving a session's end relocates its state (get + delete + put
// or merge under the new window id).
#include <map>
#include <set>
#include <vector>

#include "src/common/coding.h"
#include "src/flinklet/operator.h"

namespace gadget {
namespace flinklet_internal {

std::string EncodeCount(uint64_t count, uint32_t size) {
  std::string out;
  PutFixed64(&out, count);
  if (out.size() < size) {
    out.resize(size, '\0');
  }
  return out;
}

uint64_t DecodeCount(const std::string& value) {
  return value.size() >= 8 ? DecodeFixed64(value.data()) : 0;
}

// Sums all 8-byte chunks: lazy count merges append EncodeCount chunks, so a
// merged aggregate is the sum of its chunks (assumes agg_value_size % 8 == 0;
// zero padding decodes as 0 and does not perturb the sum).
uint64_t DecodeCountSum(const std::string& value) {
  uint64_t sum = 0;
  for (size_t off = 0; off + 8 <= value.size(); off += 8) {
    sum += DecodeFixed64(value.data() + off);
  }
  return sum;
}

std::string SyntheticPayload(uint32_t size) { return std::string(size == 0 ? 1 : size, 'e'); }

// Timer index — the analog of Flink's timer service (and of Gadget's vIndex):
// fire time -> state keys to expire.
class TimerIndex {
 public:
  void Register(uint64_t fire_time, const StateKey& key) { timers_[fire_time].push_back(key); }

  // Pops all timers with fire time <= wm.
  std::vector<std::pair<uint64_t, StateKey>> Pop(uint64_t wm) {
    std::vector<std::pair<uint64_t, StateKey>> out;
    auto end = timers_.upper_bound(wm);
    for (auto it = timers_.begin(); it != end; ++it) {
      for (const StateKey& k : it->second) {
        out.emplace_back(it->first, k);
      }
    }
    timers_.erase(timers_.begin(), end);
    return out;
  }

  size_t size() const { return timers_.size(); }

 private:
  std::map<uint64_t, std::vector<StateKey>> timers_;
};

}  // namespace flinklet_internal

namespace {

using flinklet_internal::DecodeCount;
using flinklet_internal::DecodeCountSum;
using flinklet_internal::EncodeCount;
using flinklet_internal::SyntheticPayload;
using flinklet_internal::TimerIndex;

// ------------------------------------------------- tumbling & sliding base

class FixedWindowOperator : public Operator {
 public:
  FixedWindowOperator(OperatorContext* ctx, bool sliding, bool holistic)
      : ctx_(ctx), sliding_(sliding), holistic_(holistic) {}

  const char* name() const override {
    if (sliding_) {
      return holistic_ ? "sliding_hol" : "sliding_incr";
    }
    return holistic_ ? "tumbling_hol" : "tumbling_incr";
  }

  Status ProcessEvent(const Event& e) override {
    const uint64_t length = ctx_->config.window_length_ms;
    const uint64_t slide = sliding_ ? ctx_->config.window_slide_ms : length;
    // Drop events that are too late for every window they belong to.
    if (e.event_time_ms + length + ctx_->config.allowed_lateness_ms <= watermark_) {
      ++dropped_;
      return Status::Ok();
    }
    // Assigned windows: ends at multiples of `slide` covering the event
    // time. Assumes length % slide == 0 (the paper's configurations all do);
    // each event then lands in exactly length/slide windows.
    uint64_t first_end = (e.event_time_ms / slide) * slide + slide;
    for (uint64_t end = first_end; end <= e.event_time_ms + length; end += slide) {
      if (end - std::min(end, length) > e.event_time_ms) {
        continue;  // event before window start
      }
      if (end + ctx_->config.allowed_lateness_ms <= watermark_) {
        continue;  // this particular window already fired and purged
      }
      StateKey key{e.key, end};
      GADGET_RETURN_IF_ERROR(holistic_ ? AddHolistic(key, e) : AddIncremental(key, e));
    }
    return Status::Ok();
  }

  Status OnWatermark(uint64_t wm) override {
    watermark_ = wm;
    for (const auto& [fire_time, key] : timers_.Pop(wm)) {
      std::string contents;
      Status s = ctx_->state->Get(key, &contents, wm);  // FGet: final window read
      if (s.ok()) {
        OperatorOutput out;
        out.key = key.hi;
        out.time = key.lo;
        out.count = holistic_ ? contents.size() : DecodeCount(contents);
        if (holistic_) {
          out.payload = std::move(contents);
        }
        ctx_->Emit(std::move(out));
      } else if (!s.IsNotFound()) {
        return s;
      }
      GADGET_RETURN_IF_ERROR(ctx_->state->Delete(key, wm));
      active_.erase(key);
    }
    return Status::Ok();
  }

  uint64_t dropped() const { return dropped_; }

 private:
  Status AddIncremental(const StateKey& key, const Event& e) {
    std::string value;
    Status s = ctx_->state->Get(key, &value, e.event_time_ms);
    uint64_t count = 0;
    if (s.ok()) {
      count = DecodeCount(value);
    } else if (s.IsNotFound()) {
      timers_.Register(key.lo + ctx_->config.allowed_lateness_ms, key);
    } else {
      return s;
    }
    return ctx_->state->Put(key, EncodeCount(count + 1, ctx_->config.agg_value_size),
                            e.event_time_ms);
  }

  Status AddHolistic(const StateKey& key, const Event& e) {
    if (active_.insert(key).second) {
      timers_.Register(key.lo + ctx_->config.allowed_lateness_ms, key);
    }
    return ctx_->state->Merge(key, SyntheticPayload(e.value_size), e.event_time_ms);
  }

  OperatorContext* ctx_;
  bool sliding_;
  bool holistic_;
  uint64_t watermark_ = 0;
  uint64_t dropped_ = 0;
  TimerIndex timers_;
  std::set<StateKey> active_;  // holistic windows already registered
};

// --------------------------------------------------------- session windows
//
// Follows Flink's merging-window mechanics: each session keeps its state
// under an immutable representative window id (the session id = creation
// time), so extending a session's end moves only metadata, not state. A
// per-key merging-set entry (state key lo = 1) is read on every event and
// rewritten when the set of sessions changes. Merging two sessions reads and
// deletes the absorbed window's state and lazily merges it into the
// survivor. This reproduces Table 1's session mixes: incremental ~2:1
// get:put with few deletes/merges; holistic get/merge/delete with no puts.

class SessionWindowOperator : public Operator {
 public:
  SessionWindowOperator(OperatorContext* ctx, bool holistic) : ctx_(ctx), holistic_(holistic) {}

  const char* name() const override { return holistic_ ? "session_hol" : "session_incr"; }

  Status ProcessEvent(const Event& e) override {
    const uint64_t gap = ctx_->config.session_gap_ms;
    const uint64_t t = e.event_time_ms;
    if (t + gap + ctx_->config.allowed_lateness_ms <= watermark_) {
      ++dropped_;
      return Status::Ok();
    }
    auto& sessions = sessions_[e.key];

    // Every event starts by reading the per-key merging set.
    StateKey set_key{e.key, 1};
    std::string set_bytes;
    Status set_read = ctx_->state->Get(set_key, &set_bytes, t);
    if (!set_read.ok() && !set_read.IsNotFound()) {
      return set_read;
    }

    // Sessions the window [t, t+gap] overlaps.
    std::vector<size_t> touching;
    for (size_t i = 0; i < sessions.size(); ++i) {
      if (t + gap >= sessions[i].start && t <= sessions[i].end) {
        touching.push_back(i);
      }
    }

    if (touching.empty()) {
      // Fresh session: the set gains a window and the representative window
      // state is initialized.
      Session s{t, t, t + gap};
      sessions.push_back(s);
      GADGET_RETURN_IF_ERROR(ctx_->state->Merge(set_key, SetBytes(1), t));
      StateKey win{e.key, s.sid << 1};
      if (holistic_) {
        GADGET_RETURN_IF_ERROR(ctx_->state->Merge(win, SyntheticPayload(e.value_size), t));
      } else {
        GADGET_RETURN_IF_ERROR(
            ctx_->state->Put(win, EncodeCount(1, ctx_->config.agg_value_size), t));
      }
      timers_.Register(s.end + ctx_->config.allowed_lateness_ms, win);
      return Status::Ok();
    }

    if (touching.size() == 1) {
      // Extend in place: state stays under the immutable session id; only
      // the timer and the metadata move.
      Session& s = sessions[touching[0]];
      s.start = std::min(s.start, t);
      uint64_t new_end = std::max(s.end, t + gap);
      StateKey win{e.key, s.sid << 1};
      if (new_end != s.end) {
        s.end = new_end;
        timers_.Register(s.end + ctx_->config.allowed_lateness_ms, win);
      }
      if (holistic_) {
        return ctx_->state->Merge(win, SyntheticPayload(e.value_size), t);
      }
      std::string value;
      Status st = ctx_->state->Get(win, &value, t);
      if (!st.ok() && !st.IsNotFound()) {
        return st;
      }
      uint64_t count = st.ok() ? DecodeCountSum(value) : 0;
      return ctx_->state->Put(win, EncodeCount(count + 1, ctx_->config.agg_value_size), t);
    }

    // The event bridges >= 2 sessions: absorb everything into the session
    // with the smallest id (read + delete absorbed state, lazily merge it
    // plus the event into the survivor), then rewrite the shrunken set.
    size_t survivor_idx = touching[0];
    for (size_t idx : touching) {
      if (sessions[idx].sid < sessions[survivor_idx].sid) {
        survivor_idx = idx;
      }
    }
    Session merged = sessions[survivor_idx];
    merged.start = std::min(merged.start, t);
    merged.end = std::max(merged.end, t + gap);
    uint64_t absorbed_count = 0;
    std::string absorbed_payload;
    for (size_t idx : touching) {
      merged.start = std::min(merged.start, sessions[idx].start);
      merged.end = std::max(merged.end, sessions[idx].end);
      if (idx == survivor_idx) {
        continue;
      }
      StateKey old_win{e.key, sessions[idx].sid << 1};
      std::string value;
      Status st = ctx_->state->Get(old_win, &value, t);
      if (st.ok()) {
        if (holistic_) {
          absorbed_payload += value;
        } else {
          absorbed_count += DecodeCountSum(value);
        }
      } else if (!st.IsNotFound()) {
        return st;
      }
      GADGET_RETURN_IF_ERROR(ctx_->state->Delete(old_win, t));
    }
    StateKey survivor_win{e.key, merged.sid << 1};
    if (holistic_) {
      absorbed_payload += SyntheticPayload(e.value_size);
      GADGET_RETURN_IF_ERROR(ctx_->state->Merge(survivor_win, absorbed_payload, t));
    } else {
      GADGET_RETURN_IF_ERROR(ctx_->state->Merge(
          survivor_win, EncodeCount(absorbed_count + 1, ctx_->config.agg_value_size), t));
    }
    // Rebuild the registry: drop absorbed sessions, keep the merged one.
    std::vector<Session> kept;
    for (size_t i = 0; i < sessions.size(); ++i) {
      bool was_touching = false;
      for (size_t idx : touching) {
        if (idx == i) {
          was_touching = true;
          break;
        }
      }
      if (!was_touching) {
        kept.push_back(sessions[i]);
      }
    }
    kept.push_back(merged);
    sessions = std::move(kept);
    GADGET_RETURN_IF_ERROR(ctx_->state->Merge(set_key, SetBytes(1), t));
    timers_.Register(merged.end + ctx_->config.allowed_lateness_ms, survivor_win);
    return Status::Ok();
  }

  Status OnWatermark(uint64_t wm) override {
    watermark_ = wm;
    for (const auto& [fire_time, key] : timers_.Pop(wm)) {
      // Lazy timer cancellation: fire only if the session with this id still
      // exists and still ends at the registered time.
      auto sit = sessions_.find(key.hi);
      if (sit == sessions_.end()) {
        continue;
      }
      auto& sessions = sit->second;
      uint64_t sid = key.lo >> 1;
      bool live = false;
      for (size_t i = 0; i < sessions.size(); ++i) {
        if (sessions[i].sid == sid &&
            sessions[i].end + ctx_->config.allowed_lateness_ms == fire_time) {
          sessions.erase(sessions.begin() + static_cast<long>(i));
          live = true;
          break;
        }
      }
      if (!live) {
        continue;  // stale timer (session extended or merged away)
      }
      std::string contents;
      Status s = ctx_->state->Get(key, &contents, wm);
      if (s.ok()) {
        OperatorOutput out;
        out.key = key.hi;
        out.time = fire_time;
        out.count = holistic_ ? contents.size() : DecodeCountSum(contents);
        ctx_->Emit(std::move(out));
      } else if (!s.IsNotFound()) {
        return s;
      }
      GADGET_RETURN_IF_ERROR(ctx_->state->Delete(key, wm));
      if (sessions.empty()) {
        GADGET_RETURN_IF_ERROR(ctx_->state->Delete(StateKey{key.hi, 1}, wm));
        sessions_.erase(sit);
      }
    }
    return Status::Ok();
  }

 private:
  struct Session {
    uint64_t sid;    // immutable representative id (creation event time)
    uint64_t start;  // earliest event time
    uint64_t end;    // latest event time + gap
  };

  // Merging-set updates are lazy deltas (~16 bytes of window metadata per
  // change), appended with a merge; Table 1's zero-put session-holistic row
  // shows Flink's set maintenance does not issue puts.
  static std::string SetBytes(size_t windows_changed) {
    return std::string(16 * std::max<size_t>(windows_changed, 1), 'm');
  }

  OperatorContext* ctx_;
  bool holistic_;
  uint64_t watermark_ = 0;
  uint64_t dropped_ = 0;
  TimerIndex timers_;
  std::map<uint64_t, std::vector<Session>> sessions_;
};

}  // namespace

std::unique_ptr<Operator> MakeTumblingOperator(OperatorContext* ctx, bool holistic) {
  return std::make_unique<FixedWindowOperator>(ctx, /*sliding=*/false, holistic);
}
std::unique_ptr<Operator> MakeSlidingOperator(OperatorContext* ctx, bool holistic) {
  return std::make_unique<FixedWindowOperator>(ctx, /*sliding=*/true, holistic);
}
std::unique_ptr<Operator> MakeSessionOperator(OperatorContext* ctx, bool holistic) {
  return std::make_unique<SessionWindowOperator>(ctx, holistic);
}

}  // namespace gadget
