#include "src/flinklet/state_backend.h"

namespace gadget {

void InstrumentedStateBackend::Record(OpType op, const StateKey& key, uint32_t value_size,
                                      uint64_t t) {
  ++accesses_;
  if (trace_ != nullptr) {
    trace_->push_back(StateAccess{op, key, value_size, t});
  }
}

Status InstrumentedStateBackend::Get(const StateKey& key, std::string* value, uint64_t t) {
  Record(OpType::kGet, key, 0, t);
  if (store_ != nullptr) {
    return store_->Get(EncodeStateKey(key), value);
  }
  auto it = shadow_.find(key);
  if (it == shadow_.end()) {
    return Status::NotFound();
  }
  *value = it->second;
  return Status::Ok();
}

Status InstrumentedStateBackend::Put(const StateKey& key, std::string_view value, uint64_t t) {
  Record(OpType::kPut, key, static_cast<uint32_t>(value.size()), t);
  if (store_ != nullptr) {
    return store_->Put(EncodeStateKey(key), value);
  }
  shadow_[key].assign(value.data(), value.size());
  return Status::Ok();
}

Status InstrumentedStateBackend::Merge(const StateKey& key, std::string_view operand,
                                       uint64_t t) {
  Record(OpType::kMerge, key, static_cast<uint32_t>(operand.size()), t);
  if (store_ != nullptr) {
    if (store_has_merge_) {
      return store_->Merge(EncodeStateKey(key), operand);
    }
    return store_->ReadModifyWrite(EncodeStateKey(key), operand);
  }
  shadow_[key].append(operand.data(), operand.size());
  return Status::Ok();
}

Status InstrumentedStateBackend::Delete(const StateKey& key, uint64_t t) {
  Record(OpType::kDelete, key, 0, t);
  if (store_ != nullptr) {
    return store_->Delete(EncodeStateKey(key));
  }
  shadow_.erase(key);
  return Status::Ok();
}

}  // namespace gadget
