// Streaming operator interface for the flinklet reference runtime.
//
// Operators receive events + watermarks and interact with state exclusively
// through the InstrumentedStateBackend, so their full state-access behaviour
// is captured in the recorded trace. Emitted results go to the context's
// output vector for semantic verification in tests.
#ifndef GADGET_FLINKLET_OPERATOR_H_
#define GADGET_FLINKLET_OPERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/flinklet/state_backend.h"
#include "src/streams/event.h"

namespace gadget {

// Parameters common to all operators (§3.1.2 defaults).
struct OperatorConfig {
  uint64_t window_length_ms = 5'000;
  uint64_t window_slide_ms = 1'000;
  uint64_t session_gap_ms = 120'000;
  uint64_t join_lower_ms = 120'000;  // interval join lower bound (2 min)
  uint64_t join_upper_ms = 180'000;  // interval join upper bound (3 min)
  uint64_t allowed_lateness_ms = 0;
  uint32_t agg_value_size = 8;  // incremental aggregate payload size
};

// A produced result (window firing / join match / rolling aggregate).
struct OperatorOutput {
  uint64_t key = 0;
  uint64_t time = 0;     // window end or event time
  uint64_t count = 0;    // elements that contributed
  std::string payload;   // holistic contents (possibly large)
};

struct OperatorContext {
  InstrumentedStateBackend* state = nullptr;
  OperatorConfig config;
  std::vector<OperatorOutput>* outputs = nullptr;  // may be null

  void Emit(OperatorOutput out) {
    if (outputs != nullptr) {
      outputs->push_back(std::move(out));
    }
  }
};

class Operator {
 public:
  virtual ~Operator() = default;

  virtual Status ProcessEvent(const Event& e) = 0;

  // Watermark with time `wm`: fire and clean up everything at or before it.
  virtual Status OnWatermark(uint64_t wm) = 0;

  virtual const char* name() const = 0;
};

// Factory for all eleven workload operators (DESIGN.md §3):
//   tumbling_incr, tumbling_hol, sliding_incr, sliding_hol, session_incr,
//   session_hol, join_cont, join_interval, join_sliding, join_tumbling,
//   aggregation.
StatusOr<std::unique_ptr<Operator>> MakeOperator(const std::string& name, OperatorContext* ctx);

// All eleven canonical workload names, in the order used by the paper's
// figures.
const std::vector<std::string>& AllOperatorNames();

}  // namespace gadget

#endif  // GADGET_FLINKLET_OPERATOR_H_
