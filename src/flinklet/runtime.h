// The flinklet pipeline runner: feeds a stream of events through an
// operator, generating punctuated watermarks (default: one per 100 events,
// §3.1.2) and collecting the instrumented state-access trace.
//
// This is the project's stand-in for "configure and deploy a stream
// processing system ... and execute representative queries to collect
// measurements" (§1): the trace it records is the ground truth that Gadget's
// simulated workloads are validated against.
#ifndef GADGET_FLINKLET_RUNTIME_H_
#define GADGET_FLINKLET_RUNTIME_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/flinklet/operator.h"
#include "src/streams/dataset.h"
#include "src/streams/state_access.h"

namespace gadget {

struct PipelineOptions {
  uint64_t watermark_every = 100;  // punctuated watermark frequency in events
  OperatorConfig operator_config;
};

struct PipelineResult {
  std::vector<StateAccess> trace;
  std::vector<OperatorOutput> outputs;
  uint64_t events_processed = 0;
  uint64_t watermarks_emitted = 0;
};

// Runs `operator_name` over the events of `dataset`, recording the state
// access trace. `store` may be null (in-memory shadow state).
StatusOr<PipelineResult> RunPipeline(const std::string& operator_name, DatasetGenerator& dataset,
                                     const PipelineOptions& options, KVStore* store = nullptr);

// Same, over a pre-collected event vector (records only; watermarks are
// inserted by the runner).
StatusOr<PipelineResult> RunPipeline(const std::string& operator_name,
                                     const std::vector<Event>& events,
                                     const PipelineOptions& options, KVStore* store = nullptr);

}  // namespace gadget

#endif  // GADGET_FLINKLET_RUNTIME_H_
