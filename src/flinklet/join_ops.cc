// Two-input join operators and continuous aggregation for the flinklet
// reference runtime.
//
// State-key layout (hi = event key, lo = discriminator):
//   continuous join:  lo = 0 holds the open record, lo = 1 the accumulated
//                     matches; both are deleted when the validity interval
//                     closes (expiry event).
//   interval join:    lo = (event_time << 1) | side — per-event buffer
//                     entries keyed by timestamp, which is what drives the
//                     interval join's large keyspace amplification (§3.2.2).
//   window join:      lo = (window_end << 1) | side — one bucket per side
//                     per window; fired with a get per side and cleaned with
//                     a delete per side.
//   aggregation:      lo = 0 — one rolling aggregate per input key; the only
//                     operator that preserves the input key distribution.
#include <map>
#include <set>
#include <vector>

#include "src/common/coding.h"
#include "src/flinklet/operator.h"

namespace gadget {
namespace flinklet_internal {
// Defined in window_ops.cc.
std::string EncodeCount(uint64_t count, uint32_t size);
uint64_t DecodeCount(const std::string& value);
std::string SyntheticPayload(uint32_t size);
}  // namespace flinklet_internal

namespace {

using flinklet_internal::DecodeCount;
using flinklet_internal::EncodeCount;
using flinklet_internal::SyntheticPayload;

// ---------------------------------------------------------- continuous join

class ContinuousJoinOperator : public Operator {
 public:
  explicit ContinuousJoinOperator(OperatorContext* ctx) : ctx_(ctx) {}

  const char* name() const override { return "join_cont"; }

  Status ProcessEvent(const Event& e) override {
    const uint64_t t = e.event_time_ms;
    if (e.stream_id == 0) {
      if (e.expiry_time_ms != 0) {
        // Validity interval closes: read the accumulated join result, emit,
        // and clean up both entries (paper: "a state cleanup per job
        // completed" / "a delete for every passenger drop-off").
        StateKey result_key{e.key, 1};
        std::string acc;
        Status s = ctx_->state->Get(result_key, &acc, t);
        if (s.ok()) {
          OperatorOutput out;
          out.key = e.key;
          out.time = t;
          out.count = acc.size();
          ctx_->Emit(std::move(out));
        } else if (!s.IsNotFound()) {
          return s;
        }
        GADGET_RETURN_IF_ERROR(ctx_->state->Delete(StateKey{e.key, 0}, t));
        return ctx_->state->Delete(result_key, t);
      }
      // Open record: becomes joinable until its expiry.
      return ctx_->state->Put(StateKey{e.key, 0}, SyntheticPayload(e.value_size), t);
    }
    // Probe side: look up the open record; accumulate on a match.
    std::string record;
    Status s = ctx_->state->Get(StateKey{e.key, 0}, &record, t);
    if (s.IsNotFound()) {
      return Status::Ok();  // no open record (yet, or already expired)
    }
    if (!s.ok()) {
      return s;
    }
    return ctx_->state->Merge(StateKey{e.key, 1}, SyntheticPayload(e.value_size), t);
  }

  Status OnWatermark(uint64_t wm) override {
    // Continuous joins clean up on explicit expiry events, not watermarks.
    return Status::Ok();
  }

 private:
  OperatorContext* ctx_;
};

// ------------------------------------------------------------ interval join

class IntervalJoinOperator : public Operator {
 public:
  explicit IntervalJoinOperator(OperatorContext* ctx) : ctx_(ctx) {}

  const char* name() const override { return "join_interval"; }

  Status ProcessEvent(const Event& e) override {
    const uint64_t t = e.event_time_ms;
    const uint64_t mid = (ctx_->config.join_lower_ms + ctx_->config.join_upper_ms) / 2;
    const uint8_t side = e.stream_id & 1;
    // Buffer this event under its own timestamp (one state key per event —
    // the timestamp-keyed layout Flink's interval join uses).
    StateKey own{e.key, (t << 1) | side};
    GADGET_RETURN_IF_ERROR(ctx_->state->Put(own, SyntheticPayload(e.value_size), t));
    // Duplicate (key, ts, side) events share one state entry (a MapState
    // list), so cleanup deletes it exactly once, in registration order.
    if (registered_.insert(own).second) {
      expiry_.emplace(t + ctx_->config.join_upper_ms + ctx_->config.allowed_lateness_ms, own);
    }

    // Probe the opposite buffer at the center of the join interval. A stream
    // 0 event at t matches stream 1 events in [t+lower, t+upper]; probing is
    // a read of the opposite side's buffered region.
    uint64_t probe_t = side == 0 ? t + mid : (t > mid ? t - mid : 0);
    StateKey probe{e.key, (probe_t << 1) | static_cast<uint64_t>(1 - side)};
    std::string match;
    Status s = ctx_->state->Get(probe, &match, t);
    if (s.ok()) {
      OperatorOutput out;
      out.key = e.key;
      out.time = t;
      out.count = 1;
      ctx_->Emit(std::move(out));
    } else if (!s.IsNotFound()) {
      return s;
    }
    return Status::Ok();
  }

  Status OnWatermark(uint64_t wm) override {
    // Evict buffered events whose match interval has fully passed.
    auto end = expiry_.upper_bound(wm);
    for (auto it = expiry_.begin(); it != end; ++it) {
      GADGET_RETURN_IF_ERROR(ctx_->state->Delete(it->second, wm));
      registered_.erase(it->second);
    }
    expiry_.erase(expiry_.begin(), end);
    return Status::Ok();
  }

 private:
  OperatorContext* ctx_;
  std::multimap<uint64_t, StateKey> expiry_;  // insertion-ordered within a time
  std::set<StateKey> registered_;
};

// -------------------------------------------------------------- window join

class WindowJoinOperator : public Operator {
 public:
  WindowJoinOperator(OperatorContext* ctx, bool sliding) : ctx_(ctx), sliding_(sliding) {}

  const char* name() const override { return sliding_ ? "join_sliding" : "join_tumbling"; }

  Status ProcessEvent(const Event& e) override {
    const uint64_t length = ctx_->config.window_length_ms;
    const uint64_t slide = sliding_ ? ctx_->config.window_slide_ms : length;
    const uint64_t t = e.event_time_ms;
    if (t + length + ctx_->config.allowed_lateness_ms <= watermark_) {
      return Status::Ok();  // too late for every window
    }
    const uint8_t side = e.stream_id & 1;
    uint64_t first_end = (t / slide) * slide + slide;
    for (uint64_t end = first_end; end <= t + length; end += slide) {
      if (end - std::min(end, length) > t) {
        continue;
      }
      if (end + ctx_->config.allowed_lateness_ms <= watermark_) {
        continue;
      }
      StateKey bucket{e.key, (end << 1) | side};
      if (registered_.insert(std::pair<uint64_t, uint64_t>{e.key, end}).second) {
        timers_[end + ctx_->config.allowed_lateness_ms].emplace_back(e.key, end);
      }
      GADGET_RETURN_IF_ERROR(ctx_->state->Merge(bucket, SyntheticPayload(e.value_size), t));
    }
    return Status::Ok();
  }

  Status OnWatermark(uint64_t wm) override {
    watermark_ = wm;
    auto stop = timers_.upper_bound(wm);
    for (auto it = timers_.begin(); it != stop; ++it) {
      for (const auto& [key, end] : it->second) {
        StateKey left{key, (end << 1) | 0};
        StateKey right{key, (end << 1) | 1};
        std::string a, b;
        Status sa = ctx_->state->Get(left, &a, wm);
        if (!sa.ok() && !sa.IsNotFound()) {
          return sa;
        }
        Status sb = ctx_->state->Get(right, &b, wm);
        if (!sb.ok() && !sb.IsNotFound()) {
          return sb;
        }
        if (sa.ok() && sb.ok()) {
          OperatorOutput out;
          out.key = key;
          out.time = end;
          out.count = a.size() + b.size();
          ctx_->Emit(std::move(out));
        }
        GADGET_RETURN_IF_ERROR(ctx_->state->Delete(left, wm));
        GADGET_RETURN_IF_ERROR(ctx_->state->Delete(right, wm));
        registered_.erase(std::pair<uint64_t, uint64_t>{key, end});
      }
    }
    timers_.erase(timers_.begin(), stop);
    return Status::Ok();
  }

 private:
  OperatorContext* ctx_;
  bool sliding_;
  uint64_t watermark_ = 0;
  std::map<uint64_t, std::vector<std::pair<uint64_t, uint64_t>>> timers_;  // fire -> (key,end)
  std::set<std::pair<uint64_t, uint64_t>> registered_;
};

// -------------------------------------------------- continuous aggregation

class AggregationOperator : public Operator {
 public:
  explicit AggregationOperator(OperatorContext* ctx) : ctx_(ctx) {}

  const char* name() const override { return "aggregation"; }

  Status ProcessEvent(const Event& e) override {
    StateKey key{e.key, 0};
    std::string value;
    Status s = ctx_->state->Get(key, &value, e.event_time_ms);
    if (!s.ok() && !s.IsNotFound()) {
      return s;
    }
    uint64_t count = s.ok() ? DecodeCount(value) : 0;
    GADGET_RETURN_IF_ERROR(ctx_->state->Put(
        key, EncodeCount(count + 1, ctx_->config.agg_value_size), e.event_time_ms));
    OperatorOutput out;
    out.key = e.key;
    out.time = e.event_time_ms;
    out.count = count + 1;
    ctx_->Emit(std::move(out));
    return Status::Ok();
  }

  Status OnWatermark(uint64_t wm) override { return Status::Ok(); }

 private:
  OperatorContext* ctx_;
};

}  // namespace

std::unique_ptr<Operator> MakeContinuousJoinOperator(OperatorContext* ctx) {
  return std::make_unique<ContinuousJoinOperator>(ctx);
}
std::unique_ptr<Operator> MakeIntervalJoinOperator(OperatorContext* ctx) {
  return std::make_unique<IntervalJoinOperator>(ctx);
}
std::unique_ptr<Operator> MakeWindowJoinOperator(OperatorContext* ctx, bool sliding) {
  return std::make_unique<WindowJoinOperator>(ctx, sliding);
}
std::unique_ptr<Operator> MakeAggregationOperator(OperatorContext* ctx) {
  return std::make_unique<AggregationOperator>(ctx);
}

}  // namespace gadget
