#include "src/flinklet/operator.h"

namespace gadget {

// Defined in window_ops.cc / join_ops.cc.
std::unique_ptr<Operator> MakeTumblingOperator(OperatorContext* ctx, bool holistic);
std::unique_ptr<Operator> MakeSlidingOperator(OperatorContext* ctx, bool holistic);
std::unique_ptr<Operator> MakeSessionOperator(OperatorContext* ctx, bool holistic);
std::unique_ptr<Operator> MakeContinuousJoinOperator(OperatorContext* ctx);
std::unique_ptr<Operator> MakeIntervalJoinOperator(OperatorContext* ctx);
std::unique_ptr<Operator> MakeWindowJoinOperator(OperatorContext* ctx, bool sliding);
std::unique_ptr<Operator> MakeAggregationOperator(OperatorContext* ctx);

StatusOr<std::unique_ptr<Operator>> MakeOperator(const std::string& name, OperatorContext* ctx) {
  if (name == "tumbling_incr") {
    return MakeTumblingOperator(ctx, false);
  }
  if (name == "tumbling_hol") {
    return MakeTumblingOperator(ctx, true);
  }
  if (name == "sliding_incr") {
    return MakeSlidingOperator(ctx, false);
  }
  if (name == "sliding_hol") {
    return MakeSlidingOperator(ctx, true);
  }
  if (name == "session_incr") {
    return MakeSessionOperator(ctx, false);
  }
  if (name == "session_hol") {
    return MakeSessionOperator(ctx, true);
  }
  if (name == "join_cont") {
    return MakeContinuousJoinOperator(ctx);
  }
  if (name == "join_interval") {
    return MakeIntervalJoinOperator(ctx);
  }
  if (name == "join_sliding") {
    return MakeWindowJoinOperator(ctx, true);
  }
  if (name == "join_tumbling") {
    return MakeWindowJoinOperator(ctx, false);
  }
  if (name == "aggregation") {
    return MakeAggregationOperator(ctx);
  }
  return Status::InvalidArgument("unknown operator: " + name);
}

const std::vector<std::string>& AllOperatorNames() {
  static const std::vector<std::string> kNames = {
      "tumbling_incr", "sliding_incr", "session_incr",  "tumbling_hol",
      "sliding_hol",   "session_hol",  "join_cont",     "join_interval",
      "join_sliding",  "join_tumbling", "aggregation",
  };
  return kNames;
}

}  // namespace gadget
