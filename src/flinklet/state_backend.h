// Instrumented keyed state backend — flinklet's equivalent of the paper's
// instrumented Flink state layer (§3.1).
//
// Every operator state access goes through this class, which (a) optionally
// executes the operation against a real KVStore, (b) optionally maintains the
// value in an internal map so operators can compute real results without a
// store, and (c) appends the access to the trace being collected. The
// recorded trace is the "real" state access stream that Gadget's simulated
// traces are validated against (Fig. 10).
#ifndef GADGET_FLINKLET_STATE_BACKEND_H_
#define GADGET_FLINKLET_STATE_BACKEND_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/stores/kvstore.h"
#include "src/streams/state_access.h"

namespace gadget {

class InstrumentedStateBackend {
 public:
  // Either argument may be null: store=null runs operators purely in memory
  // (fast trace collection); trace=null runs without recording.
  InstrumentedStateBackend(KVStore* store, std::vector<StateAccess>* trace)
      : store_(store),
        trace_(trace),
        // Capability check hoisted to construction: Merge() is the hottest
        // holistic-operator path and should not pay a virtual call per op to
        // re-learn a property that never changes.
        store_has_merge_(store != nullptr && store->supports_merge()) {}

  // NotFound when absent. Records a GET.
  Status Get(const StateKey& key, std::string* value, uint64_t t);
  // Records a PUT.
  Status Put(const StateKey& key, std::string_view value, uint64_t t);
  // Lazy append; falls back to ReadModifyWrite on stores without merge.
  // Records a MERGE.
  Status Merge(const StateKey& key, std::string_view operand, uint64_t t);
  // Records a DELETE.
  Status Delete(const StateKey& key, uint64_t t);

  uint64_t num_accesses() const { return accesses_; }

 private:
  void Record(OpType op, const StateKey& key, uint32_t value_size, uint64_t t);

  KVStore* store_;
  std::vector<StateAccess>* trace_;
  const bool store_has_merge_;
  std::unordered_map<StateKey, std::string, StateKeyHash> shadow_;
  uint64_t accesses_ = 0;
};

}  // namespace gadget

#endif  // GADGET_FLINKLET_STATE_BACKEND_H_
