#include "src/distgen/arrival.h"

namespace gadget {

BurstyArrival::BurstyArrival(double busy_rate_per_sec, double idle_rate_per_sec,
                             double mean_busy_ms, double mean_idle_ms, uint64_t seed)
    : busy_gap_ms_(1000.0 / busy_rate_per_sec),
      idle_gap_ms_(1000.0 / idle_rate_per_sec),
      mean_busy_ms_(mean_busy_ms),
      mean_idle_ms_(mean_idle_ms),
      rng_(seed, /*stream=*/8) {
  state_left_ms_ = rng_.NextExponential(1.0 / mean_busy_ms_);
}

uint64_t BurstyArrival::NextGap() {
  double gap = rng_.NextExponential(1.0 / (busy_ ? busy_gap_ms_ : idle_gap_ms_));
  // Burn down the state timer; flip states as needed (gap may span a flip,
  // which we approximate by flipping after the gap — fine at workload scale).
  state_left_ms_ -= gap;
  while (state_left_ms_ <= 0) {
    busy_ = !busy_;
    state_left_ms_ += rng_.NextExponential(1.0 / (busy_ ? mean_busy_ms_ : mean_idle_ms_));
  }
  return static_cast<uint64_t>(gap + 0.5);
}

StatusOr<std::unique_ptr<ArrivalProcess>> CreateArrivalProcess(const std::string& name,
                                                               double rate_per_sec,
                                                               uint64_t seed) {
  if (rate_per_sec <= 0) {
    return Status::InvalidArgument("arrival rate must be positive");
  }
  if (name == "constant") {
    uint64_t period = static_cast<uint64_t>(1000.0 / rate_per_sec + 0.5);
    return std::unique_ptr<ArrivalProcess>(new ConstantArrival(period == 0 ? 1 : period));
  }
  if (name == "poisson") {
    return std::unique_ptr<ArrivalProcess>(new PoissonArrival(rate_per_sec, seed));
  }
  if (name == "bursty") {
    // Busy bursts at 4x the average rate, idle at 1/4; 10s dwell times.
    return std::unique_ptr<ArrivalProcess>(
        new BurstyArrival(rate_per_sec * 4.0, rate_per_sec / 4.0, 10000.0, 10000.0, seed));
  }
  return Status::InvalidArgument("unknown arrival process: " + name);
}

}  // namespace gadget
