#include "src/distgen/distribution.h"

#include <algorithm>
#include <cmath>

#include "src/common/hash.h"

namespace gadget {

// ------------------------------------------------------------------ Uniform

UniformDistribution::UniformDistribution(uint64_t domain, uint64_t seed)
    : domain_(domain == 0 ? 1 : domain), rng_(seed, /*stream=*/1) {}

uint64_t UniformDistribution::Next() { return rng_.NextBounded64(domain_); }

// ------------------------------------------------------------------ Zipfian

double ZipfianDistribution::Zeta(uint64_t from, uint64_t to, double theta, double initial) {
  double sum = initial;
  for (uint64_t i = from; i < to; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  return sum;
}

ZipfianDistribution::ZipfianDistribution(uint64_t domain, uint64_t seed, double theta)
    : domain_(domain == 0 ? 1 : domain), theta_(theta), rng_(seed, /*stream=*/2) {
  zeta2_ = Zeta(0, 2, theta_, 0.0);
  zeta_n_ = Zeta(0, domain_, theta_, 0.0);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(domain_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zeta_n_);
}

void ZipfianDistribution::GrowDomain(uint64_t new_domain) {
  if (new_domain <= domain_) {
    return;
  }
  zeta_n_ = Zeta(domain_, new_domain, theta_, zeta_n_);
  domain_ = new_domain;
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(domain_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zeta_n_);
}

uint64_t ZipfianDistribution::Next() {
  // Gray et al. "Quickly generating billion-record synthetic databases".
  double u = rng_.NextDouble();
  double uz = u * zeta_n_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  double v = static_cast<double>(domain_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t result = static_cast<uint64_t>(v);
  return std::min(result, domain_ - 1);
}

ScrambledZipfianDistribution::ScrambledZipfianDistribution(uint64_t domain, uint64_t seed,
                                                           double theta)
    : zipf_(domain, seed, theta) {}

uint64_t ScrambledZipfianDistribution::Next() {
  uint64_t raw = zipf_.Next();
  return Mix64(raw) % zipf_.domain();
}

// ------------------------------------------------------------------ Hotspot

HotspotDistribution::HotspotDistribution(uint64_t domain, uint64_t seed, double hot_set_fraction,
                                         double hot_opn_fraction)
    : domain_(domain == 0 ? 1 : domain),
      hot_set_fraction_(hot_set_fraction),
      hot_opn_fraction_(hot_opn_fraction),
      rng_(seed, /*stream=*/3) {
  hot_count_ = std::max<uint64_t>(1, static_cast<uint64_t>(
                                         static_cast<double>(domain_) * hot_set_fraction_));
}

void HotspotDistribution::GrowDomain(uint64_t new_domain) {
  domain_ = new_domain;
  hot_count_ = std::max<uint64_t>(1, static_cast<uint64_t>(
                                         static_cast<double>(domain_) * hot_set_fraction_));
}

uint64_t HotspotDistribution::Next() {
  if (rng_.NextDouble() < hot_opn_fraction_) {
    return rng_.NextBounded64(hot_count_);
  }
  uint64_t cold = domain_ - hot_count_;
  if (cold == 0) {
    return rng_.NextBounded64(domain_);
  }
  return hot_count_ + rng_.NextBounded64(cold);
}

// --------------------------------------------------------------- Sequential

SequentialDistribution::SequentialDistribution(uint64_t domain, uint64_t start)
    : domain_(domain == 0 ? 1 : domain), next_(start % domain_) {}

uint64_t SequentialDistribution::Next() {
  uint64_t v = next_;
  next_ = (next_ + 1) % domain_;
  return v;
}

// -------------------------------------------------------------- Exponential

ExponentialDistribution::ExponentialDistribution(uint64_t domain, uint64_t seed, double percentile,
                                                 double range_fraction)
    : domain_(domain == 0 ? 1 : domain), rng_(seed, /*stream=*/4) {
  // YCSB: gamma chosen so `percentile` percent of mass falls in the first
  // `range_fraction` of the domain.
  double range = static_cast<double>(domain_) * range_fraction;
  gamma_ = -std::log(1.0 - percentile / 100.0) / range;
}

uint64_t ExponentialDistribution::Next() {
  for (;;) {
    double x = rng_.NextExponential(gamma_);
    uint64_t v = static_cast<uint64_t>(x);
    if (v < domain_) {
      return v;
    }
  }
}

// ------------------------------------------------------------------- Latest

LatestDistribution::LatestDistribution(uint64_t domain, uint64_t seed, double theta)
    : zipf_(domain, seed, theta) {}

uint64_t LatestDistribution::Next() {
  uint64_t n = zipf_.domain();
  uint64_t z = zipf_.Next();
  return (n - 1) - z;
}

// --------------------------------------------------------------------- ECDF

StatusOr<std::unique_ptr<EcdfDistribution>> EcdfDistribution::Create(std::vector<Point> points,
                                                                     uint64_t seed) {
  if (points.empty()) {
    return Status::InvalidArgument("ECDF needs at least one point");
  }
  for (size_t i = 1; i < points.size(); ++i) {
    if (points[i].cum_prob < points[i - 1].cum_prob || points[i].value < points[i - 1].value) {
      return Status::InvalidArgument("ECDF points must be non-decreasing");
    }
  }
  if (points.back().cum_prob < 1.0 - 1e-9) {
    return Status::InvalidArgument("ECDF must end at cumulative probability 1.0");
  }
  return std::unique_ptr<EcdfDistribution>(new EcdfDistribution(std::move(points), seed));
}

EcdfDistribution::EcdfDistribution(std::vector<Point> points, uint64_t seed)
    : points_(std::move(points)), rng_(seed, /*stream=*/5) {
  domain_ = static_cast<uint64_t>(points_.back().value) + 1;
}

uint64_t EcdfDistribution::Next() {
  double u = rng_.NextDouble();
  auto it = std::lower_bound(points_.begin(), points_.end(), u,
                             [](const Point& p, double x) { return p.cum_prob < x; });
  if (it == points_.end()) {
    return static_cast<uint64_t>(points_.back().value);
  }
  if (it == points_.begin()) {
    return static_cast<uint64_t>(it->value);
  }
  // Linear interpolation between the bracketing points.
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  double dp = hi.cum_prob - lo.cum_prob;
  double frac = dp <= 0 ? 0.0 : (u - lo.cum_prob) / dp;
  return static_cast<uint64_t>(lo.value + frac * (hi.value - lo.value));
}

// ------------------------------------------------------------------ Factory

StatusOr<std::unique_ptr<Distribution>> CreateDistribution(const std::string& name,
                                                           uint64_t domain, uint64_t seed) {
  if (name == "uniform") {
    return std::unique_ptr<Distribution>(new UniformDistribution(domain, seed));
  }
  if (name == "zipfian") {
    return std::unique_ptr<Distribution>(new ZipfianDistribution(domain, seed));
  }
  if (name == "scrambled_zipfian") {
    return std::unique_ptr<Distribution>(new ScrambledZipfianDistribution(domain, seed));
  }
  if (name == "hotspot") {
    return std::unique_ptr<Distribution>(new HotspotDistribution(domain, seed));
  }
  if (name == "sequential") {
    return std::unique_ptr<Distribution>(new SequentialDistribution(domain));
  }
  if (name == "exponential") {
    return std::unique_ptr<Distribution>(new ExponentialDistribution(domain, seed));
  }
  if (name == "latest") {
    return std::unique_ptr<Distribution>(new LatestDistribution(domain, seed));
  }
  if (name == "constant") {
    return std::unique_ptr<Distribution>(new ConstantDistribution(domain == 0 ? 0 : domain - 1));
  }
  return Status::InvalidArgument("unknown distribution: " + name);
}

}  // namespace gadget
