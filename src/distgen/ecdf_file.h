// ECDF file loading: "the event generator can also work with empirical
// cumulative distribution functions (ECDFs) provided by the user" (§5.1).
//
// File format: one `value cum_prob` pair per line, '#' comments, cum_prob
// non-decreasing and ending at 1.0.
#ifndef GADGET_DISTGEN_ECDF_FILE_H_
#define GADGET_DISTGEN_ECDF_FILE_H_

#include <memory>
#include <string>

#include "src/distgen/distribution.h"

namespace gadget {

// Parses the textual ECDF format into points.
StatusOr<std::vector<EcdfDistribution::Point>> ParseEcdfText(const std::string& text);

// Loads an ECDF distribution from a file.
StatusOr<std::unique_ptr<Distribution>> LoadEcdfFile(const std::string& path, uint64_t seed);

}  // namespace gadget

#endif  // GADGET_DISTGEN_ECDF_FILE_H_
