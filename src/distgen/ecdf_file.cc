#include "src/distgen/ecdf_file.h"

#include <cstdlib>
#include <sstream>

#include "src/common/file_util.h"

namespace gadget {

StatusOr<std::vector<EcdfDistribution::Point>> ParseEcdfText(const std::string& text) {
  std::vector<EcdfDistribution::Point> points;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream fields(line);
    double value = 0, prob = 0;
    if (!(fields >> value)) {
      continue;  // blank/comment line
    }
    if (!(fields >> prob)) {
      return Status::InvalidArgument("ECDF line " + std::to_string(line_no) +
                                     " needs `value cum_prob`");
    }
    if (prob < 0 || prob > 1.0 + 1e-9) {
      return Status::InvalidArgument("ECDF cum_prob out of [0,1] at line " +
                                     std::to_string(line_no));
    }
    points.push_back(EcdfDistribution::Point{value, prob});
  }
  return points;
}

StatusOr<std::unique_ptr<Distribution>> LoadEcdfFile(const std::string& path, uint64_t seed) {
  std::string text;
  GADGET_RETURN_IF_ERROR(ReadFileToString(path, &text));
  auto points = ParseEcdfText(text);
  if (!points.ok()) {
    return points.status();
  }
  auto dist = EcdfDistribution::Create(std::move(*points), seed);
  if (!dist.ok()) {
    return dist.status();
  }
  return std::unique_ptr<Distribution>(std::move(*dist));
}

}  // namespace gadget
