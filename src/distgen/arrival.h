// Arrival processes: inter-arrival gaps in event-time units.
//
// Gadget assigns 64-bit event timestamps from a configurable process (§5.1,
// Fig. 8 shows a Poisson/exponential example). We provide Poisson, constant
// rate, and a two-state bursty (Markov-modulated) process used by the
// synthetic dataset generators.
#ifndef GADGET_DISTGEN_ARRIVAL_H_
#define GADGET_DISTGEN_ARRIVAL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace gadget {

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  // Time gap (>= 0) between the previous event and the next one, in
  // event-time units (milliseconds throughout this project).
  virtual uint64_t NextGap() = 0;
};

// Deterministic: one event every `period` time units.
class ConstantArrival : public ArrivalProcess {
 public:
  explicit ConstantArrival(uint64_t period) : period_(period) {}
  uint64_t NextGap() override { return period_; }

 private:
  uint64_t period_;
};

// Poisson process with `rate` events per 1000 time units (events/sec when
// the unit is ms). Gaps are exponential with mean 1000/rate.
class PoissonArrival : public ArrivalProcess {
 public:
  PoissonArrival(double rate_per_sec, uint64_t seed)
      : mean_gap_ms_(1000.0 / rate_per_sec), rng_(seed, /*stream=*/7) {}

  uint64_t NextGap() override {
    double g = rng_.NextExponential(1.0 / mean_gap_ms_);
    return static_cast<uint64_t>(g + 0.5);
  }

 private:
  double mean_gap_ms_;
  Pcg32 rng_;
};

// Two-state Markov-modulated Poisson process: alternates between a busy
// state (high rate) and an idle state (low rate). State dwell times are
// exponential. Models the bursty submission patterns of cluster traces.
class BurstyArrival : public ArrivalProcess {
 public:
  BurstyArrival(double busy_rate_per_sec, double idle_rate_per_sec, double mean_busy_ms,
                double mean_idle_ms, uint64_t seed);

  uint64_t NextGap() override;

 private:
  double busy_gap_ms_;
  double idle_gap_ms_;
  double mean_busy_ms_;
  double mean_idle_ms_;
  bool busy_ = true;
  double state_left_ms_;
  Pcg32 rng_;
};

// Factory for config-driven construction; name in {constant, poisson, bursty}.
StatusOr<std::unique_ptr<ArrivalProcess>> CreateArrivalProcess(const std::string& name,
                                                               double rate_per_sec,
                                                               uint64_t seed);

}  // namespace gadget

#endif  // GADGET_DISTGEN_ARRIVAL_H_
