// Key / value-size / arrival distributions.
//
// These mirror the request distributions YCSB exposes (uniform, zipfian,
// hotspot, sequential, exponential, latest) plus the empirical-CDF sampling
// Gadget supports (§5.1). Every generator owns its own seeded Pcg32 so
// independent streams never interleave their randomness.
#ifndef GADGET_DISTGEN_DISTRIBUTION_H_
#define GADGET_DISTGEN_DISTRIBUTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace gadget {

// Produces values in [0, domain). Thread-compatible (external sync).
class Distribution {
 public:
  virtual ~Distribution() = default;

  // Next sample.
  virtual uint64_t Next() = 0;

  // Upper bound (exclusive) of the value domain at construction time.
  virtual uint64_t domain() const = 0;

  // Informs the distribution that the domain grew to `new_domain` values
  // (needed by Latest/Sequential which track the insertion frontier).
  virtual void GrowDomain(uint64_t new_domain) {}
};

// ------------------------------------------------------------------ Uniform

class UniformDistribution : public Distribution {
 public:
  UniformDistribution(uint64_t domain, uint64_t seed);
  uint64_t Next() override;
  uint64_t domain() const override { return domain_; }
  void GrowDomain(uint64_t new_domain) override { domain_ = new_domain; }

 private:
  uint64_t domain_;
  Pcg32 rng_;
};

// ------------------------------------------------------------------ Zipfian
//
// YCSB-compatible zipfian with incremental zeta recomputation and the usual
// theta=0.99 default. Values are NOT scrambled; see ScrambledZipfian.

class ZipfianDistribution : public Distribution {
 public:
  static constexpr double kDefaultTheta = 0.99;

  ZipfianDistribution(uint64_t domain, uint64_t seed, double theta = kDefaultTheta);
  uint64_t Next() override;
  uint64_t domain() const override { return domain_; }
  void GrowDomain(uint64_t new_domain) override;

 private:
  static double Zeta(uint64_t from, uint64_t to, double theta, double initial);

  uint64_t domain_;
  double theta_;
  double zeta_n_;
  double zeta2_;
  double alpha_;
  double eta_;
  Pcg32 rng_;
};

// Zipfian composed with a stateless 64-bit mixer so that the popular items
// are spread across the key space (YCSB "scrambled zipfian").
class ScrambledZipfianDistribution : public Distribution {
 public:
  ScrambledZipfianDistribution(uint64_t domain, uint64_t seed,
                               double theta = ZipfianDistribution::kDefaultTheta);
  uint64_t Next() override;
  uint64_t domain() const override { return zipf_.domain(); }
  void GrowDomain(uint64_t new_domain) override { zipf_.GrowDomain(new_domain); }

 private:
  ZipfianDistribution zipf_;
};

// ------------------------------------------------------------------ Hotspot
//
// hotspot_fraction of the key space receives hotspot_opn_fraction of the
// operations (YCSB defaults: 0.2 / 0.8).

class HotspotDistribution : public Distribution {
 public:
  HotspotDistribution(uint64_t domain, uint64_t seed, double hot_set_fraction = 0.2,
                      double hot_opn_fraction = 0.8);
  uint64_t Next() override;
  uint64_t domain() const override { return domain_; }
  void GrowDomain(uint64_t new_domain) override;

 private:
  uint64_t domain_;
  double hot_set_fraction_;
  double hot_opn_fraction_;
  uint64_t hot_count_;
  Pcg32 rng_;
};

// --------------------------------------------------------------- Sequential
//
// Cycles 0, 1, 2, ..., domain-1, 0, 1, ... — YCSB "sequential".

class SequentialDistribution : public Distribution {
 public:
  SequentialDistribution(uint64_t domain, uint64_t start = 0);
  uint64_t Next() override;
  uint64_t domain() const override { return domain_; }
  void GrowDomain(uint64_t new_domain) override { domain_ = new_domain; }

 private:
  uint64_t domain_;
  uint64_t next_;
};

// -------------------------------------------------------------- Exponential
//
// P(X = i) proportional to exp(-i * lambda); YCSB parameterizes via the
// percentile covered by a fraction of the domain (90% of mass in the first
// fraction gamma of the range by default).

class ExponentialDistribution : public Distribution {
 public:
  ExponentialDistribution(uint64_t domain, uint64_t seed, double percentile = 95.0,
                          double range_fraction = 0.8571428571);
  uint64_t Next() override;
  uint64_t domain() const override { return domain_; }
  void GrowDomain(uint64_t new_domain) override { domain_ = new_domain; }

 private:
  uint64_t domain_;
  double gamma_;
  Pcg32 rng_;
};

// ------------------------------------------------------------------- Latest
//
// Skewed toward the most recently inserted item: sample z ~ zipf(domain) and
// return (frontier - 1) - z. GrowDomain moves the frontier.

class LatestDistribution : public Distribution {
 public:
  LatestDistribution(uint64_t domain, uint64_t seed,
                     double theta = ZipfianDistribution::kDefaultTheta);
  uint64_t Next() override;
  uint64_t domain() const override { return zipf_.domain(); }
  void GrowDomain(uint64_t new_domain) override { zipf_.GrowDomain(new_domain); }

 private:
  ZipfianDistribution zipf_;
};

// ----------------------------------------------------------------- Constant

class ConstantDistribution : public Distribution {
 public:
  explicit ConstantDistribution(uint64_t value) : value_(value) {}
  uint64_t Next() override { return value_; }
  uint64_t domain() const override { return value_ + 1; }

 private:
  uint64_t value_;
};

// --------------------------------------------------------------------- ECDF
//
// Samples from a user-provided empirical CDF: points (value_i, cum_prob_i)
// with cum_prob increasing to 1.0. Sampling inverts the CDF with linear
// interpolation between points (Gadget §5.1).

class EcdfDistribution : public Distribution {
 public:
  struct Point {
    double value;
    double cum_prob;
  };

  // Points must be sorted by cum_prob; the last cum_prob must be >= 1.0-1e-9.
  static StatusOr<std::unique_ptr<EcdfDistribution>> Create(std::vector<Point> points,
                                                            uint64_t seed);

  uint64_t Next() override;
  uint64_t domain() const override { return domain_; }

 private:
  EcdfDistribution(std::vector<Point> points, uint64_t seed);

  std::vector<Point> points_;
  uint64_t domain_;
  Pcg32 rng_;
};

// ------------------------------------------------------------------ Factory

// name in {uniform, zipfian, scrambled_zipfian, hotspot, sequential,
// exponential, latest, constant}. Unknown names -> InvalidArgument.
StatusOr<std::unique_ptr<Distribution>> CreateDistribution(const std::string& name,
                                                           uint64_t domain, uint64_t seed);

}  // namespace gadget

#endif  // GADGET_DISTGEN_DISTRIBUTION_H_
