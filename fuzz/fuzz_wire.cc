// Fuzz target: the binary wire protocol decoder (src/server/wire.h).
//
// This is the harness's sharpest trust boundary — these bytes arrive over a
// TCP socket from arbitrary clients. The target drives the exact streaming
// loop the server runs (ExtractFrame until kNeedMore/kError, ParseRequest on
// request types, ParseResponse on response types) and then re-encodes every
// successfully parsed request to check the encoder/decoder agree.
#include <cstdint>
#include <string>
#include <string_view>

#include "src/server/wire.h"

using gadget::wire::FrameStatus;
using gadget::wire::FrameView;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view buf(reinterpret_cast<const char*>(data), size);
  std::string error;
  // Streaming decode: consume frames until torn input or a framing error,
  // exactly like Server::DecodeBurst.
  while (!buf.empty()) {
    FrameView frame;
    size_t consumed = 0;
    FrameStatus st = gadget::wire::ExtractFrame(buf, &frame, &consumed, &error);
    if (st != FrameStatus::kOk) {
      break;
    }
    if (gadget::wire::IsRequestType(static_cast<uint8_t>(frame.type))) {
      gadget::wire::Request req;
      if (gadget::wire::ParseRequest(frame, &req).ok()) {
        // Round-trip: re-encode the decoded request and require the encoder's
        // own frame to decode again. Catches asymmetric bounds between
        // Append* and Parse*.
        std::string reenc;
        switch (req.type) {
          case gadget::wire::MsgType::kGet:
            gadget::wire::AppendGetRequest(&reenc, req.id, req.key);
            break;
          case gadget::wire::MsgType::kPut:
            gadget::wire::AppendPutRequest(&reenc, req.id, req.key, req.value);
            break;
          case gadget::wire::MsgType::kMerge:
            gadget::wire::AppendMergeRequest(&reenc, req.id, req.key, req.value);
            break;
          case gadget::wire::MsgType::kDelete:
            gadget::wire::AppendDeleteRequest(&reenc, req.id, req.key);
            break;
          case gadget::wire::MsgType::kMultiGet:
            gadget::wire::AppendMultiGetRequest(&reenc, req.id, req.keys);
            break;
          case gadget::wire::MsgType::kWriteBatch:
            gadget::wire::AppendWriteBatchRequest(&reenc, req.id, req.batch);
            break;
          case gadget::wire::MsgType::kStats:
            gadget::wire::AppendStatsRequest(&reenc, req.id);
            break;
          default:
            gadget::wire::AppendPingRequest(&reenc, req.id);
            break;
        }
        FrameView again;
        size_t consumed2 = 0;
        if (gadget::wire::ExtractFrame(reenc, &again, &consumed2, &error) != FrameStatus::kOk) {
          __builtin_trap();
        }
        gadget::wire::Request req2;
        if (!gadget::wire::ParseRequest(again, &req2).ok()) {
          __builtin_trap();
        }
      }
    } else {
      gadget::wire::Response resp;
      // status intentionally ignored: malformed responses must fail cleanly.
      (void)gadget::wire::ParseResponse(frame, &resp);
    }
    buf.remove_prefix(consumed);
  }
  return 0;
}
