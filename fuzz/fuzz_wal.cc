// Fuzz target: WAL record reader (src/stores/lsm/wal.h).
//
// Crash recovery replays whatever bytes a crash left on disk, so ReplayWal
// must terminate cleanly on any file content — torn tails, bit rot, length
// lies. The decoder only has a file API; the input is staged through a
// per-process scratch file.
#include <cstdint>

#include "fuzz/fuzz_util.h"
#include "src/stores/lsm/wal.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string path = gadget::fuzz::WriteScratchFile(
      "fuzz.wal", std::string_view(reinterpret_cast<const char*>(data), size));
  uint64_t ops = 0;
  auto applied = gadget::ReplayWal(
      path, [&ops](gadget::RecType, std::string_view, std::string_view) { ++ops; });
  if (applied.ok() && *applied != ops) {
    __builtin_trap();  // replay count out of sync with callback invocations
  }
  return 0;
}
