// Fuzz target: binary trace readers (src/streams/trace_io.h).
//
// Offline mode replays trace files from disk; a corrupt or adversarial trace
// must be rejected, never crash the harness or balloon memory. Mode byte
// selects the event-trace or access-trace reader; both drain every record.
#include <cstdint>

#include "fuzz/fuzz_util.h"
#include "src/streams/trace_io.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  gadget::fuzz::ByteSlicer slicer(data, size);
  const bool event_kind = slicer.TakeBool();
  std::string path = gadget::fuzz::WriteScratchFile("fuzz.trace", slicer.TakeRest());

  if (event_kind) {
    auto reader = gadget::EventTraceReader::Open(path);
    if (!reader.ok()) {
      return 0;
    }
    gadget::Event e;
    for (;;) {
      auto more = (*reader)->Next(&e);
      if (!more.ok() || !*more) {
        break;
      }
    }
  } else {
    auto reader = gadget::AccessTraceReader::Open(path);
    if (!reader.ok()) {
      return 0;
    }
    gadget::StateAccess a;
    uint64_t drained = 0;
    for (;;) {
      auto more = (*reader)->Next(&a);
      if (!more.ok() || !*more) {
        break;
      }
      ++drained;
    }
    if (drained > (*reader)->count()) {
      __builtin_trap();  // reader produced more records than its header claims
    }
    // The whole-trace convenience path shares LoadBody but adds reserve().
    // status intentionally ignored: corrupt traces must fail cleanly.
    (void)gadget::ReadAccessTrace(path);
  }
  return 0;
}
