// Fuzz target: the hand-rolled JSON parser (src/common/json.h).
//
// CI parses and diffs gadget.report/1 documents with this parser, and the
// server's STATS response embeds its output, so it sees semi-trusted input.
// On a successful parse the value is re-serialized and re-parsed: the writer
// and parser must agree or report diffing silently breaks.
#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/json.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  auto parsed = gadget::ParseJson(text);
  if (!parsed.ok()) {
    return 0;
  }
  for (int indent : {0, 2}) {
    std::string out = parsed->Write(indent);
    auto again = gadget::ParseJson(out);
    if (!again.ok()) {
      __builtin_trap();  // writer emitted something the parser rejects
    }
  }
  return 0;
}
